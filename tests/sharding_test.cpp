// Shard-count invariance (DESIGN.md §10): the intra-trial sharded SyncEngine
// must reproduce the serial engine bit for bit at any shard count. The tests
// pin (a) every pre-existing golden fingerprint at S ∈ {1, 2, 4, 8}, (b) the
// acceptance-shaped 24/48-trial agreement / pipeline / churn / coalition
// scenarios through the declarative spec.shards knob, (c) trials × shards
// oversubscription, and (d) the sharded primitives themselves — engine hook
// ordering, the shard-tagged path arenas, the lock-free Coalition.
//
// Scenario scope: the ENTIRE strategy gallery is in the invariance class.
// Strategies that draw inside a shard-parallel recv hook (fractional
// droppers/flippers, walk tamperers, beacon tamperers/grafters/full) consume
// per-receiver streams forked per (node, iteration) and drained in the node's
// canonical inbox order, so their draw sequences are a pure function of the
// trial — independent of the shard count (they used to be merely
// deterministic per count, via per-shard forks; ROADMAP item closed by the
// epoch-pipelining PR). The RecvDrawing* suites below pin exactly that.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "adversary/token_arena.hpp"
#include "adversary/walk_adversary.hpp"
#include "counting/beacon/path.hpp"
#include "golden_scenarios.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sync_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace bzc {
namespace {

constexpr unsigned kShardCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// Golden fingerprints at every shard count. The constants are the exact ones
// runtime_test.cpp pins for the serial engine — sharding must not move them.
// ---------------------------------------------------------------------------

TEST(GoldenSharding, AgreementGoldensAreShardCountInvariant) {
  for (unsigned s : kShardCounts) {
    EXPECT_EQ(golden::agreementFingerprint(0, 1.0, s), 0xc04be2f8613993a8ULL)
        << "benign agreement diverged at " << s << " shards";
    EXPECT_EQ(golden::agreementFingerprint(8, 1.0, s), 0x1ed581d04cfd8fdaULL)
        << "byzantine agreement diverged at " << s << " shards";
    EXPECT_EQ(golden::agreementFingerprint(8, 2.0, s), 0xfeb5c22bfec003a3ULL)
        << "overestimate agreement diverged at " << s << " shards";
  }
}

TEST(GoldenSharding, BeaconGoldensAreShardCountInvariant) {
  for (unsigned s : kShardCounts) {
    EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                        BeaconAttackProfile::none(), 0, s),
              0x01ad738b6673bf86ULL)
        << "benign beacon diverged at " << s << " shards";
    EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                        BeaconAttackProfile::flooder(), 10, s),
              0x29553b28fa4d5ddcULL)
        << "flooder beacon diverged at " << s << " shards";
    // FirstSeen resolves ties by inbox position: this one pins the sharded
    // scatter's per-inbox delivery order, not just the protocol logic.
    EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::FirstSeen,
                                        BeaconAttackProfile::flooder(), 10, s),
              0xf3b6aab96a9aed6cULL)
        << "FirstSeen beacon diverged at " << s << " shards";
  }
}

TEST(GoldenSharding, RecvDrawingBeaconProfilesAreShardCountInvariant) {
  // These strategies draw inside the relay hook; per-receiver streams make
  // them invariant, so the serial fingerprint now pins every shard count.
  // full()'s S == 1 value is unchanged from the per-shard-stream era: its
  // relay draws only mint forged IDs, and ID *values* don't steer decisions
  // (fresh random IDs are never blacklisted either way) — so the legacy
  // golden carries over rather than being re-captured.
  EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                      BeaconAttackProfile::full(), 10, 1),
            0xe7cb8414934dcdefULL);
  for (const BeaconAttackProfile& attack :
       {BeaconAttackProfile::full(), BeaconAttackProfile::tamperer()}) {
    const std::uint64_t serial =
        golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable, attack, 10, 1);
    for (unsigned s : {2u, 4u, 8u}) {
      EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable, attack, 10, s),
                serial)
          << "recv-drawing beacon profile diverged at " << s << " shards";
    }
  }
}

TEST(GoldenSharding, PipelineGoldensAreShardCountInvariant) {
  for (unsigned s : kShardCounts) {
    EXPECT_EQ(golden::pipelineFingerprint(BeaconAttackProfile::none(), 0, s),
              0xf702f76c8582c57bULL)
        << "benign pipeline diverged at " << s << " shards";
    EXPECT_EQ(golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 8, s),
              0x559fbf52906663baULL)
        << "flooder pipeline diverged at " << s << " shards";
  }
}

// ---------------------------------------------------------------------------
// Declarative scenarios through spec.shards (mirrors the thread-count
// invariance suites in runtime_test / beacon_adversary_test / churn_test).
// ---------------------------------------------------------------------------

void expectShardCountInvariant(ScenarioSpec spec) {
  ExperimentSummary bySpec[4];
  for (int i = 0; i < 4; ++i) {
    spec.shards = kShardCounts[i];
    ExperimentRunner runner(2);
    bySpec[i] = runner.run(spec);
  }
  ASSERT_EQ(bySpec[0].perTrial.size(), spec.trials);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(bySpec[0].combinedFingerprint, bySpec[i].combinedFingerprint)
        << spec.name << " diverged at " << kShardCounts[i] << " shards";
    ASSERT_EQ(bySpec[i].perTrial.size(), spec.trials);
    for (std::size_t t = 0; t < spec.trials; ++t) {
      EXPECT_EQ(bySpec[0].perTrial[t].resultFingerprint, bySpec[i].perTrial[t].resultFingerprint)
          << spec.name << " trial " << t << " diverged at " << kShardCounts[i] << " shards";
    }
    EXPECT_DOUBLE_EQ(bySpec[0].fracDecided.mean, bySpec[i].fracDecided.mean);
    EXPECT_DOUBLE_EQ(bySpec[0].totalRounds.p90, bySpec[i].totalRounds.p90);
  }
}

TEST(ShardedScenarios, AgreementScenarioIsShardCountInvariant) {
  ScenarioSpec spec;
  spec.name = "agreement-oracle-sharded";
  spec.graph = {GraphKind::Hnd, 192, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 5;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.trials = 24;
  spec.masterSeed = 0x55;
  expectShardCountInvariant(spec);
}

TEST(ShardedScenarios, PipelineFlooderScenarioIsShardCountInvariant) {
  ScenarioSpec spec;
  spec.name = "pipeline-flooder-sharded";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 24;
  spec.masterSeed = 0x9a;
  expectShardCountInvariant(spec);
}

TEST(ShardedScenarios, RecvDrawingWalkGalleryIsShardCountInvariant) {
  // Fractional droppers/flippers and the tamperer draw per relayed token
  // inside the recv hook; with per-receiver streams the whole walk gallery is
  // invariant (not just the draw-free p = 1.0 corners adversary_test pins).
  const AgreementAttackProfile gallery[] = {
      AgreementAttackProfile::dropper(0.8),
      AgreementAttackProfile::flipper(0.8),
      AgreementAttackProfile::tamperer(0.8),
  };
  const char* names[] = {"dropper08", "flipper08", "tamperer08"};
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioSpec spec;
    spec.name = std::string("walk-gallery-sharded-") + names[i];
    spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
    spec.placement.kind = Placement::Random;
    spec.placement.count = 6;
    spec.protocol = ProtocolKind::Agreement;
    spec.agreementParams.initialOnesFraction = 0.7;
    spec.agreementParams.attack = gallery[i];
    spec.trials = 12;
    spec.masterSeed = 0xd4a0 + i;
    expectShardCountInvariant(spec);
  }
}

TEST(ShardedScenarios, PrefixGrafterScenarioIsShardCountInvariant) {
  // The grafter splices *observed* honest prefixes into forged beacons — the
  // strongest value-dependence in the beacon gallery, so scenario-level
  // invariance here exercises the per-receiver streams hardest.
  ScenarioSpec spec;
  spec.name = "prefix-grafter-sharded";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 6;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconAdversary = BeaconAdversaryProfile::prefixGrafter(2);
  spec.beaconLimits.maxPhase = 8;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.trials = 12;
  spec.masterSeed = 0x96af;
  expectShardCountInvariant(spec);
}

TEST(ShardedScenarios, ChurnScenarioIsShardCountInvariant) {
  // The T10-shaped row: every epoch recount inherits spec.shards through
  // runProtocolTrial, so a churn trajectory must be shard-count invariant too.
  ScenarioSpec spec;
  spec.name = "t10-row-sharded";
  spec.graph = {GraphKind::Hnd, 96, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::steady(/*epochs=*/4, /*rate=*/0.08, /*recountEvery=*/2);
  spec.trials = 48;
  spec.masterSeed = 0x10c4;
  expectShardCountInvariant(spec);
}

TEST(ShardedScenarios, MixedCoalitionScenarioIsShardCountInvariant) {
  // Cross-stage coalition on the shared lock-free blackboard. Both subsets
  // are recv-draw-free (flooders draw in the emit phase, hunters derive the
  // coalition bit from round-constant state), so the whole scenario sits in
  // the invariance class.
  ScenarioSpec spec;
  spec.name = "mixed-coalition-sharded";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Surround;
  spec.placement.count = 10;
  spec.placement.victim = 3;
  spec.placement.moatRadius = 2;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.coalitionPlan = CoalitionPlan::split(
      "beacon-flooders", 0.5, BeaconAdversaryProfile::flooder(),
      AgreementAttackProfile::adaptiveMinority(), "walk-hunters",
      BeaconAdversaryProfile::none(), AgreementAttackProfile::hunter(2));
  spec.trials = 48;
  spec.masterSeed = 0x50c1;
  expectShardCountInvariant(spec);
}

TEST(ShardedScenarios, TrialsTimesShardsOversubscriptionMatchesSerial) {
  // 8 trial threads × 4 shards on whatever cores exist: run() narrows the
  // trial pool to threadCount()/shards, and the outcome must match the fully
  // serial run regardless.
  ScenarioSpec spec;
  spec.name = "oversubscription";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 12;
  spec.masterSeed = 0x05b5;

  ScenarioSpec wide = spec;
  wide.shards = 4;
  ExperimentRunner eight(8);
  const ExperimentSummary oversubscribed = eight.run(wide);

  ScenarioSpec serial = spec;
  serial.shards = 1;
  ExperimentRunner one(1);
  const ExperimentSummary reference = one.run(serial);

  EXPECT_EQ(oversubscribed.combinedFingerprint, reference.combinedFingerprint);
  ASSERT_EQ(oversubscribed.perTrial.size(), reference.perTrial.size());
  for (std::size_t t = 0; t < reference.perTrial.size(); ++t) {
    EXPECT_EQ(oversubscribed.perTrial[t].resultFingerprint,
              reference.perTrial[t].resultFingerprint);
  }
}

// ---------------------------------------------------------------------------
// Engine-level ordering: a shard-aware hook at S > 1 must see every inbox in
// the same per-receiver order, produce the same traffic and meter the same
// totals as the serial engine running the identical protocol.
// ---------------------------------------------------------------------------

using IntEngine = SyncEngine<int>;

struct EchoTrace {
  std::vector<std::vector<int>> inboxes;  ///< per node, concatenated across rounds
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

// Every receiver forwards each delivery once more (decremented ttl payload),
// alternating broadcast/unicast by parity — deterministic per receiver, so
// the trace is comparable even though cross-shard recv order is not.
EchoTrace runEcho(const Graph& g, const ByzantineSet& byz, unsigned shards) {
  EchoTrace trace;
  trace.inboxes.resize(g.numNodes());
  IntEngine engine(g, byz, /*maxTotalRounds=*/64, shards);
  engine.broadcast(0, 6, 8);
  engine.broadcast(static_cast<NodeId>(g.numNodes() / 2), 5, 8);
  engine.unicast(1, 2, 4, 8);
  const auto recv = [&](IntEngine::ShardLane& lane, NodeId v, Round,
                        std::span<const IntEngine::Delivery> box) {
    for (const auto& d : box) {
      trace.inboxes[v].push_back(d.payload);
      if (d.payload <= 0) continue;
      if (v % 2 == 0) {
        lane.broadcast(v, d.payload - 1, 8);
      } else {
        lane.unicast(v, g.neighbors(v).front(), d.payload - 1, 8);
      }
    }
  };
  const auto res = engine.runWindow(0, NoEmit{}, recv, NoEnd{});
  EXPECT_EQ(res.status, WindowStatus::Quiesced);
  trace.rounds = engine.round();
  MessageMeter meter = engine.releaseMeter();
  trace.messages = meter.totalMessages();
  trace.bits = meter.totalBits();
  return trace;
}

TEST(ShardedEngine, ShardedHookMatchesSerialAtEveryShardCount) {
  Rng rng(0x5a5a);
  const Graph g = hnd(64, 4, rng);
  const ByzantineSet byz(64, {7, 13});
  const EchoTrace serial = runEcho(g, byz, 1);
  EXPECT_GT(serial.rounds, 2u);
  for (unsigned s : {2u, 4u, 8u, 16u}) {
    const EchoTrace sharded = runEcho(g, byz, s);
    EXPECT_EQ(sharded.rounds, serial.rounds) << s << " shards";
    EXPECT_EQ(sharded.messages, serial.messages) << s << " shards";
    EXPECT_EQ(sharded.bits, serial.bits) << s << " shards";
    for (NodeId v = 0; v < 64; ++v) {
      EXPECT_EQ(sharded.inboxes[v], serial.inboxes[v])
          << "inbox of node " << v << " diverged at " << s << " shards";
    }
  }
}

TEST(ShardedEngine, ShardCountIsClampedToNodesAndCap) {
  Rng rng(0xc1a);
  const Graph g = hnd(8, 2, rng);
  const ByzantineSet byz(8, {});
  IntEngine tiny(g, byz, 0, 32);
  EXPECT_EQ(tiny.shardCount(), 8u);  // clamped to n
  IntEngine wide(g, byz, 0, 5);
  EXPECT_EQ(wide.shardCount(), 5u);
  EXPECT_EQ(wide.shardOf(0), 0u);
  EXPECT_EQ(wide.shardOf(7), 3u);  // ceil(8/5) = 2 nodes per shard
  std::vector<int> owner(8, -1);
  wide.forEachShard([&](std::size_t s, NodeId lo, NodeId hi) {
    for (NodeId v = lo; v < hi; ++v) owner[v] = static_cast<int>(s);
  });
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(owner[v], static_cast<int>(wide.shardOf(v)));
  }
}

// ---------------------------------------------------------------------------
// Shard-tagged path arenas.
// ---------------------------------------------------------------------------

TEST(PathArenaSharding, ShardZeroRefsAreLegacyIndices) {
  PathArena arena(4);
  EXPECT_EQ(arena.shardCount(), 4u);
  const PathRef a = arena.push(10, kNullPath);  // legacy 2-arg goes to shard 0
  const PathRef b = arena.push(0, 11, a);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  PathArena serial;  // default: one shard, plain indices
  EXPECT_EQ(serial.push(10, kNullPath), 0u);
  EXPECT_EQ(serial.push(11, 0u), 1u);
}

TEST(PathArenaSharding, CrossShardChainsResolve) {
  PathArena arena(4);
  const PathRef root = arena.push(1, 100, kNullPath);
  const PathRef mid = arena.push(3, 200, root);
  const PathRef tip = arena.push(0, 300, mid);
  EXPECT_NE(root, mid);
  EXPECT_NE(mid, tip);
  EXPECT_EQ(arena.node(tip), 300u);
  EXPECT_EQ(arena.prev(tip), mid);
  EXPECT_EQ(arena.node(mid), 200u);
  EXPECT_EQ(arena.prev(mid), root);
  EXPECT_EQ(arena.node(root), 100u);
  EXPECT_EQ(arena.prev(root), kNullPath);
  EXPECT_EQ(arena.size(), 3u);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  // Recycled lanes start from index 0 again.
  EXPECT_EQ(arena.push(0, 7, kNullPath), 0u);
}

TEST(BeaconPathArenaSharding, LanesShareCrossShardPrefixes) {
  BeaconPathArena arena(4);
  BeaconPathArena::Lane lane0 = arena.lane(0);
  BeaconPathArena::Lane lane2 = arena.lane(2);
  const BeaconPathRef origin = lane0.append(kNoBeaconPath, 41);
  const BeaconPathRef hop = lane2.append(origin, 42);
  const BeaconPathRef tip = lane0.append(hop, 43);
  EXPECT_GE(hop, 0);  // shard tags keep refs positive (int32)
  EXPECT_EQ(arena.length(tip), 3u);
  EXPECT_EQ(arena.last(tip), 43u);
  EXPECT_EQ(arena.materialize(tip), (std::vector<PublicId>{41, 42, 43}));
  std::vector<PublicId> prefix;
  EXPECT_TRUE(arena.walkPrefix(tip, 1, [&](PublicId id) {
    prefix.push_back(id);
    return true;
  }));
  EXPECT_EQ(prefix, (std::vector<PublicId>{42, 41}));  // suffix-first, last hop spared
  // Legacy 2-arg append and shard-0 lanes produce plain indices.
  BeaconPathArena serial;
  EXPECT_EQ(serial.append(kNoBeaconPath, 9), 0);
  EXPECT_EQ(serial.append(0, 10), 1);
}

// ---------------------------------------------------------------------------
// Lock-free Coalition blackboard under concurrent strategies.
// ---------------------------------------------------------------------------

TEST(CoalitionSharding, FirstAgreeOnWinsAndHitsTallyExactly) {
  Coalition board;
  EXPECT_FALSE(board.hasAgreedBit());
  ThreadPool pool(8);
  pool.parallelFor(256, [&](std::size_t i) {
    board.agreeOn(static_cast<std::uint8_t>(i % 2));
    board.recordHit();
  });
  EXPECT_TRUE(board.hasAgreedBit());
  EXPECT_LE(board.agreedBit(), 1u);
  EXPECT_EQ(board.hits(), 256u);
  // Later agreements never displace the installed bit.
  const std::uint8_t installed = board.agreedBit();
  board.agreeOn(static_cast<std::uint8_t>(1 - installed));
  EXPECT_EQ(board.agreedBit(), installed);
}

}  // namespace
}  // namespace bzc
