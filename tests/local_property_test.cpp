// Property and failure-injection tests for Algorithm 1 beyond the basic
// suite: view bookkeeping invariants, decision-reason exclusivity, attack
// locality, and robustness on degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "counting/local/attacks.hpp"
#include "counting/local/checks.hpp"
#include "counting/local/protocol.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

// --- View bookkeeping invariants. ---

struct ViewFixture {
  ViewFixture(NodeId n, NodeId d, std::uint64_t seed) : rng(seed), g(hnd(n, d, rng)) {
    Rng idRng = rng.fork(1);
    ids = std::make_unique<IdSpace>(n, idRng);
    pool = std::make_unique<RecordPool>(g, *ids);
  }
  Rng rng;
  Graph g;
  std::unique_ptr<IdSpace> ids;
  std::unique_ptr<RecordPool> pool;
};

TEST(ViewInvariants, FullFloodMatchesBfs) {
  // Integrating every honest record in BFS order reproduces layer counts
  // equal to the BFS layer sizes, an empty boundary, and a view graph with
  // exactly the original edges.
  ViewFixture f(128, 6, 1);
  LocalView view(f.pool.get(), 6);
  view.installSelf(0);
  const auto dist = bfsDistances(f.g, 0);
  const std::uint32_t ecc = eccentricity(f.g, 0);
  for (Round r = 1; r <= ecc; ++r) {
    for (NodeId v = 0; v < f.g.numNodes(); ++v) {
      if (dist[v] == r) {
        ASSERT_EQ(view.integrate(v, r), IntegrationVerdict::Ok);
      }
    }
  }
  EXPECT_EQ(view.size(), f.g.numNodes());
  EXPECT_EQ(view.boundarySize(), 0u);
  const auto& layers = view.layerCounts();
  for (Round r = 0; r <= ecc; ++r) {
    std::size_t expect = 0;
    for (NodeId v = 0; v < f.g.numNodes(); ++v) expect += dist[v] == r ? 1 : 0;
    EXPECT_EQ(layers[r], expect) << "layer " << r;
  }
  const Graph vg = view.buildViewGraph();
  EXPECT_EQ(vg.numNodes(), f.g.numNodes());
  EXPECT_EQ(vg.numEdges(), f.g.numEdges());
}

TEST(ViewInvariants, RoundMarksSliceTheLog) {
  ViewFixture f(64, 4, 2);
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  const auto dist = bfsDistances(f.g, 0);
  // Integrate layers 1 and 3, skipping round 2 entirely.
  for (NodeId v = 0; v < 64; ++v) {
    if (dist[v] == 1) {
      ASSERT_EQ(view.integrate(v, 1), IntegrationVerdict::Ok);
    }
  }
  std::size_t layer1End = view.integrationLog().size();
  for (NodeId v = 0; v < 64; ++v) {
    if (dist[v] == 2) {
      ASSERT_EQ(view.integrate(v, 3), IntegrationVerdict::Ok);
    }
  }
  EXPECT_EQ(view.roundMark(1), 1u);
  EXPECT_EQ(view.roundMark(2), layer1End);
  EXPECT_EQ(view.roundMark(3), layer1End);
  EXPECT_EQ(view.roundMark(99), view.integrationLog().size());
}

TEST(ViewInvariants, KnowsExactRecordOnly) {
  ViewFixture f(32, 4, 3);
  const RecordIdx alias = f.pool->addFake(f.ids->publicId(1), {0xABC});
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  ASSERT_EQ(view.integrate(1, 1), IntegrationVerdict::Ok);
  EXPECT_TRUE(view.knows(1));
  EXPECT_FALSE(view.knows(alias));  // same name, different record
}

// --- Decision accounting invariants. ---

struct LocalRun {
  Graph g;
  ByzantineSet byz;
  LocalOutcome out;
};

LocalRun runLocal(NodeId n, std::uint64_t seed, std::unique_ptr<LocalAdversary> adv,
                  std::size_t byzCount, Placement placement = Placement::Random) {
  Rng rng(seed);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = byzCount == 0 ? Placement::None : placement;
  spec.count = byzCount;
  spec.victim = 3;
  spec.moatRadius = 1;
  Rng prng = rng.fork(2);
  auto byz = placeByzantine(g, spec, prng);
  LocalParams params;
  Rng runRng = rng.fork(3);
  auto out = runLocalCounting(g, byz, *adv, params, runRng, 3);
  return {std::move(g), std::move(byz), std::move(out)};
}

TEST(LocalInvariants, ReasonCountsSumToDecisions) {
  auto run = runLocal(512, 4, makeConflictLocalAdversary(), 22);
  std::size_t decided = 0;
  for (NodeId u = 0; u < 512; ++u) {
    if (!run.byz.contains(u) && run.out.result.decisions[u].decided) ++decided;
  }
  EXPECT_EQ(decided, run.out.stats.inconsistencyDecisions + run.out.stats.muteDecisions +
                         run.out.stats.ballGrowthDecisions + run.out.stats.sparseCutDecisions);
}

TEST(LocalInvariants, EstimateEqualsDecisionRound) {
  auto run = runLocal(256, 5, makeSilentLocalAdversary(), 12);
  for (NodeId u = 0; u < 256; ++u) {
    if (run.byz.contains(u)) continue;
    const auto& rec = run.out.result.decisions[u];
    ASSERT_TRUE(rec.decided);
    EXPECT_DOUBLE_EQ(rec.estimate, static_cast<double>(rec.round));
  }
}

TEST(LocalInvariants, ByzantineRowsUntouched) {
  auto run = runLocal(256, 6, makeDegreeBombLocalAdversary(), 12);
  for (NodeId b : run.byz.members()) {
    EXPECT_FALSE(run.out.result.decisions[b].decided);
    EXPECT_EQ(run.out.result.meter.bitsSent(b), 0u);
    EXPECT_EQ(run.out.stats.reason[b], LocalDecideReason::Undecided);
  }
}

TEST(LocalInvariants, MessagesArePolynomialNotSmall) {
  // The LOCAL algorithm's whole point: messages carry whole neighbourhood
  // views. Late-round messages must exceed any O(log n)-bit budget by far —
  // the cost Theorem 2's algorithm exists to avoid.
  auto run = runLocal(512, 7, makeHonestLocalAdversary(), 0);
  const ByzantineSet none(512, {});
  const auto honest = none.honestNodes();
  const double logN = std::log(512.0);
  const std::size_t smallBudget = static_cast<std::size_t>((logN + 9) * 64);
  EXPECT_LT(run.out.result.meter.fractionWithin(honest, smallBudget), 0.05);
}

TEST(LocalInvariants, MuteWaveTravelsAtOneHopPerRound) {
  // Under the silent adversary, decisions propagate as a wave: estimate(u)
  // in [dist(u), dist(u)+1] was checked elsewhere; here: neighbours differ
  // by at most 1 round.
  auto run = runLocal(512, 8, makeSilentLocalAdversary(), 20);
  for (NodeId u = 0; u < 512; ++u) {
    if (run.byz.contains(u)) continue;
    for (NodeId v : run.g.neighbors(u)) {
      if (run.byz.contains(v)) continue;
      EXPECT_LE(std::abs(run.out.result.decisions[u].estimate -
                         run.out.result.decisions[v].estimate),
                1.0 + 1e-9);
    }
  }
}

TEST(LocalAttacksExtra, FakeWorldWithoutMoatIsCaught) {
  // With random placement there is no sealed moat: honest records flood
  // everywhere, contradict the fabricated self-records, and every node
  // decides at distance-to-Byzantine scale. Nobody is strung along.
  auto run = runLocal(512, 9, makeFakeWorldLocalAdversary({}), 20, Placement::Random);
  const std::uint32_t diam = exactDiameter(run.g);
  for (NodeId u = 0; u < 512; ++u) {
    if (run.byz.contains(u)) continue;
    ASSERT_TRUE(run.out.result.decisions[u].decided);
    EXPECT_LE(run.out.result.decisions[u].estimate, diam + 1.0);
  }
  EXPECT_GT(run.out.stats.inconsistencyDecisions, 0u);
}

TEST(LocalAttacksExtra, AdversaryNamesStable) {
  EXPECT_STREQ(makeHonestLocalAdversary()->name(), "honest");
  EXPECT_STREQ(makeSilentLocalAdversary()->name(), "silent");
  EXPECT_STREQ(makeConflictLocalAdversary()->name(), "conflict");
  EXPECT_STREQ(makeDegreeBombLocalAdversary()->name(), "degree-bomb");
  EXPECT_STREQ(makeFakeWorldLocalAdversary({})->name(), "fake-world");
}

TEST(LocalRobustness, RoundCapReportsUndecided) {
  Rng rng(10);
  Graph g = hnd(256, 8, rng);
  const ByzantineSet none(256, {});
  auto adv = makeHonestLocalAdversary();
  LocalParams params;
  params.maxRounds = 2;  // decisions need ~5 rounds: everyone capped
  Rng runRng = rng.fork(3);
  const auto out = runLocalCounting(g, none, *adv, params, runRng);
  EXPECT_TRUE(out.result.hitRoundCap);
  EXPECT_GT(out.stats.undecidedAtCap, 200u);
}

TEST(LocalRobustness, RunsOnNonRegularTopologies) {
  // Bounded-degree but irregular graphs are within Theorem 1's model.
  std::vector<Graph> graphs;
  Rng wsRng(11);
  graphs.push_back(wattsStrogatz(128, 3, 0.1, wsRng));
  graphs.push_back(torus2d(10, 10));
  for (const auto& g : graphs) {
    const ByzantineSet none(g.numNodes(), {});
    auto adv = makeHonestLocalAdversary();
    LocalParams params;
    Rng rng(12);
    const auto out = runLocalCounting(g, none, *adv, params, rng);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      EXPECT_TRUE(out.result.decisions[u].decided) << "node " << u;
    }
  }
}

TEST(LocalRobustness, MismatchedByzantineSetRejected) {
  const Graph g = ring(8);
  const ByzantineSet wrong(9, {});
  auto adv = makeHonestLocalAdversary();
  LocalParams params;
  Rng rng(13);
  EXPECT_THROW((void)runLocalCounting(g, wrong, *adv, params, rng), std::invalid_argument);
}

// Property sweep: the gamma budget. As gamma shrinks (more Byzantine nodes)
// the silent-attack estimates shrink toward 1, but all stay within
// [dist, diam+1].
class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, WindowHoldsAcrossBudgets) {
  const double gamma = GetParam();
  const NodeId n = 512;
  auto run = runLocal(n, 200, makeSilentLocalAdversary(), byzantineBudget(n, gamma));
  const std::uint32_t diam = exactDiameter(run.g);
  for (NodeId u = 0; u < n; ++u) {
    if (run.byz.contains(u)) continue;
    const auto& rec = run.out.result.decisions[u];
    ASSERT_TRUE(rec.decided);
    EXPECT_GE(rec.estimate, run.out.stats.distToByz[u]);
    EXPECT_LE(rec.estimate, diam + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, GammaSweep, ::testing::Values(0.35, 0.45, 0.55, 0.7));

}  // namespace
}  // namespace bzc
