// Unit tests for the support layer: deterministic RNG, statistics, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace bzc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng childBefore = parent.fork(3);
  const std::uint64_t firstDraw = childBefore.next();
  // Forking with the same tag from the same parent state reproduces.
  Rng parent2(7);
  Rng childAgain = parent2.fork(3);
  EXPECT_EQ(childAgain.next(), firstDraw);
}

TEST(Rng, ForkDifferentTagsDecorrelated) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 8 * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.02);
}

TEST(Rng, GeometricMeanIsTwo) {
  Rng rng(29);
  double sum = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) sum += rng.geometricFlips();
  EXPECT_NEAR(sum / draws, 2.0, 0.05);
}

TEST(Rng, GeometricMinimumIsOne) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometricFlips(), 1u);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(37);
  double sum = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) sum += rng.exponential();
  EXPECT_NEAR(sum / draws, 1.0, 0.03);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(41);
  const auto perm = rng.permutation(100);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto sample = rng.sampleWithoutReplacement(50, 20);
  std::set<std::uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(47);
  const auto sample = rng.sampleWithoutReplacement(10, 10);
  std::set<std::uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleTooLargeThrows) {
  Rng rng(53);
  EXPECT_THROW((void)rng.sampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat stat;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0;
  for (double x : xs) {
    stat.add(x);
    sum += x;
  }
  EXPECT_EQ(stat.count(), xs.size());
  EXPECT_DOUBLE_EQ(stat.mean(), sum / xs.size());
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 16.0);
  // Sample variance by hand.
  double ss = 0;
  for (double x : xs) ss += (x - stat.mean()) * (x - stat.mean());
  EXPECT_NEAR(stat.variance(), ss / (xs.size() - 1), 1e-9);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeEmptySides) {
  RunningStat a;
  a.add(3.0);
  a.add(5.0);

  RunningStat empty;
  a.merge(empty);  // empty right side is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_NEAR(a.variance(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  RunningStat b;
  b.merge(a);  // empty left side adopts the right side wholesale
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
  EXPECT_NEAR(b.variance(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 5.0);

  RunningStat c;
  RunningStat d;
  c.merge(d);  // both empty stays empty, not NaN
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.mean(), 0.0);
  EXPECT_EQ(c.variance(), 0.0);
}

TEST(RunningStat, MergeSingleElementSides) {
  // Two singletons combine into an exact two-sample stat: the Chan update
  // must not lose the cross term when either m2 is still zero.
  RunningStat a;
  RunningStat b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_NEAR(a.variance(), 8.0, 1e-12);  // ((2-4)^2 + (6-4)^2) / (2-1)
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);

  // Singleton merged into a larger side matches the sequential stat.
  RunningStat seq;
  for (const double x : {2.0, 6.0, 7.0}) seq.add(x);
  RunningStat single;
  single.add(7.0);
  a.merge(single);
  EXPECT_EQ(a.count(), seq.count());
  EXPECT_NEAR(a.mean(), seq.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), seq.variance(), 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(Quantile, OrderStatistics) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(FitLinear, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v - 2.0);
  const LinearFit fit = fitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitLinear, NoisyLineHighR2) {
  Rng rng(59);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 5.0 + (rng.uniformDouble() - 0.5));
  }
  const LinearFit fit = fitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(FitLinear, MismatchedSizesThrow) {
  EXPECT_THROW((void)fitLinear({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)fitLinear({1}, {1}), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.addRow({"alpha", Table::num(1.5, 1)});
  t.addRow({"a-very-long-name", Table::integer(42)});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.5"), std::string::npos);
  EXPECT_NE(rendered.find("42"), std::string::npos);
  // Header separator present.
  EXPECT_NE(rendered.find("|--"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, FormattersProduceExpectedText) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-7), "-7");
  EXPECT_EQ(Table::percent(0.5, 0), "50%");
}

}  // namespace
}  // namespace bzc
