// Cross-module integration tests: end-to-end theorem-level scenarios
// (Theorem 1, Theorem 2, Theorem 3's impossibility gadget) exercised through
// the public API exactly the way the bench harnesses do.
#include <gtest/gtest.h>

#include <cmath>

#include "counting/baselines/geometric.hpp"
#include "counting/beacon/protocol.hpp"
#include "counting/local/protocol.hpp"
#include "graph/bfs.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

// --- Theorem 1 end-to-end: deterministic LOCAL counting. ---

TEST(TheoremOne, GoodNodesLandInWindowUnderAttack) {
  const NodeId n = 512;
  Rng rng(1);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);  // n^{0.45} ~ 16
  Rng prng = rng.fork(2);
  const auto byz = placeByzantine(g, spec, prng);
  auto adv = makeConflictLocalAdversary();
  LocalParams params;
  Rng runRng = rng.fork(3);
  const auto out = runLocalCounting(g, byz, *adv, params, runRng);
  const std::uint32_t diam = exactDiameter(g);

  std::size_t good = 0;
  std::size_t inWindow = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u) || out.stats.distToByz[u] < 2) continue;
    ++good;
    ASSERT_TRUE(out.result.decisions[u].decided);
    const double est = out.result.decisions[u].estimate;
    if (est >= out.stats.distToByz[u] && est <= diam + 1) ++inWindow;
  }
  EXPECT_EQ(good, inWindow);
  EXPECT_LE(out.result.totalRounds, diam + 2u);  // O(log n) rounds, Theorem 1
}

// --- Theorem 2 end-to-end: randomized counting with small messages. ---

TEST(TheoremTwo, FlooderScenarioMeetsDefinitionTwo) {
  const NodeId n = 1024;
  Rng rng(4);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);
  Rng prng = rng.fork(5);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconParams params;
  BeaconLimits limits;
  limits.maxPhase = static_cast<std::uint32_t>(std::ceil(std::log(static_cast<double>(n)))) + 3;
  Rng runRng = rng.fork(6);
  const auto out =
      runBeaconCounting(g, byz, BeaconAttackProfile::full(), params, limits, runRng);

  const QualityWindow window{0.3, 1.8};
  const auto q = evaluateQuality(out.result, byz, n, window);
  // Definition 2 with beta: most honest nodes decide a constant-factor
  // estimate of log n.
  EXPECT_GT(q.fracWithinWindow, 0.75) << "within-window " << q.fracWithinWindow;
  // Round bound: O(B log^2 n).
  const double bLog2 = std::pow(static_cast<double>(n), 0.45) *
                       std::log(static_cast<double>(n)) * std::log(static_cast<double>(n));
  EXPECT_LT(out.result.totalRounds, 10.0 * bLog2);
}

TEST(TheoremTwo, MostNodesSendSmallMessages) {
  const NodeId n = 1024;
  Rng rng(7);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);
  Rng prng = rng.fork(8);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconParams params;
  BeaconLimits limits;
  limits.maxPhase = static_cast<std::uint32_t>(std::ceil(std::log(static_cast<double>(n)))) + 2;
  Rng runRng = rng.fork(9);
  const auto out =
      runBeaconCounting(g, byz, BeaconAttackProfile::flooder(), params, limits, runRng);
  // Beacon paths carry O(i+2) = O(log n) IDs: with the fake prefix, the
  // largest message stays below ~(log n + 6) IDs' worth of bits.
  const auto honest = byz.honestNodes();
  const double logN = std::log(static_cast<double>(n));
  const std::size_t budget = static_cast<std::size_t>((logN + 8.0) * 64.0);
  EXPECT_GT(out.result.meter.fractionWithin(honest, budget), 0.95);
}

// --- Theorem 3: the glued-copies impossibility gadget. ---

TEST(TheoremThree, LowExpansionGadgetDefeatsEstimation) {
  // t copies of a ring glued at one (Byzantine) hub: honest nodes inside a
  // copy cannot tell t=2 from t=8, so their estimates cannot track log(nt).
  // Per-copy maxima are noisy, so each configuration is averaged over seeds.
  const NodeId m = 64;
  const Graph base = ring(m);
  std::vector<double> meanEstimates;
  for (NodeId copies : {2u, 8u}) {
    const Graph g = gluedCopies(base, 0, copies);
    const ByzantineSet byz(g.numNodes(), {0});  // the shared hub is Byzantine
    double mean = 0;
    std::size_t count = 0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      Rng rng(100 * copies + seed);
      // The hub suppresses traffic between copies (the worst case for
      // learning about the far copies).
      const auto out = runGeometricMax(g, byz, GeometricAttack::Suppress, {}, rng);
      for (NodeId u = 1; u < g.numNodes(); ++u) {
        if (!out.decisions[u].decided) continue;
        mean += out.decisions[u].estimate;
        ++count;
      }
    }
    meanEstimates.push_back(mean / static_cast<double>(count));
  }
  // True log n grows by ln(8/2) ~ 1.39 nats; the estimates move by far less
  // than half of that, because the per-copy view is pinned at ~log(m).
  EXPECT_LT(std::abs(meanEstimates[1] - meanEstimates[0]), 0.7);
}

TEST(TheoremThree, GadgetHasVanishingExpansion) {
  const Graph base = ring(32);
  const Graph g = gluedCopies(base, 0, 4);
  Rng rng(20);
  const SweepCut cut = fiedlerSweep(g, 300, rng);
  // One copy forms a sparse cut through the hub.
  EXPECT_LT(cut.expansion, 0.1);
}

TEST(TheoremThree, EstimatesTrackNOnExpanderButNotOnGadget) {
  // Expansion is necessary (Theorem 3), measured as *sensitivity to n*: on
  // H(n,d) the decided beacon phase grows with n; on the glued-rings gadget
  // (expansion -> 0, one Byzantine hub) it is pinned by local arc dynamics
  // and cannot follow n at all.
  auto meanEstimate = [](const BeaconOutcome& out, const ByzantineSet& byz) {
    double mean = 0;
    std::size_t count = 0;
    for (NodeId u = 0; u < byz.numNodes(); ++u) {
      if (byz.contains(u) || !out.result.decisions[u].decided) continue;
      mean += out.result.decisions[u].estimate;
      ++count;
    }
    return mean / static_cast<double>(count);
  };

  // (a) Expander: 8x more nodes -> the phase estimate visibly grows.
  std::vector<double> expanderMeans;
  for (NodeId n : {256u, 2048u}) {
    Rng rng(21 + n);
    const Graph g = hnd(n, 8, rng);
    const ByzantineSet none(n, {});
    Rng run = rng.fork(1);
    expanderMeans.push_back(
        meanEstimate(runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, run), none));
  }
  EXPECT_GE(expanderMeans[1] - expanderMeans[0], 0.9);

  // (b) Gadget: 8x more nodes (2 -> 16 copies), estimate barely moves
  // (averaged over seeds; single runs carry ~0.5 phase of noise).
  const NodeId m = 128;
  std::vector<double> gadgetMeans;
  for (NodeId copies : {2u, 16u}) {
    const Graph g = gluedCopies(ring(m), 0, copies);
    const ByzantineSet byz(g.numNodes(), {0});
    double mean = 0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng run(22 + 100 * copies + seed);
      BeaconLimits limits;
      limits.maxPhase = 40;
      mean += meanEstimate(
          runBeaconCounting(g, byz, BeaconAttackProfile::suppressor(), {}, limits, run), byz);
    }
    gadgetMeans.push_back(mean / 4.0);
  }
  const double gadgetGrowth = std::abs(gadgetMeans[1] - gadgetMeans[0]);
  EXPECT_LT(gadgetGrowth, 0.6);
  EXPECT_LT(gadgetGrowth, expanderMeans[1] - expanderMeans[0]);
}

// --- Cross-protocol sanity: both algorithms agree on the scale. ---

TEST(CrossCheck, BothAlgorithmsTrackLogN) {
  const NodeId n = 512;
  Rng rng(30);
  Graph g = hnd(n, 8, rng);
  const ByzantineSet none(n, {});
  Rng r1 = rng.fork(1);
  const auto beacon = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, r1);
  auto adv = makeHonestLocalAdversary();
  LocalParams params;
  Rng r2 = rng.fork(2);
  const auto local = runLocalCounting(g, none, *adv, params, r2);
  // Both estimates are Θ(log n); their ratio is a fixed constant (≈ ln d /
  // growth-rate effects), bounded here loosely.
  const double est1 = beacon.result.decisions[7].estimate;
  const double est2 = local.result.decisions[7].estimate;
  EXPECT_GT(est1 / est2, 0.4);
  EXPECT_LT(est1 / est2, 2.5);
}

}  // namespace
}  // namespace bzc
