// Deeper properties of the agreement layer: walk mixing identities,
// adversary-pressure monotonicity, iteration-freeze semantics, and pipeline
// robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "agreement/majority.hpp"
#include "agreement/pipeline.hpp"
#include "agreement/random_walk.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(WalkProperties, ZeroLengthWalkStaysPut) {
  const Graph g = ring(10);
  const ByzantineSet none(10, {});
  Rng rng(1);
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(sampleViaWalk(g, none, u, 0, rng).endpoint, u);
  }
}

TEST(WalkProperties, CompromiseFlagMonotoneInByzCount) {
  Rng gen(2);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  auto compromisedFraction = [&](std::size_t byzCount) {
    PlacementSpec spec;
    spec.kind = Placement::Random;
    spec.count = byzCount;
    Rng prng(3);
    const auto byz = placeByzantine(g, spec, prng);
    Rng rng(4);
    std::size_t hits = 0;
    const int samples = 3000;
    for (int s = 0; s < samples; ++s) {
      const auto start = static_cast<NodeId>(rng.uniform(n));
      if (byz.contains(start)) continue;
      hits += sampleViaWalk(g, byz, start, 8, rng).compromised ? 1 : 0;
    }
    return static_cast<double>(hits) / samples;
  };
  const double f4 = compromisedFraction(4);
  const double f16 = compromisedFraction(16);
  const double f64 = compromisedFraction(64);
  EXPECT_LT(f4, f16);
  EXPECT_LT(f16, f64);
}

TEST(WalkProperties, TvDistanceDecreasesWithLength) {
  Rng gen(5);
  const Graph g = hnd(512, 8, gen);
  Rng rng(6);
  double prev = 1.0;
  for (std::uint32_t len : {1u, 4u, 10u}) {
    const double tv = walkEndpointTvDistance(g, 3, len, 3000, rng);
    EXPECT_LE(tv, prev + 0.05) << "len " << len;
    prev = tv;
  }
}

TEST(WalkProperties, TvDistanceStrictlyImprovesOnExpanderAcrossStarts) {
  // Monotone improvement from 1 step to mixing-time-scale walks must hold
  // from every start, not just a lucky one.
  Rng gen(40);
  const Graph g = hnd(512, 8, gen);
  for (NodeId start : {0u, 17u, 255u, 511u}) {
    Rng rng(41 + start);
    const double tvShort = walkEndpointTvDistance(g, start, 1, 3000, rng);
    const double tvLong = walkEndpointTvDistance(g, start, 12, 3000, rng);
    EXPECT_LT(tvLong, tvShort) << "start " << start;
    EXPECT_LT(tvLong, 0.25) << "start " << start;
  }
}

TEST(WalkProperties, CompromiseFlagMatchesTraceExactly) {
  // sampleViaWalk must mark compromise iff the walk's actual trajectory
  // (start included) touched a Byzantine node — never spuriously, never
  // missing a contact.
  Rng gen(42);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 24;
  Rng prng(43);
  const auto byz = placeByzantine(g, spec, prng);
  Rng rng(44);
  std::vector<NodeId> trace;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto start = static_cast<NodeId>(rng.uniform(n));
    const auto len = static_cast<std::uint32_t>(rng.uniform(12));
    const WalkSample s = sampleViaWalk(g, byz, start, len, rng, &trace);
    ASSERT_EQ(trace.size(), static_cast<std::size_t>(len) + 1);
    ASSERT_EQ(trace.front(), start);
    ASSERT_EQ(trace.back(), s.endpoint);
    bool touched = false;
    for (NodeId v : trace) touched = touched || byz.contains(v);
    EXPECT_EQ(s.compromised, touched) << "trial " << trial;
    // Consecutive trace entries must be graph edges.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
      ASSERT_TRUE(g.hasEdge(trace[i], trace[i + 1]));
    }
  }
}

TEST(MajorityProperties, UnanimousInputIsStable) {
  Rng gen(7);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  params.initialOnesFraction = 1.0;
  Rng rng(8);
  const auto out = runMajorityAgreement(g, none, std::log(256.0), params, rng);
  EXPECT_DOUBLE_EQ(out.fracAgreeing, 1.0);
  EXPECT_EQ(out.initialMajority, 1);
}

TEST(MajorityProperties, ZeroMajorityAlsoConverges) {
  Rng gen(9);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  params.initialOnesFraction = 0.25;  // majority is 0
  Rng rng(10);
  const auto out = runMajorityAgreement(g, none, std::log(512.0), params, rng);
  EXPECT_EQ(out.initialMajority, 0);
  EXPECT_TRUE(out.almostEverywhere(0.02));
}

TEST(MajorityProperties, CloserSplitIsHarder) {
  Rng gen(11);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;
  Rng prng(12);
  const auto byz = placeByzantine(g, spec, prng);
  auto agreeAt = [&](double split) {
    AgreementParams params;
    params.initialOnesFraction = split;
    params.iterationFactor = 0.6;  // starve iterations so difficulty shows
    Rng rng(13);
    return runMajorityAgreement(g, byz, std::log(512.0), params, rng).fracAgreeing;
  };
  EXPECT_GE(agreeAt(0.85) + 0.02, agreeAt(0.55));
}

TEST(MajorityProperties, EngineRoundsScaleWithEstimate) {
  Rng gen(14);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  Rng r1(15);
  const auto small = runMajorityAgreement(g, none, 3.0, params, r1);
  Rng r2(15);
  const auto large = runMajorityAgreement(g, none, 12.0, params, r2);
  // Real engine rounds: with a uniform estimate L the run takes
  // ceil(2L) iterations of (2*ceil(L) + 1) rounds each.
  EXPECT_EQ(small.totalRounds, 6u * 7u);
  EXPECT_EQ(large.totalRounds, 24u * 25u);
  EXPECT_GT(large.totalRounds, 3 * small.totalRounds);
}

TEST(MajorityProperties, MessageCostsScaleWithWalkTraffic) {
  // Every sample is a token walking out and an answer walking back, all
  // unicast and engine-metered: iterations * 2 samples/node * 2*walkLen
  // messages per honest node (plus nothing else).
  Rng gen(30);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  Rng rng(31);
  const double L = 4.0;  // walkLen = 4, iters = 8
  const auto out = runMajorityAgreement(g, none, L, params, rng);
  // 8 iterations * 256 nodes * 2 tokens * (4 out + 4 back) hops.
  EXPECT_EQ(out.meter.totalMessages(), 8ull * 256 * 2 * 8);
  EXPECT_GT(out.meter.totalBits(), out.meter.totalMessages());  // > 1 bit/msg
}

TEST(MajorityProperties, FrozenNodesKeepTheirBit) {
  // Nodes with a small estimate stop iterating early but still hold a final
  // value; the outcome counts them.
  Rng gen(16);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  std::vector<double> estimates(n, std::log(256.0));
  for (NodeId u = 0; u < 32; ++u) estimates[u] = 1.0;  // early freezers
  AgreementParams params;
  params.initialOnesFraction = 0.8;
  Rng rng(17);
  const auto out = runMajorityAgreement(g, none, estimates, params, rng);
  EXPECT_EQ(out.honestCount, static_cast<std::size_t>(n));
  EXPECT_GT(out.fracAgreeing, 0.85);
}

TEST(PipelineProperties, FallbackEstimateCoversUndecided) {
  // Under heavy flooding some nodes never decide; the pipeline substitutes
  // the fallback estimate and agreement still proceeds.
  Rng gen(18);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;
  Rng prng(19);
  const auto byz = placeByzantine(g, spec, prng);
  PipelineParams params;
  params.agreement.initialOnesFraction = 0.75;
  params.agreement.walkLengthFactor = 0.5;
  params.countingLimits.maxPhase = 9;
  params.fallbackEstimate = 5.0;
  Rng rng(20);
  const auto out = runCountingThenAgreement(g, byz, BeaconAttackProfile::flooder(), params, rng);
  EXPECT_GT(out.agreement.fracAgreeing, 0.85);
}

TEST(PipelineProperties, DeterministicEndToEnd) {
  Rng gen(21);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  PipelineParams params;
  Rng r1(22);
  const auto a = runCountingThenAgreement(g, none, BeaconAttackProfile::none(), params, r1);
  Rng r2(22);
  const auto b = runCountingThenAgreement(g, none, BeaconAttackProfile::none(), params, r2);
  EXPECT_EQ(a.agreement.fracAgreeing, b.agreement.fracAgreeing);
  EXPECT_EQ(a.totalRounds, b.totalRounds);
}

// Parameterised: agreement succeeds across estimate scales >= ln n (any
// constant-factor upper bound works — the §1.1 claim).
class EstimateScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(EstimateScaleSweep, UpperBoundsAllWork) {
  const double factor = GetParam();
  Rng gen(23);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 5;
  Rng prng(24);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  params.initialOnesFraction = 0.75;
  Rng rng(25);
  const auto out =
      runMajorityAgreement(g, byz, factor * std::log(static_cast<double>(n)), params, rng);
  EXPECT_TRUE(out.almostEverywhere(0.1)) << "factor " << factor << ": " << out.fracAgreeing;
}

INSTANTIATE_TEST_SUITE_P(Factors, EstimateScaleSweep, ::testing::Values(1.0, 1.5, 2.0));

}  // namespace
}  // namespace bzc
