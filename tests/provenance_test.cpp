// Tests for the causal-provenance layer (src/obs/provenance.hpp, DESIGN.md
// §14). The contract: blame collection is unconditional and strictly
// observational (goldens bit-identical with attribution exported or not),
// every blame-edge family reconciles bit-for-bit against the protocol-side
// AdversaryStats / BeaconRunStats counters (recorder and counter increment at
// the same program point), and the canonical blame projection is a pure
// function of the trial across runner threads x engine shards x epoch
// pipeline depth.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/beacon/strategies.hpp"
#include "churn/schedule.hpp"
#include "golden_scenarios.hpp"
#include "obs/provenance.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "runtime/experiment.hpp"

namespace bzc {
namespace {

using obs::BlameEdge;
using obs::BlameGraph;
using obs::BlameKind;
using obs::kBlameNone;

/// Canonical projection + totals as comparable lines — the blame-graph
/// analogue of obs_test's trace projection (mirrors blame_report.py --diff).
std::vector<std::string> canonLines(const BlameGraph& g) {
  std::vector<std::string> out;
  for (const BlameEdge& e : g.canonical()) {
    std::ostringstream os;
    os << obs::blameKindName(e.kind) << ' ' << e.cause << ' ' << e.victim << ' ' << e.count;
    out.push_back(os.str());
  }
  for (const auto& [name, value] : g.totals()) {
    out.push_back(name + "=" + std::to_string(value));
  }
  return out;
}

/// Golden-style agreement run with a selectable walk attack.
AgreementOutcome runAttackedAgreement(const AgreementAttackProfile& profile,
                                      unsigned shards = 1) {
  const NodeId n = 192;
  const Graph g = golden::graph(n, 8, 26);
  const ByzantineSet byz = golden::place(g, Placement::Random, 6, 15);
  AgreementParams params;
  params.initialOnesFraction = 0.7;
  params.shards = shards;
  params.attack = profile;
  params.victim = 3;
  Rng rng(2025);
  return runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, rng);
}

// ---------------------------------------------------------------------------
// Conservation: per strategy, every damage event became exactly one typed
// edge — edge sums equal the strategy's own counters bit-for-bit, and every
// attributed cause is a real Byzantine node.
// ---------------------------------------------------------------------------

TEST(ProvenanceConservation, WalkEdgeSumsMatchAdversaryStatsPerStrategy) {
  const NodeId n = 192;
  const Graph g = golden::graph(n, 8, 26);
  const ByzantineSet byz = golden::place(g, Placement::Random, 6, 15);
  const AgreementAttackProfile profiles[] = {
      AgreementAttackProfile::adaptiveMinority(), AgreementAttackProfile::dropper(),
      AgreementAttackProfile::flipper(),          AgreementAttackProfile::tamperer(),
      AgreementAttackProfile::hunter(2),
  };
  for (const AgreementAttackProfile& profile : profiles) {
    const AgreementOutcome out = runAttackedAgreement(profile);
    const BlameGraph& bl = out.blame;
    const AdversaryStats& adv = out.adversary;
    EXPECT_EQ(bl.kindCount(BlameKind::DroppedQuery), adv.droppedQueries) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::DroppedAnswer), adv.droppedAnswers) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::FlippedAnswer), adv.flippedAnswers) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::MisroutedAnswer), adv.misroutedAnswers) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::StrayAnswer), adv.strayAnswers) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::ForgedAnswer), adv.forgedAnswers) << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::CompromisedSample), out.compromisedSamples)
        << profile.name;
    // The denominators ride along in the graph itself, so an exported file
    // reconciles without the in-process stats (blame_report.py --check).
    EXPECT_EQ(bl.total("walk.flippedAnswers"), adv.flippedAnswers) << profile.name;
    EXPECT_EQ(bl.total("walk.compromisedSamples"), out.compromisedSamples) << profile.name;
    for (const BlameEdge& e : bl.canonical()) {
      if (e.cause == kBlameNone) continue;
      EXPECT_TRUE(byz.contains(static_cast<NodeId>(e.cause)))
          << profile.name << ": cause " << e.cause << " is not Byzantine";
      if (e.kind == BlameKind::CompromisedSample || e.kind == BlameKind::WrongDecision) {
        ASSERT_NE(e.victim, kBlameNone);
        EXPECT_FALSE(byz.contains(static_cast<NodeId>(e.victim)))
            << profile.name << ": victim " << e.victim << " is not honest";
      }
    }
    // Wrong decisions only exist where compromised samples reached an origin.
    if (out.compromisedSamples == 0) {
      EXPECT_EQ(bl.kindCount(BlameKind::WrongDecision), 0U) << profile.name;
    }
  }
}

TEST(ProvenanceConservation, BeaconBlacklistBlameSumsToInsertionCounters) {
  const NodeId n = 192;
  const Graph g = golden::graph(n, 8, 21);
  const ByzantineSet byz = golden::place(g, Placement::Random, 10, 5);
  BeaconParams params;
  BeaconLimits limits;
  limits.maxPhase = 8;
  limits.maxTotalRounds = 20'000;
  for (const auto& profile :
       {BeaconAdversaryProfile::prefixGrafter(2), BeaconAdversaryProfile::tamperer(2),
        BeaconAdversaryProfile::full(2)}) {
    const std::unique_ptr<BeaconAdversary> adv = makeBeaconAdversary(profile, g, byz);
    Rng rng(4242);
    const BeaconOutcome out = runBeaconCounting(g, byz, *adv, params, limits, rng);
    const BlameGraph& bl = out.blame;
    // Every blacklist insertion is either blamed on the forger whose tainted
    // path planted it, or explicitly counted as untainted collateral.
    EXPECT_EQ(bl.kindCount(BlameKind::BlacklistedHonestId) +
                  bl.kindCount(BlameKind::BlacklistedFakeId) +
                  bl.total("beacon.untaintedInsertions"),
              out.stats.blacklistInsertions)
        << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::BeaconForged) + bl.kindCount(BlameKind::RelayTampered),
              out.stats.adversary.beaconsForged)
        << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::RelaySuppressed), out.stats.adversary.relaysSuppressed)
        << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::ContinueSuppressed),
              out.stats.adversary.continuesSuppressed)
        << profile.name;
    EXPECT_EQ(bl.kindCount(BlameKind::ContinueSpam), out.stats.adversary.continuesSpammed)
        << profile.name;
    for (const BlameEdge& e : bl.canonical()) {
      if (e.cause == kBlameNone) continue;
      EXPECT_TRUE(byz.contains(static_cast<NodeId>(e.cause)))
          << profile.name << ": cause " << e.cause;
      if (e.kind == BlameKind::BlacklistedHonestId) {
        ASSERT_NE(e.victim, kBlameNone);
        EXPECT_FALSE(byz.contains(static_cast<NodeId>(e.victim))) << profile.name;
      }
    }
    // The grafter's whole point is planting honest ids; make sure the blame
    // graph actually caught some.
    if (profile.kind == BeaconAttackKind::PrefixGrafter) {
      EXPECT_GT(bl.kindCount(BlameKind::BlacklistedHonestId), 0U);
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed-coalition pipeline: totals reconcile bit-for-bit, subsets partition
// the attributed damage, and the summary extras are exact projections.
// ---------------------------------------------------------------------------

ScenarioSpec coalitionPipelineSpec() {
  ScenarioSpec spec;
  spec.name = "prov-coalition";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Surround;
  spec.placement.count = 16;
  spec.placement.victim = 3;
  spec.placement.moatRadius = 2;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.countingLimits.maxPhase = 7;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.coalitionPlan = CoalitionPlan::split(
      "grafters", 0.5, BeaconAdversaryProfile::prefixGrafter(2),
      AgreementAttackProfile::adaptiveMinority(), "hunters", BeaconAdversaryProfile::none(),
      AgreementAttackProfile::hunter(2));
  spec.trials = 2;
  spec.masterSeed = 0xabc1;
  return spec;
}

TEST(ProvenanceCoalition, PipelineTotalsReconcileAndSubsetsPartitionBlame) {
  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(coalitionPipelineSpec());
  ASSERT_EQ(s.perTrial.size(), 2U);
  for (const TrialOutcome& t : s.perTrial) {
    const BlameGraph& bl = t.blame;
    // Walk identities against the totals the graph carries.
    EXPECT_EQ(bl.kindCount(BlameKind::DroppedQuery), bl.total("walk.droppedQueries"));
    EXPECT_EQ(bl.kindCount(BlameKind::DroppedAnswer), bl.total("walk.droppedAnswers"));
    EXPECT_EQ(bl.kindCount(BlameKind::FlippedAnswer), bl.total("walk.flippedAnswers"));
    EXPECT_EQ(bl.kindCount(BlameKind::MisroutedAnswer), bl.total("walk.misroutedAnswers"));
    EXPECT_EQ(bl.kindCount(BlameKind::StrayAnswer), bl.total("walk.strayAnswers"));
    EXPECT_EQ(bl.kindCount(BlameKind::ForgedAnswer), bl.total("walk.forgedAnswers"));
    EXPECT_EQ(bl.kindCount(BlameKind::CompromisedSample), bl.total("walk.compromisedSamples"));
    // Beacon identities.
    EXPECT_EQ(bl.kindCount(BlameKind::BeaconForged) + bl.kindCount(BlameKind::RelayTampered),
              bl.total("beacon.beaconsForged"));
    EXPECT_EQ(bl.kindCount(BlameKind::BlacklistedHonestId) +
                  bl.kindCount(BlameKind::BlacklistedFakeId) +
                  bl.total("beacon.untaintedInsertions"),
              bl.total("beacon.blacklistInsertions"));
    // The coalition plan annotated subsets; every attributed cause maps to
    // exactly one subset, so the per-subset split partitions the blame.
    ASSERT_FALSE(bl.subsetOf.empty());
    for (const BlameEdge& e : bl.canonical()) {
      if (e.cause == kBlameNone) continue;
      ASSERT_LT(e.cause, bl.subsetOf.size());
      EXPECT_NE(bl.subsetOf[e.cause], 0xff) << "cause " << e.cause << " unmapped";
    }
    const std::vector<std::uint64_t> bySubset = blameBySubset(bl);
    std::uint64_t subsetSum = 0;
    for (const std::uint64_t v : bySubset) subsetSum += v;
    EXPECT_EQ(subsetSum, bl.attributedCount());
    // Extras are exact projections of the same graph.
    EXPECT_EQ(t.extra[kAgreementBlameTotal], static_cast<double>(blameTotal(bl)));
    EXPECT_EQ(t.extra[kAgreementWrongDecisions],
              static_cast<double>(bl.kindCount(BlameKind::WrongDecision)));
    EXPECT_EQ(t.extra[kAgreementBlameConcentration], blameConcentration(bl));
    EXPECT_EQ(t.extra[kAgreementBlameTopShare], blameTopShare(bl));
    EXPECT_EQ(t.extra[kAgreementBlameSubset0], static_cast<double>(bySubset[0]));
    EXPECT_EQ(t.extra[kAgreementBlameSubset1], static_cast<double>(bySubset[1]));
    // Both subsets actually did damage in this scenario.
    EXPECT_GT(bySubset[0] + bySubset[1], 0U);
  }
}

// ---------------------------------------------------------------------------
// Strict observation: attribution export on/off changes nothing, and the
// exported JSONL carries the full graph.
// ---------------------------------------------------------------------------

TEST(ProvenanceIdentity, GoldensBitIdenticalWithAttributionSinkInstalled) {
  ScenarioSpec spec = coalitionPipelineSpec();
  ExperimentRunner runner(2);
  const ExperimentSummary plain = runner.run(spec);

  const auto sink = std::make_shared<obs::CapturingTraceSink>();
  obs::setTraceSink(sink, /*sampleTrials=*/2);
  const ExperimentSummary sampled = runner.run(spec);
  obs::setTraceSink(nullptr);

  EXPECT_EQ(sampled.combinedFingerprint, plain.combinedFingerprint);
  ASSERT_EQ(sink->traces().size(), 2U);
  for (std::uint32_t i = 0; i < 2; ++i) {
    // The trace rides the same blame graph the summary keeps, and sampling
    // did not move a single edge.
    EXPECT_EQ(canonLines(sink->traces()[i].blame), canonLines(plain.perTrial[i].blame));
    // Sampled trials also get the victim-BFS annotation for the
    // distance-to-victim curves; it lives outside the canonical projection.
    EXPECT_FALSE(sink->traces()[i].blame.victimDistance.empty());
    EXPECT_TRUE(plain.perTrial[i].blame.victimDistance.empty());
  }

  std::ostringstream os;
  obs::AttribJsonlSink::writeBlame(os, sink->traces()[0]);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"type\":\"blame\""), std::string::npos);
  EXPECT_NE(line.find("\"scenario\":\"prov-coalition\""), std::string::npos);
  EXPECT_NE(line.find("\"edges\":["), std::string::npos);
  EXPECT_NE(line.find("\"totals\":{"), std::string::npos);
  EXPECT_NE(line.find("walk.compromisedSamples"), std::string::npos);
  EXPECT_NE(line.find("\"victimDist\":["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Walk-token flow marks: every launched token terminates exactly once
// (answer or drop), and turning the marks on moves no result.
// ---------------------------------------------------------------------------

TEST(ProvenanceFlow, LaunchMarksReconcileWithAnswerPlusDrop) {
  ScenarioSpec spec;
  spec.name = "prov-flow";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 8;
  spec.placement.victim = 3;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.agreementParams.attack = AgreementAttackProfile::tamperer();
  spec.trials = 1;
  spec.masterSeed = 0xf10a;

  ExperimentRunner runner(1);
  const ExperimentSummary plain = runner.run(spec);

  const auto sink = std::make_shared<obs::CapturingTraceSink>();
  obs::setTraceSink(sink, 1);
  obs::setTraceFlowMarks(true);
  const ExperimentSummary marked = runner.run(spec);
  obs::setTraceFlowMarks(false);
  obs::setTraceSink(nullptr);

  EXPECT_EQ(marked.combinedFingerprint, plain.combinedFingerprint);
  ASSERT_EQ(sink->traces().size(), 1U);
  std::uint64_t launches = 0, answers = 0, drops = 0;
  for (const obs::TraceEvent& e : sink->traces()[0].events) {
    if (e.kind != obs::EventKind::Mark || e.name == nullptr) continue;
    const std::string name(e.name);
    if (name == "walk.launch") ++launches;
    if (name == "walk.answer") ++answers;
    if (name == "walk.drop") ++drops;
  }
  EXPECT_GT(launches, 0U);
  EXPECT_EQ(launches, answers + drops);
  // The tamperer redirected answers; some landed stray, so drops are real.
  EXPECT_GT(drops, 0U);
  EXPECT_EQ(answers, sink->traces()[0].blame.total("walk.answeredSamples"));
}

// ---------------------------------------------------------------------------
// Churn: whitewashing rejoin lineage is recorded, and the merged graph's ids
// survive the dense -> global remap (causes live in overlay-id space).
// ---------------------------------------------------------------------------

TEST(ProvenanceChurn, ByzantineRejoinsLeaveLineageEdges)  {
  ScenarioSpec spec;
  spec.name = "prov-churn";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 8;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconAttack = BeaconAttackProfile::tamperer();
  spec.beaconLimits.maxPhase = 7;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::byzantine(/*epochs=*/6, /*rate=*/0.10, /*rejoinBoost=*/3.0);
  spec.trials = 2;
  spec.masterSeed = 0xc4e;

  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(spec);
  std::uint64_t lineageEdges = 0;
  for (const TrialOutcome& t : s.perTrial) {
    EXPECT_EQ(t.blame.kindCount(BlameKind::RejoinLineage), t.blame.total("churn.byzRejoins"));
    lineageEdges += t.blame.kindCount(BlameKind::RejoinLineage);
    for (const BlameEdge& e : t.blame.canonical()) {
      if (e.kind != BlameKind::RejoinLineage) continue;
      // Fresh identities are always concrete; the laundered old identity may
      // be kBlameNone when the rejoin spent carried-over credit.
      EXPECT_NE(e.victim, kBlameNone);
    }
  }
  // The boosted schedule must actually have produced whitewashing rejoins.
  EXPECT_GT(lineageEdges, 0U);
}

// ---------------------------------------------------------------------------
// Determinism matrix: the canonical blame projection is invariant across
// runner threads {1, 2, 8} x engine shards {1, 4} x pipeline depth {1, 2}.
// ---------------------------------------------------------------------------

ScenarioSpec matrixSpec(std::uint32_t shards, std::uint32_t depth) {
  ScenarioSpec spec = coalitionPipelineSpec();
  spec.name = "prov-matrix";
  spec.pipelineParams.countingLimits.maxPhase = 6;
  spec.churn = ChurnSchedule::steady(/*epochs=*/3, /*rate=*/0.08, /*recountEvery=*/2);
  spec.churn.pipelineDepth = depth;
  spec.shards = shards;
  spec.masterSeed = 0xdead5;
  return spec;
}

TEST(ProvenanceDeterminism, BlameProjectionInvariantAcrossThreadsShardsDepth) {
  std::vector<std::vector<std::string>> baseline;
  std::uint64_t baselineFp = 0;
  bool first = true;
  for (const unsigned threads : {1U, 2U, 8U}) {
    for (const std::uint32_t shards : {1U, 4U}) {
      for (const std::uint32_t depth : {1U, 2U}) {
        ExperimentRunner runner(threads);
        const ExperimentSummary s = runner.run(matrixSpec(shards, depth));
        ASSERT_EQ(s.perTrial.size(), 2U);
        std::vector<std::vector<std::string>> proj;
        proj.reserve(2);
        for (const TrialOutcome& t : s.perTrial) proj.push_back(canonLines(t.blame));
        if (first) {
          first = false;
          baseline = std::move(proj);
          baselineFp = s.combinedFingerprint;
          // The baseline run must attribute something, or the matrix is
          // vacuous.
          EXPECT_GT(s.perTrial[0].blame.attributedCount(), 0U);
          continue;
        }
        const std::string tag = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards) +
                                " depth=" + std::to_string(depth);
        EXPECT_EQ(s.combinedFingerprint, baselineFp) << tag;
        for (std::uint32_t i = 0; i < 2; ++i) {
          EXPECT_EQ(proj[i], baseline[i]) << tag << " trial " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BlameGraph unit behaviour: merge is a keyed sum, remap rewrites ids.
// ---------------------------------------------------------------------------

TEST(ProvenanceGraph, MergeSumsAndRemapRewritesNodeIds) {
  BlameGraph a;
  a.add(BlameKind::FlippedAnswer, 1, 2, 3);
  a.addTotal("walk.flippedAnswers", 3);
  BlameGraph b;
  b.add(BlameKind::FlippedAnswer, 1, 2, 4);
  b.add(BlameKind::RejoinLineage, kBlameNone, 9);
  b.addTotal("walk.flippedAnswers", 4);
  a.merge(b);
  EXPECT_EQ(a.kindCount(BlameKind::FlippedAnswer), 7U);
  EXPECT_EQ(a.total("walk.flippedAnswers"), 7U);
  EXPECT_EQ(a.attributedCount(), 7U);  // the kBlameNone-cause edge is unattributed

  a.subsetOf = {0, 1};
  a.remapNodes({100, 101, 102});
  bool sawRemapped = false;
  for (const BlameEdge& e : a.canonical()) {
    if (e.kind == BlameKind::FlippedAnswer) {
      EXPECT_EQ(e.cause, 101U);
      EXPECT_EQ(e.victim, 102U);
      sawRemapped = true;
    }
    if (e.kind == BlameKind::RejoinLineage) {
      EXPECT_EQ(e.cause, kBlameNone);  // sentinel survives the remap
      EXPECT_EQ(e.victim, 9U);         // beyond the table = already global, kept
    }
  }
  EXPECT_TRUE(sawRemapped);
  // Dense-indexed annotations are invalid after a remap and must be dropped.
  EXPECT_TRUE(a.subsetOf.empty());
}

}  // namespace
}  // namespace bzc
