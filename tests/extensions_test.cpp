// Tests for the experimental extensions: the doubling phase schedule (the
// paper's open-problem probe), the targeted flooder, and cross-topology
// robustness of Algorithm 2 on the configuration model ("almost all
// d-regular graphs" — contiguity with H(n,d), Greenhill et al.).
#include <gtest/gtest.h>

#include <cmath>

#include "counting/beacon/protocol.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(ConfigModelContiguity, BeaconCountingWorksOnPairingModel) {
  // The paper transfers H(n,d) results to the configuration model and thus
  // to almost all d-regular graphs; the protocol should behave identically
  // on a pairing-model graph.
  const NodeId n = 1024;
  Rng gen(1);
  const Graph g = configurationModel(n, 8, gen);
  const ByzantineSet none(n, {});
  Rng rng(2);
  const auto out = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, rng);
  const double logdN = std::log(static_cast<double>(n)) / std::log(8.0);
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_TRUE(out.result.decisions[u].decided);
    EXPECT_NEAR(out.result.decisions[u].estimate, logdN + 2.0, 1.6);
  }
  EXPECT_TRUE(out.stats.quiesced);
}

TEST(ConfigModelContiguity, FlooderResilienceTransfers) {
  const NodeId n = 1024;
  Rng gen(3);
  const Graph g = configurationModel(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);
  Rng prng(4);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconLimits limits;
  limits.maxPhase = static_cast<std::uint32_t>(std::ceil(std::log(static_cast<double>(n)))) + 3;
  Rng rng(5);
  const auto out = runBeaconCounting(g, byz, BeaconAttackProfile::flooder(), {}, limits, rng);
  const auto q = evaluateQuality(out.result, byz, n, {0.3, 1.8});
  EXPECT_GT(q.fracWithinWindow, 0.75);
}

TEST(DoublingSchedule, FlooderResilienceRetained) {
  // Doubling phases still beats the flooder: the deciding phase just lands
  // on a power-of-two-ish value, trading estimate tightness for fewer
  // phases.
  const NodeId n = 512;
  Rng gen(6);
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);
  Rng prng(7);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconParams params;
  params.schedule = PhaseSchedule::Doubling;
  BeaconLimits limits;
  limits.maxPhase = 16;
  Rng rng(8);
  const auto out = runBeaconCounting(g, byz, BeaconAttackProfile::flooder(), params, limits, rng);
  std::size_t decided = 0;
  std::size_t honest = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    ++honest;
    if (out.result.decisions[u].decided) {
      ++decided;
      // Phases visited: 2, 4, 8, 16 — estimates must be one of these.
      const auto est = static_cast<std::uint32_t>(out.result.decisions[u].estimate);
      EXPECT_TRUE(est == 2 || est == 4 || est == 8 || est == 16) << est;
    }
  }
  EXPECT_GT(static_cast<double>(decided) / honest, 0.7);
}

TEST(DoublingSchedule, VisitsLogLogPhases) {
  // Reaching phase P takes log2(P) doubling steps vs P-c linear steps.
  BeaconParams p;
  p.schedule = PhaseSchedule::Doubling;
  std::uint32_t phase = 2;
  int steps = 0;
  while (phase < 64) {
    phase = p.nextPhase(phase);
    ++steps;
  }
  EXPECT_EQ(steps, 5);  // 2 -> 4 -> 8 -> 16 -> 32 -> 64
}

TEST(TargetedFlooder, ProfileFields) {
  const auto p = BeaconAttackProfile::targetedFlooder(42, 3);
  EXPECT_TRUE(p.forgeBeacons);
  EXPECT_EQ(p.victim, 42u);
  EXPECT_EQ(p.forgeRadius, 3u);
  EXPECT_EQ(p.name, "targeted-flooder");
}

TEST(TargetedFlooder, CheaperThanGlobalFlooder) {
  // Forging only near the victim produces far fewer forged beacons while
  // still denying the victim's neighbourhood a decision.
  const NodeId n = 512;
  Rng gen(9);
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 20;
  Rng prng(10);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconLimits limits;
  limits.maxPhase = 9;
  Rng r1(11);
  const auto global =
      runBeaconCounting(g, byz, BeaconAttackProfile::flooder(), {}, limits, r1);
  Rng r2(11);
  const auto targeted = runBeaconCounting(
      g, byz, BeaconAttackProfile::targetedFlooder(/*victim=*/7, /*radius=*/2), {}, limits, r2);
  EXPECT_LT(targeted.stats.beaconsForged, global.stats.beaconsForged);
}

TEST(TargetedFlooder, RadiusZeroMeansEveryoneForges) {
  const NodeId n = 256;
  Rng gen(12);
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 10;
  Rng prng(13);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconLimits limits;
  limits.maxPhase = 7;
  BeaconAttackProfile untargeted = BeaconAttackProfile::flooder();  // forgeRadius = 0
  Rng rng(14);
  const auto out = runBeaconCounting(g, byz, untargeted, {}, limits, rng);
  EXPECT_EQ(out.stats.beaconsForged % byz.count(), 0u);
  EXPECT_GT(out.stats.beaconsForged, 0u);
}

// Watts-Strogatz networks: the prior work [14] needed the small-world
// clustering; our Algorithm 2 only needs expansion, and WS graphs at
// moderate rewiring are expanders — counting should work there too.
TEST(CrossTopology, BeaconCountingOnWattsStrogatz) {
  const NodeId n = 1024;
  Rng gen(15);
  const Graph g = wattsStrogatz(n, 4, 0.3, gen);
  const ByzantineSet none(n, {});
  BeaconLimits limits;
  limits.maxPhase = 14;
  Rng rng(16);
  const auto out = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, limits, rng);
  std::size_t decided = 0;
  double mean = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!out.result.decisions[u].decided) continue;
    ++decided;
    mean += out.result.decisions[u].estimate;
  }
  EXPECT_EQ(decided, n);
  mean /= n;
  // Degree-8 WS: same scale as H(n,8), up to the irregular-degree slack.
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 10.0);
}

}  // namespace
}  // namespace bzc
