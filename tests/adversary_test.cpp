// Tests for the pluggable walk-adversary subsystem (src/adversary/):
// strategy semantics via paired-run identities (same seed => identical token
// trajectories, so effects are exact, not statistical), coalition blackboard
// behaviour, the declarative profile path, and thread-count invariance of
// every gallery strategy under the ExperimentRunner.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/profile.hpp"
#include "adversary/strategies.hpp"
#include "adversary/token_arena.hpp"
#include "adversary/walk_adversary.hpp"
#include "agreement/majority.hpp"
#include "agreement/pipeline.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fingerprint.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

// ---------------------------------------------------------------------------
// Shared paired-run fixture: one graph + Byzantine set + seed, different
// strategies. Walk-token trajectories are pure functions of the seed and
// never consult the adversary, so two runs differing only in the attack
// profile see bit-identical walks — set identities between their counters
// are exact.
// ---------------------------------------------------------------------------

struct PairedRun {
  Graph g;
  ByzantineSet byz;

  static PairedRun make() {
    Rng gen(50);
    Graph g = hnd(512, 8, gen);
    PlacementSpec spec;
    spec.kind = Placement::Random;
    spec.count = 12;
    Rng prng(51);
    ByzantineSet byz = placeByzantine(g, spec, prng);
    return {std::move(g), std::move(byz)};
  }

  [[nodiscard]] AgreementOutcome run(const AgreementAttackProfile& attack,
                                     NodeId victim = 0) const {
    AgreementParams params;
    params.initialOnesFraction = 0.7;
    params.attack = attack;
    params.victim = victim;
    Rng rng(52);
    return runMajorityAgreement(g, byz, std::log(512.0), params, rng);
  }
};

TEST(AdaptiveMinority, ExplicitProfileMatchesDefaultBitForBit) {
  const PairedRun fx = PairedRun::make();
  AgreementParams defaults;
  defaults.initialOnesFraction = 0.7;
  Rng r1(52);
  const AgreementOutcome viaDefault =
      runMajorityAgreement(fx.g, fx.byz, std::log(512.0), defaults, r1);
  const AgreementOutcome viaProfile = fx.run(AgreementAttackProfile::adaptiveMinority());
  EXPECT_EQ(fingerprint(viaDefault, fx.g.numNodes()), fingerprint(viaProfile, fx.g.numNodes()));
  // The adaptive adversary forges exactly the samples it tainted, and every
  // launched sample resolves (nothing is dropped or misrouted).
  EXPECT_EQ(viaProfile.adversary.forgedAnswers, viaProfile.compromisedSamples);
  EXPECT_EQ(viaProfile.adversary.droppedQueries, 0u);
  EXPECT_EQ(viaProfile.adversary.strayAnswers, 0u);
  EXPECT_GT(viaProfile.compromisedSamples, 0u);
}

TEST(TokenDropper, StrictlyReducesAnsweredSamples) {
  const PairedRun fx = PairedRun::make();
  const AgreementOutcome adaptive = fx.run(AgreementAttackProfile::adaptiveMinority());
  const AgreementOutcome dropped = fx.run(AgreementAttackProfile::dropper(1.0));
  ASSERT_GT(adaptive.compromisedSamples, 0u);  // the walks do cross the adversary
  // Exact identities: the dropper discards precisely the tokens the adaptive
  // adversary would have tainted (same trajectories up to first contact),
  // and every surviving token resolves honestly.
  EXPECT_EQ(dropped.adversary.droppedQueries, adaptive.compromisedSamples);
  EXPECT_EQ(dropped.answeredSamples + dropped.adversary.droppedQueries,
            adaptive.answeredSamples);
  EXPECT_LT(dropped.answeredSamples, adaptive.answeredSamples);  // strict reduction
  EXPECT_EQ(dropped.compromisedSamples, 0u);  // dropped tokens never report back
  EXPECT_EQ(dropped.adversary.forgedAnswers, 0u);
  // Starving samples is weaker pressure than lying: convergence at this
  // budget survives it.
  EXPECT_GT(dropped.fracAgreeing, 0.9);
}

TEST(TokenDropper, ZeroProbabilityIsHarmless) {
  const PairedRun fx = PairedRun::make();
  const AgreementOutcome out = fx.run(AgreementAttackProfile::dropper(0.0));
  EXPECT_EQ(out.adversary.droppedQueries, 0u);
  EXPECT_EQ(out.answeredSamples, fx.run(AgreementAttackProfile::adaptiveMinority()).answeredSamples);
}

TEST(AnswerFlipper, CompromisesIffReturnPathCrossesByzantine) {
  const PairedRun fx = PairedRun::make();
  const AgreementOutcome adaptive = fx.run(AgreementAttackProfile::adaptiveMinority());
  const AgreementOutcome flipped = fx.run(AgreementAttackProfile::flipper(1.0));
  // The return leg retraces the outbound walk (endpoint included: a walk
  // ending on the adversary has its answer authored there), so the set of
  // compromised samples is exactly the adaptive adversary's taint set.
  EXPECT_EQ(flipped.compromisedSamples, adaptive.compromisedSamples);
  EXPECT_GT(flipped.compromisedSamples, 0u);
  // Every answer still arrives — flipping corrupts, it does not starve.
  EXPECT_EQ(flipped.answeredSamples, adaptive.answeredSamples);
  EXPECT_EQ(flipped.adversary.droppedQueries, 0u);
  EXPECT_EQ(flipped.adversary.strayAnswers, 0u);
  // A token crossing k Byzantine relays is flipped k times, so flip events
  // alone can exceed the compromised count; together with endpoint forgeries
  // they must cover it.
  EXPECT_GE(flipped.adversary.flippedAnswers + flipped.adversary.forgedAnswers,
            flipped.compromisedSamples);
  EXPECT_GT(flipped.adversary.flippedAnswers, 0u);
}

TEST(AnswerFlipper, ZeroProbabilityOnlyForgesAtByzantineEndpoints) {
  const PairedRun fx = PairedRun::make();
  const AgreementOutcome out = fx.run(AgreementAttackProfile::flipper(0.0));
  EXPECT_EQ(out.adversary.flippedAnswers, 0u);
  EXPECT_EQ(out.compromisedSamples, out.adversary.forgedAnswers);
}

TEST(PathTamperer, MisroutedAnswersGoStrayAndOriginsFallBack) {
  const PairedRun fx = PairedRun::make();
  const AgreementOutcome adaptive = fx.run(AgreementAttackProfile::adaptiveMinority());
  const AgreementOutcome tampered = fx.run(AgreementAttackProfile::tamperer(1.0));
  EXPECT_GT(tampered.adversary.misroutedAnswers, 0u);
  // Every launched sample either resolves at its origin or dies as a stray
  // at the misroute target — an exact partition.
  EXPECT_EQ(tampered.answeredSamples + tampered.adversary.strayAnswers,
            adaptive.answeredSamples);
  EXPECT_GE(tampered.adversary.misroutedAnswers, tampered.adversary.strayAnswers);
  EXPECT_LT(tampered.answeredSamples, adaptive.answeredSamples);
  // The tamperer never touches a carried bit, so misrouting does not mark a
  // token compromised: the only adversary-controlled answers are those
  // authored at Byzantine walk endpoints, and only the ones that survive the
  // return trip reach an origin.
  EXPECT_LE(tampered.compromisedSamples, tampered.adversary.forgedAnswers);
}

TEST(VictimHunter, HitsGrowWithRadiusAndConcentrateOnVictim) {
  Rng gen(60);
  Graph g = hnd(512, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Surround;
  spec.count = 24;
  spec.victim = 7;
  spec.moatRadius = 2;
  Rng prng(61);
  const ByzantineSet byz = placeByzantine(g, spec, prng);

  const auto runHunter = [&](std::uint32_t radius) {
    AgreementParams params;
    params.initialOnesFraction = 0.7;
    params.attack = AgreementAttackProfile::hunter(radius);
    params.victim = spec.victim;
    Rng rng(62);
    return runMajorityAgreement(g, byz, std::log(512.0), params, rng);
  };

  const AgreementOutcome near = runHunter(1);
  const AgreementOutcome wide = runHunter(3);
  // The hunter draws no randomness, so paired runs share trajectories and
  // hits are monotone in the targeting radius.
  EXPECT_GT(near.adversary.coalitionHits, 0u);
  EXPECT_LE(near.adversary.coalitionHits, wide.adversary.coalitionHits);
  // Only targeted samples and Byzantine-endpoint answers are adversarial.
  EXPECT_GE(near.compromisedSamples, near.adversary.coalitionHits);
  // Nothing is dropped or misrouted — the coalition lies, consistently.
  EXPECT_EQ(near.adversary.droppedQueries, 0u);
  EXPECT_EQ(near.adversary.strayAnswers, 0u);
}

TEST(VictimHunter, ForgeDistinguishesTargetedFromBystanderTokens) {
  const Graph g = ring(8);
  PathArena arena;
  Coalition coalition;
  Rng rng(1);
  AdversaryStats stats;
  const auto hunter = makeVictimHunterAdversary(g, /*victim=*/0, /*radius=*/1);
  // 6 of 8 honest nodes hold 1: majority 1, minority 0.
  WalkContext ctx{2, 1, g, arena, 6, 8, 0, coalition, rng, stats};
  WalkToken bystander;
  bystander.origin = 4;  // outside the victim's radius-1 neighbourhood
  EXPECT_EQ(hunter->onQuery(ctx, bystander).op, TokenAction::Op::Forward);
  EXPECT_FALSE(bystander.compromised);
  // A bystander walk ending on a coalition node is answered with the honest
  // majority — camouflage, not a lie.
  EXPECT_EQ(hunter->forgeAnswer(ctx, bystander), 1);
  WalkToken targeted;
  targeted.origin = 1;  // adjacent to the victim
  EXPECT_EQ(hunter->onQuery(ctx, targeted).op, TokenAction::Op::Forward);
  EXPECT_TRUE(targeted.compromised);
  ASSERT_TRUE(coalition.hasAgreedBit());
  EXPECT_EQ(coalition.agreedBit(), 0);  // locked on the minority
  EXPECT_EQ(hunter->forgeAnswer(ctx, targeted), 0);
  EXPECT_EQ(coalition.hits(), 1u);
}

TEST(Coalition, FirstWriterLocksTheBit) {
  Coalition c;
  EXPECT_FALSE(c.hasAgreedBit());
  c.agreeOn(1);
  EXPECT_TRUE(c.hasAgreedBit());
  EXPECT_EQ(c.agreedBit(), 1);
  c.agreeOn(0);  // later writers are ignored
  EXPECT_EQ(c.agreedBit(), 1);
  EXPECT_EQ(c.hits(), 0u);
  c.recordHit();
  c.recordHit();
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CoalitionScore, CountsFlippedHonestNodesNearVictim) {
  const Graph g = ring(8);
  const ByzantineSet byz(8, {2});
  // Victim 0; radius 1 covers {0, 1, 7}. Majority bit 1; node 1 flipped.
  std::vector<std::uint8_t> values(8, 1);
  values[1] = 0;
  EXPECT_DOUBLE_EQ(coalitionScore(g, byz, 0, 1, values, 1), 1.0 / 3.0);
  // Radius 2 covers {0, 1, 2, 6, 7}; Byzantine 2 is excluded from scoring.
  values[6] = 0;
  EXPECT_DOUBLE_EQ(coalitionScore(g, byz, 0, 2, values, 1), 2.0 / 4.0);
  // A perfect outcome for the coalition: everyone near the victim flipped.
  std::fill(values.begin(), values.end(), 0);
  EXPECT_DOUBLE_EQ(coalitionScore(g, byz, 0, 1, values, 1), 1.0);
}

TEST(PathArena, ChainPushPopAndReset) {
  PathArena arena;
  const PathRef a = arena.push(3, kNullPath);
  const PathRef b = arena.push(5, a);
  const PathRef c = arena.push(9, b);
  EXPECT_EQ(arena.node(c), 9u);
  EXPECT_EQ(arena.prev(c), b);
  EXPECT_EQ(arena.node(arena.prev(c)), 5u);
  EXPECT_EQ(arena.prev(a), kNullPath);
  EXPECT_EQ(arena.size(), 3u);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
}

// ---------------------------------------------------------------------------
// Declarative path: attacks selectable purely from the ScenarioSpec, thread-
// count invariant under the ExperimentRunner (the acceptance criterion).
// ---------------------------------------------------------------------------

ScenarioSpec strategySpec(const AgreementAttackProfile& attack) {
  ScenarioSpec spec;
  spec.name = std::string("adversary-") + attack.name;
  spec.graph = {GraphKind::Hnd, 192, 8, 0.1};
  spec.placement.kind = attack.kind == WalkAttackKind::VictimHunter ? Placement::Surround
                                                                    : Placement::Random;
  spec.placement.count = 10;
  spec.placement.victim = 3;
  spec.placement.moatRadius = 2;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.agreementParams.attack = attack;
  spec.trials = 12;
  spec.masterSeed = 0xad5a;
  return spec;
}

TEST(AdversaryScenarios, EveryStrategyIsThreadCountInvariant) {
  const AgreementAttackProfile profiles[] = {
      AgreementAttackProfile::adaptiveMinority(), AgreementAttackProfile::dropper(0.8),
      AgreementAttackProfile::flipper(0.8),       AgreementAttackProfile::tamperer(0.8),
      AgreementAttackProfile::hunter(2),
  };
  for (const AgreementAttackProfile& profile : profiles) {
    const ScenarioSpec spec = strategySpec(profile);
    ExperimentSummary byThreads[3];
    const unsigned counts[3] = {1, 2, 8};
    for (int t = 0; t < 3; ++t) {
      ExperimentRunner runner(counts[t]);
      byThreads[t] = runner.run(spec);
    }
    for (int t = 1; t < 3; ++t) {
      EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint)
          << profile.name << " diverged at " << counts[t] << " threads";
    }
    ASSERT_EQ(byThreads[0].extras.size(), static_cast<std::size_t>(kAgreementExtraSlots))
        << profile.name;
  }
}

TEST(AdversaryScenarios, ExtrasExposeEachStrategysSignature) {
  ExperimentRunner runner(2);

  const ExperimentSummary dropped = runner.run(strategySpec(AgreementAttackProfile::dropper()));
  EXPECT_GT(dropped.extras[kAgreementDropped].min, 0.0);
  EXPECT_EQ(dropped.extras[kAgreementFlipped].max, 0.0);

  const ExperimentSummary flipped = runner.run(strategySpec(AgreementAttackProfile::flipper()));
  EXPECT_GT(flipped.extras[kAgreementFlipped].min, 0.0);
  EXPECT_EQ(flipped.extras[kAgreementDropped].max, 0.0);

  const ExperimentSummary tampered =
      runner.run(strategySpec(AgreementAttackProfile::tamperer()));
  EXPECT_GT(tampered.extras[kAgreementMisrouted].min, 0.0);

  const ExperimentSummary hunted = runner.run(strategySpec(AgreementAttackProfile::hunter(2)));
  EXPECT_GT(hunted.extras[kAgreementCoalitionHits].min, 0.0);

  const ExperimentSummary adaptive =
      runner.run(strategySpec(AgreementAttackProfile::adaptiveMinority()));
  EXPECT_EQ(adaptive.extras[kAgreementDropped].max, 0.0);
  EXPECT_EQ(adaptive.extras[kAgreementFlipped].max, 0.0);
  EXPECT_EQ(adaptive.extras[kAgreementMisrouted].max, 0.0);
  EXPECT_GT(adaptive.extras[kAgreementForged].min, 0.0);
  // Answered slots are observable for every strategy (2 per active node per
  // iteration minus adversary losses).
  EXPECT_GT(adaptive.extras[kAgreementAnswered].min, 0.0);
}

TEST(AdversaryScenarios, PipelineCarriesTheAttackProfile) {
  ScenarioSpec spec;
  spec.name = "adversary-pipeline-flipper";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 6;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.agreement.attack = AgreementAttackProfile::flipper(1.0);
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 8;
  spec.masterSeed = 0xad5b;
  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(spec);
  EXPECT_GT(s.extras[kAgreementFlipped].min, 0.0);
  ExperimentRunner serial(1);
  EXPECT_EQ(serial.run(spec).combinedFingerprint, s.combinedFingerprint);
}

TEST(Profiles, NamesAndKnobsRoundTrip) {
  EXPECT_STREQ(walkAttackKindName(WalkAttackKind::TokenDropper), "token-dropper");
  EXPECT_EQ(AgreementAttackProfile::adaptiveMinority().name, "adaptive-minority");
  EXPECT_EQ(AgreementAttackProfile::dropper(0.25).dropProbability, 0.25);
  EXPECT_EQ(AgreementAttackProfile::flipper(0.5).flipProbability, 0.5);
  EXPECT_EQ(AgreementAttackProfile::tamperer(0.75).tamperProbability, 0.75);
  EXPECT_EQ(AgreementAttackProfile::hunter(4).huntRadius, 4u);
  EXPECT_EQ(AgreementAttackProfile::hunter(4).name, "victim-hunter");
}

}  // namespace
}  // namespace bzc
