// Deeper properties of the §1.2 baselines: accuracy scaling, attack-surface
// corners, metering invariants, and quality-evaluation integration.
#include <gtest/gtest.h>

#include <cmath>

#include "counting/baselines/geometric.hpp"
#include "counting/baselines/spanning_tree.hpp"
#include "counting/baselines/support_estimation.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace bzc {
namespace {

TEST(GeometricExtra, MaxGrowsWithN) {
  // E[max of n geometrics] ~ log2 n: average over seeds, compare two sizes.
  double small = 0;
  double large = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    {
      Rng gen(seed);
      const Graph g = hnd(128, 6, gen);
      const ByzantineSet none(128, {});
      Rng rng(100 + seed);
      small += runGeometricMax(g, none, GeometricAttack::None, {}, rng).decisions[0].estimate;
    }
    {
      Rng gen(seed);
      const Graph g = hnd(4096, 6, gen);
      const ByzantineSet none(4096, {});
      Rng rng(200 + seed);
      large += runGeometricMax(g, none, GeometricAttack::None, {}, rng).decisions[0].estimate;
    }
  }
  // 32x more nodes: the expected max grows by ~5 flips = 5 ln 2 ~ 3.5 nats.
  EXPECT_GT(large / 8 - small / 8, 1.5);
}

TEST(GeometricExtra, QuiescesAtDiameterScale) {
  Rng gen(1);
  const Graph g = hnd(1024, 8, gen);
  const ByzantineSet none(1024, {});
  Rng rng(2);
  const auto result = runGeometricMax(g, none, GeometricAttack::None, {}, rng);
  EXPECT_LE(result.totalRounds, 2 * exactDiameter(g) + 4);
}

TEST(GeometricExtra, MeterCountsFloodTraffic) {
  Rng gen(3);
  const Graph g = hnd(256, 6, gen);
  const ByzantineSet none(256, {});
  Rng rng(4);
  const auto result = runGeometricMax(g, none, GeometricAttack::None, {}, rng);
  // Every node broadcasts its initial value at least once.
  for (NodeId u = 0; u < 256; ++u) {
    EXPECT_GE(result.meter.messagesSent(u), g.degree(u));
  }
}

TEST(GeometricExtra, InflateOnlyRaisesEstimates) {
  Rng gen(5);
  const Graph g = hnd(256, 6, gen);
  const ByzantineSet byz(256, {13, 99});
  Rng r1(6);
  const auto benign = runGeometricMax(g, ByzantineSet(256, {}), GeometricAttack::None, {}, r1);
  Rng r2(6);
  const auto attacked = runGeometricMax(g, byz, GeometricAttack::Inflate, {}, r2);
  for (NodeId u = 0; u < 256; ++u) {
    if (byz.contains(u)) continue;
    EXPECT_GE(attacked.decisions[u].estimate, benign.decisions[u].estimate - 1e9);
    EXPECT_GT(attacked.decisions[u].estimate, 100.0);  // forged max dominates
  }
}

TEST(SupportExtra, MoreCoordinatesTightenEstimate) {
  Rng gen(7);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  const double logN = std::log(static_cast<double>(n));
  RunningStat errK8;
  RunningStat errK256;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SupportParams p8;
    p8.coordinates = 8;
    Rng r1(300 + seed);
    errK8.add(std::abs(runSupportEstimation(g, none, SupportAttack::None, p8, r1)
                           .decisions[0]
                           .estimate -
               logN));
    SupportParams p256;
    p256.coordinates = 256;
    Rng r2(400 + seed);
    errK256.add(std::abs(runSupportEstimation(g, none, SupportAttack::None, p256, r2)
                             .decisions[0]
                             .estimate -
                 logN));
  }
  EXPECT_LT(errK256.mean(), errK8.mean());
}

TEST(SupportExtra, SuppressionOnExpanderIsHarmless) {
  // Dropping traffic at o(n) random nodes barely perturbs min-flooding on an
  // expander: every honest pair stays connected via honest paths.
  Rng gen(8);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet byz(n, {1, 2, 3, 4, 5});
  SupportParams params;
  params.coordinates = 64;
  Rng rng(9);
  const auto result = runSupportEstimation(g, byz, SupportAttack::Suppress, params, rng);
  const double logN = std::log(static_cast<double>(n));
  for (NodeId u = 10; u < n; u += 49) {
    EXPECT_NEAR(result.decisions[u].estimate, logN, 0.4 * logN);
  }
}

TEST(SupportExtra, SingleCoordinateStillDecides) {
  Rng gen(10);
  const Graph g = ring(32);
  const ByzantineSet none(32, {});
  SupportParams params;
  params.coordinates = 1;
  Rng rng(11);
  const auto result = runSupportEstimation(g, none, SupportAttack::None, params, rng);
  for (NodeId u = 0; u < 32; ++u) EXPECT_TRUE(result.decisions[u].decided);
}

TEST(TreeExtra, RootChoiceDoesNotChangeBenignCount) {
  Rng gen(12);
  const NodeId n = 200;
  const Graph g = hnd(n, 6, gen);
  const ByzantineSet none(n, {});
  for (NodeId root : {0u, 57u, 199u}) {
    TreeParams params;
    params.root = root;
    const auto result = runSpanningTreeCount(g, none, TreeAttack::None, params);
    EXPECT_DOUBLE_EQ(result.decisions[(root + 1) % n].estimate,
                     std::log(static_cast<double>(n)));
  }
}

TEST(TreeExtra, UndercountOnExpanderIsMild) {
  // On an expander most subtrees are shallow, so a single undercounting
  // node hides little — contrast with the path-graph test in the base
  // suite. The *guarantee* is still gone; the damage is just topology-
  // dependent. This documents that nuance.
  Rng gen(13);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet byz(n, {77});
  const auto result = runSpanningTreeCount(g, byz, TreeAttack::Undercount, {});
  const double est = result.decisions[0].estimate;
  EXPECT_LT(est, std::log(static_cast<double>(n)));
  EXPECT_GT(est, std::log(static_cast<double>(n) / 4.0));
}

TEST(TreeExtra, DisconnectedGraphCountsComponent) {
  const Graph g(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const ByzantineSet none(6, {});
  const auto result = runSpanningTreeCount(g, none, TreeAttack::None, {});
  EXPECT_NEAR(result.decisions[0].estimate, std::log(3.0), 1e-12);
  EXPECT_FALSE(result.decisions[3].decided);  // unreachable from the root
}

// Parameterised: inflate attack poisons everyone regardless of where the
// single Byzantine node sits.
class InflatePlacement : public ::testing::TestWithParam<NodeId> {};

TEST_P(InflatePlacement, OneInflatorPoisonsAll) {
  const NodeId where = GetParam();
  Rng gen(14);
  const NodeId n = 256;
  const Graph g = hnd(n, 6, gen);
  const ByzantineSet byz(n, {where});
  GeometricParams params;
  Rng rng(15);
  const auto result = runGeometricMax(g, byz, GeometricAttack::Inflate, params, rng);
  const double forged = params.inflatedValue * std::log(2.0);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    EXPECT_GE(result.decisions[u].estimate, forged);
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, InflatePlacement,
                         ::testing::Values<NodeId>(0, 17, 100, 200, 255));

}  // namespace
}  // namespace bzc
