// Tests for pipelined epoch execution (ChurnSchedule::pipelineDepth): paired
// bit-identity of the depth-D pipeline against the depth-1 serial path across
// every churn model, thread-count invariance with pipelining on, and the
// depth-greater-than-epochs edge case. These are the pins behind the claim in
// DESIGN.md §11 that pipelineDepth is a pure performance knob — every field of
// ChurnTrialResult, including each EpochReport, must match exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "churn/epoch_runner.hpp"
#include "churn/schedule.hpp"
#include "runtime/experiment.hpp"

namespace bzc {
namespace {

ScenarioSpec basePipelineSpec() {
  ScenarioSpec spec;
  spec.name = "epoch-pipeline";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 4;
  spec.masterSeed = 0x9a;  // overridden per test
  return spec;
}

/// Every field of both EpochReports must agree — the pipeline may only change
/// *when* a recount executes, never what it computes.
void expectEpochReportsIdentical(const EpochReport& a, const EpochReport& b,
                                 const std::string& where) {
  EXPECT_EQ(a.epoch, b.epoch) << where;
  EXPECT_EQ(a.liveN, b.liveN) << where;
  EXPECT_EQ(a.byzCount, b.byzCount) << where;
  EXPECT_EQ(a.joins, b.joins) << where;
  EXPECT_EQ(a.leaves, b.leaves) << where;
  EXPECT_EQ(a.rewires, b.rewires) << where;
  EXPECT_EQ(a.recounted, b.recounted) << where;
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate) << where;
  EXPECT_DOUBLE_EQ(a.staleness, b.staleness) << where;
  EXPECT_DOUBLE_EQ(a.drift, b.drift) << where;
  EXPECT_DOUBLE_EQ(a.spectralGap, b.spectralGap) << where;
  EXPECT_EQ(a.rounds, b.rounds) << where;
  EXPECT_EQ(a.messages, b.messages) << where;
  EXPECT_EQ(a.bits, b.bits) << where;
  EXPECT_DOUBLE_EQ(a.fracAgreeing, b.fracAgreeing) << where;
  EXPECT_EQ(a.fingerprint, b.fingerprint) << where;
}

void expectTrialResultsIdentical(const ChurnTrialResult& a, const ChurnTrialResult& b,
                                 const std::string& where) {
  EXPECT_EQ(a.outcome.resultFingerprint, b.outcome.resultFingerprint) << where;
  EXPECT_EQ(a.outcome.totalRounds, b.outcome.totalRounds) << where;
  EXPECT_EQ(a.outcome.totalMessages, b.outcome.totalMessages) << where;
  EXPECT_EQ(a.outcome.totalBits, b.outcome.totalBits) << where;
  EXPECT_EQ(a.outcome.hitRoundCap, b.outcome.hitRoundCap) << where;
  EXPECT_DOUBLE_EQ(a.outcome.quality.fracDecided, b.outcome.quality.fracDecided) << where;
  EXPECT_DOUBLE_EQ(a.outcome.quality.fracWithinWindow, b.outcome.quality.fracWithinWindow)
      << where;
  EXPECT_DOUBLE_EQ(a.outcome.quality.meanRatio, b.outcome.quality.meanRatio) << where;
  EXPECT_EQ(a.outcome.quality.maxDecisionRound, b.outcome.quality.maxDecisionRound) << where;
  ASSERT_EQ(a.outcome.extra.size(), b.outcome.extra.size()) << where;
  for (std::size_t i = 0; i < a.outcome.extra.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcome.extra[i], b.outcome.extra[i]) << where << " extra " << i;
  }
  ASSERT_EQ(a.epochs.size(), b.epochs.size()) << where;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    expectEpochReportsIdentical(a.epochs[e], b.epochs[e], where + " epoch " + std::to_string(e));
  }
}

TEST(EpochPipeline, PipelinedMatchesSequentialAcrossModelsAndDepths) {
  // The tentpole pin: depth {2, 4} against the depth-1 serial path, for each
  // churn model, comparing the full detailed trajectory field by field.
  struct Model {
    const char* name;
    ChurnSchedule schedule;
  };
  const Model models[] = {
      {"steady", ChurnSchedule::steady(/*epochs=*/6, /*rate=*/0.08, /*recountEvery=*/1)},
      {"flashCrowd", ChurnSchedule::flashCrowd(/*epochs=*/6, /*fraction=*/0.4, /*atEpoch=*/3,
                                               /*recountEvery=*/2)},
      {"massExodus", ChurnSchedule::massExodus(/*epochs=*/6, /*fraction=*/0.3, /*atEpoch=*/3,
                                               /*recountEvery=*/2)},
      {"byzantine", ChurnSchedule::byzantine(/*epochs=*/6, /*honestRate=*/0.06,
                                             /*rejoinBoost=*/1.5, /*recountEvery=*/1)},
  };
  for (const Model& model : models) {
    ScenarioSpec serialSpec = basePipelineSpec();
    serialSpec.masterSeed = 0xd1f0;
    serialSpec.churn = model.schedule;
    serialSpec.churn.pipelineDepth = 1;
    for (std::uint32_t trial = 0; trial < 3; ++trial) {
      const ChurnTrialResult serial = runChurnTrialDetailed(serialSpec, trial);
      for (std::uint32_t depth : {2u, 4u}) {
        ScenarioSpec deepSpec = serialSpec;
        deepSpec.churn.pipelineDepth = depth;
        const ChurnTrialResult piped = runChurnTrialDetailed(deepSpec, trial);
        expectTrialResultsIdentical(serial, piped,
                                    std::string(model.name) + " depth " +
                                        std::to_string(depth) + " trial " +
                                        std::to_string(trial));
      }
    }
  }
}

TEST(EpochPipeline, DepthBeyondEpochCountIsIdentity) {
  // depth > epochs (and depth >> recount count under cadence) must clamp to
  // the available work without deadlock or divergence.
  ScenarioSpec spec = basePipelineSpec();
  spec.masterSeed = 0xdee9;
  spec.churn = ChurnSchedule::steady(/*epochs=*/3, /*rate=*/0.08, /*recountEvery=*/2);
  for (std::uint32_t trial = 0; trial < 2; ++trial) {
    ScenarioSpec serialSpec = spec;
    serialSpec.churn.pipelineDepth = 1;
    const ChurnTrialResult serial = runChurnTrialDetailed(serialSpec, trial);
    ScenarioSpec deepSpec = spec;
    deepSpec.churn.pipelineDepth = 8;  // deeper than the 3-epoch trajectory
    const ChurnTrialResult piped = runChurnTrialDetailed(deepSpec, trial);
    expectTrialResultsIdentical(serial, piped, "depth 8 over 3 epochs trial " +
                                                   std::to_string(trial));
  }
}

TEST(EpochPipeline, PipelinedChurnScenarioIsThreadCountInvariant) {
  // The T10-shaped invariance row with pipelining ON: 48 trials, depth 2,
  // bit-identical at 1, 2 and 8 runner threads. The runner narrows its trial
  // pool by trials x shards x depth, so this also exercises oversubscription
  // (8 threads / depth 2 -> 4 trial workers each owning a 2-thread pipeline).
  ScenarioSpec spec = basePipelineSpec();
  spec.name = "pipelined-churn-invariance";
  spec.graph = {GraphKind::Hnd, 96, 8, 0.1};
  spec.churn = ChurnSchedule::steady(/*epochs=*/4, /*rate=*/0.08, /*recountEvery=*/2);
  spec.churn.pipelineDepth = 2;
  spec.trials = 48;
  spec.masterSeed = 0x10c4;  // same row churn_test pins at depth 1

  ExperimentSummary byThreads[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    ExperimentRunner runner(counts[t]);
    byThreads[t] = runner.run(spec);
  }
  ASSERT_EQ(byThreads[0].perTrial.size(), 48u);
  for (int t = 1; t < 3; ++t) {
    EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint)
        << "pipelined churn scenario diverged at " << counts[t] << " threads";
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_EQ(byThreads[0].perTrial[i].resultFingerprint,
                byThreads[t].perTrial[i].resultFingerprint)
          << "trial " << i << " diverged at " << counts[t] << " threads";
    }
  }
}

TEST(EpochPipeline, ScenarioRunMatchesDepthOneAtEveryDepth) {
  // End-to-end through ExperimentRunner: the aggregated summary (fingerprints,
  // cost distributions, churn extras) is depth-invariant, so a sweep can bump
  // pipelineDepth without invalidating any recorded numbers.
  ScenarioSpec spec = basePipelineSpec();
  spec.churn = ChurnSchedule::steady(/*epochs=*/4, /*rate=*/0.08, /*recountEvery=*/1);
  spec.trials = 8;
  spec.masterSeed = 0x51de;

  ExperimentRunner runner(4);
  spec.churn.pipelineDepth = 1;
  const ExperimentSummary base = runner.run(spec);
  for (std::uint32_t depth : {2u, 4u}) {
    spec.churn.pipelineDepth = depth;
    const ExperimentSummary deep = runner.run(spec);
    EXPECT_EQ(base.combinedFingerprint, deep.combinedFingerprint) << "depth " << depth;
    ASSERT_EQ(base.perTrial.size(), deep.perTrial.size());
    for (std::size_t i = 0; i < base.perTrial.size(); ++i) {
      EXPECT_EQ(base.perTrial[i].resultFingerprint, deep.perTrial[i].resultFingerprint)
          << "depth " << depth << " trial " << i;
    }
    ASSERT_EQ(base.extras.size(), deep.extras.size());
    for (std::size_t s = 0; s < base.extras.size(); ++s) {
      EXPECT_DOUBLE_EQ(base.extras[s].mean, deep.extras[s].mean)
          << "depth " << depth << " extra slot " << s;
    }
  }
}

}  // namespace
}  // namespace bzc
