// Tests for the observability layer (DESIGN.md §12). The contract under test:
// traces are strictly observational — every golden fingerprint is
// bit-identical with tracing on or off, the deterministic projection of a
// trace (everything except wall-clock fields) is a pure function of the
// trial at any runner-thread count and any epoch-pipeline depth, and the
// per-round records reconcile exactly with the end-of-run meter totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "churn/schedule.hpp"
#include "counting/local/attacks.hpp"
#include "golden_scenarios.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "runtime/experiment.hpp"

namespace bzc {
namespace {

/// Installs a capturing sink for the test body and restores the null sink
/// (which also restores the default log sink — setTraceSink swaps both) on
/// every exit path.
class SinkGuard {
 public:
  explicit SinkGuard(std::uint32_t sampleTrials = 1)
      : sink_(std::make_shared<obs::CapturingTraceSink>()) {
    obs::setTraceSink(sink_, sampleTrials);
  }
  ~SinkGuard() { obs::setTraceSink(nullptr); }
  SinkGuard(const SinkGuard&) = delete;
  SinkGuard& operator=(const SinkGuard&) = delete;

  [[nodiscard]] obs::CapturingTraceSink& sink() { return *sink_; }

 private:
  std::shared_ptr<obs::CapturingTraceSink> sink_;
};

/// The deterministic projection of one event — every field except the
/// wall-clock payload (tsNs, durNs, RoundRecord phase timings), rendered as
/// a comparable line. Mirrors tools/trace_summary.py --diff.
std::string projectionLine(const obs::TraceEvent& e) {
  std::ostringstream os;
  os << obs::eventKindName(e.kind) << ' ' << (e.name != nullptr ? e.name : "-") << ' ' << e.round
     << ' ' << e.value << ' ' << e.lane;
  if (e.kind == obs::EventKind::Round) {
    os << " r=" << e.rd.round << " s=" << e.rd.sends << " t=" << e.rd.touched
       << " m=" << e.rd.messages << " b=" << e.rd.bits
       << " sh=" << static_cast<unsigned>(e.rd.shards) << " i=" << static_cast<unsigned>(e.rd.idle);
    for (unsigned s = 0; s < e.rd.shards && s < obs::kTraceMaxShards; ++s) {
      os << ' ' << e.rd.laneSends[s];
    }
  }
  return os.str();
}

std::vector<std::string> projection(const obs::TrialTrace& t) {
  std::vector<std::string> out;
  out.reserve(t.events.size());
  for (const obs::TraceEvent& e : t.events) out.push_back(projectionLine(e));
  return out;
}

// ---------------------------------------------------------------------------
// Bit-identity: tracing on must reproduce the untraced fingerprints across
// the golden families, including sharded engines. The beacon/pipeline
// constants are the same goldens runtime_test.cpp pins, re-asserted here so
// a probe that drifted a golden fails in the observability suite by name.
// ---------------------------------------------------------------------------

TEST(ObsIdentity, BeaconGoldenIdenticalTraced) {
  const std::uint64_t untraced = golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                                           BeaconAttackProfile::flooder(), 10);
  EXPECT_EQ(untraced, 0x29553b28fa4d5ddcULL);
  obs::TrialTrace trace;
  std::uint64_t traced = 0;
  {
    const obs::TraceScope scope(&trace);
    traced = golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                       BeaconAttackProfile::flooder(), 10);
  }
  EXPECT_EQ(traced, untraced);
  EXPECT_FALSE(trace.events.empty());
}

TEST(ObsIdentity, ShardedBeaconGoldenIdenticalTraced) {
  const std::uint64_t untraced = golden::beaconFingerprint(
      BeaconChoicePolicy::PreferAcceptable, BeaconAttackProfile::flooder(), 10, /*shards=*/4);
  // Sharding itself is fingerprint-invariant (DESIGN.md §10), so the S=4 run
  // must match the serial golden too.
  EXPECT_EQ(untraced, 0x29553b28fa4d5ddcULL);
  obs::TrialTrace trace;
  std::uint64_t traced = 0;
  {
    const obs::TraceScope scope(&trace);
    traced = golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                       BeaconAttackProfile::flooder(), 10, /*shards=*/4);
  }
  EXPECT_EQ(traced, untraced);
  // The sharded engine must have recorded its lane sizes.
  bool sawShardedRound = false;
  for (const obs::TraceEvent& e : trace.events) {
    if (e.kind == obs::EventKind::Round && e.rd.shards == 4) sawShardedRound = true;
  }
  EXPECT_TRUE(sawShardedRound);
}

TEST(ObsIdentity, AgreementGoldenIdenticalTraced) {
  for (const unsigned shards : {1U, 4U}) {
    const std::uint64_t untraced = golden::agreementFingerprint(6, 1.0, shards);
    obs::TrialTrace trace;
    std::uint64_t traced = 0;
    {
      const obs::TraceScope scope(&trace);
      traced = golden::agreementFingerprint(6, 1.0, shards);
    }
    EXPECT_EQ(traced, untraced) << "shards=" << shards;
    EXPECT_FALSE(trace.events.empty()) << "shards=" << shards;
  }
}

TEST(ObsIdentity, PipelineGoldenIdenticalTraced) {
  const std::uint64_t untraced = golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 10);
  obs::TrialTrace trace;
  std::uint64_t traced = 0;
  {
    const obs::TraceScope scope(&trace);
    traced = golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 10);
  }
  EXPECT_EQ(traced, untraced);
  // Both stage spans must be present — the counting engine and the agreement
  // engine ran back to back under one trace.
  bool sawCounting = false;
  bool sawAgreement = false;
  for (const obs::TraceEvent& e : trace.events) {
    if (e.kind != obs::EventKind::Span || e.name == nullptr) continue;
    if (std::string(e.name) == "pipeline.counting") sawCounting = true;
    if (std::string(e.name) == "pipeline.agreement") sawAgreement = true;
  }
  EXPECT_TRUE(sawCounting);
  EXPECT_TRUE(sawAgreement);
}

TEST(ObsIdentity, LocalGoldenIdenticalTraced) {
  const std::uint64_t untraced = [] {
    auto adv = makeConflictLocalAdversary();
    return golden::localFingerprint(*adv, Placement::Random);
  }();
  EXPECT_EQ(untraced, 0xbd69b4b31ee42fceULL);
  obs::TrialTrace trace;
  std::uint64_t traced = 0;
  {
    const obs::TraceScope scope(&trace);
    auto adv = makeConflictLocalAdversary();
    traced = golden::localFingerprint(*adv, Placement::Random);
  }
  EXPECT_EQ(traced, untraced);
  EXPECT_FALSE(trace.events.empty());
}

// ---------------------------------------------------------------------------
// Runner integration: sampling, thread-count determinism, depth invariance.
// ---------------------------------------------------------------------------

ScenarioSpec obsChurnSpec(std::uint32_t pipelineDepth) {
  ScenarioSpec spec;
  spec.name = "obs-churn";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconLimits.maxPhase = 8;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::steady(/*epochs=*/6, /*rate=*/0.08, /*recountEvery=*/2);
  spec.churn.pipelineDepth = pipelineDepth;
  spec.trials = 2;
  spec.masterSeed = 0xb5;
  spec.traceTrials = 2;
  return spec;
}

TEST(ObsRunner, ChurnTracedIdenticalAndDepthInvariantProjection) {
  ExperimentRunner runner(2);
  const ExperimentSummary untraced = runner.run(obsChurnSpec(1));

  SinkGuard guard;
  const ExperimentSummary depth1 = runner.run(obsChurnSpec(1));
  ASSERT_EQ(guard.sink().traces().size(), 2U);
  const std::vector<std::vector<std::string>> proj1 = {projection(guard.sink().traces()[0]),
                                                       projection(guard.sink().traces()[1])};
  guard.sink().clear();

  const ExperimentSummary depth2 = runner.run(obsChurnSpec(2));
  ASSERT_EQ(guard.sink().traces().size(), 2U);

  // Tracing must not move a single result, with or without pipelining.
  EXPECT_EQ(depth1.combinedFingerprint, untraced.combinedFingerprint);
  EXPECT_EQ(depth2.combinedFingerprint, untraced.combinedFingerprint);

  // The deterministic projection is pipeline-depth invariant: epoch recount
  // children splice back in epoch order at the serial fold whichever worker
  // ran them.
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(projection(guard.sink().traces()[i]), proj1[i]) << "trial " << i;
  }
}

TEST(ObsRunner, TraceProjectionInvariantAcrossRunnerThreadCounts) {
  std::vector<std::vector<std::string>> baseline;
  std::uint64_t baselineFp = 0;
  for (const unsigned threads : {1U, 2U, 8U}) {
    SinkGuard guard;
    ExperimentRunner runner(threads);
    const ExperimentSummary summary = runner.run(obsChurnSpec(1));
    ASSERT_EQ(guard.sink().traces().size(), 2U) << "threads=" << threads;
    std::vector<std::vector<std::string>> projections;
    projections.reserve(2);
    for (const obs::TrialTrace& t : guard.sink().traces()) projections.push_back(projection(t));
    if (baseline.empty()) {
      baseline = std::move(projections);
      baselineFp = summary.combinedFingerprint;
      continue;
    }
    EXPECT_EQ(summary.combinedFingerprint, baselineFp) << "threads=" << threads;
    EXPECT_EQ(projections, baseline) << "threads=" << threads;
  }
}

TEST(ObsRunner, SampleWidthLimitsTracedTrials) {
  SinkGuard guard;
  ScenarioSpec spec = obsChurnSpec(1);
  spec.churn = ChurnSchedule{};  // static run is enough here
  spec.trials = 4;
  spec.traceTrials = 1;
  ExperimentRunner runner(2);
  const ExperimentSummary summary = runner.run(spec);
  EXPECT_EQ(summary.trials, 4U);
  ASSERT_EQ(guard.sink().traces().size(), 1U);
  EXPECT_EQ(guard.sink().traces()[0].trial, 0U);
  EXPECT_EQ(guard.sink().traces()[0].scenario, spec.name);
}

// ---------------------------------------------------------------------------
// Reconciliation: per-round records + skip marks must sum exactly to the
// end-of-run totals the meter reports — no round is double-counted or lost.
// ---------------------------------------------------------------------------

TEST(ObsReconcile, RoundRecordsSumToOutcomeTotals) {
  SinkGuard guard;
  ScenarioSpec spec;
  spec.name = "obs-reconcile";
  spec.graph = {GraphKind::Hnd, 192, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 10;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.beaconLimits.maxPhase = 8;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.trials = 1;
  spec.masterSeed = 0x5eed;
  ExperimentRunner runner(1);
  const ExperimentSummary summary = runner.run(spec);
  ASSERT_EQ(guard.sink().traces().size(), 1U);
  const obs::TrialTrace& trace = guard.sink().traces()[0];

  std::uint64_t simulatedRounds = 0;
  std::uint64_t skippedRounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  for (const obs::TraceEvent& e : trace.events) {
    if (e.kind == obs::EventKind::Round) {
      ++simulatedRounds;
      messages += e.rd.messages;
      bits += e.rd.bits;
    } else if (e.kind == obs::EventKind::Mark && e.name != nullptr &&
               std::string(e.name) == "engine.skipRounds") {
      skippedRounds += static_cast<std::uint64_t>(e.value);
    }
  }
  const TrialOutcome& outcome = summary.perTrial[0];
  EXPECT_EQ(simulatedRounds + skippedRounds, static_cast<std::uint64_t>(outcome.totalRounds));
  EXPECT_EQ(messages, outcome.totalMessages);
  EXPECT_EQ(bits, outcome.totalBits);
}

// ---------------------------------------------------------------------------
// Export plumbing.
// ---------------------------------------------------------------------------

TEST(ObsExport, JsonlCarriesReconciledTotals) {
  obs::TrialTrace t;
  t.scenario = "jsonl \"quoted\"";
  t.trial = 3;
  obs::RoundRecord rd;
  rd.round = 1;
  rd.sends = 3;
  rd.touched = 2;
  rd.messages = 5;
  rd.bits = 40;
  t.round(rd);
  t.counter("c", 2.5, 1);
  t.mark("m");
  t.span("s", obs::traceClockNs(), 1);
  std::ostringstream os;
  obs::JsonlTraceSink::writeTrace(os, t);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"trial\""), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"round\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"end\""), std::string::npos);
  EXPECT_NE(out.find("\"events\":4"), std::string::npos);
  EXPECT_NE(out.find("\"rounds\":1"), std::string::npos);
  EXPECT_NE(out.find("\"messages\":5"), std::string::npos);
  EXPECT_NE(out.find("\"bits\":40"), std::string::npos);
}

TEST(ObsExport, NullSinkProbesAreInert) {
  // With no scope installed every probe must be a no-op: nothing to assert
  // beyond "does not crash and leaves no thread-local residue". The <2%
  // overhead bound itself is measured by bench_f3 (BM_NullSinkProbe,
  // BM_BeaconTracedRun vs BM_BeaconBenignRun), not timed here.
  ASSERT_EQ(obs::currentTrace(), nullptr);
  {
    const obs::ScopedTimer timer("obs.test.noop");
    obs::emitCounter("obs.test.noop", 1.0);
  }
  EXPECT_EQ(obs::currentTrace(), nullptr);
}

}  // namespace
}  // namespace bzc
