// Property and failure-injection tests for Algorithm 2 beyond the basic
// suite: structural invariants that must hold across seeds, sizes, degrees,
// schedules and adversaries.
#include <gtest/gtest.h>

#include <cmath>

#include "counting/beacon/protocol.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

struct Run {
  Graph g;
  ByzantineSet byz;
  BeaconOutcome out;
};

Run runWith(NodeId n, NodeId d, std::uint64_t seed, const BeaconAttackProfile& attack,
            std::size_t byzCount, BeaconParams params = {}, BeaconLimits limits = {}) {
  Rng rng(seed);
  Graph g = hnd(n, d, rng);
  PlacementSpec spec;
  spec.kind = byzCount == 0 ? Placement::None : Placement::Random;
  spec.count = byzCount;
  Rng prng = rng.fork(2);
  auto byz = placeByzantine(g, spec, prng);
  if (limits.maxPhase == 0) {
    limits.maxPhase = static_cast<std::uint32_t>(std::ceil(std::log(static_cast<double>(n)))) + 3;
  }
  Rng runRng = rng.fork(3);
  auto out = runBeaconCounting(g, byz, attack, params, limits, runRng);
  return {std::move(g), std::move(byz), std::move(out)};
}

// Invariant: the estimate of a decided node equals its decided phase, and
// the stats vector agrees with the decision records.
TEST(BeaconInvariants, DecidedPhaseMatchesEstimate) {
  const auto run = runWith(512, 8, 1, BeaconAttackProfile::flooder(), 16);
  for (NodeId u = 0; u < 512; ++u) {
    const auto& rec = run.out.result.decisions[u];
    if (rec.decided) {
      EXPECT_EQ(run.out.stats.decidedPhase[u], static_cast<std::uint32_t>(rec.estimate));
      EXPECT_GT(rec.round, 0u);
      EXPECT_LE(rec.round, run.out.result.totalRounds);
    } else {
      EXPECT_EQ(run.out.stats.decidedPhase[u], 0u);
    }
  }
}

// Invariant: under an eternal flooder, every permanently undecided honest
// node is adjacent to a Byzantine node (the beta-shell characterisation that
// EXPERIMENTS.md reports for T2).
TEST(BeaconInvariants, UndecidedNodesAreByzantineAdjacent) {
  const auto run = runWith(1024, 8, 2, BeaconAttackProfile::flooder(), 22);
  const auto dist = run.byz.distanceToByzantine(run.g);
  for (NodeId u = 0; u < 1024; ++u) {
    if (run.byz.contains(u)) continue;
    if (!run.out.result.decisions[u].decided) {
      EXPECT_LE(dist[u], 2u) << "undecided node " << u << " at distance " << dist[u];
    }
  }
}

// Invariant: Byzantine nodes never have decision records.
TEST(BeaconInvariants, ByzantineNodesNeverDecide) {
  const auto run = runWith(256, 8, 3, BeaconAttackProfile::full(), 12);
  for (NodeId b : run.byz.members()) {
    EXPECT_FALSE(run.out.result.decisions[b].decided);
  }
}

// Invariant: forged beacon counting matches the attack schedule (every
// Byzantine node forges once per iteration it participates in).
TEST(BeaconInvariants, ForgeryCounterPlausible) {
  const auto run = runWith(256, 8, 4, BeaconAttackProfile::flooder(), 10);
  EXPECT_GT(run.out.stats.beaconsForged, 0u);
  EXPECT_EQ(run.out.stats.beaconsForged % 10, 0u);  // 10 Byzantine nodes, all forge each iteration
}

// Invariant: meter totals are consistent (honest nodes sent something,
// Byzantine rows are zero).
TEST(BeaconInvariants, MeterOnlyCountsHonestTraffic) {
  const auto run = runWith(256, 8, 5, BeaconAttackProfile::flooder(), 10);
  for (NodeId b : run.byz.members()) {
    EXPECT_EQ(run.out.result.meter.bitsSent(b), 0u);
  }
  std::uint64_t total = 0;
  for (NodeId u = 0; u < 256; ++u) total += run.out.result.meter.bitsSent(u);
  EXPECT_EQ(total, run.out.result.meter.totalBits());
  EXPECT_GT(total, 0u);
}

// Targeted flooding only strings along the victim's neighbourhood; far
// nodes decide as if the network were benign.
TEST(BeaconAttacks, TargetedFlooderIsLocal) {
  const NodeId n = 1024;
  const NodeId victim = 17;
  Rng rng(6);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Ball;  // pack the budget around the victim
  spec.count = 24;
  spec.victim = victim;
  Rng prng = rng.fork(2);
  const auto byz = placeByzantine(g, spec, prng);
  BeaconLimits limits;
  limits.maxPhase = 10;
  Rng r1 = rng.fork(3);
  const auto targeted = runBeaconCounting(g, byz, BeaconAttackProfile::targetedFlooder(victim, 3),
                                          {}, limits, r1);
  // Damage localises to the Byzantine cluster packed around the victim:
  // every permanently undecided node sits within 2 hops of a Byzantine
  // node, and everything 3+ hops away decides.
  const auto distByz = byz.distanceToByzantine(g);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    if (!targeted.result.decisions[u].decided) {
      EXPECT_LE(distByz[u], 2u) << "undecided node " << u;
    }
    if (distByz[u] >= 3) {
      EXPECT_TRUE(targeted.result.decisions[u].decided) << "far node " << u;
    }
  }
}

// The doubling schedule (experimental, open-problem probe): still correct
// benign — everyone decides, estimates within 2x of the linear schedule.
TEST(BeaconSchedule, DoublingBenignCorrect) {
  BeaconParams doubling;
  doubling.schedule = PhaseSchedule::Doubling;
  const auto lin = runWith(1024, 8, 7, BeaconAttackProfile::none(), 0);
  const auto dbl = runWith(1024, 8, 7, BeaconAttackProfile::none(), 0, doubling);
  double linMean = 0;
  double dblMean = 0;
  for (NodeId u = 0; u < 1024; ++u) {
    ASSERT_TRUE(dbl.out.result.decisions[u].decided);
    linMean += lin.out.result.decisions[u].estimate;
    dblMean += dbl.out.result.decisions[u].estimate;
  }
  linMean /= 1024;
  dblMean /= 1024;
  EXPECT_GE(dblMean, linMean - 0.5);        // cannot decide earlier than the info allows
  EXPECT_LE(dblMean, 2.0 * linMean + 1.0);  // at most the doubling slack
  EXPECT_TRUE(dbl.out.stats.quiesced);
}

// Doubling visits far fewer phases.
TEST(BeaconSchedule, DoublingVisitsFewerPhases) {
  BeaconParams doubling;
  doubling.schedule = PhaseSchedule::Doubling;
  EXPECT_EQ(doubling.nextPhase(2), 4u);
  EXPECT_EQ(doubling.nextPhase(8), 16u);
  BeaconParams linear;
  EXPECT_EQ(linear.nextPhase(7), 8u);
}

// Failure injection: protocol behaves on non-H(n,d) topologies it was not
// designed for — no crashes, bounded output (robustness, not accuracy).
TEST(BeaconRobustness, RunsOnRingTorusAndWs) {
  std::vector<Graph> graphs;
  graphs.push_back(ring(128));
  graphs.push_back(torus2d(12, 12));
  Rng wsRng(8);
  graphs.push_back(wattsStrogatz(128, 3, 0.2, wsRng));
  for (const auto& g : graphs) {
    const ByzantineSet none(g.numNodes(), {});
    BeaconLimits limits;
    limits.maxPhase = 24;
    limits.maxTotalRounds = 30'000;
    Rng rng(9);
    const auto out = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, limits, rng);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (out.result.decisions[u].decided) {
        EXPECT_GT(out.result.decisions[u].estimate, 0.0);
        EXPECT_LE(out.result.decisions[u].estimate, 48.0);
      }
    }
  }
}

// Failure injection: tiny graphs and tiny phase caps don't break anything.
TEST(BeaconRobustness, DegenerateInputs) {
  const Graph tiny = ring(4);
  const ByzantineSet none(4, {});
  BeaconLimits limits;
  limits.maxPhase = 3;
  limits.maxTotalRounds = 100;
  Rng rng(10);
  const auto out = runBeaconCounting(tiny, none, BeaconAttackProfile::none(), {}, limits, rng);
  EXPECT_LE(out.result.totalRounds, 100u);
  // n = 1 is rejected (model needs >= 2 nodes).
  const Graph solo(2, {{0, 1}});
  const ByzantineSet mismatch(3, {});
  Rng rng2(11);
  EXPECT_THROW(
      (void)runBeaconCounting(solo, mismatch, BeaconAttackProfile::none(), {}, {}, rng2),
      std::invalid_argument);
}

// Suffix clamp: at small phases the paper's floor((1-eps)i) is 0; the
// implementation spares at least the immediate sender (DESIGN.md §2).
TEST(BeaconParamsExtra, SuffixClampAtSmallPhases) {
  BeaconParams p;
  EXPECT_EQ(p.blacklistSuffix(2, 8), 0u);  // raw value 0.47 -> floor 0
  // The protocol clamps to >= 1 internally; blacklistSuffix reports the raw
  // paper formula so tests/analysis can see both.
  EXPECT_GE(p.blacklistSuffix(20, 8), 4u);
}

// Property sweep over degrees: the benign estimate scales like log_d n, so
// higher degree => smaller decided phase at the same n.
class DegreeSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(DegreeSweep, EstimateShrinksWithDegree) {
  const NodeId d = GetParam();
  const auto run = runWith(1024, d, 100 + d, BeaconAttackProfile::none(), 0);
  double mean = 0;
  for (NodeId u = 0; u < 1024; ++u) {
    EXPECT_TRUE(run.out.result.decisions[u].decided);
    mean += run.out.result.decisions[u].estimate;
  }
  mean /= 1024;
  const double logdN = std::log(1024.0) / std::log(static_cast<double>(d));
  EXPECT_NEAR(mean, logdN + 2.0, 1.6) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep, ::testing::Values<NodeId>(4, 6, 8, 12, 16));

// Property sweep: determinism of attacked runs across the full profile set.
class AttackDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(AttackDeterminism, SameSeedSameOutcome) {
  const BeaconAttackProfile profiles[] = {
      BeaconAttackProfile::none(),           BeaconAttackProfile::flooder(),
      BeaconAttackProfile::tamperer(),       BeaconAttackProfile::suppressor(),
      BeaconAttackProfile::continueSpammer(), BeaconAttackProfile::full()};
  const auto& attack = profiles[GetParam()];
  BeaconLimits limits;
  limits.maxPhase = 8;
  const auto a = runWith(256, 8, 55, attack, 12, {}, limits);
  const auto b = runWith(256, 8, 55, attack, 12, {}, limits);
  EXPECT_EQ(a.out.result.totalRounds, b.out.result.totalRounds);
  for (NodeId u = 0; u < 256; ++u) {
    EXPECT_EQ(a.out.result.decisions[u].decided, b.out.result.decisions[u].decided);
    EXPECT_EQ(a.out.result.decisions[u].estimate, b.out.result.decisions[u].estimate);
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, AttackDeterminism, ::testing::Range(0, 6));

}  // namespace
}  // namespace bzc
