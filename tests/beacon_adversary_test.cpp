// Tests for the beacon-adversary subsystem (src/adversary/beacon/) and the
// mixed-coalition layer (src/adversary/coalition*): preset migration pinning
// (every legacy BeaconAttackProfile preset == its gallery strategy,
// bit-for-bit), the strategies the flag bundle cannot express, the
// deterministic budget partition, cross-stage blackboard sharing, and
// thread-count invariance of a mixed cross-stage coalition selected purely
// from the ScenarioSpec.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/beacon/profile.hpp"
#include "adversary/beacon/strategies.hpp"
#include "adversary/coalition.hpp"
#include "agreement/pipeline.hpp"
#include "counting/beacon/protocol.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fingerprint.hpp"

namespace bzc {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: one graph + Byzantine set + seed, different adversaries.
// ---------------------------------------------------------------------------

struct BeaconRun {
  Graph g;
  ByzantineSet byz;

  static BeaconRun make(std::size_t byzCount = 10) {
    Rng gen(70);
    Graph g = hnd(192, 8, gen);
    PlacementSpec spec;
    spec.kind = byzCount > 0 ? Placement::Random : Placement::None;
    spec.count = byzCount;
    Rng prng(71);
    ByzantineSet byz = placeByzantine(g, spec, prng);
    return {std::move(g), std::move(byz)};
  }

  [[nodiscard]] BeaconOutcome runLegacy(const BeaconAttackProfile& attack) const {
    BeaconLimits limits;
    limits.maxPhase = 8;
    limits.maxTotalRounds = 20'000;
    Rng rng(72);
    return runBeaconCounting(g, byz, attack, {}, limits, rng);
  }

  [[nodiscard]] BeaconOutcome runGallery(const BeaconAdversaryProfile& profile) const {
    const auto adversary = makeBeaconAdversary(profile, g, byz);
    BeaconLimits limits;
    limits.maxPhase = 8;
    limits.maxTotalRounds = 20'000;
    Rng rng(72);
    return runBeaconCounting(g, byz, *adversary, {}, limits, rng);
  }
};

TEST(PresetMigration, EveryLegacyPresetMatchesItsGalleryStrategyBitForBit) {
  const BeaconRun fx = BeaconRun::make();
  const struct {
    BeaconAttackProfile legacy;
    BeaconAdversaryProfile gallery;
  } pairs[] = {
      {BeaconAttackProfile::none(), BeaconAdversaryProfile::none()},
      {BeaconAttackProfile::flooder(), BeaconAdversaryProfile::flooder()},
      {BeaconAttackProfile::tamperer(), BeaconAdversaryProfile::tamperer()},
      {BeaconAttackProfile::suppressor(), BeaconAdversaryProfile::suppressor()},
      {BeaconAttackProfile::continueSpammer(), BeaconAdversaryProfile::continueSpammer()},
      {BeaconAttackProfile::full(), BeaconAdversaryProfile::full()},
      {BeaconAttackProfile::targetedFlooder(7, 3),
       BeaconAdversaryProfile::targetedFlooder(7, 3)},
  };
  for (const auto& [legacy, gallery] : pairs) {
    const BeaconOutcome viaLegacy = fx.runLegacy(legacy);
    const BeaconOutcome viaGallery = fx.runGallery(gallery);
    const NodeId n = fx.g.numNodes();
    EXPECT_EQ(fingerprint(viaLegacy.result, n), fingerprint(viaGallery.result, n))
        << legacy.name << " diverged from gallery strategy " << gallery.name;
    EXPECT_EQ(viaLegacy.stats.beaconsForged, viaGallery.stats.beaconsForged) << legacy.name;
    EXPECT_EQ(viaLegacy.stats.blacklistInsertions, viaGallery.stats.blacklistInsertions)
        << legacy.name;
  }
}

TEST(PresetMigration, ShimResolvesEachPresetToItsKind) {
  EXPECT_EQ(BeaconAttackProfile::none().toAdversaryProfile().kind, BeaconAttackKind::None);
  EXPECT_EQ(BeaconAttackProfile::flooder().toAdversaryProfile().kind, BeaconAttackKind::Flooder);
  EXPECT_EQ(BeaconAttackProfile::tamperer().toAdversaryProfile().kind,
            BeaconAttackKind::Tamperer);
  EXPECT_EQ(BeaconAttackProfile::suppressor().toAdversaryProfile().kind,
            BeaconAttackKind::Suppressor);
  EXPECT_EQ(BeaconAttackProfile::continueSpammer().toAdversaryProfile().kind,
            BeaconAttackKind::ContinueSpammer);
  EXPECT_EQ(BeaconAttackProfile::full().toAdversaryProfile().kind, BeaconAttackKind::Full);
  const BeaconAdversaryProfile targeted =
      BeaconAttackProfile::targetedFlooder(42, 3).toAdversaryProfile();
  EXPECT_EQ(targeted.kind, BeaconAttackKind::TargetedFlooder);
  EXPECT_EQ(targeted.victim, 42u);
  EXPECT_EQ(targeted.forgeRadius, 3u);
  // The legacy name rides along so tables and JSON rows keep their labels.
  EXPECT_EQ(BeaconAttackProfile::continueSpammer().toAdversaryProfile().name,
            "continue-spammer");
  // Ad-hoc flag combinations outside the preset space are rejected.
  BeaconAttackProfile adHoc;
  adHoc.forgeBeacons = true;
  adHoc.relayBeacons = false;
  EXPECT_THROW((void)adHoc.toAdversaryProfile(), std::invalid_argument);
}

TEST(PresetMigration, StrategyStatsExposeTheBehaviourSignatures) {
  const BeaconRun fx = BeaconRun::make();
  const BeaconOutcome suppressed = fx.runGallery(BeaconAdversaryProfile::suppressor());
  EXPECT_GT(suppressed.stats.adversary.relaysSuppressed, 0u);
  EXPECT_GT(suppressed.stats.adversary.continuesSuppressed, 0u);
  EXPECT_EQ(suppressed.stats.adversary.beaconsForged, 0u);

  const BeaconOutcome tampered = fx.runGallery(BeaconAdversaryProfile::tamperer());
  EXPECT_GT(tampered.stats.adversary.relaysTampered, 0u);
  EXPECT_EQ(tampered.stats.adversary.relaysTampered, tampered.stats.adversary.beaconsForged);

  const BeaconOutcome spammed = fx.runGallery(BeaconAdversaryProfile::continueSpammer());
  EXPECT_GT(spammed.stats.adversary.continuesSpammed, 0u);
  EXPECT_EQ(spammed.stats.adversary.beaconsForged, 0u);
}

// ---------------------------------------------------------------------------
// The strategies the flag bundle cannot express.
// ---------------------------------------------------------------------------

TEST(AdaptiveFlooder, UnreachableToleranceIsThePlainFlooderBitForBit) {
  const BeaconRun fx = BeaconRun::make();
  const BeaconOutcome plain = fx.runGallery(BeaconAdversaryProfile::flooder());
  const BeaconOutcome adaptive =
      fx.runGallery(BeaconAdversaryProfile::adaptiveFlooder(~0ULL));
  EXPECT_EQ(fingerprint(plain.result, fx.g.numNodes()),
            fingerprint(adaptive.result, fx.g.numNodes()));
  EXPECT_EQ(plain.stats.beaconsForged, adaptive.stats.beaconsForged);
  EXPECT_EQ(adaptive.stats.adversary.pressureBackoffs, 0u);
}

TEST(AdaptiveFlooder, BlacklistPressureThrottlesForgingMonotonically) {
  const BeaconRun fx = BeaconRun::make();
  // Tolerance 0 backs off the moment the defence reacts; loosening the
  // tolerance monotonically restores forging, up to the plain flooder.
  const BeaconOutcome tight = fx.runGallery(BeaconAdversaryProfile::adaptiveFlooder(0));
  const BeaconOutcome mid = fx.runGallery(BeaconAdversaryProfile::adaptiveFlooder(400));
  const BeaconOutcome loose = fx.runGallery(BeaconAdversaryProfile::adaptiveFlooder(~0ULL));
  EXPECT_GT(tight.stats.adversary.pressureBackoffs, 0u);
  EXPECT_LT(tight.stats.beaconsForged, loose.stats.beaconsForged);
  EXPECT_LE(tight.stats.beaconsForged, mid.stats.beaconsForged);
  EXPECT_LE(mid.stats.beaconsForged, loose.stats.beaconsForged);
}

TEST(PrefixGrafter, SplicesHonestPrefixesInsteadOfFreshIds) {
  const BeaconRun fx = BeaconRun::make();
  const BeaconOutcome grafted = fx.runGallery(BeaconAdversaryProfile::prefixGrafter());
  const BeaconOutcome tampered = fx.runGallery(BeaconAdversaryProfile::tamperer());
  // The grafter replaces relays like the tamperer...
  EXPECT_GT(grafted.stats.adversary.relaysTampered, 0u);
  // ...but carries real honest IDs into its forged prefixes, which the flag
  // bundle (fresh fabricated IDs only) cannot do.
  EXPECT_GT(grafted.stats.adversary.prefixGrafts, 0u);
  EXPECT_EQ(tampered.stats.adversary.prefixGrafts, 0u);
  EXPECT_NE(fingerprint(grafted.result, fx.g.numNodes()),
            fingerprint(tampered.result, fx.g.numNodes()));
}

// ---------------------------------------------------------------------------
// Mixed coalitions: partition, cross-stage blackboard, dispatch.
// ---------------------------------------------------------------------------

CoalitionPlan floodAndHuntPlan(double flooderShare = 0.5) {
  return CoalitionPlan::split(
      "beacon-flooders", flooderShare, BeaconAdversaryProfile::flooder(),
      AgreementAttackProfile::adaptiveMinority(), "walk-hunters",
      BeaconAdversaryProfile::none(), AgreementAttackProfile::hunter(2));
}

TEST(CoalitionPartition, SubsetsAreDisjointAndSizesSumToTheBudget) {
  Rng gen(80);
  const Graph g = hnd(256, 8, gen);
  PlacementSpec pspec;
  pspec.kind = Placement::Random;
  pspec.count = 23;  // odd budget: remainder distribution must still be exact
  Rng prng(81);
  const ByzantineSet byz = placeByzantine(g, pspec, prng);

  CoalitionPlan plan;
  plan.subsets.push_back({"a", 0.5, BeaconAdversaryProfile::flooder(),
                          AgreementAttackProfile::adaptiveMinority()});
  plan.subsets.push_back({"b", 0.3, BeaconAdversaryProfile::tamperer(),
                          AgreementAttackProfile::dropper()});
  plan.subsets.push_back({"c", 0.2, BeaconAdversaryProfile::none(),
                          AgreementAttackProfile::hunter(2)});
  const CoalitionAssignment assign = partitionBudget(plan, byz);

  ASSERT_EQ(assign.sizes.size(), 3u);
  std::size_t total = 0;
  for (std::size_t s : assign.sizes) total += s;
  EXPECT_EQ(total, byz.count());  // sizes sum to B exactly
  // Every Byzantine node belongs to exactly one subset; honest nodes to none.
  std::vector<std::size_t> counted(3, 0);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (byz.contains(u)) {
      ASSERT_NE(assign.subsetOf[u], CoalitionAssignment::kNoSubset) << u;
      ++counted[assign.subsetOf[u]];
    } else {
      EXPECT_EQ(assign.subsetOf[u], CoalitionAssignment::kNoSubset) << u;
    }
  }
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(counted[s], assign.sizes[s]);
  // Shares 0.5/0.3/0.2 of 23: floors 11/6/4 = 21, remainder 2 -> 12/7/4.
  EXPECT_EQ(assign.sizes[0], 12u);
  EXPECT_EQ(assign.sizes[1], 7u);
  EXPECT_EQ(assign.sizes[2], 4u);
}

TEST(CoalitionPartition, ZeroShareSubsetsNeverReceiveRemainderBudget) {
  Rng gen(86);
  const Graph g = hnd(128, 8, gen);
  PlacementSpec pspec;
  pspec.kind = Placement::Random;
  pspec.count = 5;  // floors to {0, 2, 2}: the remainder must skip subset 0
  Rng prng(87);
  const ByzantineSet byz = placeByzantine(g, pspec, prng);
  CoalitionPlan plan;
  plan.subsets.push_back({"idle", 0.0, BeaconAdversaryProfile::full(),
                          AgreementAttackProfile::adaptiveMinority()});
  plan.subsets.push_back({"a", 1.0, BeaconAdversaryProfile::flooder(),
                          AgreementAttackProfile::adaptiveMinority()});
  plan.subsets.push_back({"b", 1.0, BeaconAdversaryProfile::none(),
                          AgreementAttackProfile::hunter(2)});
  const CoalitionAssignment assign = partitionBudget(plan, byz);
  EXPECT_EQ(assign.sizes[0], 0u);  // allocated nothing, gets nothing
  EXPECT_EQ(assign.sizes[1] + assign.sizes[2], byz.count());
}

TEST(CoalitionPartition, VictimAnchoringRespectsExplicitNodeZero) {
  // The sentinel means "the scenario's victim"; an explicit victim — node 0
  // included — always wins.
  const BeaconAdversaryProfile sentinel =
      BeaconAdversaryProfile::targetedFlooder(BeaconAdversaryProfile::kScenarioVictim, 3);
  EXPECT_EQ(anchorBeaconProfile(sentinel, 5).victim, 5u);
  const BeaconAdversaryProfile explicitZero = BeaconAdversaryProfile::targetedFlooder(0, 3);
  EXPECT_EQ(anchorBeaconProfile(explicitZero, 5).victim, 0u);
  // Unanchored sentinels must never reach the strategy factory.
  Rng gen(88);
  const Graph g = hnd(64, 8, gen);
  const ByzantineSet byz(64, {1});
  EXPECT_THROW((void)makeBeaconAdversary(sentinel, g, byz), std::invalid_argument);
}

TEST(CoalitionPartition, AssignmentIsDeterministic) {
  Rng gen(82);
  const Graph g = hnd(128, 8, gen);
  PlacementSpec pspec;
  pspec.kind = Placement::Random;
  pspec.count = 9;
  Rng prng(83);
  const ByzantineSet byz = placeByzantine(g, pspec, prng);
  const CoalitionPlan plan = floodAndHuntPlan();
  const CoalitionAssignment a = partitionBudget(plan, byz);
  const CoalitionAssignment b = partitionBudget(plan, byz);
  EXPECT_EQ(a.subsetOf, b.subsetOf);
  EXPECT_EQ(a.sizes, b.sizes);
}

TEST(CrossStageBlackboard, BeaconStageHitsAreVisibleInTheAgreementOutcome) {
  // A pipeline whose ONLY coalition-aware behaviour is the counting-stage
  // targeted flooder: the agreement stage's coalitionHits can be nonzero only
  // if both stages really share one blackboard.
  Rng gen(84);
  const Graph g = hnd(192, 8, gen);
  PlacementSpec pspec;
  pspec.kind = Placement::Surround;
  pspec.count = 16;
  pspec.victim = 3;
  pspec.moatRadius = 2;
  Rng prng(85);
  const ByzantineSet byz = placeByzantine(g, pspec, prng);

  // Surround mans the wall just OUTSIDE the moat radius (distance 3 here),
  // so the forging radius must reach it.
  const auto beacon = makeBeaconAdversary(BeaconAdversaryProfile::targetedFlooder(3, 3), g, byz);
  PipelineParams params;
  params.agreement.initialOnesFraction = 0.7;
  params.agreement.walkLengthFactor = 0.5;
  params.countingLimits.maxPhase = 8;
  params.countingLimits.maxTotalRounds = 20'000;
  Rng rng(86);
  const PipelineOutcome out =
      runCountingThenAgreement(g, byz, PipelineAdversaries{*beacon, nullptr}, params, rng);
  EXPECT_GT(out.counting.stats.adversary.beaconsForged, 0u);
  EXPECT_GT(out.agreement.adversary.coalitionHits, 0u);  // recorded by the counting stage
}

TEST(MixedCoalition, DispatchRoutesEachSubsetsBehaviour) {
  // 50/50 beacon-flooders + walk-hunters: the run must show BOTH signatures —
  // forged beacons in the counting stage and victim-targeted taints in the
  // agreement stage — while pure runs show only their own.
  ScenarioSpec spec;
  spec.name = "mixed-flood-hunt";
  spec.graph = {GraphKind::Hnd, 192, 8, 0.1};
  spec.placement.kind = Placement::Surround;
  spec.placement.count = 12;
  spec.placement.victim = 3;
  spec.placement.moatRadius = 2;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.coalitionPlan = floodAndHuntPlan();
  spec.trials = 8;
  spec.masterSeed = 0xbeac;

  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(spec);
  ASSERT_EQ(s.extras.size(), static_cast<std::size_t>(kAgreementExtraSlots));
  EXPECT_GT(s.extras[kAgreementBeaconForged].min, 0.0);    // flooder subset acted
  EXPECT_GT(s.extras[kAgreementCoalitionHits].min, 0.0);   // hunter subset acted
  EXPECT_DOUBLE_EQ(s.extras[kAgreementCoalitionSubsets].mean, 2.0);
  EXPECT_GE(s.extras[kAgreementCombinedScore].min, 0.0);
  EXPECT_LE(s.extras[kAgreementCombinedScore].max, 1.0);

  // Pure-hunter plan at the same budget: no beacon-stage forging.
  ScenarioSpec pureHunter = spec;
  pureHunter.name = "pure-hunt";
  pureHunter.coalitionPlan.subsets.clear();
  pureHunter.coalitionPlan.subsets.push_back(
      {"hunters", 1.0, BeaconAdversaryProfile::none(), AgreementAttackProfile::hunter(2)});
  const ExperimentSummary hunterOnly = runner.run(pureHunter);
  EXPECT_DOUBLE_EQ(hunterOnly.extras[kAgreementBeaconForged].max, 0.0);
  EXPECT_GT(hunterOnly.extras[kAgreementCoalitionHits].min, 0.0);
}

TEST(MixedCoalition, ScenarioIsThreadCountInvariantAt48Trials) {
  // The acceptance criterion: a mixed cross-stage coalition selected purely
  // from the ScenarioSpec, bit-identical at 1, 2 and 8 threads over 48 trials.
  ScenarioSpec spec;
  spec.name = "mixed-invariance";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Surround;
  spec.placement.count = 10;
  spec.placement.victim = 3;
  spec.placement.moatRadius = 2;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.coalitionPlan = CoalitionPlan::split(
      "grafters", 0.5, BeaconAdversaryProfile::prefixGrafter(),
      AgreementAttackProfile::flipper(0.8), "hunters", BeaconAdversaryProfile::none(),
      AgreementAttackProfile::hunter(2));
  spec.trials = 48;
  spec.masterSeed = 0x50c1;

  ExperimentSummary byThreads[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    ExperimentRunner runner(counts[t]);
    byThreads[t] = runner.run(spec);
  }
  ASSERT_EQ(byThreads[0].perTrial.size(), 48u);
  for (int t = 1; t < 3; ++t) {
    EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint)
        << "mixed coalition diverged at " << counts[t] << " threads";
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_EQ(byThreads[0].perTrial[i].resultFingerprint,
                byThreads[t].perTrial[i].resultFingerprint)
          << "trial " << i << " diverged at " << counts[t] << " threads";
    }
  }
  // Both subsets' signatures survive aggregation.
  EXPECT_GT(byThreads[0].extras[kAgreementFlipped].mean, 0.0);
  EXPECT_GT(byThreads[0].extras[kAgreementCoalitionHits].mean, 0.0);
}

TEST(Profiles, BeaconNamesAndKnobsRoundTrip) {
  EXPECT_STREQ(beaconAttackKindName(BeaconAttackKind::PrefixGrafter), "prefix-grafter");
  EXPECT_EQ(BeaconAdversaryProfile::flooder(5).fakePrefixLength, 5u);
  EXPECT_EQ(BeaconAdversaryProfile::targetedFlooder(9, 6).victim, 9u);
  EXPECT_EQ(BeaconAdversaryProfile::targetedFlooder(9, 6).forgeRadius, 6u);
  EXPECT_EQ(BeaconAdversaryProfile::adaptiveFlooder(17).pressureTolerance, 17u);
  EXPECT_EQ(BeaconAdversaryProfile::prefixGrafter(4).graftLength, 4u);
  EXPECT_EQ(BeaconAdversaryProfile::adaptiveFlooder().name, "adaptive-flooder");
  // The spec-level gallery profile wins over the legacy flags only when set.
  ScenarioSpec spec;
  EXPECT_EQ(spec.beaconAdversary.kind, BeaconAttackKind::None);
}

}  // namespace
}  // namespace bzc
