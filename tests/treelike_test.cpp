// Tests for the locally-tree-like classifier (Definition 3) and the Lemma 2
// bound on H(n,d).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/tree_like.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(TreeLikeRadius, Formula) {
  // floor(log n / (10 log d)), at least 1.
  EXPECT_EQ(treeLikeRadius(1u << 19, 4), 1u);  // 19 ln2 / (10 * 2 ln2) < 1 -> clamp
  EXPECT_EQ(treeLikeRadius(1000, 8), 1u);
  // d = 2: radius 2 needs n >= 2^20.
  EXPECT_EQ(treeLikeRadius(1u << 20, 2), 2u);
  EXPECT_EQ(treeLikeRadius((1u << 20) - 1, 2), 1u);
}

TEST(TreeLike, TreeIsTreeLikeEverywhere) {
  const Graph g = binaryTree(31);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    EXPECT_TRUE(isLocallyTreeLike(g, u, 3)) << "node " << u;
  }
  EXPECT_EQ(countTreeLike(g, 4), g.numNodes());
}

TEST(TreeLike, RingIsTreeLikeAtSmallRadius) {
  const Graph g = ring(20);
  // A ball of radius r < n/2 in a ring is a path: a tree.
  EXPECT_TRUE(isLocallyTreeLike(g, 0, 5));
}

TEST(TreeLike, RingClosesAtLargeRadius) {
  const Graph g = ring(10);
  // Radius 5 wraps around: the two frontier arms meet via an edge.
  EXPECT_FALSE(isLocallyTreeLike(g, 0, 5));
}

TEST(TreeLike, HypercubeFailsAtRadiusTwo) {
  const Graph g = hypercube(4);
  // Hypercubes are full of 4-cycles: radius-2 balls always contain one.
  EXPECT_TRUE(isLocallyTreeLike(g, 0, 1));
  EXPECT_FALSE(isLocallyTreeLike(g, 0, 2));
}

TEST(TreeLike, CompleteGraphFailsImmediately) {
  const Graph g = complete(5);
  EXPECT_FALSE(isLocallyTreeLike(g, 0, 1));  // triangle within the ball
}

TEST(TreeLike, ParallelEdgeBreaksTreeness) {
  const Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_FALSE(isLocallyTreeLike(g, 0, 1));
  EXPECT_FALSE(isLocallyTreeLike(g, 2, 2));
  EXPECT_TRUE(isLocallyTreeLike(g, 2, 1));  // radius 1 sees only the 1-2 edge
}

TEST(TreeLike, MaskMatchesCount) {
  Rng rng(31);
  const Graph g = hnd(128, 6, rng);
  const auto mask = treeLikeMask(g, 2);
  std::size_t ones = 0;
  for (char c : mask) ones += c;
  EXPECT_EQ(ones, countTreeLike(g, 2));
}

// Lemma 2: in H(n,d), at least n - O(n^0.8) nodes are locally tree-like at
// radius log n / (10 log d). The radius is 1 at these sizes, where the
// tree-like condition just asks for no short cycle through the 1-ball; the
// sweep checks the count stays within a modest constant times n^0.8.
class Lemma2Sweep : public ::testing::TestWithParam<std::tuple<NodeId, NodeId>> {};

TEST_P(Lemma2Sweep, MostNodesTreeLike) {
  const auto [n, d] = GetParam();
  Rng rng(1000 + n + d);
  const Graph g = hnd(n, d, rng);
  const std::uint32_t r = treeLikeRadius(n, d);
  const std::size_t treeLike = countTreeLike(g, r);
  const double allowance = 3.0 * std::pow(static_cast<double>(n), 0.8);
  EXPECT_GE(static_cast<double>(treeLike), static_cast<double>(n) - allowance)
      << "non-tree-like: " << (n - treeLike) << " allowance " << allowance;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lemma2Sweep,
                         ::testing::Combine(::testing::Values<NodeId>(256, 512, 1024, 2048),
                                            ::testing::Values<NodeId>(8, 12)));

// At radius 2 a ball has ~d^2 nodes and the collision probability scales as
// d^4/n: a majority of nodes is tree-like only once n >> d^4. The sweep
// checks the scaling at two sizes bracketing that threshold.
TEST(TreeLike, RadiusTwoFractionScalesWithN) {
  Rng rngSmall(77);
  const Graph small = hnd(4096, 8, rngSmall);
  Rng rngBig(78);
  const Graph big = hnd(65536, 8, rngBig);
  const double fracSmall =
      static_cast<double>(countTreeLike(small, 2)) / small.numNodes();
  const double fracBig = static_cast<double>(countTreeLike(big, 2)) / big.numNodes();
  EXPECT_GT(fracBig, fracSmall + 0.3);  // 16x more nodes: way fewer collisions
  EXPECT_GT(fracBig, 0.8);
}

}  // namespace
}  // namespace bzc
