// Unit tests for the graph substrate: CSR graph, generators, BFS, IO.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(Graph, BasicConstruction) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.numNodes(), 4u);
  EXPECT_EQ(g.numEdges(), 4u);
  EXPECT_EQ(g.maxDegree(), 2u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(Graph, NeighborsSorted) {
  const Graph g(4, {{2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeRejected) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
}

TEST(Graph, MultiEdgesKeptAndSimplified) {
  const Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.multiEdgeCount(), 1u);
  const Graph s = g.simplified();
  EXPECT_EQ(s.numEdges(), 2u);
  EXPECT_EQ(s.degree(0), 1u);
  EXPECT_EQ(s.multiEdgeCount(), 0u);
}

// Parallel-edge coverage for hasEdge/edgeMultiplicity: the H(n,d)
// permutation model produces multigraphs, where the sought neighbour
// occupies a run of equal adjacency entries rather than a single slot.
TEST(Graph, HasEdgeWithParallelEdges) {
  const Graph g(4, {{0, 1}, {0, 1}, {0, 1}, {0, 3}, {2, 3}});
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_TRUE(g.hasEdge(0, 3));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(2, 0));
  // First/last neighbour positions (lower_bound edge cases).
  EXPECT_TRUE(g.hasEdge(3, 0));
  EXPECT_TRUE(g.hasEdge(3, 2));
  EXPECT_FALSE(g.hasEdge(3, 1));

  EXPECT_EQ(g.edgeMultiplicity(0, 1), 3u);
  EXPECT_EQ(g.edgeMultiplicity(1, 0), 3u);
  EXPECT_EQ(g.edgeMultiplicity(0, 3), 1u);
  EXPECT_EQ(g.edgeMultiplicity(0, 2), 0u);
  EXPECT_EQ(g.edgeMultiplicity(2, 3), 1u);
}

TEST(Graph, HasEdgeMatchesLinearScanOnMultigraph) {
  Rng rng(99);
  const Graph g = hnd(64, 6, rng);  // H(n,d) can produce parallel edges
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      const auto nbrs = g.neighbors(u);
      std::size_t linear = 0;
      for (NodeId w : nbrs) linear += w == v ? 1 : 0;
      EXPECT_EQ(g.hasEdge(u, v), linear > 0) << u << "-" << v;
      EXPECT_EQ(g.edgeMultiplicity(u, v), linear) << u << "-" << v;
    }
  }
}

TEST(Graph, EdgeListRoundTrip) {
  const Graph g(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  const auto edges = g.edgeList();
  EXPECT_EQ(edges.size(), 4u);
  const Graph h(5, edges);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.degree(u), h.degree(u));
}

TEST(Graph, InducedSubgraph) {
  const Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const auto [sub, map] = g.inducedSubgraph({0, 1, 2});
  EXPECT_EQ(sub.numNodes(), 3u);
  EXPECT_EQ(sub.numEdges(), 2u);  // 0-1, 1-2 survive; 4-0 and 2-3 dropped
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[3], kNoNode);
}

TEST(Generators, HndIsDRegular) {
  Rng rng(1);
  const Graph g = hnd(200, 8, rng);
  EXPECT_EQ(g.numNodes(), 200u);
  EXPECT_EQ(g.numEdges(), 800u);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), 8u);
}

TEST(Generators, HndConnectedWhp) {
  // A union of Hamiltonian cycles contains a Hamiltonian cycle: always
  // connected, by construction.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    EXPECT_TRUE(isConnected(hnd(128, 4, rng)));
  }
}

TEST(Generators, HndRequiresEvenDegree) {
  Rng rng(2);
  EXPECT_THROW((void)hnd(10, 3, rng), std::invalid_argument);
}

TEST(Generators, ConfigurationModelDegrees) {
  Rng rng(3);
  const Graph g = configurationModel(100, 6, rng);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), 6u);
}

TEST(Generators, ConfigurationModelOddProductRejected) {
  Rng rng(4);
  EXPECT_THROW((void)configurationModel(5, 3, rng), std::invalid_argument);
}

TEST(Generators, WattsStrogatzDegreesPreservedAtZeroRewire) {
  Rng rng(5);
  const Graph g = wattsStrogatz(50, 3, 0.0, rng);
  EXPECT_EQ(g.numEdges(), 150u);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), 6u);
}

TEST(Generators, WattsStrogatzRewireKeepsEdgeCount) {
  Rng rng(6);
  const Graph g = wattsStrogatz(100, 4, 0.3, rng);
  EXPECT_EQ(g.numEdges(), 400u);
  EXPECT_EQ(g.multiEdgeCount(), 0u);
}

TEST(Generators, RingPathStarTreeShapes) {
  EXPECT_EQ(ring(10).numEdges(), 10u);
  EXPECT_EQ(path(10).numEdges(), 9u);
  EXPECT_EQ(star(10).numEdges(), 9u);
  EXPECT_EQ(star(10).degree(0), 9u);
  EXPECT_EQ(binaryTree(15).numEdges(), 14u);
  EXPECT_EQ(complete(6).numEdges(), 15u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.numNodes(), 16u);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(exactDiameter(g), 4u);
}

TEST(Generators, TorusShape) {
  const Graph g = torus2d(4, 5);
  EXPECT_EQ(g.numNodes(), 20u);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, GluedCopiesStructure) {
  // Theorem 3 gadget: t copies of a ring sharing node `hub`.
  const Graph base = ring(6);
  const Graph g = gluedCopies(base, 2, 3);
  EXPECT_EQ(g.numNodes(), 1u + 3u * 5u);
  EXPECT_EQ(g.numEdges(), 3u * 6u);
  // The hub has degree deg_base(hub) * copies.
  EXPECT_EQ(g.degree(0), 2u * 3u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, GluedSingleCopyIsIsomorphicInSize) {
  const Graph base = ring(8);
  const Graph g = gluedCopies(base, 0, 1);
  EXPECT_EQ(g.numNodes(), base.numNodes());
  EXPECT_EQ(g.numEdges(), base.numEdges());
}

TEST(Generators, BarbellIsConnectedWithBridge) {
  Rng rng(7);
  const Graph g = barbell(64, 6, 2, rng);
  EXPECT_EQ(g.numNodes(), 128u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const auto dist = bfsDistances(g, 0);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(dist[u], u);
}

TEST(Bfs, DistancesOnRing) {
  const Graph g = ring(8);
  const auto dist = bfsDistances(g, 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 3u);
  EXPECT_EQ(dist[7], 1u);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const auto dist = bfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_FALSE(isConnected(g));
}

TEST(Bfs, MultiSource) {
  const Graph g = path(7);
  const auto dist = multiSourceBfsDistances(g, {0, 6});
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[5], 1u);
  EXPECT_EQ(dist[0], 0u);
}

TEST(Bfs, BallContents) {
  const Graph g = path(10);
  const auto b = ball(g, 5, 2);
  EXPECT_EQ(b.size(), 5u);  // 3,4,5,6,7
  EXPECT_EQ(b.front(), 5u);
}

TEST(Bfs, BallSizesCumulative) {
  const Graph g = star(9);
  const auto sizes = ballSizes(g, 0, 2);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 9u);
  EXPECT_EQ(sizes[2], 9u);
}

TEST(Bfs, DiameterExactAndApprox) {
  const Graph g = ring(20);
  EXPECT_EQ(exactDiameter(g), 10u);
  // Double-sweep on a ring finds the true diameter.
  EXPECT_EQ(approxDiameter(g), 10u);
  EXPECT_EQ(eccentricity(path(9), 0), 8u);
}

TEST(Bfs, ApproxDiameterLowerBoundsExact) {
  Rng rng(8);
  const Graph g = hnd(256, 6, rng);
  EXPECT_LE(approxDiameter(g), exactDiameter(g));
  EXPECT_GE(approxDiameter(g) + 2, exactDiameter(g));  // double sweep is tight on expanders
}

TEST(Io, EdgeListRoundTrip) {
  Rng rng(9);
  const Graph g = hnd(50, 4, rng);
  std::stringstream ss;
  writeEdgeList(ss, g);
  const Graph h = readEdgeList(ss);
  EXPECT_EQ(h.numNodes(), g.numNodes());
  EXPECT_EQ(h.numEdges(), g.numEdges());
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_EQ(g.degree(u), h.degree(u));
}

TEST(Io, TruncatedInputThrows) {
  std::stringstream ss("5 3\n0 1\n");
  EXPECT_THROW((void)readEdgeList(ss), std::invalid_argument);
}

TEST(Io, DotContainsHighlight) {
  const Graph g = ring(4);
  const std::string dot = toDot(g, {2});
  EXPECT_NE(dot.find("2 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
}

// Property sweep: H(n,d) regularity/connectivity across sizes and degrees.
class HndSweep : public ::testing::TestWithParam<std::tuple<NodeId, NodeId>> {};

TEST_P(HndSweep, RegularConnectedRightSize) {
  const auto [n, d] = GetParam();
  Rng rng(100 + n + d);
  const Graph g = hnd(n, d, rng);
  EXPECT_EQ(g.numNodes(), n);
  EXPECT_EQ(g.numEdges(), static_cast<std::size_t>(n) * d / 2);
  for (NodeId u = 0; u < n; ++u) EXPECT_EQ(g.degree(u), d);
  EXPECT_TRUE(isConnected(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HndSweep,
                         ::testing::Combine(::testing::Values<NodeId>(32, 64, 128, 256, 512),
                                            ::testing::Values<NodeId>(4, 8, 12)));

}  // namespace
}  // namespace bzc
