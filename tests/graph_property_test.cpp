// Deeper structural properties of the graph layer: generator invariants
// under parameter sweeps, BFS identities, expansion monotonicity, and
// edge-case/failure handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/bfs.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "graph/tree_like.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(GraphIdentities, HandshakeLemma) {
  Rng rng(1);
  const Graph g = hnd(200, 6, rng);
  std::size_t degreeSum = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) degreeSum += g.degree(u);
  EXPECT_EQ(degreeSum, 2 * g.numEdges());
}

TEST(GraphIdentities, AdjacencySymmetric) {
  Rng rng(2);
  const Graph g = configurationModel(128, 6, rng);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(g.hasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(GraphIdentities, SimplifyIdempotent) {
  Rng rng(3);
  const Graph g = hnd(64, 8, rng);
  const Graph s1 = g.simplified();
  const Graph s2 = s1.simplified();
  EXPECT_EQ(s1.numEdges(), s2.numEdges());
  EXPECT_EQ(s1.multiEdgeCount(), 0u);
}

TEST(GraphIdentities, InducedSubgraphPreservesInternalDegrees) {
  const Graph g = complete(8);
  const auto [sub, map] = g.inducedSubgraph({0, 1, 2, 3});
  EXPECT_EQ(sub.numNodes(), 4u);
  EXPECT_EQ(sub.numEdges(), 6u);  // K4
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(sub.degree(u), 3u);
}

TEST(GraphIdentities, InducedSubgraphRejectsDuplicates) {
  const Graph g = ring(6);
  EXPECT_THROW((void)g.inducedSubgraph({0, 0}), std::invalid_argument);
  EXPECT_THROW((void)g.inducedSubgraph({7}), std::invalid_argument);
}

TEST(BfsIdentities, TriangleInequalityOnHnd) {
  Rng rng(4);
  const Graph g = hnd(128, 6, rng);
  const auto d0 = bfsDistances(g, 0);
  const auto d7 = bfsDistances(g, 7);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    EXPECT_LE(d0[u], d0[7] + d7[u]);
    EXPECT_LE(d7[u], d7[0] + d0[u]);
  }
}

TEST(BfsIdentities, BallMatchesDistances) {
  Rng rng(5);
  const Graph g = hnd(128, 6, rng);
  const auto dist = bfsDistances(g, 9);
  const auto b2 = ball(g, 9, 2);
  std::size_t within2 = 0;
  for (std::uint32_t d : dist) within2 += d <= 2 ? 1 : 0;
  EXPECT_EQ(b2.size(), within2);
  for (NodeId v : b2) EXPECT_LE(dist[v], 2u);
}

TEST(BfsIdentities, HypercubeDistanceIsHamming) {
  const Graph g = hypercube(5);
  const auto dist = bfsDistances(g, 0);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    EXPECT_EQ(dist[u], static_cast<std::uint32_t>(__builtin_popcount(u)));
  }
}

TEST(BfsIdentities, TorusDiameter) {
  const Graph g = torus2d(6, 8);
  // Torus diameter = floor(rows/2) + floor(cols/2).
  EXPECT_EQ(exactDiameter(g), 3u + 4u);
}

TEST(GeneratorSweeps, WattsStrogatzFullRewireStillValid) {
  Rng rng(6);
  const Graph g = wattsStrogatz(100, 3, 1.0, rng);
  EXPECT_EQ(g.numEdges(), 300u);
  EXPECT_EQ(g.multiEdgeCount(), 0u);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    EXPECT_FALSE(g.hasEdge(u, u));
  }
}

TEST(GeneratorSweeps, GluedCopiesHubDegreeScales) {
  for (NodeId copies : {2u, 5u, 9u}) {
    const Graph g = gluedCopies(ring(10), 4, copies);
    EXPECT_EQ(g.degree(0), 2 * copies);
    EXPECT_EQ(g.numNodes(), 1 + copies * 9);
    EXPECT_TRUE(isConnected(g));
  }
}

TEST(GeneratorSweeps, GluedCopiesOfStarKeepsLeaves) {
  // Glue at a leaf: hub has degree 1 per copy.
  const Graph g = gluedCopies(star(5), 1, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.numNodes(), 1 + 3 * 4u);
}

TEST(ExpansionMonotonicity, DenserHndExpandsMore) {
  // Higher degree => better expansion (both sweeps upper-bound h).
  Rng g1(7);
  const Graph sparse = hnd(256, 4, g1);
  Rng g2(8);
  const Graph dense = hnd(256, 12, g2);
  Rng r1(9);
  Rng r2(10);
  EXPECT_LT(fiedlerSweep(sparse, 200, r1).expansion, fiedlerSweep(dense, 200, r2).expansion);
}

TEST(ExpansionMonotonicity, MoreBridgesHelpBarbell) {
  Rng g1(11);
  const Graph thin = barbell(128, 8, 1, g1);
  Rng g2(11);
  const Graph thick = barbell(128, 8, 32, g2);
  Rng r1(12);
  Rng r2(13);
  EXPECT_LT(fiedlerSweep(thin, 250, r1).expansion, fiedlerSweep(thick, 250, r2).expansion);
}

TEST(ExpansionEdgeCases, CompleteGraphProfileIsSharp) {
  const Graph g = complete(10);
  const auto profile = ballExpansionProfile(g, 0, 2);
  EXPECT_DOUBLE_EQ(profile[0], 9.0);
  EXPECT_DOUBLE_EQ(profile[1], 0.0);  // ball(0,1) is everything
}

TEST(ExpansionEdgeCases, SweepOnDisconnectedGraphFindsZero) {
  const Graph g(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  std::vector<NodeId> order = {0, 1, 2, 3, 4, 5};
  const SweepCut cut = sweepCutByOrder(g, order);
  EXPECT_DOUBLE_EQ(cut.expansion, 0.0);
  EXPECT_EQ(cut.smallSide, 3u);
}

TEST(TreeLikeExtra, GluedGadgetHubNotTreeLike) {
  // The hub of >= 2 glued rings sits on multiple cycles; with radius big
  // enough to wrap a copy, it is not tree-like.
  const Graph g = gluedCopies(ring(8), 0, 3);
  EXPECT_FALSE(isLocallyTreeLike(g, 0, 4));
  // Small radius: the hub's vicinity is still a tree.
  EXPECT_TRUE(isLocallyTreeLike(g, 0, 2));
}

TEST(TreeLikeExtra, RadiusZeroAlwaysTreeLike) {
  const Graph g = complete(6);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_TRUE(isLocallyTreeLike(g, u, 0));
}

// Parameterised: the expansion of H(n,8) is stable across seeds (a property
// of the model, not of one lucky sample).
class SeedStability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedStability, HndExpansionAcrossSeeds) {
  Rng gen(GetParam());
  const Graph g = hnd(256, 8, gen);
  Rng sweep(GetParam() + 1000);
  EXPECT_GT(fiedlerSweep(g, 150, sweep).expansion, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStability, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace bzc
