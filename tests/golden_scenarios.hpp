// Fixed-seed scenarios whose run fingerprints are pinned as goldens.
//
// The constants in runtime_test.cpp were captured from the pre-SyncEngine
// (hand-rolled round loop) implementations; the migrated protocols must keep
// reproducing them bit-for-bit. Any change to these scenario definitions
// invalidates the goldens — re-capture deliberately, never casually.
#pragma once

#include <cmath>
#include <cstdint>

#include "agreement/pipeline.hpp"
#include "counting/baselines/geometric.hpp"
#include "counting/baselines/spanning_tree.hpp"
#include "counting/baselines/support_estimation.hpp"
#include "counting/beacon/protocol.hpp"
#include "counting/local/protocol.hpp"
#include "graph/generators.hpp"
#include "runtime/fingerprint.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"

namespace bzc::golden {

inline Graph graph(NodeId n, NodeId d, std::uint64_t tag) {
  Rng rng(0x9e3779b9ULL ^ (tag * 1000003ULL + n * 31ULL + d));
  return hnd(n, d, rng);
}

inline ByzantineSet place(const Graph& g, Placement kind, std::size_t count, std::uint64_t tag,
                          NodeId victim = 3, std::uint32_t moatRadius = 1) {
  PlacementSpec spec;
  spec.kind = kind;
  spec.count = count;
  spec.victim = victim;
  spec.moatRadius = moatRadius;
  Rng rng(0x51ed270ULL ^ tag);
  return placeByzantine(g, spec, rng);
}

inline std::uint64_t beaconFingerprint(BeaconChoicePolicy policy,
                                       const BeaconAttackProfile& attack, std::size_t byzCount,
                                       unsigned shards = 1) {
  const NodeId n = 192;
  const Graph g = graph(n, 8, 21);
  const ByzantineSet byz =
      place(g, byzCount > 0 ? Placement::Random : Placement::None, byzCount, 5);
  BeaconParams params;
  params.choice = policy;
  BeaconLimits limits;
  limits.maxPhase = 8;
  limits.maxTotalRounds = 20'000;
  limits.shards = shards;
  Rng rng(4242);
  const BeaconOutcome out = runBeaconCounting(g, byz, attack, params, limits, rng);
  return fingerprint(out.result, n);
}

inline std::uint64_t localFingerprint(LocalAdversary& adversary, Placement placement) {
  const NodeId n = 192;
  const Graph g = graph(n, 8, 22);
  const ByzantineSet byz = place(g, placement, byzantineBudget(n, 0.55), 7);
  LocalParams params;
  Rng rng(777);
  const LocalOutcome out = runLocalCounting(g, byz, adversary, params, rng, /*victim=*/3);
  return fingerprint(out.result, n);
}

inline std::uint64_t geometricFingerprint(GeometricAttack attack) {
  const NodeId n = 128;
  const Graph g = graph(n, 6, 23);
  const ByzantineSet byz = place(g, Placement::Random, 4, 9);
  GeometricParams params;
  Rng rng(31337);
  return fingerprint(runGeometricMax(g, byz, attack, params, rng), n);
}

inline std::uint64_t supportFingerprint(SupportAttack attack) {
  const NodeId n = 128;
  const Graph g = graph(n, 6, 24);
  const ByzantineSet byz = place(g, Placement::Random, 4, 11);
  SupportParams params;
  params.coordinates = 16;
  Rng rng(91);
  return fingerprint(runSupportEstimation(g, byz, attack, params, rng), n);
}

inline std::uint64_t treeFingerprint(TreeAttack attack) {
  const NodeId n = 128;
  const Graph g = graph(n, 6, 25);
  const ByzantineSet byz = place(g, Placement::Random, 4, 13);
  TreeParams params;
  return fingerprint(runSpanningTreeCount(g, byz, attack, params), n);
}

// The agreement goldens below pin the *SyncEngine* implementation (walk-token
// forwarding); they were captured from it at migration time, after the
// statistical-equivalence gates against the oracle-walk implementation
// passed. They guard engine delivery order, token-stream derivation and
// metering — not the pre-refactor RNG sequence, which token forwarding
// necessarily reorders.

inline std::uint64_t agreementFingerprint(std::size_t byzCount, double estimateFactor,
                                          unsigned shards = 1) {
  const NodeId n = 192;
  const Graph g = graph(n, 8, 26);
  const ByzantineSet byz =
      place(g, byzCount > 0 ? Placement::Random : Placement::None, byzCount, 15);
  AgreementParams params;
  params.initialOnesFraction = 0.7;
  params.shards = shards;
  Rng rng(2025);
  const AgreementOutcome out =
      runMajorityAgreement(g, byz, estimateFactor * std::log(static_cast<double>(n)), params, rng);
  return fingerprint(out, n);
}

inline std::uint64_t pipelineFingerprint(const BeaconAttackProfile& attack, std::size_t byzCount,
                                         unsigned shards = 1) {
  const NodeId n = 192;
  const Graph g = graph(n, 8, 27);
  const ByzantineSet byz =
      place(g, byzCount > 0 ? Placement::Random : Placement::None, byzCount, 17);
  PipelineParams params;
  params.agreement.initialOnesFraction = 0.7;
  params.agreement.walkLengthFactor = 0.5;
  params.estimateSafetyFactor = 1.5;
  params.countingLimits.maxPhase = 8;
  params.countingLimits.maxTotalRounds = 20'000;
  params.countingLimits.shards = shards;
  params.agreement.shards = shards;
  Rng rng(4243);
  const PipelineOutcome out = runCountingThenAgreement(g, byz, attack, params, rng);
  const std::uint64_t countingFp = fingerprint(out.counting.result, n);
  const std::uint64_t agreementFp = fingerprint(out.agreement, n);
  return fnv1a64(&agreementFp, sizeof agreementFp, countingFp);
}

}  // namespace bzc::golden
