// Tests for Algorithm 1: the record pool, view integration verdicts, the
// expansion checks, and the protocol under each adversary (Theorem 1).
#include <gtest/gtest.h>

#include <cmath>

#include "counting/local/attacks.hpp"
#include "counting/local/checks.hpp"
#include "counting/local/protocol.hpp"
#include "counting/local/view.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

struct PoolFixture {
  PoolFixture(NodeId n, NodeId d, std::uint64_t seed) : rng(seed), g(hnd(n, d, rng)) {
    Rng idRng = rng.fork(1);
    ids = std::make_unique<IdSpace>(n, idRng);
    pool = std::make_unique<RecordPool>(g, *ids);
  }
  Rng rng;
  Graph g;
  std::unique_ptr<IdSpace> ids;
  std::unique_ptr<RecordPool> pool;
};

TEST(RecordPool, HonestRecordsMatchGraph) {
  PoolFixture f(64, 4, 1);
  EXPECT_EQ(f.pool->numRecords(), 64u);
  for (NodeId u = 0; u < 64; ++u) {
    EXPECT_TRUE(f.pool->isHonest(u));
    EXPECT_EQ(f.pool->degree(u), f.g.degree(u));
    EXPECT_EQ(f.pool->recordName(u), u);
    EXPECT_EQ(f.pool->namePublicId(u), f.ids->publicId(u));
  }
}

TEST(RecordPool, FakeRecordsGetFreshNamesAndTracking) {
  PoolFixture f(16, 4, 2);
  const PublicId fakeId = 0x1234;
  const RecordIdx r = f.pool->addFake(fakeId, {f.ids->publicId(0), 0x5678});
  EXPECT_FALSE(f.pool->isHonest(r));
  EXPECT_EQ(f.pool->degree(r), 2u);
  EXPECT_TRUE(f.pool->needsRefTracking(f.pool->recordName(r)));
  EXPECT_TRUE(f.pool->needsRefTracking(0));  // honest node referenced by a fake
  EXPECT_TRUE(f.pool->lists(r, 0));
}

TEST(RecordPool, AliasesShareName) {
  PoolFixture f(16, 4, 3);
  const RecordIdx alias = f.pool->addFake(f.ids->publicId(5), {f.ids->publicId(0)});
  EXPECT_EQ(f.pool->recordName(alias), 5u);
  EXPECT_EQ(f.pool->aliases(5).size(), 2u);  // honest record + forgery
}

TEST(LocalView, SelfInstallAndBoundary) {
  PoolFixture f(32, 4, 4);
  LocalView view(f.pool.get(), 4);
  view.installSelf(7);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.boundarySize(), static_cast<std::size_t>(f.g.degree(7)));
  EXPECT_TRUE(view.knows(7));
}

TEST(LocalView, IntegrationLayersAndDuplicates) {
  PoolFixture f(32, 4, 5);
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  const NodeId nbr = f.g.neighbors(0)[0];
  EXPECT_EQ(view.integrate(nbr, 1), IntegrationVerdict::Ok);
  EXPECT_EQ(view.integrate(nbr, 1), IntegrationVerdict::Duplicate);
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.layerCounts()[1], 1u);
  EXPECT_EQ(view.roundMark(1), 1u);
}

TEST(LocalView, DegreeBoundRejected) {
  PoolFixture f(16, 4, 6);
  std::vector<PublicId> adj;
  for (int k = 0; k < 7; ++k) adj.push_back(0xA000 + k);  // degree 7 > Δ=4
  const RecordIdx bomb = f.pool->addFake(0xBEEF, adj);
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  EXPECT_EQ(view.integrate(bomb, 1), IntegrationVerdict::DegreeBound);
}

TEST(LocalView, ConflictingAliasDetected) {
  PoolFixture f(16, 4, 7);
  // Forge node 1's record with a different adjacency.
  const RecordIdx forged = f.pool->addFake(f.ids->publicId(1), {0xD00D});
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  ASSERT_EQ(view.integrate(1, 1), IntegrationVerdict::Ok);
  EXPECT_EQ(view.integrate(forged, 2), IntegrationVerdict::Conflict);
}

TEST(LocalView, IdenticalAliasIsDuplicate) {
  PoolFixture f(16, 4, 8);
  std::vector<PublicId> sameAdj;
  for (NodeId v : f.g.neighbors(1)) sameAdj.push_back(f.ids->publicId(v));
  const RecordIdx copy = f.pool->addFake(f.ids->publicId(1), sameAdj);
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  ASSERT_EQ(view.integrate(1, 1), IntegrationVerdict::Ok);
  EXPECT_EQ(view.integrate(copy, 2), IntegrationVerdict::Duplicate);
}

TEST(LocalView, ForwardMutualMismatch) {
  PoolFixture f(16, 4, 9);
  // A fake record listing honest node 0, whose true record does not list it.
  const RecordIdx fake = f.pool->addFake(0xF00D, {f.ids->publicId(0)});
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);  // node 0's record integrated (complete adjacency)
  EXPECT_EQ(view.integrate(fake, 1), IntegrationVerdict::MutualMismatch);
}

TEST(LocalView, ReverseMutualMismatch) {
  PoolFixture f(16, 4, 10);
  // Fake leaf claims an edge to a *fake* hub; the hub's record (integrated
  // later) omits the leaf.
  const RecordIdx leaf = f.pool->addFake(0xAAA, {0xBBB});
  const RecordIdx hub = f.pool->addFake(0xBBB, {0xCCC});
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  ASSERT_EQ(view.integrate(leaf, 1), IntegrationVerdict::Ok);
  EXPECT_EQ(view.integrate(hub, 2), IntegrationVerdict::MutualMismatch);
}

TEST(LocalView, ConsistentFakeChainAccepted) {
  PoolFixture f(16, 4, 11);
  const RecordIdx a = f.pool->addFake(0x111, {0x222});
  const RecordIdx b = f.pool->addFake(0x222, {0x111, 0x333});
  LocalView view(f.pool.get(), 4);
  view.installSelf(0);
  EXPECT_EQ(view.integrate(a, 1), IntegrationVerdict::Ok);
  EXPECT_EQ(view.integrate(b, 2), IntegrationVerdict::Ok);
  EXPECT_EQ(view.boundarySize(),
            static_cast<std::size_t>(f.g.degree(0)) + 1);  // 0x333 referenced
}

TEST(LocalView, ViewGraphStructure) {
  // Triangle 0-1-2 plus pendant 3 on node 2.
  const Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  Rng rng(12);
  Rng idRng = rng.fork(1);
  IdSpace ids(4, idRng);
  RecordPool pool(g, ids);
  LocalView view(&pool, 3);
  view.installSelf(0);
  ASSERT_EQ(view.integrate(1, 1), IntegrationVerdict::Ok);
  ASSERT_EQ(view.integrate(2, 1), IntegrationVerdict::Ok);
  const Graph vg = view.buildViewGraph();
  // Vertices: 0,1,2 integrated + node 3 as boundary.
  EXPECT_EQ(vg.numNodes(), 4u);
  EXPECT_EQ(vg.numEdges(), 4u);  // triangle + 2-3
}

// --- Expansion checks. ---

TEST(Checks, ExactViewExpansionDetectsExhaustion) {
  const Graph g = complete(6);
  Rng rng(13);
  Rng idRng = rng.fork(1);
  IdSpace ids(6, idRng);
  RecordPool pool(g, ids);
  LocalView view(&pool, 5);
  view.installSelf(0);
  // Partial view (4 of 6 nodes integrated): every subset still has outside
  // neighbours, including boundary vertices, so the minimum stays positive.
  for (NodeId v = 1; v < 4; ++v) ASSERT_EQ(view.integrate(v, 1), IntegrationVerdict::Ok);
  EXPECT_GT(exactViewSubsetExpansion(view), 0.4);
  // Full view: S = everything has Out(S) = 0 — the exhaustion signal the
  // algorithm decides on (Lemma 5's endgame).
  for (NodeId v = 4; v < 6; ++v) ASSERT_EQ(view.integrate(v, 2), IntegrationVerdict::Ok);
  EXPECT_DOUBLE_EQ(exactViewSubsetExpansion(view), 0.0);
}

TEST(Checks, MonitorHealthyMidFlood) {
  PoolFixture f(256, 8, 14);
  LocalView view(f.pool.get(), 8);
  view.installSelf(0);
  const auto dist = bfsDistances(f.g, 0);
  LocalCheckParams params;
  ExpansionMonitor monitor(params, 99);
  // Integrate layer by layer; mid-flood rounds must stay healthy.
  for (Round r = 1; r <= 2; ++r) {
    for (NodeId v = 0; v < f.g.numNodes(); ++v) {
      if (dist[v] == r) {
        ASSERT_EQ(view.integrate(v, r), IntegrationVerdict::Ok);
      }
    }
    EXPECT_EQ(monitor.inspect(view, r), ExpansionVerdict::Healthy) << "round " << r;
  }
}

TEST(Checks, MonitorFiresOnExhaustion) {
  PoolFixture f(128, 8, 15);
  LocalView view(f.pool.get(), 8);
  view.installSelf(0);
  const auto dist = bfsDistances(f.g, 0);
  const std::uint32_t ecc = eccentricity(f.g, 0);
  LocalCheckParams params;
  ExpansionMonitor monitor(params, 99);
  ExpansionVerdict last = ExpansionVerdict::Healthy;
  for (Round r = 1; r <= ecc + 1; ++r) {
    for (NodeId v = 0; v < f.g.numNodes(); ++v) {
      if (dist[v] == r) {
        ASSERT_EQ(view.integrate(v, r), IntegrationVerdict::Ok);
      }
    }
    last = monitor.inspect(view, r);
    if (last != ExpansionVerdict::Healthy) break;
  }
  EXPECT_EQ(last, ExpansionVerdict::BallGrowthViolation);
}

// --- Protocol-level tests. ---

struct LocalRun {
  LocalOutcome out;
  Graph g;
  ByzantineSet byz;
};

LocalRun runScenario(NodeId n, std::uint64_t seed, std::unique_ptr<LocalAdversary> adv,
                     Placement placement, std::size_t count, NodeId victim = 0,
                     std::uint32_t moatRadius = 1) {
  Rng rng(seed);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = placement;
  spec.count = count;
  spec.victim = victim;
  spec.moatRadius = moatRadius;
  Rng prng = rng.fork(3);
  auto byz = placeByzantine(g, spec, prng);
  LocalParams params;
  Rng runRng = rng.fork(5);
  LocalOutcome out = runLocalCounting(g, byz, *adv, params, runRng, victim);
  return {std::move(out), std::move(g), std::move(byz)};
}

TEST(LocalProtocol, BenignDecidesAtDiameterScale) {
  const NodeId n = 512;
  auto run = runScenario(n, 20, makeHonestLocalAdversary(), Placement::None, 0);
  const std::uint32_t diam = exactDiameter(run.g);
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_TRUE(run.out.result.decisions[u].decided);
    EXPECT_GE(run.out.result.decisions[u].estimate, diam - 2.0);
    EXPECT_LE(run.out.result.decisions[u].estimate, diam + 1.0);
  }
  EXPECT_FALSE(run.out.result.hitRoundCap);
}

TEST(LocalProtocol, BenignDecisionsAreBallGrowth) {
  auto run = runScenario(256, 21, makeHonestLocalAdversary(), Placement::None, 0);
  EXPECT_GT(run.out.stats.ballGrowthDecisions, 250u);
  EXPECT_EQ(run.out.stats.inconsistencyDecisions, 0u);
  EXPECT_EQ(run.out.stats.sparseCutDecisions, 0u);
}

TEST(LocalProtocol, Deterministic) {
  auto a = runScenario(128, 22, makeHonestLocalAdversary(), Placement::None, 0);
  auto b = runScenario(128, 22, makeHonestLocalAdversary(), Placement::None, 0);
  for (NodeId u = 0; u < 128; ++u) {
    EXPECT_EQ(a.out.result.decisions[u].estimate, b.out.result.decisions[u].estimate);
  }
}

TEST(LocalProtocol, ByzantineActingHonestlyHarmless) {
  auto run = runScenario(256, 23, makeHonestLocalAdversary(), Placement::Random, 16);
  for (NodeId u = 0; u < 256; ++u) {
    if (run.byz.contains(u)) continue;
    EXPECT_TRUE(run.out.result.decisions[u].decided);
  }
  EXPECT_EQ(run.out.stats.inconsistencyDecisions, 0u);
}

TEST(LocalProtocol, SilentAttackYieldsDistanceEstimates) {
  // The mute cascade: node u decides at dist(u, Byz) or dist+1.
  auto run = runScenario(512, 24, makeSilentLocalAdversary(), Placement::Random, 22);
  for (NodeId u = 0; u < 512; ++u) {
    if (run.byz.contains(u)) continue;
    ASSERT_TRUE(run.out.result.decisions[u].decided);
    const double est = run.out.result.decisions[u].estimate;
    const double dist = run.out.stats.distToByz[u];
    EXPECT_GE(est, dist) << "node " << u;
    EXPECT_LE(est, dist + 2) << "node " << u;
  }
  EXPECT_GT(run.out.stats.muteDecisions, 400u);
}

TEST(LocalProtocol, ConflictAttackDetectedEverywhere) {
  auto run = runScenario(512, 25, makeConflictLocalAdversary(), Placement::Random, 22);
  const std::uint32_t diam = exactDiameter(run.g);
  for (NodeId u = 0; u < 512; ++u) {
    if (run.byz.contains(u)) continue;
    ASSERT_TRUE(run.out.result.decisions[u].decided);
    EXPECT_LE(run.out.result.decisions[u].estimate, diam + 1.0);
  }
  EXPECT_GT(run.out.stats.inconsistencyDecisions, 0u);
}

TEST(LocalProtocol, DegreeBombDetected) {
  auto run = runScenario(256, 26, makeDegreeBombLocalAdversary(), Placement::Random, 16);
  EXPECT_GT(run.out.stats.inconsistencyDecisions, 0u);
  for (NodeId u = 0; u < 256; ++u) {
    if (!run.byz.contains(u)) {
      EXPECT_TRUE(run.out.result.decisions[u].decided);
    }
  }
}

TEST(LocalProtocol, FakeWorldStringsAlongTheMoatedVictim) {
  // Remark 1: a victim surrounded by Byzantine nodes has its termination
  // time dictated by the adversary.
  const NodeId victim = 3;
  auto benign = runScenario(512, 27, makeHonestLocalAdversary(), Placement::None, 0);
  auto run = runScenario(512, 27, makeFakeWorldLocalAdversary(), Placement::Surround, 60, victim);
  ASSERT_TRUE(run.out.result.decisions[victim].decided);
  // The victim's estimate is inflated well past the benign diameter estimate.
  EXPECT_GT(run.out.result.decisions[victim].estimate,
            benign.out.result.decisions[victim].estimate + 3.0);
}

TEST(LocalProtocol, TheoremOneWindowForGoodNodes) {
  // Nodes far from Byzantine nodes (the Good set) decide within
  // [dist-to-Byz, diam+1] under any of the attacks.
  const NodeId n = 512;
  for (auto makeAdv : {&makeSilentLocalAdversary}) {
    auto run = runScenario(n, 28, (*makeAdv)(1), Placement::Random, 22);
    const std::uint32_t diam = exactDiameter(run.g);
    for (NodeId u = 0; u < n; ++u) {
      if (run.byz.contains(u)) continue;
      const double est = run.out.result.decisions[u].estimate;
      EXPECT_GE(est, run.out.stats.distToByz[u]);
      EXPECT_LE(est, diam + 1.0);
    }
  }
}

// Property sweep: benign estimates track the diameter across sizes (the
// Theorem 1 O(log n) time bound).
class LocalBenignSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(LocalBenignSweep, EstimateTracksDiameter) {
  const NodeId n = GetParam();
  auto run = runScenario(n, 300 + n, makeHonestLocalAdversary(), Placement::None, 0);
  const std::uint32_t diam = exactDiameter(run.g);
  for (NodeId u = 0; u < n; u += 37) {
    ASSERT_TRUE(run.out.result.decisions[u].decided);
    EXPECT_GE(run.out.result.decisions[u].estimate, diam - 2.0);
    EXPECT_LE(run.out.result.decisions[u].estimate, diam + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LocalBenignSweep, ::testing::Values<NodeId>(64, 128, 256, 512));

}  // namespace
}  // namespace bzc
