// Tests for the §1.2 baseline estimators: accurate without Byzantine nodes,
// broken by a single one — the paper's motivation for Byzantine counting.
#include <gtest/gtest.h>

#include <cmath>

#include "counting/baselines/geometric.hpp"
#include "counting/baselines/spanning_tree.hpp"
#include "counting/baselines/support_estimation.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

Graph testGraph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return hnd(n, 8, rng);
}

TEST(Geometric, BenignEstimatesLogN) {
  const NodeId n = 2048;
  const Graph g = testGraph(n, 1);
  const ByzantineSet none(n, {});
  Rng rng(2);
  const auto result = runGeometricMax(g, none, GeometricAttack::None, {}, rng);
  // All honest nodes converge on the same global maximum.
  const double est = result.decisions[0].estimate;
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_TRUE(result.decisions[u].decided);
    EXPECT_DOUBLE_EQ(result.decisions[u].estimate, est);
  }
  // X̄ = log2(n) ± slack whp; in ln units the window is generous.
  EXPECT_GT(est, 0.5 * logSize(n));
  EXPECT_LT(est, 3.0 * logSize(n));
  // Quiesces in about diameter rounds, far below the cap.
  EXPECT_LT(result.totalRounds, 20u);
  EXPECT_FALSE(result.hitRoundCap);
}

TEST(Geometric, SingleInflatorDestroysEstimate) {
  const NodeId n = 512;
  const Graph g = testGraph(n, 3);
  const ByzantineSet byz(n, {7});  // exactly one Byzantine node
  Rng rng(4);
  GeometricParams params;
  const auto result = runGeometricMax(g, byz, GeometricAttack::Inflate, params, rng);
  const double forged = params.inflatedValue * std::log(2.0);
  std::size_t poisoned = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u) || !result.decisions[u].decided) continue;
    if (result.decisions[u].estimate >= forged) ++poisoned;
  }
  // Flooding spreads the forged maximum to every honest node.
  EXPECT_EQ(poisoned, n - 1);
}

TEST(Geometric, SuppressionOnPathCutsFlood) {
  // On a path, a suppressing Byzantine node in the middle partitions the
  // max-flood; on an expander suppression is harmless — both shown here.
  const NodeId n = 101;
  const Graph g = path(n);
  const ByzantineSet byz(n, {50});
  Rng rng(5);
  const auto result = runGeometricMax(g, byz, GeometricAttack::Suppress, {}, rng);
  // The two sides can disagree about the maximum (unless both maxima landed
  // on the same side AND equal values — essentially impossible for n=101;
  // we assert sides only agree if their estimates match by construction).
  const double left = result.decisions[0].estimate;
  const double right = result.decisions[100].estimate;
  // At least the protocol ran to quiescence and everyone decided.
  EXPECT_TRUE(result.decisions[0].decided);
  EXPECT_TRUE(result.decisions[100].decided);
  // With seed 5 the two maxima differ; keep this assertion seed-stable.
  EXPECT_NE(left, right);
}

TEST(Geometric, ByzantineActingHonestlyIsHarmless) {
  const NodeId n = 256;
  const Graph g = testGraph(n, 6);
  const ByzantineSet byz(n, {1, 2, 3});
  Rng rng(7);
  const auto result = runGeometricMax(g, byz, GeometricAttack::None, {}, rng);
  double est = -1;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    if (est < 0) est = result.decisions[u].estimate;
    EXPECT_DOUBLE_EQ(result.decisions[u].estimate, est);
  }
  EXPECT_LT(est, 4.0 * logSize(n));
}

TEST(Support, BenignAccuracy) {
  const NodeId n = 1024;
  const Graph g = testGraph(n, 8);
  const ByzantineSet none(n, {});
  SupportParams params;
  params.coordinates = 128;
  Rng rng(9);
  const auto result = runSupportEstimation(g, none, SupportAttack::None, params, rng);
  for (NodeId u = 0; u < n; u += 97) {
    ASSERT_TRUE(result.decisions[u].decided);
    // ln(n̂) within ±25% of ln n at k=128.
    EXPECT_NEAR(result.decisions[u].estimate, logSize(n), 0.25 * logSize(n));
  }
}

TEST(Support, AllNodesAgreeAfterFlood) {
  const NodeId n = 256;
  const Graph g = testGraph(n, 10);
  const ByzantineSet none(n, {});
  Rng rng(11);
  const auto result = runSupportEstimation(g, none, SupportAttack::None, {}, rng);
  const double est = result.decisions[0].estimate;
  for (NodeId u = 1; u < n; ++u) EXPECT_DOUBLE_EQ(result.decisions[u].estimate, est);
}

TEST(Support, SingleZeroInjectorExplodesEstimate) {
  const NodeId n = 512;
  const Graph g = testGraph(n, 12);
  const ByzantineSet byz(n, {99});
  SupportParams params;
  Rng rng(13);
  const auto result = runSupportEstimation(g, byz, SupportAttack::ZeroInject, params, rng);
  for (NodeId u = 0; u < n; u += 51) {
    if (byz.contains(u)) continue;
    // k/(k*1e-9) — ln of it dwarfs ln n.
    EXPECT_GT(result.decisions[u].estimate, 3.0 * logSize(n));
  }
}

TEST(SpanningTree, ExactInBenignCase) {
  const NodeId n = 777;
  const Graph g = testGraph(n, 14);
  const ByzantineSet none(n, {});
  const auto result = runSpanningTreeCount(g, none, TreeAttack::None, {});
  for (NodeId u = 0; u < n; u += 111) {
    ASSERT_TRUE(result.decisions[u].decided);
    EXPECT_DOUBLE_EQ(result.decisions[u].estimate, std::log(static_cast<double>(n)));
  }
  // 2*depth+1 rounds.
  EXPECT_LE(result.totalRounds, 2 * exactDiameter(g) + 1);
}

TEST(SpanningTree, InflationPoisonsRoot) {
  const NodeId n = 256;
  const Graph g = testGraph(n, 15);
  const ByzantineSet byz(n, {200});
  TreeParams params;
  const auto result = runSpanningTreeCount(g, byz, TreeAttack::Inflate, params);
  EXPECT_GT(result.decisions[0].estimate,
            std::log(static_cast<double>(params.inflationBoost)) * 0.9);
}

TEST(SpanningTree, UndercountHidesSubtree) {
  const NodeId n = 64;
  const Graph g = path(n);  // deep tree: node 32's subtree is half the path
  const ByzantineSet byz(n, {32});
  const auto result = runSpanningTreeCount(g, byz, TreeAttack::Undercount, {});
  EXPECT_LT(result.decisions[0].estimate, std::log(static_cast<double>(n)));
}

TEST(SpanningTree, MuteDropsSubtree) {
  const NodeId n = 64;
  const Graph g = path(n);
  const ByzantineSet byz(n, {10});
  const auto result = runSpanningTreeCount(g, byz, TreeAttack::Mute, {});
  // Everything past node 10 disappears from the count: 10 nodes remain.
  EXPECT_NEAR(result.decisions[0].estimate, std::log(10.0), 1e-9);
}

TEST(SpanningTree, ByzantineRootRejected) {
  const NodeId n = 16;
  const Graph g = ring(n);
  const ByzantineSet byz(n, {0});
  EXPECT_THROW((void)runSpanningTreeCount(g, byz, TreeAttack::None, {}), std::invalid_argument);
}

// Property sweep: benign geometric estimates stay within a fixed constant
// factor window of ln n across sizes — and the same seed reproduces exactly.
class GeometricSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(GeometricSweep, WindowAndDeterminism) {
  const NodeId n = GetParam();
  const Graph g = testGraph(n, 16);
  const ByzantineSet none(n, {});
  Rng r1(17);
  Rng r2(17);
  const auto a = runGeometricMax(g, none, GeometricAttack::None, {}, r1);
  const auto b = runGeometricMax(g, none, GeometricAttack::None, {}, r2);
  EXPECT_DOUBLE_EQ(a.decisions[0].estimate, b.decisions[0].estimate);
  EXPECT_GT(a.decisions[0].estimate, 0.4 * logSize(n));
  EXPECT_LT(a.decisions[0].estimate, 4.0 * logSize(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometricSweep, ::testing::Values<NodeId>(128, 256, 512, 1024, 2048));

}  // namespace
}  // namespace bzc
