// Tests for Algorithm 2: parameters, the path arena, and the full protocol
// under benign and adversarial conditions (Theorem 2, Corollary 1, and the
// blacklisting mechanism of §1.3).
#include <gtest/gtest.h>

#include <cmath>

#include "counting/beacon/params.hpp"
#include "counting/beacon/path.hpp"
#include "counting/beacon/protocol.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(BeaconParams, EpsilonMatchesEquationThree) {
  BeaconParams p;
  p.gamma = 0.55;
  p.delta = 0.1;
  // eq (3): epsilon = 1 - (1-delta)*gamma / ln d.
  const double expected = 1.0 - 0.9 * 0.55 / std::log(8.0);
  EXPECT_NEAR(p.epsilon(8), expected, 1e-12);
}

TEST(BeaconParams, SuffixGrowsWithPhase) {
  BeaconParams p;
  const std::uint32_t s5 = p.blacklistSuffix(5, 8);
  const std::uint32_t s20 = p.blacklistSuffix(20, 8);
  EXPECT_LE(s5, s20);
  // (1-eps) ~ 0.238 for the defaults: phase 20 suffix = floor(4.76) = 4.
  EXPECT_EQ(s20, 4u);
}

TEST(BeaconParams, IterationsMatchLineThree) {
  BeaconParams p;
  p.gamma = 0.55;
  for (std::uint32_t i : {2u, 5u, 9u}) {
    const auto expected = static_cast<std::uint32_t>(std::exp(0.45 * i)) + 1;
    EXPECT_EQ(p.iterationsForPhase(i), expected);
  }
}

TEST(BeaconParams, ActivationProbabilityShape) {
  BeaconParams p;
  p.c1 = 4.0;
  // c1*i/d^i, clamped to 1.
  EXPECT_DOUBLE_EQ(p.activationProbability(1, 2), 1.0);  // 4*1/2 = 2 -> clamp
  EXPECT_NEAR(p.activationProbability(5, 8), 4.0 * 5 / std::pow(8.0, 5), 1e-15);
  // Decreasing in the phase once past the clamp.
  EXPECT_GT(p.activationProbability(3, 8), p.activationProbability(4, 8));
}

TEST(BeaconParams, ValidationCatchesBadConstants) {
  BeaconParams p;
  p.gamma = 0.3;  // violates eq (2) with delta = 0.1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.gamma = 0.55;
  p.delta = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.delta = 0.1;
  p.c1 = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BeaconParams, RoundsPerIteration) {
  EXPECT_EQ(BeaconParams::roundsPerIteration(4), 13u);  // 2i+5
}

TEST(BeaconPathArena, AppendAndMaterialize) {
  BeaconPathArena arena;
  const BeaconPathRef a = arena.append(kNoBeaconPath, 10);
  const BeaconPathRef b = arena.append(a, 20);
  const BeaconPathRef c = arena.append(b, 30);
  EXPECT_EQ(arena.length(c), 3u);
  EXPECT_EQ(arena.last(c), 30u);
  const auto ids = arena.materialize(c);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 10u);
  EXPECT_EQ(ids[1], 20u);
  EXPECT_EQ(ids[2], 30u);
}

TEST(BeaconPathArena, SharedPrefixes) {
  BeaconPathArena arena;
  const BeaconPathRef a = arena.append(kNoBeaconPath, 1);
  const BeaconPathRef b1 = arena.append(a, 2);
  const BeaconPathRef b2 = arena.append(a, 3);
  EXPECT_EQ(arena.materialize(b1)[0], 1u);
  EXPECT_EQ(arena.materialize(b2)[0], 1u);
  EXPECT_EQ(arena.size(), 3u);  // prefix stored once
}

TEST(BeaconPathArena, WalkPrefixSkipsSuffix) {
  BeaconPathArena arena;
  BeaconPathRef p = kNoBeaconPath;
  for (PublicId id = 1; id <= 5; ++id) p = arena.append(p, id);
  std::vector<PublicId> visited;
  arena.walkPrefix(p, 2, [&](PublicId id) {
    visited.push_back(id);
    return true;
  });
  // Last 2 (5, 4) spared; prefix visited suffix-first: 3, 2, 1.
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], 3u);
  EXPECT_EQ(visited[2], 1u);
}

TEST(BeaconPathArena, WalkPrefixEarlyStop) {
  BeaconPathArena arena;
  BeaconPathRef p = kNoBeaconPath;
  for (PublicId id = 1; id <= 4; ++id) p = arena.append(p, id);
  int count = 0;
  const bool completed = arena.walkPrefix(p, 0, [&](PublicId) { return ++count < 2; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 2);
}

TEST(BeaconPathArena, SuffixCoveringWholePath) {
  BeaconPathArena arena;
  BeaconPathRef p = arena.append(kNoBeaconPath, 9);
  bool visitedAny = false;
  EXPECT_TRUE(arena.walkPrefix(p, 5, [&](PublicId) {
    visitedAny = true;
    return true;
  }));
  EXPECT_FALSE(visitedAny);
}

// ---------------------------------------------------------------------------
// Protocol-level tests.

struct BenignRun {
  BeaconOutcome out;
  NodeId n;
};

BenignRun runBenign(NodeId n, std::uint64_t seed, BeaconParams params = {}) {
  Rng rng(seed);
  Graph g = hnd(n, 8, rng);
  const ByzantineSet none(n, {});
  Rng runRng = rng.fork(5);
  BenignRun r{runBeaconCounting(g, none, BeaconAttackProfile::none(), params, {}, runRng), n};
  return r;
}

TEST(BeaconProtocol, CorollaryOneBenignTermination) {
  const auto [out, n] = runBenign(1024, 21);
  // All nodes decide, the network quiesces, and the total round count is
  // polylogarithmic (Corollary 1: O(log n) phases of O(log n) rounds).
  for (NodeId u = 0; u < n; ++u) EXPECT_TRUE(out.result.decisions[u].decided);
  EXPECT_TRUE(out.stats.quiesced);
  EXPECT_FALSE(out.result.hitRoundCap);
  const double logN = std::log(static_cast<double>(n));
  EXPECT_LT(out.result.totalRounds, 10 * logN * logN);
}

TEST(BeaconProtocol, BenignEstimatesConcentrate) {
  const auto [out, n] = runBenign(1024, 22);
  double lo = 1e9;
  double hi = 0;
  for (NodeId u = 0; u < n; ++u) {
    lo = std::min(lo, out.result.decisions[u].estimate);
    hi = std::max(hi, out.result.decisions[u].estimate);
  }
  // Remark 2: estimates may differ per node but only within a constant band.
  EXPECT_LE(hi - lo, 2.0);
  // The decided phase tracks log_d(n) up to an additive constant.
  const double logdN = std::log(static_cast<double>(n)) / std::log(8.0);
  EXPECT_GE(hi, logdN - 1.0);
  EXPECT_LE(hi, logdN + 4.0);
}

TEST(BeaconProtocol, DeterministicGivenSeed) {
  const auto a = runBenign(256, 77);
  const auto b = runBenign(256, 77);
  for (NodeId u = 0; u < a.n; ++u) {
    EXPECT_EQ(a.out.result.decisions[u].estimate, b.out.result.decisions[u].estimate);
    EXPECT_EQ(a.out.result.decisions[u].round, b.out.result.decisions[u].round);
  }
  EXPECT_EQ(a.out.result.totalRounds, b.out.result.totalRounds);
}

TEST(BeaconProtocol, DifferentSeedsStillConcentrate) {
  const auto a = runBenign(512, 1);
  const auto b = runBenign(512, 2);
  EXPECT_NEAR(a.out.result.decisions[0].estimate, b.out.result.decisions[0].estimate, 2.0);
}

TEST(BeaconProtocol, BenignMessagesAreSmall) {
  const auto [out, n] = runBenign(512, 23);
  const ByzantineSet none(n, {});
  const auto honest = none.honestNodes();
  // A beacon carries O(i) = O(log n) IDs; with 64-bit IDs the budget below
  // equals a path of ~20 IDs — comfortably O(log n)·polylog bits.
  EXPECT_GT(out.result.meter.fractionWithin(honest, 64 * 21), 0.99);
}

BeaconOutcome runAttacked(NodeId n, std::uint64_t seed, const BeaconAttackProfile& attack,
                          BeaconParams params = {}, double gammaPlacement = 0.55) {
  Rng rng(seed);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, gammaPlacement);
  Rng prng = rng.fork(3);
  const auto byz = placeByzantine(g, spec, prng);
  Rng runRng = rng.fork(5);
  BeaconLimits limits;
  limits.maxPhase = static_cast<std::uint32_t>(std::ceil(std::log(static_cast<double>(n)))) + 3;
  return runBeaconCounting(g, byz, attack, params, limits, runRng);
}

TEST(BeaconProtocol, FlooderMostNodesDecideInWindow) {
  const NodeId n = 1024;
  auto out = runAttacked(n, 31, BeaconAttackProfile::flooder());
  const double logN = std::log(static_cast<double>(n));
  std::size_t decided = 0;
  std::size_t honest = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (out.stats.decidedPhase[u] == 0 && !out.result.decisions[u].decided) {
      // Byzantine entries stay undecided; honest non-deciders counted below.
    }
  }
  Rng rng(31);
  Graph g = hnd(n, 8, rng);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = byzantineBudget(n, 0.55);
  Rng prng = rng.fork(3);
  const auto byz = placeByzantine(g, spec, prng);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    ++honest;
    if (!out.result.decisions[u].decided) continue;
    ++decided;
    const double ratio = out.result.decisions[u].estimate / logN;
    EXPECT_GT(ratio, 0.3) << "node " << u;
    EXPECT_LT(ratio, 1.8) << "node " << u;
  }
  // Theorem 2: at least (1 - beta) n honest nodes decide. The permanently
  // undecided are the Byzantine-adjacent ones (≈ B*d of them).
  EXPECT_GT(static_cast<double>(decided) / static_cast<double>(honest), 0.8);
}

TEST(BeaconProtocol, FlooderRaisesEstimatesAboveBenign) {
  const NodeId n = 512;
  const auto benign = runBenign(n, 41);
  auto attacked = runAttacked(n, 41, BeaconAttackProfile::flooder());
  double benignMean = 0;
  double attackedMean = 0;
  std::size_t cb = 0;
  std::size_t ca = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (benign.out.result.decisions[u].decided) {
      benignMean += benign.out.result.decisions[u].estimate;
      ++cb;
    }
    if (attacked.result.decisions[u].decided) {
      attackedMean += attacked.result.decisions[u].estimate;
      ++ca;
    }
  }
  benignMean /= cb;
  attackedMean /= ca;
  // Forged beacons keep nodes going for extra phases (≈ until the per-phase
  // iteration count exceeds B(n), per Lemma 11).
  EXPECT_GT(attackedMean, benignMean + 0.5);
}

TEST(BeaconProtocol, BlacklistingIsWhatStopsTheFlooder) {
  // Ablation (§1.3): with blacklisting disabled, forged beacons are always
  // accepted and nobody decides before the phase cap.
  const NodeId n = 256;
  BeaconParams noBlacklist;
  noBlacklist.blacklistEnabled = false;
  auto out = runAttacked(n, 51, BeaconAttackProfile::flooder(), noBlacklist);
  std::size_t decided = 0;
  for (NodeId u = 0; u < n; ++u) decided += out.result.decisions[u].decided ? 1 : 0;
  BeaconParams withBlacklist;
  auto ok = runAttacked(n, 51, BeaconAttackProfile::flooder(), withBlacklist);
  std::size_t decidedOk = 0;
  for (NodeId u = 0; u < n; ++u) decidedOk += ok.result.decisions[u].decided ? 1 : 0;
  EXPECT_LT(decided, decidedOk / 4) << "blacklisting off should stall decisions";
}

TEST(BeaconProtocol, SuppressorCausesEarlyDecisions) {
  const NodeId n = 512;
  const auto benign = runBenign(n, 61);
  auto suppressed = runAttacked(n, 61, BeaconAttackProfile::suppressor());
  // Suppression removes beacons, so estimates can only shrink (earlier
  // decisions), never grow.
  double benignMax = 0;
  double suppressedMax = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (benign.out.result.decisions[u].decided) {
      benignMax = std::max(benignMax, benign.out.result.decisions[u].estimate);
    }
    if (suppressed.result.decisions[u].decided) {
      suppressedMax = std::max(suppressedMax, suppressed.result.decisions[u].estimate);
    }
  }
  EXPECT_LE(suppressedMax, benignMax + 1.0);
}

TEST(BeaconProtocol, ContinueSpamPreventsQuiescenceNotDecisions) {
  const NodeId n = 256;
  auto out = runAttacked(n, 71, BeaconAttackProfile::continueSpammer());
  EXPECT_FALSE(out.stats.quiesced);  // Remark 3: adversary controls termination
  std::size_t decided = 0;
  for (NodeId u = 0; u < n; ++u) decided += out.result.decisions[u].decided ? 1 : 0;
  EXPECT_GT(decided, n * 8 / 10);  // decisions themselves unharmed
}

TEST(BeaconProtocol, ContinueMessagesPreventEarlyExit) {
  // Ablation: with continue messages disabled, decided nodes exit instead of
  // re-entering, beacons stop reaching late deciders, and the undecided tail
  // decides earlier (smaller estimates) than with the full protocol.
  BeaconParams noContinue;
  noContinue.continueEnabled = false;
  const NodeId n = 512;
  Rng rng(81);
  Graph g = hnd(n, 8, rng);
  const ByzantineSet none(n, {});
  Rng r1 = rng.fork(1);
  const auto without = runBeaconCounting(g, none, BeaconAttackProfile::none(), noContinue, {}, r1);
  Rng r2 = rng.fork(1);
  const auto with = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, r2);
  double meanWithout = 0;
  double meanWith = 0;
  for (NodeId u = 0; u < n; ++u) {
    meanWithout += without.result.decisions[u].estimate;
    meanWith += with.result.decisions[u].estimate;
  }
  EXPECT_LE(meanWithout, meanWith);
}

TEST(BeaconProtocol, ChoicePoliciesBothSolveBenign) {
  for (BeaconChoicePolicy policy :
       {BeaconChoicePolicy::FirstSeen, BeaconChoicePolicy::PreferAcceptable}) {
    BeaconParams params;
    params.choice = policy;
    const NodeId n = 256;
    Rng rng(91);
    Graph g = hnd(n, 8, rng);
    const ByzantineSet none(n, {});
    Rng runRng = rng.fork(2);
    const auto out = runBeaconCounting(g, none, BeaconAttackProfile::none(), params, {}, runRng);
    for (NodeId u = 0; u < n; ++u) EXPECT_TRUE(out.result.decisions[u].decided);
  }
}

TEST(BeaconProtocol, RoundCapReported) {
  BeaconLimits limits;
  limits.maxTotalRounds = 50;  // absurdly small: must hit the cap
  const NodeId n = 256;
  Rng rng(101);
  Graph g = hnd(n, 8, rng);
  const ByzantineSet none(n, {});
  Rng runRng = rng.fork(2);
  const auto out = runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, limits, runRng);
  EXPECT_TRUE(out.result.hitRoundCap);
}

// Property sweep (Theorem 2 benign shape): across sizes, every node decides,
// the decided phase stays within a fixed constant-ratio window of ln n, and
// the run quiesces.
class BenignSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(BenignSweep, WindowHolds) {
  const NodeId n = GetParam();
  const auto [out, size] = runBenign(n, 200 + n);
  const double logN = std::log(static_cast<double>(n));
  for (NodeId u = 0; u < size; ++u) {
    ASSERT_TRUE(out.result.decisions[u].decided);
    const double ratio = out.result.decisions[u].estimate / logN;
    EXPECT_GE(ratio, 0.3) << "n=" << n << " node " << u;
    EXPECT_LE(ratio, 1.3) << "n=" << n << " node " << u;
  }
  EXPECT_TRUE(out.stats.quiesced);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BenignSweep, ::testing::Values<NodeId>(128, 256, 512, 1024, 2048));

}  // namespace
}  // namespace bzc
