// Tests for the runtime layer: SyncEngine round/window semantics, the thread
// pool, ExperimentRunner determinism, and the golden fingerprints pinning the
// SyncEngine migration to the pre-refactor protocol behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "counting/local/attacks.hpp"
#include "golden_scenarios.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/sync_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace bzc {
namespace {

// ---------------------------------------------------------------------------
// Golden migration regressions. The constants were captured from the seed
// implementations (hand-rolled round loops) immediately before the SyncEngine
// migration; the migrated protocols must reproduce them bit-for-bit.
// ---------------------------------------------------------------------------

TEST(GoldenMigration, BeaconMatchesPreRefactorDecisions) {
  EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                      BeaconAttackProfile::none(), 0),
            0x01ad738b6673bf86ULL);
  EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                      BeaconAttackProfile::flooder(), 10),
            0x29553b28fa4d5ddcULL);
  // FirstSeen resolves ties by inbox position, so this one pins the engine's
  // delivery-order contract, not just the protocol logic.
  EXPECT_EQ(
      golden::beaconFingerprint(BeaconChoicePolicy::FirstSeen, BeaconAttackProfile::flooder(), 10),
      0xf3b6aab96a9aed6cULL);
  EXPECT_EQ(golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                      BeaconAttackProfile::full(), 10),
            0xe7cb8414934dcdefULL);
}

TEST(GoldenMigration, LocalMatchesPreRefactorDecisions) {
  {
    auto adv = makeHonestLocalAdversary();
    EXPECT_EQ(golden::localFingerprint(*adv, Placement::Random), 0xbc818467520a5f14ULL);
  }
  {
    auto adv = makeConflictLocalAdversary();
    EXPECT_EQ(golden::localFingerprint(*adv, Placement::Random), 0xbd69b4b31ee42fceULL);
  }
  {
    auto adv = makeSilentLocalAdversary(1);
    EXPECT_EQ(golden::localFingerprint(*adv, Placement::Random), 0xa54443d8baa6aa5dULL);
  }
  {
    auto adv = makeFakeWorldLocalAdversary({});
    EXPECT_EQ(golden::localFingerprint(*adv, Placement::Surround), 0x6babc33f76dd3e65ULL);
  }
}

TEST(GoldenMigration, AgreementOnEngineIsPinned) {
  // Captured from the SyncEngine walk-token implementation at migration time
  // (see golden_scenarios.hpp for why these pin the engine, not the oracle).
  EXPECT_EQ(golden::agreementFingerprint(0, 1.0), 0xc04be2f8613993a8ULL);
  EXPECT_EQ(golden::agreementFingerprint(8, 1.0), 0x1ed581d04cfd8fdaULL);
  EXPECT_EQ(golden::agreementFingerprint(8, 2.0), 0xfeb5c22bfec003a3ULL);
}

TEST(GoldenMigration, PipelineOnEngineIsPinned) {
  EXPECT_EQ(golden::pipelineFingerprint(BeaconAttackProfile::none(), 0), 0xf702f76c8582c57bULL);
  EXPECT_EQ(golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 8),
            0x559fbf52906663baULL);
}

TEST(GoldenMigration, BaselinesMatchPreRefactorDecisions) {
  EXPECT_EQ(golden::geometricFingerprint(GeometricAttack::None), 0x927421feaa922dafULL);
  EXPECT_EQ(golden::geometricFingerprint(GeometricAttack::Inflate), 0x444da3032ea949b1ULL);
  EXPECT_EQ(golden::geometricFingerprint(GeometricAttack::Suppress), 0x74833fdbe117d7e1ULL);
  EXPECT_EQ(golden::supportFingerprint(SupportAttack::None), 0x8ae1332c4d96dcddULL);
  EXPECT_EQ(golden::supportFingerprint(SupportAttack::ZeroInject), 0x2e1a59de3c23bba2ULL);
  EXPECT_EQ(golden::supportFingerprint(SupportAttack::Suppress), 0x1eca799754ed6997ULL);
  EXPECT_EQ(golden::treeFingerprint(TreeAttack::None), 0xac3667db1751962fULL);
  EXPECT_EQ(golden::treeFingerprint(TreeAttack::Inflate), 0x2568f372c9e0136fULL);
  EXPECT_EQ(golden::treeFingerprint(TreeAttack::Mute), 0x571d62a92e69b3c7ULL);
}

// ---------------------------------------------------------------------------
// SyncEngine semantics.
// ---------------------------------------------------------------------------

using IntEngine = SyncEngine<int>;

TEST(SyncEngine, InboxPreservesQueueOrderAndRecvFiresInFirstDeliveryOrder) {
  // Star: center 0 with leaves 1..3.
  const Graph g = star(4);
  const ByzantineSet byz(4, {});
  IntEngine engine(g, byz);
  engine.broadcast(2, 20, 8);
  engine.broadcast(3, 30, 8);
  engine.broadcast(1, 10, 8);

  std::vector<NodeId> recvOrder;
  std::vector<int> centerInbox;
  auto res = engine.runWindow(1, [&](NodeId v, Round, std::span<const IntEngine::Delivery> box) {
    recvOrder.push_back(v);
    if (v == 0) {
      for (const auto& d : box) centerInbox.push_back(d.payload);
    }
  });
  EXPECT_EQ(res.status, WindowStatus::Completed);
  // Each leaf's only neighbour is the center, so exactly one node is touched,
  // and its inbox lists the senders in queue order, not index order.
  EXPECT_EQ(recvOrder, (std::vector<NodeId>{0}));
  EXPECT_EQ(centerInbox, (std::vector<int>{20, 30, 10}));
}

TEST(SyncEngine, QuiescentEmptyRoundIsCountedAndStops) {
  const Graph g = ring(4);
  const ByzantineSet byz(4, {});
  IntEngine engine(g, byz);
  const auto res = engine.runWindow(5, IntEngine::NoRecv{});
  EXPECT_EQ(res.status, WindowStatus::Quiesced);
  EXPECT_EQ(res.roundsRun, 1u);
  EXPECT_EQ(engine.round(), 1u);
}

TEST(SyncEngine, RunFullWindowKeepsGoingThroughIdleRounds) {
  const Graph g = ring(4);
  const ByzantineSet byz(4, {});
  IntEngine engine(g, byz);
  std::vector<Round> deliveries;
  auto emit = [&](Round w) {
    if (w == 3) engine.broadcast(0, 7, 8);  // traffic only in the last round
  };
  auto recv = [&](NodeId, Round w, std::span<const IntEngine::Delivery>) {
    deliveries.push_back(w);
  };
  const auto res = engine.runWindow(3, emit, recv, NoEnd{}, IdlePolicy::RunFullWindow);
  EXPECT_EQ(res.status, WindowStatus::Completed);
  EXPECT_EQ(res.roundsRun, 3u);
  EXPECT_EQ(deliveries, (std::vector<Round>{3, 3}));  // both ring neighbours of 0
}

TEST(SyncEngine, RoundCapStopsEndlessFlood) {
  const Graph g = ring(6);
  const ByzantineSet byz(6, {});
  IntEngine engine(g, byz, /*maxTotalRounds=*/4);
  engine.broadcast(0, 1, 8);
  auto echo = [&](NodeId v, Round, std::span<const IntEngine::Delivery>) {
    engine.broadcast(v, 1, 8);  // every receiver re-floods forever
  };
  const auto res = engine.runWindow(0, echo);
  EXPECT_EQ(res.status, WindowStatus::Capped);
  EXPECT_EQ(engine.round(), 4u);
  EXPECT_TRUE(engine.wouldExceed(1));
}

TEST(SyncEngine, EndHookStopsTheWindow) {
  const Graph g = ring(4);
  const ByzantineSet byz(4, {});
  IntEngine engine(g, byz);
  engine.broadcast(0, 1, 8);
  auto echo = [&](NodeId v, Round, std::span<const IntEngine::Delivery>) {
    engine.broadcast(v, 1, 8);
  };
  auto stopAfterTwo = [&](Round) { return engine.round() < 2; };
  const auto res = engine.runWindow(0, NoEmit{}, echo, stopAfterTwo);
  EXPECT_EQ(res.status, WindowStatus::Stopped);
  EXPECT_EQ(engine.round(), 2u);
}

TEST(SyncEngine, MetersHonestSendersOnly) {
  const Graph g = ring(4);  // every node has degree 2
  const ByzantineSet byz(4, {1});
  IntEngine engine(g, byz);
  engine.broadcast(0, 5, 32);  // honest broadcast: 2 copies of 32 bits
  engine.broadcast(1, 6, 32);  // Byzantine: delivered but never metered
  engine.unicast(2, 3, 7, 16);  // honest unicast: one copy
  std::size_t delivered = 0;
  auto res = engine.runWindow(1, [&](NodeId, Round, std::span<const IntEngine::Delivery> box) {
    delivered += box.size();
  });
  EXPECT_EQ(res.status, WindowStatus::Completed);
  EXPECT_EQ(delivered, 5u);  // 2 + 2 broadcast copies + 1 unicast
  MessageMeter meter = engine.releaseMeter();
  EXPECT_EQ(meter.messagesSent(0), 2u);
  EXPECT_EQ(meter.bitsSent(0), 64u);
  EXPECT_EQ(meter.maxMessageBits(0), 32u);
  EXPECT_EQ(meter.messagesSent(1), 0u);  // Byzantine traffic invisible to the meter
  EXPECT_EQ(meter.messagesSent(2), 1u);
  EXPECT_EQ(meter.bitsSent(2), 16u);
  EXPECT_EQ(meter.totalMessages(), 3u);
}

TEST(SyncEngine, SkipRoundsChargesWallClockWithoutTraffic) {
  const Graph g = ring(4);
  const ByzantineSet byz(4, {});
  IntEngine engine(g, byz, 10);
  engine.skipRounds(7);
  EXPECT_EQ(engine.round(), 7u);
  EXPECT_FALSE(engine.wouldExceed(3));
  EXPECT_TRUE(engine.wouldExceed(4));
}

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int rep = 0; rep < 5; ++rep) {
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(16,
                                [&](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ran{0};
  pool.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

// ---------------------------------------------------------------------------
// ExperimentRunner determinism: the acceptance criterion. Same ScenarioSpec +
// master seed must give identical per-trial CountingResults (witnessed by
// fingerprints) at 1, 2 and 8 threads, with >= 32 trials in parallel.
// ---------------------------------------------------------------------------

ScenarioSpec cheapScenario() {
  ScenarioSpec spec;
  spec.name = "geometric-inflate-hnd";
  spec.graph = {GraphKind::Hnd, 256, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.byzGamma = 0.55;
  spec.protocol = ProtocolKind::GeometricMax;
  spec.geometricAttack = GeometricAttack::Inflate;
  spec.trials = 48;
  spec.masterSeed = 0xfeed;
  return spec;
}

TEST(ExperimentRunner, ThreadCountInvariantAndSeedDeterministic) {
  const ScenarioSpec spec = cheapScenario();
  ExperimentSummary byThreads[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    ExperimentRunner runner(counts[t]);
    EXPECT_EQ(runner.threadCount(), counts[t]);
    byThreads[t] = runner.run(spec);
  }
  ASSERT_EQ(byThreads[0].perTrial.size(), 48u);
  for (int t = 1; t < 3; ++t) {
    EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint);
    ASSERT_EQ(byThreads[t].perTrial.size(), 48u);
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_EQ(byThreads[0].perTrial[i].resultFingerprint,
                byThreads[t].perTrial[i].resultFingerprint)
          << "trial " << i << " diverged at " << counts[t] << " threads";
    }
    EXPECT_DOUBLE_EQ(byThreads[0].fracDecided.mean, byThreads[t].fracDecided.mean);
    EXPECT_DOUBLE_EQ(byThreads[0].totalRounds.p90, byThreads[t].totalRounds.p90);
  }
  // Re-running with the same master seed reproduces; a different seed must not.
  ExperimentRunner runner(8);
  EXPECT_EQ(runner.run(spec).combinedFingerprint, byThreads[0].combinedFingerprint);
  ScenarioSpec reseeded = spec;
  reseeded.masterSeed = 0xbeef;
  EXPECT_NE(runner.run(reseeded).combinedFingerprint, byThreads[0].combinedFingerprint);
}

TEST(ExperimentRunner, BeaconScenarioParallelTrialsAggregates) {
  ScenarioSpec spec;
  spec.name = "beacon-flooder";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.byzGamma = 0.55;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.beaconLimits.maxPhase = 8;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.trials = 32;
  spec.masterSeed = 7;

  ExperimentRunner runner(8);
  const ExperimentSummary summary = runner.run(spec);
  ASSERT_EQ(summary.perTrial.size(), 32u);
  EXPECT_GT(summary.fracDecided.mean, 0.5);  // flooders hit small n hard; T2 covers quality
  EXPECT_GT(summary.meanRatio.mean, 0.0);
  EXPECT_GE(summary.totalRounds.min, 1.0);
  EXPECT_LE(summary.fracDecided.min, summary.fracDecided.p50);
  EXPECT_LE(summary.fracDecided.p50, summary.fracDecided.max);

  ExperimentRunner serial(1);
  EXPECT_EQ(serial.run(spec).combinedFingerprint, summary.combinedFingerprint);
}

TEST(ExperimentRunner, PipelineScenarioThreadCountInvariant) {
  // Acceptance criterion of the agreement migration: the counting->agreement
  // pipeline, run declaratively, must produce identical per-trial results at
  // any thread count (every stream, walk-token trajectories included, is a
  // pure function of (masterSeed, trial index)).
  ScenarioSpec spec;
  spec.name = "pipeline-flooder";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 24;
  spec.masterSeed = 0x9a;

  ExperimentSummary byThreads[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    ExperimentRunner runner(counts[t]);
    byThreads[t] = runner.run(spec);
  }
  ASSERT_EQ(byThreads[0].perTrial.size(), 24u);
  for (int t = 1; t < 3; ++t) {
    EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint)
        << "pipeline diverged at " << counts[t] << " threads";
  }
  // The agreement-stage metrics come through the declarative extras.
  ASSERT_EQ(byThreads[0].extras.size(), static_cast<std::size_t>(kAgreementExtraSlots));
  EXPECT_GT(byThreads[0].extras[kAgreementFracAgreeing].mean, 0.5);
  EXPECT_LE(byThreads[0].extras[kAgreementFracAgreeing].max, 1.0);
  EXPECT_GT(byThreads[0].extras[kAgreementRounds].min, 0.0);
  EXPECT_GT(byThreads[0].totalMessages.min, 0.0);
}

TEST(ExperimentRunner, AgreementScenarioThreadCountInvariant) {
  ScenarioSpec spec;
  spec.name = "agreement-oracle";
  spec.graph = {GraphKind::Hnd, 192, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 5;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.trials = 24;
  spec.masterSeed = 0x55;

  ExperimentRunner parallel(8);
  ExperimentRunner serial(1);
  const ExperimentSummary a = parallel.run(spec);
  const ExperimentSummary b = serial.run(spec);
  EXPECT_EQ(a.combinedFingerprint, b.combinedFingerprint);
  ASSERT_EQ(a.extras.size(), static_cast<std::size_t>(kAgreementExtraSlots));
  // 5 Byzantine nodes at n = 192 is over the sqrt(n)/polylog budget, so
  // convergence is partial; the invariance above is what this test pins.
  EXPECT_GT(a.extras[kAgreementFracAgreeing].mean, 0.5);
  EXPECT_GT(a.extras[kAgreementCompromised].mean, 0.0);
}

TEST(ExperimentRunner, MaterializeTrialIsAPureFunctionOfSpecAndIndex) {
  const ScenarioSpec spec = cheapScenario();
  for (std::uint32_t i : {0u, 1u, 17u}) {
    MaterializedTrial a = materializeTrial(spec, i);
    MaterializedTrial b = materializeTrial(spec, i);
    EXPECT_EQ(a.graph.edgeList(), b.graph.edgeList());
    EXPECT_EQ(a.byz.members(), b.byz.members());
    EXPECT_EQ(a.runRng.next(), b.runRng.next());
  }
  // Different trials see different placements/graph streams.
  MaterializedTrial t0 = materializeTrial(spec, 0);
  MaterializedTrial t1 = materializeTrial(spec, 1);
  EXPECT_NE(t0.byz.members(), t1.byz.members());
}

TEST(ExperimentRunner, CustomTrialsAggregateExtraMetrics) {
  ExperimentRunner runner(4);
  const ExperimentSummary summary =
      runner.runCustom("extras", 10, [](std::uint32_t index) {
        TrialOutcome t;
        t.quality.fracDecided = 1.0;
        t.totalRounds = index + 1;
        t.resultFingerprint = index;
        t.extra = {static_cast<double>(index), 2.0};
        return t;
      });
  ASSERT_EQ(summary.extras.size(), 2u);
  EXPECT_DOUBLE_EQ(summary.extras[0].mean, 4.5);
  EXPECT_DOUBLE_EQ(summary.extras[0].min, 0.0);
  EXPECT_DOUBLE_EQ(summary.extras[0].max, 9.0);
  EXPECT_DOUBLE_EQ(summary.extras[1].mean, 2.0);
  EXPECT_DOUBLE_EQ(summary.totalRounds.mean, 5.5);
}

TEST(Distribution, QuantilesOnKnownSample) {
  const Distribution d = Distribution::of({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  EXPECT_DOUBLE_EQ(d.p50, 3.0);
}

}  // namespace
}  // namespace bzc
