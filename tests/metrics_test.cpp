// Tests for the metrics layer (DESIGN.md §13). The contract under test:
// LogHistogram buckets are a pure function of (precision, data) with exact
// associative merges — any merge grouping yields identical buckets; the
// TrialMetrics deterministic projection (non-wall histograms + all series)
// is invariant across runner threads, engine shards and pipeline depth;
// deriving/exporting metrics never moves a golden fingerprint; and the
// seeded-bootstrap CIs on Distribution are thread-count invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "churn/schedule.hpp"
#include "counting/local/attacks.hpp"
#include "golden_scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "runtime/experiment.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram geometry: fixed boundaries, exact region, saturation.
// ---------------------------------------------------------------------------

TEST(LogHistogram, ExactBelowPrecisionRange) {
  constexpr unsigned kP = obs::LogHistogram::kDefaultPrecision;  // 6
  for (std::uint64_t v = 0; v < (1ULL << kP); ++v) {
    const std::size_t idx = obs::LogHistogram::bucketIndex(v, kP);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(obs::LogHistogram::bucketLo(idx, kP), v);
    EXPECT_EQ(obs::LogHistogram::bucketHi(idx, kP), v + 1);
  }
}

TEST(LogHistogram, OctaveBoundaries) {
  constexpr unsigned kP = 6;
  // First value past the exact region opens the sub-bucketed octaves.
  EXPECT_EQ(obs::LogHistogram::bucketIndex(63, kP), 63U);
  EXPECT_EQ(obs::LogHistogram::bucketIndex(64, kP), 64U);
  EXPECT_EQ(obs::LogHistogram::bucketIndex(127, kP), 95U);  // last of [64, 128)
  EXPECT_EQ(obs::LogHistogram::bucketIndex(128, kP), 96U);
  // Every value lands inside its bucket's [lo, hi) range.
  Rng rng(0x9e0);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(~0ULL);
    const std::size_t idx = obs::LogHistogram::bucketIndex(v, kP);
    EXPECT_GE(v, obs::LogHistogram::bucketLo(idx, kP)) << "v=" << v;
    EXPECT_LT(v, obs::LogHistogram::bucketHi(idx, kP)) << "v=" << v;
  }
  // The top bucket saturates instead of overflowing.
  const std::size_t top = obs::LogHistogram::bucketIndex(~0ULL, kP);
  EXPECT_EQ(top, 1919U);
  EXPECT_EQ(obs::LogHistogram::bucketHi(top, kP), ~0ULL);
}

TEST(LogHistogram, MomentsAndQuantiles) {
  obs::LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (std::uint64_t v = 1; v <= 10; ++v) h.add(v);
  EXPECT_EQ(h.count(), 10U);
  EXPECT_EQ(h.sum(), 55U);
  EXPECT_EQ(h.min(), 1U);
  EXPECT_EQ(h.max(), 10U);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  // All values sit in the exact region, so quantiles are exact order stats.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
}

// ---------------------------------------------------------------------------
// Merge determinism: associativity and grouping-invariance, 256 ways.
// ---------------------------------------------------------------------------

using BucketDump = std::vector<std::pair<std::size_t, std::uint64_t>>;

BucketDump dump(const obs::LogHistogram& h) {
  BucketDump out;
  h.forEachNonzero([&out](std::size_t i, std::uint64_t, std::uint64_t, std::uint64_t c) {
    out.emplace_back(i, c);
  });
  return out;
}

void expectIdentical(const obs::LogHistogram& a, const obs::LogHistogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(dump(a), dump(b));
}

TEST(LogHistogram, MergeGroupingInvariant) {
  // 4096 values spanning ~40 octaves, partitioned into 256 shard histograms.
  constexpr std::size_t kParts = 256;
  Rng rng(0xC0FFEE);
  std::vector<std::uint64_t> values;
  values.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    values.push_back(rng.uniform(1ULL << (1 + rng.uniform(40))));
  }
  obs::LogHistogram all;
  std::vector<obs::LogHistogram> parts(kParts);
  for (std::size_t i = 0; i < values.size(); ++i) {
    all.add(values[i]);
    parts[i % kParts].add(values[i]);
  }

  // Left fold in index order.
  obs::LogHistogram fold;
  for (const obs::LogHistogram& p : parts) fold.merge(p);
  expectIdentical(fold, all);

  // Pairwise tree reduction (the grouping a sharded engine would use).
  std::vector<obs::LogHistogram> tree = parts;
  while (tree.size() > 1) {
    std::vector<obs::LogHistogram> next;
    for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
      tree[i].merge(tree[i + 1]);
      next.push_back(std::move(tree[i]));
    }
    if (tree.size() % 2 == 1) next.push_back(std::move(tree.back()));
    tree = std::move(next);
  }
  expectIdentical(tree.front(), all);

  // Shuffled folds: any permutation of the 256 parts yields the same buckets.
  for (const std::uint64_t seed : {1ULL, 7ULL, 0xABCULL}) {
    Rng shuf(seed);
    std::vector<std::size_t> order(kParts);
    for (std::size_t i = 0; i < kParts; ++i) order[i] = i;
    for (std::size_t i = kParts - 1; i > 0; --i) {
      std::swap(order[i], order[shuf.uniform(i + 1)]);
    }
    obs::LogHistogram shuffled;
    for (const std::size_t i : order) shuffled.merge(parts[i]);
    expectIdentical(shuffled, all);
  }

  // Weighted adds are equivalent to repeated adds.
  obs::LogHistogram weighted;
  weighted.addN(77, 5);
  obs::LogHistogram repeated;
  for (int i = 0; i < 5; ++i) repeated.add(77);
  expectIdentical(weighted, repeated);

  // Merging an empty histogram (either side) is a no-op.
  obs::LogHistogram empty;
  fold.merge(empty);
  expectIdentical(fold, all);
  empty.merge(all);
  expectIdentical(empty, all);
}

// ---------------------------------------------------------------------------
// Series + metrics derivation from a hand-built trace.
// ---------------------------------------------------------------------------

obs::TrialTrace manualTrace() {
  obs::TrialTrace t;
  t.scenario = "manual";
  t.trial = 2;
  obs::RoundRecord rd;
  rd.round = 1;
  rd.sends = 4;
  rd.touched = 3;
  rd.messages = 7;
  rd.bits = 56;
  rd.recvNs = 1111;  // wall payload — must not feed the fingerprint
  rd.mergeNs = 22;
  rd.scatterNs = 333;
  t.round(rd);
  rd.round = 2;
  rd.messages = 9;
  rd.bits = 72;
  t.round(rd);
  t.counter("beacon.undecidedHonest", 12.0, 1);
  t.counter("beacon.undecidedHonest", 5.0, 2);
  t.counter("agreement.answered", 3.0, 2);
  t.mark("engine.skipRounds");
  t.span("beacon.decisions", obs::traceClockNs(), 2);
  return t;
}

TEST(Series, BuildSortsByNameAndKeepsPointOrder) {
  const obs::TrialTrace t = manualTrace();
  const std::vector<obs::TimeSeries> series = obs::buildSeries(t);
  ASSERT_EQ(series.size(), 3U);
  EXPECT_EQ(series[0].name, "agreement.answered");
  EXPECT_EQ(series[1].name, "beacon.undecidedHonest");
  EXPECT_EQ(series[2].name, "mark.engine.skipRounds");
  ASSERT_EQ(series[1].points.size(), 2U);
  EXPECT_EQ(series[1].points[0].round, 1U);
  EXPECT_EQ(series[1].points[0].value, 12.0);
  EXPECT_EQ(series[1].points[1].round, 2U);
  EXPECT_EQ(series[1].points[1].value, 5.0);
}

TEST(Metrics, BuildDistillsRoundsSpansAndSeries) {
  const obs::TrialMetrics m = obs::buildTrialMetrics(manualTrace());
  EXPECT_EQ(m.scenario, "manual");
  EXPECT_EQ(m.trial, 2U);
  const auto find = [&m](const std::string& name) -> const obs::NamedHistogram* {
    for (const obs::NamedHistogram& nh : m.hists) {
      if (nh.name == name) return &nh;
    }
    return nullptr;
  };
  const obs::NamedHistogram* msgs = find("engine.messagesPerRound");
  ASSERT_NE(msgs, nullptr);
  EXPECT_FALSE(msgs->wall);
  EXPECT_EQ(msgs->hist.count(), 2U);
  EXPECT_EQ(msgs->hist.sum(), 16U);
  const obs::NamedHistogram* recv = find("engine.recvNs");
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(recv->wall);
  const obs::NamedHistogram* span = find("span.beacon.decisions");
  ASSERT_NE(span, nullptr);
  EXPECT_TRUE(span->wall);
  EXPECT_EQ(m.series.size(), 3U);
  // hists arrive sorted by name (the canonical export order).
  for (std::size_t i = 1; i < m.hists.size(); ++i) {
    EXPECT_LT(m.hists[i - 1].name, m.hists[i].name);
  }
}

TEST(Metrics, FingerprintExcludesWallClockPayload) {
  obs::TrialTrace a = manualTrace();
  obs::TrialTrace b = manualTrace();
  // Perturb every wall-clock field on one side: phase timings and span
  // timestamps/durations differ run to run on real hardware.
  for (obs::TraceEvent& e : b.events) {
    e.tsNs += 987654;
    e.durNs += 4321;
    e.rd.recvNs += 1000;
    e.rd.mergeNs += 2000;
    e.rd.scatterNs += 3000;
  }
  const std::uint64_t fa = obs::metricsFingerprint(obs::buildTrialMetrics(a));
  const std::uint64_t fb = obs::metricsFingerprint(obs::buildTrialMetrics(b));
  EXPECT_EQ(fa, fb);

  // A deterministic field moving must move the fingerprint...
  obs::TrialTrace c = manualTrace();
  for (obs::TraceEvent& e : c.events) {
    if (e.kind == obs::EventKind::Round) e.rd.messages += 1;
  }
  EXPECT_NE(obs::metricsFingerprint(obs::buildTrialMetrics(c)), fa);
  // ...and so must a counter value (the series are part of the projection).
  obs::TrialTrace d = manualTrace();
  for (obs::TraceEvent& e : d.events) {
    if (e.kind == obs::EventKind::Counter) e.value += 1.0;
  }
  EXPECT_NE(obs::metricsFingerprint(obs::buildTrialMetrics(d)), fa);
}

TEST(Metrics, JsonlSinkSchemaRoundTrip) {
  std::ostringstream os;
  obs::MetricsJsonlSink sink(os);
  sink.consume(manualTrace());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"scenario\":\"manual\""), std::string::npos);
  EXPECT_NE(out.find("\"trial\":2"), std::string::npos);
  EXPECT_NE(out.find("\"hists\":["), std::string::npos);
  EXPECT_NE(out.find("\"series\":["), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"engine.messagesPerRound\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"beacon.undecidedHonest\""), std::string::npos);
  // The embedded fingerprint is exactly metricsFingerprint() of the bundle.
  std::ostringstream fp;
  fp << "\"fingerprint\":\"0x" << std::hex
     << obs::metricsFingerprint(obs::buildTrialMetrics(manualTrace())) << "\"";
  EXPECT_NE(out.find(fp.str()), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden identity: deriving + exporting metrics is strictly observational.
// ---------------------------------------------------------------------------

std::uint64_t metricsFpOfTrace(const obs::TrialTrace& trace) {
  return obs::metricsFingerprint(obs::buildTrialMetrics(trace));
}

TEST(MetricsIdentity, GoldenFamiliesIdenticalWithMetricsDerived) {
  // Beacon, sharded beacon, agreement, pipeline, local: run each golden
  // traced, derive + export the metrics bundle, and require the protocol
  // fingerprint to match the untraced constant exactly.
  {
    const std::uint64_t untraced = golden::beaconFingerprint(
        BeaconChoicePolicy::PreferAcceptable, BeaconAttackProfile::flooder(), 10);
    EXPECT_EQ(untraced, 0x29553b28fa4d5ddcULL);
    for (const unsigned shards : {1U, 4U}) {
      obs::TrialTrace trace;
      std::uint64_t traced = 0;
      {
        const obs::TraceScope scope(&trace);
        traced = golden::beaconFingerprint(BeaconChoicePolicy::PreferAcceptable,
                                           BeaconAttackProfile::flooder(), 10, shards);
      }
      EXPECT_EQ(traced, untraced) << "shards=" << shards;
      std::ostringstream os;
      obs::MetricsJsonlSink(os).consume(trace);
      EXPECT_NE(os.str().find("\"type\":\"metrics\""), std::string::npos);
    }
  }
  for (const unsigned shards : {1U, 4U}) {
    const std::uint64_t untraced = golden::agreementFingerprint(6, 1.0, shards);
    obs::TrialTrace trace;
    std::uint64_t traced = 0;
    {
      const obs::TraceScope scope(&trace);
      traced = golden::agreementFingerprint(6, 1.0, shards);
    }
    EXPECT_EQ(traced, untraced) << "shards=" << shards;
    EXPECT_NE(metricsFpOfTrace(trace), 0U);
  }
  {
    const std::uint64_t untraced = golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 10);
    obs::TrialTrace trace;
    std::uint64_t traced = 0;
    {
      const obs::TraceScope scope(&trace);
      traced = golden::pipelineFingerprint(BeaconAttackProfile::flooder(), 10);
    }
    EXPECT_EQ(traced, untraced);
  }
  {
    const std::uint64_t untraced = [] {
      auto adv = makeConflictLocalAdversary();
      return golden::localFingerprint(*adv, Placement::Random);
    }();
    EXPECT_EQ(untraced, 0xbd69b4b31ee42fceULL);
    obs::TrialTrace trace;
    std::uint64_t traced = 0;
    {
      const obs::TraceScope scope(&trace);
      auto adv = makeConflictLocalAdversary();
      traced = golden::localFingerprint(*adv, Placement::Random);
    }
    EXPECT_EQ(traced, untraced);
  }
}

// ---------------------------------------------------------------------------
// Runner-level invariance: the metrics projection is a pure function of the
// trial at any thread count, shard count or pipeline depth; installing the
// metrics exporter moves no result.
// ---------------------------------------------------------------------------

ScenarioSpec metricsChurnSpec(std::uint32_t shards, std::uint32_t pipelineDepth) {
  ScenarioSpec spec;
  spec.name = "metrics-churn";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconLimits.maxPhase = 8;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::steady(/*epochs=*/6, /*rate=*/0.08, /*recountEvery=*/2);
  spec.churn.pipelineDepth = pipelineDepth;
  spec.shards = shards;
  spec.trials = 2;
  spec.masterSeed = 0xb5;
  spec.traceTrials = 2;
  return spec;
}

TEST(MetricsInvariance, ProjectionInvariantAcrossThreadsShardsDepth) {
  std::vector<std::uint64_t> baseline;
  std::uint64_t baselineFp = 0;
  for (const unsigned threads : {1U, 2U, 8U}) {
    for (const std::uint32_t shards : {1U, 4U}) {
      for (const std::uint32_t depth : {1U, 2U}) {
        auto sink = std::make_shared<obs::CapturingTraceSink>();
        obs::setTraceSink(sink, 2);
        ExperimentRunner runner(threads);
        const ExperimentSummary summary = runner.run(metricsChurnSpec(shards, depth));
        obs::setTraceSink(nullptr);
        const std::string cfg = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards) +
                                " depth=" + std::to_string(depth);
        ASSERT_EQ(sink->traces().size(), 2U) << cfg;
        std::vector<std::uint64_t> fps;
        fps.reserve(2);
        for (const obs::TrialTrace& t : sink->traces()) fps.push_back(metricsFpOfTrace(t));
        if (baseline.empty()) {
          baseline = std::move(fps);
          baselineFp = summary.combinedFingerprint;
          continue;
        }
        // Engine sharding and epoch pipelining are fingerprint-invariant
        // (DESIGN.md §10/§11), so one protocol baseline covers the matrix —
        // and the metrics projection must be equally immovable even though
        // the raw trace differs across shard counts (laneSends, rd.shards).
        EXPECT_EQ(summary.combinedFingerprint, baselineFp) << cfg;
        EXPECT_EQ(fps, baseline) << cfg;
      }
    }
  }
}

TEST(MetricsInvariance, ExporterInstalledMovesNoResult) {
  ExperimentRunner runner(2);
  const ExperimentSummary off = runner.run(metricsChurnSpec(1, 1));
  std::ostringstream os;
  obs::setTraceSink(std::make_shared<obs::MetricsJsonlSink>(os), 2);
  const ExperimentSummary on = runner.run(metricsChurnSpec(1, 1));
  obs::setTraceSink(nullptr);
  EXPECT_EQ(on.combinedFingerprint, off.combinedFingerprint);
  // Two sampled trials → two JSONL lines.
  std::size_t lines = 0;
  const std::string out = os.str();
  for (const char ch : out) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2U);
}

// ---------------------------------------------------------------------------
// Bootstrap CIs: seeded in the serial aggregation pass, so thread-count
// invariant bitwise; degenerate (= mean) for a single trial.
// ---------------------------------------------------------------------------

TEST(BootstrapCi, ThreadCountInvariantBitwise) {
  ScenarioSpec spec = metricsChurnSpec(1, 1);
  spec.churn = ChurnSchedule{};  // static run; trial count is what matters
  spec.trials = 6;
  spec.traceTrials = 0;
  ExperimentRunner one(1);
  ExperimentRunner eight(8);
  const ExperimentSummary a = one.run(spec);
  const ExperimentSummary b = eight.run(spec);
  EXPECT_EQ(a.combinedFingerprint, b.combinedFingerprint);
  const auto expectSame = [](const Distribution& x, const Distribution& y) {
    EXPECT_EQ(x.mean, y.mean);
    EXPECT_EQ(x.stddev, y.stddev);
    EXPECT_EQ(x.ci95lo, y.ci95lo);
    EXPECT_EQ(x.ci95hi, y.ci95hi);
  };
  expectSame(a.fracDecided, b.fracDecided);
  expectSame(a.totalRounds, b.totalRounds);
  expectSame(a.totalMessages, b.totalMessages);
  // With several distinct trials the interval is a real interval around the
  // mean, not a placeholder.
  EXPECT_LE(a.totalRounds.ci95lo, a.totalRounds.mean);
  EXPECT_GE(a.totalRounds.ci95hi, a.totalRounds.mean);
  EXPECT_LT(a.totalRounds.ci95lo, a.totalRounds.ci95hi);
  EXPECT_GT(a.totalRounds.stddev, 0.0);
}

TEST(BootstrapCi, SingleTrialDegeneratesToMean) {
  ScenarioSpec spec = metricsChurnSpec(1, 1);
  spec.churn = ChurnSchedule{};
  spec.trials = 1;
  spec.traceTrials = 0;
  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(spec);
  EXPECT_EQ(s.totalRounds.stddev, 0.0);
  EXPECT_EQ(s.totalRounds.ci95lo, s.totalRounds.mean);
  EXPECT_EQ(s.totalRounds.ci95hi, s.totalRounds.mean);
}

TEST(BootstrapCi, DistributionOverloadIsDeterministic) {
  const std::vector<double> sample = {1.0, 4.0, 2.0, 8.0, 5.0};
  const Distribution a = Distribution::of(sample, Rng(42));
  const Distribution b = Distribution::of(sample, Rng(42));
  EXPECT_EQ(a.ci95lo, b.ci95lo);
  EXPECT_EQ(a.ci95hi, b.ci95hi);
  EXPECT_LT(a.ci95lo, a.ci95hi);
  // A different bootstrap seed moves the interval, not the moments.
  const Distribution c = Distribution::of(sample, Rng(43));
  EXPECT_EQ(a.mean, c.mean);
  EXPECT_EQ(a.stddev, c.stddev);
  EXPECT_TRUE(c.ci95lo != a.ci95lo || c.ci95hi != a.ci95hi);
}

}  // namespace
}  // namespace bzc
