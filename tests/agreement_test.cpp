// Tests for the §1.1 application: random-walk sampling, majority dynamics,
// and the counting -> agreement pipeline — plus the statistical-equivalence
// gates pinning the SyncEngine migration of the agreement layer.
#include <gtest/gtest.h>

#include "agreement/majority.hpp"
#include "agreement/pipeline.hpp"
#include "agreement/random_walk.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(RandomWalk, StaysOnGraphAndFlagsByzantine) {
  const Graph g = ring(10);
  const ByzantineSet byz(10, {5});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const WalkSample s = sampleViaWalk(g, byz, 0, 3, rng);
    EXPECT_LT(s.endpoint, 10u);
  }
  // A walk starting at a Byzantine node is compromised immediately.
  const WalkSample s = sampleViaWalk(g, byz, 5, 0, rng);
  EXPECT_TRUE(s.compromised);
}

TEST(RandomWalk, LongWalksMixOnExpander) {
  Rng gen(2);
  const Graph g = hnd(256, 8, gen);
  Rng rng(3);
  const double tvShort = walkEndpointTvDistance(g, 0, 1, 4000, rng);
  const double tvLong = walkEndpointTvDistance(g, 0, 12, 4000, rng);
  EXPECT_LT(tvLong, tvShort);
  EXPECT_LT(tvLong, 0.25);
}

TEST(RandomWalk, RingMixesSlowly) {
  const Graph g = ring(256);
  Rng rng(4);
  // Even 12 steps on a ring leaves the walk close to its start.
  const double tv = walkEndpointTvDistance(g, 0, 12, 4000, rng);
  EXPECT_GT(tv, 0.5);
}

TEST(Majority, BenignConvergesWithGoodEstimate) {
  Rng gen(5);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  params.initialOnesFraction = 0.7;
  Rng rng(6);
  const double goodL = std::log(static_cast<double>(n));
  const auto out = runMajorityAgreement(g, none, goodL, params, rng);
  EXPECT_EQ(out.initialMajority, 1);
  EXPECT_TRUE(out.almostEverywhere(0.02));
}

TEST(Majority, SurvivesSqrtNOverPolylogByzantine) {
  // [3] tolerates O(sqrt(n)/polylog n) Byzantine nodes; at n = 1024 that
  // budget is single-digit (sqrt(n)/ln n ~ 4.6). The adaptive adversary here
  // corrupts every sample whose walk touches a Byzantine node.
  Rng gen(7);
  const NodeId n = 1024;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 8;
  Rng prng(8);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  params.initialOnesFraction = 0.75;
  Rng rng(9);
  const auto out = runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, rng);
  EXPECT_TRUE(out.almostEverywhere(0.1)) << "agree frac " << out.fracAgreeing;
  EXPECT_GT(out.compromisedSamples, 0u);
}

TEST(Majority, TinyEstimateFailsUnderByzantinePressure) {
  // With L = 1 the walks don't mix and there are too few iterations; the
  // adversary keeps the network split. A correct L = ln n fixes both.
  Rng gen(10);
  const NodeId n = 1024;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;
  Rng prng(11);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  params.initialOnesFraction = 0.6;
  Rng r1(12);
  const auto bad = runMajorityAgreement(g, byz, 1.0, params, r1);
  Rng r2(12);
  const auto good = runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, r2);
  EXPECT_GT(good.fracAgreeing, bad.fracAgreeing + 0.05);
  EXPECT_FALSE(bad.almostEverywhere(0.05));
  EXPECT_TRUE(good.almostEverywhere(0.1)) << good.fracAgreeing;
}

TEST(Majority, PerNodeEstimatesSupported) {
  Rng gen(13);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  std::vector<double> estimates(n, std::log(static_cast<double>(n)));
  estimates[0] = 2.0 * estimates[0];  // one node over-estimates: harmless
  AgreementParams params;
  Rng rng(14);
  const auto out = runMajorityAgreement(g, none, estimates, params, rng);
  EXPECT_TRUE(out.almostEverywhere(0.02));
}

TEST(Majority, EstimateVectorSizeChecked) {
  const Graph g = ring(8);
  const ByzantineSet none(8, {});
  AgreementParams params;
  Rng rng(15);
  EXPECT_THROW((void)runMajorityAgreement(g, none, std::vector<double>(3, 1.0), params, rng),
               std::invalid_argument);
}

TEST(Majority, ZeroWalkLengthFactorRejected) {
  // walkLen must stay >= 1 — a token's first hop is taken at launch, so a
  // zero-length walk has no message-passing form (the factor is validated,
  // not silently clamped).
  const Graph g = ring(8);
  const ByzantineSet none(8, {});
  AgreementParams params;
  params.walkLengthFactor = 0.0;
  Rng rng(16);
  EXPECT_THROW((void)runMajorityAgreement(g, none, 2.0, params, rng), std::invalid_argument);
}

TEST(Pipeline, CountingFeedsAgreement) {
  Rng gen(16);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;  // sqrt(n)/polylog scale, see SurvivesSqrtNOverPolylog
  Rng prng(17);
  const auto byz = placeByzantine(g, spec, prng);
  PipelineParams params;
  params.agreement.initialOnesFraction = 0.7;
  params.agreement.walkLengthFactor = 0.5;  // counting estimates overshoot ln n
  params.estimateSafetyFactor = 1.5;
  Rng rng(18);
  const auto out =
      runCountingThenAgreement(g, byz, BeaconAttackProfile::flooder(), params, rng);
  // Counting produced workable estimates for most nodes...
  std::size_t decided = 0;
  for (NodeId u = 0; u < n; ++u) decided += out.counting.result.decisions[u].decided ? 1 : 0;
  EXPECT_GT(decided, n * 3 / 4);
  // ...and agreement on top reaches almost-everywhere agreement.
  EXPECT_TRUE(out.agreement.almostEverywhere(0.1))
      << "agree frac " << out.agreement.fracAgreeing;
  EXPECT_GT(out.totalRounds, out.counting.result.totalRounds);
}

TEST(Pipeline, BenignEndToEnd) {
  Rng gen(19);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  PipelineParams params;
  Rng rng(20);
  const auto out = runCountingThenAgreement(g, none, BeaconAttackProfile::none(), params, rng);
  EXPECT_TRUE(out.agreement.almostEverywhere(0.01));
  EXPECT_TRUE(out.counting.stats.quiesced);
  // Both stages are engine-metered; the pipeline totals must be their sum.
  EXPECT_EQ(out.totalRounds, out.counting.result.totalRounds + out.agreement.totalRounds);
  EXPECT_EQ(out.totalMessages, out.counting.result.meter.totalMessages() +
                                   out.agreement.meter.totalMessages());
  EXPECT_GT(out.agreement.meter.totalBits(), 0u);
}

TEST(Majority, MeterCountsHonestTokenTrafficOnly) {
  Rng gen(26);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 8;
  Rng prng(27);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  Rng rng(28);
  const auto out = runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, rng);
  // Byzantine relays forward tokens but the engine never meters them.
  for (NodeId b : byz.members()) {
    EXPECT_EQ(out.meter.messagesSent(b), 0u) << "byzantine node " << b << " was metered";
  }
  std::uint64_t honestMessages = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!byz.contains(u)) honestMessages += out.meter.messagesSent(u);
  }
  EXPECT_EQ(honestMessages, out.meter.totalMessages());
  EXPECT_GT(honestMessages, 0u);
  // Walk traffic is unicast: at least iterations * 2 tokens * (out + back).
  EXPECT_GT(out.totalRounds, 0u);
  EXPECT_EQ(out.finalValues.size(), static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------------
// Statistical-equivalence gates for the SyncEngine migration. Moving from
// oracle walks (one shared RNG stream, consumed in node order) to per-round
// token forwarding (private forked streams per token) necessarily reorders
// RNG draws, so the migration cannot be pinned bit-for-bit. These gates pin
// it statistically instead: mean fracAgreeing over 48 trials must stay
// within tolerance of the values captured from the pre-refactor
// implementation on exactly these scenarios (materializeTrial derivation,
// same master seeds) immediately before the refactor.
// ---------------------------------------------------------------------------

TEST(AgreementEquivalence, BenignOracleMeanMatchesPreRefactor) {
  ScenarioSpec spec;
  spec.name = "equiv-benign-oracle";
  spec.graph = {GraphKind::Hnd, 512, 8, 0.1};
  spec.placement.kind = Placement::None;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.trials = 48;
  spec.masterSeed = 0xa9ee;
  ExperimentRunner runner;
  const ExperimentSummary s = runner.run(spec);
  ASSERT_EQ(s.extras.size(), static_cast<std::size_t>(kAgreementExtraSlots));
  // Pre-refactor capture: mean fracAgreeing = 1.000000.
  EXPECT_NEAR(s.extras[kAgreementFracAgreeing].mean, 1.0, 0.01);
  // With uniform estimates the engine round count reproduces the old
  // logical-round formula iters * (2*walkLen + 1) exactly: 195 at n = 512.
  EXPECT_NEAR(s.extras[kAgreementRounds].mean, 195.0, 1e-9);
}

TEST(AgreementEquivalence, ByzantineOracleMeanMatchesPreRefactor) {
  ScenarioSpec spec;
  spec.name = "equiv-byz8-oracle";
  spec.graph = {GraphKind::Hnd, 1024, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 8;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.trials = 48;
  spec.masterSeed = 0xa9ef;
  ExperimentRunner runner;
  const ExperimentSummary s = runner.run(spec);
  // Pre-refactor capture: mean fracAgreeing = 0.994566, mean compromised
  // samples = 1356.3 (token forwarding measured 0.9952 / 1350.8).
  EXPECT_NEAR(s.extras[kAgreementFracAgreeing].mean, 0.9946, 0.03);
  EXPECT_NEAR(s.extras[kAgreementCompromised].mean, 1356.0, 200.0);
}

TEST(AgreementEquivalence, TinyEstimateMeanMatchesPreRefactor) {
  ScenarioSpec spec;
  spec.name = "equiv-byz8-tiny";
  spec.graph = {GraphKind::Hnd, 1024, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 8;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.agreementEstimate = 1.0;
  spec.trials = 48;
  spec.masterSeed = 0xa9ef;
  ExperimentRunner runner;
  const ExperimentSummary s = runner.run(spec);
  // Pre-refactor capture: mean fracAgreeing = 0.840080 — a too-small
  // estimate must keep failing exactly as much as it used to.
  EXPECT_NEAR(s.extras[kAgreementFracAgreeing].mean, 0.8401, 0.06);
  EXPECT_LT(s.extras[kAgreementFracAgreeing].mean, 0.95);
}

TEST(AgreementEquivalence, PipelineFlooderMatchesPreRefactor) {
  ScenarioSpec spec;
  spec.name = "equiv-pipeline-flooder";
  spec.graph = {GraphKind::Hnd, 512, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 6;
  spec.protocol = ProtocolKind::Pipeline;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 10;
  spec.trials = 48;
  spec.masterSeed = 0xa9f0;
  ExperimentRunner runner;
  const ExperimentSummary s = runner.run(spec);
  // Pre-refactor capture: mean fracAgreeing = 0.993783.
  EXPECT_NEAR(s.extras[kAgreementFracAgreeing].mean, 0.9938, 0.03);
  // The counting stage consumes its fork-derived stream in the pre-refactor
  // order, so its decision statistics are preserved *bit-for-bit*: the
  // capture counted 0.899373 decided over all 512 slots; evaluateQuality
  // divides by the 506 honest nodes instead.
  EXPECT_NEAR(s.fracDecided.mean, 0.899373 * 512.0 / 506.0, 1e-6);
}

}  // namespace
}  // namespace bzc
