// Tests for the §1.1 application: random-walk sampling, majority dynamics,
// and the counting -> agreement pipeline.
#include <gtest/gtest.h>

#include "agreement/majority.hpp"
#include "agreement/pipeline.hpp"
#include "agreement/random_walk.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(RandomWalk, StaysOnGraphAndFlagsByzantine) {
  const Graph g = ring(10);
  const ByzantineSet byz(10, {5});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const WalkSample s = sampleViaWalk(g, byz, 0, 3, rng);
    EXPECT_LT(s.endpoint, 10u);
  }
  // A walk starting at a Byzantine node is compromised immediately.
  const WalkSample s = sampleViaWalk(g, byz, 5, 0, rng);
  EXPECT_TRUE(s.compromised);
}

TEST(RandomWalk, LongWalksMixOnExpander) {
  Rng gen(2);
  const Graph g = hnd(256, 8, gen);
  Rng rng(3);
  const double tvShort = walkEndpointTvDistance(g, 0, 1, 4000, rng);
  const double tvLong = walkEndpointTvDistance(g, 0, 12, 4000, rng);
  EXPECT_LT(tvLong, tvShort);
  EXPECT_LT(tvLong, 0.25);
}

TEST(RandomWalk, RingMixesSlowly) {
  const Graph g = ring(256);
  Rng rng(4);
  // Even 12 steps on a ring leaves the walk close to its start.
  const double tv = walkEndpointTvDistance(g, 0, 12, 4000, rng);
  EXPECT_GT(tv, 0.5);
}

TEST(Majority, BenignConvergesWithGoodEstimate) {
  Rng gen(5);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  AgreementParams params;
  params.initialOnesFraction = 0.7;
  Rng rng(6);
  const double goodL = std::log(static_cast<double>(n));
  const auto out = runMajorityAgreement(g, none, goodL, params, rng);
  EXPECT_EQ(out.initialMajority, 1);
  EXPECT_TRUE(out.almostEverywhere(0.02));
}

TEST(Majority, SurvivesSqrtNOverPolylogByzantine) {
  // [3] tolerates O(sqrt(n)/polylog n) Byzantine nodes; at n = 1024 that
  // budget is single-digit (sqrt(n)/ln n ~ 4.6). The adaptive adversary here
  // corrupts every sample whose walk touches a Byzantine node.
  Rng gen(7);
  const NodeId n = 1024;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 8;
  Rng prng(8);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  params.initialOnesFraction = 0.75;
  Rng rng(9);
  const auto out = runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, rng);
  EXPECT_TRUE(out.almostEverywhere(0.1)) << "agree frac " << out.fracAgreeing;
  EXPECT_GT(out.compromisedSamples, 0u);
}

TEST(Majority, TinyEstimateFailsUnderByzantinePressure) {
  // With L = 1 the walks don't mix and there are too few iterations; the
  // adversary keeps the network split. A correct L = ln n fixes both.
  Rng gen(10);
  const NodeId n = 1024;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;
  Rng prng(11);
  const auto byz = placeByzantine(g, spec, prng);
  AgreementParams params;
  params.initialOnesFraction = 0.6;
  Rng r1(12);
  const auto bad = runMajorityAgreement(g, byz, 1.0, params, r1);
  Rng r2(12);
  const auto good = runMajorityAgreement(g, byz, std::log(static_cast<double>(n)), params, r2);
  EXPECT_GT(good.fracAgreeing, bad.fracAgreeing + 0.05);
  EXPECT_FALSE(bad.almostEverywhere(0.05));
  EXPECT_TRUE(good.almostEverywhere(0.1)) << good.fracAgreeing;
}

TEST(Majority, PerNodeEstimatesSupported) {
  Rng gen(13);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  std::vector<double> estimates(n, std::log(static_cast<double>(n)));
  estimates[0] = 2.0 * estimates[0];  // one node over-estimates: harmless
  AgreementParams params;
  Rng rng(14);
  const auto out = runMajorityAgreement(g, none, estimates, params, rng);
  EXPECT_TRUE(out.almostEverywhere(0.02));
}

TEST(Majority, EstimateVectorSizeChecked) {
  const Graph g = ring(8);
  const ByzantineSet none(8, {});
  AgreementParams params;
  Rng rng(15);
  EXPECT_THROW((void)runMajorityAgreement(g, none, std::vector<double>(3, 1.0), params, rng),
               std::invalid_argument);
}

TEST(Pipeline, CountingFeedsAgreement) {
  Rng gen(16);
  const NodeId n = 512;
  const Graph g = hnd(n, 8, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 6;  // sqrt(n)/polylog scale, see SurvivesSqrtNOverPolylog
  Rng prng(17);
  const auto byz = placeByzantine(g, spec, prng);
  PipelineParams params;
  params.agreement.initialOnesFraction = 0.7;
  params.agreement.walkLengthFactor = 0.5;  // counting estimates overshoot ln n
  params.estimateSafetyFactor = 1.5;
  Rng rng(18);
  const auto out =
      runCountingThenAgreement(g, byz, BeaconAttackProfile::flooder(), params, rng);
  // Counting produced workable estimates for most nodes...
  std::size_t decided = 0;
  for (NodeId u = 0; u < n; ++u) decided += out.counting.result.decisions[u].decided ? 1 : 0;
  EXPECT_GT(decided, n * 3 / 4);
  // ...and agreement on top reaches almost-everywhere agreement.
  EXPECT_TRUE(out.agreement.almostEverywhere(0.1))
      << "agree frac " << out.agreement.fracAgreeing;
  EXPECT_GT(out.totalRounds, out.counting.result.totalRounds);
}

TEST(Pipeline, BenignEndToEnd) {
  Rng gen(19);
  const NodeId n = 256;
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  PipelineParams params;
  Rng rng(20);
  const auto out = runCountingThenAgreement(g, none, BeaconAttackProfile::none(), params, rng);
  EXPECT_TRUE(out.agreement.almostEverywhere(0.01));
  EXPECT_TRUE(out.counting.stats.quiesced);
}

}  // namespace
}  // namespace bzc
