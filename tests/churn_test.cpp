// Tests for the dynamic-network churn subsystem (src/churn/): overlay
// regularity-repair invariants, churn-model event shapes, epoch-stream
// determinism and thread-count invariance from ScenarioSpec, and the paired
// zero-churn identity against the static pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "churn/churn_model.hpp"
#include "churn/dynamic_overlay.hpp"
#include "churn/epoch_runner.hpp"
#include "graph/generators.hpp"
#include "runtime/experiment.hpp"

namespace bzc {
namespace {

DynamicOverlay makeOverlay(NodeId n, NodeId d, std::uint64_t seed,
                           std::size_t byzCount = 0) {
  Rng g(seed);
  const Graph graph = hnd(n, d, g);
  std::vector<NodeId> byzMembers;
  for (NodeId u = 0; u < byzCount; ++u) byzMembers.push_back(u * 3 % n);
  std::sort(byzMembers.begin(), byzMembers.end());
  byzMembers.erase(std::unique(byzMembers.begin(), byzMembers.end()), byzMembers.end());
  return DynamicOverlay(graph, ByzantineSet(n, byzMembers), d);
}

/// Full invariant audit: exact d-regularity, no self-loops, stub conservation
/// (2|E| == d * n), and a Graph materialisation that satisfies the same.
void expectRegularInvariants(const DynamicOverlay& overlay) {
  const NodeId d = overlay.targetDegree();
  EXPECT_EQ(overlay.degreeDeficit(), 0u);
  EXPECT_EQ(2 * overlay.edgeCount(), static_cast<std::size_t>(d) * overlay.liveCount());
  const OverlaySnapshot snap = overlay.snapshot();  // Graph ctor rejects self-loops
  ASSERT_EQ(snap.graph.numNodes(), overlay.liveCount());
  for (NodeId u = 0; u < snap.graph.numNodes(); ++u) {
    EXPECT_EQ(snap.graph.degree(u), d);
    for (NodeId v : snap.graph.neighbors(u)) EXPECT_NE(v, u);
  }
  EXPECT_EQ(snap.byz.count(), overlay.byzCount());
}

// ---------------------------------------------------------------------------
// DynamicOverlay repair invariants.
// ---------------------------------------------------------------------------

TEST(DynamicOverlay, SeedsFromGraphAsIdentity) {
  Rng g(11);
  const Graph graph = hnd(64, 8, g);
  const ByzantineSet byz(64, {1, 5, 9});
  DynamicOverlay overlay(graph, byz, 8);
  EXPECT_EQ(overlay.liveCount(), 64u);
  EXPECT_EQ(overlay.byzCount(), 3u);
  const OverlaySnapshot snap = overlay.snapshot();
  // Graph CSR form is canonical in the edge multiset, so the round-trip is
  // exact — the property the zero-churn identity rides on.
  EXPECT_EQ(snap.graph.edgeList(), graph.edgeList());
  EXPECT_EQ(snap.byz.members(), byz.members());
  expectRegularInvariants(overlay);
}

TEST(DynamicOverlay, LeaveRepairsBackToRegularity) {
  DynamicOverlay overlay = makeOverlay(96, 8, 21);
  Rng rng(77);
  for (std::uint64_t id : {5ULL, 17ULL, 42ULL, 43ULL, 80ULL}) {
    ASSERT_TRUE(overlay.leave(id, rng));
    overlay.repairToRegular(rng);
    expectRegularInvariants(overlay);
  }
  EXPECT_EQ(overlay.liveCount(), 91u);
  EXPECT_FALSE(overlay.isLive(42));
}

TEST(DynamicOverlay, JoinWiresToFullDegree) {
  DynamicOverlay overlay = makeOverlay(64, 8, 22);
  Rng rng(78);
  const std::uint64_t id = overlay.join(false, rng);
  EXPECT_EQ(id, 64u);  // global ids are monotone
  EXPECT_TRUE(overlay.isLive(id));
  EXPECT_EQ(overlay.degreeOf(id), 8u);
  expectRegularInvariants(overlay);
  // A Byzantine join is flagged.
  const std::uint64_t byzId = overlay.join(true, rng);
  EXPECT_EQ(overlay.byzCount(), 1u);
  EXPECT_TRUE(overlay.isLive(byzId));
  expectRegularInvariants(overlay);
}

TEST(DynamicOverlay, ChurnStormKeepsInvariants) {
  // Interleaved joins/leaves/rewires with repair after each batch, as the
  // epoch loop applies them.
  DynamicOverlay overlay = makeOverlay(128, 8, 23, 9);
  Rng rng(79);
  for (int batch = 0; batch < 12; ++batch) {
    for (int k = 0; k < 6; ++k) {
      const auto& members = overlay.members();
      const std::uint64_t victim =
          members[static_cast<std::size_t>(rng.uniform(members.size()))].id;
      overlay.leave(victim, rng);
    }
    for (int k = 0; k < 5; ++k) overlay.join(rng.bernoulli(0.3), rng);
    for (int k = 0; k < 10; ++k) overlay.rewire(rng);
    overlay.repairToRegular(rng);
    expectRegularInvariants(overlay);
  }
}

TEST(DynamicOverlay, RefusesToShrinkBelowFloor) {
  DynamicOverlay overlay = makeOverlay(16, 4, 24);
  Rng rng(80);
  std::size_t departed = 0;
  for (std::uint64_t id = 0; id < 16; ++id) departed += overlay.leave(id, rng) ? 1 : 0;
  EXPECT_EQ(overlay.liveCount(), overlay.membershipFloor());
  EXPECT_EQ(departed, 16u - overlay.membershipFloor());
  overlay.repairToRegular(rng);
  expectRegularInvariants(overlay);
}

TEST(DynamicOverlay, RewirePreservesDegreesAndAvoidsSelfLoops) {
  DynamicOverlay overlay = makeOverlay(64, 6, 25);
  Rng rng(81);
  for (int k = 0; k < 500; ++k) overlay.rewire(rng);
  expectRegularInvariants(overlay);  // degrees untouched by swaps
}

// ---------------------------------------------------------------------------
// Churn models: deterministic streams and signature shapes.
// ---------------------------------------------------------------------------

TEST(ChurnModel, EventsAreAPureFunctionOfStream) {
  const ChurnSchedule schedule = ChurnSchedule::steady(6, 0.08);
  for (std::uint32_t epoch : {2u, 3u, 5u}) {
    DynamicOverlay a = makeOverlay(128, 8, 31, 6);
    DynamicOverlay b = makeOverlay(128, 8, 31, 6);
    auto modelA = makeChurnModel(schedule);
    auto modelB = makeChurnModel(schedule);
    Rng rngA = Rng(9).fork(epoch);
    Rng rngB = Rng(9).fork(epoch);
    const ChurnEvents evA = modelA->epochEvents(a, epoch, rngA);
    const ChurnEvents evB = modelB->epochEvents(b, epoch, rngB);
    EXPECT_EQ(evA.honestJoins, evB.honestJoins);
    EXPECT_EQ(evA.byzJoins, evB.byzJoins);
    EXPECT_EQ(evA.leaves, evB.leaves);
    EXPECT_EQ(evA.rewires, evB.rewires);
  }
}

TEST(ChurnModel, FlashCrowdSpikesOnlyAtItsEpoch) {
  DynamicOverlay overlay = makeOverlay(128, 8, 32);
  ChurnSchedule schedule = ChurnSchedule::flashCrowd(6, 4.0, /*atEpoch=*/3);
  auto model = makeChurnModel(schedule);
  Rng quiet = Rng(5).fork(2);
  Rng spike = Rng(5).fork(3);
  const ChurnEvents before = model->epochEvents(overlay, 2, quiet);
  const ChurnEvents at = model->epochEvents(overlay, 3, spike);
  EXPECT_EQ(before.honestJoins, 0u);  // zero background rates in the preset
  EXPECT_GE(at.honestJoins, 4u * 128u);
}

TEST(ChurnModel, MassExodusDrainsItsFraction) {
  DynamicOverlay overlay = makeOverlay(128, 8, 33);
  auto model = makeChurnModel(ChurnSchedule::massExodus(4, 0.5, /*atEpoch=*/2));
  Rng rng = Rng(6).fork(2);
  const ChurnEvents ev = model->epochEvents(overlay, 2, rng);
  EXPECT_GE(ev.leaves.size(), 60u);  // ~half of 128, capped by the floor headroom
  std::set<std::uint64_t> unique(ev.leaves.begin(), ev.leaves.end());
  EXPECT_EQ(unique.size(), ev.leaves.size());  // departures are distinct
}

TEST(ChurnModel, ByzantineChurnInflatesTheBudget) {
  // Honest members churn at equal join/leave rates; Byzantine members fake
  // departures and rejoin 2-for-1. After a few epochs the Byzantine count
  // must exceed the initial budget even though honest membership only drifts.
  ChurnSchedule schedule = ChurnSchedule::byzantine(8, 0.05, /*rejoinBoost=*/2.0);
  DynamicOverlay overlay = makeOverlay(256, 8, 34, 16);
  const std::size_t initialByz = overlay.byzCount();
  ASSERT_EQ(initialByz, 16u);
  auto model = makeChurnModel(schedule);
  for (std::uint32_t epoch = 2; epoch <= 8; ++epoch) {
    Rng eventRng = Rng(7).fork(epoch);
    Rng repairRng = Rng(8).fork(epoch);
    const ChurnEvents ev = model->epochEvents(overlay, epoch, eventRng);
    applyChurnEvents(overlay, ev, repairRng);
    expectRegularInvariants(overlay);
  }
  EXPECT_GT(overlay.byzCount(), initialByz);
  EXPECT_GT(static_cast<double>(overlay.byzCount()) / static_cast<double>(overlay.liveCount()),
            static_cast<double>(initialByz) / 256.0);
}

TEST(ChurnModel, PoissonDrawMatchesMeanRoughly) {
  Rng rng(4096);
  double sum = 0;
  const int reps = 4000;
  for (int i = 0; i < reps; ++i) sum += poissonDraw(6.5, rng);
  EXPECT_NEAR(sum / reps, 6.5, 0.2);
  EXPECT_EQ(poissonDraw(0.0, rng), 0u);
}

// ---------------------------------------------------------------------------
// EpochRunner: zero-churn identity, determinism, thread invariance.
// ---------------------------------------------------------------------------

ScenarioSpec staticPipelineSpec() {
  ScenarioSpec spec;
  spec.name = "churn-pipeline";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.beaconAttack = BeaconAttackProfile::flooder();
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.trials = 12;
  spec.masterSeed = 0x9a;
  return spec;
}

TEST(EpochRunner, ZeroChurnReproducesStaticPipelineFingerprints) {
  // The acceptance gate: a ChurnSchedule that produces no events must leave
  // the pipeline bit-identical to the static path — same per-trial
  // fingerprints, same costs — because epoch 1 uses the very streams
  // materializeTrial hands the static runner.
  const ScenarioSpec staticSpec = staticPipelineSpec();
  ScenarioSpec churnSpec = staticSpec;
  churnSpec.churn = ChurnSchedule::steady(/*epochs=*/1, /*rate=*/0.0);
  ASSERT_TRUE(churnSpec.churn.enabled());

  ExperimentRunner runner(2);
  const ExperimentSummary a = runner.run(staticSpec);
  const ExperimentSummary b = runner.run(churnSpec);
  EXPECT_EQ(a.combinedFingerprint, b.combinedFingerprint);
  ASSERT_EQ(a.perTrial.size(), b.perTrial.size());
  for (std::size_t i = 0; i < a.perTrial.size(); ++i) {
    EXPECT_EQ(a.perTrial[i].resultFingerprint, b.perTrial[i].resultFingerprint) << "trial " << i;
    EXPECT_EQ(a.perTrial[i].totalRounds, b.perTrial[i].totalRounds);
    EXPECT_EQ(a.perTrial[i].totalMessages, b.perTrial[i].totalMessages);
    EXPECT_EQ(a.perTrial[i].totalBits, b.perTrial[i].totalBits);
    EXPECT_DOUBLE_EQ(a.perTrial[i].quality.fracDecided, b.perTrial[i].quality.fracDecided);
  }
}

TEST(EpochRunner, ZeroRateMultiEpochKeepsEpochOneStatic) {
  // With nonzero epochs but zero rates, epoch 1's recount must still equal
  // the static run exactly (later epochs fork fresh protocol streams).
  const ScenarioSpec staticSpec = staticPipelineSpec();
  const TrialOutcome staticOutcome = ExperimentRunner::runTrial(staticSpec, 3);

  ScenarioSpec churnSpec = staticSpec;
  churnSpec.churn = ChurnSchedule::steady(/*epochs=*/3, /*rate=*/0.0);
  const ChurnTrialResult detailed = runChurnTrialDetailed(churnSpec, 3);
  ASSERT_EQ(detailed.epochs.size(), 3u);
  EXPECT_EQ(detailed.epochs[0].fingerprint, staticOutcome.resultFingerprint);
  EXPECT_EQ(detailed.epochs[0].rounds, staticOutcome.totalRounds);
  // No events anywhere: membership is frozen.
  for (const EpochReport& e : detailed.epochs) {
    EXPECT_EQ(e.liveN, 128u);
    EXPECT_EQ(e.joins + e.leaves + e.rewires, 0u);
  }
}

TEST(EpochRunner, ChurnTrialIsAPureFunctionOfSpecAndIndex) {
  ScenarioSpec spec = staticPipelineSpec();
  spec.churn = ChurnSchedule::steady(/*epochs=*/4, /*rate=*/0.06);
  const ChurnTrialResult a = runChurnTrialDetailed(spec, 5);
  const ChurnTrialResult b = runChurnTrialDetailed(spec, 5);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].liveN, b.epochs[e].liveN);
    EXPECT_EQ(a.epochs[e].joins, b.epochs[e].joins);
    EXPECT_EQ(a.epochs[e].leaves, b.epochs[e].leaves);
    EXPECT_EQ(a.epochs[e].fingerprint, b.epochs[e].fingerprint);
    EXPECT_DOUBLE_EQ(a.epochs[e].spectralGap, b.epochs[e].spectralGap);
  }
  EXPECT_EQ(a.outcome.resultFingerprint, b.outcome.resultFingerprint);
  // Different trials take different trajectories.
  const ChurnTrialResult c = runChurnTrialDetailed(spec, 6);
  EXPECT_NE(a.outcome.resultFingerprint, c.outcome.resultFingerprint);
}

TEST(EpochRunner, NonzeroChurnScenarioIsThreadCountInvariant) {
  // The T10-shaped acceptance row: a nonzero-churn 48-trial scenario must be
  // bit-identical at 1, 2 and 8 threads (every epoch stream forks from
  // (masterSeed, trial, epoch), never from worker scheduling).
  ScenarioSpec spec;
  spec.name = "t10-row-invariance";
  spec.graph = {GraphKind::Hnd, 96, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Pipeline;
  spec.pipelineParams.agreement.initialOnesFraction = 0.7;
  spec.pipelineParams.agreement.walkLengthFactor = 0.5;
  spec.pipelineParams.estimateSafetyFactor = 1.5;
  spec.pipelineParams.countingLimits.maxPhase = 8;
  spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::steady(/*epochs=*/4, /*rate=*/0.08, /*recountEvery=*/2);
  spec.trials = 48;
  spec.masterSeed = 0x10c4;

  ExperimentSummary byThreads[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    ExperimentRunner runner(counts[t]);
    byThreads[t] = runner.run(spec);
  }
  ASSERT_EQ(byThreads[0].perTrial.size(), 48u);
  for (int t = 1; t < 3; ++t) {
    EXPECT_EQ(byThreads[0].combinedFingerprint, byThreads[t].combinedFingerprint)
        << "churn scenario diverged at " << counts[t] << " threads";
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_EQ(byThreads[0].perTrial[i].resultFingerprint,
                byThreads[t].perTrial[i].resultFingerprint)
          << "trial " << i << " diverged at " << counts[t] << " threads";
    }
  }
  // The churn extras made it through aggregation, and churn actually happened.
  ASSERT_EQ(byThreads[0].extras.size(), static_cast<std::size_t>(kChurnExtraSlots));
  EXPECT_GT(byThreads[0].extras[kChurnJoins].mean + byThreads[0].extras[kChurnLeaves].mean, 0.0);
  EXPECT_DOUBLE_EQ(byThreads[0].extras[kChurnEpochs].mean, 4.0);
  EXPECT_DOUBLE_EQ(byThreads[0].extras[kChurnRecounts].mean, 2.0);  // cadence 2 over 4 epochs
}

TEST(EpochRunner, StalenessTracksGrowthBetweenRecounts) {
  // Flash crowd at epoch 3 with recounts only at epochs 1 and 5: the stale
  // estimate must drift away from ln n(t) right after the spike, then snap
  // back once the network recounts.
  ScenarioSpec spec;
  spec.name = "staleness";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::Beacon;
  spec.beaconLimits.maxPhase = 10;
  spec.beaconLimits.maxTotalRounds = 20'000;
  spec.churn = ChurnSchedule::flashCrowd(/*epochs=*/5, /*fraction=*/6.0, /*atEpoch=*/3,
                                         /*recountEvery=*/4);
  spec.masterSeed = 0x57a1;

  const ChurnTrialResult r = runChurnTrialDetailed(spec, 0);
  ASSERT_EQ(r.epochs.size(), 5u);
  EXPECT_TRUE(r.epochs[0].recounted);
  EXPECT_FALSE(r.epochs[2].recounted);
  EXPECT_TRUE(r.epochs[4].recounted);
  EXPECT_GT(r.epochs[2].liveN, 6 * 128u);  // the crowd arrived
  // Post-spike staleness exceeds the pre-spike epochs' and the post-recount
  // epoch improves on it.
  EXPECT_GT(r.epochs[2].staleness, r.epochs[1].staleness);
  EXPECT_LT(r.epochs[4].staleness, r.epochs[3].staleness);
  // Drift is zero exactly at recount epochs, jumps with the crowd, and the
  // recount re-anchors it.
  EXPECT_DOUBLE_EQ(r.epochs[0].drift, 0.0);
  EXPECT_DOUBLE_EQ(r.epochs[4].drift, 0.0);
  EXPECT_GT(r.epochs[2].drift, 0.1);
  EXPECT_GE(r.outcome.extra[kChurnMaxDrift], r.epochs[2].drift);
  EXPECT_DOUBLE_EQ(r.outcome.extra[kChurnMaxStaleness],
                   std::max({r.epochs[0].staleness, r.epochs[1].staleness, r.epochs[2].staleness,
                             r.epochs[3].staleness, r.epochs[4].staleness}));
}

TEST(EpochRunner, ByzantineChurnComposesWithWalkAdversary) {
  // The adversarial churn model rides the same declarative path as the walk
  // adversary: Byzantine rejoiners keep answering as the selected strategy.
  ScenarioSpec spec;
  spec.name = "byz-churn-agreement";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 8;
  spec.protocol = ProtocolKind::Agreement;
  spec.agreementParams.initialOnesFraction = 0.7;
  spec.agreementParams.attack = AgreementAttackProfile::dropper();
  spec.churn = ChurnSchedule::byzantine(/*epochs=*/5, /*honestRate=*/0.04, /*rejoinBoost=*/2.0);
  spec.trials = 6;
  spec.masterSeed = 0xb12c;

  ExperimentRunner runner(2);
  const ExperimentSummary s = runner.run(spec);
  ASSERT_EQ(s.extras.size(), static_cast<std::size_t>(kChurnExtraSlots));
  EXPECT_GT(s.extras[kChurnByzInflation].mean, 1.0);  // the budget inflated
  EXPECT_GT(s.extras[kChurnFinalByz].mean, 8.0);
  EXPECT_GT(s.extras[kChurnLastAgree].mean, 0.0);  // agreement still ran on the last epoch
}

TEST(EpochRunner, ShrinkingOverlayClampsConfiguredFocusNodes) {
  // A spanning-tree scenario whose configured root index outlives the
  // membership that backed it: the per-epoch spec must clamp root (and
  // victim) into the compacted index range instead of throwing.
  ScenarioSpec spec;
  spec.name = "shrinking-tree";
  spec.graph = {GraphKind::Hnd, 128, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.placement.victim = 120;
  spec.protocol = ProtocolKind::SpanningTree;
  spec.treeParams.root = 120;
  spec.churn = ChurnSchedule::massExodus(/*epochs=*/3, /*fraction=*/0.6, /*atEpoch=*/2);
  spec.masterSeed = 0x7ee;

  const ChurnTrialResult r = runChurnTrialDetailed(spec, 0);
  ASSERT_EQ(r.epochs.size(), 3u);
  EXPECT_LT(r.epochs[1].liveN, 90u);  // the exodus actually shrank past the root
  EXPECT_GT(r.outcome.quality.fracDecided, 0.0);
}

TEST(EpochRunner, FiedlerWarmStartMatchesFreshProbesWithinTolerance) {
  // The warm-started spectral probe (epoch e seeds from epoch e-1's Fiedler
  // vector, carried by global id, at reduced depth) must reproduce the
  // fresh full-depth gap values within tolerance while spending far fewer
  // power iterations — the ROADMAP perf lever.
  ScenarioSpec spec;
  spec.name = "gap-warm-start";
  spec.graph = {GraphKind::Hnd, 256, 8, 0.1};
  spec.placement.kind = Placement::Random;
  spec.placement.count = 4;
  spec.protocol = ProtocolKind::GeometricMax;  // cheap recount; the probe is what's tested
  spec.churn = ChurnSchedule::steady(/*epochs=*/6, /*rate=*/0.10);
  spec.masterSeed = 0x9a9;

  ScenarioSpec cold = spec;
  cold.churn.gapWarmStart = false;

  for (std::uint32_t trial : {0u, 1u, 2u}) {
    const ChurnTrialResult warm = runChurnTrialDetailed(spec, trial);
    const ChurnTrialResult fresh = runChurnTrialDetailed(cold, trial);
    ASSERT_EQ(warm.epochs.size(), fresh.epochs.size());
    // Epoch 1 has no carry: both paths probe cold at full depth, identically.
    EXPECT_DOUBLE_EQ(warm.epochs[0].spectralGap, fresh.epochs[0].spectralGap);
    for (std::size_t e = 1; e < warm.epochs.size(); ++e) {
      EXPECT_NEAR(warm.epochs[e].spectralGap, fresh.epochs[e].spectralGap, 0.05)
          << "epoch " << e + 1 << " trial " << trial;
    }
    // 32 + 5*12 warm vs 6*32 fresh: the probe savings are reported.
    EXPECT_DOUBLE_EQ(warm.outcome.extra[kChurnGapProbeIters], 92.0);
    EXPECT_DOUBLE_EQ(fresh.outcome.extra[kChurnGapProbeIters], 192.0);
    // The protocol runs are untouched by the probe mode.
    EXPECT_EQ(warm.outcome.resultFingerprint, fresh.outcome.resultFingerprint);
  }
}

TEST(DynamicOverlay, MassDepartureWaveKeepsInvariantsAtScale) {
  // The incidence-indexed leave() path under the load it was built for: a
  // half-membership departure wave (the T10 mass-exodus shape) followed by a
  // full invariant audit. The per-departure edge-list sweep this replaced was
  // quadratic here.
  DynamicOverlay overlay = makeOverlay(2048, 8, 26, 32);
  Rng rng(90);
  std::size_t departed = 0;
  for (std::uint64_t id = 0; id < 2048; id += 2) departed += overlay.leave(id, rng) ? 1 : 0;
  EXPECT_EQ(departed, 1024u);
  overlay.repairToRegular(rng);
  expectRegularInvariants(overlay);
  // Join back into the thinned overlay: the index must survive both
  // directions of churn.
  for (int k = 0; k < 64; ++k) overlay.join(k % 3 == 0, rng);
  for (int k = 0; k < 200; ++k) overlay.rewire(rng);
  overlay.repairToRegular(rng);
  expectRegularInvariants(overlay);
}

TEST(EpochRunner, ExtraSlotNamesCoverEverySlot) {
  for (std::size_t s = 0; s < kChurnExtraSlots; ++s) {
    EXPECT_STRNE(churnExtraSlotName(s), "?") << "slot " << s;
  }
  EXPECT_STREQ(churnExtraSlotName(kChurnMeanStaleness), "meanStaleness");
  EXPECT_STREQ(churnExtraSlotName(kChurnExtraSlots), "?");
}

}  // namespace
}  // namespace bzc
