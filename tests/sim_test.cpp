// Tests for the simulation substrate: ID space, Byzantine sets, placements,
// metrics, and the quality-evaluation helpers.
#include <gtest/gtest.h>

#include <set>

#include "counting/common.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "sim/byzantine.hpp"
#include "sim/ids.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(IdSpace, DistinctIdsAndLookup) {
  Rng rng(1);
  const IdSpace ids(500, rng);
  std::set<PublicId> seen;
  for (NodeId u = 0; u < 500; ++u) {
    const PublicId p = ids.publicId(u);
    EXPECT_TRUE(seen.insert(p).second);
    EXPECT_EQ(ids.lookup(p), u);
  }
  EXPECT_EQ(ids.lookup(0xdeadbeefcafef00dULL), kNoNode);
  EXPECT_EQ(IdSpace::bitsPerId(), 64u);
}

TEST(IdSpace, DeterministicPerSeed) {
  Rng a(9);
  Rng b(9);
  const IdSpace x(64, a);
  const IdSpace y(64, b);
  for (NodeId u = 0; u < 64; ++u) EXPECT_EQ(x.publicId(u), y.publicId(u));
}

TEST(ByzantineSet, MembershipAndHonest) {
  const ByzantineSet byz(10, {2, 5, 7});
  EXPECT_TRUE(byz.contains(2));
  EXPECT_FALSE(byz.contains(3));
  EXPECT_EQ(byz.count(), 3u);
  const auto honest = byz.honestNodes();
  EXPECT_EQ(honest.size(), 7u);
  for (NodeId u : honest) EXPECT_FALSE(byz.contains(u));
}

TEST(ByzantineSet, DuplicateRejected) {
  EXPECT_THROW(ByzantineSet(5, {1, 1}), std::invalid_argument);
  EXPECT_THROW(ByzantineSet(5, {5}), std::invalid_argument);
}

TEST(ByzantineSet, DistanceField) {
  const Graph g = path(7);
  const ByzantineSet byz(7, {0});
  const auto dist = byz.distanceToByzantine(g);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(dist[u], u);
  const ByzantineSet none(7, {});
  const auto inf = none.distanceToByzantine(g);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(inf[u], kUnreachable);
}

TEST(Budget, PaperFormula) {
  EXPECT_EQ(byzantineBudget(1024, 0.5), 32u);
  EXPECT_EQ(byzantineBudget(1 << 16, 0.75), 16u);
  EXPECT_THROW((void)byzantineBudget(100, 0.0), std::invalid_argument);
  EXPECT_THROW((void)byzantineBudget(100, 1.0), std::invalid_argument);
}

TEST(Placement, RandomAvoidsVictimAndIsExact) {
  Rng gen(3);
  const Graph g = hnd(100, 4, gen);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 30;
  spec.victim = 42;
  Rng rng(4);
  const auto byz = placeByzantine(g, spec, rng);
  EXPECT_EQ(byz.count(), 30u);
  EXPECT_FALSE(byz.contains(42));
}

TEST(Placement, NonePlacesNothing) {
  Rng gen(5);
  const Graph g = hnd(50, 4, gen);
  PlacementSpec spec;
  spec.kind = Placement::None;
  Rng rng(6);
  EXPECT_EQ(placeByzantine(g, spec, rng).count(), 0u);
}

TEST(Placement, BallPacksNearestToVictim) {
  const Graph g = path(20);
  PlacementSpec spec;
  spec.kind = Placement::Ball;
  spec.count = 4;
  spec.victim = 10;
  Rng rng(7);
  const auto byz = placeByzantine(g, spec, rng);
  EXPECT_EQ(byz.count(), 4u);
  // On a path the 4 nearest nodes to 10 are {8, 9, 11, 12}.
  for (NodeId u : {9u, 11u, 8u, 12u}) EXPECT_TRUE(byz.contains(u));
  EXPECT_FALSE(byz.contains(10));
}

TEST(Placement, SurroundOccupiesMoatLayer) {
  Rng gen(8);
  const Graph g = hnd(256, 6, gen);
  PlacementSpec spec;
  spec.kind = Placement::Surround;
  spec.victim = 17;
  spec.moatRadius = 1;
  const auto layerDist = bfsDistances(g, 17);
  std::size_t layer2 = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) layer2 += layerDist[u] == 2 ? 1 : 0;
  spec.count = layer2;  // enough budget to seal the moat
  Rng rng(9);
  const auto byz = placeByzantine(g, spec, rng);
  // Every distance-2 node is Byzantine: all paths out of B(victim,1) are cut.
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (layerDist[u] == 2) {
      EXPECT_TRUE(byz.contains(u)) << u;
    }
    if (layerDist[u] <= 1) {
      EXPECT_FALSE(byz.contains(u)) << u;
    }
  }
}

TEST(Placement, SpreadCoversGraph) {
  Rng gen(10);
  const Graph g = hnd(200, 6, gen);
  PlacementSpec spec;
  spec.kind = Placement::Spread;
  spec.count = 20;
  Rng rng(11);
  const auto byz = placeByzantine(g, spec, rng);
  EXPECT_EQ(byz.count(), 20u);
  // Spread placement should leave no node very far from a Byzantine node.
  const auto dist = byz.distanceToByzantine(g);
  for (NodeId u = 0; u < g.numNodes(); ++u) EXPECT_LE(dist[u], 4u);
}

TEST(Placement, CountCappedAtNMinusOne) {
  const Graph g = ring(5);
  PlacementSpec spec;
  spec.kind = Placement::Random;
  spec.count = 50;
  Rng rng(12);
  EXPECT_EQ(placeByzantine(g, spec, rng).count(), 4u);
}

TEST(MessageMeter, RecordsAndAggregates) {
  MessageMeter meter(3);
  meter.record(0, 100);
  meter.record(0, 50);
  meter.recordBroadcast(1, 20, 4);
  EXPECT_EQ(meter.maxMessageBits(0), 100u);
  EXPECT_EQ(meter.bitsSent(0), 150u);
  EXPECT_EQ(meter.messagesSent(0), 2u);
  EXPECT_EQ(meter.maxMessageBits(1), 20u);
  EXPECT_EQ(meter.bitsSent(1), 80u);
  EXPECT_EQ(meter.messagesSent(1), 4u);
  EXPECT_EQ(meter.totalMessages(), 6u);
  EXPECT_EQ(meter.totalBits(), 230u);
  EXPECT_EQ(meter.maxMessageBits(2), 0u);
}

TEST(MessageMeter, FractionWithinAndQuantile) {
  MessageMeter meter(4);
  meter.record(0, 10);
  meter.record(1, 100);
  meter.record(2, 1000);
  const std::vector<NodeId> nodes = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(meter.fractionWithin(nodes, 100), 0.75);
  EXPECT_DOUBLE_EQ(meter.fractionWithin(nodes, 5), 0.25);  // node 3 sent nothing
  EXPECT_DOUBLE_EQ(meter.maxBitsQuantile(nodes, 1.0), 1000.0);
}

TEST(Quality, EvaluatesWindow) {
  const NodeId n = 100;
  ByzantineSet byz(n, {0, 1});
  CountingResult result;
  result.decisions.assign(n, {});
  const double logN = logSize(n);  // ~4.6
  for (NodeId u = 2; u < n; ++u) {
    result.decisions[u].decided = true;
    result.decisions[u].round = 10;
    result.decisions[u].estimate = (u < 50) ? logN : 10.0 * logN;  // half inside
  }
  QualityWindow window{0.5, 2.0};
  const auto q = evaluateQuality(result, byz, n, window);
  EXPECT_EQ(q.honestCount, 98u);
  EXPECT_EQ(q.decidedCount, 98u);
  EXPECT_EQ(q.withinWindowCount, 48u);  // nodes 2..49
  EXPECT_NEAR(q.fracWithinWindow, 48.0 / 98.0, 1e-12);
  EXPECT_EQ(q.maxDecisionRound, 10u);
  EXPECT_NEAR(q.minRatio, 1.0, 1e-12);
  EXPECT_NEAR(q.maxRatio, 10.0, 1e-12);
}

TEST(Quality, UndecidedCounted) {
  const NodeId n = 10;
  ByzantineSet byz(n, {});
  CountingResult result;
  result.decisions.assign(n, {});
  result.decisions[3].decided = true;
  result.decisions[3].estimate = logSize(n);
  const auto q = evaluateQuality(result, byz, n, {0.5, 2.0});
  EXPECT_EQ(q.decidedCount, 1u);
  EXPECT_NEAR(q.fracDecided, 0.1, 1e-12);
  EXPECT_EQ(q.withinWindowCount, 1u);
}

}  // namespace
}  // namespace bzc
