// Tests for the vertex-expansion toolkit: exact enumeration vs the sweep and
// sampling estimators, spectral gap ordering across graph families.
#include <gtest/gtest.h>

#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace bzc {
namespace {

TEST(OutNeighborhood, SimpleCases) {
  const Graph g = path(5);  // 0-1-2-3-4
  EXPECT_EQ(outNeighborhoodSize(g, {0}), 1u);
  EXPECT_EQ(outNeighborhoodSize(g, {2}), 2u);
  EXPECT_EQ(outNeighborhoodSize(g, {0, 1, 2}), 1u);
  EXPECT_EQ(outNeighborhoodSize(g, {0, 2, 4}), 2u);  // Out = {1, 3}
}

TEST(OutNeighborhood, ExpansionOfSet) {
  const Graph g = star(9);
  EXPECT_DOUBLE_EQ(vertexExpansionOfSet(g, {0}), 8.0);
  EXPECT_DOUBLE_EQ(vertexExpansionOfSet(g, {1}), 1.0);
  EXPECT_DOUBLE_EQ(vertexExpansionOfSet(g, {1, 2, 3, 4}), 0.25);  // Out = {0}
}

TEST(ExactExpansion, CompleteGraph) {
  // In K_n, every set of size s <= n/2 has Out of size n-s; the minimum over
  // s is at s = n/2.
  const Graph g = complete(8);
  EXPECT_DOUBLE_EQ(exactVertexExpansion(g), 1.0);  // (8-4)/4
}

TEST(ExactExpansion, RingIsTwoOverHalf) {
  // The worst set in a ring is a contiguous arc of n/2 nodes: Out = 2.
  const Graph g = ring(12);
  EXPECT_DOUBLE_EQ(exactVertexExpansion(g), 2.0 / 6.0);
}

TEST(ExactExpansion, StarWorstSetIsLeaves) {
  const Graph g = star(9);  // 8 leaves; worst: 4 leaves, Out = {centre}
  EXPECT_DOUBLE_EQ(exactVertexExpansion(g), 0.25);
}

TEST(ExactExpansion, SizeLimits) {
  EXPECT_THROW((void)exactVertexExpansion(ring(25)), std::invalid_argument);
}

TEST(BallProfile, PathProfileShrinks) {
  const Graph g = path(20);
  const auto profile = ballExpansionProfile(g, 0, 5);
  // From an endpoint: ball j has j+1 nodes, boundary 1 node.
  for (std::uint32_t j = 0; j <= 5; ++j) {
    EXPECT_NEAR(profile[j], 1.0 / (j + 1.0), 1e-12);
  }
}

TEST(BallProfile, ZeroAfterExhaustion) {
  const Graph g = ring(6);
  const auto profile = ballExpansionProfile(g, 0, 5);
  EXPECT_DOUBLE_EQ(profile[4], 0.0);  // ball(0,3) is everything
}

TEST(SweepCut, FindsPlantedBridge) {
  // Two K_6 joined by a single edge: the sweep must find the bridge.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = u + 1; v < 6; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(u + 6, v + 6);
    }
  edges.emplace_back(0, 6);
  const Graph g(12, edges);
  Rng rng(1);
  const SweepCut cut = fiedlerSweep(g, 200, rng);
  EXPECT_EQ(cut.smallSide, 6u);
  EXPECT_EQ(cut.outSize, 1u);
  EXPECT_NEAR(cut.expansion, 1.0 / 6.0, 1e-9);
}

TEST(SweepCut, UpperBoundsExactExpansion) {
  Rng rng(2);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng gen(100 + seed);
    const Graph g = hnd(16, 4, gen);
    const double exact = exactVertexExpansion(g);
    Rng sweepRng(seed);
    const SweepCut cut = fiedlerSweep(g, 300, sweepRng);
    EXPECT_GE(cut.expansion + 1e-9, exact);
  }
}

TEST(SweepCut, MaxPrefixRestricts) {
  const Graph g = ring(10);
  std::vector<NodeId> order = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const SweepCut unrestricted = sweepCutByOrder(g, order);
  EXPECT_EQ(unrestricted.smallSide, 5u);  // arc of 5, Out = 2
  const SweepCut restricted = sweepCutByOrder(g, order, 2);
  EXPECT_LE(restricted.smallSide, 2u);
  EXPECT_NEAR(restricted.expansion, 1.0, 1e-9);  // arc of 2, Out = 2
}

TEST(SweepCut, PartialOrderAllowed) {
  const Graph g = ring(10);
  std::vector<NodeId> partial = {0, 1, 2};
  const SweepCut cut = sweepCutByOrder(g, partial, 3);
  EXPECT_GE(cut.smallSide, 1u);
  EXPECT_LE(cut.smallSide, 3u);
}

TEST(SpectralGap, ExpanderBeatsRingAndBarbell) {
  Rng genA(3);
  const Graph expander = hnd(128, 8, genA);
  const Graph circle = ring(128);
  Rng genB(4);
  const Graph bridged = barbell(64, 8, 1, genB);
  Rng r1(5);
  Rng r2(6);
  Rng r3(7);
  const double gapExpander = spectralGapEstimate(expander, 300, r1);
  const double gapRing = spectralGapEstimate(circle, 300, r2);
  const double gapBarbell = spectralGapEstimate(bridged, 300, r3);
  EXPECT_GT(gapExpander, 5.0 * gapRing);
  EXPECT_GT(gapExpander, 5.0 * gapBarbell);
}

TEST(SampledUpperBound, RingFindsArc) {
  const Graph g = ring(64);
  Rng rng(8);
  const double bound = sampledExpansionUpperBound(g, 200, rng);
  // Connected samples on a ring are arcs with Out = 2; a long arc gives a
  // small ratio.
  EXPECT_LT(bound, 0.2);
}

TEST(SampledUpperBound, ExpanderStaysLarge) {
  Rng gen(9);
  const Graph g = hnd(128, 8, gen);
  Rng rng(10);
  EXPECT_GT(sampledExpansionUpperBound(g, 100, rng), 0.3);
}

TEST(Fiedler, WarmStartConverges) {
  Rng gen(11);
  const Graph g = hnd(64, 6, gen);
  Rng r1(12);
  const auto cold = fiedlerVector(g, 300, r1);
  Rng r2(13);
  auto warm = fiedlerVector(g, 50, r2);
  Rng r3(14);
  warm = fiedlerVector(g, 100, r3, &warm);
  // Rayleigh quotients should agree (vectors may differ by sign).
  double dot = 0;
  for (std::size_t i = 0; i < warm.size(); ++i) dot += warm[i] * cold[i];
  EXPECT_GT(std::abs(dot), 0.9);
}

// Property sweep: h(H(n,d)) estimates stay comfortably above ring-level
// across sizes — the expansion assumption the algorithms rest on (T9 states
// the full audit).
class ExpansionSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(ExpansionSweep, HndExpansionBounded) {
  const NodeId n = GetParam();
  Rng gen(20 + n);
  const Graph g = hnd(n, 8, gen);
  Rng rng(21);
  const SweepCut cut = fiedlerSweep(g, 150, rng);
  EXPECT_GT(cut.expansion, 0.25) << "sweep found a sparse cut in H(" << n << ",8)";
  Rng rng2(22);
  EXPECT_GT(sampledExpansionUpperBound(g, 50, rng2), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExpansionSweep, ::testing::Values<NodeId>(64, 128, 256, 512));

}  // namespace
}  // namespace bzc
