#!/usr/bin/env python3
"""Validate, summarize and diff BZC_TRACE JSONL trace files (DESIGN.md §12).

Usage:
  trace_summary.py TRACE.jsonl                 # per-trial summary + round table
  trace_summary.py TRACE.jsonl --validate      # schema + reconciliation checks
  trace_summary.py TRACE.jsonl --validate-both OTHER   # validate two files, no diff
  trace_summary.py TRACE.jsonl --diff OTHER    # compare deterministic projections
  trace_summary.py TRACE.jsonl --rounds 40     # widen the per-round table

How many trials appear in a trace: the runner samples the first W trials of
each scenario, where W is ScenarioSpec::traceTrials when set (> 0), else the
process-wide BZC_TRACE_TRIALS (default 1). A spec-level width therefore wins
over the environment for that scenario only — two traces of the same binary
can legitimately disagree on trial counts if one run set BZC_TRACE_TRIALS and
the scenario pins its own width. --diff requires identical trial sets; use
--validate-both when you only need both files to be well-formed (e.g. traces
taken at different widths, where a projection diff is meaningless).

The trace format is one JSON object per line. Per sampled trial:

  {"type":"trial","scenario":...,"trial":N}        header
  {"type":"round", ...}                            one per engine round
  {"type":"span"|"counter"|"mark", ...}            protocol probes
  {"type":"end","events":E,"rounds":R,"messages":M,"bits":B}

Wall-clock fields (ts, dur, recvNs, mergeNs, scatterNs) are the only
nondeterministic payload; --diff strips them (the "deterministic projection")
before comparing, which is exactly the invariant the runtime promises: the
projection is a pure function of the trial at any thread/shard/pipeline-depth
count. Exit status: 0 ok, 1 validation failure or projection mismatch.
"""

import argparse
import json
import sys
from pathlib import Path

# Required keys per event type; wall-clock keys listed separately so the
# deterministic projection can strip them uniformly.
SCHEMA = {
    "trial": {"scenario", "trial"},
    "round": {"round", "sends", "touched", "messages", "bits", "shards", "idle", "lane"},
    "span": {"name", "round", "lane"},
    "counter": {"name", "round", "lane", "value"},
    "mark": {"name", "round", "lane", "value"},
    "end": {"scenario", "trial", "events", "rounds", "messages", "bits"},
}
WALL_CLOCK_KEYS = {"ts", "dur", "recvNs", "mergeNs", "scatterNs"}


def parse(path: Path):
    """Yields (lineno, obj) for every JSON line; raises on parse failure."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}:{lineno}: not JSON ({e})")
        yield lineno, obj


def split_trials(path: Path):
    """[(header, [events], end)] per trial, in file order. Validates pairing."""
    trials, header, events = [], None, []
    for lineno, obj in parse(path):
        kind = obj.get("type")
        if kind == "trial":
            if header is not None:
                raise ValueError(f"{path}:{lineno}: trial header inside open trial")
            header, events = obj, []
        elif kind == "end":
            if header is None:
                raise ValueError(f"{path}:{lineno}: end line without trial header")
            trials.append((header, events, obj))
            header = None
        else:
            if header is None:
                raise ValueError(f"{path}:{lineno}: event before any trial header")
            events.append(obj)
    if header is not None:
        raise ValueError(f"{path}: unterminated trial {header.get('scenario')}#"
                         f"{header.get('trial')}")
    return trials


def validate(path: Path) -> list:
    """Returns a list of problem strings (empty = valid)."""
    problems = []
    try:
        trials = split_trials(path)
    except ValueError as e:
        return [str(e)]
    if not trials:
        problems.append(f"{path}: no trials (tracing off, or the run sampled 0 trials)")
    for header, events, end in trials:
        tag = f"{header.get('scenario')}#{header.get('trial')}"
        rounds = messages = bits = 0
        last_round_per_lane = {}
        for e in events:
            kind = e.get("type")
            required = SCHEMA.get(kind)
            if required is None:
                problems.append(f"{tag}: unknown event type {kind!r}")
                continue
            missing = required - e.keys()
            if missing:
                problems.append(f"{tag}: {kind} event missing {sorted(missing)}")
                continue
            if kind == "round":
                rounds += 1
                messages += e["messages"]
                bits += e["bits"]
                lane = e["lane"]
                prev = last_round_per_lane.get(lane)
                # Within one engine the round counter only advances; a lane
                # may host several engines back to back (pipeline = counting
                # then agreement; each epoch recount), and each restart
                # re-enters at round 1. Anything else going backward is
                # corruption.
                if prev is not None and e["round"] <= prev and e["round"] != 1:
                    problems.append(
                        f"{tag}: lane {lane} round went {prev} -> {e['round']}")
                last_round_per_lane[lane] = e["round"]
                lanes = e.get("lanes")
                if lanes is not None and e["shards"] > 1 and len(lanes) != e["shards"]:
                    problems.append(
                        f"{tag}: round {e['round']} lanes[{len(lanes)}] != "
                        f"shards {e['shards']}")
        if end["scenario"] != header["scenario"] or end["trial"] != header["trial"]:
            problems.append(f"{tag}: end line names {end['scenario']}#{end['trial']}")
        for key, got in (("events", len(events)), ("rounds", rounds),
                         ("messages", messages), ("bits", bits)):
            if end[key] != got:
                problems.append(f"{tag}: end.{key}={end[key]} but events sum to {got}")
    return problems


def projection(trials):
    """Deterministic projection: events minus wall-clock keys, per trial."""
    out = []
    for header, events, end in trials:
        proj = [{k: v for k, v in e.items() if k not in WALL_CLOCK_KEYS}
                for e in events]
        out.append(((header["scenario"], header["trial"]), proj, end))
    return out


def diff(path_a: Path, path_b: Path) -> list:
    a = projection(split_trials(path_a))
    b = projection(split_trials(path_b))
    problems = []
    keys_a = [t[0] for t in a]
    keys_b = [t[0] for t in b]
    if keys_a != keys_b:
        problems.append(f"trial sets differ: {keys_a} vs {keys_b}")
        return problems
    for (key, ea, enda), (_, eb, endb) in zip(a, b):
        tag = f"{key[0]}#{key[1]}"
        if len(ea) != len(eb):
            problems.append(f"{tag}: {len(ea)} vs {len(eb)} events")
        for i, (x, y) in enumerate(zip(ea, eb)):
            if x != y:
                problems.append(f"{tag}: first divergence at event {i}:\n  a: {x}\n  b: {y}")
                break
        for key2 in ("rounds", "messages", "bits"):
            if enda[key2] != endb[key2]:
                problems.append(f"{tag}: end.{key2} {enda[key2]} vs {endb[key2]}")
    return problems


def summarize(path: Path, max_rounds: int):
    trials = split_trials(path)
    print(f"# {path}: {len(trials)} traced trial(s)\n")
    for header, events, end in trials:
        tag = f"{header['scenario']}#{header['trial']}"
        print(f"## {tag}: {end['rounds']} rounds, {end['messages']} messages, "
              f"{end['bits']} bits, {end['events']} events")
        spans, counters, marks = {}, {}, {}
        for e in events:
            if e["type"] == "span":
                cnt, total = spans.get(e["name"], (0, 0))
                spans[e["name"]] = (cnt + 1, total + e.get("dur", 0))
            elif e["type"] == "counter":
                counters[e["name"]] = e["value"]  # last value wins
            elif e["type"] == "mark":
                marks[e["name"]] = marks.get(e["name"], 0) + 1
        if spans:
            print("  spans (count, total ms):")
            for name, (cnt, total) in sorted(spans.items()):
                print(f"    {name:28s} {cnt:6d}  {total / 1e6:10.3f}")
        if counters:
            print("  counters (final value):")
            for name, value in sorted(counters.items()):
                print(f"    {name:28s} {value:g}")
        if marks:
            print("  marks (count): " +
                  ", ".join(f"{k}={v}" for k, v in sorted(marks.items())))
        rounds = [e for e in events if e["type"] == "round"]
        if rounds:
            shown = rounds[:max_rounds]
            print(f"  rounds (first {len(shown)} of {len(rounds)}):")
            print(f"    {'round':>7} {'lane':>4} {'sends':>8} {'touched':>8} "
                  f"{'messages':>10} {'bits':>12} {'idle':>4}")
            for r in shown:
                print(f"    {r['round']:>7} {r['lane']:>4} {r['sends']:>8} "
                      f"{r['touched']:>8} {r['messages']:>10} {r['bits']:>12} "
                      f"{r['idle']:>4}")
        print()


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", type=Path)
    ap.add_argument("--validate", action="store_true",
                    help="schema + end-line reconciliation checks only")
    ap.add_argument("--validate-both", type=Path, metavar="OTHER",
                    help="validate TRACE and OTHER without diffing them (use when "
                         "trial widths differ: BZC_TRACE_TRIALS vs a scenario's "
                         "own traceTrials)")
    ap.add_argument("--diff", type=Path, metavar="OTHER",
                    help="compare deterministic projections of two traces (both "
                         "are validated first; trial sets must match exactly)")
    ap.add_argument("--rounds", type=int, default=20,
                    help="rows in the per-round table (default 20)")
    args = ap.parse_args()

    if not args.trace.exists():
        print(f"error: {args.trace} not found", file=sys.stderr)
        return 1

    if args.validate:
        problems = validate(args.trace)
        if problems:
            for p in problems:
                print(f"INVALID: {p}", file=sys.stderr)
            return 1
        trials = split_trials(args.trace)
        total = sum(end["events"] for _, _, end in trials)
        print(f"OK: {args.trace} — {len(trials)} trial(s), {total} events, "
              f"schema and totals reconcile")
        return 0

    if args.validate_both is not None:
        problems = []
        for path in (args.trace, args.validate_both):
            if not path.exists():
                problems.append(f"{path} not found")
            else:
                problems += validate(path)
        if problems:
            for p in problems:
                print(f"INVALID: {p}", file=sys.stderr)
            return 1
        print(f"OK: {args.trace} and {args.validate_both} both validate "
              f"(projections not compared)")
        return 0

    if args.diff is not None:
        problems = validate(args.trace) + validate(args.diff)
        if not problems:
            problems = diff(args.trace, args.diff)
        if problems:
            for p in problems:
                print(f"DIFF: {p}", file=sys.stderr)
            return 1
        print(f"OK: deterministic projections of {args.trace} and {args.diff} "
              f"are identical")
        return 0

    summarize(args.trace, args.rounds)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # | head et al. closing stdout is not an error
        sys.exit(0)
