#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json trajectories (JSON lines, one
ExperimentSummary per line, as emitted by the benches under BZC_OUTPUT=json).

Usage: diff_bench_json.py PREV_DIR CURR_DIR [--strict]

Scenario rows are keyed by summary name. Master seeds and trial counts are
fixed per bench, so with unchanged code every metric reproduces exactly —
any delta is a real behaviour change (intended or not) in the commit range
between the two runs. The report is markdown (suitable for
$GITHUB_STEP_SUMMARY). Exit status is 0 unless --strict is given and a
quality metric regressed beyond --quality-drop (default 0.05): the scheduled
workflow runs non-strict so an intentional protocol change does not leave the
cron red until the next run re-baselines.
"""

import argparse
import json
import sys
from pathlib import Path

# (json key, pretty name)
KEY_METRICS = [
    ("fracDecided", "frac decided"),
    ("fracWithinWindow", "frac in window"),
    ("totalRounds", "rounds"),
    ("totalMessages", "messages"),
    ("totalBits", "bits"),
]
QUALITY_KEYS = {"fracDecided", "fracWithinWindow"}

# Named extras where *larger* is worse (churn scenarios emit an "extraNames"
# array labelling their positional extras): estimate staleness / drift rising
# between runs is a quality regression even though a fraction-shaped value
# dropping is the usual direction.
LOWER_IS_BETTER_EXTRAS = {"meanStaleness", "maxStaleness", "meanDrift", "maxDrift"}

# wall_ms is machine-load telemetry, not a deterministic metric: two identical
# binaries easily differ by tens of percent on shared CI runners. Treat it as
# lower-is-better but only flag a rise beyond BOTH a relative factor and an
# absolute floor (short rows jitter the hardest in relative terms).
WALL_MS_REL_NOISE = 0.25   # ignore rises under 25%
WALL_MS_ABS_FLOOR = 50.0   # ignore rises under 50 ms either way


def load_dir(path: Path) -> dict:
    """name -> summary dict, from every BENCH_*.json under path."""
    rows = {}
    for f in sorted(path.glob("**/BENCH_*.json")):
        for line in f.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: unparseable line in {f}", file=sys.stderr)
                continue
            rows[row["name"]] = row
    return rows


def fmt(x: float) -> str:
    return f"{x:.6g}"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("prev", type=Path)
    ap.add_argument("curr", type=Path)
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when a quality metric drops beyond --quality-drop")
    ap.add_argument("--quality-drop", type=float, default=0.05)
    args = ap.parse_args()

    prev = load_dir(args.prev) if args.prev.exists() else {}
    curr = load_dir(args.curr)

    if not prev:
        print("## Bench diff\n\nNo previous artifact found — baseline run, nothing to diff.")
        return 0

    changed, added, removed, regressions = [], [], [], []
    for name, row in sorted(curr.items()):
        if name not in prev:
            added.append(name)
            continue
        old = prev[name]
        deltas = []
        # Sharded rows (bench_t12_scale) carry their engine shard count; a
        # changed shard count is a configuration change worth flagging next to
        # the metric deltas, not a regression — fingerprints stay invariant
        # for the pinned scenarios, so metrics moving *with* an unchanged
        # shard count is the signal to scrutinise.
        old_shards = old.get("shards", 1)
        new_shards = row.get("shards", 1)
        if old_shards != new_shards:
            deltas.append(f"shards: {old_shards} → {new_shards} (config change)")
        # Same for the churn epoch-pipeline depth (bench_t13): depth is a pure
        # performance knob with pinned bit-identity, so a depth bump can move
        # wall-clock but never the metrics — flag it as config, not regression.
        old_depth = old.get("pipelineDepth", 1)
        new_depth = row.get("pipelineDepth", 1)
        if old_depth != new_depth:
            deltas.append(f"pipelineDepth: {old_depth} → {new_depth} (config change)")
        # Wall-clock and peak-RSS telemetry (PR 8): reported outside `deltas`
        # so nondeterministic machine noise never marks a scenario "changed",
        # but a wall_ms rise beyond the noise floor still joins the regression
        # list (it gates only under --strict, like the quality metrics).
        a_wall, b_wall = old.get("wall_ms"), row.get("wall_ms")
        if a_wall is not None and b_wall is not None and a_wall > 0:
            rise = b_wall - a_wall
            if rise > WALL_MS_ABS_FLOOR and rise / a_wall > WALL_MS_REL_NOISE:
                regressions.append(
                    f"{name}: wall_ms rose {fmt(a_wall)} → {fmt(b_wall)} "
                    f"({rise / a_wall:+.2%}, noise floor {WALL_MS_REL_NOISE:.0%}/"
                    f"{WALL_MS_ABS_FLOOR:.0f}ms)")
        for key, pretty in KEY_METRICS:
            a = old.get(key, {}).get("mean")
            b = row.get(key, {}).get("mean")
            if a is None or b is None or a == b:
                continue
            rel = (b - a) / abs(a) if a else float("inf")
            deltas.append(f"{pretty}: {fmt(a)} → {fmt(b)} ({rel:+.2%})")
            if key in QUALITY_KEYS and (a - b) > args.quality_drop:
                regressions.append(f"{name}: {pretty} dropped {fmt(a)} → {fmt(b)}")
        # Extras are positional in the JSON (slot meaning is bench-defined;
        # for agreement rows slot 0 is fracAgreeing — the metric fracDecided
        # cannot see, since Agreement trials hardwire it to 1.0). Churn rows
        # additionally carry an "extraNames" array labelling the slots.
        # Report every moved slot; for the regression gate treat
        # fraction-shaped slots (both values in [0, 1]) as quality, except
        # named lower-is-better metrics (staleness/drift), which regress
        # when they *rise*.
        old_extras = old.get("extras", [])
        names = row.get("extraNames", [])
        for i, slot in enumerate(row.get("extras", [])):
            a = old_extras[i].get("mean") if i < len(old_extras) else None
            b = slot.get("mean")
            if a is None or b is None or a == b:
                continue
            label = f"extra[{names[i]}]" if i < len(names) else f"extra[{i}]"
            deltas.append(f"{label}: {fmt(a)} → {fmt(b)}")
            if i < len(names) and names[i] in LOWER_IS_BETTER_EXTRAS:
                if (b - a) > args.quality_drop:
                    regressions.append(f"{name}: {label} rose {fmt(a)} → {fmt(b)}")
            elif 0.0 <= a <= 1.0 and 0.0 <= b <= 1.0 and (a - b) > args.quality_drop:
                regressions.append(f"{name}: {label} dropped {fmt(a)} → {fmt(b)}")
        # Fingerprint inequality alone also counts: extras are outside
        # fingerprint(), and fingerprints can move without shifting any mean.
        if deltas or old.get("combinedFingerprint") != row.get("combinedFingerprint"):
            changed.append((name, deltas))
    removed = sorted(set(prev) - set(curr))

    print("## Bench diff vs previous scheduled run\n")
    print(f"Scenarios: {len(curr)} current, {len(prev)} previous; "
          f"{len(changed)} changed, {len(added)} new, {len(removed)} removed.\n")
    if changed:
        print("### Changed scenarios\n")
        for name, deltas in changed:
            print(f"- **{name}**")
            for d in deltas:
                print(f"  - {d}")
            if not deltas:
                print("  - fingerprint differs but every mean is identical "
                      "(per-trial distribution moved)")
        print()
    if added:
        print("### New scenarios\n")
        for name in added:
            print(f"- {name}")
        print()
    if removed:
        print("### Removed scenarios\n")
        for name in removed:
            print(f"- {name}")
        print()
    if regressions:
        print("### Quality regressions\n")
        for r in regressions:
            print(f"- {r}")
        print()
    if not (changed or added or removed):
        print("Everything reproduced bit-for-bit.")

    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
