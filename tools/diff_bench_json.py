#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json trajectories (JSON lines, one
ExperimentSummary per line, as emitted by the benches under BZC_OUTPUT=json).

Usage: diff_bench_json.py PREV_DIR CURR_DIR [--strict]

Scenario rows are keyed by summary name. Master seeds and trial counts are
fixed per bench, so with unchanged code every metric reproduces exactly —
any delta is a real behaviour change (intended or not) in the commit range
between the two runs. The report is markdown (suitable for
$GITHUB_STEP_SUMMARY).

Regression verdicts are statistical, not raw point-delta thresholds
(DESIGN.md §13): when both rows carry per-trial "samples" arrays, a shifted
metric gets a two-sided Mann–Whitney U rank-sum test (normal approximation
with tie correction and continuity correction) — a shift only *gates* when
the two trial distributions are distinguishable at --alpha (default 0.01),
not merely different in the mean. Rows without samples (pre-upgrade
artifacts) fall back to bootstrap 95% CI overlap when the distributions
carry ci95lo/ci95hi, then to the legacy mean-delta threshold. wall_ms is
machine-load telemetry with a single sample per row, so it keeps its
relative + absolute noise floor instead.

Exit status is 0 unless --strict is given and a gated regression exists: the
scheduled workflow runs non-strict so an intentional protocol change does
not leave the cron red until the next run re-baselines.
"""

import argparse
import json
import math
import sys
from pathlib import Path

# (json key, pretty name)
KEY_METRICS = [
    ("fracDecided", "frac decided"),
    ("fracWithinWindow", "frac in window"),
    ("totalRounds", "rounds"),
    ("totalMessages", "messages"),
    ("totalBits", "bits"),
]
QUALITY_KEYS = {"fracDecided", "fracWithinWindow"}

# Direction per sampled metric: quality metrics regress when they *drop*,
# cost metrics when they *rise*; meanRatio is an accuracy ratio around 1 with
# no monotone "better" direction, so shifts are reported but never gate.
SAMPLE_METRICS = {
    "fracDecided": "higher",
    "fracWithinWindow": "higher",
    "meanRatio": "neutral",
    "totalRounds": "lower",
    "totalMessages": "lower",
    "totalBits": "lower",
}

# Named extras where *larger* is worse (churn scenarios emit an "extraNames"
# array labelling their positional extras): estimate staleness / drift rising
# between runs is a quality regression even though a fraction-shaped value
# dropping is the usual direction.
LOWER_IS_BETTER_EXTRAS = {"meanStaleness", "maxStaleness", "meanDrift", "maxDrift"}

# wall_ms is machine-load telemetry, not a deterministic metric: two identical
# binaries easily differ by tens of percent on shared CI runners. Treat it as
# lower-is-better but only flag a rise beyond BOTH a relative factor and an
# absolute floor (short rows jitter the hardest in relative terms).
WALL_MS_REL_NOISE = 0.25   # ignore rises under 25%
WALL_MS_ABS_FLOOR = 50.0   # ignore rises under 50 ms either way


def mann_whitney_u(a, b) -> float:
    """Two-sided Mann–Whitney U p-value via the normal approximation with
    average ranks for ties, tie-corrected variance and continuity correction.
    Returns 1.0 for degenerate inputs (empty sides, all values tied)."""
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        return 1.0
    combined = sorted([(v, 0) for v in a] + [(v, 1) for v in b])
    n = n1 + n2
    ranks = [0.0] * n
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j < n and combined[j][0] == combined[i][0]:
            j += 1
        avg_rank = (i + j + 1) / 2.0  # 1-based average rank of the tied block
        t = j - i
        tie_term += t ** 3 - t
        for k in range(i, j):
            ranks[k] = avg_rank
        i = j
    r1 = sum(r for r, (_, g) in zip(ranks, combined) if g == 0)
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    sigma2 = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0
    if sigma2 <= 0.0:
        return 1.0  # every value tied: the distributions are indistinguishable
    cc = 0.5 if u1 != mu else 0.0  # continuity correction toward the mean
    z = (abs(u1 - mu) - cc) / math.sqrt(sigma2)
    return min(1.0, math.erfc(z / math.sqrt(2.0)))


def ci_overlap(dist_a, dist_b, allow_degenerate=False):
    """True/False when both distributions carry bootstrap CIs (overlapping
    95% CIs = not distinguishable), None when either lacks them. Point CIs
    (lo == hi) normally mean "single trial, no bootstrap" and return None;
    allow_degenerate treats them as genuine point masses — correct when the
    caller knows ≥ 2 trials fed the bootstrap (identical per-trial values
    legitimately collapse the interval, and the metric is deterministic)."""
    try:
        a_lo, a_hi = dist_a["ci95lo"], dist_a["ci95hi"]
        b_lo, b_hi = dist_b["ci95lo"], dist_b["ci95hi"]
    except (KeyError, TypeError):
        return None
    if not allow_degenerate and a_lo == a_hi and b_lo == b_hi:
        return None  # degenerate CIs (single trial / no bootstrap stream)
    return not (a_hi < b_lo or b_hi < a_lo)


def load_dir(path: Path) -> dict:
    """name -> summary dict, from every BENCH_*.json under path."""
    rows = {}
    for f in sorted(path.glob("**/BENCH_*.json")):
        for line in f.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: unparseable line in {f}", file=sys.stderr)
                continue
            rows[row["name"]] = row
    return rows


def fmt(x: float) -> str:
    return f"{x:.6g}"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("prev", type=Path)
    ap.add_argument("curr", type=Path)
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when a gated regression exists")
    ap.add_argument("--quality-drop", type=float, default=0.05,
                    help="legacy mean-delta threshold for rows without samples/CIs")
    ap.add_argument("--alpha", type=float, default=0.01,
                    help="significance level for the Mann–Whitney U verdict")
    args = ap.parse_args()

    prev = load_dir(args.prev) if args.prev.exists() else {}
    curr = load_dir(args.curr)

    if not prev:
        print("## Bench diff\n\nNo previous artifact found — baseline run, nothing to diff.")
        return 0

    changed, added, removed, regressions, verdicts = [], [], [], [], []
    for name, row in sorted(curr.items()):
        if name not in prev:
            added.append(name)
            continue
        old = prev[name]
        deltas = []
        # Sharded rows (bench_t12_scale) carry their engine shard count; a
        # changed shard count is a configuration change worth flagging next to
        # the metric deltas, not a regression — fingerprints stay invariant
        # for the pinned scenarios, so metrics moving *with* an unchanged
        # shard count is the signal to scrutinise.
        old_shards = old.get("shards", 1)
        new_shards = row.get("shards", 1)
        if old_shards != new_shards:
            deltas.append(f"shards: {old_shards} → {new_shards} (config change)")
        # Same for the churn epoch-pipeline depth (bench_t13): depth is a pure
        # performance knob with pinned bit-identity, so a depth bump can move
        # wall-clock but never the metrics — flag it as config, not regression.
        old_depth = old.get("pipelineDepth", 1)
        new_depth = row.get("pipelineDepth", 1)
        if old_depth != new_depth:
            deltas.append(f"pipelineDepth: {old_depth} → {new_depth} (config change)")
        # Wall-clock and peak-RSS telemetry (PR 8): reported outside `deltas`
        # so nondeterministic machine noise never marks a scenario "changed",
        # but a wall_ms rise beyond the noise floor still joins the regression
        # list (it gates only under --strict, like the quality metrics).
        a_wall, b_wall = old.get("wall_ms"), row.get("wall_ms")
        if a_wall is not None and b_wall is not None and a_wall > 0:
            rise = b_wall - a_wall
            if rise > WALL_MS_ABS_FLOOR and rise / a_wall > WALL_MS_REL_NOISE:
                regressions.append(
                    f"{name}: wall_ms rose {fmt(a_wall)} → {fmt(b_wall)} "
                    f"({rise / a_wall:+.2%}, noise floor {WALL_MS_REL_NOISE:.0%}/"
                    f"{WALL_MS_ABS_FLOOR:.0f}ms)")
        # Statistical verdict on the sampled metrics: the gate for rows that
        # carry per-trial samples. Falls back to CI overlap, then to the
        # legacy mean-delta threshold, for older artifacts.
        old_samples = old.get("samples", {})
        new_samples = row.get("samples", {})
        stat_tested = set()
        for key, direction in SAMPLE_METRICS.items():
            a_s, b_s = old_samples.get(key), new_samples.get(key)
            if not a_s or not b_s:
                continue
            stat_tested.add(key)
            if a_s == b_s:
                continue  # bit-identical trial distribution: clean by definition
            p = mann_whitney_u(a_s, b_s)
            mean_a = sum(a_s) / len(a_s)
            mean_b = sum(b_s) / len(b_s)
            significant = p < args.alpha
            # MWU is underpowered at nightly trial counts (n=3 vs 3 bottoms
            # out at p≈0.05 two-sided, above any reasonable α), so disjoint
            # bootstrap CIs on the summary distribution are an equal second
            # arm: either test distinguishing the runs makes the shift gate.
            overlap = ci_overlap(old.get(key, {}), row.get(key, {}),
                                 allow_degenerate=min(len(a_s), len(b_s)) >= 2)
            worse = (direction == "higher" and mean_b < mean_a) or \
                    (direction == "lower" and mean_b > mean_a)
            if significant:
                tag = "significant"
            elif overlap is False:
                tag = "disjoint 95% CIs"
            else:
                tag = "within trial noise"
            verdicts.append(f"{name}: {key} {fmt(mean_a)} → {fmt(mean_b)} "
                            f"(MWU p={p:.4g}, {tag})")
            if (significant or overlap is False) and worse:
                why = (f"MWU p={p:.4g} < α={args.alpha}" if significant
                       else f"disjoint 95% CIs, MWU p={p:.4g}")
                regressions.append(
                    f"{name}: {key} regressed {fmt(mean_a)} → {fmt(mean_b)} ({why})")
        for key, pretty in KEY_METRICS:
            a_d, b_d = old.get(key, {}), row.get(key, {})
            a, b = a_d.get("mean"), b_d.get("mean")
            if a is None or b is None or a == b:
                continue
            rel = (b - a) / abs(a) if a else float("inf")
            deltas.append(f"{pretty}: {fmt(a)} → {fmt(b)} ({rel:+.2%})")
            if key in stat_tested:
                continue  # the rank-sum verdict above owns the gate
            if key in QUALITY_KEYS and (a - b) > args.quality_drop:
                # CI-overlap fallback: suppress the legacy threshold when the
                # bootstrap intervals overlap (the drop is within resampling
                # noise); gate when they are disjoint or absent.
                overlap = ci_overlap(a_d, b_d)
                if overlap is True:
                    verdicts.append(f"{name}: {key} dropped {fmt(a)} → {fmt(b)} "
                                    "but 95% CIs overlap — not gated")
                else:
                    if overlap is False:
                        verdicts.append(f"{name}: {key} dropped {fmt(a)} → {fmt(b)} "
                                        "with disjoint 95% CIs")
                    regressions.append(f"{name}: {pretty} dropped {fmt(a)} → {fmt(b)}")
        # Extras are positional in the JSON (slot meaning is bench-defined;
        # for agreement rows slot 0 is fracAgreeing — the metric fracDecided
        # cannot see, since Agreement trials hardwire it to 1.0). Churn rows
        # additionally carry an "extraNames" array labelling the slots.
        # Report every moved slot; for the regression gate treat
        # fraction-shaped slots (both values in [0, 1]) as quality, except
        # named lower-is-better metrics (staleness/drift), which regress
        # when they *rise*. Disjoint bootstrap CIs sharpen the verdict when
        # both sides carry them (extras emit the full distribution field set).
        old_extras = old.get("extras", [])
        names = row.get("extraNames", [])
        for i, slot in enumerate(row.get("extras", [])):
            old_slot = old_extras[i] if i < len(old_extras) else {}
            a = old_slot.get("mean")
            b = slot.get("mean")
            if a is None or b is None or a == b:
                continue
            label = f"extra[{names[i]}]" if i < len(names) else f"extra[{i}]"
            deltas.append(f"{label}: {fmt(a)} → {fmt(b)}")
            regressed = False
            if i < len(names) and names[i] in LOWER_IS_BETTER_EXTRAS:
                regressed = (b - a) > args.quality_drop
            elif 0.0 <= a <= 1.0 and 0.0 <= b <= 1.0:
                regressed = (a - b) > args.quality_drop
            if regressed:
                if ci_overlap(old_slot, slot) is True:
                    verdicts.append(f"{name}: {label} moved {fmt(a)} → {fmt(b)} "
                                    "but 95% CIs overlap — not gated")
                else:
                    regressions.append(f"{name}: {label} moved {fmt(a)} → {fmt(b)}")
        # Fingerprint inequality alone also counts: extras are outside
        # fingerprint(), and fingerprints can move without shifting any mean.
        if deltas or old.get("combinedFingerprint") != row.get("combinedFingerprint"):
            changed.append((name, deltas))
    removed = sorted(set(prev) - set(curr))

    print("## Bench diff vs previous scheduled run\n")
    print(f"Scenarios: {len(curr)} current, {len(prev)} previous; "
          f"{len(changed)} changed, {len(added)} new, {len(removed)} removed.\n")
    if changed:
        print("### Changed scenarios\n")
        for name, deltas in changed:
            print(f"- **{name}**")
            for d in deltas:
                print(f"  - {d}")
            if not deltas:
                print("  - fingerprint differs but every mean is identical "
                      "(per-trial distribution moved)")
        print()
    if added:
        print("### New scenarios\n")
        for name in added:
            print(f"- {name}")
        print()
    if removed:
        print("### Removed scenarios\n")
        for name in removed:
            print(f"- {name}")
        print()
    if verdicts:
        print(f"### Statistical verdicts (Mann–Whitney U, α={args.alpha:g}; "
              "bootstrap CI overlap)\n")
        for v in verdicts:
            print(f"- {v}")
        print()
    if regressions:
        print("### Regressions (gate under --strict)\n")
        for r in regressions:
            print(f"- {r}")
        print()
    if not (changed or added or removed or verdicts or regressions):
        print("Everything reproduced bit-for-bit.")

    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
