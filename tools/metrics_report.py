#!/usr/bin/env python3
"""Render a metrics/analytics report from traced runs (DESIGN.md §13).

Usage:
  metrics_report.py TRACE.jsonl [TRACE2.jsonl ...] [--metrics METRICS.jsonl]
                    [--bench BENCH.json] [--out REPORT.md] [--html REPORT.html]
                    [--check]

Inputs:
  TRACE_*.jsonl    BZC_TRACE event streams (schema owned by trace_summary.py)
  --metrics        BZC_METRICS per-trial histogram/series JSONL (repeatable);
                   cross-checked against the traces when both are given
  --bench          BENCH_*.json summary rows (repeatable); adds the bench
                   table with bootstrap CIs

Outputs a markdown report (--out, default stdout) and optionally a
self-contained HTML version with inline-SVG convergence charts (--html).
The report shows, per traced trial: the per-round convergence curves the
paper's figures are built from (beacon undecided decay, blacklist growth,
churn estimate/staleness per epoch), a phase-time attribution table over the
span probes, and the engine round-traffic summary.

--check validates instead of merely rendering: trace schema, metrics-line
schema, metrics/trace series reconciliation, and that at least one known
convergence series was rendered. Exit 1 on any problem (CI smoke mode).
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from trace_summary import split_trials, validate  # noqa: E402 (schema owner)

# Series the paper's convergence figures are built from; --check requires at
# least one of these to be present and rendered.
CONVERGENCE_SERIES = [
    "beacon.undecidedHonest",
    "beacon.blacklistInsertions",
    "beacon.beaconsGenerated",
    "agreement.answered",
    "agreement.compromised",
    "agreement.ones",
    "epoch.estimate",
    "epoch.staleness",
    "epoch.drift",
    "churn.liveN",
]

METRICS_KEYS = {"type", "scenario", "trial", "fingerprint", "hists", "series"}
HIST_KEYS = {"name", "wall", "precision", "count", "sum", "min", "max", "buckets"}

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


# --- loading -----------------------------------------------------------------

def load_trace_trials(paths):
    """[{key, scenario, trial, series{name: [(round, lane, value)]},
        spans{name: (count, total_ns)}, rounds, messages, bits, marks}]"""
    out = []
    for path in paths:
        for header, events, end in split_trials(path):
            trial = {
                "key": f"{header['scenario']}#{header['trial']}",
                "scenario": header["scenario"],
                "trial": header["trial"],
                "series": {},
                "spans": {},
                "rounds": end["rounds"],
                "messages": end["messages"],
                "bits": end["bits"],
                "marks": {},
            }
            for e in events:
                kind = e["type"]
                if kind == "counter":
                    trial["series"].setdefault(e["name"], []).append(
                        (e["round"], e["lane"], e["value"]))
                elif kind == "span":
                    cnt, total = trial["spans"].get(e["name"], (0, 0))
                    trial["spans"][e["name"]] = (cnt + 1, total + e.get("dur", 0))
                elif kind == "mark":
                    trial["marks"][e["name"]] = trial["marks"].get(e["name"], 0) + 1
            out.append(trial)
    return out


def load_metrics(paths):
    """(scenario, trial) -> [metrics objects]; raises ValueError on bad schema.

    A bench binary may run the same scenario name under several configs, so a
    (scenario, trial) key can repeat; occurrences are kept in file order and
    matched positionally against the trace trials (same sink, same order)."""
    out = {}
    for path in paths:
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: not JSON ({e})")
            missing = METRICS_KEYS - obj.keys()
            if missing:
                raise ValueError(f"{path}:{lineno}: metrics line missing {sorted(missing)}")
            for h in obj["hists"]:
                hmissing = HIST_KEYS - h.keys()
                if hmissing:
                    raise ValueError(
                        f"{path}:{lineno}: hist {h.get('name')!r} missing {sorted(hmissing)}")
                total = sum(c for _, _, c in h["buckets"])
                if total != h["count"]:
                    raise ValueError(
                        f"{path}:{lineno}: hist {h['name']!r} bucket counts sum to "
                        f"{total}, header says {h['count']}")
            for s in obj["series"]:
                if "name" not in s or "points" not in s:
                    raise ValueError(f"{path}:{lineno}: series missing name/points")
            out.setdefault((obj["scenario"], obj["trial"]), []).append(obj)
    return out


def load_bench(paths):
    rows = []
    for path in paths:
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"warning: unparseable line in {path}", file=sys.stderr)
    return rows


def match_metrics(trials, metrics):
    """trial-index -> metrics object, matching repeated (scenario, trial) keys
    positionally (nth trace occurrence of a key gets the nth metrics line)."""
    matched = {}
    cursor = {}
    for i, t in enumerate(trials):
        key = (t["scenario"], t["trial"])
        n = cursor.get(key, 0)
        cursor[key] = n + 1
        lines = metrics.get(key, [])
        if n < len(lines):
            matched[i] = lines[n]
    return matched


def reconcile(trials, matched):
    """Cross-checks matched metrics lines against trace trials."""
    problems = []
    for i, m in matched.items():
        t = trials[i]
        for s in m["series"]:
            name = s["name"]
            if name.startswith("mark."):
                continue  # marks are counted, not stored pointwise, trace-side
            trace_points = t["series"].get(name, [])
            if len(s["points"]) != len(trace_points):
                problems.append(
                    f"{t['key']}: series {name!r} has {len(s['points'])} metric "
                    f"points vs {len(trace_points)} trace counter events")
    return problems


# --- rendering helpers -------------------------------------------------------

def sparkline(values, width=60):
    if not values:
        return ""
    if len(values) > width:  # resample to fit
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_BLOCKS[3] * len(values)
    span = hi - lo
    return "".join(SPARK_BLOCKS[min(7, int((v - lo) / span * 8))] for v in values)


def fmt(x):
    return f"{x:.6g}"


def svg_chart(title, points, width=660, height=200):
    """Single-series inline-SVG line chart: 2px line, recessive grid, native
    <title> hover tooltips on the sample markers. x = point order (rounds may
    restart across epochs/stages); the tooltip carries the true round/epoch."""
    pad_l, pad_r, pad_t, pad_b = 56, 12, 28, 22
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    ys = [v for _, _, v in points]
    lo, hi = min(ys), max(ys)
    if hi == lo:
        lo, hi = lo - 0.5, hi + 0.5
    n = len(points)

    def px(i):
        return pad_l + (plot_w * i / max(1, n - 1))

    def py(v):
        return pad_t + plot_h * (1 - (v - lo) / (hi - lo))

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="{title}" '
        'style="background:#ffffff;font-family:system-ui,sans-serif">',
        f'<text x="{pad_l}" y="16" fill="#111827" font-size="13" '
        f'font-weight="600">{title}</text>',
    ]
    for frac in (0.0, 0.5, 1.0):  # recessive horizontal grid + axis labels
        y = pad_t + plot_h * frac
        val = hi - (hi - lo) * frac
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
                     f'y2="{y:.1f}" stroke="#e5e7eb" stroke-width="1"/>')
        parts.append(f'<text x="{pad_l - 6}" y="{y + 4:.1f}" fill="#6b7280" '
                     f'font-size="11" text-anchor="end">{fmt(val)}</text>')
    poly = " ".join(f"{px(i):.1f},{py(v):.1f}" for i, (_, _, v) in enumerate(points))
    parts.append(f'<polyline points="{poly}" fill="none" stroke="#1d4ed8" '
                 'stroke-width="2" stroke-linejoin="round"/>')
    # Hover layer: markers only when sparse enough to hit; the polyline stays
    # the visual, the (invisible-ish) circles carry the tooltips.
    if n <= 200:
        for i, (rnd, lane, v) in enumerate(points):
            parts.append(
                f'<circle cx="{px(i):.1f}" cy="{py(v):.1f}" r="4" fill="#1d4ed8" '
                f'fill-opacity="0.15" stroke="none">'
                f'<title>round {rnd}, lane {lane}: {fmt(v)}</title></circle>')
    parts.append(f'<text x="{width - pad_r}" y="{height - 6}" fill="#6b7280" '
                 f'font-size="11" text-anchor="end">{n} samples (point order)</text>')
    parts.append("</svg>")
    return "".join(parts)


def series_rows(trial):
    """(name, points) sorted by name, convergence series first."""
    known = [n for n in CONVERGENCE_SERIES if n in trial["series"]]
    rest = sorted(n for n in trial["series"] if n not in CONVERGENCE_SERIES)
    return [(n, trial["series"][n]) for n in known + rest]


# --- report builders ---------------------------------------------------------

def render_markdown(trials, matched, n_metrics, bench_rows):
    out = ["# Metrics report", ""]
    out.append(f"Traced trials: {len(trials)}; metrics lines: {n_metrics}; "
               f"bench rows: {len(bench_rows)}.")
    out.append("")
    for i, t in enumerate(trials):
        out.append(f"## {t['key']}: {t['rounds']} rounds, {t['messages']} messages, "
                   f"{t['bits']} bits")
        out.append("")
        rows = series_rows(t)
        if rows:
            out.append("### Convergence curves")
            out.append("")
            out.append("| series | samples | first | last | min | max | trajectory |")
            out.append("|---|---|---|---|---|---|---|")
            for name, pts in rows:
                vals = [v for _, _, v in pts]
                out.append(f"| `{name}` | {len(vals)} | {fmt(vals[0])} | {fmt(vals[-1])} "
                           f"| {fmt(min(vals))} | {fmt(max(vals))} | "
                           f"`{sparkline(vals)}` |")
            out.append("")
        if t["spans"]:
            out.append("### Phase-time attribution")
            out.append("")
            total_ns = t["spans"].get("trial", (0, 0))[1]
            out.append("| span | count | total ms | % of trial |")
            out.append("|---|---|---|---|")
            for name, (cnt, ns) in sorted(t["spans"].items(),
                                          key=lambda kv: -kv[1][1]):
                pct = f"{ns / total_ns * 100:.1f}%" if total_ns > 0 else "–"
                out.append(f"| `{name}` | {cnt} | {ns / 1e6:.3f} | {pct} |")
            out.append("")
        m = matched.get(i)
        if m is not None:
            out.append("### Histograms (deterministic projection flagged wall=0)")
            out.append("")
            out.append(f"metrics fingerprint: `{m['fingerprint']}`")
            out.append("")
            out.append("| histogram | wall | count | mean | min | max |")
            out.append("|---|---|---|---|---|---|")
            for h in m["hists"]:
                mean = h["sum"] / h["count"] if h["count"] else 0.0
                out.append(f"| `{h['name']}` | {h['wall']} | {h['count']} | {fmt(mean)} "
                           f"| {h['min']} | {h['max']} |")
            out.append("")
    if bench_rows:
        out.append("## Bench summary")
        out.append("")
        out.append("| scenario | trials | wall ms | rounds mean [95% CI] | "
                   "messages mean | frac decided mean [95% CI] |")
        out.append("|---|---|---|---|---|---|")
        for row in bench_rows:
            def ci_cell(d):
                if not isinstance(d, dict):
                    return "–"
                mean = d.get("mean", 0.0)
                lo, hi = d.get("ci95lo"), d.get("ci95hi")
                if lo is None or hi is None or (lo == hi == mean):
                    return fmt(mean)
                return f"{fmt(mean)} [{fmt(lo)}, {fmt(hi)}]"
            wall = row.get("wall_ms")
            out.append(f"| {row['name']} | {row.get('trials', '–')} | "
                       f"{fmt(wall) if wall is not None else '–'} | "
                       f"{ci_cell(row.get('totalRounds'))} | "
                       f"{ci_cell(row.get('totalMessages'))} | "
                       f"{ci_cell(row.get('fracDecided'))} |")
        out.append("")
    return "\n".join(out) + "\n"


def render_html(trials, bench_rows):
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Metrics report</title>",
        "<style>body{font-family:system-ui,sans-serif;color:#111827;max-width:960px;"
        "margin:2rem auto;padding:0 1rem;background:#ffffff}"
        "table{border-collapse:collapse;margin:0.75rem 0}"
        "td,th{border:1px solid #e5e7eb;padding:4px 8px;font-size:13px;text-align:left}"
        "th{background:#f9fafb}h2{margin-top:2rem}code{background:#f3f4f6;"
        "padding:1px 4px;border-radius:3px}details{margin:0.5rem 0}"
        "summary{color:#6b7280;cursor:pointer}</style></head><body>",
        "<h1>Metrics report</h1>",
    ]
    for t in trials:
        parts.append(f"<h2>{t['key']}</h2>")
        parts.append(f"<p>{t['rounds']} rounds, {t['messages']} messages, "
                     f"{t['bits']} bits.</p>")
        for name, pts in series_rows(t):
            if len(pts) < 2:
                continue
            parts.append(svg_chart(name, pts))
            # Table view of the plotted data (accessibility / CVD fallback).
            rows = "".join(f"<tr><td>{r}</td><td>{lane}</td><td>{fmt(v)}</td></tr>"
                           for r, lane, v in pts[:500])
            parts.append(f"<details><summary>data: {name}</summary><table>"
                         "<tr><th>round</th><th>lane</th><th>value</th></tr>"
                         f"{rows}</table></details>")
        if t["spans"]:
            total_ns = t["spans"].get("trial", (0, 0))[1]
            parts.append("<h3>Phase-time attribution</h3><table>"
                         "<tr><th>span</th><th>count</th><th>total ms</th>"
                         "<th>% of trial</th></tr>")
            for name, (cnt, ns) in sorted(t["spans"].items(), key=lambda kv: -kv[1][1]):
                pct = f"{ns / total_ns * 100:.1f}%" if total_ns > 0 else "–"
                parts.append(f"<tr><td><code>{name}</code></td><td>{cnt}</td>"
                             f"<td>{ns / 1e6:.3f}</td><td>{pct}</td></tr>")
            parts.append("</table>")
    if bench_rows:
        parts.append("<h2>Bench summary</h2><table><tr><th>scenario</th>"
                     "<th>trials</th><th>wall ms</th><th>rounds mean</th>"
                     "<th>frac decided mean</th></tr>")
        for row in bench_rows:
            wall = row.get("wall_ms")
            rounds = row.get("totalRounds", {})
            frac = row.get("fracDecided", {})
            parts.append(
                f"<tr><td>{row['name']}</td><td>{row.get('trials', '–')}</td>"
                f"<td>{fmt(wall) if wall is not None else '–'}</td>"
                f"<td>{fmt(rounds.get('mean', 0.0))}</td>"
                f"<td>{fmt(frac.get('mean', 0.0))}</td></tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("traces", type=Path, nargs="+", metavar="TRACE.jsonl")
    ap.add_argument("--metrics", type=Path, action="append", default=[],
                    help="BZC_METRICS JSONL file (repeatable)")
    ap.add_argument("--bench", type=Path, action="append", default=[],
                    help="BENCH_*.json row file (repeatable)")
    ap.add_argument("--out", type=Path, help="markdown output (default stdout)")
    ap.add_argument("--html", type=Path, help="also write a self-contained HTML report")
    ap.add_argument("--check", action="store_true",
                    help="validate schemas + rendered content; exit 1 on problems")
    args = ap.parse_args()

    problems = []
    for path in args.traces + args.metrics + args.bench:
        if not path.exists():
            print(f"error: {path} not found", file=sys.stderr)
            return 1
    for path in args.traces:
        problems += validate(path)

    trials = load_trace_trials(args.traces) if not problems else []
    try:
        metrics = load_metrics(args.metrics)
    except ValueError as e:
        problems.append(str(e))
        metrics = {}
    bench_rows = load_bench(args.bench)
    n_metrics = sum(len(v) for v in metrics.values())
    matched = match_metrics(trials, metrics)
    problems += reconcile(trials, matched)

    if args.check:
        if not trials:
            problems.append("no traced trials parsed")
        rendered = {name for t in trials for name in t["series"]}
        if trials and not rendered.intersection(CONVERGENCE_SERIES):
            problems.append(
                "no known convergence series present (expected one of "
                f"{CONVERGENCE_SERIES[:4]}...)")
        if trials and not any(t["spans"] for t in trials):
            problems.append("no phase spans present — attribution table would be empty")

    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1

    markdown = render_markdown(trials, matched, n_metrics, bench_rows)
    if args.out:
        args.out.write_text(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown, end="")
    if args.html:
        args.html.write_text(render_html(trials, bench_rows))
        print(f"wrote {args.html}")
    if args.check:
        print(f"OK: {len(trials)} trial(s), "
              f"{sum(len(t['series']) for t in trials)} series, "
              f"{n_metrics} metrics line(s) ({len(matched)} matched to traces) "
              "— schema and reconciliation pass")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
