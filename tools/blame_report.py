#!/usr/bin/env python3
"""Damage-attribution reports over BZC_ATTRIB JSONL blame graphs (DESIGN.md §14).

Usage:
  blame_report.py ATTRIB.jsonl                  # per-kind / per-subset / top-k report
  blame_report.py ATTRIB.jsonl --check          # reconcile edge sums vs AdversaryStats
  blame_report.py ATTRIB.jsonl --top 20         # widen the offender list
  blame_report.py ATTRIB.jsonl --diff OTHER     # compare canonical projections

The attribution format is one JSON object per sampled trial:

  {"type":"blame","scenario":S,"trial":N,
   "edges":[{"kind":K,"subset":I,"cause":C,"victim":V,"count":N}, ...],
   "totals":{"walk.flippedAnswers":F, ...},
   "victimDist":[d0, d1, ...]}                  # BFS hops from the victim (optional)

Edges are the canonical (sorted, deterministic) projection of the per-trial
blame graph: Byzantine cause -> honest outcome, typed and counted. cause/victim
are node ids, -1 = unattributed / graph-wide. subset is the CoalitionPlan
subset of the cause (-1 without a plan). totals mirror the protocol-side
AdversaryStats counters, which is what --check reconciles: every identity below
must hold EXACTLY (the recorder and the stats counter increment at the same
program point), so any drift is a provenance bug, not noise.

  droppedQuery        == walk.droppedQueries
  droppedAnswer       == walk.droppedAnswers
  flippedAnswer       == walk.flippedAnswers
  misroutedAnswer     == walk.misroutedAnswers
  strayAnswer         == walk.strayAnswers
  forgedAnswer        == walk.forgedAnswers
  compromisedSample   == walk.compromisedSamples
  beaconForged + relayTampered == beacon.beaconsForged
  relayTampered       == beacon.relaysTampered
  relaySuppressed     == beacon.relaysSuppressed
  continueSpam        == beacon.continuesSpammed
  continueSuppressed  == beacon.continuesSuppressed
  blacklistedHonestId + blacklistedFakeId + beacon.untaintedInsertions
                      == beacon.blacklistInsertions
  rejoinLineage       == churn.byzRejoins

Identities are checked only when their denominator keys are present (a plain
Agreement run has no beacon.* totals, a churn-free run no churn.*).

Exit status: 0 ok, 1 parse/reconciliation/diff failure.
"""

import argparse
import collections
import json
import sys
from pathlib import Path

EDGE_KEYS = {"kind", "subset", "cause", "victim", "count"}

# (description, [edge kinds], [total keys]): sum of kinds == sum of totals.
IDENTITIES = [
    ("droppedQuery == walk.droppedQueries", ["droppedQuery"], ["walk.droppedQueries"]),
    ("droppedAnswer == walk.droppedAnswers", ["droppedAnswer"], ["walk.droppedAnswers"]),
    ("flippedAnswer == walk.flippedAnswers", ["flippedAnswer"], ["walk.flippedAnswers"]),
    ("misroutedAnswer == walk.misroutedAnswers", ["misroutedAnswer"],
     ["walk.misroutedAnswers"]),
    ("strayAnswer == walk.strayAnswers", ["strayAnswer"], ["walk.strayAnswers"]),
    ("forgedAnswer == walk.forgedAnswers", ["forgedAnswer"], ["walk.forgedAnswers"]),
    ("compromisedSample == walk.compromisedSamples", ["compromisedSample"],
     ["walk.compromisedSamples"]),
    ("beaconForged + relayTampered == beacon.beaconsForged",
     ["beaconForged", "relayTampered"], ["beacon.beaconsForged"]),
    ("relayTampered == beacon.relaysTampered", ["relayTampered"],
     ["beacon.relaysTampered"]),
    ("relaySuppressed == beacon.relaysSuppressed", ["relaySuppressed"],
     ["beacon.relaysSuppressed"]),
    ("continueSpam == beacon.continuesSpammed", ["continueSpam"],
     ["beacon.continuesSpammed"]),
    ("continueSuppressed == beacon.continuesSuppressed", ["continueSuppressed"],
     ["beacon.continuesSuppressed"]),
    ("blacklistedHonestId + blacklistedFakeId + untainted == beacon.blacklistInsertions",
     ["blacklistedHonestId", "blacklistedFakeId"],
     # untaintedInsertions is a denominator-side correction: move it across.
     ["beacon.blacklistInsertions", "-beacon.untaintedInsertions"]),
    ("rejoinLineage == churn.byzRejoins", ["rejoinLineage"], ["churn.byzRejoins"]),
]


def parse(path: Path):
    """Yields blame records; raises ValueError on malformed lines."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}:{lineno}: not JSON ({e})")
        if obj.get("type") != "blame":
            continue  # a shared sink file may interleave other record types
        for key in ("scenario", "trial", "edges", "totals"):
            if key not in obj:
                raise ValueError(f"{path}:{lineno}: blame record missing {key!r}")
        for e in obj["edges"]:
            missing = EDGE_KEYS - e.keys()
            if missing:
                raise ValueError(f"{path}:{lineno}: edge missing {sorted(missing)}")
        yield obj


def kind_sums(edges):
    sums = collections.Counter()
    for e in edges:
        sums[e["kind"]] += e["count"]
    return sums


def check(path: Path) -> list:
    """Reconciles every applicable identity per trial. Returns problem strings."""
    problems, trials = [], 0
    for rec in parse(path):
        trials += 1
        tag = f"{rec['scenario']}#{rec['trial']}"
        sums, totals = kind_sums(rec["edges"]), rec["totals"]
        for desc, kinds, keys in IDENTITIES:
            base = [k.lstrip("-") for k in keys]
            if not any(k in totals for k in base):
                continue  # that subsystem did not run in this trial
            lhs = sum(sums.get(k, 0) for k in kinds)
            rhs = sum(-totals.get(k[1:], 0) if k.startswith("-") else totals.get(k, 0)
                      for k in keys)
            if lhs != rhs:
                problems.append(f"{tag}: {desc}: edges sum to {lhs}, stats say {rhs}")
    if trials == 0:
        problems.append(f"{path}: no blame records (BZC_ATTRIB unset, or no trials sampled)")
    return problems


def canonical(path: Path):
    """[(scenario, trial), edges, totals] — the deterministic projection."""
    return [((r["scenario"], r["trial"]), r["edges"], r["totals"]) for r in parse(path)]


def diff(path_a: Path, path_b: Path) -> list:
    a, b = canonical(path_a), canonical(path_b)
    problems = []
    if [t[0] for t in a] != [t[0] for t in b]:
        return [f"trial sets differ: {[t[0] for t in a]} vs {[t[0] for t in b]}"]
    for (key, ea, ta), (_, eb, tb) in zip(a, b):
        tag = f"{key[0]}#{key[1]}"
        if ta != tb:
            problems.append(f"{tag}: totals differ: {ta} vs {tb}")
        if ea != eb:
            for i, (x, y) in enumerate(zip(ea, eb)):
                if x != y:
                    problems.append(f"{tag}: first edge divergence at {i}:\n  a: {x}\n  b: {y}")
                    break
            else:
                problems.append(f"{tag}: {len(ea)} vs {len(eb)} edges")
    return problems


def report(path: Path, top: int):
    records = list(parse(path))
    print(f"# {path}: {len(records)} blame graph(s)\n")

    # Aggregate across trials (merge = keyed sum, same as BlameGraph::merge).
    all_edges = [e for r in records for e in r["edges"]]
    by_kind = kind_sums(all_edges)
    attributed = sum(e["count"] for e in all_edges if e["cause"] >= 0)

    print("## damage by kind")
    print(f"  {'kind':24s} {'edges':>8} {'units':>10}")
    for kind in sorted(by_kind):
        rows = sum(1 for e in all_edges if e["kind"] == kind)
        print(f"  {kind:24s} {rows:>8} {by_kind[kind]:>10}")
    print(f"  {'TOTAL':24s} {len(all_edges):>8} {sum(by_kind.values()):>10}"
          f"   ({attributed} attributed to a cause)\n")

    by_subset = collections.Counter()
    by_subset_kind = collections.defaultdict(collections.Counter)
    for e in all_edges:
        if e["cause"] < 0:
            continue
        by_subset[e["subset"]] += e["count"]
        by_subset_kind[e["subset"]][e["kind"]] += e["count"]
    if by_subset:
        print("## attributed damage by coalition subset (-1 = no plan / unmapped)")
        for subset in sorted(by_subset):
            kinds = ", ".join(f"{k}={v}" for k, v in by_subset_kind[subset].most_common(4))
            print(f"  subset {subset:>2}: {by_subset[subset]:>10}   ({kinds})")
        print()

    by_cause = collections.Counter()
    for e in all_edges:
        if e["cause"] >= 0:
            by_cause[e["cause"]] += e["count"]
    if by_cause:
        total = sum(by_cause.values())
        hhi = sum((v / total) ** 2 for v in by_cause.values())
        print(f"## top {top} offenders ({len(by_cause)} distinct causes, "
              f"concentration HHI = {hhi:.4f})")
        print(f"  {'cause':>8} {'units':>10} {'share':>8}")
        for cause, units in by_cause.most_common(top):
            print(f"  {cause:>8} {units:>10} {units / total:>7.1%}")
        print()

    # Blame concentration vs distance-to-victim: how sharply the damage focuses
    # around the victim, per hop shell. Needs victimDist (sampled trials only).
    shells = collections.Counter()
    dist_known = 0
    for r in records:
        dist = r.get("victimDist")
        if not dist:
            continue
        for e in r["edges"]:
            cause = e["cause"]
            if cause < 0 or cause >= len(dist) or dist[cause] == 0xFFFF:
                continue
            shells[dist[cause]] += e["count"]
            dist_known += e["count"]
    if shells:
        print("## attributed damage vs cause's distance to the victim")
        print(f"  {'hops':>5} {'units':>10} {'share':>8}  cumulative")
        cum = 0
        for hops in sorted(shells):
            cum += shells[hops]
            print(f"  {hops:>5} {shells[hops]:>10} {shells[hops] / dist_known:>7.1%}"
                  f"  {cum / dist_known:>7.1%}")
        print()

    lineage = [(e["cause"], e["victim"]) for e in all_edges if e["kind"] == "rejoinLineage"]
    if lineage:
        print(f"## churn whitewashing lineage ({len(lineage)} rejoins)")
        for old, fresh in lineage[:top]:
            print(f"  byz {old if old >= 0 else '?':>8} -> fresh identity {fresh}")
        print()

    totals = collections.Counter()
    for r in records:
        totals.update(r["totals"])
    if totals:
        print("## protocol-side denominators (AdversaryStats mirrors)")
        for name in sorted(totals):
            print(f"  {name:32s} {totals[name]:>10}")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("attrib", type=Path)
    ap.add_argument("--check", action="store_true",
                    help="reconcile edge sums against the AdversaryStats totals exactly")
    ap.add_argument("--diff", type=Path, metavar="OTHER",
                    help="compare canonical projections of two attribution files")
    ap.add_argument("--top", type=int, default=10,
                    help="rows in the offender list (default 10)")
    args = ap.parse_args()

    if not args.attrib.exists():
        print(f"error: {args.attrib} not found", file=sys.stderr)
        return 1

    if args.check:
        problems = check(args.attrib)
        if problems:
            for p in problems:
                print(f"MISMATCH: {p}", file=sys.stderr)
            return 1
        n = len(list(parse(args.attrib)))
        print(f"OK: {args.attrib} — {n} blame graph(s), every attribution identity "
              f"reconciles exactly")
        return 0

    if args.diff is not None:
        problems = diff(args.attrib, args.diff)
        if problems:
            for p in problems:
                print(f"DIFF: {p}", file=sys.stderr)
            return 1
        print(f"OK: canonical blame projections of {args.attrib} and {args.diff} "
              f"are identical")
        return 0

    report(args.attrib, args.top)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
