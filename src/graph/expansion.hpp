// Vertex-expansion toolkit.
//
// The paper's algorithms and impossibility result all hinge on the vertex
// expansion h(G) = min_{0<|S|<=n/2} |Out(S)|/|S| (Definition 1). Computing
// h(G) exactly is NP-hard, so alongside an exact enumerator for tiny graphs
// we provide the two estimators the protocols and experiments use:
//
//  - ball-growth profiles (the set family Algorithm 1's proofs examine), and
//  - a Fiedler-vector sweep cut, which yields an *upper bound* on h(G) good
//    enough to flag the o(n)-cut grafts Byzantine nodes construct (Lemma 5).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace bzc {

/// |Out(S)| where Out(S) is the set of nodes outside S adjacent to S.
[[nodiscard]] std::size_t outNeighborhoodSize(const Graph& g, const std::vector<NodeId>& s);

/// |Out(S)|/|S| for a nonempty S.
[[nodiscard]] double vertexExpansionOfSet(const Graph& g, const std::vector<NodeId>& s);

/// Exact h(G) by enumerating all subsets of size <= n/2. Requires n <= 20.
[[nodiscard]] double exactVertexExpansion(const Graph& g);

/// Expansion of the BFS ball prefixes around u:
/// result[j] = |Out(B(u,j))| / |B(u,j)| for j = 0..r (0 when the ball has
/// swallowed the component). This is a cheap upper bound on h(G).
[[nodiscard]] std::vector<double> ballExpansionProfile(const Graph& g, NodeId u, std::uint32_t r);

/// Approximate Fiedler vector: the second eigenvector of the lazy random
/// walk matrix W = (I + D^{-1}A)/2, computed by power iteration with
/// degree-weighted deflation against the stationary distribution.
/// If `warmStart` is non-null and the right size it seeds the iteration
/// (protocol code re-runs this on slowly growing views).
[[nodiscard]] std::vector<double> fiedlerVector(const Graph& g, unsigned iterations, Rng& rng,
                                                const std::vector<double>* warmStart = nullptr);

/// Result of a sweep cut over a node ordering.
struct SweepCut {
  double expansion = 0.0;     ///< |Out(S)|/|S| of the best prefix: upper bound on h(G)
  std::size_t smallSide = 0;  ///< |S| of that prefix
  std::size_t outSize = 0;    ///< |Out(S)|
};

/// Sweeps prefixes of `order` (all prefixes of size <= n/2, further capped at
/// `maxPrefix` when nonzero), returning the prefix with minimal vertex
/// expansion. `order` may be a partial ordering covering only the sweepable
/// vertices as long as maxPrefix <= order.size().
[[nodiscard]] SweepCut sweepCutByOrder(const Graph& g, const std::vector<NodeId>& order,
                                       std::size_t maxPrefix = 0);

/// Fiedler sweep upper bound on h(G). `iterations` controls power-iteration
/// accuracy. Deterministic given rng.
[[nodiscard]] SweepCut fiedlerSweep(const Graph& g, unsigned iterations, Rng& rng,
                                    const std::vector<double>* warmStart = nullptr);

/// Estimate of the spectral expansion: 1 - lambda2(W) where W is the lazy
/// walk matrix (in [0, 1/2]; larger means better expander).
[[nodiscard]] double spectralGapEstimate(const Graph& g, unsigned iterations, Rng& rng);

/// Whether `state` can seed the Fiedler power iteration for an n-node graph:
/// right size and a norm that survives deflation. The single source of truth
/// shared by spectralGapEstimate's stateful overload and callers that pick
/// an iteration depth based on warm-vs-cold (the churn EpochRunner).
[[nodiscard]] bool fiedlerWarmStartUsable(const std::vector<double>& state, NodeId n);

/// Stateful variant for callers probing a slowly evolving graph (the churn
/// EpochRunner): when fiedlerWarmStartUsable(*state, n) it seeds the power
/// iteration (so far fewer iterations reach the same accuracy); on return
/// `state` holds the computed Fiedler vector for the next probe. A
/// null/mismatched/zero `state` falls back to the fresh random start and
/// still writes the result back when `state` is non-null.
[[nodiscard]] double spectralGapEstimate(const Graph& g, unsigned iterations, Rng& rng,
                                         std::vector<double>* state);

/// Upper-bounds h(G) by also trying `samples` random BFS-grown connected
/// subsets (each <= n/2). Used by the T9 assumption-audit experiment.
[[nodiscard]] double sampledExpansionUpperBound(const Graph& g, unsigned samples, Rng& rng);

}  // namespace bzc
