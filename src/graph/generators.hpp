// Graph generators for every topology the paper's model section and proofs
// refer to.
//
//  - hnd():             the H(n,d) permutation model — union of d/2 random
//                       Hamiltonian cycles (§2 "Network topology for the
//                       second algorithm"); Ramanujan expander w.h.p.
//  - configurationModel(): the pairing model the paper cites as contiguous
//                       with H(n,d) (Greenhill et al.).
//  - wattsStrogatz():   small-world networks, the setting of the prior work
//                       [14] our algorithms are compared against.
//  - ring()/path()/torus2d()/star()/binaryTree(): low-expansion topologies
//                       used by the impossibility experiments (Theorem 3).
//  - gluedCopies():     the Theorem 3 gadget — t copies of a base graph
//                       sharing one designated (Byzantine) node.
//  - barbell():         two expanders joined by a narrow bridge; used to
//                       stress the expansion checkers of Algorithm 1.
//  - hypercube()/complete(): reference topologies for tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace bzc {

/// H(n,d): union of d/2 independent uniform Hamiltonian cycles on [0, n).
/// Requires even d >= 2 and n >= 3. May contain parallel edges (kept).
[[nodiscard]] Graph hnd(NodeId n, NodeId d, Rng& rng);

/// Configuration (pairing) model for a d-regular multigraph; pairings that
/// produce self-loops are re-drawn a bounded number of times, then the
/// offending stubs are re-matched greedily. Parallel edges are kept.
[[nodiscard]] Graph configurationModel(NodeId n, NodeId d, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k nearest neighbours per
/// side, each edge rewired with probability p.
[[nodiscard]] Graph wattsStrogatz(NodeId n, NodeId k, double p, Rng& rng);

[[nodiscard]] Graph ring(NodeId n);
[[nodiscard]] Graph path(NodeId n);
[[nodiscard]] Graph star(NodeId n);
[[nodiscard]] Graph complete(NodeId n);
[[nodiscard]] Graph binaryTree(NodeId n);
[[nodiscard]] Graph hypercube(unsigned dimensions);

/// rows x cols torus (wrap-around 2-D grid); degree 4 when rows, cols >= 3.
[[nodiscard]] Graph torus2d(NodeId rows, NodeId cols);

/// Theorem 3 gadget: `copies` disjoint copies of `base` all sharing the
/// single node `hub` (of the base graph). The shared node is placed at
/// index 0 of the result; copy c's node v (v != hub) maps to
/// 1 + c*(|base|-1) + (v adjusted for the removed hub).
[[nodiscard]] Graph gluedCopies(const Graph& base, NodeId hub, NodeId copies);

/// Two H(m,d) expanders connected by `bridgeWidth` random cross edges.
[[nodiscard]] Graph barbell(NodeId m, NodeId d, NodeId bridgeWidth, Rng& rng);

}  // namespace bzc
