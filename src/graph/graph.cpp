#include "graph/graph.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace bzc {

Graph::Graph(NodeId numNodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  offsets_.assign(static_cast<std::size_t>(numNodes) + 1, 0);
  for (const auto& [u, v] : edges) {
    BZC_REQUIRE(u < numNodes && v < numNodes, "edge endpoint out of range");
    BZC_REQUIRE(u != v, "self-loops are not supported");
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  for (NodeId u = 0; u < numNodes; ++u) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]));
    maxDegree_ = std::max(maxDegree_, degree(u));
  }
}

bool Graph::hasEdge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  return it != nbrs.end() && *it == v;
}

std::size_t Graph::edgeMultiplicity(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto [first, last] = std::equal_range(nbrs.begin(), nbrs.end(), v);
  return static_cast<std::size_t>(last - first);
}

std::size_t Graph::multiEdgeCount() const {
  std::size_t duplicates = 0;
  for (NodeId u = 0; u < numNodes(); ++u) {
    const auto nbrs = neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      if (nbrs[i] == nbrs[i - 1]) ++duplicates;
    }
  }
  return duplicates / 2;
}

Graph Graph::simplified() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(numEdges());
  for (NodeId u = 0; u < numNodes(); ++u) {
    NodeId prev = kNoNode;
    for (NodeId v : neighbors(u)) {
      if (v > u && v != prev) edges.emplace_back(u, v);
      prev = v;
    }
  }
  return Graph(numNodes(), edges);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edgeList() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(numEdges());
  for (NodeId u = 0; u < numNodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (v >= u) edges.emplace_back(u, v);  // v == u impossible (no loops)
    }
  }
  return edges;
}

std::pair<Graph, std::vector<NodeId>> Graph::inducedSubgraph(
    const std::vector<NodeId>& keep) const {
  std::vector<NodeId> oldToNew(numNodes(), kNoNode);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    BZC_REQUIRE(keep[i] < numNodes(), "kept node out of range");
    BZC_REQUIRE(oldToNew[keep[i]] == kNoNode, "duplicate node in keep list");
    oldToNew[keep[i]] = static_cast<NodeId>(i);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u : keep) {
    for (NodeId v : neighbors(u)) {
      if (oldToNew[v] != kNoNode && v > u) edges.emplace_back(oldToNew[u], oldToNew[v]);
    }
  }
  return {Graph(static_cast<NodeId>(keep.size()), edges), std::move(oldToNew)};
}

}  // namespace bzc
