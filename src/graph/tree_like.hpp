// Locally tree-like classification (Definition 3 / Lemma 2).
//
// A node w of a d-regular graph is locally tree-like up to radius r when the
// subgraph induced by B(w, r) is a (d-1)-ary tree: every node at BFS layer
// 1 <= j < r has exactly one neighbour in layer j-1 and d-1 in layer j+1.
// Lemma 2 asserts that in H(n,d) at radius r = log n / (10 log d), at least
// n - O(n^0.8) nodes are locally tree-like w.h.p.; experiment T3 measures it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace bzc {

/// The radius Lemma 2 uses: floor(log n / (10 log d)), at least 1.
[[nodiscard]] std::uint32_t treeLikeRadius(NodeId n, NodeId d);

/// True iff the subgraph induced by B(u, r) is a tree (no cross or parallel
/// edges, every non-root layer node has exactly one parent).
[[nodiscard]] bool isLocallyTreeLike(const Graph& g, NodeId u, std::uint32_t r);

/// Number of locally tree-like nodes at radius r.
[[nodiscard]] std::size_t countTreeLike(const Graph& g, std::uint32_t r);

/// Indicator vector over all nodes.
[[nodiscard]] std::vector<char> treeLikeMask(const Graph& g, std::uint32_t r);

}  // namespace bzc
