#include "graph/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/require.hpp"

namespace bzc {

void writeEdgeList(std::ostream& os, const Graph& g) {
  os << g.numNodes() << ' ' << g.numEdges() << '\n';
  for (const auto& [u, v] : g.edgeList()) os << u << ' ' << v << '\n';
}

Graph readEdgeList(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  BZC_REQUIRE(static_cast<bool>(is >> n >> m), "edge list header unreadable");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    BZC_REQUIRE(static_cast<bool>(is >> u >> v), "edge list truncated");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph(static_cast<NodeId>(n), edges);
}

std::string toDot(const Graph& g, const std::vector<NodeId>& highlight) {
  std::vector<char> marked(g.numNodes(), 0);
  for (NodeId u : highlight) {
    BZC_REQUIRE(u < g.numNodes(), "highlight node out of range");
    marked[u] = 1;
  }
  std::ostringstream os;
  os << "graph G {\n  node [shape=circle];\n";
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (marked[u]) os << "  " << u << " [style=filled, fillcolor=red];\n";
  }
  for (const auto& [u, v] : g.edgeList()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace bzc
