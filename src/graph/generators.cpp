#include "graph/generators.hpp"

#include <algorithm>
#include <utility>

#include "support/require.hpp"

namespace bzc {

namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

void appendHamiltonianCycle(EdgeList& edges, NodeId n, Rng& rng) {
  const auto order = rng.permutation(n);
  for (NodeId i = 0; i < n; ++i) {
    edges.emplace_back(order[i], order[(i + 1) % n]);
  }
}

}  // namespace

Graph hnd(NodeId n, NodeId d, Rng& rng) {
  BZC_REQUIRE(n >= 3, "H(n,d) needs n >= 3");
  BZC_REQUIRE(d >= 2 && d % 2 == 0, "H(n,d) needs even d >= 2");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * d / 2);
  for (NodeId c = 0; c < d / 2; ++c) appendHamiltonianCycle(edges, n, rng);
  return Graph(n, edges);
}

Graph configurationModel(NodeId n, NodeId d, Rng& rng) {
  BZC_REQUIRE(static_cast<std::size_t>(n) * d % 2 == 0, "n*d must be even");
  BZC_REQUIRE(n >= 2 && d >= 1, "configuration model needs n >= 2, d >= 1");
  // Stubs: node u owns stubs [u*d, (u+1)*d). A uniform perfect matching of
  // stubs is a random pairing; we re-shuffle a few times if self-loops occur,
  // then repair remaining self-loops by swapping with a random other pair.
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (std::size_t s = 0; s < stubs.size(); ++s) stubs[s] = static_cast<NodeId>(s / d);

  EdgeList edges;
  for (int attempt = 0; attempt < 32; ++attempt) {
    rng.shuffle(stubs);
    bool hasLoop = false;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] == stubs[i + 1]) {
        hasLoop = true;
        break;
      }
    }
    if (!hasLoop) {
      edges.clear();
      edges.reserve(stubs.size() / 2);
      for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        edges.emplace_back(stubs[i], stubs[i + 1]);
      }
      return Graph(n, edges);
    }
  }
  // Repair path: pair sequentially, fixing self-loops with swaps.
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) {
      for (int tries = 0; tries < 1000 && stubs[i] == stubs[i + 1]; ++tries) {
        const std::size_t j = rng.uniform(stubs.size());
        if (j == i || j == i + 1) continue;
        if (stubs[j] != stubs[i] && stubs[j ^ 1] != stubs[i + 1]) {
          std::swap(stubs[i + 1], stubs[j]);
        }
      }
      BZC_CHECK(stubs[i] != stubs[i + 1], "configuration model repair failed");
    }
  }
  edges.clear();
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) edges.emplace_back(stubs[i], stubs[i + 1]);
  return Graph(n, edges);
}

Graph wattsStrogatz(NodeId n, NodeId k, double p, Rng& rng) {
  BZC_REQUIRE(n >= 3, "Watts-Strogatz needs n >= 3");
  BZC_REQUIRE(k >= 1 && 2 * k < n, "Watts-Strogatz needs 1 <= k < n/2");
  BZC_REQUIRE(p >= 0.0 && p <= 1.0, "rewire probability out of range");
  // Track the simple-graph edge set to avoid duplicates when rewiring.
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto key = [](NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  std::vector<std::uint64_t> present;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % n);
      edges.emplace_back(u, v);
      present.push_back(key(u, v));
    }
  }
  std::sort(present.begin(), present.end());
  auto exists = [&](NodeId a, NodeId b) {
    return std::binary_search(present.begin(), present.end(), key(a, b));
  };
  for (auto& [u, v] : edges) {
    if (!rng.bernoulli(p)) continue;
    // Rewire the far endpoint to a uniform non-neighbour.
    for (int tries = 0; tries < 64; ++tries) {
      const auto w = static_cast<NodeId>(rng.uniform(n));
      if (w == u || w == v || exists(u, w)) continue;
      // Remove old key, insert new (lazy: mark by re-sorting at the end is
      // costlier; do a linear erase on the sorted vector).
      const auto oldKey = key(u, v);
      const auto it = std::lower_bound(present.begin(), present.end(), oldKey);
      if (it != present.end() && *it == oldKey) present.erase(it);
      const auto newKey = key(u, w);
      present.insert(std::upper_bound(present.begin(), present.end(), newKey), newKey);
      v = w;
      break;
    }
  }
  return Graph(n, edges);
}

Graph ring(NodeId n) {
  BZC_REQUIRE(n >= 3, "ring needs n >= 3");
  EdgeList edges;
  edges.reserve(n);
  for (NodeId u = 0; u < n; ++u) edges.emplace_back(u, static_cast<NodeId>((u + 1) % n));
  return Graph(n, edges);
}

Graph path(NodeId n) {
  BZC_REQUIRE(n >= 2, "path needs n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace_back(u, static_cast<NodeId>(u + 1));
  return Graph(n, edges);
}

Graph star(NodeId n) {
  BZC_REQUIRE(n >= 2, "star needs n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId u = 1; u < n; ++u) edges.emplace_back(0, u);
  return Graph(n, edges);
}

Graph complete(NodeId n) {
  BZC_REQUIRE(n >= 2, "complete graph needs n >= 2");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) edges.emplace_back(u, v);
  return Graph(n, edges);
}

Graph binaryTree(NodeId n) {
  BZC_REQUIRE(n >= 2, "tree needs n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId u = 1; u < n; ++u) edges.emplace_back(u, static_cast<NodeId>((u - 1) / 2));
  return Graph(n, edges);
}

Graph hypercube(unsigned dimensions) {
  BZC_REQUIRE(dimensions >= 1 && dimensions < 25, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1) << dimensions;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * dimensions / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (unsigned b = 0; b < dimensions; ++b) {
      const NodeId v = u ^ (static_cast<NodeId>(1) << b);
      if (v > u) edges.emplace_back(u, v);
    }
  }
  return Graph(n, edges);
}

Graph torus2d(NodeId rows, NodeId cols) {
  BZC_REQUIRE(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
  const NodeId n = rows * cols;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, static_cast<NodeId>((c + 1) % cols)));
      edges.emplace_back(id(r, c), id(static_cast<NodeId>((r + 1) % rows), c));
    }
  }
  return Graph(n, edges);
}

Graph gluedCopies(const Graph& base, NodeId hub, NodeId copies) {
  BZC_REQUIRE(hub < base.numNodes(), "hub out of range");
  BZC_REQUIRE(copies >= 1, "need at least one copy");
  const NodeId m = base.numNodes();
  const NodeId perCopy = m - 1;  // every copy contributes all nodes except the shared hub
  const NodeId n = 1 + copies * perCopy;
  // Map base node v (v != hub) of copy c to its global index.
  auto map = [&](NodeId c, NodeId v) -> NodeId {
    const NodeId local = v < hub ? v : static_cast<NodeId>(v - 1);
    return static_cast<NodeId>(1 + c * perCopy + local);
  };
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(base.numEdges()) * copies);
  const auto baseEdges = base.edgeList();
  for (NodeId c = 0; c < copies; ++c) {
    for (const auto& [u, v] : baseEdges) {
      const NodeId gu = (u == hub) ? 0 : map(c, u);
      const NodeId gv = (v == hub) ? 0 : map(c, v);
      edges.emplace_back(gu, gv);
    }
  }
  return Graph(n, edges);
}

Graph barbell(NodeId m, NodeId d, NodeId bridgeWidth, Rng& rng) {
  BZC_REQUIRE(bridgeWidth >= 1, "barbell needs at least one bridge edge");
  Rng left = rng.fork(1);
  Rng right = rng.fork(2);
  const Graph a = hnd(m, d, left);
  const Graph b = hnd(m, d, right);
  EdgeList edges = a.edgeList();
  for (auto [u, v] : b.edgeList()) {
    edges.emplace_back(static_cast<NodeId>(u + m), static_cast<NodeId>(v + m));
  }
  for (NodeId i = 0; i < bridgeWidth; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform(m));
    const auto v = static_cast<NodeId>(m + rng.uniform(m));
    edges.emplace_back(u, v);
  }
  return Graph(static_cast<NodeId>(2 * m), edges);
}

}  // namespace bzc
