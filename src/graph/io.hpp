// Graph serialization: edge-list text round-trip and Graphviz DOT export
// (examples render small topologies; benches can dump workloads for
// inspection).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace bzc {

/// Writes "n m" then one "u v" line per edge.
void writeEdgeList(std::ostream& os, const Graph& g);

/// Parses the writeEdgeList format; throws std::invalid_argument on damage.
[[nodiscard]] Graph readEdgeList(std::istream& is);

/// Graphviz DOT (undirected). `highlight` nodes are drawn filled red —
/// examples use it to mark Byzantine placements.
[[nodiscard]] std::string toDot(const Graph& g, const std::vector<NodeId>& highlight = {});

}  // namespace bzc
