// Breadth-first primitives: distances, balls, eccentricity, diameter,
// connectivity. These back both the analysis tooling (Good-set computation,
// tree-like checks) and the adversary placements.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace bzc {

inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

/// Distances from src; kUnreachable for disconnected nodes.
[[nodiscard]] std::vector<std::uint32_t> bfsDistances(const Graph& g, NodeId src);

/// Distances from the nearest of several sources.
[[nodiscard]] std::vector<std::uint32_t> multiSourceBfsDistances(const Graph& g,
                                                                 const std::vector<NodeId>& srcs);

/// Inclusive ball B(u, r): nodes within distance r of u, in BFS order.
[[nodiscard]] std::vector<NodeId> ball(const Graph& g, NodeId u, std::uint32_t r);

/// |B(u, j)| for j = 0..r (cumulative layer sizes).
[[nodiscard]] std::vector<std::size_t> ballSizes(const Graph& g, NodeId u, std::uint32_t r);

/// True if all nodes are reachable from node 0 (or the graph is empty).
[[nodiscard]] bool isConnected(const Graph& g);

/// Exact eccentricity of u (max finite distance).
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId u);

/// Exact diameter via BFS from every node — O(n·m); fine for test sizes.
[[nodiscard]] std::uint32_t exactDiameter(const Graph& g);

/// Diameter lower bound from `samples` BFS sweeps (double sweep heuristic).
[[nodiscard]] std::uint32_t approxDiameter(const Graph& g, unsigned samples = 8);

}  // namespace bzc
