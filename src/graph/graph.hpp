// Immutable undirected graph in compressed sparse row form.
//
// The paper's networks are sparse (constant maximum degree), so adjacency is
// the hot data structure of every simulation; CSR keeps each node's neighbour
// list contiguous. Multigraphs are supported because the H(n,d) permutation
// model (union of d/2 Hamiltonian cycles) can produce parallel edges.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace bzc {

class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list over nodes [0, n). Parallel edges are kept
  /// (each contributes to both endpoints' degrees); self-loops are rejected.
  Graph(NodeId numNodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  [[nodiscard]] NodeId numNodes() const noexcept { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  [[nodiscard]] std::size_t numEdges() const noexcept { return adjacency_.size() / 2; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u], adjacency_.data() + offsets_[u + 1]};
  }
  [[nodiscard]] NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }
  [[nodiscard]] NodeId maxDegree() const noexcept { return maxDegree_; }

  /// True if v appears in u's adjacency. Per-node adjacency is sorted, so
  /// this is an O(log deg) binary search, not a linear scan.
  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const;

  /// Number of parallel u-v edges (0 when none). O(log deg).
  [[nodiscard]] std::size_t edgeMultiplicity(NodeId u, NodeId v) const;

  /// Number of parallel edges collapsed when viewing this as a simple graph.
  [[nodiscard]] std::size_t multiEdgeCount() const;

  /// Simple-graph copy: parallel edges collapsed.
  [[nodiscard]] Graph simplified() const;

  /// Edge list (u < v per entry, parallel edges repeated).
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edgeList() const;

  /// Induced subgraph on `keep` (indices renumbered densely in keep-order).
  /// Also returns the old->new index map (kNoNode for dropped nodes).
  [[nodiscard]] std::pair<Graph, std::vector<NodeId>> inducedSubgraph(
      const std::vector<NodeId>& keep) const;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m, sorted per node
  NodeId maxDegree_ = 0;
};

}  // namespace bzc
