#include "graph/tree_like.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace bzc {

std::uint32_t treeLikeRadius(NodeId n, NodeId d) {
  BZC_REQUIRE(n >= 2 && d >= 2, "radius undefined for degenerate graphs");
  const double r = std::log(static_cast<double>(n)) / (10.0 * std::log(static_cast<double>(d)));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(r));
}

bool isLocallyTreeLike(const Graph& g, NodeId u, std::uint32_t r) {
  BZC_REQUIRE(u < g.numNodes(), "node out of range");
  // BFS to radius r. BFS discovers each ball node through exactly one (tree)
  // edge; the ball is a tree iff no *other* edge connects two ball nodes.
  // Because BFS enqueues all of layer j before processing any layer-j node,
  // every non-tree edge inside the ball eventually shows up while scanning
  // some node w as a neighbour v that is already visited yet is not w's
  // parent — or as a parallel edge to the parent (adjacent duplicates in the
  // sorted adjacency).
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> dist(g.numNodes(), kUnset);
  std::vector<NodeId> parent(g.numNodes(), kNoNode);
  std::vector<NodeId> order;
  dist[u] = 0;
  order.push_back(u);
  std::size_t head = 0;
  while (head < order.size()) {
    const NodeId w = order[head++];
    unsigned parentEdges = 0;
    for (NodeId v : g.neighbors(w)) {
      if (v == parent[w]) {
        if (++parentEdges > 1) return false;  // parallel edge to parent
        continue;
      }
      if (dist[v] == kUnset) {
        if (dist[w] < r) {
          dist[v] = dist[w] + 1;
          parent[v] = w;
          order.push_back(v);
        }
        // dist[w] == r: v lies outside the ball; irrelevant.
      } else {
        return false;  // cross / back / duplicate edge within the ball
      }
    }
  }
  return true;
}

std::size_t countTreeLike(const Graph& g, std::uint32_t r) {
  std::size_t count = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (isLocallyTreeLike(g, u, r)) ++count;
  }
  return count;
}

std::vector<char> treeLikeMask(const Graph& g, std::uint32_t r) {
  std::vector<char> mask(g.numNodes(), 0);
  for (NodeId u = 0; u < g.numNodes(); ++u) mask[u] = isLocallyTreeLike(g, u, r) ? 1 : 0;
  return mask;
}

}  // namespace bzc
