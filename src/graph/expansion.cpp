#include "graph/expansion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

std::size_t outNeighborhoodSize(const Graph& g, const std::vector<NodeId>& s) {
  std::vector<char> inSet(g.numNodes(), 0);
  for (NodeId u : s) {
    BZC_REQUIRE(u < g.numNodes(), "set member out of range");
    inSet[u] = 1;
  }
  std::vector<char> counted(g.numNodes(), 0);
  std::size_t out = 0;
  for (NodeId u : s) {
    for (NodeId v : g.neighbors(u)) {
      if (!inSet[v] && !counted[v]) {
        counted[v] = 1;
        ++out;
      }
    }
  }
  return out;
}

double vertexExpansionOfSet(const Graph& g, const std::vector<NodeId>& s) {
  BZC_REQUIRE(!s.empty(), "expansion of empty set");
  return static_cast<double>(outNeighborhoodSize(g, s)) / static_cast<double>(s.size());
}

double exactVertexExpansion(const Graph& g) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2 && n <= 20, "exact expansion limited to 2..20 nodes");
  double best = static_cast<double>(n);
  std::vector<NodeId> members;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const auto size = static_cast<NodeId>(__builtin_popcount(mask));
    if (size > n / 2) continue;
    members.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (mask & (1u << u)) members.push_back(u);
    }
    best = std::min(best, vertexExpansionOfSet(g, members));
  }
  return best;
}

std::vector<double> ballExpansionProfile(const Graph& g, NodeId u, std::uint32_t r) {
  const auto dist = bfsDistances(g, u);
  std::vector<std::size_t> layer(r + 2, 0);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (dist[v] <= r + 1) ++layer[dist[v]];
  }
  std::vector<double> profile(r + 1, 0.0);
  std::size_t ballSize = 0;
  for (std::uint32_t j = 0; j <= r; ++j) {
    ballSize += layer[j];
    // Out(B(u,j)) is exactly the (j+1)-st BFS layer.
    profile[j] = ballSize > 0 ? static_cast<double>(layer[j + 1]) / static_cast<double>(ballSize)
                              : 0.0;
  }
  return profile;
}

namespace {

/// One application of the lazy walk matrix W = (I + D^{-1}A)/2.
void applyLazyWalk(const Graph& g, const std::vector<double>& x, std::vector<double>& y) {
  const NodeId n = g.numNodes();
  for (NodeId u = 0; u < n; ++u) {
    double acc = 0.0;
    const auto nbrs = g.neighbors(u);
    for (NodeId v : nbrs) acc += x[v];
    const double deg = static_cast<double>(nbrs.size());
    y[u] = deg > 0 ? 0.5 * x[u] + 0.5 * acc / deg : x[u];
  }
}

/// Removes the component along the stationary distribution (pi ~ degree).
void deflateStationary(const Graph& g, std::vector<double>& x) {
  // <x, 1>_pi = sum_u pi_u x_u with pi_u = deg(u)/2m.
  double dot = 0.0;
  double norm = 0.0;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    const double w = static_cast<double>(g.degree(u));
    dot += w * x[u];
    norm += w;
  }
  if (norm == 0) return;
  const double shift = dot / norm;
  for (auto& v : x) v -= shift;
}

void normalize(std::vector<double>& x) {
  double norm = 0.0;
  for (double v : x) norm += v * v;
  norm = std::sqrt(norm);
  if (norm < 1e-300) return;
  for (auto& v : x) v /= norm;
}

}  // namespace

std::vector<double> fiedlerVector(const Graph& g, unsigned iterations, Rng& rng,
                                  const std::vector<double>* warmStart) {
  const NodeId n = g.numNodes();
  std::vector<double> x(n);
  if (warmStart != nullptr && warmStart->size() == n) {
    x = *warmStart;
  } else {
    for (auto& v : x) v = rng.uniformDouble() - 0.5;
  }
  std::vector<double> y(n);
  deflateStationary(g, x);
  normalize(x);
  for (unsigned it = 0; it < iterations; ++it) {
    applyLazyWalk(g, x, y);
    x.swap(y);
    deflateStationary(g, x);
    normalize(x);
  }
  return x;
}

SweepCut sweepCutByOrder(const Graph& g, const std::vector<NodeId>& order,
                         std::size_t maxPrefix) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(order.size() <= n, "sweep order larger than graph");
  std::vector<char> inSet(n, 0);
  std::vector<std::uint32_t> edgesIntoSet(n, 0);  // per outside node
  std::size_t outSize = 0;
  SweepCut best;
  best.expansion = static_cast<double>(n);
  std::size_t half = n / 2;
  if (maxPrefix > 0) half = std::min(half, maxPrefix);
  half = std::min(half, order.size());
  std::size_t prefix = 0;
  for (NodeId w : order) {
    BZC_REQUIRE(w < n && !inSet[w], "sweep order must be a permutation");
    // Move w into S.
    if (edgesIntoSet[w] > 0) --outSize;  // w leaves Out(S)
    inSet[w] = 1;
    ++prefix;
    for (NodeId v : g.neighbors(w)) {
      if (!inSet[v]) {
        if (edgesIntoSet[v] == 0) ++outSize;
        ++edgesIntoSet[v];
      }
    }
    if (prefix > half) break;
    const double expansion = static_cast<double>(outSize) / static_cast<double>(prefix);
    if (expansion < best.expansion) {
      best.expansion = expansion;
      best.smallSide = prefix;
      best.outSize = outSize;
    }
  }
  return best;
}

SweepCut fiedlerSweep(const Graph& g, unsigned iterations, Rng& rng,
                      const std::vector<double>* warmStart) {
  const NodeId n = g.numNodes();
  if (n < 2) return {};
  const auto fiedler = fiedlerVector(g, iterations, rng, warmStart);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return fiedler[a] != fiedler[b] ? fiedler[a] < fiedler[b] : a < b;
  });
  SweepCut ascending = sweepCutByOrder(g, order);
  // Sweep the other end of the spectrum too: the sparse side can sit at
  // either extreme of the Fiedler ordering.
  std::reverse(order.begin(), order.end());
  const SweepCut descending = sweepCutByOrder(g, order);
  return ascending.expansion <= descending.expansion ? ascending : descending;
}

bool fiedlerWarmStartUsable(const std::vector<double>& state, NodeId n) {
  if (state.size() != n || n == 0) return false;
  // A warm start must survive deflation: an (effectively) zero vector would
  // freeze the iteration at zero.
  double norm = 0.0;
  for (double v : state) norm += v * v;
  return norm > 1e-12;
}

double spectralGapEstimate(const Graph& g, unsigned iterations, Rng& rng,
                           std::vector<double>* state) {
  const NodeId n = g.numNodes();
  if (n < 2) {
    if (state != nullptr) state->clear();
    return 0.0;
  }
  const bool warm = state != nullptr && fiedlerWarmStartUsable(*state, n);
  auto x = fiedlerVector(g, iterations, rng, warm ? state : nullptr);
  // Rayleigh quotient of W on the deflated vector approximates lambda2(W).
  std::vector<double> y(n);
  applyLazyWalk(g, x, y);
  double num = 0.0;
  double den = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    num += x[u] * y[u];
    den += x[u] * x[u];
  }
  const double gap = den < 1e-300 ? 0.0 : 1.0 - num / den;
  if (state != nullptr) *state = std::move(x);
  return gap;
}

double spectralGapEstimate(const Graph& g, unsigned iterations, Rng& rng) {
  return spectralGapEstimate(g, iterations, rng, nullptr);
}

double sampledExpansionUpperBound(const Graph& g, unsigned samples, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2, "graph too small");
  double best = static_cast<double>(n);
  std::vector<NodeId> subset;
  std::vector<char> inSet(n, 0);
  for (unsigned s = 0; s < samples; ++s) {
    // Grow a random connected subset of random target size <= n/2 via BFS
    // with shuffled frontier (biases toward "round" sets, which is what a
    // low-expansion certificate looks like in these graph families).
    const std::size_t target = 1 + rng.uniform(std::max<std::uint64_t>(1, n / 2));
    subset.clear();
    std::fill(inSet.begin(), inSet.end(), 0);
    std::vector<NodeId> frontier;
    const auto seed = static_cast<NodeId>(rng.uniform(n));
    frontier.push_back(seed);
    inSet[seed] = 1;
    subset.push_back(seed);
    std::size_t head = 0;
    while (subset.size() < target && head < frontier.size()) {
      const NodeId u = frontier[head++];
      for (NodeId v : g.neighbors(u)) {
        if (!inSet[v] && subset.size() < target) {
          inSet[v] = 1;
          subset.push_back(v);
          frontier.push_back(v);
        }
      }
    }
    best = std::min(best, vertexExpansionOfSet(g, subset));
  }
  return best;
}

}  // namespace bzc
