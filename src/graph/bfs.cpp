#include "graph/bfs.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace bzc {

namespace {

void bfsFrom(const Graph& g, std::vector<std::uint32_t>& dist, std::vector<NodeId>& queue) {
  // `queue` holds the sources with dist already set to 0.
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const std::uint32_t du = dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
}

}  // namespace

std::vector<std::uint32_t> bfsDistances(const Graph& g, NodeId src) {
  BZC_REQUIRE(src < g.numNodes(), "bfs source out of range");
  std::vector<std::uint32_t> dist(g.numNodes(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.numNodes());
  dist[src] = 0;
  queue.push_back(src);
  bfsFrom(g, dist, queue);
  return dist;
}

std::vector<std::uint32_t> multiSourceBfsDistances(const Graph& g,
                                                   const std::vector<NodeId>& srcs) {
  std::vector<std::uint32_t> dist(g.numNodes(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.numNodes());
  for (NodeId s : srcs) {
    BZC_REQUIRE(s < g.numNodes(), "bfs source out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  bfsFrom(g, dist, queue);
  return dist;
}

std::vector<NodeId> ball(const Graph& g, NodeId u, std::uint32_t r) {
  BZC_REQUIRE(u < g.numNodes(), "ball centre out of range");
  std::vector<std::uint32_t> dist(g.numNodes(), kUnreachable);
  std::vector<NodeId> order;
  dist[u] = 0;
  order.push_back(u);
  std::size_t head = 0;
  while (head < order.size()) {
    const NodeId w = order[head++];
    if (dist[w] == r) continue;
    for (NodeId v : g.neighbors(w)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[w] + 1;
        order.push_back(v);
      }
    }
  }
  return order;
}

std::vector<std::size_t> ballSizes(const Graph& g, NodeId u, std::uint32_t r) {
  const auto dist = bfsDistances(g, u);
  std::vector<std::size_t> cumulative(r + 1, 0);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (dist[v] <= r) ++cumulative[dist[v]];
  }
  for (std::uint32_t j = 1; j <= r; ++j) cumulative[j] += cumulative[j - 1];
  return cumulative;
}

bool isConnected(const Graph& g) {
  if (g.numNodes() == 0) return true;
  const auto dist = bfsDistances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Graph& g, NodeId u) {
  const auto dist = bfsDistances(g, u);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exactDiameter(const Graph& g) {
  std::uint32_t diameter = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) diameter = std::max(diameter, eccentricity(g, u));
  return diameter;
}

std::uint32_t approxDiameter(const Graph& g, unsigned samples) {
  if (g.numNodes() == 0) return 0;
  // Double sweep: BFS from an arbitrary node, then repeatedly from the
  // farthest node found; each sweep's eccentricity lower-bounds the diameter.
  NodeId start = 0;
  std::uint32_t best = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const auto dist = bfsDistances(g, start);
    NodeId farthest = start;
    std::uint32_t ecc = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (dist[v] != kUnreachable && dist[v] > ecc) {
        ecc = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, ecc);
    if (farthest == start) break;
    start = farthest;
  }
  return best;
}

}  // namespace bzc
