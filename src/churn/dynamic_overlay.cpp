#include "churn/dynamic_overlay.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace bzc {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

DynamicOverlay::DynamicOverlay(const Graph& initial, const ByzantineSet& byz, NodeId targetDegree)
    : targetDegree_(targetDegree) {
  const NodeId n = initial.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(targetDegree >= 2 && targetDegree % 2 == 0,
              "overlay repair needs an even target degree >= 2");
  BZC_REQUIRE(n > targetDegree + 2, "initial overlay below the membership floor");
  // Repair pulls degrees *up* to the target, never down: churn needs a
  // regular-family seed graph (Hnd / configuration model), not e.g. a
  // rewired small world whose degrees straddle the target.
  BZC_REQUIRE(initial.maxDegree() <= targetDegree,
              "initial overlay degree exceeds the repair target");
  members_.reserve(n);
  degree_.reserve(n);
  incidence_.resize(n);
  indexOf_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    members_.push_back({u, byz.contains(u)});
    degree_.push_back(initial.degree(u));
    incidence_[u].reserve(initial.degree(u));
    indexOf_.emplace(u, u);
    if (byz.contains(u)) ++byzCount_;
  }
  nextId_ = n;
  edges_.reserve(initial.numEdges());
  for (const auto& [u, v] : initial.edgeList()) {
    incidence_[u].push_back(edges_.size());
    incidence_[v].push_back(edges_.size());
    edges_.emplace_back(u, v);
  }
}

std::size_t DynamicOverlay::indexOf(std::uint64_t id) const {
  const auto it = indexOf_.find(id);
  return it == indexOf_.end() ? kNpos : it->second;
}

bool DynamicOverlay::isLive(std::uint64_t id) const { return indexOf(id) != kNpos; }

NodeId DynamicOverlay::degreeOf(std::uint64_t id) const {
  const std::size_t i = indexOf(id);
  BZC_REQUIRE(i != kNpos, "degreeOf: id not live");
  return degree_[i];
}

void DynamicOverlay::addEdge(std::uint64_t a, std::uint64_t b) {
  BZC_ASSERT(a != b);
  const std::size_t ia = indexOf(a);
  const std::size_t ib = indexOf(b);
  incidence_[ia].push_back(edges_.size());
  incidence_[ib].push_back(edges_.size());
  edges_.emplace_back(a, b);
  ++degree_[ia];
  ++degree_[ib];
}

void DynamicOverlay::incidenceRemove(std::size_t memberIdx, std::size_t edgeIndex) {
  std::vector<std::size_t>& list = incidence_[memberIdx];
  for (std::size_t k = 0; k < list.size(); ++k) {
    if (list[k] == edgeIndex) {
      list[k] = list.back();
      list.pop_back();
      return;
    }
  }
  BZC_ASSERT(false);  // the index is maintained on every mutation
}

void DynamicOverlay::incidenceReplace(std::size_t memberIdx, std::size_t from, std::size_t to) {
  for (std::size_t& e : incidence_[memberIdx]) {
    if (e == from) {
      e = to;
      return;
    }
  }
  BZC_ASSERT(false);
}

void DynamicOverlay::removeEdgeAt(std::size_t index) {
  const auto [a, b] = edges_[index];
  const std::size_t ia = indexOf(a);
  const std::size_t ib = indexOf(b);
  --degree_[ia];
  --degree_[ib];
  incidenceRemove(ia, index);
  incidenceRemove(ib, index);
  const std::size_t last = edges_.size() - 1;
  if (index != last) {
    // Swap-pop: the moved edge changes position; patch its endpoints' index
    // entries (each edge position appears exactly once per endpoint list).
    edges_[index] = edges_[last];
    const auto [c, d] = edges_[index];
    incidenceReplace(indexOf(c), last, index);
    incidenceReplace(indexOf(d), last, index);
  }
  edges_.pop_back();
}

bool DynamicOverlay::spliceInto(std::uint64_t node, Rng& rng) {
  // Replace a random edge (a,b), a,b != node, with (a,node)+(node,b): the
  // newcomer gains two stubs, a and b keep their degrees.
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (edges_.empty()) return false;
    const std::size_t e = static_cast<std::size_t>(rng.uniform(edges_.size()));
    const auto [a, b] = edges_[e];
    if (a == node || b == node) continue;
    removeEdgeAt(e);
    addEdge(a, node);
    addEdge(node, b);
    return true;
  }
  // Dense incidence (tiny overlays): fall back to a linear scan.
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].first == node || edges_[e].second == node) continue;
    const auto [a, b] = edges_[e];
    removeEdgeAt(e);
    addEdge(a, node);
    addEdge(node, b);
    return true;
  }
  return false;
}

std::uint64_t DynamicOverlay::join(bool byzantine, Rng& rng) {
  const std::uint64_t id = nextId_++;
  indexOf_.emplace(id, members_.size());
  members_.push_back({id, byzantine});
  degree_.push_back(0);
  incidence_.emplace_back();
  if (byzantine) ++byzCount_;

  // First hand the newcomer to nodes already missing stubs (repairs earlier
  // departures for free), in a randomised order over the deficit set.
  std::vector<std::uint64_t> deficits;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id != id && degree_[i] < targetDegree_) deficits.push_back(members_[i].id);
  }
  rng.shuffle(deficits);
  for (std::uint64_t partner : deficits) {
    if (degreeOf(id) >= targetDegree_) break;
    addEdge(id, partner);
  }
  // Remaining stubs come in pairs via edge splicing.
  while (degreeOf(id) + 1 < targetDegree_) {
    if (!spliceInto(id, rng)) break;
  }
  // An odd leftover stub (deficit filling consumed an odd count) pairs with
  // one more splice half… impossible; leave it as a deficit for
  // repairToRegular, which the epoch loop always runs after the event batch.
  return id;
}

bool DynamicOverlay::leave(std::uint64_t id, Rng& rng) {
  if (liveCount() <= membershipFloor()) return false;
  const std::size_t pos = indexOf(id);
  if (pos == kNpos) return false;

  // Collect and delete the incident edges, freeing one stub per neighbour.
  // The incidence index makes this O(d²) per departure (each removal patches
  // a handful of short per-member lists) instead of the old O(m) edge-list
  // sweep — the ROADMAP perf lever that was quadratic for mass departures at
  // 16k+ members (DESIGN.md §8).
  std::vector<std::uint64_t> stubs;
  stubs.reserve(degree_[pos]);
  while (!incidence_[pos].empty()) {
    const std::size_t e = incidence_[pos].back();
    const auto [a, b] = edges_[e];
    stubs.push_back(a == id ? b : a);
    removeEdgeAt(e);  // also erases e from incidence_[pos]
  }
  if (members_[pos].byzantine) --byzCount_;
  // Swap-pop all three parallel vectors (O(1) instead of the old O(n)
  // erases), patching the moved member's position in the id map. The map
  // entry for `id` itself must outlive the stub-collection loop above:
  // removeEdgeAt resolves both endpoints through indexOf().
  const std::size_t last = members_.size() - 1;
  if (pos != last) {
    members_[pos] = members_[last];
    degree_[pos] = degree_[last];
    incidence_[pos] = std::move(incidence_[last]);
    indexOf_[members_[pos].id] = pos;
  }
  members_.pop_back();
  degree_.pop_back();
  incidence_.pop_back();
  indexOf_.erase(id);

  pairStubs(stubs, rng);
  return true;
}

void DynamicOverlay::pairStubs(std::vector<std::uint64_t>& stubs, Rng& rng) {
  rng.shuffle(stubs);
  while (stubs.size() >= 2) {
    const std::uint64_t a = stubs.back();
    stubs.pop_back();
    // Find a partner that is not `a` (parallel edges are fine — the H(n,d)
    // family is a multigraph — but self-loops are not).
    std::size_t partner = kNpos;
    for (std::size_t i = stubs.size(); i-- > 0;) {
      if (stubs[i] != a) {
        partner = i;
        break;
      }
    }
    if (partner == kNpos) break;  // every remaining stub is on `a`: strand them
    const std::uint64_t b = stubs[partner];
    stubs[partner] = stubs.back();
    stubs.pop_back();
    addEdge(a, b);
  }
  // Any strands stay as degree deficits; repairToRegular resolves them.
}

void DynamicOverlay::rewire(Rng& rng) {
  if (edges_.size() < 2) return;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t i = static_cast<std::size_t>(rng.uniform(edges_.size()));
    const std::size_t j = static_cast<std::size_t>(rng.uniform(edges_.size()));
    if (i == j) continue;
    const auto [a, b] = edges_[i];
    const auto [c, d] = edges_[j];
    if (a == d || c == b) continue;  // swap would create a self-loop
    edges_[i] = {a, d};
    edges_[j] = {c, b};
    // b's stub moved from edge i to edge j, d's the other way round.
    incidenceReplace(indexOf(b), i, j);
    incidenceReplace(indexOf(d), j, i);
    return;  // degrees unchanged: every endpoint keeps one stub per edge
  }
}

std::size_t DynamicOverlay::degreeDeficit() const {
  std::size_t deficit = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    BZC_ASSERT(degree_[i] <= targetDegree_);
    deficit += targetDegree_ - degree_[i];
  }
  return deficit;
}

void DynamicOverlay::repairToRegular(Rng& rng) {
  // Gather one stub per missing degree unit and pair across distinct nodes.
  std::vector<std::uint64_t> stubs;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (NodeId k = degree_[i]; k < targetDegree_; ++k) stubs.push_back(members_[i].id);
  }
  if (stubs.empty()) return;
  pairStubs(stubs, rng);
  // pairStubs can strand stubs only when they all sit on one node; with even
  // d the strand count is even, so splicing (two stubs per splice) finishes.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    while (degree_[i] + 1 < targetDegree_) {
      if (!spliceInto(members_[i].id, rng)) return;  // overlay too small to splice
    }
  }
  BZC_ASSERT(degreeDeficit() == 0);
}

OverlaySnapshot DynamicOverlay::snapshot() const {
  OverlaySnapshot snap;
  snapshotInto(snap);
  return snap;
}

void DynamicOverlay::snapshotInto(OverlaySnapshot& out) const {
  const NodeId n = static_cast<NodeId>(members_.size());
  // members_ is an arbitrary permutation after swap-compacted departures;
  // dense indices must stay in increasing global-id order (epoch bookkeeping
  // maps dense -> id monotonically), so build a sort-by-id permutation and
  // its inverse for the edge mapping. Zero-churn trajectories keep members_
  // sorted, making `order` the identity — snapshots stay bit-identical.
  std::vector<std::size_t>& order = snapOrder_;
  order.resize(members_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return members_[a].id < members_[b].id;
  });
  std::vector<NodeId>& denseOf = snapDenseOf_;
  denseOf.resize(members_.size());
  for (std::size_t dense = 0; dense < order.size(); ++dense)
    denseOf[order[dense]] = static_cast<NodeId>(dense);
  out.denseToId.clear();
  out.denseToId.reserve(n);
  std::vector<NodeId>& byzDense = snapByzDense_;
  byzDense.clear();
  for (NodeId dense = 0; dense < n; ++dense) {
    out.denseToId.push_back(members_[order[dense]].id);
    if (members_[order[dense]].byzantine) byzDense.push_back(dense);
  }
  std::vector<std::pair<NodeId, NodeId>>& denseEdges = snapEdges_;
  denseEdges.clear();
  denseEdges.reserve(edges_.size());
  for (const auto& [a, b] : edges_) {
    const std::size_t ia = indexOf(a);
    const std::size_t ib = indexOf(b);
    BZC_ASSERT(ia != kNpos && ib != kNpos);
    denseEdges.emplace_back(denseOf[ia], denseOf[ib]);
  }
  // Graph's CSR form is canonical in the edge *multiset* (adjacency is
  // sorted per node), so snapshot equality only needs membership+edge
  // equality — the zero-churn identity tests rely on this.
  out.graph = Graph(n, denseEdges);
  out.byz = ByzantineSet(n, byzDense);
}

}  // namespace bzc
