// EpochRunner: the counting→agreement pipeline run continuously over an
// evolving overlay.
//
// One churn trial is a trajectory: epoch 1 runs the scenario's protocol on
// the exact graph/placement materializeTrial would build (so a zero-churn
// schedule reproduces the static pipeline bit-for-bit), then each later
// epoch (a) asks the ChurnModel for an event batch, (b) applies it through
// DynamicOverlay and repairs to d-regularity, and (c) re-runs the protocol
// when the recount cadence says so — otherwise the network keeps operating
// on its stale estimate, and the runner records how stale it got.
//
// Determinism: every stream an epoch touches forks from (masterSeed, trial,
// epoch) — events, overlay repair, spectral probes and the per-epoch
// protocol Rng are all independent tagged forks, so a churn ScenarioSpec is
// bit-identical at any thread count, exactly like the static paths (the
// churn_test thread-invariance suite pins this). Epoch 1's protocol stream
// is the static kProtocolStream fork, which is what makes the zero-churn
// identity exact rather than statistical.
//
// Execution is a depth-bounded software pipeline (ChurnSchedule::
// pipelineDepth, DESIGN.md §11): the serial overlay stage (events, repair,
// snapshot, warm-started gap probe) runs ahead while up to `depth` recounts
// — pure functions of their materialised snapshots — execute on pool
// workers; the estimate/staleness/drift fold is a serial finalization pass
// in epoch order, so every depth produces the identical ChurnTrialResult
// (epoch_pipeline_test pins depth 1 == depth D, report by report).
//
// Reporting: per-trial aggregates land in TrialOutcome::extra under
// ChurnExtraSlot (deliberately outside fingerprint(), like the adversary
// diagnostics, so the static goldens stay pinned); per-epoch rows are
// available through runChurnTrialDetailed for benches/examples that plot
// n(t), staleness and spectral-gap drift.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/experiment.hpp"

namespace bzc {

/// TrialOutcome::extra slots for churn trials (ExperimentSummary extras).
enum ChurnExtraSlot : std::size_t {
  kChurnEpochs = 0,         ///< epochs simulated
  kChurnRecounts = 1,       ///< epochs that re-ran the protocol
  kChurnFinalN = 2,         ///< live membership after the last epoch
  kChurnGrowth = 3,         ///< finalN / initialN
  kChurnJoins = 4,          ///< total joins applied (honest + Byzantine)
  kChurnLeaves = 5,         ///< total departures applied
  kChurnRewires = 6,        ///< total degree-preserving swaps applied
  kChurnFinalByz = 7,       ///< Byzantine members after the last epoch
  kChurnByzInflation = 8,   ///< finalByz / initialByz (1.0 when static)
  kChurnMeanStaleness = 9,  ///< mean over epochs of |est - ln n(t)| / ln n(t)
  kChurnMaxStaleness = 10,  ///< worst epoch of the same
  kChurnMeanDrift = 11,     ///< mean of |ln n(anchor) - ln n(t)| / ln n(t): the truth's
                            ///< drift since the last recount, net of protocol bias
  kChurnMaxDrift = 12,      ///< worst epoch of the same
  kChurnMeanGap = 13,       ///< mean spectral-gap estimate across epochs
  kChurnGapDrift = 14,      ///< last epoch's gap minus epoch 1's
  kChurnLastAgree = 15,     ///< last recount's fracAgreeing (Agreement/Pipeline; else 0)
  kChurnGapProbeIters = 16, ///< total power iterations the gap probes spent
                            ///< (the Fiedler warm start's saving shows here)
  kChurnExtraSlots = 17,
};

/// Names for the slots above, aligned by index (bench JSON labelling).
[[nodiscard]] const char* churnExtraSlotName(std::size_t slot);

/// One epoch of a churn trial, for benches/examples that want the trajectory.
struct EpochReport {
  std::uint32_t epoch = 0;
  NodeId liveN = 0;
  std::size_t byzCount = 0;
  std::uint32_t joins = 0;
  std::uint32_t leaves = 0;
  std::uint32_t rewires = 0;
  bool recounted = false;
  double estimate = 0.0;     ///< ln-scale estimate the network is operating on
  double staleness = 0.0;    ///< |estimate - ln n(t)| / ln n(t)
  double drift = 0.0;        ///< |ln n(last recount) - ln n(t)| / ln n(t); 0 at recounts
  double spectralGap = 0.0;  ///< spectralGapEstimate of this epoch's overlay
  Round rounds = 0;          ///< protocol rounds spent this epoch (0 between recounts)
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  double fracAgreeing = 0.0;     ///< agreement stage result when recounted (else carries over)
  std::uint64_t fingerprint = 0;  ///< this epoch's protocol-run fingerprint (0 between recounts)
};

struct ChurnTrialResult {
  TrialOutcome outcome;             ///< what the ExperimentRunner aggregates
  std::vector<EpochReport> epochs;  ///< the trajectory behind it
};

/// Full-detail churn trial; pure function of (spec, index). Requires
/// spec.churn.enabled().
[[nodiscard]] ChurnTrialResult runChurnTrialDetailed(const ScenarioSpec& spec,
                                                     std::uint32_t index);

/// The ExperimentRunner entry point: detailed run, trajectory dropped.
[[nodiscard]] TrialOutcome runChurnTrial(const ScenarioSpec& spec, std::uint32_t index);

}  // namespace bzc
