// Mutable overlay with d-regularity repair — the dynamic counterpart of the
// static generators in graph/generators.hpp.
//
// The overlay tracks live members under churn. Members carry stable 64-bit
// global ids (monotonically increasing; a rejoining peer is a *new* id, which
// is exactly how whitewashing works in unstructured P2P overlays) and a
// Byzantine flag fixed at join time. Edges connect global ids; every epoch
// the overlay is materialised as a dense Graph (ids compacted in increasing
// order) so the entire existing protocol stack — generators' invariants,
// SyncEngine, placements — runs unchanged on each snapshot.
//
// Repair keeps the overlay a valid H(n,d)-shaped input (d-regular multigraph,
// no self-loops) using the randomized replacement pairing rule of self-healing
// overlay maintenance:
//  - a departure frees one stub on each neighbour; freed stubs are shuffled
//    and paired into replacement edges;
//  - a join claims d stubs by first filling degree deficits, then splicing
//    into random existing edges (replace (a,b) with (a,x)+(x,b) — all other
//    degrees unchanged);
//  - leftover deficits (odd pairings, self-pair collisions) are mopped up by
//    repairToRegular(), which pairs deficit stubs across distinct nodes and
//    resolves a single stranded node by splicing. With even d the total
//    deficit is always even, so repair terminates at exact d-regularity
//    whenever the membership stays above the d+2 floor.
//
// All randomness comes from caller-provided Rng streams, so an overlay
// trajectory is a pure function of (initial graph, event sequence, stream).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"

namespace bzc {

/// One live overlay member.
struct OverlayMember {
  std::uint64_t id = 0;  ///< stable global id, unique across the whole trajectory
  bool byzantine = false;
};

/// A dense per-epoch snapshot: the Graph the protocols run on, the matching
/// Byzantine set, and the dense-index -> global-id map for bookkeeping.
struct OverlaySnapshot {
  Graph graph;
  ByzantineSet byz;
  std::vector<std::uint64_t> denseToId;
};

class DynamicOverlay {
 public:
  /// Seeds the overlay from a materialised trial: node u becomes global id u,
  /// byz membership is copied, and targetDegree is the repair target (must be
  /// even and >= 2; the H(n,d)/configuration-model families are even-degree).
  DynamicOverlay(const Graph& initial, const ByzantineSet& byz, NodeId targetDegree);

  // --- membership -----------------------------------------------------------
  [[nodiscard]] std::size_t liveCount() const noexcept { return members_.size(); }
  [[nodiscard]] std::size_t byzCount() const noexcept { return byzCount_; }
  [[nodiscard]] NodeId targetDegree() const noexcept { return targetDegree_; }
  /// Live members. Insertion-ordered until the first departure; leave() uses
  /// swap-compaction, so after churn the order is an arbitrary permutation.
  /// snapshot() re-sorts by global id, so dense indices stay canonical.
  [[nodiscard]] const std::vector<OverlayMember>& members() const noexcept { return members_; }
  [[nodiscard]] bool isLive(std::uint64_t id) const;
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_.size(); }

  /// Minimum membership the overlay refuses to shrink below (repair needs
  /// enough non-incident edges to splice through).
  [[nodiscard]] std::size_t membershipFloor() const noexcept {
    return static_cast<std::size_t>(targetDegree_) + 2;
  }

  // --- mutation (callers drive these from ChurnModel events) ----------------
  /// Adds a fresh member and wires it to degree d via deficit filling + edge
  /// splicing. Returns the new global id.
  std::uint64_t join(bool byzantine, Rng& rng);

  /// Removes a live member and pairs the freed stubs. No-op (returns false)
  /// when the membership is at the floor or the id is not live.
  bool leave(std::uint64_t id, Rng& rng);

  /// One degree-preserving double-edge swap: (a,b),(c,d) -> (a,d),(c,b).
  /// Draws are rejected (bounded retries) when they would create a self-loop.
  void rewire(Rng& rng);

  /// Pairs all outstanding degree deficits back to exact d-regularity.
  void repairToRegular(Rng& rng);

  // --- inspection / materialisation -----------------------------------------
  /// Sum over live members of (d - degree); 0 iff the overlay is d-regular.
  [[nodiscard]] std::size_t degreeDeficit() const;
  [[nodiscard]] NodeId degreeOf(std::uint64_t id) const;

  /// Dense snapshot for one epoch. Requires a repaired (or at least
  /// self-loop-free) edge set; Graph construction validates the rest.
  [[nodiscard]] OverlaySnapshot snapshot() const;

  /// Buffer-reusing variant for callers that materialise snapshots in a loop
  /// (the epoch pipeline keeps a ring of depth+1 of them): the sort/index/
  /// edge scratch lives on the overlay and `out`'s denseToId keeps its
  /// capacity, so a steady-state epoch allocates only the Graph CSR arrays
  /// and the byz mask instead of five fresh vectors. Produces bit-identical
  /// snapshots to snapshot() — which is implemented on top of this.
  void snapshotInto(OverlaySnapshot& out) const;

 private:
  [[nodiscard]] std::size_t indexOf(std::uint64_t id) const;  ///< npos when not live
  void addEdge(std::uint64_t a, std::uint64_t b);
  void removeEdgeAt(std::size_t index);
  void incidenceRemove(std::size_t memberIdx, std::size_t edgeIndex);
  void incidenceReplace(std::size_t memberIdx, std::size_t from, std::size_t to);
  /// Splices `node` into an edge not incident to it: (a,b) -> (a,node)+(node,b).
  /// Returns false when no such edge exists.
  bool spliceInto(std::uint64_t node, Rng& rng);
  /// Pairs the stub multiset into edges; stubs that cannot be paired without
  /// a self-loop are left as deficits. Consumes `stubs`.
  void pairStubs(std::vector<std::uint64_t>& stubs, Rng& rng);

  NodeId targetDegree_ = 0;
  std::uint64_t nextId_ = 0;
  std::size_t byzCount_ = 0;
  /// Unordered after the first leave() (swap-compaction); see members().
  std::vector<OverlayMember> members_;
  std::vector<NodeId> degree_;                    ///< parallel to members_
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges_;  ///< global ids, a != b
  /// Per-member incidence index (edge positions in edges_), parallel to
  /// members_. Turns leave() from a full edge-list sweep into O(d) lookups —
  /// the ROADMAP perf lever for mass departures at 16k+ members.
  std::vector<std::vector<std::size_t>> incidence_;
  /// Global id -> position in members_/degree_/incidence_. With swap-pop
  /// compaction in leave() this makes departures fully O(d²): no O(n)
  /// lower_bound scans and no O(n) vector erases remain.
  std::unordered_map<std::uint64_t, std::size_t> indexOf_;

  // snapshotInto() scratch (mutable: snapshots are logically const). Grow to
  // the high-water membership/edge count once, then serve every epoch.
  mutable std::vector<std::size_t> snapOrder_;
  mutable std::vector<NodeId> snapDenseOf_;
  mutable std::vector<NodeId> snapByzDense_;
  mutable std::vector<std::pair<NodeId, NodeId>> snapEdges_;
};

}  // namespace bzc
