#include "churn/churn_model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/require.hpp"

namespace bzc {

const char* churnModelKindName(ChurnModelKind kind) {
  switch (kind) {
    case ChurnModelKind::None: return "none";
    case ChurnModelKind::Steady: return "steady";
    case ChurnModelKind::FlashCrowd: return "flash-crowd";
    case ChurnModelKind::MassExodus: return "mass-exodus";
    case ChurnModelKind::ByzantineChurn: return "byzantine-churn";
  }
  return "?";
}

ChurnSchedule ChurnSchedule::none() { return {}; }

ChurnSchedule ChurnSchedule::steady(std::uint32_t epochs, double rate,
                                    std::uint32_t recountEvery) {
  ChurnSchedule s;
  s.kind = ChurnModelKind::Steady;
  s.epochs = epochs;
  s.joinRate = rate;
  s.leaveRate = rate;
  s.rewireRate = rate;
  s.recountEvery = recountEvery;
  return s;
}

ChurnSchedule ChurnSchedule::flashCrowd(std::uint32_t epochs, double fraction,
                                        std::uint32_t atEpoch, std::uint32_t recountEvery) {
  ChurnSchedule s;
  s.kind = ChurnModelKind::FlashCrowd;
  s.epochs = epochs;
  s.flashFraction = fraction;
  s.flashEpoch = atEpoch;
  s.recountEvery = recountEvery;
  return s;
}

ChurnSchedule ChurnSchedule::massExodus(std::uint32_t epochs, double fraction,
                                        std::uint32_t atEpoch, std::uint32_t recountEvery) {
  ChurnSchedule s;
  s.kind = ChurnModelKind::MassExodus;
  s.epochs = epochs;
  s.exodusFraction = fraction;
  s.exodusEpoch = atEpoch;
  s.recountEvery = recountEvery;
  return s;
}

ChurnSchedule ChurnSchedule::byzantine(std::uint32_t epochs, double honestRate,
                                       double rejoinBoost, std::uint32_t recountEvery) {
  ChurnSchedule s;
  s.kind = ChurnModelKind::ByzantineChurn;
  s.epochs = epochs;
  s.joinRate = honestRate;
  s.leaveRate = honestRate;
  s.byzRejoinBoost = rejoinBoost;
  s.recountEvery = recountEvery;
  return s;
}

std::uint32_t poissonDraw(double lambda, Rng& rng) {
  if (lambda <= 0.0) return 0;
  // Knuth inversion: count uniforms until their product drops below e^-l.
  // Split large lambda into chunks so the running product stays normal.
  std::uint32_t total = 0;
  while (lambda > 32.0) {
    total += poissonDraw(32.0, rng);
    lambda -= 32.0;
  }
  const double floor = std::exp(-lambda);
  double product = 1.0;
  std::uint32_t k = 0;
  for (;;) {
    product *= rng.uniformDouble();
    if (product <= floor) return total + k;
    ++k;
  }
}

namespace {

/// Samples `count` distinct departures from the live membership. `byzOnly`
/// restricts to Byzantine members; `honestOnly` to honest ones. Never drains
/// below the overlay floor (the overlay enforces it too, but sampling within
/// the floor keeps every sampled departure applicable — models that sample
/// twice in one epoch pass the earlier pick count as `reserved` so the
/// combined batch still clears the floor and no event is silently refused).
std::vector<std::uint64_t> sampleLeavers(const DynamicOverlay& overlay, std::size_t count,
                                         bool honestOnly, bool byzOnly, Rng& rng,
                                         std::size_t reserved = 0) {
  std::vector<std::uint64_t> pool;
  for (const OverlayMember& m : overlay.members()) {
    if (honestOnly && m.byzantine) continue;
    if (byzOnly && !m.byzantine) continue;
    pool.push_back(m.id);
  }
  std::size_t headroom =
      overlay.liveCount() > overlay.membershipFloor()
          ? overlay.liveCount() - overlay.membershipFloor()
          : 0;
  headroom = headroom > reserved ? headroom - reserved : 0;
  count = std::min({count, pool.size(), headroom});
  if (count == 0) return {};
  const std::vector<std::uint32_t> picks =
      rng.sampleWithoutReplacement(static_cast<std::uint32_t>(pool.size()),
                                   static_cast<std::uint32_t>(count));
  std::vector<std::uint64_t> leavers;
  leavers.reserve(count);
  for (std::uint32_t p : picks) leavers.push_back(pool[p]);
  return leavers;
}

/// Poisson join/leave/rewire background shared by every model. Draw order is
/// fixed (joins, leaves, rewires) so model streams stay aligned across kinds.
ChurnEvents steadyEvents(const DynamicOverlay& overlay, double joinRate, double leaveRate,
                         double rewireRate, Rng& rng) {
  ChurnEvents ev;
  const double n = static_cast<double>(overlay.liveCount());
  ev.honestJoins = poissonDraw(joinRate * n, rng);
  const std::uint32_t departures = poissonDraw(leaveRate * n, rng);
  ev.leaves = sampleLeavers(overlay, departures, /*honestOnly=*/false, /*byzOnly=*/false, rng);
  ev.rewires = poissonDraw(rewireRate * n, rng);
  return ev;
}

class SteadyChurn final : public ChurnModel {
 public:
  explicit SteadyChurn(const ChurnSchedule& s) : s_(s) {}
  const char* name() const override { return "steady"; }
  ChurnEvents epochEvents(const DynamicOverlay& overlay, std::uint32_t, Rng& rng) override {
    return steadyEvents(overlay, s_.joinRate, s_.leaveRate, s_.rewireRate, rng);
  }

 private:
  ChurnSchedule s_;
};

class FlashCrowd final : public ChurnModel {
 public:
  explicit FlashCrowd(const ChurnSchedule& s) : s_(s) {}
  const char* name() const override { return "flash-crowd"; }
  ChurnEvents epochEvents(const DynamicOverlay& overlay, std::uint32_t epoch, Rng& rng) override {
    ChurnEvents ev = steadyEvents(overlay, s_.joinRate, s_.leaveRate, s_.rewireRate, rng);
    if (epoch == s_.flashEpoch) {
      ev.honestJoins += static_cast<std::uint32_t>(
          s_.flashFraction * static_cast<double>(overlay.liveCount()));
    }
    return ev;
  }

 private:
  ChurnSchedule s_;
};

class MassExodus final : public ChurnModel {
 public:
  explicit MassExodus(const ChurnSchedule& s) : s_(s) {}
  const char* name() const override { return "mass-exodus"; }
  ChurnEvents epochEvents(const DynamicOverlay& overlay, std::uint32_t epoch, Rng& rng) override {
    ChurnEvents ev = steadyEvents(overlay, s_.joinRate, s_.leaveRate, s_.rewireRate, rng);
    if (epoch == s_.exodusEpoch) {
      const std::size_t wave = static_cast<std::size_t>(
          s_.exodusFraction * static_cast<double>(overlay.liveCount()));
      const std::vector<std::uint64_t> extra = sampleLeavers(
          overlay, wave, /*honestOnly=*/false, /*byzOnly=*/false, rng, ev.leaves.size());
      // Merge, dropping ids the steady background already picked (sorted
      // copy + binary search: the wave is O(n), a linear probe per id isn't).
      std::vector<std::uint64_t> picked = ev.leaves;
      std::sort(picked.begin(), picked.end());
      for (std::uint64_t id : extra) {
        if (!std::binary_search(picked.begin(), picked.end(), id)) ev.leaves.push_back(id);
      }
    }
    return ev;
  }

 private:
  ChurnSchedule s_;
};

// The adversarial model: honest members churn steadily, while each epoch a
// byzDepartRate fraction of Byzantine members "leave" — and for every faked
// departure, byzRejoinBoost fresh Byzantine identities join. The blacklists
// and placement a static analysis would pin the adversary with never see the
// same identity twice, and with boost > 1 the effective budget B(t) grows
// even while honest membership only drifts (the whitewashing/Sybil pressure
// the Early-Stabilizing Counting line of work worries about).
class ByzantineChurn final : public ChurnModel {
 public:
  explicit ByzantineChurn(const ChurnSchedule& s) : s_(s), rejoinCredit_(0.0) {}
  const char* name() const override { return "byzantine-churn"; }
  ChurnEvents epochEvents(const DynamicOverlay& overlay, std::uint32_t, Rng& rng) override {
    ChurnEvents ev;
    const double honest =
        static_cast<double>(overlay.liveCount() - overlay.byzCount());
    ev.honestJoins = poissonDraw(s_.joinRate * honest, rng);
    const std::uint32_t honestDepartures = poissonDraw(s_.leaveRate * honest, rng);
    ev.leaves =
        sampleLeavers(overlay, honestDepartures, /*honestOnly=*/true, /*byzOnly=*/false, rng);
    ev.rewires = poissonDraw(s_.rewireRate * static_cast<double>(overlay.liveCount()), rng);

    // Reserving the honest departures' headroom keeps the combined batch
    // within the overlay floor, so every sampled fake actually departs —
    // rejoin credit is only ever granted for identities that really left.
    const std::size_t fakeDepartures = static_cast<std::size_t>(
        s_.byzDepartRate * static_cast<double>(overlay.byzCount()));
    std::vector<std::uint64_t> fakes = sampleLeavers(
        overlay, fakeDepartures, /*honestOnly=*/false, /*byzOnly=*/true, rng, ev.leaves.size());
    ev.leaves.insert(ev.leaves.end(), fakes.begin(), fakes.end());
    // Fractional boost accumulates across epochs so e.g. 1.5 alternates
    // between 1 and 2 rejoins per departure instead of truncating to 1.
    rejoinCredit_ += s_.byzRejoinBoost * static_cast<double>(fakes.size());
    ev.byzJoins = static_cast<std::uint32_t>(rejoinCredit_);
    rejoinCredit_ -= static_cast<double>(ev.byzJoins);
    return ev;
  }

 private:
  ChurnSchedule s_;
  double rejoinCredit_;
};

}  // namespace

std::unique_ptr<ChurnModel> makeChurnModel(const ChurnSchedule& schedule) {
  switch (schedule.kind) {
    case ChurnModelKind::None: break;
    case ChurnModelKind::Steady: return std::make_unique<SteadyChurn>(schedule);
    case ChurnModelKind::FlashCrowd: return std::make_unique<FlashCrowd>(schedule);
    case ChurnModelKind::MassExodus: return std::make_unique<MassExodus>(schedule);
    case ChurnModelKind::ByzantineChurn: return std::make_unique<ByzantineChurn>(schedule);
  }
  BZC_REQUIRE(false, "makeChurnModel: schedule has no model kind");
  return nullptr;
}

void applyChurnEvents(DynamicOverlay& overlay, const ChurnEvents& events, Rng& rng,
                      ChurnLineage* lineage) {
  // Fixed application order (leaves, joins, rewires, repair): the overlay
  // trajectory must be a pure function of (initial state, events, stream).
  // Lineage capture reads membership before the draws and pairs afterwards —
  // it never touches the stream, so collecting it is golden-invariant.
  std::vector<std::uint64_t> byzLeft;
  if (lineage != nullptr && events.byzJoins > 0 && !events.leaves.empty()) {
    std::unordered_set<std::uint64_t> byzIds;
    for (const OverlayMember& m : overlay.members())
      if (m.byzantine) byzIds.insert(m.id);
    for (std::uint64_t id : events.leaves)
      if (byzIds.count(id) > 0) byzLeft.push_back(id);
  }
  for (std::uint64_t id : events.leaves) overlay.leave(id, rng);
  for (std::uint32_t j = 0; j < events.honestJoins; ++j) overlay.join(false, rng);
  for (std::uint32_t j = 0; j < events.byzJoins; ++j) {
    const std::uint64_t fresh = overlay.join(true, rng);
    if (lineage != nullptr) {
      // ByzantineChurn grants rejoin credit per faked departure; pair each
      // fresh identity round-robin with this epoch's departed Byzantine
      // identities (credit carried across epochs pairs with no cause).
      lineage->rejoins.emplace_back(
          byzLeft.empty() ? kNoChurnCause : byzLeft[j % byzLeft.size()], fresh);
    }
  }
  for (std::uint32_t r = 0; r < events.rewires; ++r) overlay.rewire(rng);
  overlay.repairToRegular(rng);
}

}  // namespace bzc
