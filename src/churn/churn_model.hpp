// ChurnModel: pluggable per-epoch membership dynamics.
//
// Mirrors the WalkAdversary subsystem (src/adversary/): behaviour is a
// strategy object materialised per trial from a declarative ChurnSchedule,
// never a protocol edit. A model inspects the live overlay and emits one
// batch of membership/edge events per epoch; the EpochRunner applies the
// batch through DynamicOverlay and then repairs to d-regularity, so every
// epoch's graph is a valid input for the existing protocol stack.
//
// Gallery:
//  - SteadyChurn:    Poisson(joinRate*n) honest joins, Poisson(leaveRate*n)
//                    departures, Poisson(rewireRate*n) edge swaps — the
//                    drifting-membership baseline of the paper's §1 setting.
//  - FlashCrowd:     steady background plus one join spike (flashFraction*n
//                    fresh honest peers) at flashEpoch.
//  - MassExodus:     steady background plus one departure wave
//                    (exodusFraction of the membership) at exodusEpoch.
//  - ByzantineChurn: honest members churn steadily while Byzantine members
//                    fake departures and rejoin with fresh identities
//                    (byzRejoinBoost per faked departure) — the adversary
//                    converts churn into budget inflation, composing with
//                    whatever src/adversary/ strategy the scenario selected.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "churn/dynamic_overlay.hpp"
#include "churn/schedule.hpp"
#include "support/rng.hpp"

namespace bzc {

/// One epoch's membership/edge event batch. Leaves name live global ids;
/// joins are counts (the overlay assigns fresh ids at application time).
struct ChurnEvents {
  std::uint32_t honestJoins = 0;
  std::uint32_t byzJoins = 0;
  std::vector<std::uint64_t> leaves;
  std::uint32_t rewires = 0;

  [[nodiscard]] bool empty() const noexcept {
    return honestJoins == 0 && byzJoins == 0 && leaves.empty() && rewires == 0;
  }
};

class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Events for `epoch` (>= 2; epoch 1 is the initial overlay, no events).
  /// The EpochRunner constructs one model per trial and calls epochs in
  /// order with streams forked from (masterSeed, trial, epoch); models may
  /// carry state across those calls (ByzantineChurn accrues fractional
  /// rejoin credit), so the determinism unit is the whole trial trajectory,
  /// not an individual epoch — replays must start from epoch 2.
  [[nodiscard]] virtual ChurnEvents epochEvents(const DynamicOverlay& overlay,
                                                std::uint32_t epoch, Rng& rng) = 0;
};

/// Materialises the model a schedule names. Requires kind != None.
[[nodiscard]] std::unique_ptr<ChurnModel> makeChurnModel(const ChurnSchedule& schedule);

/// Whitewashing lineage recovered while applying one event batch: for every
/// Byzantine join, the departed Byzantine identity it launders (the rejoin
/// credit ByzantineChurn granted) paired with the fresh identity the overlay
/// assigned. `oldId` is kNoChurnCause when the epoch had no Byzantine
/// departures to pair against (credit carried over from earlier epochs).
/// Purely observational bookkeeping — collecting it draws nothing.
inline constexpr std::uint64_t kNoChurnCause = ~0ull;
struct ChurnLineage {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rejoins;  ///< {oldId, freshId}
};

/// Applies one event batch: leaves, joins (honest then Byzantine), rewires,
/// then repairs to d-regularity. Draws from `rng` in that fixed order.
/// `lineage`, when non-null, records the whitewashing rejoin pairs
/// (old Byzantine identity -> fresh identity) for the blame graph
/// (DESIGN.md §14); passing it changes no draw and no overlay state.
void applyChurnEvents(DynamicOverlay& overlay, const ChurnEvents& events, Rng& rng,
                      ChurnLineage* lineage = nullptr);

/// Poisson(lambda) draw by Knuth inversion (exact, portable; O(lambda)).
[[nodiscard]] std::uint32_t poissonDraw(double lambda, Rng& rng);

}  // namespace bzc
