#include "churn/epoch_runner.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "churn/churn_model.hpp"
#include "churn/dynamic_overlay.hpp"
#include "graph/expansion.hpp"
#include "obs/trace.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/thread_pool.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

// Churn stream tags, forked per (masterSeed, trial, epoch); arbitrary but
// fixed forever, like the kGraphStream family in experiment.cpp. Epoch 1's
// protocol stream is NOT here: it is materializeTrial's own kProtocolStream
// fork, which is what makes zero-churn runs bit-identical to static ones.
constexpr std::uint64_t kChurnEventStream = 0xc4e0;
constexpr std::uint64_t kChurnRepairStream = 0xc4e1;
constexpr std::uint64_t kChurnGapStream = 0xc4e2;
constexpr std::uint64_t kChurnRecountStream = 0xc4e3;

constexpr unsigned kGapIterations = 32;      ///< power-iteration depth, cold start
constexpr unsigned kGapIterationsWarm = 12;   ///< depth when seeded by the previous epoch
                                             ///< (identical gaps within tolerance; pinned)

/// Carries the previous epoch's Fiedler vector onto this epoch's membership:
/// values follow global ids (both id lists are ascending — members_ is kept
/// sorted), departed ids drop out, new ids start at zero and get filled in by
/// the deflation + power iteration.
std::vector<double> remapByGlobalId(const std::vector<double>& prev,
                                    const std::vector<std::uint64_t>& prevIds,
                                    const std::vector<std::uint64_t>& curIds) {
  std::vector<double> warm(curIds.size(), 0.0);
  std::size_t j = 0;
  for (std::size_t i = 0; i < curIds.size(); ++i) {
    while (j < prevIds.size() && prevIds[j] < curIds[i]) ++j;
    if (j < prevIds.size() && prevIds[j] == curIds[i]) warm[i] = prev[j];
  }
  return warm;
}

/// ln-scale estimate a recount handed the honest nodes, from the protocol
/// family's own reporting: counting protocols expose mean L_u / ln n through
/// the quality summary; the agreement path reports the mean L it ran with.
double recountEstimate(const ScenarioSpec& spec, const TrialOutcome& outcome, double trueLogN) {
  if (spec.protocol == ProtocolKind::Agreement) {
    return outcome.extra.empty() ? trueLogN : outcome.extra[kAgreementMeanEstimate];
  }
  return outcome.quality.meanRatio * trueLogN;
}

double agreementFraction(const ScenarioSpec& spec, const TrialOutcome& outcome) {
  const bool hasAgreement =
      spec.protocol == ProtocolKind::Agreement || spec.protocol == ProtocolKind::Pipeline;
  if (!hasAgreement || outcome.extra.size() <= kAgreementFracAgreeing) return 0.0;
  return outcome.extra[kAgreementFracAgreeing];
}

/// One epoch's record as it moves through the pipeline: the overlay stage
/// fills `report`'s membership/churn/gap fields and (when the cadence says
/// recount) dispatches the protocol run; the serial finalization pass folds
/// `out` into the running estimate/staleness state in epoch order.
struct EpochStage {
  EpochReport report;
  double trueLogN = 0.0;
  bool recount = false;
  TrialOutcome out;                ///< recount result (inline, or retired from fut)
  std::future<TrialOutcome> fut;   ///< valid while the recount is in flight
  /// Child probe buffer for traced trials (DESIGN.md §12): the recount traces
  /// into it on whichever thread runs (inline or a pool worker — same buffer
  /// either way, so the deterministic projection is depth-invariant) and the
  /// serial finalization fold splices it back in epoch order.
  std::unique_ptr<obs::TrialTrace> trace;
};

constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);

/// A reusable snapshot buffer plus the stage that last recounted from it —
/// the slot cannot be overwritten until that recount retired.
struct SnapshotSlot {
  OverlaySnapshot snap;
  std::size_t stage = kNoStage;
};

}  // namespace

const char* churnExtraSlotName(std::size_t slot) {
  switch (slot) {
    case kChurnEpochs: return "epochs";
    case kChurnRecounts: return "recounts";
    case kChurnFinalN: return "finalN";
    case kChurnGrowth: return "growth";
    case kChurnJoins: return "joins";
    case kChurnLeaves: return "leaves";
    case kChurnRewires: return "rewires";
    case kChurnFinalByz: return "finalByz";
    case kChurnByzInflation: return "byzInflation";
    case kChurnMeanStaleness: return "meanStaleness";
    case kChurnMaxStaleness: return "maxStaleness";
    case kChurnMeanDrift: return "meanDrift";
    case kChurnMaxDrift: return "maxDrift";
    case kChurnMeanGap: return "meanGap";
    case kChurnGapDrift: return "gapDrift";
    case kChurnLastAgree: return "lastAgree";
    case kChurnGapProbeIters: return "gapProbeIters";
  }
  return "?";
}

// Pipelined epoch execution (DESIGN.md §11). The trial runs as two stages:
//
//   overlay stage (serial, this thread): churn events -> repair -> snapshot
//     -> spectral-gap probe. Inherently sequential — each epoch's overlay is
//     the previous epoch's plus one event batch, and the Fiedler warm start
//     carries the previous probe's vector.
//   recount stage (parallel, pool workers): runProtocolTrial on a finished
//     snapshot. A pure function of (epochSpec, snapshot, per-epoch forked
//     Rng), so recounts of different epochs are mutually independent.
//
// The overlay stage runs ahead, keeping up to pipelineDepth recounts in
// flight; every fold that *reads* recount outputs (estimate, staleness,
// drift, the fingerprint chain, the totals) is deferred to a serial
// finalization pass over the stages in epoch order, which is what makes the
// pipelined schedule bit-identical to the sequential one at any depth.
// Depth 1 runs the recount inline on this thread (no pool at all) — the
// legacy serial schedule through the same code.
ChurnTrialResult runChurnTrialDetailed(const ScenarioSpec& spec, std::uint32_t index) {
  BZC_REQUIRE(spec.churn.enabled(), "runChurnTrial needs an enabled ChurnSchedule");
  BZC_REQUIRE(spec.churn.epochs >= 1, "churn schedule needs at least one epoch");
  BZC_REQUIRE(spec.churn.recountEvery >= 1, "recount cadence must be >= 1");

  // Epoch 1 is exactly the static trial: same graph, placement and protocol
  // streams. Later epochs fork their own streams per (trial, epoch) below.
  MaterializedTrial initial = materializeTrial(spec, index);
  const Rng trialRng = Rng(spec.masterSeed).fork(index);  // same derivation as materializeTrial
  const Rng eventBase = trialRng.fork(kChurnEventStream);
  const Rng repairBase = trialRng.fork(kChurnRepairStream);
  const Rng gapBase = trialRng.fork(kChurnGapStream);
  const Rng recountBase = trialRng.fork(kChurnRecountStream);

  DynamicOverlay overlay(initial.graph, initial.byz, spec.graph.degree);
  const double initialN = static_cast<double>(overlay.liveCount());
  const double initialByz = static_cast<double>(overlay.byzCount());
  std::unique_ptr<ChurnModel> model =
      spec.churn.kind != ChurnModelKind::None ? makeChurnModel(spec.churn) : nullptr;

  const std::uint32_t depth = std::max<std::uint32_t>(1, spec.churn.pipelineDepth);

  double gapSum = 0.0;
  double firstGap = 0.0, lastGap = 0.0;
  std::uint64_t joins = 0, leaves = 0, rewires = 0;
  // Spectral-probe warm-start carry: the previous epoch's Fiedler vector and
  // the global ids its entries belong to. Serial overlay-stage state.
  std::vector<double> gapState;
  std::vector<std::uint64_t> gapStateIds;
  std::uint64_t gapProbeIters = 0;

  std::vector<EpochStage> stages(spec.churn.epochs);
  // Snapshot ring: depth recounts in flight plus the epoch being
  // materialised. Fixed size, so slot addresses are stable for the recount
  // lambdas. Declared before (destroyed after) the pool: if a fold throws
  // mid-retire, workers still finishing queued recounts must find their
  // slots alive.
  std::vector<SnapshotSlot> ring(static_cast<std::size_t>(depth) + 1);
  std::deque<std::size_t> inflight;  ///< stage indices with unretired futures
  std::unique_ptr<ThreadPool> recountPool;
  if (depth > 1 && spec.churn.epochs > 1) {
    recountPool = std::make_unique<ThreadPool>(depth);
  }
  const auto retire = [&stages](std::size_t s) {
    if (stages[s].fut.valid()) stages[s].out = stages[s].fut.get();
  };

  // Trace probe target (DESIGN.md §12). The overlay stage below runs on this
  // thread, so its spans/counters emit straight into the trial buffer;
  // recounts get child buffers (EpochStage::trace) spliced at the fold.
  obs::TrialTrace* const trace = obs::currentTrace();

  // Churn-level blame (rejoin lineage), collected serially on the overlay
  // stage in global-id space and merged into the trial's graph at the fold.
  obs::BlameGraph churnBlame;

  for (std::uint32_t epoch = 1; epoch <= spec.churn.epochs; ++epoch) {
    EpochStage& stage = stages[epoch - 1];
    EpochReport& report = stage.report;
    report.epoch = epoch;

    if (epoch > 1 && model) {
      const std::int64_t repairT0 = trace != nullptr ? obs::traceClockNs() : 0;
      Rng eventRng = eventBase.fork(epoch);
      Rng repairRng = repairBase.fork(epoch);
      const ChurnEvents events = model->epochEvents(overlay, epoch, eventRng);
      const std::size_t before = overlay.liveCount();
      ChurnLineage lineage;
      applyChurnEvents(overlay, events, repairRng, &lineage);
      // Whitewashing lineage (DESIGN.md §14): each Byzantine rejoin becomes a
      // blame edge from the laundered identity to the fresh one. Global ids,
      // so no dense remap applies; recorded serially on the overlay stage.
      for (const auto& [oldId, freshId] : lineage.rejoins) {
        churnBlame.add(obs::BlameKind::RejoinLineage,
                       oldId == kNoChurnCause ? obs::kBlameNone : oldId, freshId);
      }
      if (!lineage.rejoins.empty())
        churnBlame.addTotal("churn.byzRejoins", lineage.rejoins.size());
      if (trace != nullptr) trace->span("overlay.repair", repairT0, epoch);
      report.joins = events.honestJoins + events.byzJoins;
      report.leaves = static_cast<std::uint32_t>(
          before + report.joins - overlay.liveCount());  // leaves the floor let through
      report.rewires = events.rewires;
      joins += report.joins;
      leaves += report.leaves;
      rewires += report.rewires;
    }

    // Materialise this epoch's snapshot into its ring slot, first waiting out
    // any recount still reading the slot (epoch - depth - 1 or older: the
    // natural pipeline-full backpressure). Epoch 1 reuses the already-built
    // static trial verbatim (the overlay round-trip is identity there, but
    // handing the protocol the original objects keeps that fact structural).
    SnapshotSlot& slot = ring[(epoch - 1) % ring.size()];
    if (slot.stage != kNoStage) retire(slot.stage);
    slot.stage = kNoStage;
    OverlaySnapshot& snap = slot.snap;
    const std::int64_t snapT0 = trace != nullptr ? obs::traceClockNs() : 0;
    if (epoch == 1) {
      snap.graph = std::move(initial.graph);
      snap.byz = std::move(initial.byz);
      snap.denseToId.clear();
    } else {
      overlay.snapshotInto(snap);
    }
    const NodeId liveN = snap.graph.numNodes();
    stage.trueLogN = std::log(static_cast<double>(liveN));
    report.liveN = liveN;
    report.byzCount = snap.byz.count();
    if (trace != nullptr) {
      trace->span("overlay.snapshot", snapT0, epoch);
      trace->counter("churn.liveN", static_cast<double>(liveN), epoch);
      trace->counter("churn.byzCount", static_cast<double>(report.byzCount), epoch);
    }

    Rng gapRng = gapBase.fork(epoch);
    // Epoch 1 reuses the trial's original graph, whose dense ids are their
    // global ids; later epochs carry the snapshot's id map.
    std::vector<std::uint64_t> curIds;
    if (epoch == 1) {
      curIds.resize(liveN);
      for (NodeId u = 0; u < liveN; ++u) curIds[u] = u;
    } else {
      curIds = snap.denseToId;
    }
    std::vector<double> probeState;
    if (spec.churn.gapWarmStart && !gapState.empty()) {
      probeState = remapByGlobalId(gapState, gapStateIds, curIds);
    }
    // Depth and the callee's warm-vs-cold decision share one predicate, so a
    // reduced-depth probe can never silently restart cold (e.g. after a full
    // membership turnover zeroed the carry).
    const bool warm = fiedlerWarmStartUsable(probeState, liveN);
    const unsigned probeDepth = warm ? kGapIterationsWarm : kGapIterations;
    const std::int64_t gapT0 = trace != nullptr ? obs::traceClockNs() : 0;
    report.spectralGap = spectralGapEstimate(snap.graph, probeDepth, gapRng, &probeState);
    if (trace != nullptr) trace->span("epoch.gapProbe", gapT0, epoch);
    gapProbeIters += probeDepth;
    gapState = std::move(probeState);
    gapStateIds = std::move(curIds);
    gapSum += report.spectralGap;
    lastGap = report.spectralGap;
    if (epoch == 1) firstGap = report.spectralGap;

    stage.recount = (epoch - 1) % spec.churn.recountEvery == 0;
    if (stage.recount) {
      ScenarioSpec epochSpec = spec;
      // Node indices are dense per epoch; configured focus nodes must stay
      // in range when the overlay shrinks below them (the root additionally
      // falls back to an honest node inside runProtocolTrial if Byzantine).
      epochSpec.placement.victim =
          std::min<NodeId>(spec.placement.victim, liveN > 0 ? liveN - 1 : 0);
      epochSpec.treeParams.root =
          std::min<NodeId>(spec.treeParams.root, liveN > 0 ? liveN - 1 : 0);
      Rng protoRng = epoch == 1 ? std::move(initial.runRng) : recountBase.fork(epoch);
      if (trace != nullptr) {
        stage.trace = std::make_unique<obs::TrialTrace>();
        stage.trace->scenario = trace->scenario;
        stage.trace->trial = trace->trial;
      }
      obs::TrialTrace* const childTrace = stage.trace.get();
      if (recountPool) {
        while (inflight.size() >= depth) {  // cap in-flight recounts at depth
          retire(inflight.front());
          inflight.pop_front();
        }
        const OverlaySnapshot* snapPtr = &snap;
        stage.fut = recountPool->submit(
            [es = std::move(epochSpec), snapPtr, rng = std::move(protoRng), childTrace]() mutable {
              const obs::TraceScope scope(childTrace);
              const obs::ScopedTimer timer("epoch.recount");
              TrialOutcome o = runProtocolTrial(es, snapPtr->graph, snapPtr->byz, std::move(rng));
              // Blame edges carry dense per-epoch node ids; remap to global
              // overlay ids while the snapshot slot is still alive (it is
              // reused once this recount retires). Epoch 1's empty map is
              // the identity, keeping zero-churn blame bit-identical to the
              // static path.
              o.blame.remapNodes(snapPtr->denseToId);
              return o;
            });
        slot.stage = epoch - 1;
        inflight.push_back(epoch - 1);
      } else {
        // Inline (depth 1): the child scope shadows the trial buffer so the
        // recount's events land in the same place they would from a worker.
        const obs::TraceScope scope(childTrace);
        const obs::ScopedTimer timer("epoch.recount");
        stage.out = runProtocolTrial(epochSpec, snap.graph, snap.byz, std::move(protoRng));
        stage.out.blame.remapNodes(snap.denseToId);
      }
    }
  }
  while (!inflight.empty()) {
    retire(inflight.front());
    inflight.pop_front();
  }

  // Serial finalization: fold recount outputs and the estimate/staleness/
  // drift chain in epoch order — identical arithmetic, identical order, at
  // every pipeline depth.
  ChurnTrialResult result;
  result.epochs.reserve(spec.churn.epochs);
  const std::int64_t foldT0 = trace != nullptr ? obs::traceClockNs() : 0;
  TrialOutcome& total = result.outcome;
  bool haveFingerprint = false;
  double estimate = 0.0;       // ln-scale estimate the network currently runs on
  double anchorLogN = 0.0;     // ln n at the last recount (drift reference)
  double lastAgree = 0.0;
  double stalenessSum = 0.0, stalenessMax = 0.0;
  double driftSum = 0.0, driftMax = 0.0;
  std::uint32_t recounts = 0;
  for (EpochStage& stage : stages) {
    EpochReport& report = stage.report;
    const double trueLogN = stage.trueLogN;
    if (stage.recount) {
      const TrialOutcome& out = stage.out;
      ++recounts;
      report.recounted = true;
      report.rounds = out.totalRounds;
      report.messages = out.totalMessages;
      report.bits = out.totalBits;
      report.fingerprint = out.resultFingerprint;
      estimate = recountEstimate(spec, out, trueLogN);
      anchorLogN = trueLogN;
      lastAgree = agreementFraction(spec, out);

      total.quality = out.quality;
      total.totalRounds += out.totalRounds;
      total.totalMessages += out.totalMessages;
      total.totalBits += out.totalBits;
      total.hitRoundCap = total.hitRoundCap || out.hitRoundCap;
      // Keyed sums in epoch order: depth-invariant like the rest of the fold.
      total.blame.merge(out.blame);
      if (!haveFingerprint) {
        // First recount seeds the fold, so a single-epoch schedule carries
        // the static path's fingerprint through unchanged.
        total.resultFingerprint = out.resultFingerprint;
        haveFingerprint = true;
      } else {
        total.resultFingerprint =
            fnv1a64(&out.resultFingerprint, sizeof out.resultFingerprint,
                    total.resultFingerprint);
      }
    }
    report.estimate = estimate;
    report.staleness = trueLogN > 0.0 ? std::abs(estimate - trueLogN) / trueLogN : 0.0;
    report.drift = trueLogN > 0.0 ? std::abs(anchorLogN - trueLogN) / trueLogN : 0.0;
    report.fracAgreeing = lastAgree;
    stalenessSum += report.staleness;
    stalenessMax = std::max(stalenessMax, report.staleness);
    driftSum += report.drift;
    driftMax = std::max(driftMax, report.drift);
    if (trace != nullptr) {
      // Children splice back here, in epoch order, tagged with their epoch as
      // the lane — a serial point, so the merged event order is a pure
      // function of the trial at any pipeline depth. Timestamps are preserved:
      // overlapped recounts still overlap on the chrome timeline.
      if (stage.trace != nullptr) trace->splice(std::move(*stage.trace), report.epoch);
      trace->counter("epoch.estimate", report.estimate, report.epoch);
      trace->counter("epoch.staleness", report.staleness, report.epoch);
      trace->counter("epoch.drift", report.drift, report.epoch);
    }
    result.epochs.push_back(report);
  }
  if (trace != nullptr) trace->span("epoch.finalize", foldT0, spec.churn.epochs);
  total.blame.merge(churnBlame);

  const double epochsRun = static_cast<double>(spec.churn.epochs);
  total.extra.assign(kChurnExtraSlots, 0.0);
  total.extra[kChurnEpochs] = epochsRun;
  total.extra[kChurnRecounts] = static_cast<double>(recounts);
  total.extra[kChurnFinalN] = static_cast<double>(overlay.liveCount());
  total.extra[kChurnGrowth] = static_cast<double>(overlay.liveCount()) / initialN;
  total.extra[kChurnJoins] = static_cast<double>(joins);
  total.extra[kChurnLeaves] = static_cast<double>(leaves);
  total.extra[kChurnRewires] = static_cast<double>(rewires);
  total.extra[kChurnFinalByz] = static_cast<double>(overlay.byzCount());
  total.extra[kChurnByzInflation] =
      initialByz > 0.0 ? static_cast<double>(overlay.byzCount()) / initialByz : 1.0;
  total.extra[kChurnMeanStaleness] = stalenessSum / epochsRun;
  total.extra[kChurnMaxStaleness] = stalenessMax;
  total.extra[kChurnMeanDrift] = driftSum / epochsRun;
  total.extra[kChurnMaxDrift] = driftMax;
  total.extra[kChurnMeanGap] = gapSum / epochsRun;
  total.extra[kChurnGapDrift] = lastGap - firstGap;
  total.extra[kChurnLastAgree] = lastAgree;
  total.extra[kChurnGapProbeIters] = static_cast<double>(gapProbeIters);
  return result;
}

TrialOutcome runChurnTrial(const ScenarioSpec& spec, std::uint32_t index) {
  return runChurnTrialDetailed(spec, index).outcome;
}

}  // namespace bzc
