// Declarative churn description for dynamic-network scenarios.
//
// The paper's motivating setting (§1) is an unstructured P2P overlay whose
// size changes continuously; a ChurnSchedule turns that into a declarative
// axis of ScenarioSpec the same way AgreementAttackProfile made Byzantine
// walk behaviour declarative. The schedule names a ChurnModel from the
// gallery (src/churn/churn_model.hpp) plus its strength knobs, the number of
// epochs the overlay evolves through, and the recount cadence — how many
// epochs the network keeps using a stale size estimate before re-running the
// counting pipeline. Only the knobs of the selected model kind are read.
//
// This header is deliberately dependency-free so runtime/experiment.hpp can
// embed a ChurnSchedule without pulling the subsystem into every translation
// unit; the model gallery and the epoch loop live in src/churn/*.cpp.
#pragma once

#include <cstdint>

namespace bzc {

enum class ChurnModelKind : std::uint8_t {
  None,            ///< static network: the scenario runs exactly one epoch
  Steady,          ///< Poisson join/leave at constant per-member rates
  FlashCrowd,      ///< steady background plus one join spike at flashEpoch
  MassExodus,      ///< steady background plus one departure wave at exodusEpoch
  ByzantineChurn,  ///< Byzantine members fake departures and rejoin with fresh
                   ///< identities, inflating their effective budget over time
};

[[nodiscard]] const char* churnModelKindName(ChurnModelKind kind);

struct ChurnSchedule {
  ChurnModelKind kind = ChurnModelKind::None;
  std::uint32_t epochs = 1;  ///< membership snapshots simulated (epoch 1 = initial overlay)

  /// Epochs between recounts: 1 recounts every epoch, k > 1 lets the network
  /// run on a stale estimate for k-1 epochs. Epoch 1 always recounts.
  std::uint32_t recountEvery = 1;

  // --- per-epoch event intensities (per live member, Poisson) ---------------
  double joinRate = 0.0;    ///< expected honest joins per live member per epoch
  double leaveRate = 0.0;   ///< expected honest departures per live member per epoch
  double rewireRate = 0.0;  ///< expected degree-preserving edge swaps per member

  // --- FlashCrowd ------------------------------------------------------------
  std::uint32_t flashEpoch = 2;  ///< epoch of the join spike (epoch 1 has no events)
  double flashFraction = 4.0;    ///< spike size as a fraction of the live membership

  // --- MassExodus ------------------------------------------------------------
  std::uint32_t exodusEpoch = 2;  ///< epoch of the departure wave
  double exodusFraction = 0.5;    ///< fraction of the live membership departing

  // --- ByzantineChurn --------------------------------------------------------
  double byzDepartRate = 0.5;   ///< fraction of Byzantine members faking departure per epoch
  double byzRejoinBoost = 1.5;  ///< fresh Byzantine identities per faked departure (>= 1
                                ///< inflates the effective budget; 1.0 = pure whitewashing)

  /// Spectral-gap probe warm start (ROADMAP perf lever): epoch e seeds the
  /// Fiedler power iteration with epoch e-1's vector (carried across
  /// membership changes by global id) at a reduced iteration count. Gap
  /// values match a fresh full-depth probe within tolerance (pinned by
  /// churn_test); disable to force fresh full-depth probes every epoch.
  bool gapWarmStart = true;

  /// Epoch-pipeline depth (perf lever, DESIGN.md §11): how many epochs the
  /// overlay stage may hold in flight — while epoch e's recount executes on a
  /// pool worker, the caller pre-materializes up to this many epochs ahead
  /// (churn events, repair, snapshot, gap probe). 1 = fully serial, the
  /// legacy path through the same code. Results are bit-identical at every
  /// depth: all RNG streams fork per (masterSeed, trial, epoch) and the
  /// estimate/staleness fold runs as a serial finalization pass in epoch
  /// order (pinned by epoch_pipeline_test). Depths beyond the epoch count
  /// are harmless. Interacts with ExperimentRunner core budgeting: the trial
  /// fan-out narrows so trials × shards × pipelineDepth ≲ cores.
  std::uint32_t pipelineDepth = 1;

  /// True when the scenario should route through the EpochRunner. A default
  /// schedule is inert: every existing ScenarioSpec behaves exactly as before.
  [[nodiscard]] bool enabled() const noexcept {
    return kind != ChurnModelKind::None || epochs > 1;
  }

  // Named presets mirroring the AgreementAttackProfile constructors.
  [[nodiscard]] static ChurnSchedule none();
  [[nodiscard]] static ChurnSchedule steady(std::uint32_t epochs, double rate,
                                            std::uint32_t recountEvery = 1);
  [[nodiscard]] static ChurnSchedule flashCrowd(std::uint32_t epochs, double fraction,
                                                std::uint32_t atEpoch = 2,
                                                std::uint32_t recountEvery = 1);
  [[nodiscard]] static ChurnSchedule massExodus(std::uint32_t epochs, double fraction,
                                                std::uint32_t atEpoch = 2,
                                                std::uint32_t recountEvery = 1);
  [[nodiscard]] static ChurnSchedule byzantine(std::uint32_t epochs, double honestRate,
                                               double rejoinBoost = 1.5,
                                               std::uint32_t recountEvery = 1);
};

}  // namespace bzc
