#include "counting/baselines/spanning_tree.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "runtime/sync_engine.hpp"
#include "support/require.hpp"

namespace bzc {

CountingResult runSpanningTreeCount(const Graph& g, const ByzantineSet& byz, TreeAttack attack,
                                    const TreeParams& params) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(params.root < n, "root out of range");
  BZC_REQUIRE(!byz.contains(params.root), "root must be honest");

  CountingResult result;
  result.decisions.assign(n, {});

  // Stage 1: BFS tree (every node, Byzantine or not, joins; refusing to join
  // is subsumed by the Mute attack in stage 2).
  const auto dist = bfsDistances(g, params.root);
  std::vector<NodeId> parent(n, kNoNode);
  std::uint32_t depth = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (dist[u] == kUnreachable || u == params.root) continue;
    depth = std::max(depth, dist[u]);
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] + 1 == dist[u]) {
        parent[u] = std::min(parent[u], v);  // deterministic: smallest-index parent
      }
    }
  }

  // Stage 2: converge-cast subtree counts on the engine, deepest layer first —
  // round r is when the layer at distance depth-r+1 reports to its parents.
  std::vector<std::vector<NodeId>> layers(depth + 1);
  for (NodeId u = 0; u < n; ++u) {
    if (dist[u] != kUnreachable) layers[dist[u]].push_back(u);
  }
  using Engine = SyncEngine<std::uint64_t>;
  Engine engine(g, byz);
  std::vector<std::uint64_t> subtree(n, 0);
  auto report = [&](Round r) {
    for (NodeId u : layers[depth - r + 1]) {
      std::uint64_t reported = subtree[u] + 1;  // children already accumulated
      if (byz.contains(u)) {
        switch (attack) {
          case TreeAttack::None: break;
          case TreeAttack::Inflate: reported += params.inflationBoost; break;
          case TreeAttack::Undercount: reported = 1; break;
          case TreeAttack::Mute: reported = 0; break;
        }
      }
      if (reported > 0 && parent[u] != kNoNode) engine.unicast(u, parent[u], reported, 64);
    }
  };
  auto accumulate = [&](NodeId v, Round, std::span<const Engine::Delivery> box) {
    for (const Engine::Delivery& in : box) subtree[v] += in.payload;
  };
  const WindowResult convergecast =
      engine.runWindow(depth, report, accumulate, NoEnd{}, IdlePolicy::RunFullWindow);
  engine.skipRounds(depth - convergecast.roundsRun);
  const std::uint64_t announced = subtree[params.root] + 1;

  // Stage 3: root broadcasts the total down the tree (depth+1 rounds). A
  // Byzantine ancestor could also corrupt the downward broadcast; the
  // converge-cast attack already demonstrates the failure, so the broadcast
  // is modelled as reliable flooding with one 64-bit message per honest node.
  engine.skipRounds(depth + 1);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u) || dist[u] == kUnreachable) continue;
    engine.meter().record(u, 64);
    result.decisions[u].decided = true;
    result.decisions[u].round = static_cast<Round>(engine.round());
    result.decisions[u].estimate = announced > 1 ? std::log(static_cast<double>(announced)) : 0.0;
  }
  result.totalRounds = static_cast<Round>(engine.round());
  result.meter = engine.releaseMeter();
  return result;
}

}  // namespace bzc
