#include "counting/baselines/spanning_tree.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

CountingResult runSpanningTreeCount(const Graph& g, const ByzantineSet& byz, TreeAttack attack,
                                    const TreeParams& params) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(params.root < n, "root out of range");
  BZC_REQUIRE(!byz.contains(params.root), "root must be honest");

  CountingResult result;
  result.decisions.assign(n, {});
  result.meter = MessageMeter(n);

  // Stage 1: BFS tree (every node, Byzantine or not, joins; refusing to join
  // is subsumed by the Mute attack in stage 2).
  const auto dist = bfsDistances(g, params.root);
  std::vector<NodeId> parent(n, kNoNode);
  std::uint32_t depth = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (dist[u] == kUnreachable || u == params.root) continue;
    depth = std::max(depth, dist[u]);
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] + 1 == dist[u]) {
        parent[u] = std::min(parent[u], v);  // deterministic: smallest-index parent
      }
    }
  }

  // Stage 2: converge-cast subtree counts, deepest layer first.
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (dist[u] != kUnreachable) order.push_back(u);
  }
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return dist[a] != dist[b] ? dist[a] > dist[b] : a < b; });
  std::vector<std::uint64_t> subtree(n, 0);
  for (NodeId u : order) {
    std::uint64_t reported = subtree[u] + 1;  // children already accumulated
    if (byz.contains(u)) {
      switch (attack) {
        case TreeAttack::None: break;
        case TreeAttack::Inflate: reported += params.inflationBoost; break;
        case TreeAttack::Undercount: reported = 1; break;
        case TreeAttack::Mute: reported = 0; break;
      }
    }
    if (u != params.root && parent[u] != kNoNode) {
      subtree[parent[u]] += reported;
      if (!byz.contains(u) && reported > 0) result.meter.record(u, 64);
    } else if (u == params.root) {
      subtree[u] = reported;
    }
  }
  const std::uint64_t announced = subtree[params.root];

  // Stage 3: root broadcasts the total down the tree.
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u) || dist[u] == kUnreachable) continue;
    // A Byzantine ancestor could also corrupt the downward broadcast; the
    // converge-cast attack already demonstrates the failure, so the
    // broadcast is modelled as reliable flooding here.
    result.meter.record(u, 64);
    result.decisions[u].decided = true;
    result.decisions[u].round = 2 * depth + 1;
    result.decisions[u].estimate = announced > 1 ? std::log(static_cast<double>(announced)) : 0.0;
  }
  result.totalRounds = 2 * depth + 1;
  return result;
}

}  // namespace bzc
