// Baseline 2 (§1.2): support estimation with exponential variables [7, 5].
//
// Every node draws k i.i.d. Exponential(1) coordinates; the network floods
// the coordinate-wise minimum. Since the minimum of n exponentials is
// Exponential(n), the sum of the k global minima concentrates around k/n and
// n̂ = k / sum is a (1±o(1)) estimate for large k. Works in anonymous
// networks — and, like the geometric protocol, collapses under a single
// Byzantine node injecting near-zero coordinates. Experiment T6 measures it.
#pragma once

#include "counting/common.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace bzc {

enum class SupportAttack {
  None,        ///< Byzantine nodes follow the protocol
  ZeroInject,  ///< announce near-zero coordinates: n̂ explodes upward
  Suppress,    ///< never forward minima
};

struct SupportParams {
  std::uint32_t coordinates = 64;  ///< k
  Round maxRounds = 0;             ///< 0: cap at 4n+16
  double injectedValue = 1e-9;     ///< forged coordinate value
};

/// Runs to quiescence; the per-node estimate is ln(k / sum of its minima).
[[nodiscard]] CountingResult runSupportEstimation(const Graph& g, const ByzantineSet& byz,
                                                  SupportAttack attack,
                                                  const SupportParams& params, Rng& rng);

}  // namespace bzc
