// Baseline 1 (§1.2): geometric-distribution maximum flooding.
//
// Every node flips a fair coin until it sees heads; X_u = number of flips.
// The global maximum X̄ = Θ(log2 n) w.h.p., and flooding the running maximum
// lets every node learn it in diameter rounds. The paper uses this protocol
// to motivate Byzantine counting: a *single* Byzantine node can fake an
// arbitrarily large maximum (or sit on a cut and suppress the real one), so
// the estimate has no approximation guarantee. Experiment T6 measures both
// failure modes.
#pragma once

#include "counting/common.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace bzc {

enum class GeometricAttack {
  None,      ///< Byzantine nodes follow the protocol
  Inflate,   ///< announce a huge fake maximum in round 1
  Suppress,  ///< never forward anything (damaging on cuts, not expanders)
};

struct GeometricParams {
  Round maxRounds = 0;                    ///< 0: cap at 4n+16
  std::uint32_t inflatedValue = 1 << 20;  ///< the forged maximum
};

/// Runs to quiescence; every honest node's estimate is maxSeen * ln 2
/// (converting the base-2 geometric maximum to the natural-log scale the
/// QualityWindow uses).
[[nodiscard]] CountingResult runGeometricMax(const Graph& g, const ByzantineSet& byz,
                                             GeometricAttack attack, const GeometricParams& params,
                                             Rng& rng);

}  // namespace bzc
