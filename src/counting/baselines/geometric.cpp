#include "counting/baselines/geometric.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/sync_engine.hpp"
#include "support/require.hpp"

namespace bzc {

CountingResult runGeometricMax(const Graph& g, const ByzantineSet& byz, GeometricAttack attack,
                               const GeometricParams& params, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  constexpr std::size_t kValueBits = 64;

  CountingResult result;
  result.decisions.assign(n, {});

  const Round cap = params.maxRounds > 0 ? params.maxRounds : static_cast<Round>(4 * n + 16);
  using Engine = SyncEngine<std::uint32_t>;
  Engine engine(g, byz, cap);

  // Round 1: every honest node floods its own draw. Byzantine nodes hold no
  // coin of their own; under Inflate they announce the forged maximum once.
  std::vector<std::uint32_t> best(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    best[u] = rng.geometricFlips();
    engine.broadcast(u, best[u], kValueBits);
  }
  if (attack == GeometricAttack::Inflate) {
    for (NodeId b : byz.members()) engine.broadcast(b, params.inflatedValue, kValueBits);
  }

  // Later rounds: a node whose maximum improved relays it (dirty flooding).
  // Suppressing Byzantine nodes swallow updates; inflating ones keep quiet
  // after round 1 and let honest flooding do the damage for them.
  auto step = [&](NodeId v, Round, std::span<const Engine::Delivery> box) {
    std::uint32_t incomingMax = 0;
    for (const Engine::Delivery& in : box) incomingMax = std::max(incomingMax, in.payload);
    if (incomingMax <= best[v]) return;
    best[v] = incomingMax;
    if (byz.contains(v) &&
        (attack == GeometricAttack::Suppress || attack == GeometricAttack::Inflate)) {
      return;
    }
    engine.broadcast(v, best[v], kValueBits);
  };
  const WindowResult run = engine.runWindow(0, step);

  result.totalRounds = static_cast<Round>(engine.round());
  result.hitRoundCap = run.status == WindowStatus::Capped;
  result.meter = engine.releaseMeter();

  const double ln2 = std::log(2.0);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    result.decisions[u].decided = true;
    result.decisions[u].round = result.totalRounds;
    result.decisions[u].estimate = static_cast<double>(best[u]) * ln2;
  }
  return result;
}

}  // namespace bzc
