#include "counting/baselines/geometric.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace bzc {

CountingResult runGeometricMax(const Graph& g, const ByzantineSet& byz, GeometricAttack attack,
                               const GeometricParams& params, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  constexpr std::size_t kValueBits = 64;

  CountingResult result;
  result.decisions.assign(n, {});
  result.meter = MessageMeter(n);

  std::vector<std::uint32_t> best(n, 0);
  std::vector<char> dirty(n, 0);  // has news to broadcast next round
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    best[u] = rng.geometricFlips();
    dirty[u] = 1;
  }

  const Round cap = params.maxRounds > 0 ? params.maxRounds : static_cast<Round>(4 * n + 16);
  std::vector<std::uint32_t> incomingMax(n, 0);
  Round round = 0;
  bool byzFired = false;
  for (round = 1; round <= cap; ++round) {
    std::fill(incomingMax.begin(), incomingMax.end(), 0);
    bool anyMessage = false;
    // Honest broadcasts.
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || !dirty[u]) continue;
      anyMessage = true;
      for (NodeId v : g.neighbors(u)) {
        incomingMax[v] = std::max(incomingMax[v], best[u]);
        result.meter.record(u, kValueBits);
      }
    }
    // Byzantine behaviour.
    if (attack == GeometricAttack::Inflate && !byzFired) {
      for (NodeId b : byz.members()) {
        for (NodeId v : g.neighbors(b)) {
          incomingMax[v] = std::max(incomingMax[v], params.inflatedValue);
        }
      }
      byzFired = !byz.members().empty();
      anyMessage = anyMessage || byzFired;
    } else if (attack == GeometricAttack::None) {
      // Byzantine nodes act honestly: forward the max they have seen. They
      // hold no value of their own (their coin is irrelevant to honest
      // estimates); modelled as relaying via `best` updated below.
      for (NodeId b : byz.members()) {
        if (!dirty[b]) continue;
        anyMessage = true;
        for (NodeId v : g.neighbors(b)) incomingMax[v] = std::max(incomingMax[v], best[b]);
      }
    }
    // GeometricAttack::Suppress: Byzantine nodes stay silent.

    if (!anyMessage) break;
    std::fill(dirty.begin(), dirty.end(), 0);
    for (NodeId u = 0; u < n; ++u) {
      if (incomingMax[u] > best[u]) {
        best[u] = incomingMax[u];
        // Suppressing nodes swallow updates instead of relaying them.
        if (!(attack == GeometricAttack::Suppress && byz.contains(u))) dirty[u] = 1;
        if (attack == GeometricAttack::Inflate && byz.contains(u)) dirty[u] = 0;
      }
    }
    if (attack == GeometricAttack::Inflate) {
      // After the forged value is out, Byzantine nodes keep quiet; honest
      // flooding does the damage for them.
      for (NodeId b : byz.members()) dirty[b] = 0;
    }
  }
  result.totalRounds = std::min(round, cap);
  result.hitRoundCap = round > cap;

  const double ln2 = std::log(2.0);
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    result.decisions[u].decided = true;
    result.decisions[u].round = result.totalRounds;
    result.decisions[u].estimate = static_cast<double>(best[u]) * ln2;
  }
  return result;
}

}  // namespace bzc
