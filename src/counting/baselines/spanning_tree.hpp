// Baseline 3 (§1.2): spanning-tree converge-cast counting.
//
// The classic exact-count protocol: build a BFS tree from a root, converge-
// cast subtree sizes to the root, then broadcast the total. Exact in the
// benign case and the first thing Byzantine nodes break — a single Byzantine
// internal node can report an arbitrary subtree count (inflate/hide), and a
// Byzantine root can announce anything. Experiment T6 measures it.
#pragma once

#include "counting/common.hpp"
#include "graph/graph.hpp"

namespace bzc {

enum class TreeAttack {
  None,        ///< Byzantine nodes follow the protocol
  Inflate,     ///< report subtree count + forged boost
  Undercount,  ///< report a subtree count of 1 regardless of subtree size
  Mute,        ///< report nothing; parents treat the subtree as empty
};

struct TreeParams {
  NodeId root = 0;
  std::uint64_t inflationBoost = 1'000'000'000ULL;
};

/// Simulates the three-stage protocol (tree build, converge-cast, broadcast)
/// at round granularity 2*depth+1. The root must be honest (a Byzantine root
/// trivially controls the answer; T6 notes this).
[[nodiscard]] CountingResult runSpanningTreeCount(const Graph& g, const ByzantineSet& byz,
                                                  TreeAttack attack, const TreeParams& params);

}  // namespace bzc
