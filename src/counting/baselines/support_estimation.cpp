#include "counting/baselines/support_estimation.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/sync_engine.hpp"
#include "support/require.hpp"

namespace bzc {

CountingResult runSupportEstimation(const Graph& g, const ByzantineSet& byz, SupportAttack attack,
                                    const SupportParams& params, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(params.coordinates >= 1, "need at least one coordinate");
  const std::uint32_t k = params.coordinates;
  const std::size_t messageBits = static_cast<std::size_t>(k) * 64;

  CountingResult result;
  result.decisions.assign(n, {});

  // A message is "my current coordinate-wise minima": receivers read the
  // sender's row directly (rows are stable for the whole run, and updates are
  // deferred to the end-of-round hook, so a row read during delivery is
  // exactly the state the sender flushed).
  struct MinsRef {};
  using Engine = SyncEngine<MinsRef>;
  const Round cap = params.maxRounds > 0 ? params.maxRounds : static_cast<Round>(4 * n + 16);
  Engine engine(g, byz, cap);

  // mins[u*k + j]: node u's current minimum for coordinate j.
  std::vector<double> mins(static_cast<std::size_t>(n) * k);
  for (NodeId u = 0; u < n; ++u) {
    const bool isByz = byz.contains(u);
    for (std::uint32_t j = 0; j < k; ++j) {
      double draw = rng.exponential();  // burn a draw for byz too: keeps the
                                        // honest sequence placement-invariant
      if (isByz && attack == SupportAttack::ZeroInject) draw = params.injectedValue;
      mins[static_cast<std::size_t>(u) * k + j] = draw;
    }
    if (!isByz || attack != SupportAttack::Suppress) engine.broadcast(u, MinsRef{}, messageBits);
  }

  std::vector<double> incoming(static_cast<std::size_t>(n) * k,
                               std::numeric_limits<double>::infinity());
  std::vector<NodeId> touched;
  auto fold = [&](NodeId v, Round, std::span<const Engine::Delivery> box) {
    touched.push_back(v);
    for (const Engine::Delivery& in : box) {
      const std::size_t senderRow = static_cast<std::size_t>(in.sender) * k;
      for (std::uint32_t j = 0; j < k; ++j) {
        const std::size_t vi = static_cast<std::size_t>(v) * k + j;
        incoming[vi] = std::min(incoming[vi], mins[senderRow + j]);
      }
    }
  };
  auto applyUpdates = [&](Round) {
    for (NodeId v : touched) {
      bool improved = false;
      for (std::uint32_t j = 0; j < k; ++j) {
        const std::size_t vi = static_cast<std::size_t>(v) * k + j;
        if (incoming[vi] < mins[vi]) {
          mins[vi] = incoming[vi];
          improved = true;
        }
        incoming[vi] = std::numeric_limits<double>::infinity();
      }
      if (improved && !(byz.contains(v) && attack == SupportAttack::Suppress)) {
        engine.broadcast(v, MinsRef{}, messageBits);
      }
    }
    touched.clear();
    return true;
  };
  const WindowResult run = engine.runWindow(0, NoEmit{}, fold, applyUpdates);

  result.totalRounds = static_cast<Round>(engine.round());
  result.hitRoundCap = run.status == WindowStatus::Capped;
  result.meter = engine.releaseMeter();

  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    double sum = 0.0;
    for (std::uint32_t j = 0; j < k; ++j) sum += mins[static_cast<std::size_t>(u) * k + j];
    const double estimateN = sum > 0 ? static_cast<double>(k) / sum : 0.0;
    result.decisions[u].decided = true;
    result.decisions[u].round = result.totalRounds;
    result.decisions[u].estimate = estimateN > 1.0 ? std::log(estimateN) : 0.0;
  }
  return result;
}

}  // namespace bzc
