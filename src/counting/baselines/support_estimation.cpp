#include "counting/baselines/support_estimation.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace bzc {

CountingResult runSupportEstimation(const Graph& g, const ByzantineSet& byz, SupportAttack attack,
                                    const SupportParams& params, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(params.coordinates >= 1, "need at least one coordinate");
  const std::uint32_t k = params.coordinates;
  const std::size_t messageBits = static_cast<std::size_t>(k) * 64;

  CountingResult result;
  result.decisions.assign(n, {});
  result.meter = MessageMeter(n);

  // mins[u*k + j]: node u's current minimum for coordinate j.
  std::vector<double> mins(static_cast<std::size_t>(n) * k);
  std::vector<char> dirty(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const bool isByz = byz.contains(u);
    for (std::uint32_t j = 0; j < k; ++j) {
      double draw = rng.exponential();  // burn a draw for byz too: keeps the
                                        // honest sequence placement-invariant
      if (isByz && attack == SupportAttack::ZeroInject) draw = params.injectedValue;
      mins[static_cast<std::size_t>(u) * k + j] = draw;
    }
    dirty[u] = (!isByz || attack != SupportAttack::Suppress) ? 1 : 0;
  }

  const Round cap = params.maxRounds > 0 ? params.maxRounds : static_cast<Round>(4 * n + 16);
  std::vector<double> incoming(static_cast<std::size_t>(n) * k);
  Round round = 0;
  for (round = 1; round <= cap; ++round) {
    std::fill(incoming.begin(), incoming.end(), std::numeric_limits<double>::infinity());
    bool anyMessage = false;
    for (NodeId u = 0; u < n; ++u) {
      if (!dirty[u]) continue;
      if (byz.contains(u) && attack == SupportAttack::Suppress) continue;
      anyMessage = true;
      for (NodeId v : g.neighbors(u)) {
        if (!byz.contains(u)) result.meter.record(u, messageBits);
        for (std::uint32_t j = 0; j < k; ++j) {
          const std::size_t vi = static_cast<std::size_t>(v) * k + j;
          incoming[vi] = std::min(incoming[vi], mins[static_cast<std::size_t>(u) * k + j]);
        }
      }
    }
    if (!anyMessage) break;
    std::fill(dirty.begin(), dirty.end(), 0);
    for (NodeId u = 0; u < n; ++u) {
      bool improved = false;
      for (std::uint32_t j = 0; j < k; ++j) {
        const std::size_t ui = static_cast<std::size_t>(u) * k + j;
        if (incoming[ui] < mins[ui]) {
          mins[ui] = incoming[ui];
          improved = true;
        }
      }
      if (improved && !(byz.contains(u) && attack == SupportAttack::Suppress)) dirty[u] = 1;
    }
  }
  result.totalRounds = std::min(round, cap);
  result.hitRoundCap = round > cap;

  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    double sum = 0.0;
    for (std::uint32_t j = 0; j < k; ++j) sum += mins[static_cast<std::size_t>(u) * k + j];
    const double estimateN = sum > 0 ? static_cast<double>(k) / sum : 0.0;
    result.decisions[u].decided = true;
    result.decisions[u].round = result.totalRounds;
    result.decisions[u].estimate = estimateN > 1.0 ? std::log(estimateN) : 0.0;
  }
  return result;
}

}  // namespace bzc
