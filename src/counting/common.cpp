#include "counting/common.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace bzc {

double logSize(NodeId n) {
  BZC_REQUIRE(n >= 2, "network too small");
  return std::log(static_cast<double>(n));
}

QualitySummary evaluateQuality(const CountingResult& result, const ByzantineSet& byz, NodeId n,
                               const QualityWindow& window) {
  BZC_REQUIRE(result.decisions.size() == n, "decision vector size mismatch");
  const double logN = logSize(n);
  QualitySummary summary;
  bool first = true;
  double ratioSum = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    ++summary.honestCount;
    const DecisionRecord& rec = result.decisions[u];
    if (!rec.decided) continue;
    ++summary.decidedCount;
    summary.maxDecisionRound = std::max(summary.maxDecisionRound, rec.round);
    const double ratio = rec.estimate / logN;
    ratioSum += ratio;
    if (first) {
      summary.minRatio = summary.maxRatio = ratio;
      first = false;
    } else {
      summary.minRatio = std::min(summary.minRatio, ratio);
      summary.maxRatio = std::max(summary.maxRatio, ratio);
    }
    if (ratio >= window.lowRatio && ratio <= window.highRatio) ++summary.withinWindowCount;
  }
  if (summary.honestCount > 0) {
    summary.fracDecided =
        static_cast<double>(summary.decidedCount) / static_cast<double>(summary.honestCount);
    summary.fracWithinWindow =
        static_cast<double>(summary.withinWindowCount) / static_cast<double>(summary.honestCount);
  }
  if (summary.decidedCount > 0) {
    summary.meanRatio = ratioSum / static_cast<double>(summary.decidedCount);
  }
  return summary;
}

}  // namespace bzc
