#include "counting/local/attacks.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

/// Byzantine nodes that follow the protocol: broadcast their true record in
/// round 1, relay honestly afterwards.
class HonestLocalAdversary final : public LocalAdversary {
 public:
  Emission emit(NodeId b, Round r) override {
    Emission e;
    if (r == 1) e.records.push_back(static_cast<RecordIdx>(b));
    return e;
  }
  bool relaysHonest() const override { return true; }
  const char* name() const override { return "honest"; }
};

class SilentLocalAdversary final : public LocalAdversary {
 public:
  explicit SilentLocalAdversary(Round muteFrom) : muteFrom_(muteFrom) {}
  Emission emit(NodeId b, Round r) override {
    Emission e;
    if (r >= muteFrom_) {
      e.mute = true;
    } else if (r == 1) {
      e.records.push_back(static_cast<RecordIdx>(b));
    }
    return e;
  }
  bool relaysHonest() const override { return false; }
  const char* name() const override { return "silent"; }

 private:
  Round muteFrom_;
};

/// Announces its true record, then a forged alias of one honest neighbour
/// with a scrambled adjacency — the contradiction floods and triggers the
/// Line 18 / Lemma 4 inconsistency everywhere it lands.
class ConflictLocalAdversary final : public LocalAdversary {
 public:
  void prepare(LocalAttackContext& ctx) override {
    for (NodeId b : ctx.byz.members()) {
      const auto nbrs = ctx.graph.neighbors(b);
      NodeId target = kNoNode;
      for (NodeId v : nbrs) {
        if (!ctx.byz.contains(v)) {
          target = v;
          break;
        }
      }
      if (target == kNoNode) continue;
      // Forged adjacency: the target's real neighbours with one swapped for
      // a fabricated identity (degree is preserved, so only the content
      // contradiction can trip the checks).
      std::vector<PublicId> adj;
      for (NodeId v : ctx.graph.neighbors(target)) adj.push_back(ctx.ids.publicId(v));
      if (!adj.empty()) adj[0] = ctx.rng.next();
      forged_[b] = ctx.pool.addFake(ctx.ids.publicId(target), adj);
    }
  }
  Emission emit(NodeId b, Round r) override {
    Emission e;
    if (r == 1) e.records.push_back(static_cast<RecordIdx>(b));
    if (r == 2) {
      const auto it = forged_.find(b);
      if (it != forged_.end()) e.records.push_back(it->second);
    }
    return e;
  }
  bool relaysHonest() const override { return true; }
  const char* name() const override { return "conflict"; }

 private:
  std::unordered_map<NodeId, RecordIdx> forged_;
};

/// Broadcasts a record whose degree exceeds the known bound Δ (Line 17).
class DegreeBombLocalAdversary final : public LocalAdversary {
 public:
  void prepare(LocalAttackContext& ctx) override {
    const std::uint32_t overDegree = ctx.graph.maxDegree() + 3;
    for (NodeId b : ctx.byz.members()) {
      std::vector<PublicId> adj;
      for (std::uint32_t k = 0; k < overDegree; ++k) adj.push_back(ctx.rng.next());
      forged_[b] = ctx.pool.addFake(ctx.rng.next(), adj);
    }
  }
  Emission emit(NodeId b, Round r) override {
    Emission e;
    if (r == 1) e.records.push_back(static_cast<RecordIdx>(b));
    if (r == 2) {
      const auto it = forged_.find(b);
      if (it != forged_.end()) e.records.push_back(it->second);
    }
    return e;
  }
  bool relaysHonest() const override { return true; }
  const char* name() const override { return "degree-bomb"; }

 private:
  std::unordered_map<NodeId, RecordIdx> forged_;
};

/// Remark 1: fabricate an ever-growing world behind the Byzantine moat.
class FakeWorldLocalAdversary final : public LocalAdversary {
 public:
  explicit FakeWorldLocalAdversary(const FakeWorldConfig& config) : config_(config) {}

  void prepare(LocalAttackContext& ctx) override {
    const auto distToVictim = bfsDistances(ctx.graph, ctx.victim);
    const std::uint32_t maxDegree = ctx.graph.maxDegree();
    const std::uint32_t perNodeBudget = std::max<std::uint32_t>(
        32, config_.totalBudget / std::max<std::size_t>(1, ctx.byz.count()));
    for (NodeId b : ctx.byz.members()) {
      PerNode& state = perNode_[b];
      // Keep the real neighbours closest to the victim (the moat's inward
      // side must stay consistent with what the victim can verify); drop the
      // rest and attach that many fabricated children.
      std::vector<NodeId> nbrs(ctx.graph.neighbors(b).begin(), ctx.graph.neighbors(b).end());
      std::sort(nbrs.begin(), nbrs.end(), [&](NodeId x, NodeId y) {
        return distToVictim[x] != distToVictim[y] ? distToVictim[x] < distToVictim[y] : x < y;
      });
      const std::size_t keep = std::min<std::size_t>(nbrs.size(), (nbrs.size() + 1) / 2);
      std::vector<PublicId> selfAdj;
      for (std::size_t k = 0; k < keep; ++k) selfAdj.push_back(ctx.ids.publicId(nbrs[k]));
      const std::uint32_t width =
          std::min<std::uint32_t>(config_.firstLayerWidth,
                                  static_cast<std::uint32_t>(nbrs.size() - keep));
      std::vector<PublicId> children;
      for (std::uint32_t k = 0; k < std::max<std::uint32_t>(width, 1); ++k) {
        children.push_back(ctx.rng.next());
      }
      for (PublicId c : children) selfAdj.push_back(c);
      // Fabricated self-record (alias of b's true identity).
      state.layers.push_back({});
      for (PublicId c : children) state.layers.back().push_back(c);
      state.selfRecord = ctx.pool.addFake(ctx.ids.publicId(b), selfAdj);
      state.parentOf[children.front()] = ctx.ids.publicId(b);
      for (PublicId c : children) state.parentOf[c] = ctx.ids.publicId(b);

      // Pre-generate the whole fake world (deterministic; prepare() is the
      // only place records may be registered).
      double targetWidth = static_cast<double>(children.size());
      std::uint32_t total = static_cast<std::uint32_t>(children.size());
      for (std::uint32_t depth = 1; depth < config_.depthCap; ++depth) {
        targetWidth = std::min<double>(targetWidth * config_.growthFactor, config_.layerCap);
        const auto& prev = state.layers.back();
        if (prev.empty() || total >= perNodeBudget) break;
        std::vector<PublicId> next;
        const auto want = static_cast<std::uint32_t>(targetWidth);
        // Children per parent bounded by Δ-1 so degrees stay legal.
        std::size_t parentIdx = 0;
        std::vector<std::uint32_t> childCount(prev.size(), 0);
        for (std::uint32_t k = 0; k < want && total < perNodeBudget; ++k) {
          // Round-robin parents.
          for (std::size_t scan = 0; scan < prev.size(); ++scan) {
            const std::size_t p = (parentIdx + scan) % prev.size();
            if (childCount[p] + 1 < maxDegree) {
              const PublicId child = ctx.rng.next();
              next.push_back(child);
              state.parentOf[child] = prev[p];
              ++childCount[p];
              ++total;
              parentIdx = p + 1;
              break;
            }
          }
        }
        // Register the previous layer's records now that children are known.
        registerLayer(ctx, state, state.layers.size() - 1, next);
        if (next.empty()) break;
        state.layers.push_back(std::move(next));
      }
      // The final layer's nodes get leaf records (parent only).
      registerLayer(ctx, state, state.layers.size() - 1, {});
    }
  }

  Emission emit(NodeId b, Round r) override {
    Emission e;
    auto it = perNode_.find(b);
    if (it == perNode_.end()) return e;
    PerNode& state = it->second;
    if (r == 1) {
      e.records.push_back(state.selfRecord);
    } else if (r - 2 < state.layerRecords.size()) {
      e.records = state.layerRecords[r - 2];
    }
    return e;
  }
  bool relaysHonest() const override { return false; }
  const char* name() const override { return "fake-world"; }

 private:
  struct PerNode {
    RecordIdx selfRecord = 0;
    std::vector<std::vector<PublicId>> layers;          // fake ids per depth
    std::vector<std::vector<RecordIdx>> layerRecords;   // registered records per depth
    std::unordered_map<PublicId, PublicId> parentOf;
  };

  /// Registers records for layer `depth`, whose children are `nextLayer`
  /// (distributed by parentOf bookkeeping done during generation).
  void registerLayer(LocalAttackContext& ctx, PerNode& state, std::size_t depth,
                     const std::vector<PublicId>& nextLayer) {
    if (depth >= state.layers.size()) return;
    if (depth < state.layerRecords.size() && !state.layerRecords[depth].empty()) return;
    // children grouped by parent
    std::unordered_map<PublicId, std::vector<PublicId>> childrenOf;
    for (PublicId c : nextLayer) childrenOf[state.parentOf.at(c)].push_back(c);
    std::vector<RecordIdx> records;
    for (PublicId id : state.layers[depth]) {
      std::vector<PublicId> adj;
      adj.push_back(state.parentOf.at(id));
      const auto cit = childrenOf.find(id);
      if (cit != childrenOf.end()) {
        for (PublicId c : cit->second) adj.push_back(c);
      }
      records.push_back(ctx.pool.addFake(id, adj));
    }
    if (state.layerRecords.size() <= depth) state.layerRecords.resize(depth + 1);
    state.layerRecords[depth] = std::move(records);
  }

  FakeWorldConfig config_;
  std::unordered_map<NodeId, PerNode> perNode_;
};

}  // namespace

std::unique_ptr<LocalAdversary> makeHonestLocalAdversary() {
  return std::make_unique<HonestLocalAdversary>();
}
std::unique_ptr<LocalAdversary> makeSilentLocalAdversary(Round muteFrom) {
  return std::make_unique<SilentLocalAdversary>(muteFrom);
}
std::unique_ptr<LocalAdversary> makeConflictLocalAdversary() {
  return std::make_unique<ConflictLocalAdversary>();
}
std::unique_ptr<LocalAdversary> makeDegreeBombLocalAdversary() {
  return std::make_unique<DegreeBombLocalAdversary>();
}
std::unique_ptr<LocalAdversary> makeFakeWorldLocalAdversary(const FakeWorldConfig& config) {
  return std::make_unique<FakeWorldLocalAdversary>(config);
}

}  // namespace bzc
