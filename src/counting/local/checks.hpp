// Expansion checks for Algorithm 1 (Lines 9-13 of the pseudocode).
//
// The paper checks *every* subset of B̂(u,i) for vertex expansion >= α' in
// B̂(u,i+1) — an analysis device with exponential cost. DESIGN.md §2
// documents the substitution implemented here; the check is decomposed into:
//
//  1. Ball-growth: the BFS-layer prefixes S_j must satisfy
//     |Out(S_j)| >= α'|S_j| (Out(S_j) is the next layer, and the referenced
//     boundary for the newest prefix). This is exactly the set family the
//     proofs of Lemmas 3 and 5 examine; it fires on benign exhaustion
//     (boundary empties at i = ecc(u)) and on throttled fake growth.
//  2. Spectral sweep: a Fiedler-vector sweep cut over the view upper-bounds
//     the view's vertex expansion and fires when a large fabricated region
//     hangs behind an o(n)-sized cut while total layer growth still looks
//     healthy — the Lemma 5 attack case the prefix family alone misses.
//  3. Exact subset enumeration (tiny views only) — ground truth for tests.
//
// A monitor is per-node and persistent so the Fiedler vector can be
// warm-started as the view grows one layer per round.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "counting/local/view.hpp"
#include "support/rng.hpp"

namespace bzc {

struct LocalCheckParams {
  double alphaPrime = 0.10;        ///< α' threshold (< assumed expansion α)
  bool ballGrowthEnabled = true;
  bool spectralEnabled = true;
  std::uint32_t spectralMinSize = 96;   ///< skip the sweep on smaller views
  std::uint32_t spectralMinSide = 8;    ///< ignore cuts with a tiny small side
  std::uint32_t spectralIters = 10;     ///< warm-started power iterations/round
};

enum class ExpansionVerdict : std::uint8_t {
  Healthy,
  BallGrowthViolation,
  SparseCutDetected,
};

class ExpansionMonitor {
 public:
  ExpansionMonitor(LocalCheckParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Runs the configured checks against the view as of the end of `round`.
  [[nodiscard]] ExpansionVerdict inspect(const LocalView& view, Round round);

 private:
  [[nodiscard]] bool ballGrowthHealthy(const LocalView& view, Round round) const;
  [[nodiscard]] bool sweepHealthy(const LocalView& view);

  LocalCheckParams params_;
  Rng rng_;
  std::vector<double> warmFiedler_;
};

/// Exact minimum vertex expansion over all subsets S of the *integrated*
/// part of the view, measured in the view graph (boundary vertices count
/// toward Out(S)). Views of up to 20 integrated vertices only.
[[nodiscard]] double exactViewSubsetExpansion(const LocalView& view);

}  // namespace bzc
