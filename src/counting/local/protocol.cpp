#include "counting/local/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "sim/ids.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {
constexpr std::size_t kHeartbeatBits = 16;

std::size_t recordBits(const RecordPool& pool, RecordIdx r) {
  // One ID for the subject plus one per incident edge.
  return IdSpace::bitsPerId() * (1 + pool.degree(r));
}
}  // namespace

LocalOutcome runLocalCounting(const Graph& g, const ByzantineSet& byz, LocalAdversary& adversary,
                              const LocalParams& params, Rng& rng, NodeId victim) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2, "network too small");
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");

  const std::uint32_t maxDegree = params.maxDegree > 0 ? params.maxDegree : g.maxDegree();
  const Round cap = params.maxRounds > 0
                        ? params.maxRounds
                        : static_cast<Round>(4.0 * std::log2(static_cast<double>(n))) + 48;

  Rng idRng = rng.fork(0x1d5);
  const IdSpace ids(n, idRng);
  RecordPool pool(g, ids);
  Rng atkRng = rng.fork(0xa77);
  LocalAttackContext ctx{g, byz, ids, pool, atkRng, victim};
  adversary.prepare(ctx);

  LocalOutcome out;
  out.result.decisions.assign(n, {});
  out.result.meter = MessageMeter(n);
  out.stats.reason.assign(n, LocalDecideReason::Undecided);
  out.stats.distToByz = byz.distanceToByzantine(g);

  // Every node keeps a view: honest nodes for the protocol, Byzantine nodes
  // (when the strategy relays) for dedup-forwarding of honest traffic.
  std::vector<LocalView> views;
  views.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    views.emplace_back(&pool, maxDegree);
    views.back().installSelf(static_cast<RecordIdx>(u));
  }
  std::vector<ExpansionMonitor> monitors;
  monitors.reserve(n);
  Rng monRng = rng.fork(0x57ec);
  for (NodeId u = 0; u < n; ++u) monitors.emplace_back(params.checks, monRng.next());

  std::vector<char> decided(n, 0);
  std::size_t undecidedHonest = n - byz.count();

  auto decide = [&](NodeId u, Round r, LocalDecideReason why) {
    decided[u] = 1;
    --undecidedHonest;
    out.stats.reason[u] = why;
    out.result.decisions[u].decided = true;
    out.result.decisions[u].round = r;
    out.result.decisions[u].estimate = static_cast<double>(r);
    switch (why) {
      case LocalDecideReason::Inconsistency: ++out.stats.inconsistencyDecisions; break;
      case LocalDecideReason::MuteNeighbor: ++out.stats.muteDecisions; break;
      case LocalDecideReason::BallGrowth: ++out.stats.ballGrowthDecisions; break;
      case LocalDecideReason::SparseCut: ++out.stats.sparseCutDecisions; break;
      case LocalDecideReason::Undecided: break;
    }
  };

  struct Outgoing {
    bool sends = false;
    std::size_t sliceBegin = 0;  // into the sender's integration log
    std::size_t sliceEnd = 0;
    std::vector<RecordIdx> extra;  // adversarial fabrications
  };
  std::vector<Outgoing> outgoing(n);

  Round round = 1;
  for (round = 1; round <= cap && undecidedHonest > 0; ++round) {
    // --- Emission phase. ---
    for (NodeId u = 0; u < n; ++u) {
      Outgoing& o = outgoing[u];
      o.extra.clear();
      if (byz.contains(u)) {
        auto emission = adversary.emit(u, round);
        o.sends = !emission.mute;
        o.extra = std::move(emission.records);
        if (adversary.relaysHonest() && o.sends) {
          o.sliceBegin = views[u].roundMark(round - 1);
          o.sliceEnd = views[u].roundMark(round);
        } else {
          o.sliceBegin = o.sliceEnd = 0;
        }
        continue;
      }
      if (decided[u]) {
        o.sends = false;  // terminated nodes are mute (this is what Line 5 sees)
        continue;
      }
      o.sends = true;
      o.sliceBegin = views[u].roundMark(round - 1);
      o.sliceEnd = views[u].roundMark(round);
      std::size_t bits = kHeartbeatBits;
      const auto& log = views[u].integrationLog();
      for (std::size_t k = o.sliceBegin; k < o.sliceEnd; ++k) bits += recordBits(pool, log[k]);
      out.result.meter.recordBroadcast(u, bits, g.degree(u));
    }

    // --- Delivery & integration. ---
    for (NodeId u = 0; u < n; ++u) {
      if (decided[u]) continue;
      const bool isByz = byz.contains(u);
      if (isByz && !adversary.relaysHonest()) continue;  // no view upkeep needed
      bool decidedNow = false;
      // Line 5: a mute neighbour triggers an immediate decision.
      if (!isByz) {
        for (NodeId w : g.neighbors(u)) {
          if (!outgoing[w].sends) {
            decide(u, round, LocalDecideReason::MuteNeighbor);
            decidedNow = true;
            break;
          }
        }
        if (decidedNow) continue;
      }
      LocalView& view = views[u];
      for (NodeId w : g.neighbors(u) ) {
        const Outgoing& o = outgoing[w];
        if (!o.sends) continue;  // byzantine relay path reaches here
        const auto& log = views[w].integrationLog();
        for (std::size_t k = o.sliceBegin; k < o.sliceEnd && !decidedNow; ++k) {
          const RecordIdx rec = log[k];
          if (view.knows(rec)) continue;
          const IntegrationVerdict v = view.integrate(rec, round);
          if (!isByz && v != IntegrationVerdict::Ok && v != IntegrationVerdict::Duplicate) {
            decide(u, round, LocalDecideReason::Inconsistency);
            decidedNow = true;
          }
        }
        for (std::size_t k = 0; k < o.extra.size() && !decidedNow; ++k) {
          const RecordIdx rec = o.extra[k];
          if (view.knows(rec)) continue;
          const IntegrationVerdict v = view.integrate(rec, round);
          if (!isByz && v != IntegrationVerdict::Ok && v != IntegrationVerdict::Duplicate) {
            decide(u, round, LocalDecideReason::Inconsistency);
            decidedNow = true;
          }
        }
        if (decidedNow) break;
      }
    }

    // --- Expansion checks (Lines 9-13). ---
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || decided[u]) continue;
      switch (monitors[u].inspect(views[u], round)) {
        case ExpansionVerdict::Healthy: break;
        case ExpansionVerdict::BallGrowthViolation:
          decide(u, round, LocalDecideReason::BallGrowth);
          break;
        case ExpansionVerdict::SparseCutDetected:
          decide(u, round, LocalDecideReason::SparseCut);
          break;
      }
    }
  }

  out.result.totalRounds = std::min<Round>(round, cap);
  out.result.hitRoundCap = undecidedHonest > 0;
  out.stats.undecidedAtCap = undecidedHonest;
  return out;
}

}  // namespace bzc
