#include "counting/local/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "runtime/sync_engine.hpp"
#include "sim/ids.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {
constexpr std::size_t kHeartbeatBits = 16;

std::size_t recordBits(const RecordPool& pool, RecordIdx r) {
  // One ID for the subject plus one per incident edge.
  return IdSpace::bitsPerId() * (1 + pool.degree(r));
}

/// One round's broadcast from a node: a slice of the sender's integration log
/// (the records it learned last round) plus any adversarial fabrications.
/// Views live in a stable vector, so the pointers outlive the round.
struct DeltaMsg {
  const std::vector<RecordIdx>* log = nullptr;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  const std::vector<RecordIdx>* extra = nullptr;
};

using Engine = SyncEngine<DeltaMsg>;

}  // namespace

LocalOutcome runLocalCounting(const Graph& g, const ByzantineSet& byz, LocalAdversary& adversary,
                              const LocalParams& params, Rng& rng, NodeId victim) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2, "network too small");
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");

  const std::uint32_t maxDegree = params.maxDegree > 0 ? params.maxDegree : g.maxDegree();
  const Round cap = params.maxRounds > 0
                        ? params.maxRounds
                        : static_cast<Round>(4.0 * std::log2(static_cast<double>(n))) + 48;

  Rng idRng = rng.fork(0x1d5);
  const IdSpace ids(n, idRng);
  RecordPool pool(g, ids);
  Rng atkRng = rng.fork(0xa77);
  LocalAttackContext ctx{g, byz, ids, pool, atkRng, victim};
  adversary.prepare(ctx);

  LocalOutcome out;
  out.result.decisions.assign(n, {});
  out.stats.reason.assign(n, LocalDecideReason::Undecided);
  out.stats.distToByz = byz.distanceToByzantine(g);

  // Every node keeps a view: honest nodes for the protocol, Byzantine nodes
  // (when the strategy relays) for dedup-forwarding of honest traffic.
  std::vector<LocalView> views;
  views.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    views.emplace_back(&pool, maxDegree);
    views.back().installSelf(static_cast<RecordIdx>(u));
  }
  std::vector<ExpansionMonitor> monitors;
  monitors.reserve(n);
  Rng monRng = rng.fork(0x57ec);
  for (NodeId u = 0; u < n; ++u) monitors.emplace_back(params.checks, monRng.next());

  std::vector<char> decided(n, 0);
  std::size_t undecidedHonest = n - byz.count();

  auto decide = [&](NodeId u, Round r, LocalDecideReason why) {
    decided[u] = 1;
    --undecidedHonest;
    out.stats.reason[u] = why;
    out.result.decisions[u].decided = true;
    out.result.decisions[u].round = r;
    out.result.decisions[u].estimate = static_cast<double>(r);
    switch (why) {
      case LocalDecideReason::Inconsistency: ++out.stats.inconsistencyDecisions; break;
      case LocalDecideReason::MuteNeighbor: ++out.stats.muteDecisions; break;
      case LocalDecideReason::BallGrowth: ++out.stats.ballGrowthDecisions; break;
      case LocalDecideReason::SparseCut: ++out.stats.sparseCutDecisions; break;
      case LocalDecideReason::Undecided: break;
    }
  };

  Engine engine(g, byz, cap);
  std::vector<std::vector<RecordIdx>> extras(n);  // adversarial fabrications, per round

  // --- Emission: every undecided node broadcasts last round's delta. ---
  auto emit = [&](Round) {
    const auto round = static_cast<Round>(engine.round());
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u)) {
        auto emission = adversary.emit(u, round);
        extras[u] = std::move(emission.records);
        if (emission.mute) continue;
        DeltaMsg m;
        m.extra = &extras[u];
        if (adversary.relaysHonest()) {
          m.log = &views[u].integrationLog();
          m.begin = static_cast<std::uint32_t>(views[u].roundMark(round - 1));
          m.end = static_cast<std::uint32_t>(views[u].roundMark(round));
        }
        engine.broadcast(u, m, 0);  // Byzantine traffic is never metered
        continue;
      }
      if (decided[u]) continue;  // terminated nodes are mute (this is what Line 5 sees)
      DeltaMsg m;
      m.log = &views[u].integrationLog();
      m.begin = static_cast<std::uint32_t>(views[u].roundMark(round - 1));
      m.end = static_cast<std::uint32_t>(views[u].roundMark(round));
      std::size_t bits = kHeartbeatBits;
      const auto& log = *m.log;
      for (std::uint32_t k = m.begin; k < m.end; ++k) bits += recordBits(pool, log[k]);
      engine.broadcast(u, m, bits);
    }
  };

  // --- Integration + checks, run once per round over all nodes. ---
  auto endOfRound = [&](Round) {
    const auto round = static_cast<Round>(engine.round());
    for (NodeId u = 0; u < n; ++u) {
      if (decided[u]) continue;
      const bool isByz = byz.contains(u);
      if (isByz && !adversary.relaysHonest()) continue;  // no view upkeep needed
      const std::span<const Engine::Delivery> box = engine.inboxOf(u);
      // Line 5: a mute neighbour triggers an immediate decision. Every sending
      // neighbour contributes one delivery per incident edge, so a short inbox
      // means someone stayed silent.
      if (!isByz && box.size() < g.degree(u)) {
        decide(u, round, LocalDecideReason::MuteNeighbor);
        continue;
      }
      LocalView& view = views[u];
      bool decidedNow = false;
      for (const Engine::Delivery& in : box) {
        const DeltaMsg& m = in.payload;
        if (m.log != nullptr) {
          const auto& log = *m.log;
          for (std::uint32_t k = m.begin; k < m.end && !decidedNow; ++k) {
            const RecordIdx rec = log[k];
            if (view.knows(rec)) continue;
            const IntegrationVerdict v = view.integrate(rec, round);
            if (!isByz && v != IntegrationVerdict::Ok && v != IntegrationVerdict::Duplicate) {
              decide(u, round, LocalDecideReason::Inconsistency);
              decidedNow = true;
            }
          }
        }
        if (m.extra != nullptr) {
          const auto& extra = *m.extra;
          for (std::size_t k = 0; k < extra.size() && !decidedNow; ++k) {
            const RecordIdx rec = extra[k];
            if (view.knows(rec)) continue;
            const IntegrationVerdict v = view.integrate(rec, round);
            if (!isByz && v != IntegrationVerdict::Ok && v != IntegrationVerdict::Duplicate) {
              decide(u, round, LocalDecideReason::Inconsistency);
              decidedNow = true;
            }
          }
        }
        if (decidedNow) break;
      }
    }

    // --- Expansion checks (Lines 9-13). ---
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || decided[u]) continue;
      switch (monitors[u].inspect(views[u], round)) {
        case ExpansionVerdict::Healthy: break;
        case ExpansionVerdict::BallGrowthViolation:
          decide(u, round, LocalDecideReason::BallGrowth);
          break;
        case ExpansionVerdict::SparseCutDetected:
          decide(u, round, LocalDecideReason::SparseCut);
          break;
      }
    }

    // Trace probes (DESIGN.md §12): the end hook is a serial point, so the
    // per-round undecided count and decide-reason running totals land on the
    // same timeline as the engine's round records.
    if (obs::TrialTrace* trace = obs::currentTrace()) {
      trace->counter("local.undecidedHonest", static_cast<double>(undecidedHonest), round);
      trace->counter("local.decided.inconsistency",
                     static_cast<double>(out.stats.inconsistencyDecisions), round);
      trace->counter("local.decided.mute", static_cast<double>(out.stats.muteDecisions), round);
      trace->counter("local.decided.ballGrowth",
                     static_cast<double>(out.stats.ballGrowthDecisions), round);
      trace->counter("local.decided.sparseCut",
                     static_cast<double>(out.stats.sparseCutDecisions), round);
    }
    return undecidedHonest > 0;
  };

  WindowResult run{WindowStatus::Stopped, 0};
  if (undecidedHonest > 0) {
    run = engine.runWindow(0, emit, Engine::NoRecv{}, endOfRound);
    // While honest undecided nodes remain they keep broadcasting, so the
    // engine can only stop via the round cap or the all-decided hook.
    BZC_ASSERT(run.status != WindowStatus::Quiesced);
  }

  out.result.totalRounds =
      std::min<Round>(static_cast<Round>(engine.round()) + (run.status == WindowStatus::Stopped ? 1 : 0), cap);
  out.result.hitRoundCap = undecidedHonest > 0;
  out.result.meter = engine.releaseMeter();
  out.stats.undecidedAtCap = undecidedHonest;
  return out;
}

}  // namespace bzc
