#include "counting/local/checks.hpp"

#include <algorithm>

#include "graph/expansion.hpp"
#include "support/require.hpp"

namespace bzc {

ExpansionVerdict ExpansionMonitor::inspect(const LocalView& view, Round round) {
  if (params_.ballGrowthEnabled && !ballGrowthHealthy(view, round)) {
    return ExpansionVerdict::BallGrowthViolation;
  }
  if (params_.spectralEnabled && view.size() >= params_.spectralMinSize && !sweepHealthy(view)) {
    return ExpansionVerdict::SparseCutDetected;
  }
  return ExpansionVerdict::Healthy;
}

bool ExpansionMonitor::ballGrowthHealthy(const LocalView& view, Round round) const {
  const auto& layers = view.layerCounts();
  std::size_t prefix = 0;
  for (Round j = 0; j <= round && j < layers.size(); ++j) {
    prefix += layers[j];
    // Out(S_j) in the next view: the following layer, except for the newest
    // prefix whose Out is the referenced-but-unintegrated boundary.
    const std::size_t out = (j + 1 < layers.size() && j < round)
                                ? layers[j + 1]
                                : view.boundarySize();
    if (prefix == 0) continue;
    if (static_cast<double>(out) < params_.alphaPrime * static_cast<double>(prefix)) {
      return false;
    }
  }
  return true;
}

bool ExpansionMonitor::sweepHealthy(const LocalView& view) {
  const Graph g = view.buildViewGraph();
  if (g.numNodes() < 4) return true;
  const std::vector<double>* warm =
      warmFiedler_.size() == g.numNodes() ? &warmFiedler_ : nullptr;
  // Warm-started: a handful of iterations per round tracks the slowly
  // changing cut structure; a cold start gets a deeper solve.
  const unsigned iters = warm != nullptr ? params_.spectralIters : 5 * params_.spectralIters;
  warmFiedler_ = fiedlerVector(g, iters, rng_, warm);
  // Order integrated vertices by the Fiedler value; boundary vertices are
  // excluded from the candidate prefixes (S must lie inside B̂(u,i)) but
  // still count toward Out(S) via sweepCutByOrder's full-graph accounting.
  const auto nInt = static_cast<NodeId>(view.integratedVertexCount());
  std::vector<NodeId> order(nInt);
  for (NodeId i = 0; i < nInt; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return warmFiedler_[a] != warmFiedler_[b] ? warmFiedler_[a] < warmFiedler_[b] : a < b;
  });
  // Candidate prefixes stay within the integrated part (S ⊆ B̂(u,i));
  // boundary vertices still count toward Out(S) via the graph.
  auto violating = [&](const SweepCut& cut) {
    return cut.smallSide >= params_.spectralMinSide && cut.expansion < params_.alphaPrime;
  };
  if (violating(sweepCutByOrder(g, order, nInt))) return false;
  std::reverse(order.begin(), order.end());
  return !violating(sweepCutByOrder(g, order, nInt));
}

double exactViewSubsetExpansion(const LocalView& view) {
  const Graph g = view.buildViewGraph();
  const auto nInt = static_cast<NodeId>(view.integratedVertexCount());
  BZC_REQUIRE(nInt >= 1 && nInt <= 20, "exact check limited to <= 20 integrated vertices");
  double best = static_cast<double>(g.numNodes());
  std::vector<NodeId> members;
  for (std::uint32_t mask = 1; mask < (1u << nInt); ++mask) {
    members.clear();
    for (NodeId u = 0; u < nInt; ++u) {
      if (mask & (1u << u)) members.push_back(u);
    }
    best = std::min(best, vertexExpansionOfSet(g, members));
  }
  return best;
}

}  // namespace bzc
