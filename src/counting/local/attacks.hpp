// Adversaries against Algorithm 1.
//
// A LocalAdversary scripts every Byzantine node's per-round emissions: which
// records (pool indices) it broadcasts, whether it stays mute, and whether it
// relays honest traffic. The adversary is omniscient (full-information
// model): prepare() sees the graph, the Byzantine set and the ID space, and
// may precompute arbitrarily elaborate fake worlds.
//
// Strategies:
//  - HonestLocal:  Byzantine nodes follow the protocol (control runs).
//  - SilentLocal:  never send anything. The mute rule (Line 5) then makes
//                  estimates collapse to distance-to-Byzantine — the
//                  lower end of Theorem 1's window.
//  - ConflictLocal: broadcast forged records contradicting honest neighbours'
//                  adjacency (the Lemma 4 contradiction; flooding turns it
//                  into an everywhere-detection).
//  - DegreeBombLocal: broadcast a record with degree > Δ (Line 17 trigger).
//  - FakeWorldLocal: the Remark 1 attack. Each Byzantine node rewrites its
//                  own record to drop real neighbours (those *away* from the
//                  victim) and attach a fabricated subtree, then feeds fake
//                  layers round by round, growing them geometrically so the
//                  victim's view keeps passing the ball-growth check. Honest
//                  records are NOT relayed (the moat suppresses the truth).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "counting/local/view.hpp"
#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "sim/ids.hpp"
#include "support/rng.hpp"

namespace bzc {

struct LocalAttackContext {
  const Graph& graph;
  const ByzantineSet& byz;
  const IdSpace& ids;
  RecordPool& pool;  ///< attacks register fabricated records here (in prepare)
  Rng& rng;
  NodeId victim = 0;  ///< focus node for targeted strategies
};

class LocalAdversary {
 public:
  virtual ~LocalAdversary() = default;

  /// Called once before round 1; register all fabricated pool records here.
  virtual void prepare(LocalAttackContext& ctx) { (void)ctx; }

  struct Emission {
    bool mute = false;                 ///< send nothing at all this round
    std::vector<RecordIdx> records;    ///< fabricated records to broadcast
  };

  /// What Byzantine node b sends in round r (on top of honest relaying when
  /// relaysHonest() is true).
  [[nodiscard]] virtual Emission emit(NodeId b, Round r) = 0;

  /// Whether Byzantine nodes forward honest records they receive.
  [[nodiscard]] virtual bool relaysHonest() const { return true; }

  [[nodiscard]] virtual const char* name() const = 0;
};

struct FakeWorldConfig {
  double growthFactor = 1.4;        ///< fake layer size multiplier per round
  std::uint32_t firstLayerWidth = 4;///< fake children attached per Byzantine node
  std::uint32_t layerCap = 512;     ///< max fabricated records per layer per node
  std::uint32_t totalBudget = 8192; ///< global fabrication budget (split across
                                    ///< Byzantine nodes; bounds simulation memory)
  std::uint32_t depthCap = 40;      ///< stop fabricating past this depth
};

[[nodiscard]] std::unique_ptr<LocalAdversary> makeHonestLocalAdversary();
[[nodiscard]] std::unique_ptr<LocalAdversary> makeSilentLocalAdversary(Round muteFrom = 1);
[[nodiscard]] std::unique_ptr<LocalAdversary> makeConflictLocalAdversary();
[[nodiscard]] std::unique_ptr<LocalAdversary> makeDegreeBombLocalAdversary();
[[nodiscard]] std::unique_ptr<LocalAdversary> makeFakeWorldLocalAdversary(
    const FakeWorldConfig& config = {});

}  // namespace bzc
