#include "counting/local/view.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/require.hpp"

namespace bzc {

RecordPool::RecordPool(const Graph& g, const IdSpace& ids) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(ids.size() == n, "id space size mismatch");
  honestCount_ = n;
  recordName_.reserve(n);
  adjOffset_.reserve(n + 1);
  adjOffset_.push_back(0);
  namePub_.reserve(n);
  refTracked_.reserve(n);
  nameRecords_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    const NameId w = internName(ids.publicId(u));
    BZC_CHECK(w == u, "honest names must be dense");
    recordName_.push_back(w);
    nameRecords_[w].push_back(u);
    for (NodeId v : g.neighbors(u)) adjPool_.push_back(v);
    adjOffset_.push_back(adjPool_.size());
  }
}

NameId RecordPool::internName(PublicId pub) {
  const auto [it, inserted] = pubToName_.try_emplace(pub, static_cast<NameId>(namePub_.size()));
  if (inserted) {
    namePub_.push_back(pub);
    refTracked_.push_back(0);
    nameRecords_.emplace_back();
  }
  return it->second;
}

NameId RecordPool::nameOf(PublicId pub) { return internName(pub); }

NameId RecordPool::findName(PublicId pub) const {
  const auto it = pubToName_.find(pub);
  return it == pubToName_.end() ? kNoName : it->second;
}

RecordIdx RecordPool::addFake(PublicId pub, const std::vector<PublicId>& adjacency) {
  const NameId w = internName(pub);
  const auto r = static_cast<RecordIdx>(recordName_.size());
  recordName_.push_back(w);
  nameRecords_[w].push_back(r);
  markRefTracked(w);
  for (PublicId a : adjacency) {
    const NameId an = internName(a);
    adjPool_.push_back(an);
    markRefTracked(an);
  }
  adjOffset_.push_back(adjPool_.size());
  return r;
}

bool RecordPool::lists(RecordIdx r, NameId w) const {
  for (NameId a : adjacency(r)) {
    if (a == w) return true;
  }
  return false;
}

std::span<const RecordIdx> RecordPool::aliases(NameId w) const {
  const auto& records = nameRecords_[w];
  return {records.data(), records.size()};
}

LocalView::LocalView(const RecordPool* pool, std::uint32_t maxDegree)
    : pool_(pool), maxDegree_(maxDegree) {
  BZC_REQUIRE(pool != nullptr, "view needs a record pool");
  nameState_.assign(pool->numNames(), kUnseen);
  nameRecord_.assign(pool->numNames(), 0);
  nameOrder_.assign(pool->numNames(), 0);
}

void LocalView::ensureNameCapacity() {
  if (nameState_.size() < pool_->numNames()) {
    nameState_.resize(pool_->numNames(), kUnseen);
    nameRecord_.resize(pool_->numNames(), 0);
    nameOrder_.resize(pool_->numNames(), 0);
  }
}

void LocalView::installSelf(RecordIdx self) {
  BZC_REQUIRE(integrated_.empty(), "self record must be first");
  const IntegrationVerdict v = integrate(self, 0);
  BZC_CHECK(v == IntegrationVerdict::Ok, "own record must integrate cleanly");
}

IntegrationVerdict LocalView::integrate(RecordIdx r, Round round) {
  ensureNameCapacity();
  while (roundMarks_.size() <= round) roundMarks_.push_back(integrated_.size());
  while (layer_.size() <= round) layer_.push_back(0);

  const NameId w = pool_->recordName(r);
  if (nameState_[w] == kIntegrated) {
    if (nameRecord_[w] == r) return IntegrationVerdict::Duplicate;
    // Alias: another record claims the same identity. Identical content is a
    // duplicate in disguise; anything else is the Lemma 4 contradiction.
    const auto a = pool_->adjacency(nameRecord_[w]);
    const auto b = pool_->adjacency(r);
    if (a.size() == b.size()) {
      std::vector<NameId> sa(a.begin(), a.end());
      std::vector<NameId> sb(b.begin(), b.end());
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      if (sa == sb) return IntegrationVerdict::Duplicate;
    }
    return IntegrationVerdict::Conflict;
  }

  if (pool_->degree(r) > maxDegree_) return IntegrationVerdict::DegreeBound;

  const bool honest = pool_->isHonest(r);
  // Forward mutual check: every already-integrated claimed neighbour must
  // list us back. Honest-honest pairs are symmetric by construction of the
  // pool, so only pairs touching fabricated content pay for the scan.
  for (NameId a : pool_->adjacency(r)) {
    if (nameState_[a] != kIntegrated) continue;
    const RecordIdx f = nameRecord_[a];
    if (honest && pool_->isHonest(f)) continue;
    if (!pool_->lists(f, w)) return IntegrationVerdict::MutualMismatch;
  }
  // Reverse mutual check: anyone who previously referenced this identity
  // must appear in our adjacency.
  if (pool_->needsRefTracking(w)) {
    for (const auto& [referenced, referencer] : trackedRefs_) {
      if (referenced == w && !pool_->lists(r, referencer)) {
        return IntegrationVerdict::MutualMismatch;
      }
    }
  }

  // Commit.
  if (nameState_[w] == kReferenced) {
    BZC_ASSERT(boundary_ > 0);
    --boundary_;
  }
  nameState_[w] = kIntegrated;
  nameRecord_[w] = r;
  nameOrder_[w] = static_cast<std::uint32_t>(integrated_.size());
  integrated_.push_back(r);
  ++layer_[round];
  for (NameId a : pool_->adjacency(r)) {
    if (nameState_[a] == kUnseen) {
      nameState_[a] = kReferenced;
      ++boundary_;
    }
    if (pool_->needsRefTracking(a)) trackedRefs_.emplace_back(a, w);
  }
  return IntegrationVerdict::Ok;
}

std::size_t LocalView::roundMark(Round round) const {
  return round < roundMarks_.size() ? roundMarks_[round] : integrated_.size();
}

Graph LocalView::buildViewGraph() const {
  // Vertices: integrated records first (in integration order), then boundary
  // names. Edges come from integrated records' adjacency claims; the edge to
  // an integrated peer is emitted by the lower-ordered endpoint only (both
  // endpoints list each other — anything else was rejected at integration).
  const auto total = integrated_.size();
  std::unordered_map<NameId, NodeId> boundaryIndex;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(total * 4);
  for (std::size_t i = 0; i < integrated_.size(); ++i) {
    const RecordIdx r = integrated_[i];
    for (NameId a : pool_->adjacency(r)) {
      if (nameState_[a] == kIntegrated) {
        const std::uint32_t j = nameOrder_[a];
        if (j > i) edges.emplace_back(static_cast<NodeId>(i), static_cast<NodeId>(j));
      } else if (nameState_[a] == kReferenced) {
        auto [it, inserted] = boundaryIndex.try_emplace(
            a, static_cast<NodeId>(total + boundaryIndex.size()));
        edges.emplace_back(static_cast<NodeId>(i), it->second);
      }
    }
  }
  const auto numVertices = static_cast<NodeId>(total + boundaryIndex.size());
  return Graph(numVertices, edges);
}

}  // namespace bzc
