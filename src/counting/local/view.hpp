// Topology views for Algorithm 1 (deterministic LOCAL counting).
//
// Every node u maintains an approximation B̂(u,i) of its i-hop neighbourhood,
// grown by integrating "records" — (node id, incident edge list) claims —
// received from neighbours. Honest nodes forward each record once (delta
// flooding, informationally equivalent to the paper's "broadcast B̂(u,i)"
// but O(1) per record per edge); Byzantine nodes may fabricate records.
//
// To keep the per-receipt cost at a couple of array lookups (the simulation
// touches ~n²·Δ record deliveries), all record *content* lives once in a
// shared RecordPool; messages carry pool indices; per-view state is flat
// arrays indexed by "name" (distinct claimed node identity). Two pool
// entries with the same public ID but different content are *aliases* — a
// view integrating both has caught a Byzantine contradiction (Lemma 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/ids.hpp"
#include "support/types.hpp"

namespace bzc {

/// Index of a record in the pool.
using RecordIdx = std::uint32_t;
/// Dense index of a claimed node identity (public ID); honest node u has
/// name u, fabricated identities get fresh names.
using NameId = std::uint32_t;

class RecordPool {
 public:
  /// Honest records 0..n-1 are derived from the real graph and ID space.
  RecordPool(const Graph& g, const IdSpace& ids);

  /// Registers a fabricated record claiming identity `pub` with the given
  /// incident identities. Returns its index. `pub` may collide with an
  /// honest node's ID (that is the whole point of a forgery).
  RecordIdx addFake(PublicId pub, const std::vector<PublicId>& adjacency);

  /// Dense name for a public ID (allocating if new).
  [[nodiscard]] NameId nameOf(PublicId pub);
  /// Name lookup without allocation; returns kNoName when unknown.
  [[nodiscard]] NameId findName(PublicId pub) const;

  [[nodiscard]] std::size_t numRecords() const noexcept { return recordName_.size(); }
  [[nodiscard]] std::size_t numNames() const noexcept { return namePub_.size(); }

  [[nodiscard]] NameId recordName(RecordIdx r) const { return recordName_[r]; }
  [[nodiscard]] PublicId namePublicId(NameId w) const { return namePub_[w]; }
  [[nodiscard]] bool isHonest(RecordIdx r) const { return r < honestCount_; }
  [[nodiscard]] std::span<const NameId> adjacency(RecordIdx r) const {
    return {adjPool_.data() + adjOffset_[r], adjPool_.data() + adjOffset_[r + 1]};
  }
  [[nodiscard]] std::uint32_t degree(RecordIdx r) const {
    return static_cast<std::uint32_t>(adjOffset_[r + 1] - adjOffset_[r]);
  }

  /// True when some alias of this name could contradict another (name of a
  /// Byzantine node, or name carried by a fabricated record). Views only
  /// track reverse references for flagged names, keeping the honest fast
  /// path free of bookkeeping.
  [[nodiscard]] bool needsRefTracking(NameId w) const { return refTracked_[w]; }
  void markRefTracked(NameId w) { refTracked_[w] = 1; }

  /// True if the adjacency of record r contains name w.
  [[nodiscard]] bool lists(RecordIdx r, NameId w) const;

  /// Records claiming the same name as r (excluding r itself) — O(aliases).
  [[nodiscard]] std::span<const RecordIdx> aliases(NameId w) const;

  static constexpr NameId kNoName = 0xffffffffu;

 private:
  NameId internName(PublicId pub);

  std::uint32_t honestCount_ = 0;
  std::vector<NameId> recordName_;
  std::vector<std::size_t> adjOffset_;
  std::vector<NameId> adjPool_;
  std::vector<PublicId> namePub_;
  std::vector<char> refTracked_;
  std::vector<std::vector<RecordIdx>> nameRecords_;  // records per name
  std::unordered_map<PublicId, NameId> pubToName_;
};

/// Outcome of integrating one record into a view.
enum class IntegrationVerdict : std::uint8_t {
  Ok,              ///< new knowledge, consistent
  Duplicate,       ///< already known, identical content
  DegreeBound,     ///< claimed degree exceeds the known bound Δ (Line 17)
  Conflict,        ///< contradicts a previously integrated record (Line 18)
  MutualMismatch,  ///< edge claimed in one direction only
};

/// One node's growing neighbourhood approximation.
class LocalView {
 public:
  /// maxDegree is the global bound Δ all nodes know.
  LocalView(const RecordPool* pool, std::uint32_t maxDegree);

  /// Installs the node's own record (layer 0). Must be called once.
  void installSelf(RecordIdx self);

  /// Integrates a record claimed to be new in `round`. Never throws; the
  /// caller reacts to the verdict (Algorithm 1 decides on anything worse
  /// than Duplicate).
  [[nodiscard]] IntegrationVerdict integrate(RecordIdx r, Round round);

  /// True if the view already integrated this exact record (the fast dup
  /// test used before paying for integrate()).
  [[nodiscard]] bool knows(RecordIdx r) const {
    const NameId w = pool_->recordName(r);
    return nameState_[w] == kIntegrated && nameRecord_[w] == r;
  }

  [[nodiscard]] std::size_t size() const noexcept { return integrated_.size(); }
  [[nodiscard]] std::size_t boundarySize() const noexcept { return boundary_; }
  /// |{records integrated in round j}| for j = 0..lastRound.
  [[nodiscard]] const std::vector<std::size_t>& layerCounts() const noexcept { return layer_; }
  /// Integration log in order; slice it with roundMark() for delta flooding.
  [[nodiscard]] const std::vector<RecordIdx>& integrationLog() const noexcept {
    return integrated_;
  }
  /// Index into integrationLog() of the first record integrated at `round`.
  [[nodiscard]] std::size_t roundMark(Round round) const;

  /// View graph over integrated records plus boundary (referenced-only)
  /// identities; integrated vertices come first, in integration order. Used
  /// by the spectral expansion check.
  [[nodiscard]] Graph buildViewGraph() const;
  [[nodiscard]] std::size_t integratedVertexCount() const noexcept { return integrated_.size(); }

 private:
  void ensureNameCapacity();

  static constexpr std::uint8_t kUnseen = 0;
  static constexpr std::uint8_t kReferenced = 1;
  static constexpr std::uint8_t kIntegrated = 2;

  const RecordPool* pool_;
  std::uint32_t maxDegree_;
  std::vector<std::uint8_t> nameState_;
  std::vector<RecordIdx> nameRecord_;    // valid when integrated
  std::vector<std::uint32_t> nameOrder_; // view vertex index (integration order)
  std::vector<RecordIdx> integrated_;
  std::vector<std::size_t> roundMarks_;  // integrationLog prefix per round
  std::vector<std::size_t> layer_;
  std::size_t boundary_ = 0;
  // Reverse references, tracked only for pool-flagged names.
  std::vector<std::pair<NameId, NameId>> trackedRefs_;  // (referenced, referencer)
};

}  // namespace bzc
