// Algorithm 1: time-optimal deterministic Byzantine counting in LOCAL.
//
// Faithful round structure (Algorithm 1 of the paper):
//   - every round, each undecided honest node broadcasts the records it
//     learned in the previous round (delta flooding — informationally equal
//     to rebroadcasting B̂(u,i), DESIGN.md §2) plus a heartbeat;
//   - a node decides on the current round number i when it
//       (a) integrates inconsistent information (degree bound, conflicting
//           alias, one-sided edge claim)                       [Line 5/17/18]
//       (b) observes a mute neighbour                          [Line 5]
//       (c) detects an expansion violation in its view         [Lines 9-13]
//   - deciding nodes fall silent, which propagates decisions (Lemma 5 uses
//     exactly this cascade).
//
// DecisionRecord::estimate is the decision round i; Theorem 1 places it in
// [γ/2·log_Δ n, diam(G)+1] for the n-o(n) nodes of the Good set.
#pragma once

#include <memory>

#include "counting/common.hpp"
#include "counting/local/attacks.hpp"
#include "counting/local/checks.hpp"
#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"

namespace bzc {

struct LocalParams {
  std::uint32_t maxDegree = 0;  ///< Δ known to all nodes; 0 = graph's max degree
  LocalCheckParams checks;
  Round maxRounds = 0;  ///< simulation cap; 0 = 4*log2(n) + 48
};

enum class LocalDecideReason : std::uint8_t {
  Undecided,
  Inconsistency,  ///< degree bound / conflict / mutual mismatch
  MuteNeighbor,
  BallGrowth,
  SparseCut,
};

struct LocalRunStats {
  std::vector<LocalDecideReason> reason;  ///< per node
  std::vector<std::uint32_t> distToByz;   ///< per node (kUnreachable if none)
  std::size_t inconsistencyDecisions = 0;
  std::size_t muteDecisions = 0;
  std::size_t ballGrowthDecisions = 0;
  std::size_t sparseCutDecisions = 0;
  std::size_t undecidedAtCap = 0;
};

struct LocalOutcome {
  CountingResult result;
  LocalRunStats stats;
};

/// Runs Algorithm 1. The adversary's prepare() hook is called before round 1
/// with a context whose victim is `victim` (used by targeted strategies).
[[nodiscard]] LocalOutcome runLocalCounting(const Graph& g, const ByzantineSet& byz,
                                            LocalAdversary& adversary, const LocalParams& params,
                                            Rng& rng, NodeId victim = 0);

}  // namespace bzc
