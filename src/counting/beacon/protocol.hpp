// Algorithm 2: Byzantine-resilient counting with small messages.
//
// Faithful implementation of the paper's pseudocode (Algorithm 2, §5), with
// the model's synchrony exploited: all nodes start together, so phases and
// iterations are globally aligned and the simulator runs
// phase -> iteration -> round loops while nodes individually decide, exit and
// re-enter exactly as Lines 28-44 prescribe.
//
// Implementation choices (documented in DESIGN.md §4):
//  - Beacons are forwarded during all i+2 rounds of the beacon window (the
//    reach Lemma 8 needs); acceptance into shortestPath is likewise open for
//    the whole window.
//  - Receivers append the *sender's* true ID to the path (the model forbids
//    faking an ID over an edge), so the Line 15 sender check holds by
//    construction.
//  - "Discard all but one" (Line 14) uses an explicit BeaconChoicePolicy.
//  - The blacklist suffix is clamped to >= 1 so the immediate sender is never
//    blacklisted (at the small phases real deployments start from,
//    floor((1-eps)i) is 0, which would disconnect honest nodes; the paper's
//    analysis assumes i large enough that the floor is positive).
#pragma once

#include "adversary/beacon/beacon_adversary.hpp"
#include "counting/beacon/attacks.hpp"
#include "counting/beacon/params.hpp"
#include "counting/common.hpp"
#include "graph/graph.hpp"
#include "obs/provenance.hpp"
#include "sim/byzantine.hpp"
#include "sim/ids.hpp"
#include "support/rng.hpp"

namespace bzc {

/// Introspection beyond CountingResult, used by tests and experiments.
struct BeaconRunStats {
  std::uint32_t lastPhase = 0;              ///< highest phase any node entered
  Round roundsUntilAllDecided = 0;          ///< 0 if some honest node never decided
  bool quiesced = false;                    ///< every node stopped sending
  std::uint64_t beaconsGenerated = 0;       ///< honest activations (Line 5)
  std::uint64_t beaconsForged = 0;          ///< adversarial injections (mirrors adversary stats)
  std::uint64_t blacklistInsertions = 0;    ///< total Line 32 insertions
  std::uint64_t continueMessages = 0;       ///< honest continue originations
  std::vector<std::uint32_t> decidedPhase;  ///< per node; 0 = undecided
  /// What the counting-stage strategy did (extras-only; not fingerprinted).
  BeaconAdversaryStats adversary;
};

struct BeaconOutcome {
  CountingResult result;
  BeaconRunStats stats;
  obs::BlameGraph blame;  ///< causal damage attribution (DESIGN.md §14): which
                          ///< forger/tamperer got which honest id blacklisted,
                          ///< who suppressed whose beacons, who spammed/withheld
                          ///< continues. Collected unconditionally from committed
                          ///< state — diagnostics, never fingerprinted
};

/// Runs Algorithm 2 on g driving Byzantine nodes through a BeaconAdversary
/// strategy (src/adversary/beacon/, DESIGN.md §9). DecisionRecord::estimate
/// is the decided phase i (the protocol's estimate of log n up to the
/// constant factor Definition 2 allows). `coalition`, when non-null, is the
/// trial-shared blackboard — the pipeline passes the same object to both
/// stages so counting- and walk-stage subsets collude.
[[nodiscard]] BeaconOutcome runBeaconCounting(const Graph& g, const ByzantineSet& byz,
                                              BeaconAdversary& adversary,
                                              const BeaconParams& params,
                                              const BeaconLimits& limits, Rng& rng,
                                              Coalition* coalition = nullptr);

/// Legacy flag-bundle entry point: resolves `attack` to its gallery strategy
/// (BeaconAttackProfile::toAdversaryProfile) and runs it — bit-identical to
/// the pre-subsystem flag semantics, pinned by the beacon goldens.
[[nodiscard]] BeaconOutcome runBeaconCounting(const Graph& g, const ByzantineSet& byz,
                                              const BeaconAttackProfile& attack,
                                              const BeaconParams& params,
                                              const BeaconLimits& limits, Rng& rng);

}  // namespace bzc
