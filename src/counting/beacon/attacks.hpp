// Legacy flag-bundle adversary description for Algorithm 2 — now a thin
// compatibility shim over the beacon-adversary gallery.
//
// The model is full-information: the adversary sees all state. The presets
// below are the concrete worst cases the paper's analysis singles out:
//
//  - flooder():     forge a fresh beacon at every Byzantine node in every
//                   iteration — the attack blacklisting exists to stop
//                   (§1.3 "To avoid the scenario where Byzantine nodes simply
//                   keep generating new beacon messages...").
//  - tamperer():    relay honest beacons but rewrite the path prefix with
//                   fresh fabricated IDs (Lemma 11's "tampered prefix" case).
//  - suppressor():  drop all beacon and continue traffic (push neighbours
//                   toward *early* decisions).
//  - continueSpammer(): emit continue messages forever so decided nodes never
//                   quiesce (stresses the exit rule; decisions stay correct,
//                   termination does not happen — cf. Remark 3).
//  - full():        flooder + tamperer + continue spam.
//
// Since the beacon-adversary subsystem landed (src/adversary/beacon/,
// DESIGN.md §9), Byzantine counting-stage behaviour is a BeaconAdversary
// strategy; the protocol resolves this profile to its gallery equivalent via
// toAdversaryProfile() — pinned bit-identical for every preset. New scenarios
// should use BeaconAdversaryProfile directly; this struct exists so flag-era
// call sites and goldens keep working unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/beacon/profile.hpp"

namespace bzc {

struct BeaconAttackProfile {
  std::string name = "none";

  bool forgeBeacons = false;          ///< emit a forged beacon each iteration
  std::uint32_t fakePrefixLength = 2; ///< fabricated IDs prepended to forged paths
  bool relayBeacons = true;           ///< forward honest beacon traffic
  bool tamperRelayedPaths = false;    ///< relaying rewrites paths with fresh IDs
  bool relayContinues = true;         ///< forward continue messages
  bool spamContinues = false;         ///< originate continue messages forever

  // Targeted variant: only Byzantine nodes within `forgeRadius` hops of
  // `victim` forge (0 radius = untargeted). Concentrates the whole forging
  // budget on one neighbourhood — the worst case for that victim, and a
  // cheap one network-wide.
  std::uint32_t forgeRadius = 0;
  std::uint32_t victim = 0;

  [[nodiscard]] static BeaconAttackProfile none();
  [[nodiscard]] static BeaconAttackProfile flooder();
  [[nodiscard]] static BeaconAttackProfile tamperer();
  [[nodiscard]] static BeaconAttackProfile suppressor();
  [[nodiscard]] static BeaconAttackProfile continueSpammer();
  [[nodiscard]] static BeaconAttackProfile full();
  [[nodiscard]] static BeaconAttackProfile targetedFlooder(std::uint32_t victim,
                                                           std::uint32_t radius = 4);

  /// Resolves the flag bundle to its gallery strategy profile. Every preset
  /// maps to a dedicated strategy class; ad-hoc flag combinations outside the
  /// preset space have no legacy users and are rejected — express those as a
  /// BeaconAdversaryProfile (or a new strategy class) instead.
  [[nodiscard]] BeaconAdversaryProfile toAdversaryProfile() const;
};

}  // namespace bzc
