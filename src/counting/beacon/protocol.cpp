#include "counting/beacon/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "counting/beacon/path.hpp"
#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

// Message framing costs (bits) for the CONGEST accounting of Theorem 2.
constexpr std::size_t kHeaderBits = 16;
constexpr std::size_t kContinueBits = 16;

struct Beacon {
  PublicId origin = kNoPublicId;
  PathRef path = kNoPath;  ///< path *as sent*; the receiver appends the sender
  std::uint32_t len = 0;   ///< number of IDs on `path`
};

struct Incoming {
  NodeId sender = kNoNode;
  Beacon beacon;
};

/// Bits of a beacon message carrying `pathLen` IDs plus the origin ID.
[[nodiscard]] std::size_t beaconBits(std::uint32_t pathLen) {
  return kHeaderBits + IdSpace::bitsPerId() * (static_cast<std::size_t>(pathLen) + 1);
}

/// Line 21 check for the received message ⟨beacon, o, Q⟩ from `senderPub`:
/// S = all but the last `suffix` entries of Q' = Q + [sender] must avoid BL.
[[nodiscard]] bool pathAcceptable(const std::unordered_set<PublicId>& bl, const PathArena& arena,
                                  const Beacon& beacon, PublicId senderPub, std::uint32_t suffix) {
  if (bl.empty()) return true;
  if (suffix == 0 && bl.count(senderPub) > 0) return false;
  const std::uint32_t effectiveSuffix = suffix > 0 ? suffix - 1 : 0;
  return arena.walkPrefix(beacon.path, effectiveSuffix,
                          [&](PublicId id) { return bl.count(id) == 0; });
}

/// Per-run mutable state, grouped so helper lambdas stay readable.
struct RunState {
  explicit RunState(NodeId n)
      : participating(n, 1),
        decided(n, 0),
        blacklist(n),
        hasPending(n, 0),
        pending(n),
        inbox(n),
        hasShortest(n, 0),
        ownBeacon(n, 0),
        shortest(n),
        receivedContinue(n, 0) {}

  // Persistent across iterations.
  std::vector<char> participating;
  std::vector<char> decided;
  std::vector<std::unordered_set<PublicId>> blacklist;  // reset each phase

  // Per-round messaging state.
  std::vector<char> hasPending;
  std::vector<Beacon> pending;
  std::vector<std::vector<Incoming>> inbox;

  // Per-iteration state.
  std::vector<char> hasShortest;
  std::vector<char> ownBeacon;  // shortestPath == (u) itself (Line 7)
  std::vector<Beacon> shortest;
  std::vector<char> receivedContinue;
};

}  // namespace

BeaconOutcome runBeaconCounting(const Graph& g, const ByzantineSet& byz,
                                const BeaconAttackProfile& attack, const BeaconParams& params,
                                const BeaconLimits& limits, Rng& rng) {
  params.validate();
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2, "network too small");
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");

  const std::uint32_t maxPhase =
      limits.maxPhase > 0
          ? limits.maxPhase
          : static_cast<std::uint32_t>(std::ceil(2.5 * std::log(static_cast<double>(n)))) + 6;
  const std::uint64_t maxRounds = limits.maxTotalRounds > 0 ? limits.maxTotalRounds : 20'000;

  Rng idRng = rng.fork(0x1d5);
  const IdSpace ids(n, idRng);
  Rng actRng = rng.fork(0xac7);
  Rng fakeRng = rng.fork(0xfa4e);

  BeaconOutcome out;
  out.result.decisions.assign(n, {});
  out.result.meter = MessageMeter(n);
  out.stats.decidedPhase.assign(n, 0);

  // Targeted forging: restrict the forging set to the victim's vicinity.
  std::vector<char> forges(n, 0);
  if (attack.forgeBeacons) {
    const std::vector<std::uint32_t> distToVictim =
        attack.forgeRadius > 0 ? bfsDistances(g, static_cast<NodeId>(attack.victim % n))
                               : std::vector<std::uint32_t>{};
    for (NodeId b : byz.members()) {
      forges[b] = (attack.forgeRadius == 0 || distToVictim[b] <= attack.forgeRadius) ? 1 : 0;
    }
  }

  RunState st(n);
  PathArena arena;
  std::vector<NodeId> senders;      // nodes with hasPending, this round
  std::vector<NodeId> nextSenders;  // nodes that will broadcast next round
  std::vector<NodeId> touched;      // nodes with a nonempty inbox this round
  std::vector<NodeId> frontier;     // continue-flood BFS frontier
  std::vector<NodeId> nextFrontier;

  std::uint64_t globalRound = 0;
  std::size_t undecidedHonest = n - byz.count();

  auto makeForgedBeacon = [&](std::uint32_t prefixLen) {
    Beacon forged;
    forged.origin = fakeRng.next();
    forged.path = kNoPath;
    for (std::uint32_t k = 0; k < prefixLen; ++k) {
      forged.path = arena.append(forged.path, fakeRng.next());
    }
    forged.len = prefixLen;
    ++out.stats.beaconsForged;
    return forged;
  };

  bool capped = false;
  for (std::uint32_t phase = params.firstPhase; phase <= maxPhase && !capped;
       phase = params.nextPhase(phase)) {
    out.stats.lastPhase = phase;
    // Line 2: reset the phase blacklist (kept only where it is consulted:
    // undecided honest nodes; decided re-entrants never read theirs).
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && !st.decided[u]) st.blacklist[u].clear();
    }
    const std::uint32_t iterations = params.iterationsForPhase(phase);
    const std::uint32_t beaconWindow = phase + 2;
    const std::uint32_t continueWindow = phase + 3;
    const std::uint32_t suffix = std::max<std::uint32_t>(
        1, params.blacklistSuffix(phase, std::max<NodeId>(2, g.maxDegree())));

    bool anyParticipant = false;
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && st.participating[u]) {
        anyParticipant = true;
        break;
      }
    }
    if (!anyParticipant) {
      out.stats.quiesced = true;
      break;
    }

    for (std::uint32_t iter = 1; iter <= iterations && !capped; ++iter) {
      if (globalRound + BeaconParams::roundsPerIteration(phase) > maxRounds) {
        capped = true;
        break;
      }
      arena.clear();
      std::fill(st.hasShortest.begin(), st.hasShortest.end(), 0);
      std::fill(st.ownBeacon.begin(), st.ownBeacon.end(), 0);
      std::fill(st.hasPending.begin(), st.hasPending.end(), 0);
      senders.clear();

      // --- Line 5-11: activations at the start of the iteration. ---
      for (NodeId u = 0; u < n; ++u) {
        if (byz.contains(u)) {
          if (forges[u]) {
            st.pending[u] = makeForgedBeacon(attack.fakePrefixLength);
            st.hasPending[u] = 1;
            senders.push_back(u);
          }
          continue;
        }
        if (!st.participating[u]) continue;
        const double p = params.activationProbability(phase, g.degree(u));
        if (actRng.bernoulli(p)) {
          st.pending[u] = Beacon{ids.publicId(u), kNoPath, 0};
          st.hasPending[u] = 1;
          st.hasShortest[u] = 1;  // Line 7: shortestPath <- (u)
          st.ownBeacon[u] = 1;
          senders.push_back(u);
          ++out.stats.beaconsGenerated;
        }
      }

      // --- Beacon window: i+2 rounds of flooding. ---
      for (std::uint32_t r = 1; r <= beaconWindow; ++r) {
        ++globalRound;
        touched.clear();
        for (NodeId u : senders) {
          const Beacon& b = st.pending[u];
          if (!byz.contains(u)) {
            out.result.meter.recordBroadcast(u, beaconBits(b.len), g.degree(u));
          }
          for (NodeId v : g.neighbors(u)) {
            if (st.inbox[v].empty()) touched.push_back(v);
            st.inbox[v].push_back({u, b});
          }
        }
        // Everyone's message from this round is now out; compute next round's.
        std::fill(st.hasPending.begin(), st.hasPending.end(), 0);
        nextSenders.clear();
        for (NodeId v : touched) {
          auto& box = st.inbox[v];
          if (byz.contains(v)) {
            if (attack.relayBeacons && r < beaconWindow) {
              if (attack.tamperRelayedPaths) {
                st.pending[v] = makeForgedBeacon(attack.fakePrefixLength);
              } else {
                const Incoming& in = box.front();
                Beacon fwd = in.beacon;
                fwd.path = arena.append(fwd.path, ids.publicId(in.sender));
                ++fwd.len;
                st.pending[v] = fwd;
              }
              st.hasPending[v] = 1;
              nextSenders.push_back(v);
            }
            box.clear();
            continue;
          }
          if (!st.participating[v]) {
            box.clear();  // exited nodes stay mute
            continue;
          }
          // Line 13-14: pick one message per the policy. Acceptability only
          // matters while the node still needs a shortestPath this iteration
          // (decided re-entrants and nodes with shortestPath set just relay),
          // which keeps the prefix walks off the fan-out fast path.
          const bool needsAccept = !st.decided[v] && !st.hasShortest[v];
          const Incoming* chosen = &box.front();
          bool chosenAcceptable = false;
          if (needsAccept) {
            chosenAcceptable = pathAcceptable(st.blacklist[v], arena, chosen->beacon,
                                              ids.publicId(chosen->sender), suffix);
            if (params.choice == BeaconChoicePolicy::PreferAcceptable && box.size() > 1) {
              for (std::size_t k = 1; k < box.size(); ++k) {
                const Incoming& cand = box[k];
                if (chosenAcceptable && chosen->beacon.len <= cand.beacon.len) continue;
                const bool acc = pathAcceptable(st.blacklist[v], arena, cand.beacon,
                                                ids.publicId(cand.sender), suffix);
                const bool better =
                    (acc && !chosenAcceptable) ||
                    (acc == chosenAcceptable && cand.beacon.len < chosen->beacon.len);
                if (better) {
                  chosen = &cand;
                  chosenAcceptable = acc;
                }
              }
            }
          }
          // Line 16: the receiver appends the sender's (unfakeable) ID.
          Beacon forwarded = chosen->beacon;
          forwarded.path = arena.append(forwarded.path, ids.publicId(chosen->sender));
          ++forwarded.len;
          // Lines 20-25: update shortestPath with the first acceptable beacon.
          if (chosenAcceptable && !st.hasShortest[v]) {
            st.hasShortest[v] = 1;
            st.shortest[v] = forwarded;
          }
          // Lines 17-19: keep flooding while the window allows another hop.
          if (r < beaconWindow) {
            st.pending[v] = forwarded;
            st.hasPending[v] = 1;
            nextSenders.push_back(v);
          }
          box.clear();
        }
        senders.swap(nextSenders);
      }
      senders.clear();

      // --- Lines 28-32: decisions and blacklist maintenance. ---
      for (NodeId u = 0; u < n; ++u) {
        if (byz.contains(u) || !st.participating[u] || st.decided[u]) continue;
        if (!st.hasShortest[u]) {
          st.decided[u] = 1;
          --undecidedHonest;
          out.stats.decidedPhase[u] = phase;
          out.result.decisions[u].decided = true;
          out.result.decisions[u].round = static_cast<Round>(globalRound);
          out.result.decisions[u].estimate = static_cast<double>(phase);
        } else if (params.blacklistEnabled && !st.ownBeacon[u]) {
          const std::uint32_t len = st.shortest[u].len;
          if (len > suffix) {
            st.blacklist[u].reserve(st.blacklist[u].size() + (len - suffix));
            arena.walkPrefix(st.shortest[u].path, suffix, [&](PublicId id) {
              if (st.blacklist[u].insert(id).second) ++out.stats.blacklistInsertions;
              return true;
            });
          }
        }
      }
      if (undecidedHonest == 0 && out.stats.roundsUntilAllDecided == 0) {
        out.stats.roundsUntilAllDecided = static_cast<Round>(globalRound);
      }

      // --- Lines 34-41: continue flood, i+3 rounds. ---
      globalRound += continueWindow;
      std::fill(st.receivedContinue.begin(), st.receivedContinue.end(), 0);
      frontier.clear();
      for (NodeId u = 0; u < n; ++u) {
        const bool honestSource = !byz.contains(u) && st.participating[u] && !st.decided[u] &&
                                  params.continueEnabled;
        const bool byzSource = byz.contains(u) && attack.spamContinues;
        if (!honestSource && !byzSource) continue;
        if (honestSource) ++out.stats.continueMessages;
        st.receivedContinue[u] = 1;  // sources need no re-entry signal
        frontier.push_back(u);
      }
      // Sources broadcast in round 1; relays run rounds 2..continueWindow,
      // so the flood reaches distance `continueWindow`.
      for (std::uint32_t depth = 1; depth <= continueWindow && !frontier.empty(); ++depth) {
        nextFrontier.clear();
        for (NodeId u : frontier) {
          const bool emits = depth == 1  // sources always emit their own
                                 ? true
                                 : (byz.contains(u) ? attack.relayContinues
                                                    : st.participating[u] != 0);
          if (!emits) continue;
          if (!byz.contains(u)) {
            out.result.meter.recordBroadcast(u, kContinueBits, g.degree(u));
          }
          for (NodeId v : g.neighbors(u)) {
            if (!st.receivedContinue[v]) {
              st.receivedContinue[v] = 1;
              nextFrontier.push_back(v);
            }
          }
        }
        frontier.swap(nextFrontier);
      }

      // Lines 38-44: exit or (re-)enter for the next iteration.
      bool anyHonestParticipant = false;
      for (NodeId u = 0; u < n; ++u) {
        if (byz.contains(u)) continue;
        st.participating[u] = (!st.decided[u] || st.receivedContinue[u]) ? 1 : 0;
        anyHonestParticipant = anyHonestParticipant || st.participating[u];
      }
      if (!anyHonestParticipant) break;  // phase loop notices quiescence
    }
  }

  out.result.totalRounds = static_cast<Round>(std::min<std::uint64_t>(globalRound, 0xffffffffu));
  out.result.hitRoundCap = capped;
  if (!out.stats.quiesced) {
    // The phase loop may have ended by cap/maxPhase; re-check quiescence.
    bool anyParticipant = false;
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && st.participating[u]) {
        anyParticipant = true;
        break;
      }
    }
    out.stats.quiesced = !anyParticipant;
  }
  return out;
}

}  // namespace bzc
