#include "counting/beacon/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "adversary/beacon/strategies.hpp"
#include "counting/beacon/path.hpp"
#include "runtime/sync_engine.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

// Message framing costs (bits) for the CONGEST accounting of Theorem 2.
constexpr std::size_t kHeaderBits = 16;
constexpr std::size_t kContinueBits = 16;

// The wire payload is the adversary-visible BeaconFrame (origin + path *as
// sent*; the receiver appends the sender's ID), so the protocol and the
// strategies in src/adversary/beacon/ share one message representation.
using Engine = SyncEngine<BeaconFrame>;

/// Bits of a beacon message carrying `pathLen` IDs plus the origin ID.
[[nodiscard]] std::size_t beaconBits(std::uint32_t pathLen) {
  return kHeaderBits + IdSpace::bitsPerId() * (static_cast<std::size_t>(pathLen) + 1);
}

/// Line 21 check for the received message ⟨beacon, o, Q⟩ from `senderPub`:
/// S = all but the last `suffix` entries of Q' = Q + [sender] must avoid BL.
[[nodiscard]] bool pathAcceptable(const std::unordered_set<PublicId>& bl,
                                  const BeaconPathArena& arena, const BeaconFrame& beacon,
                                  PublicId senderPub, std::uint32_t suffix) {
  if (bl.empty()) return true;
  if (suffix == 0 && bl.count(senderPub) > 0) return false;
  const std::uint32_t effectiveSuffix = suffix > 0 ? suffix - 1 : 0;
  return arena.walkPrefix(beacon.path, effectiveSuffix,
                          [&](PublicId id) { return bl.count(id) == 0; });
}

/// Per-run mutable state, grouped so the step policies stay readable.
/// Messaging state (inboxes, pending sends) lives in the SyncEngine.
struct RunState {
  explicit RunState(NodeId n)
      : participating(n, 1),
        decided(n, 0),
        blacklist(n),
        hasShortest(n, 0),
        ownBeacon(n, 0),
        shortest(n),
        receivedContinue(n, 0) {}

  // Persistent across iterations.
  std::vector<char> participating;
  std::vector<char> decided;
  std::vector<std::unordered_set<PublicId>> blacklist;  // reset each phase

  // Per-iteration state.
  std::vector<char> hasShortest;
  std::vector<char> ownBeacon;  // shortestPath == (u) itself (Line 7)
  std::vector<BeaconFrame> shortest;
  std::vector<char> receivedContinue;
};

}  // namespace

BeaconOutcome runBeaconCounting(const Graph& g, const ByzantineSet& byz,
                                BeaconAdversary& adversary, const BeaconParams& params,
                                const BeaconLimits& limits, Rng& rng, Coalition* coalition) {
  params.validate();
  const NodeId n = g.numNodes();
  BZC_REQUIRE(n >= 2, "network too small");
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");

  const std::uint32_t maxPhase =
      limits.maxPhase > 0
          ? limits.maxPhase
          : static_cast<std::uint32_t>(std::ceil(2.5 * std::log(static_cast<double>(n)))) + 6;
  const std::uint64_t maxRounds = limits.maxTotalRounds > 0 ? limits.maxTotalRounds : 20'000;

  Rng idRng = rng.fork(0x1d5);
  const IdSpace ids(n, idRng);
  Rng actRng = rng.fork(0xac7);
  Rng fakeRng = rng.fork(0xfa4e);

  BeaconOutcome out;
  out.result.decisions.assign(n, {});
  out.stats.decidedPhase.assign(n, 0);

  RunState st(n);
  Engine engine(g, byz, maxRounds, limits.shards);
  const unsigned S = engine.shardCount();
  BeaconPathArena arena(S);

  std::size_t undecidedHonest = n - byz.count();

  // Adversary wiring: one strategy instance drives every Byzantine node. The
  // Coalition blackboard is trial-shared when the caller passes one — the
  // pipeline hands the same object to the agreement stage so both stages
  // collude (DESIGN.md §9).
  Coalition localCoalition;
  Coalition& board = coalition != nullptr ? *coalition : localCoalition;

  // Trace probe target (DESIGN.md §12), captured once for the run; null means
  // tracing is off and every probe below is a dead branch. All emission
  // happens at serial points between windows, reading committed state only —
  // never an RNG stream — so traced and untraced runs are bit-identical.
  // (The BeaconObservables local below shadows the obs namespace; probes go
  // through this pointer.)
  bzc::obs::TrialTrace* const trace = bzc::obs::currentTrace();

  BeaconObservables obs;

  // Adversary state for the shard-parallel windows (DESIGN.md §10-§11).
  // Serial slots (activation forging, continue spam — they interleave draws
  // with honest activation draws) always resolve to the base fakeRng and the
  // run-total stats via kSerialSlot, at every shard count — which is what
  // keeps the draw-free/serial-slot goldens (none, flooders) pinned. Recv
  // hooks draw from per-receiver streams instead: each Byzantine node
  // refreshes its own fork per (phase, iteration) and consumes it in its
  // canonical inbox order, so recv-drawing strategies (tamperer, grafter,
  // full) are shard-count *invariant*, not merely deterministic per count
  // (sharding_test pins the full gallery). Stats stay per-shard; sums are
  // shard-order invariant.
  constexpr unsigned kSerialSlot = ~0u;
  const Rng recvBase = fakeRng.fork(0xbe4c);  // fixed recv-stream tag
  std::vector<Rng> recvRng(n);
  std::vector<BeaconAdversaryStats> advLane(S > 1 ? S : 0);
  const auto fakeAt = [&](NodeId at, unsigned s) -> Rng& {
    return s == kSerialSlot ? fakeRng : recvRng[at];
  };
  const auto advStatsAt = [&](unsigned s) -> BeaconAdversaryStats& {
    return (S > 1 && s != kSerialSlot) ? advLane[s] : out.stats.adversary;
  };
  // Blame-graph lanes (DESIGN.md §14), routed exactly like advStatsAt:
  // serial-context edges (forge boundary, continue spam) go straight to
  // out.blame, shard-parallel edges to per-shard graphs merged at the end
  // (keyed sums are shard-order invariant). Collection is unconditional and
  // reads committed state only, so goldens are identical attribution on/off.
  std::vector<bzc::obs::BlameGraph> blameLane(S > 1 ? S : 0);
  const auto blameAt = [&](unsigned s) -> bzc::obs::BlameGraph& {
    return (S > 1 && s != kSerialSlot) ? blameLane[s] : out.blame;
  };
  // Line 32 insertions off honest-authored shortest paths: the collateral
  // the blame graph cannot pin on a cause; reconciled as
  // attributed + untainted == blacklistInsertions.
  std::uint64_t untaintedInsertions = 0;
  const auto ctxAt = [&](NodeId at, Round r, unsigned s) {
    return BeaconContext{at,    r, g, arena.lane((S > 1 && s != kSerialSlot) ? s : 0u),
                         board, fakeAt(at, s), advStatsAt(s), obs};
  };

  bool capped = false;
  for (std::uint32_t phase = params.firstPhase; phase <= maxPhase && !capped;
       phase = params.nextPhase(phase)) {
    out.stats.lastPhase = phase;
    // Line 2: reset the phase blacklist (kept only where it is consulted:
    // undecided honest nodes; decided re-entrants never read theirs).
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && !st.decided[u]) st.blacklist[u].clear();
    }
    const std::uint32_t iterations = params.iterationsForPhase(phase);
    const std::uint32_t beaconWindow = phase + 2;
    const std::uint32_t continueWindow = phase + 3;
    const std::uint32_t suffix = std::max<std::uint32_t>(
        1, params.blacklistSuffix(phase, std::max<NodeId>(2, g.maxDegree())));

    bool anyParticipant = false;
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && st.participating[u]) {
        anyParticipant = true;
        break;
      }
    }
    if (!anyParticipant) {
      out.stats.quiesced = true;
      break;
    }

    for (std::uint32_t iter = 1; iter <= iterations && !capped; ++iter) {
      if (engine.wouldExceed(BeaconParams::roundsPerIteration(phase))) {
        capped = true;
        break;
      }
      arena.clear();
      engine.clearPending();
      std::fill(st.hasShortest.begin(), st.hasShortest.end(), 0);
      std::fill(st.ownBeacon.begin(), st.ownBeacon.end(), 0);

      // Observables refresh once per iteration, before any hook fires, so
      // every strategy decision reads committed run state only.
      obs.phase = phase;
      obs.iteration = iter;
      obs.undecidedHonest = undecidedHonest;
      obs.blacklistInsertions = out.stats.blacklistInsertions;
      obs.honestBeacons = out.stats.beaconsGenerated;

      // Fresh per-receiver streams for this (phase, iteration). Only
      // Byzantine nodes fire recv hooks, so only they need streams.
      const Rng iterFake =
          recvBase.fork((static_cast<std::uint64_t>(phase) << 32) | iter);
      for (NodeId b : byz.members()) recvRng[b] = iterFake.fork(b);

      // --- Line 5-11: activations, queued as round-1 broadcasts. Byzantine
      // --- nodes get the iteration-boundary forge hook in the same slot. ---
      for (NodeId u = 0; u < n; ++u) {
        if (byz.contains(u)) {
          BeaconFrame forged;
          if (adversary.forgeBeacon(ctxAt(u, 0, kSerialSlot), forged)) {
            ++out.stats.adversary.beaconsForged;
            // Provenance stamp: every id this payload later plants in a
            // blacklist traces back to u (the tag rides honest relays — the
            // payload is copied verbatim, DESIGN.md §14).
            forged.forgeNode = u;
            out.blame.add(bzc::obs::BlameKind::BeaconForged, u, bzc::obs::kBlameNone);
            engine.broadcast(u, forged, beaconBits(forged.len));
          }
          continue;
        }
        if (!st.participating[u]) continue;
        const double p = params.activationProbability(phase, g.degree(u));
        if (actRng.bernoulli(p)) {
          engine.broadcast(u, BeaconFrame{ids.publicId(u), kNoBeaconPath, 0}, beaconBits(0));
          st.hasShortest[u] = 1;  // Line 7: shortestPath <- (u)
          st.ownBeacon[u] = 1;
          ++out.stats.beaconsGenerated;
        }
      }

      // --- Beacon window: i+2 rounds of flooding on the engine (shard-
      // --- parallel: receivers are shard-owned, sends go via the lane). ---
      auto beaconStep = [&](Engine::ShardLane& lane, NodeId v, Round r,
                            std::span<const Engine::Delivery> box) {
        const unsigned shard = lane.shard();
        if (byz.contains(v)) {
          if (r < beaconWindow) {
            const Engine::Delivery& in = box.front();
            const BeaconTransit act = adversary.onBeaconRelay(
                ctxAt(v, r, shard), {in.sender, ids.publicId(in.sender), in.payload});
            if (act.op == BeaconTransit::Op::Drop) {
              ++advStatsAt(shard).relaysSuppressed;
              // Victim: the honest author whose beacon died here (fabricated
              // or Byzantine origins resolve to no specific victim).
              const NodeId origin = ids.lookup(in.payload.origin);
              blameAt(shard).add(bzc::obs::BlameKind::RelaySuppressed, v,
                                 origin != kNoNode && !byz.contains(origin)
                                     ? origin
                                     : bzc::obs::kBlameNone);
              return;
            }
            BeaconFrame fwd;
            if (act.op == BeaconTransit::Op::Replace) {
              ++advStatsAt(shard).relaysTampered;
              ++advStatsAt(shard).beaconsForged;
              fwd = act.replacement;
              fwd.forgeNode = v;  // provenance stamp, as at the forge boundary
              blameAt(shard).add(bzc::obs::BlameKind::RelayTampered, v,
                                 bzc::obs::kBlameNone);
            } else {
              // Honest-looking relay: append the sender's unfakeable ID.
              fwd = in.payload;
              fwd.path = arena.append(shard, fwd.path, ids.publicId(in.sender));
              ++fwd.len;
            }
            lane.broadcast(v, fwd, beaconBits(fwd.len));
          }
          return;
        }
        if (!st.participating[v]) return;  // exited nodes stay mute
        // Line 13-14: pick one message per the policy. Acceptability only
        // matters while the node still needs a shortestPath this iteration
        // (decided re-entrants and nodes with shortestPath set just relay),
        // which keeps the prefix walks off the fan-out fast path.
        const bool needsAccept = !st.decided[v] && !st.hasShortest[v];
        const Engine::Delivery* chosen = &box.front();
        bool chosenAcceptable = false;
        if (needsAccept) {
          chosenAcceptable = pathAcceptable(st.blacklist[v], arena, chosen->payload,
                                            ids.publicId(chosen->sender), suffix);
          if (params.choice == BeaconChoicePolicy::PreferAcceptable && box.size() > 1) {
            for (std::size_t k = 1; k < box.size(); ++k) {
              const Engine::Delivery& cand = box[k];
              if (chosenAcceptable && chosen->payload.len <= cand.payload.len) continue;
              const bool acc = pathAcceptable(st.blacklist[v], arena, cand.payload,
                                              ids.publicId(cand.sender), suffix);
              const bool better =
                  (acc && !chosenAcceptable) ||
                  (acc == chosenAcceptable && cand.payload.len < chosen->payload.len);
              if (better) {
                chosen = &cand;
                chosenAcceptable = acc;
              }
            }
          }
        }
        // Line 16: the receiver appends the sender's (unfakeable) ID.
        BeaconFrame forwarded = chosen->payload;
        forwarded.path = arena.append(shard, forwarded.path, ids.publicId(chosen->sender));
        ++forwarded.len;
        // Lines 20-25: update shortestPath with the first acceptable beacon.
        if (chosenAcceptable && !st.hasShortest[v]) {
          st.hasShortest[v] = 1;
          st.shortest[v] = forwarded;
        }
        // Lines 17-19: keep flooding while the window allows another hop.
        if (r < beaconWindow) lane.broadcast(v, forwarded, beaconBits(forwarded.len));
      };
      const std::int64_t beaconT0 = trace != nullptr ? bzc::obs::traceClockNs() : 0;
      const WindowResult beaconRun = engine.runWindow(beaconWindow, beaconStep);
      engine.skipRounds(beaconWindow - beaconRun.roundsRun);
      if (trace != nullptr) trace->span("beacon.beaconWindow", beaconT0, engine.round());

      // --- Lines 28-32: decisions and blacklist maintenance. Shard-parallel:
      // --- every write is to node-indexed state a shard owns; the two global
      // --- counters reduce over per-shard deltas (sums are order-invariant).
      std::vector<std::size_t> decidedDelta(S, 0);
      std::vector<std::uint64_t> insertDelta(S, 0);
      std::vector<std::uint64_t> untaintedDelta(S, 0);
      const std::int64_t decideT0 = trace != nullptr ? bzc::obs::traceClockNs() : 0;
      engine.forEachShard([&](std::size_t s, NodeId lo, NodeId hi) {
        for (NodeId u = lo; u < hi; ++u) {
          if (byz.contains(u) || !st.participating[u] || st.decided[u]) continue;
          if (!st.hasShortest[u]) {
            st.decided[u] = 1;
            ++decidedDelta[s];
            out.stats.decidedPhase[u] = phase;
            out.result.decisions[u].decided = true;
            out.result.decisions[u].round = static_cast<Round>(engine.round());
            out.result.decisions[u].estimate = static_cast<double>(phase);
          } else if (params.blacklistEnabled && !st.ownBeacon[u]) {
            const std::uint32_t len = st.shortest[u].len;
            if (len > suffix) {
              st.blacklist[u].reserve(st.blacklist[u].size() + (len - suffix));
              // Provenance resolution (DESIGN.md §14): a tainted shortest
              // path blames its forger/tamperer for every id it plants —
              // honest ids are the graft/tamper damage the paper's blacklist
              // defence exists to bound; fabricated/Byzantine ids are noise
              // insertions by the same cause.
              const NodeId forger = st.shortest[u].forgeNode;
              arena.walkPrefix(st.shortest[u].path, suffix, [&](PublicId id) {
                if (st.blacklist[u].insert(id).second) {
                  ++insertDelta[s];
                  if (forger != kNoNode) {
                    const NodeId src = ids.lookup(id);
                    if (src != kNoNode && !byz.contains(src))
                      blameAt(static_cast<unsigned>(s))
                          .add(bzc::obs::BlameKind::BlacklistedHonestId, forger, src);
                    else
                      blameAt(static_cast<unsigned>(s))
                          .add(bzc::obs::BlameKind::BlacklistedFakeId, forger,
                               bzc::obs::kBlameNone);
                  } else {
                    ++untaintedDelta[s];
                  }
                }
                return true;
              });
            }
          }
        }
      });
      for (unsigned s = 0; s < S; ++s) {
        undecidedHonest -= decidedDelta[s];
        out.stats.blacklistInsertions += insertDelta[s];
        untaintedInsertions += untaintedDelta[s];
      }
      if (trace != nullptr) {
        trace->span("beacon.decisions", decideT0, engine.round());
        trace->counter("beacon.phase", static_cast<double>(phase), engine.round());
        trace->counter("beacon.undecidedHonest", static_cast<double>(undecidedHonest),
                       engine.round());
        trace->counter("beacon.blacklistInsertions",
                       static_cast<double>(out.stats.blacklistInsertions), engine.round());
        trace->counter("beacon.beaconsGenerated",
                       static_cast<double>(out.stats.beaconsGenerated), engine.round());
      }
      if (undecidedHonest == 0 && out.stats.roundsUntilAllDecided == 0) {
        out.stats.roundsUntilAllDecided = static_cast<Round>(engine.round());
      }

      // --- Lines 34-41: continue flood, i+3 rounds on the engine. ---
      std::fill(st.receivedContinue.begin(), st.receivedContinue.end(), 0);
      for (NodeId u = 0; u < n; ++u) {
        const bool honestSource = !byz.contains(u) && st.participating[u] && !st.decided[u] &&
                                  params.continueEnabled;
        const bool byzSource = byz.contains(u) && adversary.spamContinue(ctxAt(u, 0, kSerialSlot));
        if (!honestSource && !byzSource) continue;
        if (honestSource) ++out.stats.continueMessages;
        if (byzSource) {
          ++out.stats.adversary.continuesSpammed;
          out.blame.add(bzc::obs::BlameKind::ContinueSpam, u, bzc::obs::kBlameNone);
        }
        st.receivedContinue[u] = 1;  // sources need no re-entry signal
        engine.broadcast(u, BeaconFrame{}, kContinueBits);
      }
      auto continueStep = [&](Engine::ShardLane& lane, NodeId v, Round r,
                              std::span<const Engine::Delivery>) {
        if (st.receivedContinue[v]) return;
        st.receivedContinue[v] = 1;
        bool relays;
        if (byz.contains(v)) {
          relays = adversary.onContinueRelay(ctxAt(v, r, lane.shard()));
          if (!relays && r < continueWindow) {
            ++advStatsAt(lane.shard()).continuesSuppressed;
            blameAt(lane.shard())
                .add(bzc::obs::BlameKind::ContinueSuppressed, v, bzc::obs::kBlameNone);
          }
        } else {
          relays = st.participating[v] != 0;
        }
        if (relays && r < continueWindow) lane.broadcast(v, BeaconFrame{}, kContinueBits);
      };
      const std::int64_t contT0 = trace != nullptr ? bzc::obs::traceClockNs() : 0;
      const WindowResult continueRun = engine.runWindow(continueWindow, continueStep);
      engine.skipRounds(continueWindow - continueRun.roundsRun);
      if (trace != nullptr) {
        trace->span("beacon.continueWindow", contT0, engine.round());
        // Adversary dispositions as running totals (serial stats + the not-
        // yet-reduced per-shard lanes; sums are shard-order invariant).
        BeaconAdversaryStats adv = out.stats.adversary;
        for (const BeaconAdversaryStats& laneStats : advLane) adv.accumulate(laneStats);
        trace->counter("beacon.adversary.forged", static_cast<double>(adv.beaconsForged),
                       engine.round());
        trace->counter("beacon.adversary.suppressed",
                       static_cast<double>(adv.relaysSuppressed + adv.continuesSuppressed),
                       engine.round());
      }

      // Lines 38-44: exit or (re-)enter for the next iteration.
      bool anyHonestParticipant = false;
      for (NodeId u = 0; u < n; ++u) {
        if (byz.contains(u)) continue;
        st.participating[u] = (!st.decided[u] || st.receivedContinue[u]) ? 1 : 0;
        anyHonestParticipant = anyHonestParticipant || st.participating[u];
      }
      if (!anyHonestParticipant) break;  // phase loop notices quiescence
    }
  }

  out.result.totalRounds =
      static_cast<Round>(std::min<std::uint64_t>(engine.round(), 0xffffffffu));
  out.result.hitRoundCap = capped;
  out.result.meter = engine.releaseMeter();
  for (const BeaconAdversaryStats& laneStats : advLane) out.stats.adversary.accumulate(laneStats);
  for (const bzc::obs::BlameGraph& bl : blameLane) out.blame.merge(bl);
  out.stats.beaconsForged = out.stats.adversary.beaconsForged;
  // Reconciliation denominators (tools/blame_report.py --check): edge sums
  // must meet these exactly — BeaconForged + RelayTampered == beaconsForged,
  // BlacklistedHonestId + BlacklistedFakeId + untainted == blacklistInsertions.
  out.blame.addTotal("beacon.beaconsForged", out.stats.adversary.beaconsForged);
  out.blame.addTotal("beacon.relaysSuppressed", out.stats.adversary.relaysSuppressed);
  out.blame.addTotal("beacon.relaysTampered", out.stats.adversary.relaysTampered);
  out.blame.addTotal("beacon.continuesSuppressed", out.stats.adversary.continuesSuppressed);
  out.blame.addTotal("beacon.continuesSpammed", out.stats.adversary.continuesSpammed);
  out.blame.addTotal("beacon.blacklistInsertions", out.stats.blacklistInsertions);
  out.blame.addTotal("beacon.untaintedInsertions", untaintedInsertions);
  if (!out.stats.quiesced) {
    // The phase loop may have ended by cap/maxPhase; re-check quiescence.
    bool anyParticipant = false;
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u) && st.participating[u]) {
        anyParticipant = true;
        break;
      }
    }
    out.stats.quiesced = !anyParticipant;
  }
  return out;
}

BeaconOutcome runBeaconCounting(const Graph& g, const ByzantineSet& byz,
                                const BeaconAttackProfile& attack, const BeaconParams& params,
                                const BeaconLimits& limits, Rng& rng) {
  const std::unique_ptr<BeaconAdversary> adversary =
      makeBeaconAdversary(attack.toAdversaryProfile(), g, byz);
  return runBeaconCounting(g, byz, *adversary, params, limits, rng);
}

}  // namespace bzc
