// Shared-prefix storage for beacon path fields.
//
// A beacon's path field grows by one ID per hop while the message fans out to
// every node; copying vectors would cost O(i) per delivery. The arena stores
// paths as immutable (id, parent) records — appending is O(1) and all the
// fan-out copies of a beacon share their prefix. Entries live for one
// iteration (paths never outlive the iteration that produced them) and the
// arena is recycled with clear().
#pragma once

#include <cstdint>
#include <vector>

#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

/// Index into BeaconPathArena; kNoBeaconPath denotes the empty path.
using BeaconPathRef = std::int32_t;
inline constexpr BeaconPathRef kNoBeaconPath = -1;

class BeaconPathArena {
 public:
  /// Appends `id` to `parent` (which may be kNoBeaconPath), returning the new path.
  [[nodiscard]] BeaconPathRef append(BeaconPathRef parent, PublicId id) {
    BZC_ASSERT(parent == kNoBeaconPath || static_cast<std::size_t>(parent) < nodes_.size());
    nodes_.push_back({id, parent});
    return static_cast<BeaconPathRef>(nodes_.size() - 1);
  }

  /// Number of IDs on the path.
  [[nodiscard]] std::uint32_t length(BeaconPathRef path) const {
    std::uint32_t len = 0;
    for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodes_[p].parent) ++len;
    return len;
  }

  /// Last ID on the path (the most recently appended hop). Path must be
  /// nonempty.
  [[nodiscard]] PublicId last(BeaconPathRef path) const {
    BZC_REQUIRE(path != kNoBeaconPath, "empty path has no last element");
    return nodes_[path].id;
  }

  /// IDs in path order (origin side first).
  [[nodiscard]] std::vector<PublicId> materialize(BeaconPathRef path) const;

  /// Visits the path *prefix*: every ID except the last `suffixLen` ones,
  /// i.e. the entries Line 20 of the pseudocode calls S. Visitor returns
  /// false to stop early; walkPrefix returns false iff stopped early.
  template <typename Visitor>
  bool walkPrefix(BeaconPathRef path, std::uint32_t suffixLen, Visitor&& visit) const {
    // Entries are reached suffix-first; skip the first `suffixLen` of them.
    std::uint32_t fromEnd = 0;
    for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodes_[p].parent) {
      if (fromEnd >= suffixLen) {
        if (!visit(nodes_[p].id)) return false;
      }
      ++fromEnd;
    }
    return true;
  }

  void clear() noexcept { nodes_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    PublicId id;
    BeaconPathRef parent;
  };
  std::vector<Node> nodes_;
};

}  // namespace bzc
