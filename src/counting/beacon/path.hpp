// Shared-prefix storage for beacon path fields.
//
// A beacon's path field grows by one ID per hop while the message fans out to
// every node; copying vectors would cost O(i) per delivery. The arena stores
// paths as immutable (id, parent) records — appending is O(1) and all the
// fan-out copies of a beacon share their prefix. Entries live for one
// iteration (paths never outlive the iteration that produced them) and the
// arena is recycled with clear().
//
// Sharding (DESIGN.md §10): appends from a shard-parallel recv phase go
// through a Lane into that shard's chunk of fixed-size blocks; a ref encodes
// (shard << 26) | index, always a positive int32 (so kNoBeaconPath = -1 stays
// unambiguous). Shard-0 refs are plain indices — a single-shard arena yields
// the legacy ref values. Blocks never move and the per-shard block tables are
// pre-sized, so a ref published by one shard (ordered by an engine barrier)
// can be walked by any other without synchronization. Ref *values* differ
// across shard counts, but refs are opaque handles — nothing fingerprints
// them — so observable protocol state stays shard-count invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

/// Handle into BeaconPathArena; kNoBeaconPath denotes the empty path.
using BeaconPathRef = std::int32_t;
inline constexpr BeaconPathRef kNoBeaconPath = -1;

class BeaconPathArena {
 public:
  /// shards beyond [1, 16] are clamped (refs carry a 4-bit shard tag).
  explicit BeaconPathArena(unsigned shards = 1) {
    if (shards == 0) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    shards_.resize(shards);
    for (Shard& sh : shards_) sh.blocks.resize(std::size_t{1} << (kIndexBits - kBlockBits));
  }

  [[nodiscard]] unsigned shardCount() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Append handle bound to one shard's lane; what a shard-parallel recv hook
  /// receives (via BeaconContext) instead of the whole arena.
  class Lane {
   public:
    // const: strategies receive the lane through a const BeaconContext&; the
    // mutation happens in the arena the lane points at, not in the handle.
    [[nodiscard]] BeaconPathRef append(BeaconPathRef parent, PublicId id) const {
      return arena_->append(shard_, parent, id);
    }

   private:
    friend class BeaconPathArena;
    Lane(BeaconPathArena* arena, unsigned shard) : arena_(arena), shard_(shard) {}
    BeaconPathArena* arena_;
    unsigned shard_;
  };

  [[nodiscard]] Lane lane(unsigned shard) {
    BZC_ASSERT(shard < shards_.size());
    return Lane(this, shard);
  }

  /// Appends `id` to `parent` (which may be kNoBeaconPath and may live in any
  /// shard) in `shard`'s lane. Only the owning worker (or serial code) may
  /// append to a given shard.
  [[nodiscard]] BeaconPathRef append(unsigned shard, BeaconPathRef parent, PublicId id) {
    BZC_ASSERT(shard < shards_.size());
    Shard& sh = shards_[shard];
    const std::size_t idx = sh.count;
    BZC_ASSERT(idx < (std::size_t{1} << kIndexBits));
    std::unique_ptr<Node[]>& block = sh.blocks[idx >> kBlockBits];
    if (!block) block = std::make_unique<Node[]>(std::size_t{1} << kBlockBits);
    block[idx & ((std::size_t{1} << kBlockBits) - 1)] = {id, parent};
    ++sh.count;
    return static_cast<BeaconPathRef>((static_cast<std::uint32_t>(shard) << kIndexBits) | idx);
  }

  /// Legacy single-shard append (serial call sites, tests, benches).
  [[nodiscard]] BeaconPathRef append(BeaconPathRef parent, PublicId id) {
    return append(0, parent, id);
  }

  /// Number of IDs on the path.
  [[nodiscard]] std::uint32_t length(BeaconPathRef path) const {
    std::uint32_t len = 0;
    for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodeAt(p).parent) ++len;
    return len;
  }

  /// Last ID on the path (the most recently appended hop). Path must be
  /// nonempty.
  [[nodiscard]] PublicId last(BeaconPathRef path) const {
    BZC_REQUIRE(path != kNoBeaconPath, "empty path has no last element");
    return nodeAt(path).id;
  }

  /// IDs in path order (origin side first).
  [[nodiscard]] std::vector<PublicId> materialize(BeaconPathRef path) const;

  /// Visits the path *prefix*: every ID except the last `suffixLen` ones,
  /// i.e. the entries Line 20 of the pseudocode calls S. Visitor returns
  /// false to stop early; walkPrefix returns false iff stopped early.
  template <typename Visitor>
  bool walkPrefix(BeaconPathRef path, std::uint32_t suffixLen, Visitor&& visit) const {
    // Entries are reached suffix-first; skip the first `suffixLen` of them.
    std::uint32_t fromEnd = 0;
    for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodeAt(p).parent) {
      if (fromEnd >= suffixLen) {
        if (!visit(nodeAt(p).id)) return false;
      }
      ++fromEnd;
    }
    return true;
  }

  /// Invalidates every outstanding ref; keeps the allocations.
  void clear() noexcept {
    for (Shard& sh : shards_) sh.count = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const Shard& sh : shards_) total += sh.count;
    return total;
  }

 private:
  static constexpr unsigned kIndexBits = 26;  ///< per-shard capacity 2^26 entries
  static constexpr unsigned kBlockBits = 16;  ///< 65536 entries per block
  static constexpr unsigned kMaxShards = 16;  ///< (15 << 26) | idx stays a positive int32

  struct Node {
    PublicId id;
    BeaconPathRef parent;
  };
  struct Shard {
    std::vector<std::unique_ptr<Node[]>> blocks;  ///< pre-sized table; blocks lazily allocated
    std::size_t count = 0;
  };

  [[nodiscard]] const Node& nodeAt(BeaconPathRef ref) const {
    const auto bits = static_cast<std::uint32_t>(ref);
    const unsigned shard = static_cast<unsigned>(bits >> kIndexBits);
    const std::size_t idx = bits & ((std::uint32_t{1} << kIndexBits) - 1);
    BZC_ASSERT(shard < shards_.size());
    // Never read the owning shard's count here — cross-shard walks during a
    // parallel recv phase would race with the owner's append cursor. A
    // published ref's block pointer is already set (engine barriers order it).
    const auto& block = shards_[shard].blocks[idx >> kBlockBits];
    BZC_ASSERT(block != nullptr);
    return block[idx & ((std::size_t{1} << kBlockBits) - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace bzc
