// Parameters of Algorithm 2 (Byzantine counting with small messages).
//
// Everything a node uses here is *local* knowledge: its own degree and the
// fixed constants gamma, delta, c1 (the paper's pseudocode states nodes know
// nothing global "apart from gamma"). Derived quantities follow the paper:
//
//   eq (2):  gamma >= 1/2 - delta + eta      (Byzantine budget n^(1-gamma))
//   eq (3):  epsilon = 1 - (1-delta)*gamma / ln d
//   Line 1:  phases i = c, c+1, ...          (c a sufficiently large constant)
//   Line 3:  floor(e^((1-gamma)*i)) + 1 iterations per phase
//   Line 5:  activation probability c1*i / d^i
//   Line 20: blacklist everything except the last floor((1-epsilon)*i) path
//            entries
//   text:    each iteration = (i+2) beacon rounds + (i+3) continue rounds
#pragma once

#include <cstdint>

#include "support/types.hpp"

namespace bzc {

/// How a node picks among simultaneously received beacons (Line 14 says
/// "arbitrarily"; we make the choice explicit and test both policies).
enum class BeaconChoicePolicy {
  FirstSeen,         ///< lowest-index sender wins, acceptability ignored
  PreferAcceptable,  ///< prefer a non-blacklisted beacon, then shortest path
};

/// Phase progression. Linear is the paper's Line 1 (i, i+1, i+2, ...).
/// Doubling (i, 2i, 4i, ...) is an *experimental* variant probing the
/// paper's open problem of cheaper small-message counting: it reaches the
/// deciding phase in O(log log n) guesses at the cost of up to 2x extra
/// slack in the estimate and a heavier final phase. T8 measures the trade.
enum class PhaseSchedule {
  Linear,
  Doubling,
};

struct BeaconParams {
  double gamma = 0.55;  ///< Byzantine budget exponent; eq (2) needs > 1/2 - delta
  double delta = 0.1;   ///< slack constant of eq (2)/(3)
  double c1 = 4.0;      ///< activation scale (Line 5)
  std::uint32_t firstPhase = 2;  ///< the constant c of Line 1

  BeaconChoicePolicy choice = BeaconChoicePolicy::PreferAcceptable;
  PhaseSchedule schedule = PhaseSchedule::Linear;

  // Ablation toggles (experiment T8). Production value: both true.
  bool blacklistEnabled = true;
  bool continueEnabled = true;

  /// Successor phase under the configured schedule.
  [[nodiscard]] std::uint32_t nextPhase(std::uint32_t phase) const {
    return schedule == PhaseSchedule::Linear ? phase + 1 : 2 * phase;
  }

  /// eq (3). d is the node's own degree.
  [[nodiscard]] double epsilon(std::uint32_t d) const;

  /// Path suffix length the blacklist spares: floor((1-epsilon)*i).
  [[nodiscard]] std::uint32_t blacklistSuffix(std::uint32_t phase, std::uint32_t d) const;

  /// floor(e^((1-gamma)*i)) + 1 (Line 3).
  [[nodiscard]] std::uint32_t iterationsForPhase(std::uint32_t phase) const;

  /// min(1, c1 * i / d^i) (Line 5).
  [[nodiscard]] double activationProbability(std::uint32_t phase, std::uint32_t degree) const;

  /// Rounds in one iteration of phase i: (i+2) beacon + (i+3) continue.
  [[nodiscard]] static constexpr std::uint32_t roundsPerIteration(std::uint32_t phase) {
    return 2 * phase + 5;
  }

  /// Throws std::invalid_argument when constraints (gamma, delta ranges,
  /// eq (2) feasibility) are violated.
  void validate() const;
};

/// Simulation-only safety limits (the protocol itself never sees n; the
/// harness uses these to bound runs that an attack keeps alive forever).
struct BeaconLimits {
  std::uint32_t maxPhase = 0;        ///< 0: auto = ceil(2.5*ln n) + 6
  std::uint64_t maxTotalRounds = 0;  ///< 0: auto = 50M
  /// Intra-trial engine shards (DESIGN.md §10). 1 = serial. Observables are
  /// shard-count invariant for the whole strategy gallery: recv-hook draws
  /// come from per-receiver streams forked per (node, phase-iteration), so
  /// relay-time fabrication consumes the same stream regardless of which
  /// shard delivers the message (tests/sharding_test.cpp pins this).
  std::uint32_t shards = 1;
};

}  // namespace bzc
