#include "counting/beacon/path.hpp"

#include <algorithm>

namespace bzc {

std::vector<PublicId> PathArena::materialize(PathRef path) const {
  std::vector<PublicId> ids;
  for (PathRef p = path; p != kNoPath; p = nodes_[p].parent) ids.push_back(nodes_[p].id);
  std::reverse(ids.begin(), ids.end());
  return ids;
}

}  // namespace bzc
