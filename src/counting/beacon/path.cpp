#include "counting/beacon/path.hpp"

#include <algorithm>

namespace bzc {

std::vector<PublicId> BeaconPathArena::materialize(BeaconPathRef path) const {
  std::vector<PublicId> ids;
  for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodeAt(p).parent) ids.push_back(nodeAt(p).id);
  std::reverse(ids.begin(), ids.end());
  return ids;
}

}  // namespace bzc
