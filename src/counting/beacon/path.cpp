#include "counting/beacon/path.hpp"

#include <algorithm>

namespace bzc {

std::vector<PublicId> BeaconPathArena::materialize(BeaconPathRef path) const {
  std::vector<PublicId> ids;
  for (BeaconPathRef p = path; p != kNoBeaconPath; p = nodes_[p].parent) ids.push_back(nodes_[p].id);
  std::reverse(ids.begin(), ids.end());
  return ids;
}

}  // namespace bzc
