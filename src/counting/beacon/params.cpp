#include "counting/beacon/params.hpp"

#include <cmath>

#include "support/require.hpp"

namespace bzc {

double BeaconParams::epsilon(std::uint32_t d) const {
  BZC_REQUIRE(d >= 2, "degree too small");
  return 1.0 - (1.0 - delta) * gamma / std::log(static_cast<double>(d));
}

std::uint32_t BeaconParams::blacklistSuffix(std::uint32_t phase, std::uint32_t d) const {
  const double eps = epsilon(d);
  const double suffix = (1.0 - eps) * static_cast<double>(phase);
  return suffix <= 0.0 ? 0 : static_cast<std::uint32_t>(suffix);
}

std::uint32_t BeaconParams::iterationsForPhase(std::uint32_t phase) const {
  const double count = std::exp((1.0 - gamma) * static_cast<double>(phase));
  // Cap defensively; phases are bounded by BeaconLimits long before this.
  const double capped = std::min(count, 1e9);
  return static_cast<std::uint32_t>(capped) + 1;
}

double BeaconParams::activationProbability(std::uint32_t phase, std::uint32_t degree) const {
  BZC_REQUIRE(degree >= 2, "degree too small");
  const double ball = std::pow(static_cast<double>(degree), static_cast<double>(phase));
  const double p = c1 * static_cast<double>(phase) / ball;
  return p >= 1.0 ? 1.0 : p;
}

void BeaconParams::validate() const {
  BZC_REQUIRE(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0,1)");
  BZC_REQUIRE(delta > 0.0 && delta <= 0.5, "delta must lie in (0, 1/2]");
  BZC_REQUIRE(gamma > 0.5 - delta, "eq (2): gamma must exceed 1/2 - delta");
  BZC_REQUIRE(c1 > 0.0, "c1 must be positive");
  BZC_REQUIRE(firstPhase >= 1, "first phase must be >= 1");
}

}  // namespace bzc
