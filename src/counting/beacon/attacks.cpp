#include "counting/beacon/attacks.hpp"

#include "support/require.hpp"

namespace bzc {

BeaconAdversaryProfile BeaconAttackProfile::toAdversaryProfile() const {
  const bool defaultRelays = relayBeacons && relayContinues;
  BeaconAdversaryProfile profile;
  if (forgeBeacons && tamperRelayedPaths && spamContinues && defaultRelays) {
    profile = BeaconAdversaryProfile::full(fakePrefixLength);
  } else if (forgeBeacons && !tamperRelayedPaths && !spamContinues && defaultRelays) {
    profile = forgeRadius > 0
                  ? BeaconAdversaryProfile::targetedFlooder(victim, forgeRadius, fakePrefixLength)
                  : BeaconAdversaryProfile::flooder(fakePrefixLength);
  } else if (!forgeBeacons && tamperRelayedPaths && !spamContinues && defaultRelays) {
    profile = BeaconAdversaryProfile::tamperer(fakePrefixLength);
  } else if (!forgeBeacons && !tamperRelayedPaths && !spamContinues && !relayBeacons &&
             !relayContinues) {
    profile = BeaconAdversaryProfile::suppressor();
  } else if (!forgeBeacons && !tamperRelayedPaths && spamContinues && defaultRelays) {
    profile = BeaconAdversaryProfile::continueSpammer();
  } else if (!forgeBeacons && !tamperRelayedPaths && !spamContinues && defaultRelays) {
    profile = BeaconAdversaryProfile::none();
  } else {
    BZC_REQUIRE(false,
                "BeaconAttackProfile flags match no gallery preset; use a "
                "BeaconAdversaryProfile (src/adversary/beacon/) instead");
  }
  if (!name.empty()) profile.name = name;
  return profile;
}

BeaconAttackProfile BeaconAttackProfile::none() {
  BeaconAttackProfile p;
  p.name = "none";
  return p;
}

BeaconAttackProfile BeaconAttackProfile::flooder() {
  BeaconAttackProfile p;
  p.name = "flooder";
  p.forgeBeacons = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::tamperer() {
  BeaconAttackProfile p;
  p.name = "tamperer";
  p.tamperRelayedPaths = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::suppressor() {
  BeaconAttackProfile p;
  p.name = "suppressor";
  p.relayBeacons = false;
  p.relayContinues = false;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::continueSpammer() {
  BeaconAttackProfile p;
  p.name = "continue-spammer";
  p.spamContinues = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::targetedFlooder(std::uint32_t victim,
                                                         std::uint32_t radius) {
  BeaconAttackProfile p;
  p.name = "targeted-flooder";
  p.forgeBeacons = true;
  p.forgeRadius = radius;
  p.victim = victim;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::full() {
  BeaconAttackProfile p;
  p.name = "full";
  p.forgeBeacons = true;
  p.tamperRelayedPaths = true;
  p.spamContinues = true;
  return p;
}

}  // namespace bzc
