#include "counting/beacon/attacks.hpp"

namespace bzc {

BeaconAttackProfile BeaconAttackProfile::none() {
  BeaconAttackProfile p;
  p.name = "none";
  return p;
}

BeaconAttackProfile BeaconAttackProfile::flooder() {
  BeaconAttackProfile p;
  p.name = "flooder";
  p.forgeBeacons = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::tamperer() {
  BeaconAttackProfile p;
  p.name = "tamperer";
  p.tamperRelayedPaths = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::suppressor() {
  BeaconAttackProfile p;
  p.name = "suppressor";
  p.relayBeacons = false;
  p.relayContinues = false;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::continueSpammer() {
  BeaconAttackProfile p;
  p.name = "continue-spammer";
  p.spamContinues = true;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::targetedFlooder(std::uint32_t victim,
                                                         std::uint32_t radius) {
  BeaconAttackProfile p;
  p.name = "targeted-flooder";
  p.forgeBeacons = true;
  p.forgeRadius = radius;
  p.victim = victim;
  return p;
}

BeaconAttackProfile BeaconAttackProfile::full() {
  BeaconAttackProfile p;
  p.name = "full";
  p.forgeBeacons = true;
  p.tamperRelayedPaths = true;
  p.spamContinues = true;
  return p;
}

}  // namespace bzc
