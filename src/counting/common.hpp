// Shared result/evaluation types for all counting protocols.
//
// Definition 2 (Byzantine counting) asks that every honest node irrevocably
// decides an estimate L_u within T rounds and that a (1-eps)n - B(n) subset
// gets c1*log(n) <= L_u <= c2*log(n) for fixed constants c1, c2. Protocols
// fill a CountingResult; evaluateQuality() scores it against that definition.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/byzantine.hpp"
#include "sim/metrics.hpp"
#include "support/types.hpp"

namespace bzc {

/// Output of one protocol run.
struct CountingResult {
  std::vector<DecisionRecord> decisions;  ///< indexed by NodeId; honest entries meaningful
  Round totalRounds = 0;                  ///< rounds until the run quiesced / was cut off
  MessageMeter meter;                     ///< honest-node traffic accounting
  bool hitRoundCap = false;               ///< run stopped by the safety cap, not quiescence
};

/// Acceptance window for L_u / log(n) (natural log).
struct QualityWindow {
  double lowRatio = 0.0;   ///< c1: minimum accepted L_u / ln n
  double highRatio = 0.0;  ///< c2: maximum accepted L_u / ln n
};

/// Aggregate score of a run against Definition 2.
struct QualitySummary {
  std::size_t honestCount = 0;
  std::size_t decidedCount = 0;       ///< honest nodes that decided
  std::size_t withinWindowCount = 0;  ///< honest nodes inside [c1 ln n, c2 ln n]
  double fracDecided = 0.0;
  double fracWithinWindow = 0.0;  ///< of all honest nodes
  double meanRatio = 0.0;         ///< mean L_u / ln n over decided honest nodes
  double minRatio = 0.0;
  double maxRatio = 0.0;
  Round maxDecisionRound = 0;  ///< latest honest decision round
};

/// Scores `result` for a true network size of n.
[[nodiscard]] QualitySummary evaluateQuality(const CountingResult& result, const ByzantineSet& byz,
                                             NodeId n, const QualityWindow& window);

/// Convenience: ln(n).
[[nodiscard]] double logSize(NodeId n);

}  // namespace bzc
