// Almost-everywhere binary Byzantine agreement via sampling + majority
// (the protocol of [3] sketched in the paper's §1.1).
//
// Each node holds a bit. Per iteration, every honest node samples two nodes
// through random walks of Θ(log n) steps and replaces its bit with the
// majority of {own, sample1, sample2}. O(log n) iterations converge to
// almost-everywhere agreement on a value some good node held, provided
// B = O(√n) and — crucially — nodes know a constant-factor upper bound L on
// log n to size the walks and the iteration count.
//
// The protocol runs as a message-passing workload on the SyncEngine
// (DESIGN.md §6): each sample is a walk token that hops one edge per round,
// records its reverse path in an arena pool, and carries the sampled bit
// back to the origin hop by hop. Byzantine behaviour is pluggable
// (src/adversary/, DESIGN.md §7): the WalkAdversary strategy selected by
// AgreementParams::attack decides what Byzantine nodes do with traversing
// tokens — the default AdaptiveMinority taints every traversing query and
// answers the current honest minority bit, the answer that maximally slows
// convergence. Sample slots whose answer never returns (dropped or misrouted
// by the adversary) fall back to the node's own bit. Rounds are real engine
// rounds and message/bit totals come from the engine's MessageMeter.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/profile.hpp"
#include "adversary/walk_adversary.hpp"
#include "graph/graph.hpp"
#include "obs/provenance.hpp"
#include "sim/byzantine.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace bzc {

struct AgreementParams {
  // L is a ln-scale estimate; the mixing time of a d-regular expander is
  // ~log_d n = L / ln d, so factor 1.0 already walks ~2x the mixing time.
  double walkLengthFactor = 1.0;  ///< walk length = ceil(factor * L_u)
  double iterationFactor = 2.0;   ///< iterations  = ceil(factor * L_u)
  double initialOnesFraction = 0.7;  ///< honest inputs: fraction holding 1
  /// Behaviour of the Byzantine set (src/adversary/). The default reproduces
  /// the classic adaptive minority answerer bit-for-bit.
  AgreementAttackProfile attack = AgreementAttackProfile::adaptiveMinority();
  /// Focus node for victim-centric strategies (the declarative runner maps
  /// ScenarioSpec placement.victim here).
  NodeId victim = 0;
  /// Intra-trial engine shards (DESIGN.md §10). 1 = serial. Observable state
  /// is shard-count invariant for recv-draw-free strategies; strategies that
  /// draw from ctx.rng inside recv hooks are deterministic per shard count
  /// (each shard owns a forked adversary stream).
  std::uint32_t shards = 1;
};

struct AgreementOutcome {
  std::size_t honestCount = 0;
  std::size_t agreeingWithMajority = 0;  ///< honest nodes ending on the initial honest majority
  double fracAgreeing = 0.0;
  int initialMajority = 1;
  Round totalRounds = 0;  ///< real SyncEngine rounds consumed by the run
  std::uint64_t compromisedSamples = 0;  ///< answered samples the adversary controlled
  std::uint64_t answeredSamples = 0;     ///< sample slots whose answer reached the origin
  AdversaryStats adversary;  ///< what the strategy did (extras-only; not fingerprinted)
  obs::BlameGraph blame;  ///< causal damage attribution (DESIGN.md §14): which
                          ///< Byzantine node compromised/dropped/misrouted which
                          ///< origin's samples, and whose forgeries flipped which
                          ///< local decisions. Collected unconditionally from
                          ///< committed state — diagnostics, never fingerprinted
  MessageMeter meter;  ///< honest walk-token / answer traffic, engine-metered
  std::vector<std::uint8_t> finalValues;  ///< per node; Byzantine entries 0

  /// Definition-style success: at least (1-beta) of honest nodes agree.
  [[nodiscard]] bool almostEverywhere(double beta) const {
    return fracAgreeing >= 1.0 - beta;
  }
};

/// Runs the protocol with per-node estimates L_u of log n (nodes with larger
/// estimates keep iterating after the others freeze, as happens when the
/// estimates come from a counting protocol). Byzantine nodes answer sample
/// queries adversarially. By default the strategy is materialised from
/// params.attack and the Coalition blackboard is trial-local; a caller may
/// inject both — the mixed-coalition path passes a per-trial dispatcher
/// strategy, and the pipeline passes the blackboard the counting stage
/// already wrote to, so subsets collude across stages (DESIGN.md §9).
[[nodiscard]] AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                                    const std::vector<double>& estimates,
                                                    const AgreementParams& params, Rng& rng,
                                                    WalkAdversary* adversaryOverride = nullptr,
                                                    Coalition* sharedCoalition = nullptr);

/// Convenience overload: every honest node uses the same estimate L.
[[nodiscard]] AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                                    double uniformEstimate,
                                                    const AgreementParams& params, Rng& rng,
                                                    WalkAdversary* adversaryOverride = nullptr,
                                                    Coalition* sharedCoalition = nullptr);

}  // namespace bzc
