// Random-walk sampling with Byzantine interference.
//
// The agreement protocol of Augustine–Pandurangan–Robinson (the paper's §1.1
// application) samples nodes ~uniformly by running random walks of
// Θ(mixing time) = Θ(log n) steps on the expander. A walk that touches a
// Byzantine node is compromised: the adversary answers the sample query with
// whatever value damages convergence most. Knowing (an upper bound on)
// log n is exactly what makes the walk length safe — which is why Byzantine
// counting is a useful preprocessing step.
//
// The protocol itself (agreement/majority.hpp) runs walks as token messages
// on the SyncEngine, one hop per round; the oracle walk here is the
// *diagnostic* form — it teleports through the whole walk in one call and is
// used for mixing measurements (walkEndpointTvDistance, T7's walk-length
// tuning) and for property tests, never inside a protocol round loop.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"

namespace bzc {

struct WalkSample {
  NodeId endpoint = kNoNode;
  bool compromised = false;  ///< walk visited a Byzantine node
};

/// Walks `length` uniform steps from `start`; flags Byzantine contact. When
/// `trace` is non-null it receives every node the walk occupied, in order,
/// starting with `start` (so the compromise flag can be audited against the
/// actual trajectory).
[[nodiscard]] WalkSample sampleViaWalk(const Graph& g, const ByzantineSet& byz, NodeId start,
                                       std::uint32_t length, Rng& rng,
                                       std::vector<NodeId>* trace = nullptr);

/// Total-variation distance between the empirical distribution of `samples`
/// walk endpoints from `start` and the stationary distribution (degree-
/// proportional). Diagnostic for choosing the walk length (T7 reports it).
[[nodiscard]] double walkEndpointTvDistance(const Graph& g, NodeId start, std::uint32_t length,
                                            std::size_t samples, Rng& rng);

}  // namespace bzc
