#include "agreement/majority.hpp"

#include <algorithm>
#include <cmath>

#include "agreement/random_walk.hpp"
#include "support/require.hpp"

namespace bzc {

AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                      const std::vector<double>& estimates,
                                      const AgreementParams& params, Rng& rng) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(estimates.size() == n, "estimate vector size mismatch");
  BZC_REQUIRE(params.initialOnesFraction >= 0.0 && params.initialOnesFraction <= 1.0,
              "initial fraction out of range");

  AgreementOutcome out;
  std::vector<std::uint8_t> value(n, 0);
  std::vector<std::uint32_t> walkLen(n, 1);
  std::vector<std::uint32_t> iters(n, 0);
  std::uint32_t maxIters = 0;

  std::size_t ones = 0;
  std::size_t honest = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    ++honest;
    value[u] = rng.bernoulli(params.initialOnesFraction) ? 1 : 0;
    ones += value[u];
    const double L = std::max(1.0, estimates[u]);
    walkLen[u] = static_cast<std::uint32_t>(std::ceil(params.walkLengthFactor * L));
    iters[u] = static_cast<std::uint32_t>(std::ceil(params.iterationFactor * L));
    maxIters = std::max(maxIters, iters[u]);
    out.logicalRounds =
        std::max(out.logicalRounds, static_cast<Round>(iters[u] * (2 * walkLen[u] + 1)));
  }
  out.honestCount = honest;
  out.initialMajority = (2 * ones >= honest) ? 1 : 0;

  std::vector<std::uint8_t> next(n, 0);
  for (std::uint32_t it = 0; it < maxIters; ++it) {
    // Adaptive adversary: compromised samples report the current honest
    // minority value, the maximally disruptive answer.
    std::size_t curOnes = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (!byz.contains(u)) curOnes += value[u];
    }
    const std::uint8_t adversarial = (2 * curOnes >= honest) ? 0 : 1;
    next = value;
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || it >= iters[u]) continue;
      int tally = value[u];
      for (int s = 0; s < 2; ++s) {
        const WalkSample sample = sampleViaWalk(g, byz, u, walkLen[u], rng);
        if (sample.compromised || byz.contains(sample.endpoint)) {
          ++out.compromisedSamples;
          tally += adversarial;
        } else {
          tally += value[sample.endpoint];
        }
      }
      next[u] = tally >= 2 ? 1 : 0;
    }
    value.swap(next);
  }

  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    if (value[u] == out.initialMajority) ++out.agreeingWithMajority;
  }
  out.fracAgreeing = honest > 0
                         ? static_cast<double>(out.agreeingWithMajority) / static_cast<double>(honest)
                         : 0.0;
  return out;
}

AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                      double uniformEstimate, const AgreementParams& params,
                                      Rng& rng) {
  return runMajorityAgreement(g, byz, std::vector<double>(g.numNodes(), uniformEstimate), params,
                              rng);
}

}  // namespace bzc
