#include "agreement/majority.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "adversary/strategies.hpp"
#include "runtime/sync_engine.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

// Honest message framing costs (bits). A deployed node routes answers
// statefully (it remembers which neighbour handed it each token), so the
// metered cost is header + origin ID + hop counter for outbound tokens and
// header + origin ID + the sampled bit for answers. The `path`, `stream` and
// `compromised` fields of the simulation payload are bookkeeping the real
// protocol never puts on a wire (DESIGN.md §6).
constexpr std::size_t kWalkTokenBits = 16 + 64 + 8;
constexpr std::size_t kAnswerBits = 16 + 64 + 1;

using Engine = SyncEngine<WalkToken>;

}  // namespace

AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                      const std::vector<double>& estimates,
                                      const AgreementParams& params, Rng& rng,
                                      WalkAdversary* adversaryOverride,
                                      Coalition* sharedCoalition) {
  const NodeId n = g.numNodes();
  BZC_REQUIRE(byz.numNodes() == n, "byzantine set size mismatch");
  BZC_REQUIRE(estimates.size() == n, "estimate vector size mismatch");
  BZC_REQUIRE(params.initialOnesFraction >= 0.0 && params.initialOnesFraction <= 1.0,
              "initial fraction out of range");
  // walkLen = ceil(factor * max(1, L)) must stay >= 1: a token's first hop is
  // taken at launch, so a zero-length walk has no message-passing form.
  BZC_REQUIRE(params.walkLengthFactor > 0.0, "walk length factor must be positive");

  AgreementOutcome out;
  std::vector<std::uint8_t> value(n, 0);
  std::vector<std::uint32_t> walkLen(n, 1);
  std::vector<std::uint32_t> iters(n, 0);
  std::uint32_t maxIters = 0;

  // Inputs and per-node schedules consume the caller's stream in node order
  // (the pre-refactor draw order, so initial splits are bit-compatible).
  std::size_t ones = 0;
  std::size_t honest = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    ++honest;
    value[u] = rng.bernoulli(params.initialOnesFraction) ? 1 : 0;
    ones += value[u];
    const double L = std::max(1.0, estimates[u]);
    walkLen[u] = static_cast<std::uint32_t>(std::ceil(params.walkLengthFactor * L));
    iters[u] = static_cast<std::uint32_t>(std::ceil(params.iterationFactor * L));
    maxIters = std::max(maxIters, iters[u]);
  }
  out.honestCount = honest;
  out.initialMajority = (2 * ones >= honest) ? 1 : 0;

  // Every token forwards from its own forked stream, so walk trajectories are
  // a pure function of (iteration, origin, sample index) — independent of
  // delivery order and therefore reproducible under any scheduling. The
  // adversary draws from its own fork for the same reason (fork() is const:
  // neither stream perturbs the caller's sequence).
  Rng walkBase = rng.fork(0x3a1c);
  Rng advRng = rng.fork(0x5adc);

  Engine engine(g, byz, 0, params.shards);
  const unsigned S = engine.shardCount();
  PathArena arena(S);
  // Trial-local blackboard and profile-selected strategy unless the caller
  // injected them (mixed coalitions, cross-stage collusion — DESIGN.md §9).
  Coalition localCoalition;
  Coalition& coalition = sharedCoalition != nullptr ? *sharedCoalition : localCoalition;
  const std::unique_ptr<WalkAdversary> owned =
      adversaryOverride == nullptr ? makeWalkAdversary(params.attack, g, byz, params.victim)
                                   : nullptr;
  WalkAdversary& strategy = adversaryOverride != nullptr ? *adversaryOverride : *owned;
  std::size_t curOnes = ones;

  std::vector<std::uint32_t> tally(n, 0);
  std::vector<std::uint8_t> answersSeen(n, 0);
  std::vector<std::uint8_t> answersExpected(n, 0);

  // Per-receiver adversary streams: every node refreshes its own fork of
  // advRng at each iteration (tag order: iteration, then node) and strategy
  // hooks at node v draw only from v's stream. Each node's deliveries arrive
  // in canonical inbox order at any shard count (receiver-owned recv, PR 6),
  // so the whole draw sequence is a pure function of (iteration, node,
  // delivery order) — shard-count *invariant*, not merely deterministic per
  // count, which lets sharding_test pin the drawing strategies (tamperer,
  // fractional dropper/flipper) alongside the draw-free class. Honest nodes
  // need streams too: forgeAnswer fires wherever a tainted token ends its
  // walk. Stats stay per-shard and are summed after the run (sums are
  // shard-order invariant).
  std::vector<Rng> recvRng(n);
  std::vector<AdversaryStats> statsLane(S > 1 ? S : 0);
  const auto statsAt = [&](unsigned s) -> AdversaryStats& {
    return S > 1 ? statsLane[s] : out.adversary;
  };
  struct SampleCounters {
    std::uint64_t answered = 0;
    std::uint64_t compromised = 0;
  };
  std::vector<SampleCounters> counterLane(S);

  // Blame-graph lanes (DESIGN.md §14), mirroring statsLane: shard-parallel
  // phases record keyed edges into their own graph, merged at the end (keyed
  // sums are shard-order invariant). Collection is unconditional — no RNG, no
  // control flow change — so goldens are identical attribution on or off.
  std::vector<obs::BlameGraph> blameLane(S > 1 ? S : 0);
  const auto blameAt = [&](unsigned s) -> obs::BlameGraph& {
    return S > 1 ? blameLane[s] : out.blame;
  };
  // Per-origin compromised-sample records for the wrong-decision
  // counterfactual: written only at the origin accept (v is shard-owned, so
  // race-free), read in the serial decision loop. At most 2 samples/node.
  std::vector<std::uint8_t> compCnt(n, 0);
  std::vector<std::uint8_t> compOnes(n, 0);
  std::vector<NodeId> compCause(2 * static_cast<std::size_t>(n), kNoNode);

  // Walk-token lifecycle marks for Chrome flow arrows (satellite of §14):
  // terminal marks happen inside the shard-parallel recv, so they queue in
  // per-shard lanes and flush serially at the iteration boundary in shard
  // order. Gated on the flow knob — O(n) marks per iteration otherwise
  // swamp every nightly trace.
  struct TokenMark {
    std::uint64_t provId;
    std::uint64_t round;
    bool answered;
  };
  std::vector<std::vector<TokenMark>> markLane(S);
  const bool flowMarks = obs::currentTrace() != nullptr && obs::traceFlowMarks();

  const auto recv = [&](Engine::ShardLane& lane, NodeId v, Round w,
                        std::span<const Engine::Delivery> box) {
    const unsigned shard = lane.shard();
    // The strategy sees the live honest split (the adaptive adversary is
    // omniscient about honest state); values only commit at window end, so
    // this is constant within an iteration.
    const auto ctxAt = [&](NodeId at) {
      return WalkContext{at,     w,         g,      arena, curOnes, honest,
                         params.victim, coalition, recvRng[at], statsAt(shard)};
    };
    for (const Engine::Delivery& d : box) {
      WalkToken t = d.payload;  // O(1): the reverse path lives in the arena
      if (t.answering) {
        if (t.path == kNullPath) {
          // End of the recorded route: only the origin accepts the answer
          // (misrouted answers carry a foreign origin ID and are discarded).
          if (t.origin == v) {
            tally[v] += t.answer;
            ++answersSeen[v];
            ++counterLane[shard].answered;
            if (t.compromised) {
              ++counterLane[shard].compromised;
              // Blame the first Byzantine actor that touched this token, and
              // remember the sample for the serial wrong-decision
              // counterfactual (v is shard-owned: no race).
              blameAt(shard).add(obs::BlameKind::CompromisedSample,
                                 t.taintNode == kNoNode ? obs::kBlameNone : t.taintNode, v);
              compCause[2 * static_cast<std::size_t>(v) + compCnt[v]] = t.taintNode;
              compOnes[v] = static_cast<std::uint8_t>(compOnes[v] + t.answer);
              ++compCnt[v];
            }
            if (flowMarks) markLane[shard].push_back({t.provId, w, true});
          } else {
            ++statsAt(shard).strayAnswers;
            blameAt(shard).add(obs::BlameKind::StrayAnswer,
                               t.taintNode == kNoNode ? obs::kBlameNone : t.taintNode,
                               t.origin);
            if (flowMarks) markLane[shard].push_back({t.provId, w, false});
          }
          continue;
        }
        if (byz.contains(v)) {
          const bool wasCompromised = t.compromised;
          const std::uint8_t wasAnswer = t.answer;
          const TokenAction act = strategy.onAnswerRelay(ctxAt(v), t);
          if (!wasCompromised && t.compromised && t.taintNode == kNoNode) t.taintNode = v;
          if (t.answer != wasAnswer)
            blameAt(shard).add(obs::BlameKind::FlippedAnswer, v, t.origin);
          if (act.op == TokenAction::Op::Drop) {
            ++statsAt(shard).droppedAnswers;
            blameAt(shard).add(obs::BlameKind::DroppedAnswer, v, t.origin);
            if (flowMarks) markLane[shard].push_back({t.provId, w, false});
            continue;
          }
          if (act.op == TokenAction::Op::Redirect) {
            // Redirecting abandons the recorded reverse route: the token
            // arrives at the target with no path left and is accepted only
            // if the target happens to be its origin.
            BZC_ASSERT(g.hasEdge(v, act.target));
            blameAt(shard).add(obs::BlameKind::MisroutedAnswer, v, t.origin);
            if (t.taintNode == kNoNode) t.taintNode = v;
            t.path = kNullPath;
            lane.unicast(v, act.target, std::move(t), kAnswerBits);
            continue;
          }
        }
        BZC_ASSERT(arena.node(t.path) == v);
        t.path = arena.prev(t.path);
        const NodeId next = t.path == kNullPath ? t.origin : arena.node(t.path);
        lane.unicast(v, next, std::move(t), kAnswerBits);
        continue;
      }
      if (byz.contains(v)) {
        const bool wasCompromised = t.compromised;
        const TokenAction act = strategy.onQuery(ctxAt(v), t);
        BZC_ASSERT(act.op != TokenAction::Op::Redirect);  // queries follow their walk
        if (!wasCompromised && t.compromised && t.taintNode == kNoNode) t.taintNode = v;
        if (act.op == TokenAction::Op::Drop) {
          ++statsAt(shard).droppedQueries;
          blameAt(shard).add(obs::BlameKind::DroppedQuery, v, t.origin);
          if (flowMarks) markLane[shard].push_back({t.provId, w, false});
          continue;
        }
      }
      if (t.hopsLeft == 0) {
        // v is the walk endpoint: answer and reverse along the recorded path.
        t.answering = true;
        if (t.compromised || byz.contains(v)) {
          // The adversary authors this answer: the token was tainted in
          // transit, or the walk ended on a Byzantine node. Forge before
          // marking — strategies distinguish targeted (tainted) tokens from
          // untargeted ones that merely ended on the adversary.
          if (t.taintNode == kNoNode) t.taintNode = v;  // untainted: the endpoint is byz
          t.answer = strategy.forgeAnswer(ctxAt(v), t);
          t.compromised = true;
          ++statsAt(shard).forgedAnswers;
          blameAt(shard).add(obs::BlameKind::ForgedAnswer, t.taintNode, t.origin);
        } else {
          t.answer = value[v];
        }
        BZC_ASSERT(t.path != kNullPath && arena.node(t.path) == v);
        t.path = arena.prev(t.path);
        const NodeId next = t.path == kNullPath ? t.origin : arena.node(t.path);
        lane.unicast(v, next, std::move(t), kAnswerBits);
      } else {
        const auto nbrs = g.neighbors(v);
        const NodeId next = nbrs[t.stream.uniform(nbrs.size())];
        --t.hopsLeft;
        t.path = arena.push(shard, next, t.path);
        lane.unicast(v, next, std::move(t), kWalkTokenBits);
      }
    }
  };

  // Trace probes (DESIGN.md §12): all emission happens at the serial
  // iteration boundaries below, reading committed state only — traced and
  // untraced runs are bit-identical.
  obs::TrialTrace* const trace = obs::currentTrace();

  for (std::uint32_t it = 0; it < maxIters; ++it) {
    std::uint32_t maxLen = 0;
    bool any = false;
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || it >= iters[u]) continue;
      any = true;
      maxLen = std::max(maxLen, walkLen[u]);
    }
    if (!any) break;
    const std::int64_t iterT0 = trace != nullptr ? obs::traceClockNs() : 0;

    std::fill(tally.begin(), tally.end(), 0);
    std::fill(answersSeen.begin(), answersSeen.end(), 0);
    std::fill(answersExpected.begin(), answersExpected.end(), 0);
    std::fill(compCnt.begin(), compCnt.end(), 0);
    std::fill(compOnes.begin(), compOnes.end(), 0);
    arena.clear();  // no token outlives its iteration window

    // Fresh per-receiver streams for this iteration (see recvRng above).
    const Rng iterAdv = advRng.fork(it);
    for (NodeId u = 0; u < n; ++u) recvRng[u] = iterAdv.fork(u);

    // Launch two sample tokens per active node; the first hop seeds round 1.
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || it >= iters[u]) continue;
      const auto nbrs = g.neighbors(u);
      for (std::uint32_t s = 0; s < 2; ++s) {
        if (nbrs.empty()) continue;  // isolated node: sample falls back to own bit
        WalkToken t;
        t.origin = u;
        t.hopsLeft = walkLen[u];
        // Unique per (iteration, origin, sample slot): the flow-event id that
        // links this launch to the token's terminal mark.
        t.provId = (static_cast<std::uint64_t>(it) * n + u) * 2 + s;
        t.stream =
            walkBase.fork((static_cast<std::uint64_t>(it) << 33) ^ (static_cast<std::uint64_t>(u) << 1) ^ s);
        const NodeId first = nbrs[t.stream.uniform(nbrs.size())];
        --t.hopsLeft;
        t.path = arena.push(first, kNullPath);
        if (flowMarks)
          trace->mark("walk.launch", static_cast<double>(t.provId), engine.round());
        engine.unicast(u, first, std::move(t), kWalkTokenBits);
        ++answersExpected[u];
      }
    }

    // Walk out (maxLen rounds), answers back (maxLen rounds), plus the
    // update round — the window is charged in full even for short walks.
    const WindowResult res = engine.runWindow(2 * maxLen + 1, NoEmit{}, recv, NoEnd{},
                                              IdlePolicy::RunFullWindow);
    BZC_REQUIRE(res.status == WindowStatus::Completed, "agreement window cut short");
    BZC_ASSERT(!engine.hasPending());

    // Majority of {own bit, sample1, sample2}; unanswered slots (isolated
    // nodes, dropped queries, misrouted answers) fall back to the node's own
    // bit — an honest node cannot tell a lost sample from one never sent.
    std::uint64_t launched = 0;
    if (trace != nullptr) {
      for (NodeId u = 0; u < n; ++u) launched += answersExpected[u];
    }

    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || it >= iters[u]) continue;
      BZC_ASSERT(answersSeen[u] <= answersExpected[u]);
      const std::uint32_t total =
          static_cast<std::uint32_t>(value[u]) * (3u - answersSeen[u]) + tally[u];
      const std::uint8_t next = total >= 2 ? 1 : 0;
      // Wrong-decision counterfactual (DESIGN.md §14): replay the majority
      // with the compromised samples removed from both tally and seen-count.
      // A differing verdict means the adversary flipped this node's decision
      // this iteration — blame every recorded tainter of the removed samples.
      if (compCnt[u] > 0) {
        const std::uint8_t cleanSeen =
            static_cast<std::uint8_t>(answersSeen[u] - compCnt[u]);
        const std::uint32_t cleanTotal =
            static_cast<std::uint32_t>(value[u]) * (3u - cleanSeen) + tally[u] - compOnes[u];
        if ((cleanTotal >= 2 ? 1 : 0) != next) {
          for (std::uint8_t k = 0; k < compCnt[u]; ++k) {
            const NodeId cause = compCause[2 * static_cast<std::size_t>(u) + k];
            out.blame.add(obs::BlameKind::WrongDecision,
                          cause == kNoNode ? obs::kBlameNone : cause, u);
          }
        }
      }
      curOnes += next;
      curOnes -= value[u];
      value[u] = next;
    }

    // Flush queued terminal token marks serially, in shard order — buffer
    // order stays a pure function of the trial at any shard count.
    if (flowMarks) {
      for (unsigned s = 0; s < S; ++s) {
        for (const TokenMark& m : markLane[s])
          trace->mark(m.answered ? "walk.answer" : "walk.drop",
                      static_cast<double>(m.provId), m.round);
        markLane[s].clear();
      }
    }

    if (trace != nullptr) {
      trace->span("agreement.iteration", iterT0, engine.round());
      trace->counter("agreement.tokensLaunched", static_cast<double>(launched), engine.round());
      trace->counter("agreement.maxWalkLen", static_cast<double>(maxLen), engine.round());
      trace->counter("agreement.ones", static_cast<double>(curOnes), engine.round());
      // Running totals: the serial slot plus the not-yet-reduced shard lanes
      // (sums are shard-order invariant).
      SampleCounters samples;
      for (const SampleCounters& c : counterLane) {
        samples.answered += c.answered;
        samples.compromised += c.compromised;
      }
      trace->counter("agreement.answered", static_cast<double>(samples.answered),
                     engine.round());
      trace->counter("agreement.compromised", static_cast<double>(samples.compromised),
                     engine.round());
      AdversaryStats adv = out.adversary;
      for (const AdversaryStats& st : statsLane) adv.accumulate(st);
      trace->counter("agreement.adversary.forged", static_cast<double>(adv.forgedAnswers),
                     engine.round());
      trace->counter("agreement.adversary.dropped",
                     static_cast<double>(adv.droppedQueries + adv.droppedAnswers),
                     engine.round());
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    if (byz.contains(u)) continue;
    if (value[u] == out.initialMajority) ++out.agreeingWithMajority;
  }
  out.fracAgreeing = honest > 0
                         ? static_cast<double>(out.agreeingWithMajority) / static_cast<double>(honest)
                         : 0.0;
  for (const SampleCounters& c : counterLane) {
    out.answeredSamples += c.answered;
    out.compromisedSamples += c.compromised;
  }
  for (const AdversaryStats& st : statsLane) out.adversary.accumulate(st);
  for (const obs::BlameGraph& bl : blameLane) out.blame.merge(bl);

  out.totalRounds = static_cast<Round>(engine.round());
  out.adversary.coalitionHits = coalition.hits();
  // Reconciliation denominators: the AdversaryStats mirror the blame edges
  // must sum to exactly (tools/blame_report.py --check, provenance_test).
  out.blame.addTotal("walk.droppedQueries", out.adversary.droppedQueries);
  out.blame.addTotal("walk.droppedAnswers", out.adversary.droppedAnswers);
  out.blame.addTotal("walk.flippedAnswers", out.adversary.flippedAnswers);
  out.blame.addTotal("walk.forgedAnswers", out.adversary.forgedAnswers);
  out.blame.addTotal("walk.misroutedAnswers", out.adversary.misroutedAnswers);
  out.blame.addTotal("walk.strayAnswers", out.adversary.strayAnswers);
  out.blame.addTotal("walk.answeredSamples", out.answeredSamples);
  out.blame.addTotal("walk.compromisedSamples", out.compromisedSamples);
  out.meter = engine.releaseMeter();
  out.finalValues = std::move(value);
  return out;
}

AgreementOutcome runMajorityAgreement(const Graph& g, const ByzantineSet& byz,
                                      double uniformEstimate, const AgreementParams& params,
                                      Rng& rng, WalkAdversary* adversaryOverride,
                                      Coalition* sharedCoalition) {
  return runMajorityAgreement(g, byz, std::vector<double>(g.numNodes(), uniformEstimate), params,
                              rng, adversaryOverride, sharedCoalition);
}

}  // namespace bzc
