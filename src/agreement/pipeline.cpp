#include "agreement/pipeline.hpp"

#include "adversary/beacon/strategies.hpp"
#include "obs/trace.hpp"

namespace bzc {

PipelineOutcome runCountingThenAgreement(const Graph& g, const ByzantineSet& byz,
                                         const PipelineAdversaries& adversaries,
                                         const PipelineParams& params, Rng& rng) {
  PipelineOutcome out;
  // One blackboard for the whole trial: counting-stage hits and the
  // walk-stage bit lock land on the same Coalition (DESIGN.md §9).
  Coalition coalition;
  Rng countRng = rng.fork(0xc0);
  {
    const obs::ScopedTimer stage("pipeline.counting");
    out.counting = runBeaconCounting(g, byz, adversaries.beacon, params.counting,
                                     params.countingLimits, countRng, &coalition);
  }

  std::vector<double> estimates(g.numNodes(), params.fallbackEstimate);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (byz.contains(u)) continue;
    const DecisionRecord& rec = out.counting.result.decisions[u];
    if (rec.decided) estimates[u] = params.estimateSafetyFactor * rec.estimate;
  }

  Rng agreeRng = rng.fork(0xa9);
  {
    const obs::ScopedTimer stage("pipeline.agreement");
    out.agreement = runMajorityAgreement(g, byz, estimates, params.agreement, agreeRng,
                                         adversaries.walk, &coalition);
  }
  out.totalRounds = out.counting.result.totalRounds + out.agreement.totalRounds;
  out.totalMessages =
      out.counting.result.meter.totalMessages() + out.agreement.meter.totalMessages();
  out.totalBits = out.counting.result.meter.totalBits() + out.agreement.meter.totalBits();
  return out;
}

PipelineOutcome runCountingThenAgreement(const Graph& g, const ByzantineSet& byz,
                                         const BeaconAttackProfile& attack,
                                         const PipelineParams& params, Rng& rng) {
  const std::unique_ptr<BeaconAdversary> beacon =
      makeBeaconAdversary(attack.toAdversaryProfile(), g, byz);
  return runCountingThenAgreement(g, byz, PipelineAdversaries{*beacon, nullptr}, params, rng);
}

}  // namespace bzc
