#include "agreement/pipeline.hpp"

namespace bzc {

PipelineOutcome runCountingThenAgreement(const Graph& g, const ByzantineSet& byz,
                                         const BeaconAttackProfile& attack,
                                         const PipelineParams& params, Rng& rng) {
  PipelineOutcome out;
  Rng countRng = rng.fork(0xc0);
  out.counting = runBeaconCounting(g, byz, attack, params.counting, params.countingLimits,
                                   countRng);

  std::vector<double> estimates(g.numNodes(), params.fallbackEstimate);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (byz.contains(u)) continue;
    const DecisionRecord& rec = out.counting.result.decisions[u];
    if (rec.decided) estimates[u] = params.estimateSafetyFactor * rec.estimate;
  }

  Rng agreeRng = rng.fork(0xa9);
  out.agreement = runMajorityAgreement(g, byz, estimates, params.agreement, agreeRng);
  out.totalRounds = out.counting.result.totalRounds + out.agreement.totalRounds;
  out.totalMessages =
      out.counting.result.meter.totalMessages() + out.agreement.meter.totalMessages();
  out.totalBits = out.counting.result.meter.totalBits() + out.agreement.meter.totalBits();
  return out;
}

}  // namespace bzc
