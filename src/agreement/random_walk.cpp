#include "agreement/random_walk.hpp"

#include <cmath>

#include "support/require.hpp"

namespace bzc {

WalkSample sampleViaWalk(const Graph& g, const ByzantineSet& byz, NodeId start,
                         std::uint32_t length, Rng& rng, std::vector<NodeId>* trace) {
  BZC_REQUIRE(start < g.numNodes(), "walk start out of range");
  WalkSample sample;
  NodeId cur = start;
  bool compromised = byz.contains(cur);
  if (trace) {
    trace->clear();
    trace->push_back(cur);
  }
  for (std::uint32_t step = 0; step < length; ++step) {
    const auto nbrs = g.neighbors(cur);
    if (nbrs.empty()) break;
    cur = nbrs[rng.uniform(nbrs.size())];
    compromised = compromised || byz.contains(cur);
    if (trace) trace->push_back(cur);
  }
  sample.endpoint = cur;
  sample.compromised = compromised;
  return sample;
}

double walkEndpointTvDistance(const Graph& g, NodeId start, std::uint32_t length,
                              std::size_t samples, Rng& rng) {
  BZC_REQUIRE(samples > 0, "need at least one sample");
  const NodeId n = g.numNodes();
  std::vector<double> counts(n, 0.0);
  const ByzantineSet none(n, {});
  for (std::size_t s = 0; s < samples; ++s) {
    counts[sampleViaWalk(g, none, start, length, rng).endpoint] += 1.0;
  }
  double totalDegree = 0.0;
  for (NodeId u = 0; u < n; ++u) totalDegree += g.degree(u);
  double tv = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const double empirical = counts[u] / static_cast<double>(samples);
    const double stationary = static_cast<double>(g.degree(u)) / totalDegree;
    tv += std::abs(empirical - stationary);
  }
  return tv / 2.0;
}

}  // namespace bzc
