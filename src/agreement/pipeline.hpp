// Counting -> agreement composition (the paper's §1.1 application).
//
// "Using the Byzantine counting protocol of this paper as a preprocessing
// step, the [knowledge-of-log n] assumption can be removed." The pipeline
// runs Algorithm 2, hands every honest node its *own* decided estimate
// (estimates differ across nodes by a constant factor — exactly the
// situation the paper argues is fine), scales them by a safety factor, and
// runs the sampling+majority agreement on top. Both stages execute on the
// SyncEngine, so the combined round/message/bit totals are real metered
// costs, not analytic formulas.
#pragma once

#include "agreement/majority.hpp"
#include "counting/beacon/protocol.hpp"

namespace bzc {

struct PipelineParams {
  BeaconParams counting;
  BeaconLimits countingLimits;
  AgreementParams agreement;
  double estimateSafetyFactor = 2.0;  ///< L_u := factor * decided phase
  double fallbackEstimate = 4.0;      ///< for nodes that never decided
};

struct PipelineOutcome {
  BeaconOutcome counting;
  AgreementOutcome agreement;
  Round totalRounds = 0;             ///< counting + agreement engine rounds
  std::uint64_t totalMessages = 0;   ///< honest messages across both stages
  std::uint64_t totalBits = 0;       ///< honest bits across both stages
};

/// Per-trial stage adversaries for the strategy-driven entry point. Both
/// stages run against one Coalition blackboard owned by the pipeline, so a
/// counting-stage subset's hits/bit-lock are visible to the walk-stage
/// subset of the same trial (mixed coalitions, DESIGN.md §9).
struct PipelineAdversaries {
  BeaconAdversary& beacon;  ///< counting-stage behaviour
  WalkAdversary* walk = nullptr;  ///< agreement-stage behaviour; nullptr =
                                  ///< materialise from params.agreement.attack
};

[[nodiscard]] PipelineOutcome runCountingThenAgreement(const Graph& g, const ByzantineSet& byz,
                                                       const BeaconAttackProfile& attack,
                                                       const PipelineParams& params, Rng& rng);

/// Strategy-driven form: both stage adversaries are caller-materialised
/// (the mixed-coalition path), sharing one cross-stage Coalition.
[[nodiscard]] PipelineOutcome runCountingThenAgreement(const Graph& g, const ByzantineSet& byz,
                                                       const PipelineAdversaries& adversaries,
                                                       const PipelineParams& params, Rng& rng);

}  // namespace bzc
