// Minimal leveled logger. Simulations are deterministic, so logging exists
// mainly for example binaries and for debugging failing tests; it defaults
// to Warn to keep test output quiet.
//
// The threshold initializes from BZC_LOG=off|error|warn|info|debug|trace on
// first use (setLogLevel still overrides programmatically), and emission
// routes through a single pluggable sink: the default writes to stderr, and
// the observability layer (src/obs/) swaps in a sink that additionally
// mirrors Warn+ lines into the active trial trace, so a warning fired mid-
// run lands on the same timeline as the round records (DESIGN.md §12). The
// BZC_LOG macro evaluates its expression only when the level passes, so a
// discarded Debug line formats nothing.
#pragma once

#include <sstream>
#include <string>

namespace bzc {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Where formatted lines go. Sinks must be callable from any thread.
using LogSinkFn = void (*)(LogLevel, const std::string&);

/// The stock sink: "[LEVEL] message" to stderr.
void defaultLogSink(LogLevel level, const std::string& message);

/// Swaps the process-wide sink (nullptr restores the default).
void setLogSink(LogSinkFn sink) noexcept;

namespace detail {
void logLine(LogLevel level, const std::string& message);
}

}  // namespace bzc

#define BZC_LOG(level, expr)                                     \
  do {                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::bzc::logLevel())) { \
      std::ostringstream bzc_log_os;                             \
      bzc_log_os << expr;                                        \
      ::bzc::detail::logLine(level, bzc_log_os.str());           \
    }                                                            \
  } while (false)

#define BZC_INFO(expr) BZC_LOG(::bzc::LogLevel::Info, expr)
#define BZC_WARN(expr) BZC_LOG(::bzc::LogLevel::Warn, expr)
#define BZC_DEBUG(expr) BZC_LOG(::bzc::LogLevel::Debug, expr)
