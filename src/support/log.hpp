// Minimal leveled logger. Simulations are deterministic, so logging exists
// mainly for example binaries and for debugging failing tests; it defaults
// to Warn to keep test output quiet.
#pragma once

#include <sstream>
#include <string>

namespace bzc {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

namespace detail {
void logLine(LogLevel level, const std::string& message);
}

}  // namespace bzc

#define BZC_LOG(level, expr)                                     \
  do {                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::bzc::logLevel())) { \
      std::ostringstream bzc_log_os;                             \
      bzc_log_os << expr;                                        \
      ::bzc::detail::logLine(level, bzc_log_os.str());           \
    }                                                            \
  } while (false)

#define BZC_INFO(expr) BZC_LOG(::bzc::LogLevel::Info, expr)
#define BZC_WARN(expr) BZC_LOG(::bzc::LogLevel::Warn, expr)
#define BZC_DEBUG(expr) BZC_LOG(::bzc::LogLevel::Debug, expr)
