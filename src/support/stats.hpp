// Summary statistics, histograms and least-squares fits used by the
// experiment harnesses to report and verify scaling claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bzc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// q in [0, 1]; the input vector is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Result of an ordinary least squares fit y ≈ slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Fits y against x; requires |x| == |y| and at least two points.
[[nodiscard]] LinearFit fitLinear(const std::vector<double>& x, const std::vector<double>& y);

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Multi-line ASCII rendering, useful in example binaries.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bzc
