// Core scalar types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace bzc {

/// Internal (dense) node index in [0, n). Topology, adjacency and simulator
/// bookkeeping use NodeId. Protocol *messages* use PublicId (see sim/ids.hpp)
/// so that, per the paper's model (§2), identifiers leak nothing about n.
using NodeId = std::uint32_t;

/// Opaque identifier carried in protocol messages; drawn uniformly from a
/// 64-bit space that is independent of the network size.
using PublicId = std::uint64_t;

/// Synchronous round counter (1-based within a run).
using Round = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr PublicId kNoPublicId = std::numeric_limits<PublicId>::max();

}  // namespace bzc
