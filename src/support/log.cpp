#include "support/log.hpp"

#include <atomic>
#include <iostream>

namespace bzc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel logLevel() noexcept { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void logLine(LogLevel level, const std::string& message) {
  std::clog << '[' << levelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace bzc
