#include "support/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace bzc {

namespace {

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// BZC_LOG env knob; unset or unrecognized keeps the quiet default.
int initialLevel() {
  const char* env = std::getenv("BZC_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::Warn);
  const auto is = [&](const char* name) { return std::strcmp(env, name) == 0; };
  if (is("off")) return static_cast<int>(LogLevel::Off);
  if (is("error")) return static_cast<int>(LogLevel::Error);
  if (is("warn")) return static_cast<int>(LogLevel::Warn);
  if (is("info")) return static_cast<int>(LogLevel::Info);
  if (is("debug")) return static_cast<int>(LogLevel::Debug);
  if (is("trace")) return static_cast<int>(LogLevel::Trace);
  return static_cast<int>(LogLevel::Warn);
}

std::atomic<int>& levelRef() {
  static std::atomic<int> level{initialLevel()};
  return level;
}

std::atomic<LogSinkFn> g_sink{&defaultLogSink};

}  // namespace

void setLogLevel(LogLevel level) noexcept { levelRef().store(static_cast<int>(level)); }

LogLevel logLevel() noexcept { return static_cast<LogLevel>(levelRef().load()); }

void defaultLogSink(LogLevel level, const std::string& message) {
  std::clog << '[' << levelName(level) << "] " << message << '\n';
}

void setLogSink(LogSinkFn sink) noexcept {
  g_sink.store(sink != nullptr ? sink : &defaultLogSink);
}

namespace detail {
void logLine(LogLevel level, const std::string& message) {
  g_sink.load()(level, message);
}
}  // namespace detail

}  // namespace bzc
