// Deterministic, portable pseudo-random number generation.
//
// We deliberately avoid <random>'s distributions: their output is not
// specified bit-for-bit across standard library implementations, which would
// make runs non-reproducible. All draws here are pure functions of the seed.
//
// The generator is xoshiro256++ (Blackman & Vigna, public domain reference
// implementation re-derived here), seeded via SplitMix64. `Rng::fork` derives
// statistically independent child streams, which the simulator uses to give
// every node / subsystem its own stream so that adding a draw in one place
// does not perturb the sequence seen elsewhere.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/require.hpp"

namespace bzc {

/// SplitMix64 step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience draw methods.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xb5ad4eceda1ce2a9ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream. Mixing the tag through SplitMix64
  /// ensures forks with nearby tags are decorrelated.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    std::uint64_t sm = state_[0] ^ rotl(state_[2], 29) ^ (tag * 0x9e3779b97f4a7c15ULL);
    Rng child(splitmix64(sm));
    return child;
  }

  /// Uniform integer in [0, bound). Uses Lemire-style rejection to avoid
  /// modulo bias. bound must be positive.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    BZC_ASSERT(bound > 0);
    // 128-bit multiply-shift with rejection on the low word.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniformIn(std::int64_t lo, std::int64_t hi) noexcept {
    BZC_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniformDouble() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniformDouble() < p;
  }

  /// Geometric draw: number of fair-coin flips up to and including the first
  /// head, as in the paper's §1.2 estimator (support {1, 2, 3, ...}).
  [[nodiscard]] std::uint32_t geometricFlips() noexcept {
    std::uint32_t flips = 1;
    // Consume 64-bit words of random bits; count leading tails.
    for (;;) {
      std::uint64_t word = next();
      if (word == 0) {
        flips += 64;
        continue;
      }
      // Position of the first set bit = number of tails before the head.
      const int tails = __builtin_ctzll(word);
      return flips + static_cast<std::uint32_t>(tails);
    }
  }

  /// Exponential(1) draw via inversion (used by support estimation).
  [[nodiscard]] double exponential() noexcept {
    // 1 - uniformDouble() is in (0, 1], keeping log() finite.
    return -std::log1p(-uniformDouble());
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

  /// Samples k distinct values from [0, n) (k <= n), in selection order.
  [[nodiscard]] std::vector<std::uint32_t> sampleWithoutReplacement(std::uint32_t n,
                                                                    std::uint32_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline std::vector<std::uint32_t> Rng::sampleWithoutReplacement(std::uint32_t n,
                                                                std::uint32_t k) {
  BZC_REQUIRE(k <= n, "sample size exceeds population");
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch for small k.
  std::vector<std::uint32_t> chosen;
  chosen.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform(j + 1));
    bool seen = false;
    for (std::uint32_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace bzc
