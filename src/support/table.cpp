#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/require.hpp"

namespace bzc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BZC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  BZC_REQUIRE(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ") << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-") << std::string(width[c], '-') << "-|";
  }
  os << '\n';
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void printBanner(std::ostream& os, const std::string& title, const std::string& body) {
  os << "\n=== " << title << " ===\n";
  if (!body.empty()) os << body << '\n';
  os << '\n';
}

}  // namespace bzc
