#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/require.hpp"

namespace bzc {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nTotal = na + nb;
  mean_ += delta * nb / nTotal;
  m2_ += other.m2_ + delta * delta * na * nb / nTotal;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  BZC_REQUIRE(!sample.empty(), "quantile of empty sample");
  BZC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

LinearFit fitLinear(const std::vector<double>& x, const std::vector<double>& y) {
  BZC_REQUIRE(x.size() == y.size(), "mismatched fit inputs");
  BZC_REQUIRE(x.size() >= 2, "fit needs at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ssTot = syy - sy * sy / n;
  double ssRes = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    ssRes += r * r;
  }
  fit.r2 = ssTot > 1e-12 ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  BZC_REQUIRE(hi > lo, "histogram range empty");
  BZC_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + step * static_cast<double>(i);
    os.setf(std::ios::fixed);
    os.precision(2);
    os << '[' << left << ", " << left + step << ") ";
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace bzc
