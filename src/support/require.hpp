// Lightweight precondition / invariant checking.
//
// BZC_REQUIRE   - precondition on public API arguments; throws std::invalid_argument.
// BZC_CHECK     - runtime invariant that must hold in all builds; throws std::logic_error.
// BZC_ASSERT    - debug-only internal invariant (compiled out in NDEBUG).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bzc::detail {

[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace bzc::detail

#define BZC_REQUIRE(expr, msg)                                                   \
  do {                                                                           \
    if (!(expr)) ::bzc::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define BZC_CHECK(expr, msg)                                                     \
  do {                                                                           \
    if (!(expr)) ::bzc::detail::throw_logic_error(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define BZC_ASSERT(expr) ((void)0)
#else
#define BZC_ASSERT(expr) BZC_CHECK(expr, "debug assertion")
#endif
