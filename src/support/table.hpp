// Console table printer used by every bench binary so that experiment output
// reads like the tables a paper would report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bzc {

/// Column-aligned text table. Cells are strings; helpers format numerics.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must match the header arity.
  void addRow(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Renders with a rule under the header, columns padded to content width.
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

  // Cell formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string integer(long long v);
  [[nodiscard]] static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "=== title ===" banner followed by descriptive text; benches use
/// it to state the paper claim being reproduced next to the measured table.
void printBanner(std::ostream& os, const std::string& title, const std::string& body);

}  // namespace bzc
