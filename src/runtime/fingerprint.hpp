// Order-sensitive fingerprint of a protocol run's observable outcome.
//
// Used by the migration regression tests: the SyncEngine port of each
// protocol must reproduce the pre-refactor decisions, round counts and
// message accounting bit-for-bit on fixed seeds, and a single 64-bit hash of
// all of it is the cheapest thing to compare (and to hard-code as a golden).
#pragma once

#include <cstdint>

#include "agreement/majority.hpp"
#include "counting/common.hpp"

namespace bzc {

/// FNV-1a over raw bytes.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Hash of every per-node decision (decided, round, estimate bits), the run
/// totals, and the per-node MessageMeter accounting for nodes [0, n).
[[nodiscard]] std::uint64_t fingerprint(const CountingResult& result, NodeId n);

/// Hash of an agreement run's observable outcome: every final bit, the
/// convergence tallies, real engine rounds and the per-node meter state.
[[nodiscard]] std::uint64_t fingerprint(const AgreementOutcome& outcome, NodeId n);

}  // namespace bzc
