#include "runtime/fingerprint.hpp"

#include <cstring>

namespace bzc {

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t word) noexcept {
  return fnv1a64(&word, sizeof word, h);
}

}  // namespace

std::uint64_t fingerprint(const CountingResult& result, NodeId n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId u = 0; u < n; ++u) {
    const DecisionRecord& d = result.decisions[u];
    h = mix(h, d.decided ? 1 : 0);
    h = mix(h, d.round);
    std::uint64_t estimateBits = 0;
    static_assert(sizeof estimateBits == sizeof d.estimate);
    std::memcpy(&estimateBits, &d.estimate, sizeof estimateBits);
    h = mix(h, estimateBits);
    h = mix(h, result.meter.maxMessageBits(u));
    h = mix(h, result.meter.bitsSent(u));
    h = mix(h, result.meter.messagesSent(u));
  }
  h = mix(h, result.totalRounds);
  h = mix(h, result.hitRoundCap ? 1 : 0);
  h = mix(h, result.meter.totalMessages());
  h = mix(h, result.meter.totalBits());
  return h;
}

std::uint64_t fingerprint(const AgreementOutcome& outcome, NodeId n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId u = 0; u < n; ++u) {
    h = mix(h, u < outcome.finalValues.size() ? outcome.finalValues[u] : 0);
    h = mix(h, outcome.meter.maxMessageBits(u));
    h = mix(h, outcome.meter.bitsSent(u));
    h = mix(h, outcome.meter.messagesSent(u));
  }
  h = mix(h, outcome.honestCount);
  h = mix(h, outcome.agreeingWithMajority);
  h = mix(h, static_cast<std::uint64_t>(outcome.initialMajority));
  h = mix(h, outcome.totalRounds);
  h = mix(h, outcome.compromisedSamples);
  h = mix(h, outcome.meter.totalMessages());
  h = mix(h, outcome.meter.totalBits());
  return h;
}

}  // namespace bzc
