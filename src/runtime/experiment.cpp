#include "runtime/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "adversary/coalition.hpp"
#include "churn/epoch_runner.hpp"
#include "counting/beacon/protocol.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/thread_pool.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace bzc {

const char* agreementExtraSlotName(std::size_t slot) {
  switch (slot) {
    case kAgreementFracAgreeing: return "fracAgreeing";
    case kAgreementCompromised: return "compromised";
    case kAgreementRounds: return "agreementRounds";
    case kAgreementMeanEstimate: return "meanEstimate";
    case kAgreementAnswered: return "answered";
    case kAgreementDropped: return "dropped";
    case kAgreementFlipped: return "flipped";
    case kAgreementMisrouted: return "misrouted";
    case kAgreementForged: return "forged";
    case kAgreementCoalitionHits: return "coalitionHits";
    case kAgreementBeaconForged: return "beaconForged";
    case kAgreementCoalitionSubsets: return "coalitionSubsets";
    case kAgreementCombinedScore: return "combinedScore";
    case kAgreementWrongDecisions: return "wrongDecisions";
    case kAgreementBlameTotal: return "blameTotal";
    case kAgreementBlameConcentration: return "blameConcentration";
    case kAgreementBlameTopShare: return "blameTopShare";
    case kAgreementBlameSubset0: return "blameSubset0";
    case kAgreementBlameSubset1: return "blameSubset1";
    case kAgreementBlameSubset2: return "blameSubset2";
    case kAgreementBlameSubset3: return "blameSubset3";
  }
  return "?";
}

Graph buildGraph(const GraphSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case GraphKind::Hnd: return hnd(spec.n, spec.degree, rng);
    case GraphKind::ConfigurationModel: return configurationModel(spec.n, spec.degree, rng);
    case GraphKind::WattsStrogatz:
      return wattsStrogatz(spec.n, spec.degree, spec.rewireProbability, rng);
    case GraphKind::Ring: return ring(spec.n);
    case GraphKind::BinaryTree: return binaryTree(spec.n);
    case GraphKind::Complete: return complete(spec.n);
  }
  BZC_REQUIRE(false, "unknown graph kind");
  return {};
}

namespace {

// Stream tags for the per-trial forks; arbitrary but fixed forever (changing
// them silently invalidates every pinned expectation downstream).
constexpr std::uint64_t kGraphStream = 0x6a4f;
constexpr std::uint64_t kPlacementStream = 0xb52d;
constexpr std::uint64_t kProtocolStream = 0x52aa;

}  // namespace

MaterializedTrial materializeTrial(const ScenarioSpec& spec, std::uint32_t index) {
  const Rng master(spec.masterSeed);
  const Rng trialRng = master.fork(index);

  Rng graphRng = trialRng.fork(kGraphStream);
  Graph graph = buildGraph(spec.graph, graphRng);

  PlacementSpec placement = spec.placement;
  if (spec.byzGamma > 0.0) placement.count = byzantineBudget(spec.graph.n, spec.byzGamma);
  Rng placeRng = trialRng.fork(kPlacementStream);
  ByzantineSet byz = placeByzantine(graph, placement, placeRng);

  return {std::move(graph), std::move(byz), trialRng.fork(kProtocolStream)};
}

namespace {

/// Shared summary shape for the two agreement-bearing protocol kinds: the
/// agreement stage's fingerprint and extra metrics are appended onto
/// whatever the caller already accumulated (cost totals stay the caller's
/// responsibility — the pipeline defines its own in PipelineOutcome).
void foldAgreementStage(TrialOutcome& outcome, const AgreementOutcome& agreement, NodeId n,
                        double meanEstimate) {
  const std::uint64_t stageFp = fingerprint(agreement, n);
  outcome.resultFingerprint = fnv1a64(&stageFp, sizeof stageFp, outcome.resultFingerprint);
  outcome.extra.assign(kAgreementExtraSlots, 0.0);
  outcome.extra[kAgreementFracAgreeing] = agreement.fracAgreeing;
  outcome.extra[kAgreementCompromised] = static_cast<double>(agreement.compromisedSamples);
  outcome.extra[kAgreementRounds] = static_cast<double>(agreement.totalRounds);
  outcome.extra[kAgreementMeanEstimate] = meanEstimate;
  const AdversaryStats& adv = agreement.adversary;
  outcome.extra[kAgreementAnswered] = static_cast<double>(agreement.answeredSamples);
  outcome.extra[kAgreementDropped] =
      static_cast<double>(adv.droppedQueries + adv.droppedAnswers);
  outcome.extra[kAgreementFlipped] = static_cast<double>(adv.flippedAnswers);
  outcome.extra[kAgreementMisrouted] = static_cast<double>(adv.misroutedAnswers);
  outcome.extra[kAgreementForged] = static_cast<double>(adv.forgedAnswers);
  outcome.extra[kAgreementCoalitionHits] = static_cast<double>(adv.coalitionHits);
}

/// Scalar projections of the assembled blame graph into the extras (slots
/// 13..20). Call after outcome.blame is final — subsetOf annotation included,
/// since blameBySubset reads it.
void foldBlameExtras(TrialOutcome& outcome) {
  const obs::BlameGraph& g = outcome.blame;
  outcome.extra[kAgreementWrongDecisions] =
      static_cast<double>(g.kindCount(obs::BlameKind::WrongDecision));
  outcome.extra[kAgreementBlameTotal] = static_cast<double>(blameTotal(g));
  outcome.extra[kAgreementBlameConcentration] = blameConcentration(g);
  outcome.extra[kAgreementBlameTopShare] = blameTopShare(g);
  const std::vector<std::uint64_t> bySubset = blameBySubset(g);
  for (std::size_t s = 0; s < obs::kBlameMaxSubsets; ++s) {
    outcome.extra[kAgreementBlameSubset0 + s] = static_cast<double>(bySubset[s]);
  }
}

/// BFS hop distance from the placement victim (0xffff = unreachable), used
/// by the blame-concentration-vs-distance curves in tools/blame_report.py.
/// Computed only for sampled (traced) trials — it is O(n + m) per trial.
std::vector<std::uint16_t> victimDistances(const Graph& g, NodeId victim) {
  std::vector<std::uint16_t> dist(g.numNodes(), 0xffff);
  if (victim >= g.numNodes()) return dist;
  std::vector<NodeId> queue{victim};
  dist[victim] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] != 0xffff) continue;
      dist[v] = static_cast<std::uint16_t>(dist[u] + 1);
      queue.push_back(v);
    }
  }
  return dist;
}

}  // namespace

TrialOutcome ExperimentRunner::runTrial(const ScenarioSpec& spec, std::uint32_t index) {
  if (spec.churn.enabled()) return runChurnTrial(spec, index);
  MaterializedTrial trial = materializeTrial(spec, index);
  return runProtocolTrial(spec, trial.graph, trial.byz, std::move(trial.runRng));
}

TrialOutcome runProtocolTrial(const ScenarioSpec& spec, const Graph& graph,
                              const ByzantineSet& byz, Rng runRng) {
  // Reference view shaped like MaterializedTrial so the protocol dispatch
  // below reads identically to the pre-split runTrial (no graph copies).
  struct {
    const Graph& graph;
    const ByzantineSet& byz;
    Rng& runRng;
  } trial{graph, byz, runRng};
  const NodeId n = trial.graph.numNodes();

  // Mixed-coalition and gallery-native beacon adversaries are materialised
  // per trial here, so both axes stay selectable purely from the spec.
  const bool adversarial = spec.protocol == ProtocolKind::Beacon ||
                           spec.protocol == ProtocolKind::Agreement ||
                           spec.protocol == ProtocolKind::Pipeline;
  const bool hasPlan = adversarial && spec.coalitionPlan.enabled();
  const NodeId victim = spec.placement.victim;
  CoalitionAssignment assignment;
  if (hasPlan) assignment = partitionBudget(spec.coalitionPlan, trial.byz);
  const auto makeSpecBeaconAdversary = [&]() -> std::unique_ptr<BeaconAdversary> {
    if (hasPlan) {
      return makeCoalitionBeaconAdversary(spec.coalitionPlan, assignment, trial.graph, trial.byz,
                                          victim);
    }
    const BeaconAdversaryProfile profile = spec.beaconAdversary.kind != BeaconAttackKind::None
                                               ? spec.beaconAdversary
                                               : spec.beaconAttack.toAdversaryProfile();
    return makeBeaconAdversary(anchorBeaconProfile(profile, victim), trial.graph, trial.byz);
  };
  const auto planExtras = [&](TrialOutcome& outcome, const PipelineOutcome* pipeline,
                              const AgreementOutcome& agreement) {
    outcome.extra[kAgreementBeaconForged] =
        pipeline != nullptr
            ? static_cast<double>(pipeline->counting.stats.adversary.beaconsForged)
            : 0.0;
    if (!hasPlan) return;
    outcome.extra[kAgreementCoalitionSubsets] =
        static_cast<double>(spec.coalitionPlan.subsets.size());
    const std::uint32_t radius = spec.coalitionPlan.scoreRadius;
    outcome.extra[kAgreementCombinedScore] =
        pipeline != nullptr
            ? combinedCoalitionScore(trial.graph, trial.byz, victim, radius,
                                     pipeline->counting.result, spec.window,
                                     agreement.finalValues, agreement.initialMajority)
            : coalitionScore(trial.graph, trial.byz, victim, radius, agreement.finalValues,
                             agreement.initialMajority);
  };
  // Export-side blame annotations (DESIGN.md §14): subset labels when a
  // coalition plan partitioned the budget, victim BFS distances for sampled
  // (traced) trials only. Neither feeds back into protocol state.
  const auto annotateBlame = [&](TrialOutcome& outcome) {
    if (hasPlan) outcome.blame.subsetOf = assignment.subsetOf;
    if (obs::currentTrace() != nullptr) {
      outcome.blame.victimDistance = victimDistances(trial.graph, victim);
    }
  };

  if (spec.protocol == ProtocolKind::Agreement) {
    const double L =
        spec.agreementEstimate > 0.0 ? spec.agreementEstimate : std::log(static_cast<double>(n));
    // Victim-centric strategies target the placement's victim — the attack is
    // selectable purely from the ScenarioSpec.
    AgreementParams aParams = spec.agreementParams;
    aParams.victim = victim;
    if (spec.shards > 0) aParams.shards = spec.shards;
    std::unique_ptr<WalkAdversary> planWalk;
    if (hasPlan) {
      planWalk = makeCoalitionWalkAdversary(spec.coalitionPlan, assignment, trial.graph,
                                            trial.byz, victim);
    }
    AgreementOutcome out =
        runMajorityAgreement(trial.graph, trial.byz, L, aParams, trial.runRng, planWalk.get());
    TrialOutcome outcome;
    outcome.blame = std::move(out.blame);
    outcome.quality.honestCount = out.honestCount;
    outcome.quality.decidedCount = out.honestCount;  // every honest node ends with a bit
    outcome.quality.fracDecided = out.honestCount > 0 ? 1.0 : 0.0;
    outcome.totalRounds = out.totalRounds;
    outcome.totalMessages = out.meter.totalMessages();
    outcome.totalBits = out.meter.totalBits();
    foldAgreementStage(outcome, out, n, L);
    planExtras(outcome, nullptr, out);
    annotateBlame(outcome);
    foldBlameExtras(outcome);
    return outcome;
  }
  if (spec.protocol == ProtocolKind::Pipeline) {
    PipelineParams pParams = spec.pipelineParams;
    pParams.agreement.victim = victim;
    if (spec.shards > 0) {
      pParams.countingLimits.shards = spec.shards;
      pParams.agreement.shards = spec.shards;
    }
    const std::unique_ptr<BeaconAdversary> beaconAdv = makeSpecBeaconAdversary();
    std::unique_ptr<WalkAdversary> planWalk;
    if (hasPlan) {
      planWalk = makeCoalitionWalkAdversary(spec.coalitionPlan, assignment, trial.graph,
                                            trial.byz, victim);
    }
    const PipelineOutcome out = runCountingThenAgreement(
        trial.graph, trial.byz, PipelineAdversaries{*beaconAdv, planWalk.get()}, pParams,
        trial.runRng);
    TrialOutcome outcome;
    outcome.quality = evaluateQuality(out.counting.result, trial.byz, n, spec.window);
    outcome.totalRounds = out.totalRounds;
    outcome.hitRoundCap = out.counting.result.hitRoundCap;
    outcome.totalMessages = out.totalMessages;
    outcome.totalBits = out.totalBits;
    outcome.resultFingerprint = fingerprint(out.counting.result, n);
    double meanL = 0.0;
    std::size_t decided = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (trial.byz.contains(u) || !out.counting.result.decisions[u].decided) continue;
      meanL += spec.pipelineParams.estimateSafetyFactor * out.counting.result.decisions[u].estimate;
      ++decided;
    }
    foldAgreementStage(outcome, out.agreement, n,
                       decided > 0 ? meanL / static_cast<double>(decided) : 0.0);
    planExtras(outcome, &out, out.agreement);
    // Both stages' blame graphs fold into one trial graph — keyed sums, so
    // the merge order is immaterial.
    outcome.blame.merge(out.counting.blame);
    outcome.blame.merge(out.agreement.blame);
    annotateBlame(outcome);
    foldBlameExtras(outcome);
    return outcome;
  }

  CountingResult result;
  obs::BlameGraph blame;
  switch (spec.protocol) {
    case ProtocolKind::Beacon: {
      const std::unique_ptr<BeaconAdversary> beaconAdv = makeSpecBeaconAdversary();
      BeaconLimits limits = spec.beaconLimits;
      if (spec.shards > 0) limits.shards = spec.shards;
      BeaconOutcome bo = runBeaconCounting(trial.graph, trial.byz, *beaconAdv, spec.beaconParams,
                                           limits, trial.runRng);
      blame = std::move(bo.blame);
      result = std::move(bo.result);
      break;
    }
    case ProtocolKind::Local: {
      std::unique_ptr<LocalAdversary> adversary =
          spec.localAdversary ? spec.localAdversary() : makeHonestLocalAdversary();
      result = runLocalCounting(trial.graph, trial.byz, *adversary, spec.localParams,
                                trial.runRng, spec.placement.victim)
                   .result;
      break;
    }
    case ProtocolKind::GeometricMax:
      result = runGeometricMax(trial.graph, trial.byz, spec.geometricAttack, spec.geometricParams,
                               trial.runRng);
      break;
    case ProtocolKind::SupportEstimation:
      result = runSupportEstimation(trial.graph, trial.byz, spec.supportAttack, spec.supportParams,
                                    trial.runRng);
      break;
    case ProtocolKind::SpanningTree: {
      TreeParams params = spec.treeParams;
      // The protocol requires an honest root; random placement may have taken
      // the configured one, so fall back to the smallest honest node.
      if (trial.byz.contains(params.root)) {
        for (NodeId u = 0; u < n; ++u) {
          if (!trial.byz.contains(u)) {
            params.root = u;
            break;
          }
        }
      }
      result = runSpanningTreeCount(trial.graph, trial.byz, spec.treeAttack, params);
      break;
    }
    case ProtocolKind::Agreement:
    case ProtocolKind::Pipeline:
      BZC_REQUIRE(false, "agreement protocols are handled before the counting switch");
      break;
  }

  TrialOutcome outcome;
  outcome.quality = evaluateQuality(result, trial.byz, n, spec.window);
  outcome.totalRounds = result.totalRounds;
  outcome.hitRoundCap = result.hitRoundCap;
  outcome.totalMessages = result.meter.totalMessages();
  outcome.totalBits = result.meter.totalBits();
  outcome.resultFingerprint = fingerprint(result, n);
  outcome.blame = std::move(blame);
  if (!outcome.blame.empty()) annotateBlame(outcome);
  return outcome;
}

Distribution Distribution::of(std::vector<double> sample) {
  Distribution d;
  if (sample.empty()) return d;
  RunningStat stat;
  for (double x : sample) stat.add(x);
  d.mean = stat.mean();
  d.min = stat.min();
  d.max = stat.max();
  d.stddev = stat.stddev();
  // No bootstrap stream: the CI degenerates to the point estimate.
  d.ci95lo = d.mean;
  d.ci95hi = d.mean;
  // Sort once; quantile() would otherwise copy and re-sort per call.
  std::sort(sample.begin(), sample.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < sample.size() ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] + (sample[hi] - sample[lo]) * frac;
  };
  d.p10 = at(0.10);
  d.p50 = at(0.50);
  d.p90 = at(0.90);
  return d;
}

Distribution Distribution::of(std::vector<double> sample, Rng boot) {
  Distribution d = of(sample);
  const std::size_t n = sample.size();
  if (n < 2) return d;  // CI stays the point estimate
  // Percentile bootstrap of the mean: B resample means, 2.5%/97.5% order
  // statistics. The stream is a fork of a fixed seed taken in the serial
  // aggregation pass, so the CI is bit-identical at any thread count.
  constexpr std::size_t kResamples = 200;
  std::vector<double> means(kResamples);
  for (std::size_t b = 0; b < kResamples; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += sample[boot.uniform(n)];
    means[b] = sum / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < means.size() ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    return means[lo] + (means[hi] - means[lo]) * frac;
  };
  d.ci95lo = at(0.025);
  d.ci95hi = at(0.975);
  return d;
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : pool_(std::make_unique<ThreadPool>(threads)) {}

ExperimentRunner::~ExperimentRunner() = default;

unsigned ExperimentRunner::threadCount() const noexcept { return pool_->threadCount(); }

ExperimentSummary ExperimentRunner::run(const ScenarioSpec& spec) {
  const TrialFn fn = [&spec](std::uint32_t index) { return runTrial(spec, index); };
  // trials × shards × pipelineDepth ≤ cores policy: each trial's engine spins
  // up its own shard workers and each churn trial its own recount-pipeline
  // workers, so the trial-level fan-out narrows to compensate. The outcome is
  // unchanged either way (trials are pure functions of their index) — only
  // scheduling shifts.
  const unsigned pipeline =
      spec.churn.enabled() ? std::max<std::uint32_t>(1, spec.churn.pipelineDepth) : 1;
  const unsigned perTrial = std::max(1u, spec.shards) * pipeline;
  if (perTrial > 1) {
    ThreadPool narrowed(std::max(1u, threadCount() / perTrial));
    return runWith(narrowed, spec.name, spec.trials, fn, spec.traceTrials);
  }
  return runWith(*pool_, spec.name, spec.trials, fn, spec.traceTrials);
}

ExperimentSummary ExperimentRunner::runCustom(const std::string& name, std::uint32_t trials,
                                              const TrialFn& fn) {
  return runWith(*pool_, name, trials, fn);
}

ExperimentSummary ExperimentRunner::runWith(ThreadPool& pool, const std::string& name,
                                            std::uint32_t trials, const TrialFn& fn,
                                            std::uint32_t traceTrials) {
  BZC_REQUIRE(trials > 0, "need at least one trial");
  // Trace sampling (DESIGN.md §12): the first `width` trials get a private
  // event buffer installed scoped around their execution. Probes never feed
  // back into protocol state, so outcomes are unchanged; buffers drain to the
  // sink serially in trial index order below, which makes the exported stream
  // deterministic even though trials run on arbitrary workers.
  obs::ensureEnvTraceConfig();
  const std::shared_ptr<obs::TraceSink> sink = obs::traceSink();
  const std::uint32_t width =
      sink != nullptr
          ? std::min(trials, traceTrials > 0 ? traceTrials : obs::traceSampleTrials())
          : 0;
  std::vector<std::unique_ptr<obs::TrialTrace>> traces(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    traces[i] = std::make_unique<obs::TrialTrace>();
    traces[i]->scenario = name;
    traces[i]->trial = i;
  }
  std::vector<TrialOutcome> outcomes(trials);
  // Chunked dispatch: one std::function call per worker instead of one per
  // trial. Which worker runs a trial never matters (pure function of the
  // index), so the static partition is invisible in the results.
  pool.parallelForChunked(trials, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i < width) {
        const obs::TraceScope scope(traces[i].get());
        const obs::ScopedTimer timer("trial");
        outcomes[i] = fn(static_cast<std::uint32_t>(i));
      } else {
        outcomes[i] = fn(static_cast<std::uint32_t>(i));
      }
    }
  });
  for (std::uint32_t i = 0; i < width; ++i) {
    // Sampled trials carry their blame graph out with the trace, so the
    // BZC_ATTRIB sink sees the same per-trial attribution the extras project.
    traces[i]->blame = outcomes[i].blame;
    sink->consume(*traces[i]);
  }

  // Aggregation walks trials in index order, so the summary (and especially
  // combinedFingerprint) is independent of which worker ran which trial.
  ExperimentSummary summary;
  summary.name = name;
  summary.trials = trials;

  std::vector<double> fracDecided, fracWithin, meanRatio, rounds, messages, bits;
  fracDecided.reserve(trials);
  fracWithin.reserve(trials);
  meanRatio.reserve(trials);
  rounds.reserve(trials);
  messages.reserve(trials);
  bits.reserve(trials);
  const std::size_t extraSlots = outcomes.front().extra.size();
  std::vector<std::vector<double>> extras(extraSlots);

  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const TrialOutcome& t : outcomes) {
    BZC_REQUIRE(t.extra.size() == extraSlots, "trials disagree on extra metric count");
    fracDecided.push_back(t.quality.fracDecided);
    fracWithin.push_back(t.quality.fracWithinWindow);
    meanRatio.push_back(t.quality.meanRatio);
    rounds.push_back(static_cast<double>(t.totalRounds));
    messages.push_back(static_cast<double>(t.totalMessages));
    bits.push_back(static_cast<double>(t.totalBits));
    for (std::size_t s = 0; s < extraSlots; ++s) extras[s].push_back(t.extra[s]);
    if (t.hitRoundCap) ++summary.cappedTrials;
    combined = fnv1a64(&t.resultFingerprint, sizeof t.resultFingerprint, combined);
  }
  // Bootstrap CIs: one forked stream per metric slot off a fixed seed, drawn
  // here in the serial pass — deterministic and thread-count invariant
  // (tests/metrics_test.cpp pins the bitwise identity across runner widths).
  const Rng boot(0xb0075eedULL);
  summary.fracDecided = Distribution::of(std::move(fracDecided), boot.fork(0));
  summary.fracWithinWindow = Distribution::of(std::move(fracWithin), boot.fork(1));
  summary.meanRatio = Distribution::of(std::move(meanRatio), boot.fork(2));
  summary.totalRounds = Distribution::of(std::move(rounds), boot.fork(3));
  summary.totalMessages = Distribution::of(std::move(messages), boot.fork(4));
  summary.totalBits = Distribution::of(std::move(bits), boot.fork(5));
  summary.extras.reserve(extraSlots);
  for (std::size_t s = 0; s < extraSlots; ++s) {
    summary.extras.push_back(Distribution::of(std::move(extras[s]), boot.fork(16 + s)));
  }
  summary.combinedFingerprint = combined;
  summary.perTrial = std::move(outcomes);
  return summary;
}

}  // namespace bzc
