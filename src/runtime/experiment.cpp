#include "runtime/experiment.hpp"

#include <algorithm>
#include <utility>

#include "counting/beacon/protocol.hpp"
#include "graph/generators.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/thread_pool.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace bzc {

Graph buildGraph(const GraphSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case GraphKind::Hnd: return hnd(spec.n, spec.degree, rng);
    case GraphKind::ConfigurationModel: return configurationModel(spec.n, spec.degree, rng);
    case GraphKind::WattsStrogatz:
      return wattsStrogatz(spec.n, spec.degree, spec.rewireProbability, rng);
    case GraphKind::Ring: return ring(spec.n);
    case GraphKind::BinaryTree: return binaryTree(spec.n);
    case GraphKind::Complete: return complete(spec.n);
  }
  BZC_REQUIRE(false, "unknown graph kind");
  return {};
}

namespace {

// Stream tags for the per-trial forks; arbitrary but fixed forever (changing
// them silently invalidates every pinned expectation downstream).
constexpr std::uint64_t kGraphStream = 0x6a4f;
constexpr std::uint64_t kPlacementStream = 0xb52d;
constexpr std::uint64_t kProtocolStream = 0x52aa;

}  // namespace

MaterializedTrial materializeTrial(const ScenarioSpec& spec, std::uint32_t index) {
  const Rng master(spec.masterSeed);
  const Rng trialRng = master.fork(index);

  Rng graphRng = trialRng.fork(kGraphStream);
  Graph graph = buildGraph(spec.graph, graphRng);

  PlacementSpec placement = spec.placement;
  if (spec.byzGamma > 0.0) placement.count = byzantineBudget(spec.graph.n, spec.byzGamma);
  Rng placeRng = trialRng.fork(kPlacementStream);
  ByzantineSet byz = placeByzantine(graph, placement, placeRng);

  return {std::move(graph), std::move(byz), trialRng.fork(kProtocolStream)};
}

TrialOutcome ExperimentRunner::runTrial(const ScenarioSpec& spec, std::uint32_t index) {
  MaterializedTrial trial = materializeTrial(spec, index);
  const NodeId n = trial.graph.numNodes();

  CountingResult result;
  switch (spec.protocol) {
    case ProtocolKind::Beacon:
      result = runBeaconCounting(trial.graph, trial.byz, spec.beaconAttack, spec.beaconParams,
                                 spec.beaconLimits, trial.runRng)
                   .result;
      break;
    case ProtocolKind::Local: {
      std::unique_ptr<LocalAdversary> adversary =
          spec.localAdversary ? spec.localAdversary() : makeHonestLocalAdversary();
      result = runLocalCounting(trial.graph, trial.byz, *adversary, spec.localParams,
                                trial.runRng, spec.placement.victim)
                   .result;
      break;
    }
    case ProtocolKind::GeometricMax:
      result = runGeometricMax(trial.graph, trial.byz, spec.geometricAttack, spec.geometricParams,
                               trial.runRng);
      break;
    case ProtocolKind::SupportEstimation:
      result = runSupportEstimation(trial.graph, trial.byz, spec.supportAttack, spec.supportParams,
                                    trial.runRng);
      break;
    case ProtocolKind::SpanningTree: {
      TreeParams params = spec.treeParams;
      // The protocol requires an honest root; random placement may have taken
      // the configured one, so fall back to the smallest honest node.
      if (trial.byz.contains(params.root)) {
        for (NodeId u = 0; u < n; ++u) {
          if (!trial.byz.contains(u)) {
            params.root = u;
            break;
          }
        }
      }
      result = runSpanningTreeCount(trial.graph, trial.byz, spec.treeAttack, params);
      break;
    }
  }

  TrialOutcome outcome;
  outcome.quality = evaluateQuality(result, trial.byz, n, spec.window);
  outcome.totalRounds = result.totalRounds;
  outcome.hitRoundCap = result.hitRoundCap;
  outcome.totalMessages = result.meter.totalMessages();
  outcome.totalBits = result.meter.totalBits();
  outcome.resultFingerprint = fingerprint(result, n);
  return outcome;
}

Distribution Distribution::of(std::vector<double> sample) {
  Distribution d;
  if (sample.empty()) return d;
  RunningStat stat;
  for (double x : sample) stat.add(x);
  d.mean = stat.mean();
  d.min = stat.min();
  d.max = stat.max();
  // Sort once; quantile() would otherwise copy and re-sort per call.
  std::sort(sample.begin(), sample.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < sample.size() ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] + (sample[hi] - sample[lo]) * frac;
  };
  d.p10 = at(0.10);
  d.p50 = at(0.50);
  d.p90 = at(0.90);
  return d;
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : pool_(std::make_unique<ThreadPool>(threads)) {}

ExperimentRunner::~ExperimentRunner() = default;

unsigned ExperimentRunner::threadCount() const noexcept { return pool_->threadCount(); }

ExperimentSummary ExperimentRunner::run(const ScenarioSpec& spec) {
  return runCustom(spec.name, spec.trials,
                   [&spec](std::uint32_t index) { return runTrial(spec, index); });
}

ExperimentSummary ExperimentRunner::runCustom(const std::string& name, std::uint32_t trials,
                                              const TrialFn& fn) {
  BZC_REQUIRE(trials > 0, "need at least one trial");
  std::vector<TrialOutcome> outcomes(trials);
  pool_->parallelFor(trials, [&](std::size_t i) {
    outcomes[i] = fn(static_cast<std::uint32_t>(i));
  });

  // Aggregation walks trials in index order, so the summary (and especially
  // combinedFingerprint) is independent of which worker ran which trial.
  ExperimentSummary summary;
  summary.name = name;
  summary.trials = trials;

  std::vector<double> fracDecided, fracWithin, meanRatio, rounds, messages, bits;
  fracDecided.reserve(trials);
  fracWithin.reserve(trials);
  meanRatio.reserve(trials);
  rounds.reserve(trials);
  messages.reserve(trials);
  bits.reserve(trials);
  const std::size_t extraSlots = outcomes.front().extra.size();
  std::vector<std::vector<double>> extras(extraSlots);

  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const TrialOutcome& t : outcomes) {
    BZC_REQUIRE(t.extra.size() == extraSlots, "trials disagree on extra metric count");
    fracDecided.push_back(t.quality.fracDecided);
    fracWithin.push_back(t.quality.fracWithinWindow);
    meanRatio.push_back(t.quality.meanRatio);
    rounds.push_back(static_cast<double>(t.totalRounds));
    messages.push_back(static_cast<double>(t.totalMessages));
    bits.push_back(static_cast<double>(t.totalBits));
    for (std::size_t s = 0; s < extraSlots; ++s) extras[s].push_back(t.extra[s]);
    if (t.hitRoundCap) ++summary.cappedTrials;
    combined = fnv1a64(&t.resultFingerprint, sizeof t.resultFingerprint, combined);
  }
  summary.fracDecided = Distribution::of(std::move(fracDecided));
  summary.fracWithinWindow = Distribution::of(std::move(fracWithin));
  summary.meanRatio = Distribution::of(std::move(meanRatio));
  summary.totalRounds = Distribution::of(std::move(rounds));
  summary.totalMessages = Distribution::of(std::move(messages));
  summary.totalBits = Distribution::of(std::move(bits));
  summary.extras.reserve(extraSlots);
  for (std::vector<double>& slot : extras) summary.extras.push_back(Distribution::of(std::move(slot)));
  summary.combinedFingerprint = combined;
  summary.perTrial = std::move(outcomes);
  return summary;
}

}  // namespace bzc
