// ExperimentRunner: batched, seed-deterministic multi-trial execution.
//
// A ScenarioSpec names a workload (graph generator × Byzantine placement ×
// attack profile × protocol params); the runner fans R independent trials out
// over a thread pool. Trial i derives every random stream it touches from
// fork(masterSeed, i), so results are bit-identical regardless of thread
// count or scheduling — the property the runtime determinism tests pin down,
// and the statistical depth the paper-reproduction benches need (both
// Lenzen–Rybicki and Chatterjee–Pandurangan–Robinson evaluate across many
// placements/seeds). See DESIGN.md §5.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/coalition_plan.hpp"
#include "agreement/pipeline.hpp"
#include "churn/schedule.hpp"
#include "counting/baselines/geometric.hpp"
#include "counting/baselines/spanning_tree.hpp"
#include "counting/baselines/support_estimation.hpp"
#include "counting/beacon/attacks.hpp"
#include "counting/beacon/params.hpp"
#include "counting/common.hpp"
#include "counting/local/attacks.hpp"
#include "counting/local/protocol.hpp"
#include "graph/graph.hpp"
#include "obs/provenance.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"

namespace bzc {

class ThreadPool;

// --- workload description ---------------------------------------------------

enum class GraphKind {
  Hnd,                 ///< H(n,d) permutation model (union of d/2 cycles)
  ConfigurationModel,  ///< d-regular configuration model
  WattsStrogatz,       ///< ring lattice with rewiring
  Ring,
  BinaryTree,
  Complete,
};

struct GraphSpec {
  GraphKind kind = GraphKind::Hnd;
  NodeId n = 256;
  NodeId degree = 8;               ///< d (Hnd/ConfigurationModel), k (WattsStrogatz)
  double rewireProbability = 0.1;  ///< WattsStrogatz only
};

/// Materialises the graph for one trial from the trial's own stream.
[[nodiscard]] Graph buildGraph(const GraphSpec& spec, Rng& rng);

enum class ProtocolKind {
  Beacon,
  Local,
  GeometricMax,
  SupportEstimation,
  SpanningTree,
  Agreement,  ///< sampling+majority a-e agreement with a given estimate of log n
  Pipeline,   ///< Algorithm 2 counting feeding the agreement protocol (§1.1)
};

/// TrialOutcome::extra slots filled by the declarative Agreement and Pipeline
/// paths (runTrial). Benches index summary.extras with these.
enum AgreementExtraSlot : std::size_t {
  kAgreementFracAgreeing = 0,    ///< honest fraction ending on the initial majority
  kAgreementCompromised = 1,     ///< answered samples the adversary controlled
  kAgreementRounds = 2,          ///< engine rounds of the agreement stage alone
  kAgreementMeanEstimate = 3,    ///< mean L_u the agreement stage actually used
  // Walk-adversary diagnostics (src/adversary/): what the selected strategy
  // actually did. kAgreementAnswered counts resolved sample slots for every
  // profile; of the rest, only kAgreementForged is nonzero under the default
  // adaptive-minority profile (= its taint count), and kAgreementCoalitionHits
  // only under coalition strategies.
  kAgreementAnswered = 4,        ///< sample slots whose answer reached its origin
  kAgreementDropped = 5,         ///< queries + answers silently discarded
  kAgreementFlipped = 6,         ///< answer bits inverted in transit
  kAgreementMisrouted = 7,       ///< answers pushed off their reverse path
  kAgreementForged = 8,          ///< answers the adversary authored at walk end
  kAgreementCoalitionHits = 9,   ///< targets tallied on the Coalition blackboard
                                 ///< (cross-stage total for pipeline runs)
  // Beacon-adversary / mixed-coalition diagnostics (src/adversary/beacon/,
  // DESIGN.md §9). Zero for plain Agreement runs and for scenarios without a
  // CoalitionPlan; like every extra they stay outside fingerprint().
  kAgreementBeaconForged = 10,   ///< counting-stage beacons the adversary authored
  kAgreementCoalitionSubsets = 11,  ///< subsets of the CoalitionPlan (0 = no plan)
  kAgreementCombinedScore = 12,  ///< combinedCoalitionScore around the victim
  // Blame-graph projections (src/obs/provenance.hpp, DESIGN.md §14): scalar
  // summaries of TrialOutcome::blame. Like every extra they stay outside
  // fingerprint() — the blame graph is observational.
  kAgreementWrongDecisions = 13,    ///< honest verdicts flipped by compromised samples
  kAgreementBlameTotal = 14,        ///< attributed damage units (edge-count sum)
  kAgreementBlameConcentration = 15,  ///< HHI over per-cause blame shares
  kAgreementBlameTopShare = 16,     ///< top single offender's share of the blame
  kAgreementBlameSubset0 = 17,      ///< blame attributed to coalition subset 0
  kAgreementBlameSubset1 = 18,
  kAgreementBlameSubset2 = 19,
  kAgreementBlameSubset3 = 20,      ///< subsets >= 3 and unmapped causes pool here
  kAgreementExtraSlots = 21,
};

/// Names for the slots above, aligned by index (bench JSON labelling).
[[nodiscard]] const char* agreementExtraSlotName(std::size_t slot);

/// Graph × placement × attack × params × trial plan. Only the fields of the
/// selected protocol are read.
struct ScenarioSpec {
  std::string name = "scenario";
  GraphSpec graph;
  PlacementSpec placement;  ///< placement.count is used as-is when byzGamma == 0
  double byzGamma = 0.0;    ///< when > 0, count = byzantineBudget(n, byzGamma)

  ProtocolKind protocol = ProtocolKind::Beacon;
  BeaconAttackProfile beaconAttack = BeaconAttackProfile::none();
  /// Gallery-native counting-stage adversary (src/adversary/beacon/). A
  /// non-None kind takes precedence over the legacy beaconAttack flags; the
  /// default None leaves flag-era scenarios untouched (None and none() are
  /// the same behaviour).
  BeaconAdversaryProfile beaconAdversary = BeaconAdversaryProfile::none();
  BeaconParams beaconParams;
  BeaconLimits beaconLimits;
  LocalParams localParams;
  /// Fresh adversary per trial (factories must be callable concurrently);
  /// nullptr = honest control.
  std::function<std::unique_ptr<LocalAdversary>()> localAdversary;
  GeometricAttack geometricAttack = GeometricAttack::None;
  GeometricParams geometricParams;
  SupportAttack supportAttack = SupportAttack::None;
  SupportParams supportParams;
  TreeAttack treeAttack = TreeAttack::None;
  TreeParams treeParams;
  AgreementParams agreementParams;
  /// Uniform estimate L for ProtocolKind::Agreement; <= 0 means the oracle
  /// ln n of the trial's graph.
  double agreementEstimate = 0.0;
  /// Counting and agreement stage parameters for ProtocolKind::Pipeline
  /// (beaconAttack above selects the stage-1 adversary).
  PipelineParams pipelineParams;

  /// Mixed-coalition axis (src/adversary/coalition_plan.hpp). An empty plan
  /// is inert. When enabled for Beacon/Agreement/Pipeline scenarios, the
  /// Byzantine budget is partitioned into subsets with per-subset stage
  /// strategies (overriding beaconAttack/beaconAdversary and the agreement
  /// attack profile), all sharing one per-trial Coalition blackboard.
  CoalitionPlan coalitionPlan;

  /// Dynamic-network axis (src/churn/). The default schedule is inert; when
  /// enabled, trials route through the EpochRunner: the overlay evolves for
  /// churn.epochs epochs and the selected protocol re-runs on the recount
  /// cadence, with churn diagnostics in the ChurnExtraSlot extras.
  ChurnSchedule churn;

  QualityWindow window{0.3, 1.8};
  std::uint32_t trials = 32;
  std::uint64_t masterSeed = 1;

  /// Intra-trial engine shards (DESIGN.md §10) for the sharded protocols
  /// (Beacon, Agreement, Pipeline — incl. their churn recounts). 0 leaves the
  /// protocol params untouched; > 0 overrides them. When the product of
  /// shards and churn.pipelineDepth exceeds 1, run() narrows the trial-level
  /// pool to threadCount() / (shards × pipelineDepth) so
  /// trials × shards × pipelineDepth stays within the core budget
  /// (DESIGN.md §11).
  std::uint32_t shards = 0;

  /// How many leading trials to trace when a TraceSink is installed
  /// (DESIGN.md §12). 0 inherits the process-wide width (BZC_TRACE_TRIALS,
  /// default 1); tracing stays off entirely while no sink is installed.
  /// Traces are observational: results are bit-identical either way.
  std::uint32_t traceTrials = 0;
};

// --- per-trial and aggregate results ----------------------------------------

/// The deterministic inputs of one trial, derived from (masterSeed, index).
struct MaterializedTrial {
  Graph graph;
  ByzantineSet byz;
  Rng runRng;  ///< the protocol's stream for this trial
};

/// Builds trial `index` of `spec`: graph, placement and protocol RNG all come
/// from forks of Rng(spec.masterSeed).fork(index). Exposed so custom trial
/// functions can reuse the exact derivation the declarative path uses.
[[nodiscard]] MaterializedTrial materializeTrial(const ScenarioSpec& spec, std::uint32_t index);

struct TrialOutcome {
  QualitySummary quality;
  Round totalRounds = 0;
  bool hitRoundCap = false;
  std::uint64_t totalMessages = 0;
  std::uint64_t totalBits = 0;
  std::uint64_t resultFingerprint = 0;  ///< fingerprint() of the CountingResult
  std::vector<double> extra;            ///< caller-defined metrics, aggregated by slot
  /// Causal damage attribution for the adversarial protocols (Beacon,
  /// Agreement, Pipeline — incl. churn trials, which merge every recount's
  /// graph plus the rejoin lineage). Collected unconditionally; exported only
  /// when BZC_ATTRIB installs a sink. Never folded into resultFingerprint.
  obs::BlameGraph blame;
};

/// Runs spec's protocol once on an explicit (graph, byz, stream) instead of a
/// materialised trial — the execution core shared by the static declarative
/// path and the per-epoch recounts of the churn EpochRunner (src/churn/),
/// which is what makes a zero-churn epoch bit-identical to the static run.
/// Victim-centric strategies read spec.placement.victim; callers on shrunken
/// graphs must clamp it below numNodes first.
[[nodiscard]] TrialOutcome runProtocolTrial(const ScenarioSpec& spec, const Graph& graph,
                                            const ByzantineSet& byz, Rng runRng);

/// Distribution of one metric over the R trials.
struct Distribution {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 for a single trial
  /// Seeded-bootstrap 95% CI of the mean (percentile method, B = 200
  /// resamples). Computed only by the Rng overload; the runner seeds it in
  /// the serial aggregation pass, so CIs are thread-count invariant like
  /// every other summary field. Degenerate (= mean) for a single trial.
  double ci95lo = 0.0;
  double ci95hi = 0.0;

  [[nodiscard]] static Distribution of(std::vector<double> sample);
  /// Same, plus the bootstrap CI drawn from `boot` (consumed by value: each
  /// metric slot gets its own forked stream).
  [[nodiscard]] static Distribution of(std::vector<double> sample, Rng boot);
};

struct ExperimentSummary {
  std::string name;
  std::uint32_t trials = 0;
  std::size_t cappedTrials = 0;  ///< trials stopped by the round cap

  Distribution fracDecided;
  Distribution fracWithinWindow;
  Distribution meanRatio;
  Distribution totalRounds;
  Distribution totalMessages;
  Distribution totalBits;
  std::vector<Distribution> extras;  ///< one per TrialOutcome::extra slot

  /// Order-sensitive hash over all per-trial fingerprints: equal across runs
  /// iff every trial produced identical results in identical trial order —
  /// the witness the thread-count-invariance tests compare.
  std::uint64_t combinedFingerprint = 0;

  std::vector<TrialOutcome> perTrial;  ///< indexed by trial
};

// --- the runner -------------------------------------------------------------

class ExperimentRunner {
 public:
  /// threads == 0 picks the hardware concurrency.
  explicit ExperimentRunner(unsigned threads = 0);
  ~ExperimentRunner();

  [[nodiscard]] unsigned threadCount() const noexcept;

  /// Runs one declarative trial; pure function of (spec, index).
  [[nodiscard]] static TrialOutcome runTrial(const ScenarioSpec& spec, std::uint32_t index);

  /// Fans spec.trials declarative trials out over the pool.
  [[nodiscard]] ExperimentSummary run(const ScenarioSpec& spec);

  /// Custom path: fn(index) must be thread-safe and a pure function of the
  /// index (use materializeTrial / Rng(masterSeed).fork(index) inside).
  using TrialFn = std::function<TrialOutcome(std::uint32_t index)>;
  [[nodiscard]] ExperimentSummary runCustom(const std::string& name, std::uint32_t trials,
                                            const TrialFn& fn);

 private:
  /// Shared fan-out core: aggregation is identical whichever pool runs it.
  /// traceTrials > 0 overrides the process-wide trace sample width.
  static ExperimentSummary runWith(ThreadPool& pool, const std::string& name,
                                   std::uint32_t trials, const TrialFn& fn,
                                   std::uint32_t traceTrials = 0);

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bzc
