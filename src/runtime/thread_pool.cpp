#include "runtime/thread_pool.hpp"

namespace bzc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::parallelFor(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &body;
    jobCount_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    activeWorkers_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  drain();  // the caller works too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return activeWorkers_ == 0; });
  job_ = nullptr;
  if (firstError_) {
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallelForChunked(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min<std::size_t>(threads_, count);
  const std::size_t width = (count + chunks - 1) / chunks;
  parallelFor(chunks, [&](std::size_t c) {
    const std::size_t lo = c * width;
    body(lo, std::min(count, lo + width));
  });
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::workerLoop() {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || generation_ != seenGeneration || !tasks_.empty();
      });
      if (!tasks_.empty()) {
        // Tasks drain even during shutdown so submitted futures never break.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (stopping_) {
        return;
      } else {
        seenGeneration = generation_;
      }
    }
    if (task) {
      task();  // packaged_task traps exceptions into the future
      continue;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--activeWorkers_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::drain() {
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobCount_) return;
    try {
      (*job_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
      cursor_.store(jobCount_, std::memory_order_relaxed);  // abandon remaining work
    }
  }
}

}  // namespace bzc
