// Fixed-size worker pool for embarrassingly parallel index loops and
// fire-and-collect task futures.
//
// Scheduling is dynamic (an atomic cursor hands out indices), so thread count
// and OS timing decide *who* runs an index but never *what* the index
// computes: determinism is the caller's job and comes from each index being a
// pure function of its input (the ExperimentRunner derives a forked RNG
// stream per trial index for exactly this reason). The same contract covers
// submit(): a task's result must be a pure function of what the caller moved
// into it, so completion order is invisible.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bzc {

class ThreadPool {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1). One worker
  /// means no extra threads at all: parallelFor runs inline on the caller,
  /// and submit() executes the task immediately at the call site.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threadCount() const noexcept { return threads_; }

  /// Runs body(0) .. body(count-1) across the pool (the calling thread
  /// participates). Blocks until all indices finished; the first exception
  /// thrown by any body is rethrown here after the loop drains.
  void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Static-partition variant: splits [0, count) into at most threadCount()
  /// contiguous chunks and dispatches body(lo, hi) once per chunk — one
  /// std::function call per worker instead of one per index. For fine-grained
  /// loops (SyncEngine's per-shard scatter, the runner's trial fan-out) the
  /// per-index virtual dispatch is the measurable cost (bench_f3 pins the
  /// ratio). Same blocking/exception semantics as parallelFor; the partition
  /// is a pure function of (count, threadCount()), and each index is still a
  /// pure function of its input, so chunking never affects results.
  void parallelForChunked(std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& body);

  /// Queues one task for asynchronous execution on a worker and returns the
  /// future for its result (the epoch pipeline's recount stage rides this).
  /// Unlike parallelFor, the caller does NOT participate and does not block:
  /// tasks run concurrently with whatever the caller does next. On a
  /// single-thread pool the task executes inline before submit returns — the
  /// depth-1 epoch pipeline's serial identity is this code path. All futures
  /// must be waited on before the pool is destroyed; pending tasks still run
  /// during shutdown, but nothing restarts a worker after join.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    enqueue([task] { (*task)(); });
    return fut;
  }

 private:
  void workerLoop();
  void drain();
  void enqueue(std::function<void()> task);

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobCount_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t activeWorkers_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
  std::deque<std::function<void()>> tasks_;  ///< submit() queue, drained before stop
};

}  // namespace bzc
