// Fixed-size worker pool for embarrassingly parallel index loops.
//
// Scheduling is dynamic (an atomic cursor hands out indices), so thread count
// and OS timing decide *who* runs an index but never *what* the index
// computes: determinism is the caller's job and comes from each index being a
// pure function of its input (the ExperimentRunner derives a forked RNG
// stream per trial index for exactly this reason).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bzc {

class ThreadPool {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1). One worker
  /// means no extra threads at all: parallelFor runs inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threadCount() const noexcept { return threads_; }

  /// Runs body(0) .. body(count-1) across the pool (the calling thread
  /// participates). Blocks until all indices finished; the first exception
  /// thrown by any body is rethrown here after the loop drains.
  void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void workerLoop();
  void drain();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobCount_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t activeWorkers_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

}  // namespace bzc
