// SyncEngine: the shared synchronous-round message-passing runtime.
//
// Every protocol in the repo (beacon counting, LOCAL counting, the three
// baselines) used to hand-roll the same plumbing: a round counter, per-node
// inbox/outbox double-buffering, quiescence detection, a safety round cap and
// MessageMeter accounting. SyncEngine owns all of it; protocols are expressed
// as policies — an `emit` hook queueing sends at the top of a round, a `recv`
// hook invoked for each touched receiver, and an `end` hook for global per-round
// work (decisions, expansion checks). See DESIGN.md §1.
//
// Determinism contract (relied on by the golden regression tests):
//  - sends flush in the exact order they were queued; a receiver's inbox is
//    therefore ordered by sender-queue position, then by the sender's
//    adjacency order (one delivery per incident edge for broadcasts);
//  - `recv` fires in first-delivery order (the order inboxes first became
//    nonempty this round), which matches the classic `touched` lists of the
//    pre-refactor loops;
//  - the meter records honest senders only, at flush time, with
//    recordBroadcast(from, bits, degree) for broadcasts and
//    record(from, bits) for unicasts.
//
// A "window" is a bounded run of rounds (phase structures like Algorithm 2's
// beacon/continue windows map onto it); `rounds == 0` means run until
// quiescence or the engine-wide cap. Protocols that charge wall-clock for a
// full window even when traffic dies early (Algorithm 2 does) top the counter
// up with skipRounds().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "sim/metrics.hpp"
#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

enum class WindowStatus {
  Completed,  ///< all requested rounds ran
  Quiesced,   ///< a round moved no messages (that empty round is counted)
  Stopped,    ///< the end-of-round hook returned false
  Capped,     ///< the engine-wide round cap was reached
};

struct WindowResult {
  WindowStatus status = WindowStatus::Completed;
  std::uint32_t roundsRun = 0;  ///< rounds counted by this window (incl. a quiescent one)
};

/// What a window does with a round that moved no messages. Flood-style
/// protocols stop (nothing can ever change again); schedule-driven ones
/// (e.g. a converge-cast whose emit hook activates one layer per round) keep
/// going because later rounds produce traffic regardless of earlier ones.
enum class IdlePolicy {
  StopWhenIdle,
  RunFullWindow,
};

/// No-op policy hooks for the runWindow slots a protocol does not use.
struct NoEmit {
  void operator()(Round) const noexcept {}
};
struct NoEnd {
  bool operator()(Round) const noexcept { return true; }
};

template <typename Message>
class SyncEngine {
 public:
  struct Delivery {
    NodeId sender = kNoNode;
    Message payload{};
  };
  struct NoRecv {
    void operator()(NodeId, Round, std::span<const Delivery>) const noexcept {}
  };

  /// maxTotalRounds == 0 disables the engine-wide cap.
  SyncEngine(const Graph& g, const ByzantineSet& byz, std::uint64_t maxTotalRounds = 0)
      : graph_(g),
        byz_(byz),
        maxTotalRounds_(maxTotalRounds == 0 ? ~0ULL : maxTotalRounds),
        meter_(g.numNodes()),
        inboxCount_(g.numNodes(), 0),
        inboxStart_(g.numNodes(), 0),
        inboxCursor_(g.numNodes(), 0) {
    BZC_REQUIRE(byz.numNodes() == g.numNodes(), "byzantine set size mismatch");
  }

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] MessageMeter& meter() noexcept { return meter_; }
  [[nodiscard]] MessageMeter releaseMeter() noexcept { return std::move(meter_); }

  /// True when running `k` more rounds would overrun the engine-wide cap.
  [[nodiscard]] bool wouldExceed(std::uint64_t k) const noexcept {
    return round_ + k > maxTotalRounds_;
  }

  /// Advances the round counter without simulating traffic (used to charge a
  /// protocol-defined window in full when flooding quiesced early).
  void skipRounds(std::uint64_t k) noexcept { round_ += k; }

  // --- sending (valid from emit/recv/end hooks, or before a window to seed
  // --- its first round) -----------------------------------------------------
  void broadcast(NodeId from, Message payload, std::size_t bits) {
    sendQueue_.push_back({from, kNoNode, std::move(payload), bits});
  }
  void unicast(NodeId from, NodeId to, Message payload, std::size_t bits) {
    sendQueue_.push_back({from, to, std::move(payload), bits});
  }
  void clearPending() noexcept { sendQueue_.clear(); }
  [[nodiscard]] bool hasPending() const noexcept { return !sendQueue_.empty(); }

  /// Inbox of node v for the current round (valid inside recv/end hooks).
  [[nodiscard]] std::span<const Delivery> inboxOf(NodeId v) const {
    if (inboxCount_[v] == 0) return {};
    return {inboxArena_.data() + inboxStart_[v], inboxCount_[v]};
  }

  // --- the round loop -------------------------------------------------------
  // Per round: cap check; advance the counter; emit(w); flush queued sends
  // into inboxes (metering honest senders); stop as Quiesced when nothing
  // moved; recv(v, w, inbox) for each touched v in first-delivery order;
  // end(w) — return false to stop; clear inboxes.
  template <typename EmitFn, typename RecvFn, typename EndFn>
  WindowResult runWindow(std::uint32_t rounds, EmitFn&& emit, RecvFn&& recv, EndFn&& end,
                         IdlePolicy idle = IdlePolicy::StopWhenIdle) {
    WindowResult res;
    for (std::uint32_t w = 1; rounds == 0 || w <= rounds; ++w) {
      if (round_ >= maxTotalRounds_) {
        res.status = WindowStatus::Capped;
        return res;
      }
      ++round_;
      ++res.roundsRun;
      emit(static_cast<Round>(w));
      flushing_.clear();
      flushing_.swap(sendQueue_);  // sends queued from hooks target the next round
      flush();
      if (flushing_.empty() && idle == IdlePolicy::StopWhenIdle) {
        res.status = WindowStatus::Quiesced;
        return res;
      }
      for (NodeId v : touched_) {
        recv(v, static_cast<Round>(w), inboxOf(v));
      }
      const bool keep = end(static_cast<Round>(w));
      for (NodeId v : touched_) inboxCount_[v] = 0;
      touched_.clear();
      if (!keep) {
        res.status = WindowStatus::Stopped;
        return res;
      }
    }
    res.status = WindowStatus::Completed;
    return res;
  }

  /// Flood-style window: traffic seeded before the call, forwarded from recv.
  template <typename RecvFn>
  WindowResult runWindow(std::uint32_t rounds, RecvFn&& recv) {
    return runWindow(rounds, NoEmit{}, std::forward<RecvFn>(recv), NoEnd{});
  }

 private:
  struct PendingSend {
    NodeId from;
    NodeId to;  ///< kNoNode = broadcast to all neighbors
    Message payload;
    std::size_t bits;
  };

  // Batched delivery: one counting pass sizes every inbox, receivers get
  // contiguous slices of a single round arena (offsets assigned in
  // first-delivery order, which keeps `touched_` — and therefore the recv
  // order the goldens pin — identical to the old one-Delivery-per-push
  // scheme), then a scatter pass writes payloads in send-queue order. At
  // token-heavy scale (n >= 64k: one unicast per live walk token per round)
  // this replaces n scattered vector headers and their growth reallocations
  // with two flat arrays and a grow-only arena; delivery order, metering
  // order and inbox contents are bit-identical (DESIGN.md §1).
  void flush() {
    for (const PendingSend& p : flushing_) {
      if (p.to == kNoNode) {
        if (!byz_.contains(p.from)) {
          meter_.recordBroadcast(p.from, p.bits, graph_.degree(p.from));
        }
        for (NodeId v : graph_.neighbors(p.from)) {
          if (inboxCount_[v]++ == 0) touched_.push_back(v);
        }
      } else {
        if (!byz_.contains(p.from)) meter_.record(p.from, p.bits);
        if (inboxCount_[p.to]++ == 0) touched_.push_back(p.to);
      }
    }
    std::size_t total = 0;
    for (NodeId v : touched_) {
      inboxStart_[v] = total;
      inboxCursor_[v] = total;
      total += inboxCount_[v];
    }
    if (inboxArena_.size() < total) inboxArena_.resize(total);
    for (PendingSend& p : flushing_) {
      if (p.to == kNoNode) {
        for (NodeId v : graph_.neighbors(p.from)) {
          inboxArena_[inboxCursor_[v]++] = {p.from, Message(p.payload)};
        }
      } else {
        // A unicast has exactly one receiver and flushing_ is discarded after
        // the flush, so the payload can move (message types carrying buffers —
        // walk tokens — ride this hot path).
        inboxArena_[inboxCursor_[p.to]++] = {p.from, std::move(p.payload)};
      }
    }
  }

  const Graph& graph_;
  const ByzantineSet& byz_;
  std::uint64_t maxTotalRounds_;
  std::uint64_t round_ = 0;
  MessageMeter meter_;

  std::vector<PendingSend> sendQueue_;
  std::vector<PendingSend> flushing_;
  std::vector<Delivery> inboxArena_;        ///< one round's deliveries, receiver-contiguous
  std::vector<std::size_t> inboxCount_;     ///< per node; nonzero only for touched_ members
  std::vector<std::size_t> inboxStart_;     ///< arena offset; valid when inboxCount_ > 0
  std::vector<std::size_t> inboxCursor_;    ///< scatter cursor during flush()
  std::vector<NodeId> touched_;
};

}  // namespace bzc
