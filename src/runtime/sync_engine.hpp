// SyncEngine: the shared synchronous-round message-passing runtime.
//
// Every protocol in the repo (beacon counting, LOCAL counting, the three
// baselines) used to hand-roll the same plumbing: a round counter, per-node
// inbox/outbox double-buffering, quiescence detection, a safety round cap and
// MessageMeter accounting. SyncEngine owns all of it; protocols are expressed
// as policies — an `emit` hook queueing sends at the top of a round, a `recv`
// hook invoked for each touched receiver, and an `end` hook for global per-round
// work (decisions, expansion checks). See DESIGN.md §1.
//
// Determinism contract (relied on by the golden regression tests):
//  - sends flush in the exact order they were queued; a receiver's inbox is
//    therefore ordered by sender-queue position, then by the sender's
//    adjacency order (one delivery per incident edge for broadcasts);
//  - `recv` fires in first-delivery order (the order inboxes first became
//    nonempty this round), which matches the classic `touched` lists of the
//    pre-refactor loops;
//  - the meter records honest senders only, at flush time, with
//    recordBroadcast(from, bits, degree) for broadcasts and
//    record(from, bits) for unicasts.
//
// Intra-trial sharding (DESIGN.md §10): the constructor takes a shard count S.
// Nodes are partitioned into S contiguous shards of ceil(n/S) nodes; a shard
// owns its nodes' inboxes. At S > 1 the engine owns a ThreadPool of S workers
// and a round becomes: serial emit — parallel recv over per-shard touched
// lists (a recv hook taking a ShardLane& queues sends into its shard's lane) —
// serial canonical merge (per-recv-call run lengths interleave lane sends back
// into global first-delivery order, reproducing the serial send-queue order
// exactly) — serial counting/metering pass — parallel receiver-owned scatter
// (each worker walks the canonical send order and writes only inboxes its
// shard owns, so cursors are race-free and per-inbox order matches serial).
// The invariant is the same one ExperimentRunner pins for trials: fingerprints
// are bit-identical at any shard count, and S == 1 is exactly the legacy
// serial path (same code, same object states, base RNG streams). recv hooks
// with the legacy (NodeId, Round, span) signature still run serially at any S.
//
// Provenance tags (DESIGN.md §14) ride inside Message payloads: the engine
// moves/copies payloads opaquely through the canonical merge and scatter, so
// tags like WalkToken::taintNode or BeaconFrame::forgeNode arrive at the
// receiver exactly as sent and never perturb ordering, metering, or RNG —
// blame collection costs no simulated bits and no determinism caveats.
//
// A "window" is a bounded run of rounds (phase structures like Algorithm 2's
// beacon/continue windows map onto it); `rounds == 0` means run until
// quiescence or the engine-wide cap. Protocols that charge wall-clock for a
// full window even when traffic dies early (Algorithm 2 does) top the counter
// up with skipRounds().
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/byzantine.hpp"
#include "sim/metrics.hpp"
#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

/// Shard counts above this are clamped: the sharded path arenas tag refs with
/// a 4-bit shard index, and past ~16 shards the serial merge/count passes
/// dominate anyway (Amdahl).
inline constexpr unsigned kMaxEngineShards = 16;

enum class WindowStatus {
  Completed,  ///< all requested rounds ran
  Quiesced,   ///< a round moved no messages (that empty round is counted)
  Stopped,    ///< the end-of-round hook returned false
  Capped,     ///< the engine-wide round cap was reached
};

struct WindowResult {
  WindowStatus status = WindowStatus::Completed;
  std::uint32_t roundsRun = 0;  ///< rounds counted by this window (incl. a quiescent one)
};

/// What a window does with a round that moved no messages. Flood-style
/// protocols stop (nothing can ever change again); schedule-driven ones
/// (e.g. a converge-cast whose emit hook activates one layer per round) keep
/// going because later rounds produce traffic regardless of earlier ones.
enum class IdlePolicy {
  StopWhenIdle,
  RunFullWindow,
};

/// No-op policy hooks for the runWindow slots a protocol does not use.
struct NoEmit {
  void operator()(Round) const noexcept {}
};
struct NoEnd {
  bool operator()(Round) const noexcept { return true; }
};

template <typename Message>
class SyncEngine {
 private:
  struct PendingSend {
    NodeId from;
    NodeId to;  ///< kNoNode = broadcast to all neighbors
    Message payload;
    std::size_t bits;
  };

 public:
  struct Delivery {
    NodeId sender = kNoNode;
    Message payload{};
  };
  struct NoRecv {
    void operator()(NodeId, Round, std::span<const Delivery>) const noexcept {}
  };

  /// Send handle passed to shard-aware recv hooks. At S == 1 it feeds the
  /// engine's ordinary send queue (the legacy path, byte for byte); at S > 1
  /// it feeds the calling shard's private lane, so recv-phase sends need no
  /// synchronization. shard() indexes per-shard protocol state (forked RNG
  /// streams, stat counters, arena lanes).
  class ShardLane {
   public:
    void broadcast(NodeId from, Message payload, std::size_t bits) {
      sink_->push_back({from, kNoNode, std::move(payload), bits});
    }
    void unicast(NodeId from, NodeId to, Message payload, std::size_t bits) {
      sink_->push_back({from, to, std::move(payload), bits});
    }
    [[nodiscard]] unsigned shard() const noexcept { return shard_; }

   private:
    friend class SyncEngine;
    ShardLane(std::vector<PendingSend>* sink, unsigned shard) : sink_(sink), shard_(shard) {}
    std::vector<PendingSend>* sink_;
    unsigned shard_;
  };

  /// True when RecvFn has the shard-aware signature. Detected (not opted into)
  /// so the flood overload and every legacy call site stay untouched.
  template <typename RecvFn>
  static constexpr bool kShardedRecv =
      std::is_invocable_v<RecvFn&, ShardLane&, NodeId, Round, std::span<const Delivery>>;

  /// maxTotalRounds == 0 disables the engine-wide cap. shards is clamped to
  /// [1, min(kMaxEngineShards, n)]; 1 (the default) is the serial engine.
  SyncEngine(const Graph& g, const ByzantineSet& byz, std::uint64_t maxTotalRounds = 0,
             unsigned shards = 1)
      : graph_(g),
        byz_(byz),
        maxTotalRounds_(maxTotalRounds == 0 ? ~0ULL : maxTotalRounds),
        meter_(g.numNodes()),
        inboxCount_(g.numNodes(), 0),
        inboxStart_(g.numNodes(), 0),
        inboxCursor_(g.numNodes(), 0),
        shards_(clampShards(shards, g.numNodes())) {
    BZC_REQUIRE(byz.numNodes() == g.numNodes(), "byzantine set size mismatch");
    if (shards_ > 1) {
      chunk_ = static_cast<NodeId>((g.numNodes() + shards_ - 1) / shards_);
      lanes_.resize(shards_);
      perShardTouched_.resize(shards_);
      runCursor_.assign(shards_, 0);
      sendCursor_.assign(shards_, 0);
      pool_ = std::make_unique<ThreadPool>(shards_);
    }
  }

  // --- sharding -------------------------------------------------------------
  [[nodiscard]] unsigned shardCount() const noexcept { return shards_; }

  /// Owning shard of node v (contiguous partition: v / ceil(n/S)).
  [[nodiscard]] unsigned shardOf(NodeId v) const noexcept {
    return shards_ > 1 ? static_cast<unsigned>(v / chunk_) : 0u;
  }

  /// Runs fn(shard, loNode, hiNode) over every shard's node range — on the
  /// engine's pool at S > 1, inline at S == 1. For protocol phases that scan
  /// all nodes with shard-owned writes (e.g. the beacon decision loop); it
  /// hands out node ranges only, never send lanes.
  template <typename Fn>
  void forEachShard(Fn&& fn) {
    if (shards_ == 1) {
      fn(std::size_t{0}, NodeId{0}, graph_.numNodes());
      return;
    }
    pool_->parallelForChunked(shards_, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t s = lo; s < hi; ++s) fn(s, shardLo(s), shardHi(s));
    });
  }

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] MessageMeter& meter() noexcept { return meter_; }
  [[nodiscard]] MessageMeter releaseMeter() noexcept { return std::move(meter_); }

  /// True when running `k` more rounds would overrun the engine-wide cap.
  [[nodiscard]] bool wouldExceed(std::uint64_t k) const noexcept {
    return round_ + k > maxTotalRounds_;
  }

  /// Advances the round counter without simulating traffic (used to charge a
  /// protocol-defined window in full when flooding quiesced early). Traced as
  /// a Mark so round accounting still reconciles: simulated rounds + skipped
  /// rounds == the engine counter (tests/obs_test.cpp pins this).
  void skipRounds(std::uint64_t k) {
    round_ += k;
    if (obs::TrialTrace* t = obs::currentTrace()) {
      t->mark("engine.skipRounds", static_cast<double>(k), round_);
    }
  }

  // --- sending (valid from emit/recv/end hooks, or before a window to seed
  // --- its first round) -----------------------------------------------------
  void broadcast(NodeId from, Message payload, std::size_t bits) {
    sendQueue_.push_back({from, kNoNode, std::move(payload), bits});
  }
  void unicast(NodeId from, NodeId to, Message payload, std::size_t bits) {
    sendQueue_.push_back({from, to, std::move(payload), bits});
  }
  void clearPending() noexcept {
    sendQueue_.clear();
    if (shards_ > 1) {
      for (Lane& lane : lanes_) {
        lane.sends.clear();
        lane.runLengths.clear();
      }
      flushOrder_.clear();
    }
  }
  [[nodiscard]] bool hasPending() const noexcept {
    return !sendQueue_.empty() || !flushOrder_.empty();
  }

  /// Inbox of node v for the current round (valid inside recv/end hooks).
  [[nodiscard]] std::span<const Delivery> inboxOf(NodeId v) const {
    if (inboxCount_[v] == 0) return {};
    return {inboxArena_.data() + inboxStart_[v], inboxCount_[v]};
  }

  // --- the round loop -------------------------------------------------------
  // Per round: cap check; advance the counter; emit(w); flush queued sends
  // into inboxes (metering honest senders); stop as Quiesced when nothing
  // moved; recv(v, w, inbox) for each touched v in first-delivery order
  // (shard-parallel when the hook takes a ShardLane& and S > 1); end(w) —
  // return false to stop; clear inboxes.
  template <typename EmitFn, typename RecvFn, typename EndFn>
  WindowResult runWindow(std::uint32_t rounds, EmitFn&& emit, RecvFn&& recv, EndFn&& end,
                         IdlePolicy idle = IdlePolicy::StopWhenIdle) {
    WindowResult res;
    // Probe target captured once per window; tracing toggles between windows,
    // never inside one. Null keeps every probe below a dead branch — the
    // round loop reads no clock and builds no record (the "null sink" path).
    obs::TrialTrace* const tr = obs::currentTrace();
    trace_ = tr;
    // Whole-window span (phase-time attribution in tools/metrics_report.py):
    // emitted at every exit so span counts per trial stay deterministic.
    const std::int64_t winT0 = tr != nullptr ? obs::traceClockNs() : 0;
    for (std::uint32_t w = 1; rounds == 0 || w <= rounds; ++w) {
      if (round_ >= maxTotalRounds_) {
        res.status = WindowStatus::Capped;
        if (tr != nullptr) tr->span("engine.window", winT0, round_);
        trace_ = nullptr;
        return res;
      }
      ++round_;
      ++res.roundsRun;
      obs::RoundRecord rd;
      std::uint64_t msgs0 = 0;
      std::uint64_t bits0 = 0;
      if (tr != nullptr) {
        msgs0 = meter_.totalMessages();
        bits0 = meter_.totalBits();
        traceRecvNs_ = traceMergeNs_ = traceScatterNs_ = 0;
      }
      emit(static_cast<Round>(w));
      bool anyTraffic;
      if (shards_ > 1) {
        if (tr != nullptr) {
          rd.sends = static_cast<std::uint32_t>(flushOrder_.size() + sendQueue_.size());
        }
        anyTraffic = shardedFlush();
      } else {
        flushing_.clear();
        flushing_.swap(sendQueue_);  // sends queued from hooks target the next round
        if (tr != nullptr) {
          rd.sends = static_cast<std::uint32_t>(flushing_.size());
          const std::int64_t t0 = obs::traceClockNs();
          flush();
          traceScatterNs_ = obs::traceClockNs() - t0;  // serial: whole flush
        } else {
          flush();
        }
        anyTraffic = !flushing_.empty();
      }
      if (tr != nullptr) {
        rd.round = round_;
        rd.shards = static_cast<std::uint8_t>(shards_);
        rd.touched = static_cast<std::uint32_t>(touched_.size());
        rd.messages = meter_.totalMessages() - msgs0;
        rd.bits = meter_.totalBits() - bits0;
      }
      if (!anyTraffic && idle == IdlePolicy::StopWhenIdle) {
        res.status = WindowStatus::Quiesced;
        if (tr != nullptr) {
          rd.idle = 1;
          rd.recvNs = traceRecvNs_;
          rd.mergeNs = traceMergeNs_;
          rd.scatterNs = traceScatterNs_;
          tr->round(rd);
          tr->span("engine.window", winT0, round_);
        }
        trace_ = nullptr;
        return res;
      }
      if constexpr (kShardedRecv<RecvFn>) {
        if (shards_ > 1) {
          runShardedRecv(static_cast<Round>(w), recv);
          if (tr != nullptr) {
            for (unsigned s = 0; s < shards_ && s < obs::kTraceMaxShards; ++s) {
              rd.laneSends[s] = static_cast<std::uint32_t>(lanes_[s].sends.size());
            }
          }
        } else {
          ShardLane lane(&sendQueue_, 0);  // legacy queue: serial order as-is
          const std::int64_t t0 = tr != nullptr ? obs::traceClockNs() : 0;
          for (NodeId v : touched_) {
            recv(lane, v, static_cast<Round>(w), inboxOf(v));
          }
          if (tr != nullptr) traceRecvNs_ = obs::traceClockNs() - t0;
        }
      } else {
        // Legacy hook signature: always serial, even at S > 1 (its sends go
        // through broadcast()/unicast() into sendQueue_, preserving order).
        const std::int64_t t0 = tr != nullptr ? obs::traceClockNs() : 0;
        for (NodeId v : touched_) {
          recv(v, static_cast<Round>(w), inboxOf(v));
        }
        if (tr != nullptr) traceRecvNs_ = obs::traceClockNs() - t0;
      }
      const bool keep = end(static_cast<Round>(w));
      if (tr != nullptr) {
        rd.recvNs = traceRecvNs_;
        rd.mergeNs = traceMergeNs_;
        rd.scatterNs = traceScatterNs_;
        tr->round(rd);
      }
      for (NodeId v : touched_) inboxCount_[v] = 0;
      touched_.clear();
      if (shards_ > 1) {
        for (std::vector<NodeId>& t : perShardTouched_) t.clear();
      }
      if (!keep) {
        res.status = WindowStatus::Stopped;
        if (tr != nullptr) tr->span("engine.window", winT0, round_);
        trace_ = nullptr;
        return res;
      }
    }
    res.status = WindowStatus::Completed;
    if (tr != nullptr) tr->span("engine.window", winT0, round_);
    trace_ = nullptr;
    return res;
  }

  /// Flood-style window: traffic seeded before the call, forwarded from recv.
  template <typename RecvFn>
  WindowResult runWindow(std::uint32_t rounds, RecvFn&& recv) {
    return runWindow(rounds, NoEmit{}, std::forward<RecvFn>(recv), NoEnd{});
  }

 private:
  struct Lane {
    std::vector<PendingSend> sends;
    std::vector<std::uint32_t> runLengths;  ///< sends per recv call, in perShardTouched_ order
  };

  [[nodiscard]] static unsigned clampShards(unsigned s, NodeId n) noexcept {
    if (s == 0) s = 1;
    if (s > kMaxEngineShards) s = kMaxEngineShards;
    if (n > 0 && s > static_cast<unsigned>(n)) s = static_cast<unsigned>(n);
    return s;
  }
  [[nodiscard]] NodeId shardLo(std::size_t s) const noexcept {
    return std::min<NodeId>(graph_.numNodes(), static_cast<NodeId>(s) * chunk_);
  }
  [[nodiscard]] NodeId shardHi(std::size_t s) const noexcept {
    return std::min<NodeId>(graph_.numNodes(), shardLo(s) + chunk_);
  }

  // Batched delivery: one counting pass sizes every inbox, receivers get
  // contiguous slices of a single round arena (offsets assigned in
  // first-delivery order, which keeps `touched_` — and therefore the recv
  // order the goldens pin — identical to the old one-Delivery-per-push
  // scheme), then a scatter pass writes payloads in send-queue order. At
  // token-heavy scale (n >= 64k: one unicast per live walk token per round)
  // this replaces n scattered vector headers and their growth reallocations
  // with two flat arrays and a grow-only arena; delivery order, metering
  // order and inbox contents are bit-identical (DESIGN.md §1).
  void flush() {
    for (const PendingSend& p : flushing_) {
      if (p.to == kNoNode) {
        if (!byz_.contains(p.from)) {
          meter_.recordBroadcast(p.from, p.bits, graph_.degree(p.from));
        }
        for (NodeId v : graph_.neighbors(p.from)) {
          if (inboxCount_[v]++ == 0) touched_.push_back(v);
        }
      } else {
        if (!byz_.contains(p.from)) meter_.record(p.from, p.bits);
        if (inboxCount_[p.to]++ == 0) touched_.push_back(p.to);
      }
    }
    std::size_t total = 0;
    for (NodeId v : touched_) {
      inboxStart_[v] = total;
      inboxCursor_[v] = total;
      total += inboxCount_[v];
    }
    if (inboxArena_.size() < total) inboxArena_.resize(total);
    for (PendingSend& p : flushing_) {
      if (p.to == kNoNode) {
        // The final delivery slot gets the payload moved, not copied: message
        // types carrying buffers (walk tokens) pay one copy per neighbor less.
        const auto nbrs = graph_.neighbors(p.from);
        for (std::size_t j = 0; j + 1 < nbrs.size(); ++j) {
          inboxArena_[inboxCursor_[nbrs[j]]++] = {p.from, Message(p.payload)};
        }
        if (!nbrs.empty()) {
          inboxArena_[inboxCursor_[nbrs.back()]++] = {p.from, std::move(p.payload)};
        }
      } else {
        // A unicast has exactly one receiver and flushing_ is discarded after
        // the flush, so the payload can move (message types carrying buffers —
        // walk tokens — ride this hot path).
        inboxArena_[inboxCursor_[p.to]++] = {p.from, std::move(p.payload)};
      }
    }
  }

  // Shard-parallel recv: each worker serves its shard's touched nodes (global
  // first-delivery order restricted to the shard preserves relative order) and
  // records, per recv call, how many sends the hook queued (a run length).
  // The serial merge then walks the *global* touched_ list, consuming each
  // node's run from its shard's lane — reproducing the exact send order the
  // serial engine would have built, at any shard count.
  template <typename RecvFn>
  void runShardedRecv(Round w, RecvFn& recv) {
    std::int64_t t0 = trace_ != nullptr ? obs::traceClockNs() : 0;
    pool_->parallelForChunked(shards_, [&](std::size_t cLo, std::size_t cHi) {
      for (std::size_t s = cLo; s < cHi; ++s) {
        Lane& lane = lanes_[s];
        ShardLane handle(&lane.sends, static_cast<unsigned>(s));
        std::size_t mark = lane.sends.size();
        for (NodeId v : perShardTouched_[s]) {
          recv(handle, v, w, inboxOf(v));
          lane.runLengths.push_back(static_cast<std::uint32_t>(lane.sends.size() - mark));
          mark = lane.sends.size();
        }
      }
    });
    if (trace_ != nullptr) {
      const std::int64_t t1 = obs::traceClockNs();
      traceRecvNs_ += t1 - t0;
      t0 = t1;
    }
    std::fill(runCursor_.begin(), runCursor_.end(), 0);
    std::fill(sendCursor_.begin(), sendCursor_.end(), 0);
    for (NodeId v : touched_) {
      const unsigned s = shardOf(v);
      const std::uint32_t len = lanes_[s].runLengths[runCursor_[s]++];
      for (std::uint32_t k = 0; k < len; ++k) {
        flushOrder_.push_back(&lanes_[s].sends[sendCursor_[s]++]);
      }
    }
    if (trace_ != nullptr) traceMergeNs_ += obs::traceClockNs() - t0;
    // Lane storage stays live (flushOrder_ points into it) until the next
    // shardedFlush consumes it; nothing appends to lanes outside recv, so the
    // pointers cannot be invalidated by reallocation in between.
  }

  // Sharded flush. Canonical order = recv-phase lane sends (already merged
  // into flushOrder_) followed by serial-context sends (end/emit/seed, from
  // sendQueue_) — exactly the serial engine's FIFO. Pass 1 counts inboxes,
  // builds touched lists and meters honest senders serially in that order
  // (serial metering here subsumes the per-shard meter reduction: same sums,
  // same per-sender attribution). Pass 3 scatters receiver-owned in parallel:
  // every worker walks the full canonical order but writes only inboxes its
  // shard owns, so inboxCursor_ entries are single-writer and each inbox fills
  // in canonical order — bit-identical to serial.
  bool shardedFlush() {
    if (!sendQueue_.empty()) {
      flushOrder_.reserve(flushOrder_.size() + sendQueue_.size());
      for (PendingSend& p : sendQueue_) flushOrder_.push_back(&p);
    }
    if (flushOrder_.empty()) return false;
    std::int64_t t0 = trace_ != nullptr ? obs::traceClockNs() : 0;
    for (const PendingSend* p : flushOrder_) {
      if (p->to == kNoNode) {
        if (!byz_.contains(p->from)) {
          meter_.recordBroadcast(p->from, p->bits, graph_.degree(p->from));
        }
        for (NodeId v : graph_.neighbors(p->from)) {
          if (inboxCount_[v]++ == 0) {
            touched_.push_back(v);
            perShardTouched_[shardOf(v)].push_back(v);
          }
        }
      } else {
        if (!byz_.contains(p->from)) meter_.record(p->from, p->bits);
        if (inboxCount_[p->to]++ == 0) {
          touched_.push_back(p->to);
          perShardTouched_[shardOf(p->to)].push_back(p->to);
        }
      }
    }
    std::size_t total = 0;
    for (NodeId v : touched_) {
      inboxStart_[v] = total;
      inboxCursor_[v] = total;
      total += inboxCount_[v];
    }
    if (inboxArena_.size() < total) inboxArena_.resize(total);
    if (trace_ != nullptr) {
      // The serial counting/metering pass belongs with the canonical merge
      // (both are the Amdahl-serial fraction); the pool pass below is scatter.
      const std::int64_t t1 = obs::traceClockNs();
      traceMergeNs_ += t1 - t0;
      t0 = t1;
    }
    pool_->parallelForChunked(shards_, [&](std::size_t cLo, std::size_t cHi) {
      // A chunk of contiguous shards owns one contiguous node range.
      const NodeId lo = shardLo(cLo);
      const NodeId hi = shardHi(cHi - 1);
      for (PendingSend* p : flushOrder_) {
        if (p->to == kNoNode) {
          // Broadcasts copy into every owned slot: the move-into-last trick of
          // the serial flush would race here (workers on other chunks read the
          // same payload concurrently).
          for (NodeId v : graph_.neighbors(p->from)) {
            if (v >= lo && v < hi) {
              inboxArena_[inboxCursor_[v]++] = {p->from, Message(p->payload)};
            }
          }
        } else if (p->to >= lo && p->to < hi) {
          // Unicast: single receiver, single owner — safe to move.
          inboxArena_[inboxCursor_[p->to]++] = {p->from, std::move(p->payload)};
        }
      }
    });
    if (trace_ != nullptr) traceScatterNs_ += obs::traceClockNs() - t0;
    sendQueue_.clear();
    for (Lane& lane : lanes_) {
      lane.sends.clear();
      lane.runLengths.clear();
    }
    flushOrder_.clear();
    return true;
  }

  const Graph& graph_;
  const ByzantineSet& byz_;
  std::uint64_t maxTotalRounds_;
  std::uint64_t round_ = 0;
  MessageMeter meter_;

  std::vector<PendingSend> sendQueue_;
  std::vector<PendingSend> flushing_;
  std::vector<Delivery> inboxArena_;        ///< one round's deliveries, receiver-contiguous
  std::vector<std::size_t> inboxCount_;     ///< per node; nonzero only for touched_ members
  std::vector<std::size_t> inboxStart_;     ///< arena offset; valid when inboxCount_ > 0
  std::vector<std::size_t> inboxCursor_;    ///< scatter cursor during flush()
  std::vector<NodeId> touched_;

  // Sharding state (allocated only at S > 1).
  unsigned shards_ = 1;
  NodeId chunk_ = 0;                        ///< shard width: ceil(n / S)
  std::unique_ptr<ThreadPool> pool_;        ///< S workers, owned by the engine
  std::vector<Lane> lanes_;                 ///< per-shard recv-phase outboxes
  std::vector<std::vector<NodeId>> perShardTouched_;
  std::vector<PendingSend*> flushOrder_;    ///< canonical send order for the next flush
  std::vector<std::size_t> runCursor_;      ///< merge: next run length per shard
  std::vector<std::size_t> sendCursor_;     ///< merge: next lane send per shard

  // Tracing (observational only — read from committed state, never fed back).
  // trace_ is set for the duration of a runWindow call so the sharded helpers
  // know whether to read the clock; the ns accumulators are per-round scratch.
  obs::TrialTrace* trace_ = nullptr;
  std::int64_t traceRecvNs_ = 0;
  std::int64_t traceMergeNs_ = 0;
  std::int64_t traceScatterNs_ = 0;
};

}  // namespace bzc
