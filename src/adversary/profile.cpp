#include "adversary/profile.hpp"

#include "support/require.hpp"

namespace bzc {

const char* walkAttackKindName(WalkAttackKind kind) {
  switch (kind) {
    case WalkAttackKind::AdaptiveMinority: return "adaptive-minority";
    case WalkAttackKind::TokenDropper: return "token-dropper";
    case WalkAttackKind::AnswerFlipper: return "answer-flipper";
    case WalkAttackKind::PathTamperer: return "path-tamperer";
    case WalkAttackKind::VictimHunter: return "victim-hunter";
  }
  BZC_REQUIRE(false, "unknown walk attack kind");
  return "?";
}

namespace {

AgreementAttackProfile base(WalkAttackKind kind) {
  AgreementAttackProfile profile;
  profile.kind = kind;
  profile.name = walkAttackKindName(kind);
  return profile;
}

}  // namespace

AgreementAttackProfile AgreementAttackProfile::adaptiveMinority() {
  return base(WalkAttackKind::AdaptiveMinority);
}

AgreementAttackProfile AgreementAttackProfile::dropper(double probability) {
  AgreementAttackProfile profile = base(WalkAttackKind::TokenDropper);
  profile.dropProbability = probability;
  return profile;
}

AgreementAttackProfile AgreementAttackProfile::flipper(double probability) {
  AgreementAttackProfile profile = base(WalkAttackKind::AnswerFlipper);
  profile.flipProbability = probability;
  return profile;
}

AgreementAttackProfile AgreementAttackProfile::tamperer(double probability) {
  AgreementAttackProfile profile = base(WalkAttackKind::PathTamperer);
  profile.tamperProbability = probability;
  return profile;
}

AgreementAttackProfile AgreementAttackProfile::hunter(std::uint32_t radius) {
  AgreementAttackProfile profile = base(WalkAttackKind::VictimHunter);
  profile.huntRadius = radius;
  return profile;
}

}  // namespace bzc
