// The walk-adversary strategy gallery.
//
// Concrete WalkAdversary behaviours live in strategies.cpp; callers go
// through the profile-driven factory (the declarative path) or the named
// constructors (tests that want a specific strategy object). Every strategy
// is deterministic given ctx.rng, so trials stay pure functions of
// (masterSeed, index) — the ExperimentRunner invariance the runtime tests
// pin at 1/2/8 threads.
#pragma once

#include <memory>

#include "adversary/profile.hpp"
#include "adversary/walk_adversary.hpp"

namespace bzc {

/// Materialises one per-trial strategy instance from a profile. `victim`
/// anchors VictimHunter targeting (the declarative path passes the
/// ScenarioSpec placement victim). Strategies needing per-trial
/// precomputation (BFS fields) do it here, never inside the round loop.
[[nodiscard]] std::unique_ptr<WalkAdversary> makeWalkAdversary(
    const AgreementAttackProfile& profile, const Graph& g, const ByzantineSet& byz,
    NodeId victim);

/// Named constructors for direct (non-declarative) use.
[[nodiscard]] std::unique_ptr<WalkAdversary> makeAdaptiveMinorityAdversary();
[[nodiscard]] std::unique_ptr<WalkAdversary> makeTokenDropperAdversary(double dropProbability);
[[nodiscard]] std::unique_ptr<WalkAdversary> makeAnswerFlipperAdversary(double flipProbability);
[[nodiscard]] std::unique_ptr<WalkAdversary> makePathTampererAdversary(double tamperProbability);
[[nodiscard]] std::unique_ptr<WalkAdversary> makeVictimHunterAdversary(const Graph& g,
                                                                       NodeId victim,
                                                                       std::uint32_t radius);

}  // namespace bzc
