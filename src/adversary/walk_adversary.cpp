#include "adversary/walk_adversary.hpp"

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

double coalitionScore(const Graph& g, const ByzantineSet& byz, NodeId victim,
                      std::uint32_t radius, const std::vector<std::uint8_t>& finalValues,
                      int initialMajority) {
  BZC_REQUIRE(victim < g.numNodes(), "victim out of range");
  BZC_REQUIRE(finalValues.size() == g.numNodes(), "final value vector size mismatch");
  const std::vector<std::uint32_t> dist = bfsDistances(g, victim);
  std::size_t near = 0;
  std::size_t flipped = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (byz.contains(u) || dist[u] > radius) continue;
    ++near;
    if (finalValues[u] != static_cast<std::uint8_t>(initialMajority)) ++flipped;
  }
  return near > 0 ? static_cast<double>(flipped) / static_cast<double>(near) : 0.0;
}

}  // namespace bzc
