#include "adversary/strategies.hpp"

#include <utility>
#include <vector>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

namespace {

/// Strength knobs are probabilities; p >= 1 must not consume randomness so
/// that full-strength attacks (the defaults) stay draw-free like the
/// hardcoded adversary they replaced.
[[nodiscard]] bool strikes(double probability, Rng& rng) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  return rng.bernoulli(probability);
}

/// The pre-refactor behaviour, bit-identical (pinned by the agreement and
/// pipeline golden fingerprints): every traversing query is tainted, and
/// tainted tokens answer the live honest minority bit at walk end.
class AdaptiveMinority final : public WalkAdversary {
 public:
  TokenAction onQuery(const WalkContext& ctx, WalkToken& token) override {
    (void)ctx;
    token.compromised = true;
    return TokenAction::forward();
  }
};

/// Silently discards traversing queries: the origin's sample slot goes
/// unanswered and falls back to its own bit — starving the mixing the
/// majority dynamics relies on instead of feeding it lies.
class TokenDropper final : public WalkAdversary {
 public:
  explicit TokenDropper(double dropProbability) : dropProbability_(dropProbability) {}

  TokenAction onQuery(const WalkContext& ctx, WalkToken& token) override {
    (void)token;
    if (strikes(dropProbability_, ctx.rng)) return TokenAction::drop();
    return TokenAction::forward();
  }

 private:
  double dropProbability_;
};

/// Relays queries honestly (outbound traffic looks clean) and inverts the
/// carried bit on the return path. When the walk ends on the adversary
/// itself it answers the flip of the best guess of truth — the honest
/// minority — via the default forgeAnswer.
class AnswerFlipper final : public WalkAdversary {
 public:
  explicit AnswerFlipper(double flipProbability) : flipProbability_(flipProbability) {}

  TokenAction onAnswerRelay(const WalkContext& ctx, WalkToken& token) override {
    if (strikes(flipProbability_, ctx.rng)) {
      token.answer ^= 1;
      token.compromised = true;
      ++ctx.stats.flippedAnswers;
    }
    return TokenAction::forward();
  }

 private:
  double flipProbability_;
};

/// Rewrites the reverse path on the answer leg: the remaining route is
/// discarded and the answer is shunted to a uniformly random neighbour,
/// where it arrives with no route left and (unless that neighbour happens to
/// be the origin) is discarded as a stray. The origin's slot goes
/// unanswered; the answer bit itself is never touched — so a misroute does
/// NOT mark the token compromised (a lucky self-delivery still carries the
/// true bit), it only counts in misroutedAnswers.
class PathTamperer final : public WalkAdversary {
 public:
  explicit PathTamperer(double tamperProbability) : tamperProbability_(tamperProbability) {}

  TokenAction onAnswerRelay(const WalkContext& ctx, WalkToken& token) override {
    if (!strikes(tamperProbability_, ctx.rng)) return TokenAction::forward();
    (void)token;
    ++ctx.stats.misroutedAnswers;
    const auto nbrs = ctx.graph.neighbors(ctx.node);
    BZC_ASSERT(!nbrs.empty());  // the token reached ctx.node over an edge
    return TokenAction::redirect(nbrs[ctx.rng.uniform(nbrs.size())]);
  }

 private:
  double tamperProbability_;
};

/// Coalition strategy for the Remark 1 scenario: only samples whose origin
/// lies within `radius` of the victim are attacked, and every coalition
/// member pushes the same bit — locked on the blackboard at first contact —
/// for the whole trial. Composed with Placement::Surround the moat taints
/// every sample leaving the victim's neighbourhood while the rest of the
/// network sees an almost-honest adversary.
class VictimHunter final : public WalkAdversary {
 public:
  VictimHunter(const Graph& g, NodeId victim, std::uint32_t radius)
      : distToVictim_(bfsDistances(g, victim)), radius_(radius) {}

  TokenAction onQuery(const WalkContext& ctx, WalkToken& token) override {
    if (distToVictim_[token.origin] > radius_) return TokenAction::forward();
    ctx.coalition.agreeOn(honestMinorityBit(ctx));  // first writer wins
    if (!token.compromised) {
      token.compromised = true;
      ctx.coalition.recordHit();
    }
    return TokenAction::forward();
  }

  std::uint8_t forgeAnswer(const WalkContext& ctx, const WalkToken& token) override {
    if (token.compromised && ctx.coalition.hasAgreedBit()) return ctx.coalition.agreedBit();
    // Untargeted token that happened to end on a coalition node: blend in by
    // reporting the honest majority (maximally inconspicuous).
    return static_cast<std::uint8_t>(1 - honestMinorityBit(ctx));
  }

 private:
  std::vector<std::uint32_t> distToVictim_;
  std::uint32_t radius_;
};

}  // namespace

std::unique_ptr<WalkAdversary> makeAdaptiveMinorityAdversary() {
  return std::make_unique<AdaptiveMinority>();
}

std::unique_ptr<WalkAdversary> makeTokenDropperAdversary(double dropProbability) {
  return std::make_unique<TokenDropper>(dropProbability);
}

std::unique_ptr<WalkAdversary> makeAnswerFlipperAdversary(double flipProbability) {
  return std::make_unique<AnswerFlipper>(flipProbability);
}

std::unique_ptr<WalkAdversary> makePathTampererAdversary(double tamperProbability) {
  return std::make_unique<PathTamperer>(tamperProbability);
}

std::unique_ptr<WalkAdversary> makeVictimHunterAdversary(const Graph& g, NodeId victim,
                                                         std::uint32_t radius) {
  BZC_REQUIRE(victim < g.numNodes(), "victim out of range");
  return std::make_unique<VictimHunter>(g, victim, radius);
}

std::unique_ptr<WalkAdversary> makeWalkAdversary(const AgreementAttackProfile& profile,
                                                 const Graph& g, const ByzantineSet& byz,
                                                 NodeId victim) {
  (void)byz;  // membership checks stay in the protocol; reserved for future strategies
  switch (profile.kind) {
    case WalkAttackKind::AdaptiveMinority: return makeAdaptiveMinorityAdversary();
    case WalkAttackKind::TokenDropper: return makeTokenDropperAdversary(profile.dropProbability);
    case WalkAttackKind::AnswerFlipper: return makeAnswerFlipperAdversary(profile.flipProbability);
    case WalkAttackKind::PathTamperer:
      return makePathTampererAdversary(profile.tamperProbability);
    case WalkAttackKind::VictimHunter:
      return makeVictimHunterAdversary(g, victim, profile.huntRadius);
  }
  BZC_REQUIRE(false, "unknown walk attack kind");
  return nullptr;
}

}  // namespace bzc
