// The beacon-adversary strategy gallery.
//
// Concrete BeaconAdversary behaviours live in strategies.cpp; callers go
// through the profile-driven factory (the declarative path) or the named
// constructors (tests that want a specific strategy object). The six
// flag-era presets (none, flooder, targeted flooder, tamperer, suppressor,
// continue spammer, full) reproduce the legacy BeaconAttackProfile semantics
// bit-identically — every fakeRng draw happens at the same call site with
// the same pattern — pinned by the beacon golden fingerprints and the
// paired-run tests. AdaptiveFlooder and PrefixGrafter are behaviours the
// flag bundle cannot express.
#pragma once

#include <memory>

#include "adversary/beacon/beacon_adversary.hpp"
#include "adversary/beacon/profile.hpp"
#include "graph/graph.hpp"
#include "sim/byzantine.hpp"

namespace bzc {

/// Materialises one per-trial strategy instance from a profile. Strategies
/// needing per-trial precomputation (the targeted flooder's BFS field) do it
/// here, never inside the round loop.
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeBeaconAdversary(
    const BeaconAdversaryProfile& profile, const Graph& g, const ByzantineSet& byz);

/// Named constructors for direct (non-declarative) use.
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeNullBeaconAdversary();
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeBeaconFlooderAdversary(
    std::uint32_t prefixLength);
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeTargetedFlooderAdversary(
    const Graph& g, std::uint32_t victim, std::uint32_t radius, std::uint32_t prefixLength);
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeBeaconTampererAdversary(
    std::uint32_t prefixLength);
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeBeaconSuppressorAdversary();
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeContinueSpammerAdversary();
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeFullBeaconAdversary(
    std::uint32_t prefixLength);
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeAdaptiveFlooderAdversary(
    std::uint64_t pressureTolerance, std::uint32_t prefixLength);
[[nodiscard]] std::unique_ptr<BeaconAdversary> makePrefixGrafterAdversary(
    std::uint32_t graftLength);

}  // namespace bzc
