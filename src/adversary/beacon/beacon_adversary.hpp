// Pluggable Byzantine behaviour for the counting stage (Algorithm 2).
//
// The agreement stage got a strategy-driven adversary subsystem in
// src/adversary/ (WalkAdversary, DESIGN.md §7); the counting stage still
// expressed Byzantine behaviour as a bundle of booleans branched on inside
// the beacon protocol loop. This mirror subsystem factors those branches out:
// the protocol calls a BeaconAdversary strategy at the four points where a
// Byzantine node can act — authoring a beacon at the iteration boundary
// (the Lines 5-11 slot), disposing of beacon traffic it would relay,
// originating continue messages, and disposing of continue traffic — and the
// strategy decides what happens. Adding a counting-stage scenario is one
// strategy class (src/adversary/beacon/strategies.cpp) plus a profile
// constructor; no protocol edit. See DESIGN.md §9.
#pragma once

#include <cstdint>

#include "adversary/walk_adversary.hpp"  // Coalition: the cross-stage blackboard
#include "counting/beacon/path.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace bzc {

/// A beacon message as the adversary sees it: origin ID plus the path *as
/// sent* (the receiver appends the sender's unfakeable ID). The path lives in
/// the iteration's BeaconPathArena, exactly like the protocol's own payloads,
/// so strategies can build on received prefixes at O(1) per appended ID.
struct BeaconFrame {
  PublicId origin = kNoPublicId;
  BeaconPathRef path = kNoBeaconPath;
  std::uint32_t len = 0;       ///< number of IDs on `path`
  NodeId forgeNode = kNoNode;  ///< provenance: Byzantine author/tamperer of this
                               ///< payload (kNoNode = honest-authored). Simulation
                               ///< bookkeeping with no wire cost — stamped by the
                               ///< protocol at the forge/Replace boundaries, copied
                               ///< along honest relays, resolved into blacklist
                               ///< blame edges at Line 32 (DESIGN.md §14)
};

/// The delivery a transit hook gets to inspect: the first beacon in the
/// Byzantine node's inbox (the one the legacy flag semantics relayed), with
/// the sender's true public ID — the unfakeable part a receiver would append.
struct BeaconSighting {
  NodeId sender = kNoNode;
  PublicId senderId = kNoPublicId;
  BeaconFrame frame;
};

/// Disposition of beacon traffic a Byzantine node just received.
struct BeaconTransit {
  enum class Op : std::uint8_t {
    Forward,  ///< relay honestly: the protocol appends the sender's true ID
              ///< and rebroadcasts, indistinguishable from an honest relay
    Drop,     ///< silently discard (suppression)
    Replace,  ///< broadcast `replacement` instead (tampering)
  };
  Op op = Op::Forward;
  BeaconFrame replacement{};  ///< valid when op == Replace

  [[nodiscard]] static BeaconTransit forward() noexcept { return {}; }
  [[nodiscard]] static BeaconTransit drop() noexcept { return {Op::Drop, {}}; }
  [[nodiscard]] static BeaconTransit replace(const BeaconFrame& frame) noexcept {
    return {Op::Replace, frame};
  }
};

/// What the counting-stage adversary did. Protocol-observed events (forges,
/// suppressed/tampered relays, continue spam) are counted by the protocol
/// loop; strategy-internal events (grafted honest IDs, pressure backoffs) by
/// the strategies themselves. Like AdversaryStats these are diagnostics —
/// deliberately outside fingerprint(CountingResult), so the pinned beacon
/// goldens stay valid.
struct BeaconAdversaryStats {
  std::uint64_t beaconsForged = 0;        ///< beacons the adversary authored
  std::uint64_t relaysSuppressed = 0;     ///< beacon deliveries dropped in transit
  std::uint64_t relaysTampered = 0;       ///< relays replaced with authored beacons
  std::uint64_t continuesSuppressed = 0;  ///< continue relays withheld
  std::uint64_t continuesSpammed = 0;     ///< continue messages originated
  std::uint64_t prefixGrafts = 0;         ///< honest IDs spliced into forged paths
  std::uint64_t pressureBackoffs = 0;     ///< phases an adaptive forger went quiet in

  /// Folds a per-shard sink into this one (sums are shard-order invariant).
  void accumulate(const BeaconAdversaryStats& o) noexcept {
    beaconsForged += o.beaconsForged;
    relaysSuppressed += o.relaysSuppressed;
    relaysTampered += o.relaysTampered;
    continuesSuppressed += o.continuesSuppressed;
    continuesSpammed += o.continuesSpammed;
    prefixGrafts += o.prefixGrafts;
    pressureBackoffs += o.pressureBackoffs;
  }
};

/// Aggregated honest state a strategy may observe. The model is
/// full-information (§2: the adversary knows everything), so exposing the
/// protocol's own running counters is fair game; they are pure functions of
/// the run, keeping trials deterministic.
struct BeaconObservables {
  std::uint32_t phase = 0;
  std::uint32_t iteration = 0;             ///< within the phase, 1-based
  std::size_t undecidedHonest = 0;         ///< honest nodes still without a decision
  std::uint64_t blacklistInsertions = 0;   ///< Line 32 insertions so far (run total)
  std::uint64_t honestBeacons = 0;         ///< honest activations so far (run total)
};

/// Everything a strategy may touch when acting: the acting node, topology,
/// the iteration's path arena and fake-ID stream, the cross-stage Coalition
/// blackboard shared with the walk adversary (src/adversary/), the stats
/// sink and the observables above. Hooks run inside the protocol loop, so
/// any randomness must come from ctx.fakeRng to keep trials pure functions
/// of (masterSeed, index).
struct BeaconContext {
  NodeId node = kNoNode;  ///< Byzantine node acting
  Round round = 0;        ///< window round for transit hooks; 0 at boundaries
  const Graph& graph;
  BeaconPathArena::Lane arena;  ///< append lane for the acting shard (shard 0
                                ///< in serial contexts); reads go through the
                                ///< frames' refs, which work across shards
  Coalition& coalition;
  Rng& fakeRng;  ///< fabricated-ID stream (the legacy makeForgedBeacon stream)
  BeaconAdversaryStats& stats;
  const BeaconObservables& obs;
};

/// Authors a beacon with a fabricated origin and `prefixLen` fabricated path
/// IDs — the exact draw pattern (origin first, then prefix entries) of the
/// legacy flag path, kept in one place so flag-era scenarios stay
/// bit-identical through the gallery.
[[nodiscard]] BeaconFrame forgeFreshBeacon(const BeaconContext& ctx, std::uint32_t prefixLen);

/// Strategy interface. One instance is created per trial and drives every
/// Byzantine node (ctx.node names the actor), so strategies may hold
/// per-trial state (BFS distance fields, per-phase pressure baselines).
/// Defaults are the honest-looking behaviour: relay everything, author
/// nothing — BeaconAdversary{} is the "none" profile.
class BeaconAdversary {
 public:
  virtual ~BeaconAdversary() = default;

  /// Iteration boundary (the Lines 5-11 activation slot): Byzantine ctx.node
  /// may author one beacon to broadcast into the opening window. Return true
  /// with `forged` filled to send, false to stay silent this iteration.
  virtual bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) {
    (void)ctx;
    (void)forged;
    return false;
  }

  /// Byzantine ctx.node received beacon traffic with relay rounds left in
  /// the window. `first` is the delivery the flag semantics would relay.
  virtual BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) {
    (void)ctx;
    (void)first;
    return BeaconTransit::forward();
  }

  /// Whether Byzantine ctx.node originates a continue message this iteration
  /// (the Lines 34-41 slot) — keeping decided honest nodes from quiescing.
  virtual bool spamContinue(const BeaconContext& ctx) {
    (void)ctx;
    return false;
  }

  /// Whether Byzantine ctx.node relays continue traffic it received.
  virtual bool onContinueRelay(const BeaconContext& ctx) {
    (void)ctx;
    return true;
  }
};

}  // namespace bzc
