#include "adversary/beacon/profile.hpp"

#include "support/require.hpp"

namespace bzc {

const char* beaconAttackKindName(BeaconAttackKind kind) {
  switch (kind) {
    case BeaconAttackKind::None: return "none";
    case BeaconAttackKind::Flooder: return "flooder";
    case BeaconAttackKind::TargetedFlooder: return "targeted-flooder";
    case BeaconAttackKind::Tamperer: return "tamperer";
    case BeaconAttackKind::Suppressor: return "suppressor";
    case BeaconAttackKind::ContinueSpammer: return "continue-spammer";
    case BeaconAttackKind::Full: return "full";
    case BeaconAttackKind::AdaptiveFlooder: return "adaptive-flooder";
    case BeaconAttackKind::PrefixGrafter: return "prefix-grafter";
  }
  BZC_REQUIRE(false, "unknown beacon attack kind");
  return "?";
}

namespace {

BeaconAdversaryProfile base(BeaconAttackKind kind) {
  BeaconAdversaryProfile profile;
  profile.kind = kind;
  profile.name = beaconAttackKindName(kind);
  return profile;
}

}  // namespace

BeaconAdversaryProfile BeaconAdversaryProfile::none() { return base(BeaconAttackKind::None); }

BeaconAdversaryProfile BeaconAdversaryProfile::flooder(std::uint32_t prefixLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::Flooder);
  profile.fakePrefixLength = prefixLength;
  return profile;
}

BeaconAdversaryProfile BeaconAdversaryProfile::targetedFlooder(std::uint32_t victim,
                                                               std::uint32_t radius,
                                                               std::uint32_t prefixLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::TargetedFlooder);
  profile.victim = victim;
  profile.forgeRadius = radius;
  profile.fakePrefixLength = prefixLength;
  return profile;
}

BeaconAdversaryProfile BeaconAdversaryProfile::tamperer(std::uint32_t prefixLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::Tamperer);
  profile.fakePrefixLength = prefixLength;
  return profile;
}

BeaconAdversaryProfile BeaconAdversaryProfile::suppressor() {
  return base(BeaconAttackKind::Suppressor);
}

BeaconAdversaryProfile BeaconAdversaryProfile::continueSpammer() {
  return base(BeaconAttackKind::ContinueSpammer);
}

BeaconAdversaryProfile BeaconAdversaryProfile::full(std::uint32_t prefixLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::Full);
  profile.fakePrefixLength = prefixLength;
  return profile;
}

BeaconAdversaryProfile BeaconAdversaryProfile::adaptiveFlooder(std::uint64_t tolerance,
                                                               std::uint32_t prefixLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::AdaptiveFlooder);
  profile.pressureTolerance = tolerance;
  profile.fakePrefixLength = prefixLength;
  return profile;
}

BeaconAdversaryProfile BeaconAdversaryProfile::prefixGrafter(std::uint32_t graftLength) {
  BeaconAdversaryProfile profile = base(BeaconAttackKind::PrefixGrafter);
  profile.graftLength = graftLength;
  return profile;
}

}  // namespace bzc
