#include "adversary/beacon/strategies.hpp"

#include <utility>
#include <vector>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

BeaconFrame forgeFreshBeacon(const BeaconContext& ctx, std::uint32_t prefixLen) {
  // Draw pattern pinned by the flag-era goldens: origin first, then the
  // prefix entries in path order.
  BeaconFrame forged;
  forged.origin = ctx.fakeRng.next();
  for (std::uint32_t k = 0; k < prefixLen; ++k) {
    forged.path = ctx.arena.append(forged.path, ctx.fakeRng.next());
  }
  forged.len = prefixLen;
  return forged;
}

namespace {

/// §1.3's motivating attack: a fresh forged beacon from every Byzantine node
/// in every iteration — the scenario blacklisting exists to stop.
class BeaconFlooder final : public BeaconAdversary {
 public:
  explicit BeaconFlooder(std::uint32_t prefixLength) : prefixLength_(prefixLength) {}

  bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) override {
    forged = forgeFreshBeacon(ctx, prefixLength_);
    return true;
  }

 private:
  std::uint32_t prefixLength_;
};

/// Concentrates the forging budget on one neighbourhood: only coalition
/// members within `radius` hops of the victim forge. Targeted forges are
/// tallied on the cross-stage blackboard, so a pipeline scenario can score
/// how much counting-stage budget actually landed near the victim.
class TargetedBeaconFlooder final : public BeaconAdversary {
 public:
  TargetedBeaconFlooder(const Graph& g, NodeId victim, std::uint32_t radius,
                        std::uint32_t prefixLength)
      : distToVictim_(bfsDistances(g, victim)), radius_(radius), prefixLength_(prefixLength) {}

  bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) override {
    if (distToVictim_[ctx.node] > radius_) return false;
    forged = forgeFreshBeacon(ctx, prefixLength_);
    ctx.coalition.recordHit();
    return true;
  }

 private:
  std::vector<std::uint32_t> distToVictim_;
  std::uint32_t radius_;
  std::uint32_t prefixLength_;
};

/// Lemma 11's "tampered prefix" case: relays are replaced with wholly
/// fabricated beacons, so downstream blacklists fill with IDs that never
/// recur and the tamperer's own ID (appended by *its* receivers, unfakeable)
/// eventually lands in the blacklisted prefix instead.
class BeaconTamperer final : public BeaconAdversary {
 public:
  explicit BeaconTamperer(std::uint32_t prefixLength) : prefixLength_(prefixLength) {}

  BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) override {
    (void)first;
    return BeaconTransit::replace(forgeFreshBeacon(ctx, prefixLength_));
  }

 private:
  std::uint32_t prefixLength_;
};

/// Drops all beacon and continue traffic: pushes neighbours toward *early*
/// decisions (small estimates) and starves re-entry signalling.
class BeaconSuppressor final : public BeaconAdversary {
 public:
  BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) override {
    (void)ctx;
    (void)first;
    return BeaconTransit::drop();
  }

  bool onContinueRelay(const BeaconContext& ctx) override {
    (void)ctx;
    return false;
  }
};

/// Originates continue messages forever so decided nodes never quiesce
/// (stresses the exit rule; decisions stay correct — cf. Remark 3).
class ContinueSpammer final : public BeaconAdversary {
 public:
  bool spamContinue(const BeaconContext& ctx) override {
    (void)ctx;
    return true;
  }
};

/// Flooder + tamperer + continue spam, the legacy full() bundle.
class FullBeaconAdversary final : public BeaconAdversary {
 public:
  explicit FullBeaconAdversary(std::uint32_t prefixLength) : prefixLength_(prefixLength) {}

  bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) override {
    forged = forgeFreshBeacon(ctx, prefixLength_);
    return true;
  }

  BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) override {
    (void)first;
    return BeaconTransit::replace(forgeFreshBeacon(ctx, prefixLength_));
  }

  bool spamContinue(const BeaconContext& ctx) override {
    (void)ctx;
    return true;
  }

 private:
  std::uint32_t prefixLength_;
};

/// Flooder that watches the defence it is up against. Blacklists reset at
/// every phase boundary (Line 2), so the coalition forges at full rate while
/// a phase is young and goes quiet for the *rest of the phase* once the
/// observed Line 32 insertion count since the phase began crosses the
/// tolerance — saving its forging for the windows where blacklists are
/// empty. With an unreachable tolerance this is bit-identical to the plain
/// flooder (same draws in the same order), which the paired tests pin; the
/// flag bundle cannot express the feedback loop at any setting.
class AdaptiveBeaconFlooder final : public BeaconAdversary {
 public:
  AdaptiveBeaconFlooder(std::uint64_t pressureTolerance, std::uint32_t prefixLength)
      : tolerance_(pressureTolerance), prefixLength_(prefixLength) {}

  bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) override {
    if (ctx.obs.phase != phase_) {
      // Phase boundary: blacklists were just reset, pressure restarts at 0.
      phase_ = ctx.obs.phase;
      baselineInsertions_ = ctx.obs.blacklistInsertions;
      backedOff_ = false;
    }
    if (!backedOff_ && ctx.obs.blacklistInsertions - baselineInsertions_ > tolerance_) {
      backedOff_ = true;
      ++ctx.stats.pressureBackoffs;
    }
    if (backedOff_) return false;
    forged = forgeFreshBeacon(ctx, prefixLength_);
    return true;
  }

 private:
  std::uint64_t tolerance_;
  std::uint32_t prefixLength_;
  std::uint32_t phase_ = 0;  ///< phases start at BeaconParams::firstPhase >= 1
  std::uint64_t baselineInsertions_ = 0;
  bool backedOff_ = false;
};

/// Tamperer variant the flag bundle cannot express: instead of a wholly
/// fabricated path it keeps the REAL received prefix, appends the sender's
/// true ID exactly as an honest relay would, and only then grafts a short
/// fabricated tail under a fabricated origin. Receivers that adopt the
/// beacon blacklist its prefix (Line 32) — which is now made of honest IDs,
/// so the defence poisons itself instead of filling with one-shot noise.
class PrefixGraftingTamperer final : public BeaconAdversary {
 public:
  explicit PrefixGraftingTamperer(std::uint32_t graftLength) : graftLength_(graftLength) {}

  BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) override {
    BeaconFrame grafted;
    grafted.origin = ctx.fakeRng.next();
    grafted.path = ctx.arena.append(first.frame.path, first.senderId);
    grafted.len = first.frame.len + 1;
    for (std::uint32_t k = 0; k < graftLength_; ++k) {
      grafted.path = ctx.arena.append(grafted.path, ctx.fakeRng.next());
      ++grafted.len;
    }
    ctx.stats.prefixGrafts += first.frame.len + 1;  // real IDs carried into the graft
    return BeaconTransit::replace(grafted);
  }

 private:
  std::uint32_t graftLength_;
};

}  // namespace

std::unique_ptr<BeaconAdversary> makeNullBeaconAdversary() {
  return std::make_unique<BeaconAdversary>();
}

std::unique_ptr<BeaconAdversary> makeBeaconFlooderAdversary(std::uint32_t prefixLength) {
  return std::make_unique<BeaconFlooder>(prefixLength);
}

std::unique_ptr<BeaconAdversary> makeTargetedFlooderAdversary(const Graph& g,
                                                              std::uint32_t victim,
                                                              std::uint32_t radius,
                                                              std::uint32_t prefixLength) {
  BZC_REQUIRE(victim != BeaconAdversaryProfile::kScenarioVictim,
              "unanchored targeted-flooder victim; name a node or resolve the profile "
              "through anchorBeaconProfile / the ScenarioSpec path");
  // Legacy semantics: the configured victim wraps into range (attack.victim % n).
  const NodeId anchor = static_cast<NodeId>(victim % g.numNodes());
  return std::make_unique<TargetedBeaconFlooder>(g, anchor, radius, prefixLength);
}

std::unique_ptr<BeaconAdversary> makeBeaconTampererAdversary(std::uint32_t prefixLength) {
  return std::make_unique<BeaconTamperer>(prefixLength);
}

std::unique_ptr<BeaconAdversary> makeBeaconSuppressorAdversary() {
  return std::make_unique<BeaconSuppressor>();
}

std::unique_ptr<BeaconAdversary> makeContinueSpammerAdversary() {
  return std::make_unique<ContinueSpammer>();
}

std::unique_ptr<BeaconAdversary> makeFullBeaconAdversary(std::uint32_t prefixLength) {
  return std::make_unique<FullBeaconAdversary>(prefixLength);
}

std::unique_ptr<BeaconAdversary> makeAdaptiveFlooderAdversary(std::uint64_t pressureTolerance,
                                                              std::uint32_t prefixLength) {
  return std::make_unique<AdaptiveBeaconFlooder>(pressureTolerance, prefixLength);
}

std::unique_ptr<BeaconAdversary> makePrefixGrafterAdversary(std::uint32_t graftLength) {
  return std::make_unique<PrefixGraftingTamperer>(graftLength);
}

std::unique_ptr<BeaconAdversary> makeBeaconAdversary(const BeaconAdversaryProfile& profile,
                                                     const Graph& g, const ByzantineSet& byz) {
  (void)byz;  // membership checks stay in the protocol; reserved for future strategies
  switch (profile.kind) {
    case BeaconAttackKind::None: return makeNullBeaconAdversary();
    case BeaconAttackKind::Flooder: return makeBeaconFlooderAdversary(profile.fakePrefixLength);
    case BeaconAttackKind::TargetedFlooder:
      return makeTargetedFlooderAdversary(g, profile.victim, profile.forgeRadius,
                                          profile.fakePrefixLength);
    case BeaconAttackKind::Tamperer: return makeBeaconTampererAdversary(profile.fakePrefixLength);
    case BeaconAttackKind::Suppressor: return makeBeaconSuppressorAdversary();
    case BeaconAttackKind::ContinueSpammer: return makeContinueSpammerAdversary();
    case BeaconAttackKind::Full: return makeFullBeaconAdversary(profile.fakePrefixLength);
    case BeaconAttackKind::AdaptiveFlooder:
      return makeAdaptiveFlooderAdversary(profile.pressureTolerance, profile.fakePrefixLength);
    case BeaconAttackKind::PrefixGrafter:
      return makePrefixGrafterAdversary(profile.graftLength);
  }
  BZC_REQUIRE(false, "unknown beacon attack kind");
  return nullptr;
}

}  // namespace bzc
