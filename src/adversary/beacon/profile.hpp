// Declarative beacon-adversary selection.
//
// Mirrors AgreementAttackProfile for the counting stage: a ScenarioSpec (or
// any caller of the beacon protocol) names an attack by kind plus strength
// knobs, and the per-trial strategy instance is materialised by
// makeBeaconAdversary (src/adversary/beacon/strategies.hpp). Only the knobs
// of the selected kind are read. The legacy flag bundle
// (counting/beacon/attacks.hpp) resolves into these profiles via
// BeaconAttackProfile::toAdversaryProfile(), pinned bit-identical by the
// golden fingerprints and the paired-run tests.
#pragma once

#include <cstdint>
#include <string>

#include "support/types.hpp"

namespace bzc {

enum class BeaconAttackKind : std::uint8_t {
  None,             ///< relay everything honestly, author nothing
  Flooder,          ///< forge a fresh beacon at every Byzantine node, every iteration
  TargetedFlooder,  ///< forge only within forgeRadius hops of the victim
  Tamperer,         ///< replace relayed beacons with freshly fabricated ones
  Suppressor,       ///< drop all beacon and continue traffic
  ContinueSpammer,  ///< originate continue messages forever
  Full,             ///< flooder + tamperer + continue spam
  AdaptiveFlooder,  ///< flooder that goes quiet for the rest of a phase once
                    ///< observed blacklist pressure crosses a tolerance
  PrefixGrafter,    ///< tamperer that splices the real honest prefix (plus the
                    ///< sender's true ID) under a fabricated origin, so
                    ///< blacklists fill with honest IDs instead of noise
};

[[nodiscard]] const char* beaconAttackKindName(BeaconAttackKind kind);

struct BeaconAdversaryProfile {
  /// Victim sentinel: "anchor to the scenario's placement victim". Resolved
  /// by anchorBeaconProfile (the declarative/plan paths); the strategy
  /// factory rejects it, so a profile meant for direct use must name a
  /// concrete node (0 is a valid, targetable node).
  static constexpr std::uint32_t kScenarioVictim = 0xffffffffu;

  std::string name = "none";
  BeaconAttackKind kind = BeaconAttackKind::None;

  std::uint32_t fakePrefixLength = 2;     ///< fabricated IDs on authored paths
  std::uint32_t forgeRadius = 4;          ///< TargetedFlooder: hops from victim
  std::uint32_t victim = kScenarioVictim; ///< TargetedFlooder: focus node (mod n)
  std::uint64_t pressureTolerance = 64;   ///< AdaptiveFlooder: blacklist insertions
                                          ///< tolerated per phase before backing off
  std::uint32_t graftLength = 2;          ///< PrefixGrafter: fabricated tail IDs

  [[nodiscard]] static BeaconAdversaryProfile none();
  [[nodiscard]] static BeaconAdversaryProfile flooder(std::uint32_t prefixLength = 2);
  [[nodiscard]] static BeaconAdversaryProfile targetedFlooder(std::uint32_t victim,
                                                              std::uint32_t radius = 4,
                                                              std::uint32_t prefixLength = 2);
  [[nodiscard]] static BeaconAdversaryProfile tamperer(std::uint32_t prefixLength = 2);
  [[nodiscard]] static BeaconAdversaryProfile suppressor();
  [[nodiscard]] static BeaconAdversaryProfile continueSpammer();
  [[nodiscard]] static BeaconAdversaryProfile full(std::uint32_t prefixLength = 2);
  [[nodiscard]] static BeaconAdversaryProfile adaptiveFlooder(std::uint64_t tolerance = 64,
                                                              std::uint32_t prefixLength = 2);
  [[nodiscard]] static BeaconAdversaryProfile prefixGrafter(std::uint32_t graftLength = 2);
};

}  // namespace bzc
