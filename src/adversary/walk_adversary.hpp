// Pluggable Byzantine behaviour for walk-based protocols.
//
// The paper's resilience claims quantify over *arbitrarily behaving*
// Byzantine nodes, but the agreement stage used to realise exactly one
// behaviour — an adaptive minority answerer hardcoded in the protocol loop.
// This subsystem factors the behaviour out: the protocol's SyncEngine recv
// handler calls a WalkAdversary strategy whenever a Byzantine node holds a
// walk token (query leg, answer leg, or as the walk endpoint), and the
// strategy decides what happens to it — forward, drop, redirect, mutate the
// carried bit, or taint the token so its eventual answer is forged. Adding a
// new Byzantine behaviour is one strategy class (src/adversary/strategies.cpp)
// plus a profile constructor; no protocol edit. See DESIGN.md §7.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "adversary/token_arena.hpp"
#include "graph/graph.hpp"
#include "sim/byzantine.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace bzc {

/// One sample query in flight (the agreement protocol's message payload).
/// Outbound it hops one uniform edge per round, recording the reverse path in
/// the trial's PathArena; answering it carries the sampled bit back hop by
/// hop. Strategies receive the token by mutable reference and may rewrite any
/// field; `path`, `stream` and `compromised` are simulation bookkeeping with
/// no wire cost (DESIGN.md §6).
struct WalkToken {
  NodeId origin = kNoNode;
  bool answering = false;
  bool compromised = false;    ///< adversary-controlled: the answer will be/was forged
  std::uint8_t answer = 0;     ///< valid once answering
  std::uint8_t taintSubset = 0xff;  ///< coalition subset that tainted this token
                                    ///< (0xff = none); lets a mixed coalition
                                    ///< route forgeAnswer to the subset whose
                                    ///< member did the tainting (DESIGN.md §9)
  NodeId taintNode = kNoNode;  ///< provenance: first Byzantine actor that touched
                               ///< this token (taint/flip/misroute) — stamped by
                               ///< the protocol around the adversary hooks, resolved
                               ///< into blame-graph edges at the origin (DESIGN.md §14)
  std::uint64_t provId = 0;    ///< provenance: unique token id linking the launch
                               ///< mark to the answer/drop mark (Chrome flow events)
  std::uint32_t hopsLeft = 0;  ///< outbound hops still to take
  PathRef path = kNullPath;    ///< reverse route, arena-pooled (O(1) token copy)
  Rng stream{};                ///< this token's private forwarding stream; the NSDMI
                               ///< keeps the aggregate default-constructible (the
                               ///< engine's inbox arena value-initializes slots)
};

/// Shared per-trial blackboard through which Byzantine nodes collude. The
/// first member that needs a lie locks the bit the whole coalition will push
/// for the rest of the trial (consistent lying beats independent re-guessing
/// once honest opinion starts to drift), and targeted samples are tallied so
/// experiments can score how much of the budget actually landed.
///
/// Lock-free so strategies may call it from the engine's shard-parallel recv
/// phase (DESIGN.md §10). Every strategy that locks a bit derives it from
/// round-constant state (the honest split snapshot), so whichever shard's CAS
/// wins within a round installs the same bit — shard-count invariant.
class Coalition {
 public:
  Coalition() = default;
  Coalition(const Coalition&) = delete;
  Coalition& operator=(const Coalition&) = delete;

  [[nodiscard]] bool hasAgreedBit() const noexcept {
    return state_.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] std::uint8_t agreedBit() const noexcept {
    return static_cast<std::uint8_t>(state_.load(std::memory_order_acquire) & 0xffu);
  }

  /// First writer wins; later calls are ignored (the coalition stays put).
  void agreeOn(std::uint8_t bit) noexcept {
    std::uint32_t expected = 0;
    state_.compare_exchange_strong(expected, 0x100u | bit, std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  }

  void recordHit() noexcept { hits_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> state_{0};  ///< 0 = unset, else 0x100 | agreed bit
  std::atomic<std::uint64_t> hits_{0};
};

/// What each strategy did to the traffic it touched. Protocol-observed events
/// (drops, forges, strays) are counted by the protocol loop; strategy-internal
/// events (flips, misroutes, coalition hits) by the strategies themselves.
/// These ride ExperimentSummary extras — they are diagnostics, deliberately
/// outside fingerprint(AgreementOutcome) so the pinned goldens stay valid.
struct AdversaryStats {
  std::uint64_t droppedQueries = 0;    ///< outbound tokens silently discarded
  std::uint64_t droppedAnswers = 0;    ///< returning answers silently discarded
  std::uint64_t flippedAnswers = 0;    ///< answer bits inverted in transit
  std::uint64_t forgedAnswers = 0;     ///< answers the adversary authored at walk end
  std::uint64_t misroutedAnswers = 0;  ///< answers pushed off their reverse path
  std::uint64_t strayAnswers = 0;      ///< misrouted answers discarded on arrival
  std::uint64_t coalitionHits = 0;     ///< samples targeted via the Coalition blackboard

  /// Folds a per-shard sink into this one (sums are shard-order invariant).
  void accumulate(const AdversaryStats& o) noexcept {
    droppedQueries += o.droppedQueries;
    droppedAnswers += o.droppedAnswers;
    flippedAnswers += o.flippedAnswers;
    forgedAnswers += o.forgedAnswers;
    misroutedAnswers += o.misroutedAnswers;
    strayAnswers += o.strayAnswers;
    coalitionHits += o.coalitionHits;
  }
};

/// Everything a strategy may observe when handling a token: where it is, the
/// topology, the live honest split (the classic adaptive adversary is
/// omniscient about honest state), the scenario's victim, the coalition
/// blackboard, a private RNG stream and the stats sink.
struct WalkContext {
  NodeId node = kNoNode;  ///< node currently holding the token (Byzantine for
                          ///< the transit hooks; possibly honest for forgeAnswer)
  Round round = 0;
  const Graph& graph;
  PathArena& arena;
  std::size_t honestOnes = 0;   ///< honest nodes currently holding 1
  std::size_t honestCount = 0;  ///< honest population
  NodeId victim = 0;            ///< scenario focus node (placement victim)
  Coalition& coalition;
  Rng& rng;  ///< adversary's per-trial stream (forked off the run stream)
  AdversaryStats& stats;
};

/// The maximally disruptive reply of the classic adaptive adversary: the
/// current honest minority bit. An exact 50/50 split counts as majority 1
/// (matching the protocol's own tie-break), so the minority reply is 0.
[[nodiscard]] inline std::uint8_t honestMinorityBit(const WalkContext& ctx) noexcept {
  return (2 * ctx.honestOnes >= ctx.honestCount) ? 0 : 1;
}

/// Disposition of a token a Byzantine node just received.
struct TokenAction {
  enum class Op : std::uint8_t {
    Forward,   ///< continue the honest flow (after any in-place mutation)
    Drop,      ///< silently discard the token
    Redirect,  ///< answer leg only: abandon the recorded reverse path (the
               ///< protocol clears it) and send to `target`, which must be a
               ///< neighbour of the redirecting node; the token is accepted
               ///< on arrival only if `target` is its origin

  };
  Op op = Op::Forward;
  NodeId target = kNoNode;

  [[nodiscard]] static TokenAction forward() noexcept { return {}; }
  [[nodiscard]] static TokenAction drop() noexcept { return {Op::Drop, kNoNode}; }
  [[nodiscard]] static TokenAction redirect(NodeId to) noexcept {
    return {Op::Redirect, to};
  }
};

/// Strategy interface. One instance is created per trial (strategies may hold
/// per-trial state such as BFS distance fields); within a trial all Byzantine
/// nodes are driven by the same instance, with ctx.node naming the actor.
/// Hooks run inside the protocol's recv handler, so any RNG use must come
/// from ctx.rng to keep trials pure functions of (masterSeed, index).
class WalkAdversary {
 public:
  virtual ~WalkAdversary() = default;

  /// Byzantine ctx.node received an outbound sample query. May taint the
  /// token (set `compromised`: its eventual answer is then forged via
  /// forgeAnswer, wherever the walk ends). Redirect is not honoured on the
  /// query leg — the reverse path must record the walk actually taken.
  virtual TokenAction onQuery(const WalkContext& ctx, WalkToken& token) {
    (void)ctx;
    (void)token;
    return TokenAction::forward();
  }

  /// Byzantine ctx.node received an answer in transit to its origin. May
  /// mutate the carried bit, rewrite token.path, drop, or redirect.
  virtual TokenAction onAnswerRelay(const WalkContext& ctx, WalkToken& token) {
    (void)ctx;
    (void)token;
    return TokenAction::forward();
  }

  /// The bit an adversary-controlled token answers with. Called at the walk
  /// endpoint for every token that is tainted or ended on a Byzantine node;
  /// ctx.node is the answering node (honest when the taint happened
  /// upstream). Default: the adaptive minority reply.
  virtual std::uint8_t forgeAnswer(const WalkContext& ctx, const WalkToken& token) {
    (void)token;
    return honestMinorityBit(ctx);
  }
};

/// Coalition damage score: the fraction of honest nodes within `radius` of
/// `victim` that ended OFF the initial honest majority bit. 0 = the
/// neighbourhood agreed anyway; 1 = the coalition flipped everyone near the
/// victim (the Remark 1 outcome when Placement::Surround walls the area off).
[[nodiscard]] double coalitionScore(const Graph& g, const ByzantineSet& byz, NodeId victim,
                                    std::uint32_t radius,
                                    const std::vector<std::uint8_t>& finalValues,
                                    int initialMajority);

}  // namespace bzc
