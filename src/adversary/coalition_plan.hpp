// Declarative mixed-coalition description.
//
// The paper's adversary is one monolithic set of B Byzantine nodes; real
// attacks (and the related-work evaluations this repo reproduces) mix
// behaviours — part of the budget floods the counting stage while another
// part hunts the agreement stage. A CoalitionPlan partitions the Byzantine
// budget of a trial into named subsets, each with its own counting-stage
// (BeaconAdversaryProfile) and agreement-stage (AgreementAttackProfile)
// behaviour. The partition is deterministic (contiguous slices of
// byz.members() sized by normalised shares, remainder to the earliest
// subsets), so mixed scenarios stay pure functions of (masterSeed, trial)
// and thread-count invariant. All subsets share one per-trial Coalition
// blackboard spanning both pipeline stages. See DESIGN.md §9.
//
// This header is deliberately light (profiles + vector) so
// runtime/experiment.hpp can embed a CoalitionPlan; the partitioning, the
// mixed dispatch strategies and the combined score live in
// adversary/coalition.hpp / coalition.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/beacon/profile.hpp"
#include "adversary/profile.hpp"

namespace bzc {

/// One slice of the Byzantine budget and what it does in each stage.
struct CoalitionSubset {
  std::string name = "subset";
  double share = 1.0;  ///< relative weight; sizes are normalised over the plan

  BeaconAdversaryProfile beacon = BeaconAdversaryProfile::none();  ///< counting stage
  AgreementAttackProfile walk = AgreementAttackProfile::adaptiveMinority();  ///< agreement stage
};

struct CoalitionPlan {
  std::vector<CoalitionSubset> subsets;

  /// Radius around the scenario victim for the combined cross-stage damage
  /// score reported by mixed Pipeline/Agreement runs.
  std::uint32_t scoreRadius = 2;

  /// An empty plan is inert: every scenario behaves exactly as before.
  [[nodiscard]] bool enabled() const noexcept { return !subsets.empty(); }

  /// Two-subset convenience: `shareA` of the budget runs (beaconA, walkA),
  /// the rest runs (beaconB, walkB).
  [[nodiscard]] static CoalitionPlan split(const std::string& nameA, double shareA,
                                           const BeaconAdversaryProfile& beaconA,
                                           const AgreementAttackProfile& walkA,
                                           const std::string& nameB,
                                           const BeaconAdversaryProfile& beaconB,
                                           const AgreementAttackProfile& walkB);
};

}  // namespace bzc
