// Declarative walk-adversary selection.
//
// Mirrors BeaconAttackProfile for the counting stage: a ScenarioSpec (or any
// caller of the agreement protocol) names an attack by kind plus strength
// knobs, and the per-trial strategy instance is materialised from the profile
// by makeWalkAdversary (src/adversary/strategies.hpp). Only the knobs of the
// selected kind are read. The default profile is the adaptive minority
// answerer the protocol always had — existing scenarios, goldens and benches
// are unchanged unless they opt into an attack.
#pragma once

#include <cstdint>
#include <string>

#include "support/types.hpp"

namespace bzc {

enum class WalkAttackKind : std::uint8_t {
  AdaptiveMinority,  ///< taint traversing queries; answer the live honest minority
  TokenDropper,      ///< silently discard traversing queries
  AnswerFlipper,     ///< relay queries honestly; invert answer bits on the return path
  PathTamperer,      ///< rewrite the reverse path so answers are misrouted
  VictimHunter,      ///< coalition: concentrate consistent lies on samples
                     ///< originating near the scenario victim
};

[[nodiscard]] const char* walkAttackKindName(WalkAttackKind kind);

struct AgreementAttackProfile {
  std::string name = "adaptive-minority";
  WalkAttackKind kind = WalkAttackKind::AdaptiveMinority;

  double dropProbability = 1.0;    ///< TokenDropper: per-contact discard chance
  double flipProbability = 1.0;    ///< AnswerFlipper: per-relay inversion chance
  double tamperProbability = 1.0;  ///< PathTamperer: per-relay misroute chance
  std::uint32_t huntRadius = 2;    ///< VictimHunter: target origins within this
                                   ///< distance of the victim

  [[nodiscard]] static AgreementAttackProfile adaptiveMinority();
  [[nodiscard]] static AgreementAttackProfile dropper(double probability = 1.0);
  [[nodiscard]] static AgreementAttackProfile flipper(double probability = 1.0);
  [[nodiscard]] static AgreementAttackProfile tamperer(double probability = 1.0);
  [[nodiscard]] static AgreementAttackProfile hunter(std::uint32_t radius = 2);
};

}  // namespace bzc
