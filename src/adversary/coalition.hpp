// Mixed-coalition machinery: budget partitioning, per-stage dispatch
// strategies, and the combined cross-stage damage score.
//
// A CoalitionPlan (adversary/coalition_plan.hpp) is materialised per trial
// into (1) a CoalitionAssignment mapping each Byzantine node to its subset
// and (2) one dispatcher strategy per pipeline stage. The dispatchers are
// ordinary BeaconAdversary / WalkAdversary instances — the protocols cannot
// tell a mixed coalition from a single strategy — holding one gallery
// strategy per subset and routing every hook by the acting node's subset.
// Both stages share the caller's Coalition blackboard. See DESIGN.md §9.
#pragma once

#include <memory>

#include "adversary/beacon/strategies.hpp"
#include "adversary/coalition_plan.hpp"
#include "adversary/strategies.hpp"
#include "counting/common.hpp"

namespace bzc {

/// Deterministic node → subset map for one trial.
struct CoalitionAssignment {
  static constexpr std::uint8_t kNoSubset = 0xff;

  std::vector<std::uint8_t> subsetOf;  ///< indexed by NodeId; kNoSubset = honest
  std::vector<std::size_t> sizes;      ///< per subset; sums to byz.count()

  [[nodiscard]] std::size_t subsets() const noexcept { return sizes.size(); }
};

/// Partitions byz.members() (ascending node order) into contiguous slices
/// sized by the plan's normalised shares; floor rounding leaves a remainder
/// of fewer than subsets() nodes, handed one each to the earliest subsets.
/// Sizes always sum to the budget and slices are disjoint by construction
/// (the partition audit test pins both).
[[nodiscard]] CoalitionAssignment partitionBudget(const CoalitionPlan& plan,
                                                  const ByzantineSet& byz);

/// Anchors a beacon profile's victim to the scenario victim when the profile
/// left it at the kScenarioVictim sentinel (plan- or spec-authored targeted
/// flooders usually mean "the scenario's placement victim"; an explicit
/// victim — including node 0 — always wins).
[[nodiscard]] BeaconAdversaryProfile anchorBeaconProfile(BeaconAdversaryProfile profile,
                                                         NodeId victim);

/// Counting-stage dispatcher: one gallery strategy per subset, routed by
/// ctx.node. Targeted-flooder victims default to `victim` when the subset
/// profile left its victim at the kScenarioVictim sentinel.
[[nodiscard]] std::unique_ptr<BeaconAdversary> makeCoalitionBeaconAdversary(
    const CoalitionPlan& plan, const CoalitionAssignment& assignment, const Graph& g,
    const ByzantineSet& byz, NodeId victim);

/// Agreement-stage dispatcher. Transit hooks route by the acting node's
/// subset; forgeAnswer routes by the subset that tainted the token
/// (WalkToken::taintSubset), falling back to the endpoint's own subset for
/// untainted tokens that ended on a Byzantine node.
[[nodiscard]] std::unique_ptr<WalkAdversary> makeCoalitionWalkAdversary(
    const CoalitionPlan& plan, const CoalitionAssignment& assignment, const Graph& g,
    const ByzantineSet& byz, NodeId victim);

/// Combined cross-stage coalition damage around the victim, in [0, 1]:
/// the mean of the counting-stage component (fraction of honest nodes within
/// `radius` of the victim left undecided or outside the quality window) and
/// the agreement-stage component (coalitionScore: fraction of that
/// neighbourhood ending off the initial honest majority). 1 = the coalition
/// denied the area both a usable estimate and the majority bit.
[[nodiscard]] double combinedCoalitionScore(const Graph& g, const ByzantineSet& byz,
                                            NodeId victim, std::uint32_t radius,
                                            const CountingResult& counting,
                                            const QualityWindow& window,
                                            const std::vector<std::uint8_t>& finalValues,
                                            int initialMajority);

}  // namespace bzc
