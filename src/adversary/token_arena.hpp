// Arena-pooled reverse paths for walk tokens.
//
// A walk token used to carry its reverse path as a std::vector<NodeId>,
// copied on every hop (recv copies the delivery payload before forwarding).
// At n = 16k that copy dominated the agreement stage's allocation churn
// (ROADMAP perf lever). PathArena replaces the vector with a backward-linked
// chain of (node, prev) entries owned by one per-iteration pool: tokens carry
// a single 32-bit PathRef, so copying a token is O(1) and a whole iteration's
// paths amount to one grow-once buffer that is reset (capacity kept) between
// iterations.
//
// Chain discipline: pushing hop targets as a walk advances leaves the token's
// ref pointing at the node currently holding it; popping (following `prev`)
// retraces the walk — exactly the order the answer leg needs. Refs are only
// meaningful until the owning arena is cleared, which the agreement loop does
// after each iteration window, when no token is in flight.
#pragma once

#include <cstdint>
#include <vector>

#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

/// Index of a path entry inside a PathArena; kNullPath is the empty path.
using PathRef = std::uint32_t;
inline constexpr PathRef kNullPath = 0xffffffffu;

class PathArena {
 public:
  /// Appends a hop: `node` was just visited, `prev` is the path up to it.
  [[nodiscard]] PathRef push(NodeId node, PathRef prev) {
    entries_.push_back({node, prev});
    return static_cast<PathRef>(entries_.size() - 1);
  }

  [[nodiscard]] NodeId node(PathRef ref) const {
    BZC_ASSERT(ref < entries_.size());
    return entries_[ref].node;
  }

  [[nodiscard]] PathRef prev(PathRef ref) const {
    BZC_ASSERT(ref < entries_.size());
    return entries_[ref].prev;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Invalidates every outstanding PathRef; keeps the allocation.
  void clear() noexcept { entries_.clear(); }

 private:
  struct Entry {
    NodeId node;
    PathRef prev;
  };
  std::vector<Entry> entries_;
};

}  // namespace bzc
