// Arena-pooled reverse paths for walk tokens.
//
// A walk token used to carry its reverse path as a std::vector<NodeId>,
// copied on every hop (recv copies the delivery payload before forwarding).
// At n = 16k that copy dominated the agreement stage's allocation churn
// (ROADMAP perf lever). PathArena replaces the vector with a backward-linked
// chain of (node, prev) entries owned by one per-iteration pool: tokens carry
// a single 32-bit PathRef, so copying a token is O(1) and a whole iteration's
// paths amount to one grow-once buffer that is reset (capacity kept) between
// iterations.
//
// Chain discipline: pushing hop targets as a walk advances leaves the token's
// ref pointing at the node currently holding it; popping (following `prev`)
// retraces the walk — exactly the order the answer leg needs. Refs are only
// meaningful until the owning arena is cleared, which the agreement loop does
// after each iteration window, when no token is in flight.
//
// Sharding (DESIGN.md §10): with the engine running recv shard-parallel,
// each shard pushes into its own lane of chunked fixed-size blocks; a ref
// encodes (shard << 27) | index. Shard-0 refs are plain indices, so a
// single-shard arena produces exactly the legacy ref values. Blocks never
// move once allocated and the per-shard block table is pre-sized at
// construction, so a ref published by one shard (via an engine barrier) can
// be chased by any other shard without synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/require.hpp"
#include "support/types.hpp"

namespace bzc {

/// Handle to a path entry inside a PathArena; kNullPath is the empty path.
using PathRef = std::uint32_t;
inline constexpr PathRef kNullPath = 0xffffffffu;

class PathArena {
 public:
  /// shards beyond [1, 16] are clamped (refs carry a 4-bit shard tag).
  explicit PathArena(unsigned shards = 1) {
    if (shards == 0) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    shards_.resize(shards);
    for (Shard& sh : shards_) sh.blocks.resize(std::size_t{1} << (kIndexBits - kBlockBits));
  }

  [[nodiscard]] unsigned shardCount() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Appends a hop into `shard`'s lane: `node` was just visited, `prev` is the
  /// path up to it (which may live in any shard). Only `shard`'s owning worker
  /// (or serial code) may call this for a given shard.
  [[nodiscard]] PathRef push(unsigned shard, NodeId node, PathRef prev) {
    BZC_ASSERT(shard < shards_.size());
    Shard& sh = shards_[shard];
    const std::size_t idx = sh.count;
    BZC_ASSERT(idx < (std::size_t{1} << kIndexBits));
    std::unique_ptr<Entry[]>& block = sh.blocks[idx >> kBlockBits];
    if (!block) block = std::make_unique<Entry[]>(std::size_t{1} << kBlockBits);
    block[idx & ((std::size_t{1} << kBlockBits) - 1)] = {node, prev};
    ++sh.count;
    return static_cast<PathRef>((static_cast<PathRef>(shard) << kIndexBits) | idx);
  }

  /// Legacy single-shard push (serial call sites, tests, benches).
  [[nodiscard]] PathRef push(NodeId node, PathRef prev) { return push(0, node, prev); }

  [[nodiscard]] NodeId node(PathRef ref) const { return entryAt(ref).node; }
  [[nodiscard]] PathRef prev(PathRef ref) const { return entryAt(ref).prev; }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const Shard& sh : shards_) total += sh.count;
    return total;
  }

  /// Invalidates every outstanding PathRef; keeps the allocations.
  void clear() noexcept {
    for (Shard& sh : shards_) sh.count = 0;
  }

 private:
  static constexpr unsigned kIndexBits = 27;  ///< per-shard capacity 2^27 entries
  static constexpr unsigned kBlockBits = 16;  ///< 65536 entries per block
  static constexpr unsigned kMaxShards = 16;  ///< (15 << 27) | idx stays below kNullPath

  struct Entry {
    NodeId node;
    PathRef prev;
  };
  struct Shard {
    std::vector<std::unique_ptr<Entry[]>> blocks;  ///< pre-sized table; blocks lazily allocated
    std::size_t count = 0;
  };

  [[nodiscard]] const Entry& entryAt(PathRef ref) const {
    const unsigned shard = static_cast<unsigned>(ref >> kIndexBits);
    const std::size_t idx = ref & ((PathRef{1} << kIndexBits) - 1);
    BZC_ASSERT(shard < shards_.size());
    // Do not read the owning shard's count here: a cross-shard chase during a
    // parallel recv phase would race with the owner's push. The block pointer
    // of any published ref is already set (engine barriers order it).
    const auto& block = shards_[shard].blocks[idx >> kBlockBits];
    BZC_ASSERT(block != nullptr);
    return block[idx & ((std::size_t{1} << kBlockBits) - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace bzc
