#include "adversary/coalition.hpp"

#include <cmath>
#include <utility>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

CoalitionPlan CoalitionPlan::split(const std::string& nameA, double shareA,
                                   const BeaconAdversaryProfile& beaconA,
                                   const AgreementAttackProfile& walkA, const std::string& nameB,
                                   const BeaconAdversaryProfile& beaconB,
                                   const AgreementAttackProfile& walkB) {
  BZC_REQUIRE(shareA > 0.0 && shareA < 1.0, "split share must lie strictly inside (0, 1)");
  CoalitionPlan plan;
  plan.subsets.push_back({nameA, shareA, beaconA, walkA});
  plan.subsets.push_back({nameB, 1.0 - shareA, beaconB, walkB});
  return plan;
}

CoalitionAssignment partitionBudget(const CoalitionPlan& plan, const ByzantineSet& byz) {
  BZC_REQUIRE(plan.enabled(), "partitionBudget needs a nonempty CoalitionPlan");
  double totalShare = 0.0;
  for (const CoalitionSubset& s : plan.subsets) {
    BZC_REQUIRE(s.share >= 0.0, "subset shares must be nonnegative");
    totalShare += s.share;
  }
  BZC_REQUIRE(totalShare > 0.0, "coalition plan has zero total share");
  BZC_REQUIRE(plan.subsets.size() < CoalitionAssignment::kNoSubset,
              "too many coalition subsets");

  const std::size_t budget = byz.count();
  CoalitionAssignment assign;
  assign.subsetOf.assign(byz.numNodes(), CoalitionAssignment::kNoSubset);
  assign.sizes.assign(plan.subsets.size(), 0);

  // Floor shares, then hand the remainder one each to the earliest subsets:
  // sizes sum to the budget exactly, independent of floating-point share
  // arithmetic (the partition audit pins this).
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < plan.subsets.size(); ++i) {
    assign.sizes[i] = static_cast<std::size_t>(
        std::floor(plan.subsets[i].share / totalShare * static_cast<double>(budget)));
    assigned += assign.sizes[i];
  }
  BZC_ASSERT(assigned <= budget);
  // The remainder goes to the earliest POSITIVE-share subsets: a subset the
  // plan allocated nothing to must never receive budget.
  for (std::size_t i = 0; assigned < budget; i = (i + 1) % plan.subsets.size()) {
    if (plan.subsets[i].share <= 0.0) continue;
    ++assign.sizes[i];
    ++assigned;
  }

  // Contiguous slices of byz.members() (ascending node order): deterministic,
  // disjoint, exhaustive.
  std::size_t subset = 0;
  std::size_t taken = 0;
  for (NodeId b : byz.members()) {
    while (subset < assign.sizes.size() && taken == assign.sizes[subset]) {
      ++subset;
      taken = 0;
    }
    BZC_ASSERT(subset < assign.sizes.size());
    assign.subsetOf[b] = static_cast<std::uint8_t>(subset);
    ++taken;
  }
  return assign;
}

BeaconAdversaryProfile anchorBeaconProfile(BeaconAdversaryProfile profile, NodeId victim) {
  if (profile.kind == BeaconAttackKind::TargetedFlooder &&
      profile.victim == BeaconAdversaryProfile::kScenarioVictim) {
    profile.victim = victim;
  }
  return profile;
}

namespace {

class CoalitionBeaconAdversary final : public BeaconAdversary {
 public:
  CoalitionBeaconAdversary(std::vector<std::unique_ptr<BeaconAdversary>> strategies,
                           std::vector<std::uint8_t> subsetOf)
      : strategies_(std::move(strategies)), subsetOf_(std::move(subsetOf)) {}

  bool forgeBeacon(const BeaconContext& ctx, BeaconFrame& forged) override {
    return at(ctx.node).forgeBeacon(ctx, forged);
  }

  BeaconTransit onBeaconRelay(const BeaconContext& ctx, const BeaconSighting& first) override {
    return at(ctx.node).onBeaconRelay(ctx, first);
  }

  bool spamContinue(const BeaconContext& ctx) override { return at(ctx.node).spamContinue(ctx); }

  bool onContinueRelay(const BeaconContext& ctx) override {
    return at(ctx.node).onContinueRelay(ctx);
  }

 private:
  [[nodiscard]] BeaconAdversary& at(NodeId node) {
    const std::uint8_t subset = subsetOf_[node];
    BZC_ASSERT(subset != CoalitionAssignment::kNoSubset);
    return *strategies_[subset];
  }

  std::vector<std::unique_ptr<BeaconAdversary>> strategies_;
  std::vector<std::uint8_t> subsetOf_;
};

class CoalitionWalkAdversary final : public WalkAdversary {
 public:
  CoalitionWalkAdversary(std::vector<std::unique_ptr<WalkAdversary>> strategies,
                         std::vector<std::uint8_t> subsetOf)
      : strategies_(std::move(strategies)), subsetOf_(std::move(subsetOf)) {}

  TokenAction onQuery(const WalkContext& ctx, WalkToken& token) override {
    const bool wasCompromised = token.compromised;
    const std::uint8_t subset = subsetOf_[ctx.node];
    const TokenAction act = strategies_[subset]->onQuery(ctx, token);
    if (!wasCompromised && token.compromised) token.taintSubset = subset;
    return act;
  }

  TokenAction onAnswerRelay(const WalkContext& ctx, WalkToken& token) override {
    const bool wasCompromised = token.compromised;
    const std::uint8_t subset = subsetOf_[ctx.node];
    const TokenAction act = strategies_[subset]->onAnswerRelay(ctx, token);
    if (!wasCompromised && token.compromised) token.taintSubset = subset;
    return act;
  }

  std::uint8_t forgeAnswer(const WalkContext& ctx, const WalkToken& token) override {
    // The answer belongs to whoever claimed the token: the tainting subset
    // when one is recorded, else the Byzantine endpoint's own subset.
    std::uint8_t subset = token.taintSubset;
    if (subset == CoalitionAssignment::kNoSubset) subset = subsetOf_[ctx.node];
    BZC_ASSERT(subset != CoalitionAssignment::kNoSubset);
    return strategies_[subset]->forgeAnswer(ctx, token);
  }

 private:
  std::vector<std::unique_ptr<WalkAdversary>> strategies_;
  std::vector<std::uint8_t> subsetOf_;
};

}  // namespace

std::unique_ptr<BeaconAdversary> makeCoalitionBeaconAdversary(
    const CoalitionPlan& plan, const CoalitionAssignment& assignment, const Graph& g,
    const ByzantineSet& byz, NodeId victim) {
  BZC_REQUIRE(assignment.subsets() == plan.subsets.size(), "assignment does not match plan");
  std::vector<std::unique_ptr<BeaconAdversary>> strategies;
  strategies.reserve(plan.subsets.size());
  for (const CoalitionSubset& s : plan.subsets) {
    strategies.push_back(makeBeaconAdversary(anchorBeaconProfile(s.beacon, victim), g, byz));
  }
  return std::make_unique<CoalitionBeaconAdversary>(std::move(strategies), assignment.subsetOf);
}

std::unique_ptr<WalkAdversary> makeCoalitionWalkAdversary(const CoalitionPlan& plan,
                                                          const CoalitionAssignment& assignment,
                                                          const Graph& g, const ByzantineSet& byz,
                                                          NodeId victim) {
  BZC_REQUIRE(assignment.subsets() == plan.subsets.size(), "assignment does not match plan");
  std::vector<std::unique_ptr<WalkAdversary>> strategies;
  strategies.reserve(plan.subsets.size());
  for (const CoalitionSubset& s : plan.subsets) {
    strategies.push_back(makeWalkAdversary(s.walk, g, byz, victim));
  }
  return std::make_unique<CoalitionWalkAdversary>(std::move(strategies), assignment.subsetOf);
}

double combinedCoalitionScore(const Graph& g, const ByzantineSet& byz, NodeId victim,
                              std::uint32_t radius, const CountingResult& counting,
                              const QualityWindow& window,
                              const std::vector<std::uint8_t>& finalValues,
                              int initialMajority) {
  BZC_REQUIRE(victim < g.numNodes(), "victim out of range");
  const double logN = std::log(static_cast<double>(g.numNodes()));
  const std::vector<std::uint32_t> dist = bfsDistances(g, victim);
  std::size_t near = 0;
  std::size_t denied = 0;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (byz.contains(u) || dist[u] > radius) continue;
    ++near;
    const DecisionRecord& rec = counting.decisions[u];
    const double ratio = logN > 0.0 ? rec.estimate / logN : 0.0;
    if (!rec.decided || ratio < window.lowRatio || ratio > window.highRatio) ++denied;
  }
  const double countingDamage =
      near > 0 ? static_cast<double>(denied) / static_cast<double>(near) : 0.0;
  const double agreementDamage =
      coalitionScore(g, byz, victim, radius, finalValues, initialMajority);
  return 0.5 * (countingDamage + agreementDamage);
}

}  // namespace bzc
