// Run metrics: rounds, message counts, per-node message-size accounting and
// the decision timeline. Theorem 2's "small messages" claim is evaluated
// from MessageMeter (max bits any given node ever put on a single edge).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace bzc {

class MessageMeter {
 public:
  explicit MessageMeter(NodeId numNodes = 0) : maxMessageBits_(numNodes, 0), bitsSent_(numNodes, 0), messagesSent_(numNodes, 0) {}

  /// Records node u placing one message of `bits` bits on one edge.
  void record(NodeId u, std::size_t bits) noexcept { recordBroadcast(u, bits, 1); }

  /// Records node u placing the same `bits`-bit message on `copies` edges
  /// (a broadcast); cheaper than `copies` record() calls in flooding loops.
  void recordBroadcast(NodeId u, std::size_t bits, std::uint32_t copies) noexcept {
    if (u >= maxMessageBits_.size() || copies == 0) return;
    maxMessageBits_[u] = bits > maxMessageBits_[u] ? bits : maxMessageBits_[u];
    bitsSent_[u] += static_cast<std::uint64_t>(bits) * copies;
    messagesSent_[u] += copies;
    totalMessages_ += copies;
    totalBits_ += static_cast<std::uint64_t>(bits) * copies;
  }

  [[nodiscard]] std::size_t maxMessageBits(NodeId u) const { return maxMessageBits_.at(u); }
  [[nodiscard]] std::uint64_t bitsSent(NodeId u) const { return bitsSent_.at(u); }
  [[nodiscard]] std::uint64_t messagesSent(NodeId u) const { return messagesSent_.at(u); }
  [[nodiscard]] std::uint64_t totalMessages() const noexcept { return totalMessages_; }
  [[nodiscard]] std::uint64_t totalBits() const noexcept { return totalBits_; }

  /// Fraction of the given nodes whose largest single message stayed within
  /// `bitBudget` bits — the Theorem 2 "most nodes send small messages" lens.
  [[nodiscard]] double fractionWithin(const std::vector<NodeId>& nodes,
                                      std::size_t bitBudget) const;

  /// q-quantile of max message bits over the given nodes.
  [[nodiscard]] double maxBitsQuantile(const std::vector<NodeId>& nodes, double q) const;

 private:
  std::vector<std::size_t> maxMessageBits_;
  std::vector<std::uint64_t> bitsSent_;
  std::vector<std::uint64_t> messagesSent_;
  std::uint64_t totalMessages_ = 0;
  std::uint64_t totalBits_ = 0;
};

/// Per-node decision record filled in by the protocols.
struct DecisionRecord {
  bool decided = false;
  Round round = 0;        ///< round at which the estimate became final
  double estimate = 0.0;  ///< the node's estimate of log n (protocol's scale)
};

}  // namespace bzc
