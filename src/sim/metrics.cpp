#include "sim/metrics.hpp"

#include <algorithm>

#include "support/stats.hpp"

namespace bzc {

double MessageMeter::fractionWithin(const std::vector<NodeId>& nodes,
                                    std::size_t bitBudget) const {
  if (nodes.empty()) return 1.0;
  std::size_t ok = 0;
  for (NodeId u : nodes) {
    if (maxMessageBits(u) <= bitBudget) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(nodes.size());
}

double MessageMeter::maxBitsQuantile(const std::vector<NodeId>& nodes, double q) const {
  if (nodes.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(nodes.size());
  for (NodeId u : nodes) values.push_back(static_cast<double>(maxMessageBits(u)));
  return quantile(std::move(values), q);
}

}  // namespace bzc
