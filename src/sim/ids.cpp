#include "sim/ids.hpp"

#include "support/require.hpp"

namespace bzc {

IdSpace::IdSpace(NodeId n, Rng& rng) {
  toPublic_.resize(n);
  toInternal_.reserve(n * 2);
  for (NodeId u = 0; u < n; ++u) {
    PublicId id = rng.next();
    // 64-bit collisions at simulation scale are ~never, but regenerate to
    // keep the distinct-ID model assumption unconditional.
    while (id == kNoPublicId || toInternal_.contains(id)) id = rng.next();
    toPublic_[u] = id;
    toInternal_.emplace(id, u);
  }
}

NodeId IdSpace::lookup(PublicId id) const {
  const auto it = toInternal_.find(id);
  return it == toInternal_.end() ? kNoNode : it->second;
}

}  // namespace bzc
