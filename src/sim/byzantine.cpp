#include "sim/byzantine.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "support/require.hpp"

namespace bzc {

ByzantineSet::ByzantineSet(NodeId numNodes, std::vector<NodeId> members)
    : mask_(numNodes, 0), members_(std::move(members)) {
  for (NodeId u : members_) {
    BZC_REQUIRE(u < numNodes, "byzantine member out of range");
    BZC_REQUIRE(mask_[u] == 0, "duplicate byzantine member");
    mask_[u] = 1;
  }
  std::sort(members_.begin(), members_.end());
}

std::vector<NodeId> ByzantineSet::honestNodes() const {
  std::vector<NodeId> honest;
  honest.reserve(mask_.size() - members_.size());
  for (NodeId u = 0; u < numNodes(); ++u) {
    if (!mask_[u]) honest.push_back(u);
  }
  return honest;
}

std::vector<std::uint32_t> ByzantineSet::distanceToByzantine(const Graph& g) const {
  BZC_REQUIRE(g.numNodes() == numNodes(), "graph size mismatch");
  if (members_.empty()) {
    return std::vector<std::uint32_t>(g.numNodes(), kUnreachable);
  }
  return multiSourceBfsDistances(g, members_);
}

std::size_t byzantineBudget(NodeId n, double gamma) {
  BZC_REQUIRE(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0,1)");
  return static_cast<std::size_t>(std::pow(static_cast<double>(n), 1.0 - gamma));
}

namespace {

std::vector<NodeId> placeRandom(const Graph& g, std::size_t count, NodeId victim, Rng& rng) {
  std::vector<NodeId> pool;
  pool.reserve(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (u != victim) pool.push_back(u);
  }
  rng.shuffle(pool);
  pool.resize(std::min(count, pool.size()));
  return pool;
}

std::vector<NodeId> placeSpread(const Graph& g, std::size_t count, NodeId victim, Rng& rng) {
  // Greedy k-center: repeatedly take the node farthest from the chosen set.
  std::vector<NodeId> chosen;
  if (count == 0 || g.numNodes() <= 1) return chosen;
  auto first = static_cast<NodeId>(rng.uniform(g.numNodes()));
  if (first == victim) first = static_cast<NodeId>((first + 1) % g.numNodes());
  chosen.push_back(first);
  auto dist = bfsDistances(g, first);
  while (chosen.size() < count && chosen.size() + 1 < g.numNodes()) {
    NodeId farthest = kNoNode;
    std::uint32_t best = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == victim || dist[u] == kUnreachable) continue;
      bool taken = false;
      for (NodeId c : chosen) {
        if (c == u) {
          taken = true;
          break;
        }
      }
      if (!taken && dist[u] >= best) {
        best = dist[u];
        farthest = u;
      }
    }
    if (farthest == kNoNode) break;
    chosen.push_back(farthest);
    const auto fresh = bfsDistances(g, farthest);
    for (NodeId u = 0; u < g.numNodes(); ++u) dist[u] = std::min(dist[u], fresh[u]);
  }
  return chosen;
}

std::vector<NodeId> placeBall(const Graph& g, std::size_t count, NodeId victim) {
  // Take the BFS ordering around the victim, excluding the victim itself, so
  // the Byzantine budget forms the tightest possible cluster next to it.
  const auto order = ball(g, victim, g.numNodes());
  std::vector<NodeId> chosen;
  chosen.reserve(count);
  for (NodeId u : order) {
    if (u == victim) continue;
    chosen.push_back(u);
    if (chosen.size() == count) break;
  }
  return chosen;
}

std::vector<NodeId> placeSurround(const Graph& g, std::size_t count, NodeId victim,
                                  std::uint32_t moatRadius) {
  // Remark 1: make every edge leaving B(victim, moatRadius) land on a
  // Byzantine node, i.e. occupy exactly the BFS layer at distance
  // moatRadius+1, then spend any remaining budget on the next layers.
  const auto dist = bfsDistances(g, victim);
  std::vector<NodeId> chosen;
  for (std::uint32_t layer = moatRadius + 1; chosen.size() < count; ++layer) {
    bool any = false;
    for (NodeId u = 0; u < g.numNodes() && chosen.size() < count; ++u) {
      if (dist[u] == layer) {
        chosen.push_back(u);
        any = true;
      }
    }
    if (!any) break;  // graph exhausted
  }
  return chosen;
}

}  // namespace

ByzantineSet placeByzantine(const Graph& g, const PlacementSpec& spec, Rng& rng) {
  BZC_REQUIRE(spec.victim < g.numNodes() || g.numNodes() == 0, "victim out of range");
  const std::size_t cap = g.numNodes() > 0 ? g.numNodes() - 1 : 0;
  const std::size_t count = std::min(spec.count, cap);
  std::vector<NodeId> members;
  switch (spec.kind) {
    case Placement::None:
      break;
    case Placement::Random:
      members = placeRandom(g, count, spec.victim, rng);
      break;
    case Placement::Spread:
      members = placeSpread(g, count, spec.victim, rng);
      break;
    case Placement::Ball:
      members = placeBall(g, count, spec.victim);
      break;
    case Placement::Surround:
      members = placeSurround(g, count, spec.victim, spec.moatRadius);
      break;
  }
  return ByzantineSet(g.numNodes(), std::move(members));
}

}  // namespace bzc
