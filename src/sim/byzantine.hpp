// Byzantine node sets and adversarial placement strategies.
//
// The paper assumes *arbitrarily (adversarially) placed* Byzantine nodes; the
// placements here realise the specific worst cases its discussion singles
// out: uniformly random placement (the benign-ish baseline assumed by the
// prior work [14]), spread placement (maximise coverage so as many honest
// nodes as possible are near a Byzantine node), ball placement (concentrate
// the budget around victims), and the Remark 1 "surround" placement that
// swallows a set U of good nodes behind a Byzantine moat.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace bzc {

/// Membership structure for the Byzantine set.
class ByzantineSet {
 public:
  ByzantineSet() = default;
  ByzantineSet(NodeId numNodes, std::vector<NodeId> members);

  [[nodiscard]] bool contains(NodeId u) const { return mask_.at(u) != 0; }
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept { return members_; }
  [[nodiscard]] std::size_t count() const noexcept { return members_.size(); }
  [[nodiscard]] NodeId numNodes() const noexcept { return static_cast<NodeId>(mask_.size()); }

  /// Honest nodes in index order.
  [[nodiscard]] std::vector<NodeId> honestNodes() const;

  /// Distance from every node to the nearest Byzantine node (kUnreachable
  /// everywhere when the set is empty).
  [[nodiscard]] std::vector<std::uint32_t> distanceToByzantine(const Graph& g) const;

 private:
  std::vector<char> mask_;
  std::vector<NodeId> members_;
};

/// Paper budget B(n) = floor(n^(1-gamma)).
[[nodiscard]] std::size_t byzantineBudget(NodeId n, double gamma);

enum class Placement {
  None,      ///< no Byzantine nodes
  Random,    ///< uniform without replacement
  Spread,    ///< greedy max-min-distance (k-center style) coverage
  Ball,      ///< pack a BFS ball around a victim node
  Surround,  ///< Remark 1: occupy the boundary of a ball around a victim,
             ///< then fill remaining budget by packing outward
};

struct PlacementSpec {
  Placement kind = Placement::Random;
  std::size_t count = 0;   ///< number of Byzantine nodes
  NodeId victim = 0;       ///< focus node for Ball/Surround
  std::uint32_t moatRadius = 2;  ///< Surround: radius of the protected ball
};

/// Materialises a placement on g. Never places more than n-1 nodes and never
/// makes the victim itself Byzantine.
[[nodiscard]] ByzantineSet placeByzantine(const Graph& g, const PlacementSpec& spec, Rng& rng);

}  // namespace bzc
