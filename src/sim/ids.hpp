// Opaque public identifiers.
//
// The paper's model (§2) requires node IDs drawn from an arbitrarily large
// set whose size is unknown, so that ID bit-length leaks nothing about n
// ("comparable black boxes"). We realise this with uniform 64-bit IDs,
// collision-checked at construction; protocol messages and bit-metering use
// PublicId while the topology and simulator use dense NodeId indices.
#pragma once

#include <unordered_map>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace bzc {

class IdSpace {
 public:
  /// Assigns distinct random public IDs to nodes [0, n).
  IdSpace(NodeId n, Rng& rng);

  [[nodiscard]] NodeId size() const noexcept { return static_cast<NodeId>(toPublic_.size()); }
  [[nodiscard]] PublicId publicId(NodeId u) const { return toPublic_.at(u); }

  /// kNoNode when the ID is unknown (e.g. fabricated by a Byzantine node).
  [[nodiscard]] NodeId lookup(PublicId id) const;

  /// Bits a message pays to carry one ID.
  [[nodiscard]] static constexpr std::size_t bitsPerId() noexcept { return 64; }

 private:
  std::vector<PublicId> toPublic_;
  std::unordered_map<PublicId, NodeId> toInternal_;
};

}  // namespace bzc
