#pragma once
// Causal provenance & damage attribution (DESIGN.md §14).
//
// A BlameGraph is a per-trial bipartite multigraph: Byzantine cause ->
// honest outcome, with a typed edge per (kind, cause, victim) triple and an
// integer count. Causes are dense NodeIds during a trial (remapped to global
// overlay ids for churn recounts); victims are NodeIds of the honest node
// that absorbed the damage, or kBlameNone for graph-wide outcomes (continue
// spam, suppressed relays of forged beacons, ...).
//
// Collection is UNCONDITIONAL and strictly observational: edges are keyed
// counter increments driven entirely by committed protocol state — no RNG
// draws, no control-flow changes — so all golden fingerprints are
// bit-identical whether or not a sink exports the graph (`BZC_ATTRIB`
// toggles export only, mirroring BZC_TRACE / BZC_METRICS). Parallel phases
// record into per-shard BlameGraph lanes that are merge()d at the existing
// serial sink points; merge is a keyed sum, hence order-invariant, so the
// canonical projection is identical across runner threads x shards x
// pipeline depth (pinned by tests/provenance_test.cpp).

#include <cstdint>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace bzc::obs {

/// Cause/victim sentinel: "no specific node" (unattributed cause or
/// graph-wide victim).
inline constexpr std::uint64_t kBlameNone = ~0ull;

/// Typed edge kinds. Walk-stage kinds reconcile 1:1 against
/// `AdversaryStats`, beacon-stage kinds against `BeaconAdversaryStats`
/// (see blame_report.py --check for the exact identities).
enum class BlameKind : std::uint8_t {
  // Walk / agreement stage.
  DroppedQuery = 0,     ///< byz relay dropped an outbound query token
  DroppedAnswer,        ///< byz relay dropped a returning answer token
  FlippedAnswer,        ///< byz relay inverted the answer bit in transit
  MisroutedAnswer,      ///< byz relay redirected an answer off-path
  StrayAnswer,          ///< misrouted answer landed at a non-origin node
  ForgedAnswer,         ///< walk endpoint answer forged by the adversary
  CompromisedSample,    ///< origin accepted a compromised sample
  WrongDecision,        ///< local majority bit flipped by compromised samples
  // Beacon / counting stage.
  BeaconForged,         ///< fresh forged beacon injected at the forge boundary
  RelayTampered,        ///< in-transit beacon replaced at a byz relay
  RelaySuppressed,      ///< beacon relay dropped at a byz node
  ContinueSpam,         ///< spurious continue flood started by a byz node
  ContinueSuppressed,   ///< continue relay dropped at a byz node
  BlacklistedHonestId,  ///< honest node's id entered a blacklist off a tainted path
  BlacklistedFakeId,    ///< fabricated/byz id entered a blacklist off a tainted path
  // Churn.
  RejoinLineage,        ///< whitewashing rejoin: departed byz identity -> fresh identity
  kCount
};

inline constexpr std::size_t kBlameKinds = static_cast<std::size_t>(BlameKind::kCount);

/// Stable lowerCamel name used in the ATTRIB JSONL schema.
const char* blameKindName(BlameKind kind);

/// One row of the canonical (deterministic) projection.
struct BlameEdge {
  BlameKind kind;
  std::uint64_t cause;   ///< byz node id, or kBlameNone if unattributed
  std::uint64_t victim;  ///< honest node id, or kBlameNone if graph-wide
  std::uint64_t count;
};

/// Per-trial blame graph: keyed counters + named scalar totals.
class BlameGraph {
 public:
  void add(BlameKind kind, std::uint64_t cause, std::uint64_t victim,
           std::uint64_t count = 1) {
    edges_[Key{cause, victim, kind}] += count;
  }

  /// Keyed sum of another graph's edges and totals. Associative and
  /// commutative, so shard-lane / epoch folds are order-invariant.
  void merge(const BlameGraph& other);

  /// Named scalar totals (AdversaryStats mirrors, reconciliation
  /// denominators). addTotal sums on key collision, so merge() composes.
  void addTotal(const char* name, std::uint64_t value);
  std::uint64_t total(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& totals() const { return totals_; }

  /// Remap node-valued cause/victim ids through a dense -> global table
  /// (churn recounts; see epoch_runner.cpp). Empty table = identity.
  /// kBlameNone is preserved; ids beyond the table keep their value.
  void remapNodes(const std::vector<std::uint64_t>& denseToId);

  /// Sorted-by-(kind, cause, victim) edge list: the deterministic
  /// projection pinned across threads x shards x depth.
  std::vector<BlameEdge> canonical() const;

  /// FNV-1a over the canonical projection + totals (test pin).
  std::uint64_t fingerprint() const;

  /// Sum of edge counts for one kind.
  std::uint64_t kindCount(BlameKind kind) const;

  /// Sum of all edge counts with an attributed (non-kBlameNone) cause.
  std::uint64_t attributedCount() const;

  bool empty() const { return edges_.empty() && totals_.empty(); }
  void clear();

  /// Optional subset annotation, indexed by dense NodeId
  /// (CoalitionAssignment::subsetOf); empty when no coalition plan ran.
  /// Export-side only — never read on the hot path.
  std::vector<std::uint8_t> subsetOf;

  /// Optional BFS hop distance from the placement victim, indexed by dense
  /// NodeId (export-side; filled for sampled trials only, cleared when a
  /// churn remap invalidates dense indexing).
  std::vector<std::uint16_t> victimDistance;

 private:
  struct Key {
    std::uint64_t cause;
    std::uint64_t victim;
    BlameKind kind;
    bool operator==(const Key& o) const {
      return cause == o.cause && victim == o.victim && kind == o.kind;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = 0xcbf29ce484222325ull;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
      };
      mix(k.cause);
      mix(k.victim);
      mix(static_cast<std::uint64_t>(k.kind));
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<Key, std::uint64_t, KeyHash> edges_;
  std::map<std::string, std::uint64_t> totals_;
};

/// Sum over every edge (attributed or not).
std::uint64_t blameTotal(const BlameGraph& g);

/// Herfindahl–Hirschman concentration of attributed blame over causes:
/// sum over causes of (share of attributed blame)^2. 1.0 = one offender
/// owns all damage, ->0 = diffuse. 0 when nothing is attributed.
double blameConcentration(const BlameGraph& g);

/// Largest single-cause share of attributed blame (top-1 offender).
double blameTopShare(const BlameGraph& g);

/// Per-subset attributed blame via g.subsetOf; index kMaxSubsets-1 pools
/// causes with no subset mapping.
inline constexpr std::size_t kBlameMaxSubsets = 4;
std::vector<std::uint64_t> blameBySubset(const BlameGraph& g);

}  // namespace bzc::obs
