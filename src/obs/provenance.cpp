#include "obs/provenance.hpp"

#include <algorithm>
#include <cstring>

namespace bzc::obs {

const char* blameKindName(BlameKind kind) {
  switch (kind) {
    case BlameKind::DroppedQuery: return "droppedQuery";
    case BlameKind::DroppedAnswer: return "droppedAnswer";
    case BlameKind::FlippedAnswer: return "flippedAnswer";
    case BlameKind::MisroutedAnswer: return "misroutedAnswer";
    case BlameKind::StrayAnswer: return "strayAnswer";
    case BlameKind::ForgedAnswer: return "forgedAnswer";
    case BlameKind::CompromisedSample: return "compromisedSample";
    case BlameKind::WrongDecision: return "wrongDecision";
    case BlameKind::BeaconForged: return "beaconForged";
    case BlameKind::RelayTampered: return "relayTampered";
    case BlameKind::RelaySuppressed: return "relaySuppressed";
    case BlameKind::ContinueSpam: return "continueSpam";
    case BlameKind::ContinueSuppressed: return "continueSuppressed";
    case BlameKind::BlacklistedHonestId: return "blacklistedHonestId";
    case BlameKind::BlacklistedFakeId: return "blacklistedFakeId";
    case BlameKind::RejoinLineage: return "rejoinLineage";
    case BlameKind::kCount: break;
  }
  return "?";
}

void BlameGraph::merge(const BlameGraph& other) {
  for (const auto& [key, count] : other.edges_) edges_[key] += count;
  for (const auto& [name, value] : other.totals_) totals_[name] += value;
  if (subsetOf.empty()) subsetOf = other.subsetOf;
  if (victimDistance.empty()) victimDistance = other.victimDistance;
}

void BlameGraph::addTotal(const char* name, std::uint64_t value) {
  totals_[name] += value;
}

std::uint64_t BlameGraph::total(const std::string& name) const {
  const auto it = totals_.find(name);
  return it == totals_.end() ? 0 : it->second;
}

void BlameGraph::remapNodes(const std::vector<std::uint64_t>& denseToId) {
  if (denseToId.empty() || edges_.empty()) return;
  const auto remap = [&denseToId](std::uint64_t id) {
    return id < denseToId.size() ? denseToId[id] : id;
  };
  std::unordered_map<Key, std::uint64_t, KeyHash> remapped;
  remapped.reserve(edges_.size());
  for (const auto& [key, count] : edges_) {
    Key k = key;
    if (k.cause != kBlameNone) k.cause = remap(k.cause);
    if (k.victim != kBlameNone) k.victim = remap(k.victim);
    remapped[k] += count;
  }
  edges_ = std::move(remapped);
  // Dense indexing no longer matches the remapped ids.
  subsetOf.clear();
  victimDistance.clear();
}

std::vector<BlameEdge> BlameGraph::canonical() const {
  std::vector<BlameEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, count] : edges_)
    out.push_back(BlameEdge{key.kind, key.cause, key.victim, count});
  std::sort(out.begin(), out.end(), [](const BlameEdge& a, const BlameEdge& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.cause != b.cause) return a.cause < b.cause;
    return a.victim < b.victim;
  });
  return out;
}

std::uint64_t BlameGraph::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const BlameEdge& e : canonical()) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.cause);
    mix(e.victim);
    mix(e.count);
  }
  for (const auto& [name, value] : totals_) {
    for (const char c : name) mix(static_cast<std::uint64_t>(c));
    mix(value);
  }
  return h;
}

std::uint64_t BlameGraph::kindCount(BlameKind kind) const {
  std::uint64_t sum = 0;
  for (const auto& [key, count] : edges_)
    if (key.kind == kind) sum += count;
  return sum;
}

std::uint64_t BlameGraph::attributedCount() const {
  std::uint64_t sum = 0;
  for (const auto& [key, count] : edges_)
    if (key.cause != kBlameNone) sum += count;
  return sum;
}

void BlameGraph::clear() {
  edges_.clear();
  totals_.clear();
  subsetOf.clear();
  victimDistance.clear();
}

std::uint64_t blameTotal(const BlameGraph& g) {
  std::uint64_t sum = 0;
  for (const BlameEdge& e : g.canonical()) sum += e.count;
  return sum;
}

namespace {

std::map<std::uint64_t, std::uint64_t> perCauseAttributed(const BlameGraph& g) {
  std::map<std::uint64_t, std::uint64_t> byCause;
  for (const BlameEdge& e : g.canonical())
    if (e.cause != kBlameNone) byCause[e.cause] += e.count;
  return byCause;
}

}  // namespace

double blameConcentration(const BlameGraph& g) {
  const auto byCause = perCauseAttributed(g);
  std::uint64_t total = 0;
  for (const auto& [cause, count] : byCause) total += count;
  if (total == 0) return 0.0;
  double hhi = 0.0;
  for (const auto& [cause, count] : byCause) {
    const double share = static_cast<double>(count) / static_cast<double>(total);
    hhi += share * share;
  }
  return hhi;
}

double blameTopShare(const BlameGraph& g) {
  const auto byCause = perCauseAttributed(g);
  std::uint64_t total = 0;
  std::uint64_t top = 0;
  for (const auto& [cause, count] : byCause) {
    total += count;
    top = std::max(top, count);
  }
  if (total == 0) return 0.0;
  return static_cast<double>(top) / static_cast<double>(total);
}

std::vector<std::uint64_t> blameBySubset(const BlameGraph& g) {
  std::vector<std::uint64_t> out(kBlameMaxSubsets, 0);
  for (const BlameEdge& e : g.canonical()) {
    if (e.cause == kBlameNone) continue;
    std::uint8_t subset = 0xff;
    if (e.cause < g.subsetOf.size()) subset = g.subsetOf[e.cause];
    if (subset < kBlameMaxSubsets - 1)
      out[subset] += e.count;
    else
      out[kBlameMaxSubsets - 1] += e.count;
  }
  return out;
}

}  // namespace bzc::obs
