// Trace exporters: JSONL event stream, chrome://tracing timeline, an
// in-memory capture for tests, and a tee. See DESIGN.md §12 for the schema.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace bzc::obs {

namespace detail {
/// Minimal JSON string escaping shared by the JSONL/metrics exporters.
[[nodiscard]] std::string jsonEscape(const std::string& s);
}  // namespace detail

/// One JSON object per line. Per trial: a `trial` header line, every event
/// in buffer order, then an `end` line carrying the event count (the
/// validator cross-checks it). tools/trace_summary.py validates, summarizes
/// and diffs this format.
class JsonlTraceSink : public TraceSink {
 public:
  /// Truncates `path` and writes to it.
  explicit JsonlTraceSink(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit JsonlTraceSink(std::ostream& os);
  ~JsonlTraceSink() override;

  void consume(const TrialTrace& trace) override;

  static void writeTrace(std::ostream& os, const TrialTrace& trace);

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// Chrome trace_event format (the JSON-array form chrome://tracing and
/// Perfetto load directly). Spans become complete ("X") events, counters
/// counter ("C") events, rounds a pair of counter tracks (engine.messages /
/// engine.bits) plus marks as instants ("i"). pid = consumption sequence
/// number (one process per consumed trial, labelled scenario#trial), tid =
/// event lane (0 = trial thread, epoch number for pipelined recounts) — the
/// lanes are what make epoch-pipeline overlap visible. Events accumulate and
/// the file is written on destruction (program exit for the env-installed
/// sink).
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void consume(const TrialTrace& trace) override;

 private:
  std::mutex mutex_;
  std::string path_;
  std::vector<std::string> lines_;  ///< pre-rendered event objects
  std::uint32_t nextPid_ = 0;
};

/// Blame-graph exporter (BZC_ATTRIB, DESIGN.md §14): one JSON object per
/// consumed trial carrying the canonical edge projection (kind/subset/cause/
/// victim/count), the named reconciliation totals, and — when present — the
/// victim-distance table for concentration-vs-distance curves.
/// tools/blame_report.py renders and `--check`s this format.
class AttribJsonlSink : public TraceSink {
 public:
  /// Truncates `path` and writes to it.
  explicit AttribJsonlSink(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit AttribJsonlSink(std::ostream& os);
  ~AttribJsonlSink() override;

  void consume(const TrialTrace& trace) override;

  static void writeBlame(std::ostream& os, const TrialTrace& trace);

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// Test sink: stores deep copies of every consumed buffer.
class CapturingTraceSink : public TraceSink {
 public:
  void consume(const TrialTrace& trace) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    traces_.push_back(trace);
  }
  [[nodiscard]] const std::vector<TrialTrace>& traces() const noexcept { return traces_; }
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
  }

 private:
  std::mutex mutex_;
  std::vector<TrialTrace> traces_;
};

/// Fans consume() out to both children (BZC_TRACE and BZC_TRACE_CHROME set
/// together).
class TeeTraceSink : public TraceSink {
 public:
  TeeTraceSink(std::shared_ptr<TraceSink> a, std::shared_ptr<TraceSink> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  void consume(const TrialTrace& trace) override {
    if (a_) a_->consume(trace);
    if (b_) b_->consume(trace);
  }

 private:
  std::shared_ptr<TraceSink> a_;
  std::shared_ptr<TraceSink> b_;
};

}  // namespace bzc::obs
