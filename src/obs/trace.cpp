#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "support/log.hpp"

namespace bzc::obs {

namespace {

/// Process-wide epoch: every trace timestamp is relative to the first clock
/// read, so buffers from concurrent trials share one timeline.
std::chrono::steady_clock::time_point traceEpoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

thread_local TrialTrace* t_currentTrace = nullptr;

std::mutex g_sinkMutex;
std::shared_ptr<TraceSink> g_sink;            // guarded by g_sinkMutex
std::uint32_t g_sampleTrials = 1;             // guarded by g_sinkMutex

/// Log bridge: mirrors Warn+ log lines into the active trace as Mark events
/// (value = numeric level), keeping console output unchanged — the single
/// sink support/log.hpp routes through once tracing is configured.
void traceLogSink(LogLevel level, const std::string& message) {
  defaultLogSink(level, message);
  if (static_cast<int>(level) < static_cast<int>(LogLevel::Warn)) return;
  if (TrialTrace* t = currentTrace()) {
    t->mark("log.warn", static_cast<double>(static_cast<int>(level)));
  }
}

}  // namespace

const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::Round: return "round";
    case EventKind::Span: return "span";
    case EventKind::Counter: return "counter";
    case EventKind::Mark: return "mark";
  }
  return "?";
}

std::int64_t traceClockNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              traceEpoch())
      .count();
}

TrialTrace* currentTrace() noexcept { return t_currentTrace; }

TraceScope::TraceScope(TrialTrace* trace) noexcept : prev_(t_currentTrace) {
  t_currentTrace = trace;
}

TraceScope::~TraceScope() { t_currentTrace = prev_; }

void setTraceSink(std::shared_ptr<TraceSink> sink, std::uint32_t sampleTrials) {
  const std::lock_guard<std::mutex> lock(g_sinkMutex);
  g_sink = std::move(sink);
  g_sampleTrials = sampleTrials == 0 ? 1 : sampleTrials;
  setLogSink(g_sink != nullptr ? traceLogSink : defaultLogSink);
}

std::shared_ptr<TraceSink> traceSink() {
  const std::lock_guard<std::mutex> lock(g_sinkMutex);
  return g_sink;
}

std::uint32_t traceSampleTrials() noexcept {
  const std::lock_guard<std::mutex> lock(g_sinkMutex);
  return g_sampleTrials;
}

namespace {
std::atomic<bool> g_flowMarks{false};
}  // namespace

void setTraceFlowMarks(bool enabled) noexcept {
  g_flowMarks.store(enabled, std::memory_order_relaxed);
}

bool traceFlowMarks() noexcept { return g_flowMarks.load(std::memory_order_relaxed); }

void ensureEnvTraceConfig() {
  static std::once_flag once;
  std::call_once(once, [] {
    {
      const std::lock_guard<std::mutex> lock(g_sinkMutex);
      if (g_sink != nullptr) return;  // programmatic install wins
    }
    const char* jsonl = std::getenv("BZC_TRACE");
    const char* chrome = std::getenv("BZC_TRACE_CHROME");
    const char* metrics = std::getenv("BZC_METRICS");
    const char* attrib = std::getenv("BZC_ATTRIB");
    // Empty string = unset (CI loops export "" for untraced iterations).
    if (jsonl != nullptr && *jsonl == '\0') jsonl = nullptr;
    if (chrome != nullptr && *chrome == '\0') chrome = nullptr;
    if (metrics != nullptr && *metrics == '\0') metrics = nullptr;
    if (attrib != nullptr && *attrib == '\0') attrib = nullptr;
    if (jsonl == nullptr && chrome == nullptr && metrics == nullptr && attrib == nullptr) return;
    std::shared_ptr<TraceSink> sink;
    const auto tee = [&sink](std::shared_ptr<TraceSink> next) {
      sink = sink ? std::static_pointer_cast<TraceSink>(
                        std::make_shared<TeeTraceSink>(std::move(sink), std::move(next)))
                  : std::move(next);
    };
    if (jsonl != nullptr) tee(std::make_shared<JsonlTraceSink>(std::string(jsonl)));
    if (chrome != nullptr) tee(std::make_shared<ChromeTraceSink>(std::string(chrome)));
    if (metrics != nullptr) tee(std::make_shared<MetricsJsonlSink>(std::string(metrics)));
    if (attrib != nullptr) tee(std::make_shared<AttribJsonlSink>(std::string(attrib)));
    std::uint32_t sample = 1;
    if (const char* env = std::getenv("BZC_TRACE_TRIALS")) {
      const int v = std::atoi(env);
      if (v > 0) sample = static_cast<std::uint32_t>(v);
    }
    if (const char* env = std::getenv("BZC_TRACE_FLOW")) {
      if (*env != '\0' && *env != '0') setTraceFlowMarks(true);
    }
    setTraceSink(std::move(sink), sample);
  });
}

}  // namespace bzc::obs
