// Observability core: round-level tracing and phase-timing telemetry.
//
// The paper's claims are about *dynamics* — blacklist growth per iteration,
// undecided counts per phase, bit spend per round — but every recorded
// outcome used to be an end-of-run aggregate. This module closes the gap
// with a trace layer that is strictly observational: probes read committed
// run state and the wall clock, never an RNG stream, so every golden
// fingerprint is bit-identical with tracing on or off (tests/obs_test.cpp
// pins this across the golden families). See DESIGN.md §12.
//
// Shape:
//  - TrialTrace: an event buffer owned by one trial. All emission happens on
//    the thread currently driving that trial (engine flush points, protocol
//    iteration boundaries, epoch folds) — the shard-parallel phases never
//    emit, they only have their lane *sizes* recorded from the serial merge.
//    Buffers are therefore lock-free and their event order is a pure
//    function of the trial, at any thread/shard/pipeline-depth count.
//  - currentTrace(): a thread-local pointer installed scoped (TraceScope)
//    around a sampled trial. Null = tracing off; every probe is then a
//    thread-local load and a branch — the "null sink" hot path.
//  - TraceSink: consumes completed trial buffers *serially, in trial index
//    order* (ExperimentRunner feeds it after the parallel fan-out), so the
//    exported stream is deterministic even though trials ran concurrently.
//    Wall-clock fields (ts/dur/ns) are the one nondeterministic payload and
//    are excluded from the deterministic projection tools/trace_summary.py
//    and the determinism tests compare.
//
// Pipelined churn trials: each epoch recount traces into its own child
// buffer (installed on whichever worker runs the recount) and the serial
// finalization fold splices children back in epoch order, so the
// deterministic projection is also pipeline-depth invariant; the preserved
// timestamps are what make the overlap visible on a chrome://tracing
// timeline (children render as separate lanes).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/provenance.hpp"

namespace bzc::obs {

/// Mirrors runtime kMaxEngineShards without depending on the engine header
/// (obs is a leaf module; the runtime includes us, not the other way).
inline constexpr unsigned kTraceMaxShards = 16;

enum class EventKind : std::uint8_t {
  Round,    ///< one engine round: traffic, touched receivers, lane sizes
  Span,     ///< completed phase span (name, start, duration)
  Counter,  ///< named domain counter sampled at a serial point
  Mark,     ///< point annotation (log mirror, skip notes)
};

[[nodiscard]] const char* eventKindName(EventKind kind);

/// What SyncEngine records at the end of every round (DESIGN.md §12).
struct RoundRecord {
  std::uint64_t round = 0;     ///< engine round counter after this round
  std::uint32_t sends = 0;     ///< queued sends flushed (honest + Byzantine)
  std::uint32_t touched = 0;   ///< receivers whose inbox became nonempty
  std::uint64_t messages = 0;  ///< metered honest edge-messages (delta)
  std::uint64_t bits = 0;      ///< metered honest bits (delta)
  std::uint8_t shards = 1;
  std::uint8_t idle = 0;  ///< 1: the round moved no traffic (quiescence signal)
  /// Recv-phase lane sizes this round's recv produced, per shard (S > 1
  /// only): how the canonical merge's inputs were distributed.
  std::array<std::uint32_t, kTraceMaxShards> laneSends{};
  // Wall-clock phase timings (ns); nondeterministic payload, excluded from
  // the deterministic projection. Serial engines fold flush into scatterNs.
  std::int64_t recvNs = 0;
  std::int64_t mergeNs = 0;
  std::int64_t scatterNs = 0;
};

struct TraceEvent {
  EventKind kind = EventKind::Mark;
  const char* name = nullptr;  ///< static string; nullptr for Round events
  std::uint64_t round = 0;     ///< engine round at emission (0 when n/a)
  double value = 0.0;          ///< Counter/Mark payload
  std::int64_t tsNs = 0;       ///< wall clock, ns since the shared session epoch
  std::int64_t durNs = 0;      ///< Span only
  std::uint32_t lane = 0;      ///< 0 = trial thread; epoch # for pipelined recounts
  RoundRecord rd;              ///< Round only
};

/// Monotonic ns since the process-wide trace epoch (shared across trials so
/// concurrent spans overlap correctly on one timeline).
[[nodiscard]] std::int64_t traceClockNs() noexcept;

class TrialTrace {
 public:
  std::string scenario;
  std::uint32_t trial = 0;
  std::vector<TraceEvent> events;
  /// The trial's resolved blame graph (DESIGN.md §14), copied in by the
  /// runner at the serial sink point just before consume(); collection is
  /// unconditional, so this is export plumbing only. AttribJsonlSink
  /// (BZC_ATTRIB) serializes it.
  BlameGraph blame;

  void round(const RoundRecord& r) {
    TraceEvent e;
    e.kind = EventKind::Round;
    e.round = r.round;
    e.tsNs = traceClockNs();
    e.rd = r;
    events.push_back(e);
  }
  void counter(const char* name, double value, std::uint64_t round = 0) {
    TraceEvent e;
    e.kind = EventKind::Counter;
    e.name = name;
    e.round = round;
    e.value = value;
    e.tsNs = traceClockNs();
    events.push_back(e);
  }
  void mark(const char* name, double value = 0.0, std::uint64_t round = 0) {
    TraceEvent e;
    e.kind = EventKind::Mark;
    e.name = name;
    e.round = round;
    e.value = value;
    e.tsNs = traceClockNs();
    events.push_back(e);
  }
  /// Completed span: events append at *completion*, so buffer order stays a
  /// pure function of execution order on the owning thread.
  void span(const char* name, std::int64_t startNs, std::uint64_t round = 0) {
    TraceEvent e;
    e.kind = EventKind::Span;
    e.name = name;
    e.round = round;
    e.tsNs = startNs;
    e.durNs = traceClockNs() - startNs;
    events.push_back(e);
  }
  /// Appends a child buffer's events tagged with `lane` (epoch recounts).
  /// Called only from serial folds, in a deterministic order; timestamps are
  /// preserved so concurrent children still overlap on the timeline.
  void splice(TrialTrace&& child, std::uint32_t lane) {
    events.reserve(events.size() + child.events.size());
    for (TraceEvent& e : child.events) {
      e.lane = lane;
      events.push_back(e);
    }
    child.events.clear();
  }
};

// --- the thread-local probe target ------------------------------------------

/// The trace of the trial this thread is currently driving; null = off.
[[nodiscard]] TrialTrace* currentTrace() noexcept;

/// RAII install of a trial's trace on this thread (nests: restores the
/// previous pointer, so a child recount scope inside a traced churn trial
/// works on the same thread for the inline depth-1 path).
class TraceScope {
 public:
  explicit TraceScope(TrialTrace* trace) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TrialTrace* prev_;
};

/// Phase span helper: reads currentTrace() once at construction; a null
/// trace makes both ends a no-op (the clock is never read).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, std::uint64_t round = 0) noexcept
      : trace_(currentTrace()), name_(name), round_(round) {
    if (trace_ != nullptr) start_ = traceClockNs();
  }
  ~ScopedTimer() {
    if (trace_ != nullptr) trace_->span(name_, start_, round_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TrialTrace* trace_;
  const char* name_;
  std::uint64_t round_;
  std::int64_t start_ = 0;
};

/// One-liner probe for call sites that emit a single counter.
inline void emitCounter(const char* name, double value, std::uint64_t round = 0) {
  if (TrialTrace* t = currentTrace()) t->counter(name, value, round);
}

// --- the sink ---------------------------------------------------------------

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Receives one completed trial buffer. Called serially in trial index
  /// order per scenario; implementations still guard with a mutex so
  /// overlapping runners cannot corrupt the stream.
  virtual void consume(const TrialTrace& trace) = 0;
};

/// Installs the process-wide sink (null disables tracing) and how many
/// leading trials of each scenario to sample. Also bridges BZC_WARN+ log
/// lines into the active trace as Mark events (the "single sink" the log
/// layer shares — support/log.hpp).
void setTraceSink(std::shared_ptr<TraceSink> sink, std::uint32_t sampleTrials = 1);

[[nodiscard]] std::shared_ptr<TraceSink> traceSink();
[[nodiscard]] std::uint32_t traceSampleTrials() noexcept;

/// Per-token walk lifecycle marks (walk.launch / walk.answer / walk.drop —
/// the events ChromeTraceSink pairs into flow arrows). Off by default even
/// when tracing: a traced agreement trial emits O(n) marks per iteration,
/// which would dominate every nightly trace. BZC_TRACE_FLOW=1 (or a
/// programmatic set) opts in; purely an emission gate, so the protocol
/// goldens are unaffected either way.
void setTraceFlowMarks(bool enabled) noexcept;
[[nodiscard]] bool traceFlowMarks() noexcept;

/// Lazily configures the sink from the environment, once per process:
/// BZC_TRACE=path (JSONL event stream), BZC_TRACE_CHROME=path (chrome
/// trace_event timeline), BZC_METRICS=path (per-trial histogram/series JSONL
/// derived at the sink, obs/metrics.hpp — tools/metrics_report.py renders
/// it), BZC_ATTRIB=path (per-trial blame-graph JSONL, obs/provenance.hpp —
/// tools/blame_report.py renders it), BZC_TRACE_TRIALS=k (sample width,
/// default 1). Called by
/// ExperimentRunner on first use so every bench/example/test honors the
/// knobs without plumbing. A sink installed programmatically before the
/// first run wins over the environment.
void ensureEnvTraceConfig();

}  // namespace bzc::obs
