#include "obs/sinks.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "support/require.hpp"

namespace bzc::obs {

namespace detail {

/// Minimal JSON string escaping (names are static identifiers; scenario
/// names come from bench code and could in principle carry anything).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

using detail::jsonEscape;

// --- JsonlTraceSink ---------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)), os_(owned_.get()) {
  BZC_REQUIRE(static_cast<std::ofstream&>(*owned_).is_open(),
              "BZC_TRACE: cannot open " + path);
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::~JsonlTraceSink() { os_->flush(); }

void JsonlTraceSink::writeTrace(std::ostream& os, const TrialTrace& trace) {
  os << "{\"type\":\"trial\",\"scenario\":\"" << jsonEscape(trace.scenario)
     << "\",\"trial\":" << trace.trial << "}\n";
  std::uint64_t rounds = 0, messages = 0, bits = 0;
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::Round: {
        const RoundRecord& r = e.rd;
        rounds += 1;
        messages += r.messages;
        bits += r.bits;
        os << "{\"type\":\"round\",\"round\":" << r.round << ",\"sends\":" << r.sends
           << ",\"touched\":" << r.touched << ",\"messages\":" << r.messages
           << ",\"bits\":" << r.bits << ",\"shards\":" << static_cast<unsigned>(r.shards)
           << ",\"idle\":" << static_cast<unsigned>(r.idle) << ",\"lane\":" << e.lane;
        if (r.shards > 1) {
          os << ",\"lanes\":[";
          for (unsigned s = 0; s < r.shards && s < kTraceMaxShards; ++s) {
            if (s > 0) os << ',';
            os << r.laneSends[s];
          }
          os << ']';
        }
        os << ",\"ts\":" << e.tsNs << ",\"recvNs\":" << r.recvNs << ",\"mergeNs\":" << r.mergeNs
           << ",\"scatterNs\":" << r.scatterNs << "}\n";
        break;
      }
      case EventKind::Span:
        os << "{\"type\":\"span\",\"name\":\"" << e.name << "\",\"round\":" << e.round
           << ",\"lane\":" << e.lane << ",\"ts\":" << e.tsNs << ",\"dur\":" << e.durNs << "}\n";
        break;
      case EventKind::Counter:
        os << "{\"type\":\"counter\",\"name\":\"" << e.name << "\",\"round\":" << e.round
           << ",\"lane\":" << e.lane << ",\"value\":" << e.value << ",\"ts\":" << e.tsNs
           << "}\n";
        break;
      case EventKind::Mark:
        os << "{\"type\":\"mark\",\"name\":\"" << e.name << "\",\"round\":" << e.round
           << ",\"lane\":" << e.lane << ",\"value\":" << e.value << ",\"ts\":" << e.tsNs
           << "}\n";
        break;
    }
  }
  // Totals let the validator reconcile without re-walking, and let tests pin
  // trace-vs-MessageMeter identity from the export alone.
  os << "{\"type\":\"end\",\"scenario\":\"" << jsonEscape(trace.scenario)
     << "\",\"trial\":" << trace.trial << ",\"events\":" << trace.events.size()
     << ",\"rounds\":" << rounds << ",\"messages\":" << messages << ",\"bits\":" << bits
     << "}\n";
}

void JsonlTraceSink::consume(const TrialTrace& trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(12);
  writeTrace(os, trace);
  *os_ << os.str();
  os_->flush();
}

// --- ChromeTraceSink --------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string& path) : path_(path) {}

ChromeTraceSink::~ChromeTraceSink() {
  std::ofstream os(path_, std::ios::trunc);
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (i > 0) os << ',';
    os << '\n' << lines_[i];
  }
  os << "\n]}\n";
}

void ChromeTraceSink::consume(const TrialTrace& trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t pid = nextPid_++;
  const auto us = [](std::int64_t ns) { return static_cast<double>(ns) / 1000.0; };
  {
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(trace.scenario) << "#"
       << trace.trial << "\"}}";
    lines_.push_back(os.str());
  }
  for (const TraceEvent& e : trace.events) {
    std::ostringstream os;
    os.precision(12);
    switch (e.kind) {
      case EventKind::Round:
        // Two counter tracks per lane: message and bit spend per round.
        os << "{\"ph\":\"C\",\"name\":\"engine.traffic\",\"pid\":" << pid
           << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs)
           << ",\"args\":{\"messages\":" << e.rd.messages << ",\"bits\":" << e.rd.bits
           << ",\"touched\":" << e.rd.touched << "}}";
        break;
      case EventKind::Span:
        os << "{\"ph\":\"X\",\"name\":\"" << e.name << "\",\"pid\":" << pid
           << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs) << ",\"dur\":" << us(e.durNs)
           << ",\"args\":{\"round\":" << e.round << "}}";
        break;
      case EventKind::Counter:
        os << "{\"ph\":\"C\",\"name\":\"" << e.name << "\",\"pid\":" << pid
           << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs) << ",\"args\":{\"value\":"
           << e.value << "}}";
        break;
      case EventKind::Mark:
        // Walk-token lifecycle marks additionally become flow events
        // ("s"/"f" pairs keyed by the token's provenance id, DESIGN.md §14):
        // chrome://tracing draws an arrow from each token's launch to its
        // answer/drop, across rounds and lanes. The instant is kept too so
        // the marks stay visible on the timeline.
        if (std::strcmp(e.name, "walk.launch") == 0) {
          os << "{\"ph\":\"s\",\"cat\":\"walk\",\"name\":\"walk\",\"id\":"
             << static_cast<std::uint64_t>(e.value) << ",\"pid\":" << pid
             << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs) << "}";
          lines_.push_back(os.str());
          os.str("");
        } else if (std::strcmp(e.name, "walk.answer") == 0 ||
                   std::strcmp(e.name, "walk.drop") == 0) {
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"walk\",\"name\":\"walk\",\"id\":"
             << static_cast<std::uint64_t>(e.value) << ",\"pid\":" << pid
             << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs) << "}";
          lines_.push_back(os.str());
          os.str("");
        }
        os << "{\"ph\":\"i\",\"name\":\"" << e.name << "\",\"pid\":" << pid
           << ",\"tid\":" << e.lane << ",\"ts\":" << us(e.tsNs) << ",\"s\":\"t\"}";
        break;
    }
    lines_.push_back(os.str());
  }
}

// --- AttribJsonlSink --------------------------------------------------------

AttribJsonlSink::AttribJsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)), os_(owned_.get()) {
  BZC_REQUIRE(static_cast<std::ofstream&>(*owned_).is_open(),
              "BZC_ATTRIB: cannot open " + path);
}

AttribJsonlSink::AttribJsonlSink(std::ostream& os) : os_(&os) {}

AttribJsonlSink::~AttribJsonlSink() { os_->flush(); }

void AttribJsonlSink::writeBlame(std::ostream& os, const TrialTrace& trace) {
  const BlameGraph& g = trace.blame;
  // Node-id fields use -1 for "none" (kBlameNone): unattributed cause /
  // graph-wide victim / no subset mapping.
  const auto id = [](std::uint64_t v) -> std::int64_t {
    return v == kBlameNone ? -1 : static_cast<std::int64_t>(v);
  };
  os << "{\"type\":\"blame\",\"scenario\":\"" << jsonEscape(trace.scenario)
     << "\",\"trial\":" << trace.trial << ",\"edges\":[";
  bool first = true;
  for (const BlameEdge& e : g.canonical()) {
    if (!first) os << ',';
    first = false;
    std::int64_t subset = -1;
    if (e.cause != kBlameNone && e.cause < g.subsetOf.size() && g.subsetOf[e.cause] != 0xff)
      subset = g.subsetOf[e.cause];
    os << "{\"kind\":\"" << blameKindName(e.kind) << "\",\"subset\":" << subset
       << ",\"cause\":" << id(e.cause) << ",\"victim\":" << id(e.victim)
       << ",\"count\":" << e.count << '}';
  }
  os << "],\"totals\":{";
  first = true;
  for (const auto& [name, value] : g.totals()) {
    if (!first) os << ',';
    first = false;
    os << '"' << jsonEscape(name) << "\":" << value;
  }
  os << '}';
  if (!g.victimDistance.empty()) {
    os << ",\"victimDist\":[";
    for (std::size_t i = 0; i < g.victimDistance.size(); ++i) {
      if (i > 0) os << ',';
      os << g.victimDistance[i];
    }
    os << ']';
  }
  os << "}\n";
}

void AttribJsonlSink::consume(const TrialTrace& trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  writeBlame(os, trace);
  *os_ << os.str();
  os_->flush();
}

}  // namespace bzc::obs
