#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "obs/sinks.hpp"
#include "support/require.hpp"

namespace bzc::obs {

namespace {

// Local FNV-1a: obs is a leaf module and must not pull in
// runtime/fingerprint.hpp (which drags protocol headers along).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnvBytes(const void* data, std::size_t len, std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

template <typename T>
std::uint64_t fnvPod(const T& value, std::uint64_t h) noexcept {
  return fnvBytes(&value, sizeof value, h);
}

std::uint64_t fnvStr(const std::string& s, std::uint64_t h) noexcept {
  h = fnvPod(s.size(), h);
  return fnvBytes(s.data(), s.size(), h);
}

std::uint64_t clampNs(std::int64_t ns) noexcept {
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

}  // namespace

// --- LogHistogram -----------------------------------------------------------

LogHistogram::LogHistogram(unsigned precision) : precision_(precision) {
  BZC_REQUIRE(precision >= 2 && precision <= 32, "LogHistogram precision out of range");
}

std::size_t LogHistogram::bucketIndex(std::uint64_t value, unsigned precision) noexcept {
  const std::uint64_t half = 1ULL << (precision - 1);
  if (value < half) return static_cast<std::size_t>(value);
  const unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(value));
  const unsigned shift = e - (precision - 1);
  const std::uint64_t sub = (value - (1ULL << e)) >> shift;
  return static_cast<std::size_t>((e - precision + 2) * half + sub);
}

std::uint64_t LogHistogram::bucketLo(std::size_t index, unsigned precision) noexcept {
  const std::uint64_t half = 1ULL << (precision - 1);
  if (index < half) return index;
  const unsigned e = static_cast<unsigned>(index / half) + precision - 2;
  if (e >= 64) return ~0ULL;  // one past the top bucket
  const std::uint64_t sub = index % half;
  return (1ULL << e) + (sub << (e - (precision - 1)));
}

std::uint64_t LogHistogram::bucketHi(std::size_t index, unsigned precision) noexcept {
  return bucketLo(index + 1, precision);
}

void LogHistogram::addN(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t idx = bucketIndex(value, precision_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += weight;
  count_ += weight;
  sum_ += value * weight;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) {
  BZC_REQUIRE(precision_ == other.precision_, "LogHistogram precision mismatch in merge");
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(c);
      const double lo = static_cast<double>(bucketLo(i, precision_));
      const double hiIncl = static_cast<double>(bucketHi(i, precision_) - 1);
      const double v = lo + frac * (hiIncl - lo);
      return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

// --- TrialMetrics -----------------------------------------------------------

TrialMetrics buildTrialMetrics(const TrialTrace& trace, unsigned precision) {
  TrialMetrics m;
  m.scenario = trace.scenario;
  m.trial = trace.trial;

  // Keyed build: emitted order is sorted by name, a pure function of content.
  std::map<std::string, NamedHistogram> hists;
  const auto histAt = [&](std::string name, bool wall) -> LogHistogram& {
    auto it = hists.find(name);
    if (it == hists.end()) {
      NamedHistogram h{name, wall, LogHistogram(precision)};
      it = hists.emplace(std::move(name), std::move(h)).first;
    }
    return it->second.hist;
  };

  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::Round: {
        const RoundRecord& r = e.rd;
        // Deterministic, shard-invariant per-round traffic (the canonical
        // merge makes sends/touched/messages/bits identical at any S).
        histAt("engine.sendsPerRound", false).add(r.sends);
        histAt("engine.touchedPerRound", false).add(r.touched);
        histAt("engine.messagesPerRound", false).add(r.messages);
        histAt("engine.bitsPerRound", false).add(r.bits);
        // Wall-clock phase timings: reporting payload only.
        histAt("engine.recvNs", true).add(clampNs(r.recvNs));
        histAt("engine.mergeNs", true).add(clampNs(r.mergeNs));
        histAt("engine.scatterNs", true).add(clampNs(r.scatterNs));
        break;
      }
      case EventKind::Span:
        histAt(std::string("span.") + e.name, true).add(clampNs(e.durNs));
        break;
      case EventKind::Counter:
      case EventKind::Mark:
        break;  // series payload, handled by buildSeries below
    }
  }
  m.hists.reserve(hists.size());
  for (auto& [name, h] : hists) m.hists.push_back(std::move(h));
  m.series = buildSeries(trace);
  return m;
}

std::uint64_t metricsFingerprint(const TrialMetrics& metrics) {
  std::uint64_t h = kFnvOffset;
  h = fnvStr(metrics.scenario, h);
  h = fnvPod(metrics.trial, h);
  for (const NamedHistogram& nh : metrics.hists) {
    if (nh.wall) continue;  // wall clocks are the nondeterministic payload
    h = fnvStr(nh.name, h);
    h = fnvPod(nh.hist.precision(), h);
    h = fnvPod(nh.hist.count(), h);
    h = fnvPod(nh.hist.sum(), h);
    h = fnvPod(nh.hist.min(), h);
    h = fnvPod(nh.hist.max(), h);
    nh.hist.forEachNonzero([&](std::size_t index, std::uint64_t, std::uint64_t,
                               std::uint64_t count) {
      h = fnvPod(index, h);
      h = fnvPod(count, h);
    });
  }
  for (const TimeSeries& s : metrics.series) {
    h = fnvStr(s.name, h);
    h = fnvPod(s.points.size(), h);
    for (const SeriesPoint& p : s.points) {
      h = fnvPod(p.round, h);
      h = fnvPod(p.lane, h);
      h = fnvPod(p.value, h);
    }
  }
  return h;
}

// --- MetricsJsonlSink -------------------------------------------------------

MetricsJsonlSink::MetricsJsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)), os_(owned_.get()) {
  BZC_REQUIRE(static_cast<std::ofstream&>(*owned_).is_open(),
              "BZC_METRICS: cannot open " + path);
}

MetricsJsonlSink::MetricsJsonlSink(std::ostream& os) : os_(&os) {}

MetricsJsonlSink::~MetricsJsonlSink() { os_->flush(); }

void MetricsJsonlSink::writeMetrics(std::ostream& os, const TrialMetrics& m) {
  os << "{\"type\":\"metrics\",\"scenario\":\"" << detail::jsonEscape(m.scenario)
     << "\",\"trial\":" << m.trial << ",\"fingerprint\":\"0x" << std::hex
     << metricsFingerprint(m) << std::dec << "\",\"hists\":[";
  for (std::size_t i = 0; i < m.hists.size(); ++i) {
    const NamedHistogram& nh = m.hists[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << detail::jsonEscape(nh.name) << "\",\"wall\":" << (nh.wall ? 1 : 0)
       << ",\"precision\":" << nh.hist.precision() << ",\"count\":" << nh.hist.count()
       << ",\"sum\":" << nh.hist.sum() << ",\"min\":" << nh.hist.min()
       << ",\"max\":" << nh.hist.max() << ",\"buckets\":[";
    bool first = true;
    nh.hist.forEachNonzero(
        [&](std::size_t index, std::uint64_t lo, std::uint64_t, std::uint64_t count) {
          if (!first) os << ',';
          first = false;
          os << '[' << index << ',' << lo << ',' << count << ']';
        });
    os << "]}";
  }
  os << "],\"series\":[";
  for (std::size_t i = 0; i < m.series.size(); ++i) {
    const TimeSeries& s = m.series[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << detail::jsonEscape(s.name) << "\",\"points\":[";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      if (j > 0) os << ',';
      os << '[' << s.points[j].round << ',' << s.points[j].lane << ',' << s.points[j].value
         << ']';
    }
    os << "]}";
  }
  os << "]}\n";
}

void MetricsJsonlSink::consume(const TrialTrace& trace) {
  const TrialMetrics m = buildTrialMetrics(trace);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(12);
  writeMetrics(os, m);
  *os_ << os.str();
  os_->flush();
}

}  // namespace bzc::obs
