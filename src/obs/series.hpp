// Round-resolution time series derived from trace buffers (DESIGN.md §13).
//
// A TimeSeries is the per-round trajectory of one domain counter — beacon
// undecided counts per phase, blacklist insertions per iteration, churn
// estimate/staleness per epoch — i.e. the convergence dynamics behind the
// paper's Theorem 1/2 claims. Series are *derived* from a completed
// TrialTrace at the serial sink point, never recorded protocol-side, so they
// inherit the trace layer's determinism wholesale: the series built from a
// trial's trace are a pure function of the trial at any runner thread count,
// shard count, or pipeline depth (tests/metrics_test.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bzc::obs {

class TrialTrace;

/// One sample of a domain counter. `round` is the engine round at emission
/// (protocol iteration/phase boundaries), `lane` the emitting lane (0 = trial
/// thread, epoch number for pipelined churn recounts) — kept so per-epoch
/// series don't collapse when rounds restart at each recount.
struct SeriesPoint {
  std::uint64_t round = 0;
  std::uint32_t lane = 0;
  double value = 0.0;

  friend bool operator==(const SeriesPoint& a, const SeriesPoint& b) {
    return a.round == b.round && a.lane == b.lane && a.value == b.value;
  }
};

/// All samples of one named counter, in trace-buffer (= execution) order.
struct TimeSeries {
  std::string name;
  std::vector<SeriesPoint> points;

  friend bool operator==(const TimeSeries& a, const TimeSeries& b) {
    return a.name == b.name && a.points == b.points;
  }
};

/// Extracts every Counter event (series named after the counter) and every
/// Mark event (series "mark.<name>") from a completed trace, one TimeSeries
/// per distinct name, sorted by name; points keep buffer order within a
/// series. Deterministic-projection payload only — no wall-clock fields.
[[nodiscard]] std::vector<TimeSeries> buildSeries(const TrialTrace& trace);

}  // namespace bzc::obs
