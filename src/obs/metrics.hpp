// Deterministic metrics layer on top of the trace buffers (DESIGN.md §13).
//
// Two pieces:
//
//  - LogHistogram: an HDR-style log-linear streaming histogram over uint64
//    values with *fixed* bucket boundaries (a pure function of the precision,
//    never of the data). Values below 2^P are exact; above, each power-of-two
//    octave splits into 2^(P-1) equal sub-buckets, bounding relative error by
//    2^-(P-1) (≤ 3.2% at the default P = 6) with at most 1920 buckets across
//    the full 64-bit range. Buckets hold integer counts, so merging is plain
//    integer addition: exact, associative and commutative — merging per-shard
//    / per-epoch / per-trial histograms in any grouping yields identical
//    buckets (tests/metrics_test.cpp shuffles 256-way merges to pin this).
//
//  - TrialMetrics: the per-trial metrics bundle — named histograms distilled
//    from SyncEngine round records and phase spans, plus the round-resolution
//    TimeSeries of every domain counter (obs/series.hpp). It is *derived*
//    from a completed TrialTrace at the serial sink point, never accumulated
//    protocol-side, so it is strictly observational (golden fingerprints are
//    bit-identical metrics on/off) and its deterministic projection — every
//    histogram not flagged `wall`, plus all series — is a pure function of
//    the trial at any runner thread count, shard count, or pipeline depth.
//    Wall-clock histograms (recv/merge/scatter ns, span durations) are kept
//    for reporting but excluded from metricsFingerprint(), exactly like the
//    trace projection excludes ts/dur fields.
//
// Export: BZC_METRICS=path installs a MetricsJsonlSink (one JSON line per
// sampled trial) next to the BZC_TRACE knobs; tools/metrics_report.py renders
// the convergence curves and phase-time attribution tables from it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/series.hpp"
#include "obs/trace.hpp"

namespace bzc::obs {

class LogHistogram {
 public:
  /// Sub-bucket precision in bits. Exact below 2^P; 2^(P-1) sub-buckets per
  /// octave above.
  static constexpr unsigned kDefaultPrecision = 6;

  explicit LogHistogram(unsigned precision = kDefaultPrecision);

  void add(std::uint64_t value) { addN(value, 1); }
  void addN(std::uint64_t value, std::uint64_t weight);

  /// Exact merge: per-bucket integer addition. Requires equal precision.
  void merge(const LogHistogram& other);

  [[nodiscard]] unsigned precision() const noexcept { return precision_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Quantile by cumulative bucket walk with in-bucket linear interpolation,
  /// clamped to [min, max]. Exact for values below 2^P; otherwise within the
  /// bucket's relative-error bound.
  [[nodiscard]] double quantile(double q) const;

  /// Visits non-empty buckets in index order: fn(index, lo, hi, count) with
  /// value range [lo, hi) — the canonical iteration order fingerprints and
  /// exports use.
  template <typename Fn>
  void forEachNonzero(Fn&& fn) const {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      fn(i, bucketLo(i, precision_), bucketHi(i, precision_), buckets_[i]);
    }
  }

  // Fixed bucket geometry (static: boundaries depend only on the precision).
  [[nodiscard]] static std::size_t bucketIndex(std::uint64_t value, unsigned precision) noexcept;
  [[nodiscard]] static std::uint64_t bucketLo(std::size_t index, unsigned precision) noexcept;
  /// Exclusive upper bound; the top bucket saturates at UINT64_MAX.
  [[nodiscard]] static std::uint64_t bucketHi(std::size_t index, unsigned precision) noexcept;

 private:
  unsigned precision_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;  ///< dense, lazily grown to the top touched index
};

/// One named histogram of the trial bundle. `wall` marks wall-clock payload
/// (phase ns, span durations): reported, but excluded from the deterministic
/// projection and metricsFingerprint().
struct NamedHistogram {
  std::string name;
  bool wall = false;
  LogHistogram hist;
};

struct TrialMetrics {
  std::string scenario;
  std::uint32_t trial = 0;
  std::vector<NamedHistogram> hists;  ///< sorted by name
  std::vector<TimeSeries> series;     ///< sorted by name (obs/series.hpp)
};

/// Distills a completed trace: engine round records become the deterministic
/// engine.{sends,touched,messages,bits}PerRound histograms plus wall-flagged
/// engine.{recv,merge,scatter}Ns; spans become wall-flagged "span.<name>"
/// duration histograms; counters and marks become TimeSeries via buildSeries.
[[nodiscard]] TrialMetrics buildTrialMetrics(const TrialTrace& trace,
                                             unsigned precision = LogHistogram::kDefaultPrecision);

/// FNV-1a over the deterministic projection: scenario, trial, every non-wall
/// histogram (name, precision, count, sum, min, max, non-empty buckets) and
/// every series (name, points). Only shard-invariant trace content feeds the
/// histograms/series hashed here, so the fingerprint is invariant across
/// runner threads, shard counts and pipeline depths (pinned by tests).
[[nodiscard]] std::uint64_t metricsFingerprint(const TrialMetrics& metrics);

/// BZC_METRICS exporter: derives TrialMetrics from each consumed trace and
/// writes one JSON object per trial:
///   {"type":"metrics","scenario":S,"trial":N,"fingerprint":"0x..",
///    "hists":[{"name","wall","precision","count","sum","min","max",
///              "buckets":[[index,lo,count],...]},...],
///    "series":[{"name","points":[[round,lane,value],...]},...]}
/// tools/metrics_report.py consumes this format.
class MetricsJsonlSink : public TraceSink {
 public:
  /// Truncates `path` and writes to it.
  explicit MetricsJsonlSink(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit MetricsJsonlSink(std::ostream& os);
  ~MetricsJsonlSink() override;

  void consume(const TrialTrace& trace) override;

  static void writeMetrics(std::ostream& os, const TrialMetrics& metrics);

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

}  // namespace bzc::obs
