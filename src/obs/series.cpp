#include "obs/series.hpp"

#include <map>
#include <utility>

#include "obs/trace.hpp"

namespace bzc::obs {

std::vector<TimeSeries> buildSeries(const TrialTrace& trace) {
  // std::map keys the build so the emitted order is sorted by name — a pure
  // function of the trace content, independent of first-emission order.
  std::map<std::string, TimeSeries> byName;
  for (const TraceEvent& e : trace.events) {
    std::string name;
    if (e.kind == EventKind::Counter) {
      name = e.name;
    } else if (e.kind == EventKind::Mark) {
      name = std::string("mark.") + e.name;
    } else {
      continue;
    }
    TimeSeries& series = byName[name];
    if (series.name.empty()) series.name = name;
    series.points.push_back(SeriesPoint{e.round, e.lane, e.value});
  }
  std::vector<TimeSeries> out;
  out.reserve(byName.size());
  for (auto& [name, series] : byName) out.push_back(std::move(series));
  return out;
}

}  // namespace bzc::obs
