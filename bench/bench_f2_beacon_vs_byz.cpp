// F2 — Theorem 2 (time bound): rounds grow ~linearly with the number of
// Byzantine nodes at fixed n.
//
// The analysis (Lemma 11) pins the decision phase at the first i whose
// iteration count floor(e^((1-gamma)i)) + 1 exceeds B: each iteration
// blacklists at least one Byzantine beacon forger, so the run length is
// dominated by ~B iterations of O(log n) rounds each — O(B log² n) total.
// The series sweeps B at n = 2048 under the beacon flooder.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "counting/beacon/protocol.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  const NodeId n = 2048;
  experimentHeader(
      "F2 — Theorem 2 runtime: rounds vs number of Byzantine nodes (n = 2048, flooder)",
      "'within budget' marks whether B <= n^(1/2-ξ) (the theorem's tolerance). 'decide\n"
      "rounds' is the round by which 90% of honest nodes decided.");

  Table table({"B", "within budget", "decide rounds (p90)", "total rounds", "est mean",
               "frac decided"});
  const double logN = std::log(static_cast<double>(n));
  const double budgetMax = std::pow(static_cast<double>(n), 0.45);

  std::vector<double> bs;
  std::vector<double> decideRounds;
  const Graph g = makeHnd(n, 8, 4);
  for (std::size_t b : {0ull, 8ull, 16ull, 32ull, 45ull, 64ull, 96ull}) {
    const auto byz = placeFor(g, b == 0 ? Placement::None : Placement::Random, b, 40 + b);
    BeaconParams params;
    BeaconLimits limits;
    limits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 4;
    limits.maxTotalRounds = 100'000;
    Rng rng(500 + b);
    const auto out = runBeaconCounting(g, byz, BeaconAttackProfile::flooder(), params, limits, rng);
    const auto summary = summarize(out.result, byz, n);

    // p90 of honest decision rounds.
    std::vector<double> roundsVec;
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || !out.result.decisions[u].decided) continue;
      roundsVec.push_back(out.result.decisions[u].round);
    }
    const double p90 = roundsVec.empty() ? 0.0 : quantile(roundsVec, 0.90);
    if (b > 0) {
      bs.push_back(static_cast<double>(b));
      decideRounds.push_back(p90);
    }
    table.addRow({Table::integer(static_cast<long long>(b)),
                  passFail(static_cast<double>(b) <= budgetMax), Table::integer(static_cast<long long>(p90)),
                  Table::integer(out.result.totalRounds), Table::num(summary.meanEst, 2),
                  Table::percent(summary.fracDecided)});
  }
  table.print(std::cout);

  const LinearFit fit = fitLinear(bs, decideRounds);
  std::cout << "linear fit (B>0): p90 decide round = " << Table::num(fit.slope, 2) << " * B + "
            << Table::num(fit.intercept, 2) << "   (R^2 = " << Table::num(fit.r2, 4) << ")\n";
  // O(B log^2 n) is an *upper* bound; measured growth is monotone but
  // sub-linear because one blacklisted shortestPath removes a whole forged
  // path prefix (fake IDs + the Byzantine origin + nearby relays), so a
  // single iteration can neutralise several Byzantine forgers at once.
  bool monotone = true;
  for (std::size_t i = 1; i < decideRounds.size(); ++i) {
    monotone = monotone && decideRounds[i] >= decideRounds[i - 1] - 1e-9;
  }
  bool bounded = true;
  const double ln2 = logN * logN;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    bounded = bounded && decideRounds[i] <= 10.0 * bs[i] * ln2 + 600.0;
  }
  shapeCheck("decide rounds grow monotonically with B", monotone);
  shapeCheck("decide rounds stay within the O(B log^2 n) bound", bounded);
  shapeCheck("slope positive (more Byzantine nodes => more rounds)", fit.slope > 0.0);
  return 0;
}
