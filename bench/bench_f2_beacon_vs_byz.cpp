// F2 — Theorem 2 (time bound): rounds grow ~linearly with the number of
// Byzantine nodes at fixed n.
//
// The analysis (Lemma 11) pins the decision phase at the first i whose
// iteration count floor(e^((1-gamma)i)) + 1 exceeds B: each iteration
// blacklists at least one Byzantine beacon forger, so the run length is
// dominated by ~B iterations of O(log n) rounds each — O(B log² n) total.
// The series sweeps B at n = 2048 under the beacon flooder.
//
// Each point aggregates R trials (fresh graph, placement and protocol
// streams per trial) on the ExperimentRunner; the fit runs over per-point
// means. BZC_TRIALS / BZC_THREADS override.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "counting/beacon/protocol.hpp"

namespace {

enum : std::size_t { kP90Decide, kMeanEst, kExtraSlots };

}  // namespace

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  const NodeId n = 2048;
  experimentHeader(
      "F2 — Theorem 2 runtime: rounds vs number of Byzantine nodes (n = 2048, flooder)",
      "'within budget' marks whether B <= n^(1/2-ξ) (the theorem's tolerance). 'decide\n"
      "rounds' is the round by which 90% of honest nodes decided. Cells aggregate R\n"
      "trials.");

  const std::uint32_t trials = trialCount(5);
  ExperimentRunner runner(threadCount());
  std::cout << "trials/row=" << trials << "  threads=" << runner.threadCount() << "\n\n";

  Table table({"B", "within budget", "decide rounds (p90)", "total rounds", "est mean",
               "frac decided"});
  const double logN = std::log(static_cast<double>(n));
  const double budgetMax = std::pow(static_cast<double>(n), 0.45);

  std::vector<double> bs;
  std::vector<double> decideRounds;
  std::uint64_t row = 0;
  for (std::size_t b : {0ull, 8ull, 16ull, 32ull, 45ull, 64ull, 96ull}) {
    ScenarioSpec spec;
    spec.name = "f2-b" + std::to_string(b);
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = b == 0 ? Placement::None : Placement::Random;
    spec.placement.count = b;
    spec.beaconLimits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 4;
    spec.beaconLimits.maxTotalRounds = 100'000;
    spec.trials = trials;
    spec.masterSeed = rowSeed(0xf2, row++);

    const auto summary = runScenario(runner, spec.name, trials, [&](std::uint32_t index) {
      MaterializedTrial trial = materializeTrial(spec, index);
      BeaconParams params;
      const auto out = runBeaconCounting(trial.graph, trial.byz, BeaconAttackProfile::flooder(),
                                         params, spec.beaconLimits, trial.runRng);
      const auto s = summarize(out.result, trial.byz, n);
      // p90 of honest decision rounds.
      std::vector<double> roundsVec;
      for (NodeId u = 0; u < n; ++u) {
        if (trial.byz.contains(u) || !out.result.decisions[u].decided) continue;
        roundsVec.push_back(out.result.decisions[u].round);
      }
      TrialOutcome t = countingTrialOutcome(out.result, trial.byz, n);
      t.extra.assign(kExtraSlots, 0.0);
      t.extra[kP90Decide] = roundsVec.empty() ? 0.0 : quantile(roundsVec, 0.90);
      t.extra[kMeanEst] = s.meanEst;
      return t;
    });

    const double p90 = summary.extras[kP90Decide].mean;
    if (b > 0) {
      bs.push_back(static_cast<double>(b));
      decideRounds.push_back(p90);
    }
    table.addRow({Table::integer(static_cast<long long>(b)),
                  passFail(static_cast<double>(b) <= budgetMax),
                  distCell(summary.extras[kP90Decide], 0), distCell(summary.totalRounds, 0),
                  Table::num(summary.extras[kMeanEst].mean, 2),
                  distPercentCell(summary.fracDecided)});
  }
  table.print(std::cout);

  const LinearFit fit = fitLinear(bs, decideRounds);
  std::cout << "linear fit (B>0): p90 decide round = " << Table::num(fit.slope, 2) << " * B + "
            << Table::num(fit.intercept, 2) << "   (R^2 = " << Table::num(fit.r2, 4) << ")\n";
  // O(B log^2 n) is an *upper* bound; measured growth is monotone but
  // sub-linear because one blacklisted shortestPath removes a whole forged
  // path prefix (fake IDs + the Byzantine origin + nearby relays), so a
  // single iteration can neutralise several Byzantine forgers at once.
  bool monotone = true;
  for (std::size_t i = 1; i < decideRounds.size(); ++i) {
    monotone = monotone && decideRounds[i] >= decideRounds[i - 1] - 1e-9;
  }
  bool bounded = true;
  const double ln2 = logN * logN;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    bounded = bounded && decideRounds[i] <= 10.0 * bs[i] * ln2 + 600.0;
  }
  shapeCheck("decide rounds grow monotonically with B", monotone);
  shapeCheck("decide rounds stay within the O(B log^2 n) bound", bounded);
  shapeCheck("slope positive (more Byzantine nodes => more rounds)", fit.slope > 0.0);
  return 0;
}
