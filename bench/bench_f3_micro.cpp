// F3 — Microbenchmarks (google-benchmark): the hot paths of the simulator.
//
// Not a paper claim; engineering support for the experiment harnesses. Keeps
// an eye on: beacon-round cost, path-arena operations, view integration,
// spectral sweeps, generators and PRNG draws.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "counting/beacon/path.hpp"
#include "counting/beacon/protocol.hpp"
#include "counting/local/view.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace {

using namespace bzc;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_GeometricFlips(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.geometricFlips());
}
BENCHMARK(BM_GeometricFlips);

void BM_HndGenerate(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hnd(n, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HndGenerate)->Arg(1024)->Arg(4096);

void BM_BeaconPathArenaAppendWalk(benchmark::State& state) {
  BeaconPathArena arena;
  Rng rng(4);
  for (auto _ : state) {
    arena.clear();
    BeaconPathRef p = kNoBeaconPath;
    for (int i = 0; i < 16; ++i) p = arena.append(p, rng.next());
    std::uint64_t acc = 0;
    arena.walkPrefix(p, 2, [&](PublicId id) {
      acc ^= id;
      return true;
    });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BeaconPathArenaAppendWalk);

void BM_BeaconBenignRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng gen(5);
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  for (auto _ : state) {
    Rng rng(6);
    benchmark::DoNotOptimize(
        runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BeaconBenignRun)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// The same run with a trace buffer installed — the traced-vs-untraced pair
// (BM_BeaconBenignRun above is the baseline) bounds the full probe cost:
// engine round records, protocol spans/counters, clock reads.
void BM_BeaconTracedRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng gen(5);
  const Graph g = hnd(n, 8, gen);
  const ByzantineSet none(n, {});
  obs::TrialTrace trace;
  for (auto _ : state) {
    trace.events.clear();
    const obs::TraceScope scope(&trace);
    Rng rng(6);
    benchmark::DoNotOptimize(
        runBeaconCounting(g, none, BeaconAttackProfile::none(), {}, {}, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BeaconTracedRun)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// Null-sink probe cost in isolation: a disabled ScopedTimer plus a disabled
// counter probe per loop step — the per-probe price every protocol pays when
// tracing is off (a thread-local load and a branch; the clock is never read).
void BM_NullSinkProbe(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    const obs::ScopedTimer timer("bench.nullProbe");
    obs::emitCounter("bench.nullCounter", static_cast<double>(i));
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_NullSinkProbe);

// Metrics layer (DESIGN.md §13): cost of the streaming histogram hot paths —
// add is on the per-round distillation path, merge is the per-shard /
// per-epoch fold. Both must stay trivially cheap next to a protocol round.
void BM_LogHistogramAdd(benchmark::State& state) {
  obs::LogHistogram h;
  Rng rng(6);
  std::uint64_t v = rng.next();
  for (auto _ : state) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;  // cheap LCG step
    h.add(v >> (v & 31U));
    benchmark::DoNotOptimize(h.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogHistogramAdd);

void BM_LogHistogramMerge(benchmark::State& state) {
  obs::LogHistogram src;
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) src.add(rng.uniform(1ULL << (1 + rng.uniform(40))));
  for (auto _ : state) {
    obs::LogHistogram dst;
    dst.merge(src);
    benchmark::DoNotOptimize(dst.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogHistogramMerge);

void BM_ViewIntegrate(benchmark::State& state) {
  const NodeId n = 1024;
  Rng gen(7);
  const Graph g = hnd(n, 8, gen);
  Rng idRng(8);
  const IdSpace ids(n, idRng);
  const RecordPool pool(g, ids);
  for (auto _ : state) {
    LocalView view(&pool, 8);
    view.installSelf(0);
    for (NodeId v = 1; v < n; ++v) {
      benchmark::DoNotOptimize(view.integrate(v, 1 + v / 64));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ViewIntegrate);

void BM_FiedlerSweep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng gen(9);
  const Graph g = hnd(n, 8, gen);
  for (auto _ : state) {
    Rng rng(10);
    benchmark::DoNotOptimize(fiedlerSweep(g, 50, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FiedlerSweep)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Dispatch overhead of the two parallelFor flavours at a tiny per-item cost:
// per-index touches the shared cursor once per element, chunked once per
// contiguous block. The gap between the two is the scatter overhead the
// SyncEngine and trial runner paid before switching to parallelForChunked.
void BM_ParallelForPerIndex(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(4);
  std::vector<std::uint64_t> sink(count, 0);
  for (auto _ : state) {
    pool.parallelFor(count, [&](std::size_t i) { sink[i] += i; });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ParallelForPerIndex)->Arg(1024)->Arg(65536);

void BM_ParallelForChunked(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(4);
  std::vector<std::uint64_t> sink(count, 0);
  for (auto _ : state) {
    pool.parallelForChunked(count, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) sink[i] += i;
    });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ParallelForChunked)->Arg(1024)->Arg(65536);

// Future-based submit() round-trip — the per-recount dispatch cost of the
// epoch pipeline (one submit + one future.get per recounted epoch).
void BM_ThreadPoolSubmitRoundTrip(benchmark::State& state) {
  ThreadPool pool(2);
  for (auto _ : state) {
    auto fut = pool.submit([] { return std::uint64_t{42}; });
    benchmark::DoNotOptimize(fut.get());
  }
}
BENCHMARK(BM_ThreadPoolSubmitRoundTrip);

}  // namespace

BENCHMARK_MAIN();
