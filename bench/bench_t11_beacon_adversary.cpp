// T11 — beacon-adversary gallery: strategy × placement × budget for the
// counting stage (Algorithm 2), plus mixed cross-stage coalitions.
//
// The paper's analysis quantifies resilience over adversary *behaviours*
// (the flooder of §1.3, the tampered-prefix case of Lemma 11, suppression,
// continue spam); src/adversary/beacon/ makes each a strategy. The grid
// measures what every gallery strategy does to decision coverage, estimate
// quality and the defence's own workload (blacklist insertions), across
// placements (random vs victim-surround) and Byzantine budgets — including
// the two behaviours the legacy flag bundle could not express: the
// pressure-adaptive flooder and the prefix-grafting tamperer.
//
// The coalition rows split ONE budget across both pipeline stages
// (CoalitionPlan on the ScenarioSpec): 50/50 beacon-flooders + walk-hunters
// against 100% of either, reporting the combined cross-stage damage score
// around the victim next to global agreement.
//
// Claims probed: (1) no single counting-stage strategy pushes Good nodes
// outside the Theorem 2 window — flooding delays, suppression accelerates,
// neither corrupts silently; (2) adaptive forging buys the flooder most of
// the damage at a fraction of the forging volume once blacklists react;
// (3) a mixed coalition trades global agreement damage for victim-area
// damage that neither pure allocation achieves at the same budget.
//
// Cells aggregate R trials; BZC_TRIALS / BZC_THREADS / BZC_N override.
// JSON rows (BZC_OUTPUT=json) carry named extras.
#include <cmath>
#include <iostream>
#include <string>

#include "adversary/beacon/strategies.hpp"
#include "adversary/coalition.hpp"
#include "bench_common.hpp"
#include "counting/beacon/protocol.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  const NodeId n = nodeCount(512);
  const std::uint32_t trials = trialCount(5);
  const double logN = std::log(static_cast<double>(n));
  const std::size_t fullBudget = byzantineBudget(n, 0.55);
  const NodeId victim = 3;

  experimentHeader(
      "T11 — beacon-adversary gallery: strategy × placement × budget (n = " +
          std::to_string(n) + ", H(n,8)) + mixed cross-stage coalitions",
      "Counting-stage strategies (src/adversary/beacon/). 'forged' counts adversary-\n"
      "authored beacons (iteration forges + tampered relays), 'bl ins' the Line 32\n"
      "blacklist insertions the defence performed, 'backoffs' the phases an adaptive\n"
      "forger went quiet in. Placement 'surround' mans the wall around node 3\n"
      "(moat radius 2; targeted forging radius reaches it). The coalition rows run\n"
      "the full counting->agreement pipeline with one budget split across stages.");

  ExperimentRunner runner(threadCount());
  std::cout << "trials/cell=" << trials << "  threads=" << runner.threadCount()
            << "  B(full)=" << fullBudget << "\n\n";

  // --- strategy × placement × budget grid (counting stage) ------------------
  enum : std::size_t { kForged, kTampered, kSuppressed, kSpammed, kGrafts, kBackoffs, kBlIns, kSlots };
  const std::vector<std::string> gridExtraNames = {
      "forged", "tampered", "suppressed", "spammed", "grafts", "backoffs", "blacklistIns"};

  const BeaconAdversaryProfile strategies[] = {
      BeaconAdversaryProfile::none(),
      BeaconAdversaryProfile::flooder(),
      BeaconAdversaryProfile::targetedFlooder(victim, /*radius=*/3),
      BeaconAdversaryProfile::tamperer(),
      BeaconAdversaryProfile::suppressor(),
      BeaconAdversaryProfile::continueSpammer(),
      BeaconAdversaryProfile::full(),
      BeaconAdversaryProfile::adaptiveFlooder(/*tolerance=*/64),
      BeaconAdversaryProfile::prefixGrafter(),
  };
  const struct {
    const char* name;
    Placement kind;
  } placements[] = {{"random", Placement::Random}, {"surround", Placement::Surround}};
  const std::size_t budgets[] = {8, fullBudget};

  Table grid({"strategy", "placement", "B", "frac decided", "est/ln n", "forged", "bl ins",
              "backoffs", "rounds"});
  std::uint64_t row = 0;
  double forgedPlain = 0.0, forgedAdaptive = 0.0, forgedTargeted = 0.0;
  double backoffsAdaptive = 0.0;
  double graftsSeen = 0.0;

  for (const BeaconAdversaryProfile& strategy : strategies) {
    for (const auto& placement : placements) {
      for (const std::size_t budget : budgets) {
        if (strategy.kind == BeaconAttackKind::None && budget != budgets[0]) continue;
        ScenarioSpec spec;
        spec.name = "t11-" + strategy.name + "-" + placement.name + "-b" + std::to_string(budget);
        spec.graph = {GraphKind::Hnd, n, 8, 0.1};
        spec.placement.kind =
            strategy.kind == BeaconAttackKind::None ? Placement::None : placement.kind;
        spec.placement.count = strategy.kind == BeaconAttackKind::None ? 0 : budget;
        spec.placement.victim = victim;
        spec.placement.moatRadius = 2;
        spec.beaconLimits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 3;
        spec.beaconLimits.maxTotalRounds = 20'000;
        spec.masterSeed = rowSeed(11, row++);
        // Custom trials: the grid reports the counting-stage adversary stats,
        // which the declarative Beacon path does not surface as extras.
        const ExperimentSummary s = runScenario(
            runner, spec.name, trials,
            [&](std::uint32_t index) {
              MaterializedTrial trial = materializeTrial(spec, index);
              const auto adversary = makeBeaconAdversary(strategy, trial.graph, trial.byz);
              Rng runRng = std::move(trial.runRng);
              const BeaconOutcome out = runBeaconCounting(trial.graph, trial.byz, *adversary,
                                                          spec.beaconParams, spec.beaconLimits,
                                                          runRng);
              TrialOutcome t = countingTrialOutcome(out.result, trial.byz, n, spec.window);
              t.extra.assign(kSlots, 0.0);
              t.extra[kForged] = static_cast<double>(out.stats.adversary.beaconsForged);
              t.extra[kTampered] = static_cast<double>(out.stats.adversary.relaysTampered);
              t.extra[kSuppressed] = static_cast<double>(out.stats.adversary.relaysSuppressed);
              t.extra[kSpammed] = static_cast<double>(out.stats.adversary.continuesSpammed);
              t.extra[kGrafts] = static_cast<double>(out.stats.adversary.prefixGrafts);
              t.extra[kBackoffs] = static_cast<double>(out.stats.adversary.pressureBackoffs);
              t.extra[kBlIns] = static_cast<double>(out.stats.blacklistInsertions);
              return t;
            },
            gridExtraNames);
        grid.addRow({strategy.name, placement.name, Table::integer(spec.placement.count),
                     distPercentCell(s.fracDecided), Table::num(s.meanRatio.mean, 2),
                     Table::num(s.extras[kForged].mean, 0), Table::num(s.extras[kBlIns].mean, 0),
                     Table::num(s.extras[kBackoffs].mean, 1), distCell(s.totalRounds, 0)});
        if (placement.kind == Placement::Random && budget == fullBudget) {
          if (strategy.kind == BeaconAttackKind::Flooder) {
            forgedPlain = s.extras[kForged].mean;
          }
          if (strategy.kind == BeaconAttackKind::AdaptiveFlooder) {
            forgedAdaptive = s.extras[kForged].mean;
            backoffsAdaptive = s.extras[kBackoffs].mean;
          }
          if (strategy.kind == BeaconAttackKind::TargetedFlooder) {
            forgedTargeted = s.extras[kForged].mean;
          }
          if (strategy.kind == BeaconAttackKind::PrefixGrafter) {
            graftsSeen = s.extras[kGrafts].mean;
          }
        }
        if (strategy.kind == BeaconAttackKind::None) break;  // one placement row for none
      }
      if (strategy.kind == BeaconAttackKind::None) break;
    }
  }
  grid.print(std::cout);

  // --- mixed cross-stage coalition rows (full pipeline) ---------------------
  std::cout << "\n--- mixed cross-stage coalitions (pipeline, B = 24, surround victim 3) ---\n";
  const auto planSpec = [&](const std::string& name, const CoalitionPlan& plan) {
    ScenarioSpec spec;
    spec.name = name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Surround;
    spec.placement.count = 24;
    spec.placement.victim = victim;
    spec.placement.moatRadius = 2;
    spec.protocol = ProtocolKind::Pipeline;
    spec.pipelineParams.agreement.initialOnesFraction = 0.7;
    spec.pipelineParams.agreement.walkLengthFactor = 0.5;
    spec.pipelineParams.countingLimits.maxPhase =
        static_cast<std::uint32_t>(std::ceil(logN)) + 3;
    spec.pipelineParams.countingLimits.maxTotalRounds = 20'000;
    spec.coalitionPlan = plan;
    spec.trials = trials;
    spec.masterSeed = rowSeed(11, 1000 + row++);
    return spec;
  };

  CoalitionPlan pureFlood;
  pureFlood.subsets.push_back({"flooders", 1.0,
                               BeaconAdversaryProfile::targetedFlooder(victim, 3),
                               AgreementAttackProfile::adaptiveMinority()});
  CoalitionPlan pureHunt;
  pureHunt.subsets.push_back(
      {"hunters", 1.0, BeaconAdversaryProfile::none(), AgreementAttackProfile::hunter(2)});
  const CoalitionPlan mixed = CoalitionPlan::split(
      "flooders", 0.5, BeaconAdversaryProfile::targetedFlooder(victim, 3),
      AgreementAttackProfile::adaptiveMinority(), "hunters", BeaconAdversaryProfile::none(),
      AgreementAttackProfile::hunter(2));

  Table coalitionTable({"plan", "agree", "combined score", "beacon forged", "coalition hits",
                        "frac decided", "blame conc", "blame s0/s1"});
  double scorePure = 0.0, scoreMixed = 0.0;
  const struct {
    const char* label;
    const CoalitionPlan* plan;
  } planRows[] = {{"100% beacon-flooders", &pureFlood},
                  {"100% walk-hunters", &pureHunt},
                  {"50/50 flood+hunt", &mixed}};
  for (const auto& entry : planRows) {
    const ExperimentSummary s =
        runScenario(runner, planSpec(std::string("t11-plan-") + entry.label, *entry.plan),
                    agreementExtraNames());
    coalitionTable.addRow({entry.label,
                           distPercentCell(s.extras[kAgreementFracAgreeing]),
                           Table::num(s.extras[kAgreementCombinedScore].mean, 3),
                           Table::num(s.extras[kAgreementBeaconForged].mean, 0),
                           Table::num(s.extras[kAgreementCoalitionHits].mean, 0),
                           distPercentCell(s.fracDecided),
                           // Blame-graph projections (DESIGN.md §14): damage
                           // concentration over causes, and the per-subset
                           // split of attributed damage.
                           Table::num(s.extras[kAgreementBlameConcentration].mean, 3),
                           Table::num(s.extras[kAgreementBlameSubset0].mean, 0) + "/" +
                               Table::num(s.extras[kAgreementBlameSubset1].mean, 0)});
    if (entry.plan == &pureFlood) scorePure = s.extras[kAgreementCombinedScore].mean;
    if (entry.plan == &mixed) scoreMixed = s.extras[kAgreementCombinedScore].mean;
  }
  coalitionTable.print(std::cout);

  shapeCheck("targeted forging spends less than global flooding (same budget)",
             forgedTargeted < forgedPlain);
  shapeCheck("adaptive flooder backs off under blacklist pressure (fewer forges, real backoffs)",
             forgedAdaptive < forgedPlain && backoffsAdaptive > 0.0);
  shapeCheck("prefix grafter carries honest IDs into forged paths", graftsSeen > 0.0);
  shapeCheck("splitting the budget across stages changes the victim-area damage profile",
             scoreMixed != scorePure);
  return 0;
}
