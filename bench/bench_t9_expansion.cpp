// T9 — Model-assumption audit: expansion of the graph families, and the
// Lemma 1 / Lemma 13 robustness of H(n,d) to node removals.
//
// (a) Vertex-expansion estimates across topologies: H(n,d) and Watts-
//     Strogatz small worlds are expanders; rings, tori, trees and barbells
//     are not — exactly the divide between the paper's positive results and
//     its Theorem 3 impossibility.
// (b) Lemma 1/13: removing B = n^(1-gamma) nodes (random or packed) from
//     H(n,d) leaves a connected subgraph of >= n - O(B) nodes that is still
//     an expander — the structural fact both algorithms lean on.
//
// Every row aggregates R trials on the ExperimentRunner: random families are
// re-sampled per trial, and the power-iteration/sampling estimators always
// re-run on fresh streams. BZC_TRIALS / BZC_THREADS override.
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "graph/bfs.hpp"
#include "graph/expansion.hpp"

namespace {

using namespace bzc;
using namespace bzc::bench;

enum : std::size_t { kExpansion, kSampled, kGap, kDiam, kExtraSlots };
enum : std::size_t { kGiant, kFloor, kPruned, kGiantExpansion, kHolds, kLemmaSlots };

}  // namespace

int main() {
  const std::uint32_t trials = trialCount(4);
  ExperimentRunner runner(threadCount());
  std::uint64_t row = 0;

  experimentHeader(
      "T9a — vertex expansion across graph families (n ~ 1024)",
      "h upper bound: Fiedler-sweep estimate of min |Out(S)|/|S|; gap: spectral gap of\n"
      "the lazy walk. The algorithms assume constant h; Theorem 3 shows h -> 0 kills\n"
      "counting. Cells aggregate R trials (random families re-sampled per trial).");
  std::cout << "trials/row=" << trials << "  threads=" << runner.threadCount() << "\n\n";

  struct Family {
    std::string name;
    std::function<Graph(Rng&)> make;  ///< trial stream -> graph
  };
  const Family families[] = {
      {"H(1024,8)", [](Rng& r) { return hnd(1024, 8, r); }},
      {"H(1024,12)", [](Rng& r) { return hnd(1024, 12, r); }},
      {"config-model(1024,8)", [](Rng& r) { return configurationModel(1024, 8, r); }},
      {"watts-strogatz(1024,4,0.2)", [](Rng& r) { return wattsStrogatz(1024, 4, 0.2, r); }},
      {"ring(1024)", [](Rng&) { return ring(1024); }},
      {"torus(32x32)", [](Rng&) { return torus2d(32, 32); }},
      {"binary-tree(1023)", [](Rng&) { return binaryTree(1023); }},
      {"barbell(512+512, 2 bridges)", [](Rng& r) { return barbell(512, 8, 2, r); }},
  };

  Table table({"family", "h upper bound", "sampled h bound", "spectral gap", "diam (approx)"});
  double hExpander = 0;
  double hRing = 1;
  for (const Family& f : families) {
    const std::uint64_t seed = rowSeed(9, row++);
    const auto summary = runScenario(runner, "t9a-" + f.name, trials, [&](std::uint32_t index) {
      const Rng trialRng = Rng(seed).fork(index);
      Rng graphRng = trialRng.fork(1);
      const Graph g = f.make(graphRng);
      Rng sweepRng = trialRng.fork(2);
      const SweepCut cut = fiedlerSweep(g, 200, sweepRng);
      Rng sampleRng = trialRng.fork(3);
      const double sampled = sampledExpansionUpperBound(g, 100, sampleRng);
      Rng gapRng = trialRng.fork(4);
      const double gap = spectralGapEstimate(g, 200, gapRng);
      TrialOutcome t;
      t.quality.fracDecided = 1.0;
      t.resultFingerprint = fnv1a64(&cut.expansion, sizeof cut.expansion);
      t.extra.assign(kExtraSlots, 0.0);
      t.extra[kExpansion] = cut.expansion;
      t.extra[kSampled] = sampled;
      t.extra[kGap] = gap;
      t.extra[kDiam] = static_cast<double>(approxDiameter(g));
      return t;
    });
    if (f.name == "H(1024,8)") hExpander = summary.extras[kExpansion].mean;
    if (f.name == "ring(1024)") hRing = summary.extras[kExpansion].mean;
    table.addRow({f.name, Table::num(summary.extras[kExpansion].mean, 4),
                  Table::num(summary.extras[kSampled].mean, 4),
                  Table::num(summary.extras[kGap].mean, 4),
                  Table::num(summary.extras[kDiam].mean, 1)});
  }
  table.print(std::cout);
  shapeCheck("H(n,d) expansion dominates the ring's by >= 10x", hExpander > 10 * hRing);

  experimentHeader(
      "T9b — Lemma 1/13: H(n,d) survives n^(1-gamma) node removals (n = 2048, gamma = 0.55)",
      "After deleting the Byzantine positions, the surviving component keeps\n"
      ">= n - 2|F| - o(n) nodes and near-original expansion — the Good-set guarantee.\n"
      "Cells aggregate R trials (fresh graph and placement per trial).");

  const NodeId n = 2048;
  const std::size_t b = byzantineBudget(n, 0.55);
  Table table2({"removal", "|F|", "giant component", "floor n-2|F|", "pruned honest",
                "h upper bound (giant)"});
  bool lemmaHolds = true;
  for (Placement placement : {Placement::Random, Placement::Ball, Placement::Spread}) {
    ScenarioSpec spec;
    spec.name = std::string("t9b-") + (placement == Placement::Random ? "random"
                                       : placement == Placement::Ball ? "ball"
                                                                      : "spread");
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = placement;
    spec.placement.count = b;
    spec.trials = trials;
    spec.masterSeed = rowSeed(9, row++);

    const auto summary = runScenario(runner, spec.name, trials, [&](std::uint32_t index) {
      MaterializedTrial trial = materializeTrial(spec, index);
      const auto honest = trial.byz.honestNodes();
      const auto [sub, map] = trial.graph.inducedSubgraph(honest);
      // Lemma 13 prunes whatever the removal shaves off (ball-packed removals
      // isolate the moated interior); the guarantee is about the giant
      // component, so extract it and sweep that.
      std::vector<NodeId> giant;
      std::vector<char> seen(sub.numNodes(), 0);
      for (NodeId u = 0; u < sub.numNodes(); ++u) {
        if (seen[u]) continue;
        const auto dist = bfsDistances(sub, u);
        std::vector<NodeId> component;
        for (NodeId v = 0; v < sub.numNodes(); ++v) {
          if (dist[v] != kUnreachable) {
            seen[v] = 1;
            component.push_back(v);
          }
        }
        if (component.size() > giant.size()) giant = std::move(component);
      }
      const auto [giantGraph, giantMap] = sub.inducedSubgraph(giant);
      Rng sweepRng = trial.runRng.fork(1);
      const SweepCut cut = fiedlerSweep(giantGraph, 200, sweepRng);
      const double floorSize = static_cast<double>(n) - 2.0 * static_cast<double>(b);
      const bool holds =
          static_cast<double>(giant.size()) >= floorSize && cut.expansion > 0.15;
      TrialOutcome t;
      t.quality.fracDecided = 1.0;
      const std::size_t giantSize = giant.size();
      t.resultFingerprint = fnv1a64(&giantSize, sizeof giantSize);
      t.extra.assign(kLemmaSlots, 0.0);
      t.extra[kGiant] = static_cast<double>(giant.size());
      t.extra[kFloor] = floorSize;
      t.extra[kPruned] = static_cast<double>(honest.size() - giant.size());
      t.extra[kGiantExpansion] = cut.expansion;
      t.extra[kHolds] = holds ? 1.0 : 0.0;
      return t;
    });

    lemmaHolds = lemmaHolds && summary.extras[kHolds].min >= 1.0;
    table2.addRow({placement == Placement::Random ? "random"
                   : placement == Placement::Ball ? "ball-packed"
                                                  : "spread",
                   Table::integer(static_cast<long long>(b)),
                   distCell(summary.extras[kGiant], 0), Table::num(summary.extras[kFloor].mean, 0),
                   distCell(summary.extras[kPruned], 0),
                   Table::num(summary.extras[kGiantExpansion].mean, 4)});
  }
  table2.print(std::cout);
  shapeCheck("giant component >= n - 2|F| with near-original expansion (all trials)", lemmaHolds);
  return 0;
}
