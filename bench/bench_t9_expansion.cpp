// T9 — Model-assumption audit: expansion of the graph families, and the
// Lemma 1 / Lemma 13 robustness of H(n,d) to node removals.
//
// (a) Vertex-expansion estimates across topologies: H(n,d) and Watts-
//     Strogatz small worlds are expanders; rings, tori, trees and barbells
//     are not — exactly the divide between the paper's positive results and
//     its Theorem 3 impossibility.
// (b) Lemma 1/13: removing B = n^(1-gamma) nodes (random or packed) from
//     H(n,d) leaves a connected subgraph of >= n - O(B) nodes that is still
//     an expander — the structural fact both algorithms lean on.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "graph/bfs.hpp"
#include "graph/expansion.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  experimentHeader(
      "T9a — vertex expansion across graph families (n ~ 1024)",
      "h upper bound: Fiedler-sweep estimate of min |Out(S)|/|S|; gap: spectral gap of\n"
      "the lazy walk. The algorithms assume constant h; Theorem 3 shows h -> 0 kills\n"
      "counting.");

  struct Family {
    std::string name;
    Graph graph;
  };
  Rng wsRng(120);
  Rng bbRng(121);
  std::vector<Family> families;
  families.push_back({"H(1024,8)", makeHnd(1024, 8, 11)});
  families.push_back({"H(1024,12)", makeHnd(1024, 12, 12)});
  families.push_back({"config-model(1024,8)", [] {
                        Rng r(122);
                        return configurationModel(1024, 8, r);
                      }()});
  families.push_back({"watts-strogatz(1024,4,0.2)", wattsStrogatz(1024, 4, 0.2, wsRng)});
  families.push_back({"ring(1024)", ring(1024)});
  families.push_back({"torus(32x32)", torus2d(32, 32)});
  families.push_back({"binary-tree(1023)", binaryTree(1023)});
  families.push_back({"barbell(512+512, 2 bridges)", barbell(512, 8, 2, bbRng)});

  Table table({"family", "h upper bound", "sampled h bound", "spectral gap", "diam (approx)"});
  double hExpander = 0;
  double hRing = 1;
  for (auto& f : families) {
    Rng r1(130);
    const SweepCut cut = fiedlerSweep(f.graph, 200, r1);
    Rng r2(131);
    const double sampled = sampledExpansionUpperBound(f.graph, 100, r2);
    Rng r3(132);
    const double gap = spectralGapEstimate(f.graph, 200, r3);
    if (f.name == "H(1024,8)") hExpander = cut.expansion;
    if (f.name == "ring(1024)") hRing = cut.expansion;
    table.addRow({f.name, Table::num(cut.expansion, 4), Table::num(sampled, 4),
                  Table::num(gap, 4), Table::integer(approxDiameter(f.graph))});
  }
  table.print(std::cout);
  shapeCheck("H(n,d) expansion dominates the ring's by >= 10x", hExpander > 10 * hRing);

  experimentHeader(
      "T9b — Lemma 1/13: H(n,d) survives n^(1-gamma) node removals (n = 2048, gamma = 0.55)",
      "After deleting the Byzantine positions, the surviving component keeps\n"
      ">= n - 2|F| - o(n) nodes and near-original expansion — the Good-set guarantee.");

  const NodeId n = 2048;
  const Graph g = makeHnd(n, 8, 13);
  const std::size_t b = byzantineBudget(n, 0.55);
  Table table2({"removal", "|F|", "giant component", "floor n-2|F|", "pruned honest",
                "h upper bound (giant)"});
  bool lemmaHolds = true;
  for (Placement placement : {Placement::Random, Placement::Ball, Placement::Spread}) {
    const auto byz = placeFor(g, placement, b, 140 + static_cast<int>(placement));
    const auto honest = byz.honestNodes();
    const auto [sub, map] = g.inducedSubgraph(honest);
    // Lemma 13 prunes whatever the removal shaves off (ball-packed removals
    // isolate the moated interior); the guarantee is about the giant
    // component, so extract it and sweep that.
    std::vector<NodeId> giant;
    std::vector<char> seen(sub.numNodes(), 0);
    for (NodeId u = 0; u < sub.numNodes(); ++u) {
      if (seen[u]) continue;
      const auto dist = bfsDistances(sub, u);
      std::vector<NodeId> component;
      for (NodeId v = 0; v < sub.numNodes(); ++v) {
        if (dist[v] != kUnreachable) {
          seen[v] = 1;
          component.push_back(v);
        }
      }
      if (component.size() > giant.size()) giant = std::move(component);
    }
    const auto [giantGraph, giantMap] = sub.inducedSubgraph(giant);
    Rng r(141);
    const SweepCut cut = fiedlerSweep(giantGraph, 200, r);
    const double floorSize = static_cast<double>(n) - 2.0 * static_cast<double>(b);
    const bool holds = static_cast<double>(giant.size()) >= floorSize && cut.expansion > 0.15;
    lemmaHolds = lemmaHolds && holds;
    table2.addRow({placement == Placement::Random ? "random"
                   : placement == Placement::Ball ? "ball-packed"
                                                  : "spread",
                   Table::integer(static_cast<long long>(b)),
                   Table::integer(static_cast<long long>(giant.size())), Table::num(floorSize, 0),
                   Table::integer(static_cast<long long>(honest.size() - giant.size())),
                   Table::num(cut.expansion, 4)});
  }
  table2.print(std::cout);
  shapeCheck("giant component >= n - 2|F| with near-original expansion", lemmaHolds);
  return 0;
}
