// T7 — §1.1 application: Byzantine counting as a preprocessing step for the
// sampling+majority almost-everywhere agreement protocol of [3].
//
// The agreement protocol needs a constant-factor upper bound on log n for
// its walk lengths and iteration counts. The rows compare: an oracle ln n, a
// deliberately tiny estimate, a deliberately huge estimate, and the
// estimates actually produced by Algorithm 2 (benign and under the beacon
// flooder). Claim: counting-derived estimates work as well as the oracle.
//
// Both stages run as message-passing protocols on the SyncEngine, so rounds
// and message/bit totals are real metered costs. Each row aggregates R
// independent trials (graph, placement, counting and walk-token streams all
// forked per trial); cells show mean [min,max]. BZC_TRIALS / BZC_THREADS
// override the defaults.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "agreement/pipeline.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  experimentHeader(
      "T7 — §1.1: counting -> agreement pipeline (n = 1024, H(n,8), B = 8, adaptive adversary)",
      "'agree' is the fraction of honest nodes ending on the initial honest majority bit\n"
      "after the sampling+majority protocol; 'a-e' is the fraction of trials reaching\n"
      "almost-everywhere agreement (agree >= 90%). Initial split: 70/30. Rounds and\n"
      "message totals are engine-metered, not analytic. Cells aggregate R trials.");

  const NodeId n = 1024;
  const double logN = std::log(static_cast<double>(n));
  const std::uint32_t trials = trialCount(5);
  ExperimentRunner runner(threadCount());
  std::cout << "trials/row=" << trials << "  threads=" << runner.threadCount() << "\n\n";

  Table table({"estimate source", "mean L", "agree", "a-e (90%)", "rounds", "messages",
               "compromised samples"});
  std::uint64_t row = 0;

  const auto addRow = [&](const std::string& name, const ExperimentSummary& s, double meanL) {
    table.addRow({name, Table::num(meanL, 2), distPercentCell(s.extras[kAgreementFracAgreeing]),
                  Table::percent(aeTrialFraction(s)), distCell(s.extras[kAgreementRounds], 0),
                  distCell(s.totalMessages, 0),
                  Table::integer(static_cast<long long>(s.extras[kAgreementCompromised].mean))});
  };

  AgreementParams agreeParams;
  agreeParams.initialOnesFraction = 0.7;

  double oracleAgree = 0;
  double pipelineAgree = 0;
  double tinyAgree = 0;

  const auto runUniformRow = [&](const std::string& name, double L) {
    ScenarioSpec spec;
    spec.name = "t7-" + name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Random;
    spec.placement.count = 8;
    spec.protocol = ProtocolKind::Agreement;
    spec.agreementParams = agreeParams;
    spec.agreementEstimate = L;
    spec.trials = trials;
    spec.masterSeed = rowSeed(7, row++);
    const ExperimentSummary s = runScenario(runner, spec);
    addRow(name, s, s.extras[kAgreementMeanEstimate].mean);
    return s.extras[kAgreementFracAgreeing].mean;
  };

  oracleAgree = runUniformRow("oracle ln n", logN);
  tinyAgree = runUniformRow("too small (L=1)", 1.0);
  runUniformRow("overshoot (L=3 ln n)", 3.0 * logN);

  for (const auto& attack : {BeaconAttackProfile::none(), BeaconAttackProfile::flooder()}) {
    ScenarioSpec spec;
    spec.name = "t7-pipeline-" + attack.name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Random;
    spec.placement.count = 8;
    spec.protocol = ProtocolKind::Pipeline;
    spec.beaconAttack = attack;
    spec.pipelineParams.agreement = agreeParams;
    spec.pipelineParams.agreement.walkLengthFactor = 0.5;  // counting phases overshoot ln n
    spec.pipelineParams.estimateSafetyFactor = 1.5;
    spec.pipelineParams.countingLimits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 3;
    spec.trials = trials;
    spec.masterSeed = rowSeed(7, row++);
    const ExperimentSummary s = runScenario(runner, spec);
    addRow("Algorithm 2 (" + attack.name + ")", s, s.extras[kAgreementMeanEstimate].mean);
    if (attack.name == "flooder") pipelineAgree = s.extras[kAgreementFracAgreeing].mean;
  }
  table.print(std::cout);

  shapeCheck("oracle log n reaches almost-everywhere agreement", oracleAgree >= 0.9);
  shapeCheck("counting-derived estimates match the oracle (within 5%)",
             pipelineAgree >= oracleAgree - 0.05);
  shapeCheck("a too-small estimate fails", tinyAgree < 0.9);
  return 0;
}
