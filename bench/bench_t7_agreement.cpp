// T7 — §1.1 application: Byzantine counting as a preprocessing step for the
// sampling+majority almost-everywhere agreement protocol of [3].
//
// The agreement protocol needs a constant-factor upper bound on log n for
// its walk lengths and iteration counts. The rows compare: an oracle ln n, a
// deliberately tiny estimate, a deliberately huge estimate, and the
// estimates actually produced by Algorithm 2 (benign and under the beacon
// flooder). Claim: counting-derived estimates work as well as the oracle.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "agreement/pipeline.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  experimentHeader(
      "T7 — §1.1: counting -> agreement pipeline (n = 1024, H(n,8), B = 8, adaptive adversary)",
      "'agree' is the fraction of honest nodes ending on the initial honest majority bit\n"
      "after the sampling+majority protocol; 'a-e' marks almost-everywhere agreement\n"
      "(agree >= 90%). Initial split: 70/30.");

  const NodeId n = 1024;
  const Graph g = makeHnd(n, 8, 9);
  const auto byz = placeFor(g, Placement::Random, 8, 90);
  const double logN = std::log(static_cast<double>(n));

  Table table({"estimate source", "mean L", "agree", "a-e (90%)", "logical rounds",
               "compromised samples"});
  AgreementParams agreeParams;
  agreeParams.initialOnesFraction = 0.7;

  double oracleAgree = 0;
  double pipelineAgree = 0;
  double tinyAgree = 0;

  auto addUniformRow = [&](const std::string& name, double L) {
    Rng rng(900 + static_cast<std::uint64_t>(L * 10));
    const auto out = runMajorityAgreement(g, byz, L, agreeParams, rng);
    table.addRow({name, Table::num(L, 2), Table::percent(out.fracAgreeing),
                  passFail(out.almostEverywhere(0.1)), Table::integer(out.logicalRounds),
                  Table::integer(static_cast<long long>(out.compromisedSamples))});
    return out.fracAgreeing;
  };

  oracleAgree = addUniformRow("oracle ln n", logN);
  tinyAgree = addUniformRow("too small (L=1)", 1.0);
  addUniformRow("overshoot (L=3 ln n)", 3.0 * logN);

  for (const auto& attack : {BeaconAttackProfile::none(), BeaconAttackProfile::flooder()}) {
    PipelineParams params;
    params.agreement = agreeParams;
    params.agreement.walkLengthFactor = 0.5;  // counting phases overshoot ln n
    params.estimateSafetyFactor = 1.5;
    params.countingLimits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 3;
    Rng rng(950 + (attack.name == "none" ? 0 : 1));
    const auto out = runCountingThenAgreement(g, byz, attack, params, rng);
    double meanL = 0;
    std::size_t c = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (byz.contains(u) || !out.counting.result.decisions[u].decided) continue;
      meanL += params.estimateSafetyFactor * out.counting.result.decisions[u].estimate;
      ++c;
    }
    meanL /= c;
    table.addRow({std::string("Algorithm 2 (") + attack.name + ")", Table::num(meanL, 2),
                  Table::percent(out.agreement.fracAgreeing),
                  passFail(out.agreement.almostEverywhere(0.1)),
                  Table::integer(out.agreement.logicalRounds),
                  Table::integer(static_cast<long long>(out.agreement.compromisedSamples))});
    if (attack.name == "flooder") pipelineAgree = out.agreement.fracAgreeing;
  }
  table.print(std::cout);

  shapeCheck("oracle log n reaches almost-everywhere agreement", oracleAgree >= 0.9);
  shapeCheck("counting-derived estimates match the oracle (within 5%)",
             pipelineAgree >= oracleAgree - 0.05);
  shapeCheck("a too-small estimate fails", tinyAgree < 0.9);
  return 0;
}
