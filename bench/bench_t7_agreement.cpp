// T7 — §1.1 application: Byzantine counting as a preprocessing step for the
// sampling+majority almost-everywhere agreement protocol of [3].
//
// The agreement protocol needs a constant-factor upper bound on log n for
// its walk lengths and iteration counts. The rows compare: an oracle ln n, a
// deliberately tiny estimate, a deliberately huge estimate, and the
// estimates actually produced by Algorithm 2 (benign and under the beacon
// flooder). Claim: counting-derived estimates work as well as the oracle.
//
// Both stages run as message-passing protocols on the SyncEngine, so rounds
// and message/bit totals are real metered costs. Each row aggregates R
// independent trials (graph, placement, counting and walk-token streams all
// forked per trial); cells show mean [min,max]. BZC_TRIALS / BZC_THREADS /
// BZC_N override the defaults (BZC_N=16384 BZC_TRIALS=48 is the token-arena
// perf sweep reported in DESIGN.md §7).
//
// The second half is the walk-adversary gallery: every strategy in
// src/adversary/ crossed with the placements the paper's discussion singles
// out, selected purely from the ScenarioSpec (DESIGN.md §7), plus the
// Remark 1 composition (VictimHunter × Placement::Surround) scored with
// coalitionScore.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "adversary/strategies.hpp"
#include "agreement/pipeline.hpp"
#include "obs/provenance.hpp"

int main() {
  using namespace bzc;
  using namespace bzc::bench;

  const NodeId n = nodeCount(1024);

  experimentHeader(
      "T7 — §1.1: counting -> agreement pipeline (n = " + std::to_string(n) +
          ", H(n,8), B = 8, adaptive adversary)",
      "'agree' is the fraction of honest nodes ending on the initial honest majority bit\n"
      "after the sampling+majority protocol; 'a-e' is the fraction of trials reaching\n"
      "almost-everywhere agreement (agree >= 90%). Initial split: 70/30. Rounds and\n"
      "message totals are engine-metered, not analytic. Cells aggregate R trials.");

  const double logN = std::log(static_cast<double>(n));
  const std::uint32_t trials = trialCount(5);
  ExperimentRunner runner(threadCount());
  std::cout << "trials/row=" << trials << "  threads=" << runner.threadCount() << "\n\n";

  Table table({"estimate source", "mean L", "agree", "a-e (90%)", "rounds", "messages",
               "compromised samples"});
  std::uint64_t row = 0;

  const auto addRow = [&](const std::string& name, const ExperimentSummary& s, double meanL) {
    table.addRow({name, Table::num(meanL, 2), distPercentCell(s.extras[kAgreementFracAgreeing]),
                  Table::percent(aeTrialFraction(s)), distCell(s.extras[kAgreementRounds], 0),
                  distCell(s.totalMessages, 0),
                  Table::integer(static_cast<long long>(s.extras[kAgreementCompromised].mean))});
  };

  AgreementParams agreeParams;
  agreeParams.initialOnesFraction = 0.7;

  double oracleAgree = 0;
  double pipelineAgree = 0;
  double tinyAgree = 0;

  const auto runUniformRow = [&](const std::string& name, double L) {
    ScenarioSpec spec;
    spec.name = "t7-" + name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Random;
    spec.placement.count = 8;
    spec.protocol = ProtocolKind::Agreement;
    spec.agreementParams = agreeParams;
    spec.agreementEstimate = L;
    spec.trials = trials;
    spec.masterSeed = rowSeed(7, row++);
    const ExperimentSummary s = runScenario(runner, spec);
    addRow(name, s, s.extras[kAgreementMeanEstimate].mean);
    return s.extras[kAgreementFracAgreeing].mean;
  };

  oracleAgree = runUniformRow("oracle ln n", logN);
  tinyAgree = runUniformRow("too small (L=1)", 1.0);
  runUniformRow("overshoot (L=3 ln n)", 3.0 * logN);

  for (const auto& attack : {BeaconAttackProfile::none(), BeaconAttackProfile::flooder()}) {
    ScenarioSpec spec;
    spec.name = "t7-pipeline-" + attack.name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Random;
    spec.placement.count = 8;
    spec.protocol = ProtocolKind::Pipeline;
    spec.beaconAttack = attack;
    spec.pipelineParams.agreement = agreeParams;
    spec.pipelineParams.agreement.walkLengthFactor = 0.5;  // counting phases overshoot ln n
    spec.pipelineParams.estimateSafetyFactor = 1.5;
    spec.pipelineParams.countingLimits.maxPhase = static_cast<std::uint32_t>(std::ceil(logN)) + 3;
    spec.trials = trials;
    spec.masterSeed = rowSeed(7, row++);
    const ExperimentSummary s = runScenario(runner, spec);
    addRow("Algorithm 2 (" + attack.name + ")", s, s.extras[kAgreementMeanEstimate].mean);
    if (attack.name == "flooder") pipelineAgree = s.extras[kAgreementFracAgreeing].mean;
  }
  table.print(std::cout);

  shapeCheck("oracle log n reaches almost-everywhere agreement", oracleAgree >= 0.9);
  shapeCheck("counting-derived estimates match the oracle (within 5%)",
             pipelineAgree >= oracleAgree - 0.05);
  shapeCheck("a too-small estimate fails", tinyAgree < 0.9);

  // --- walk-adversary gallery: strategy × placement grid --------------------
  experimentHeader(
      "T7g — walk-adversary gallery (strategy × placement, n = " + std::to_string(n) +
          ", B = 8, oracle ln n)",
      "Every WalkAdversary strategy against every adversarial placement, selected\n"
      "purely from the ScenarioSpec. 'answered' counts sample slots whose answer\n"
      "reached its origin; dropped/flipped/misrouted/hits are the strategy's own\n"
      "signature counters (ExperimentSummary extras).");

  Table grid({"strategy", "placement", "agree", "a-e (90%)", "answered", "dropped", "flipped",
              "misrouted", "coalition hits"});
  const AgreementAttackProfile profiles[] = {
      AgreementAttackProfile::adaptiveMinority(), AgreementAttackProfile::dropper(),
      AgreementAttackProfile::flipper(),          AgreementAttackProfile::tamperer(),
      AgreementAttackProfile::hunter(2),
  };
  const struct {
    Placement kind;
    const char* name;
  } placements[] = {
      {Placement::Random, "random"},
      {Placement::Spread, "spread"},
      {Placement::Surround, "surround"},
  };
  double adaptiveRandomAgree = 0;
  double dropperRandomAgree = 0;
  bool mechanismsFired = true;
  for (const AgreementAttackProfile& profile : profiles) {
    for (const auto& placement : placements) {
      ScenarioSpec spec;
      spec.name = std::string("t7g-") + profile.name + "-" + placement.name;
      spec.graph = {GraphKind::Hnd, n, 8, 0.1};
      spec.placement.kind = placement.kind;
      spec.placement.count = 8;
      spec.placement.victim = 3;
      spec.placement.moatRadius = 2;
      spec.protocol = ProtocolKind::Agreement;
      spec.agreementParams = agreeParams;
      spec.agreementParams.attack = profile;
      spec.trials = trials;
      spec.masterSeed = rowSeed(7, row++);
      const ExperimentSummary s = runScenario(runner, spec);
      grid.addRow({profile.name, placement.name,
                   distPercentCell(s.extras[kAgreementFracAgreeing]),
                   Table::percent(aeTrialFraction(s)),
                   Table::num(s.extras[kAgreementAnswered].mean, 0),
                   Table::num(s.extras[kAgreementDropped].mean, 0),
                   Table::num(s.extras[kAgreementFlipped].mean, 0),
                   Table::num(s.extras[kAgreementMisrouted].mean, 0),
                   Table::num(s.extras[kAgreementCoalitionHits].mean, 0)});
      if (placement.kind == Placement::Random) {
        if (profile.kind == WalkAttackKind::AdaptiveMinority)
          adaptiveRandomAgree = s.extras[kAgreementFracAgreeing].mean;
        if (profile.kind == WalkAttackKind::TokenDropper)
          dropperRandomAgree = s.extras[kAgreementFracAgreeing].mean;
      }
      switch (profile.kind) {
        case WalkAttackKind::AdaptiveMinority:
          mechanismsFired = mechanismsFired && s.extras[kAgreementForged].min > 0;
          break;
        case WalkAttackKind::TokenDropper:
          mechanismsFired = mechanismsFired && s.extras[kAgreementDropped].min > 0;
          break;
        case WalkAttackKind::AnswerFlipper:
          mechanismsFired = mechanismsFired && s.extras[kAgreementFlipped].min > 0;
          break;
        case WalkAttackKind::PathTamperer:
          mechanismsFired = mechanismsFired && s.extras[kAgreementMisrouted].min > 0;
          break;
        case WalkAttackKind::VictimHunter:
          // Targeting is only guaranteed when the victim is actually walled
          // in; the surround row has ~10^3 victim-area tokens crossing an
          // 8-node moat, so zero hits would mean broken targeting.
          if (placement.kind == Placement::Surround) {
            mechanismsFired = mechanismsFired && s.extras[kAgreementCoalitionHits].min > 0;
          }
          break;
      }
    }
  }
  grid.print(std::cout);

  shapeCheck("every strategy's mechanism fires under every placement", mechanismsFired);
  shapeCheck("starving samples (dropper) is weaker than adaptive lying",
             dropperRandomAgree >= adaptiveRandomAgree - 0.02);

  // --- Remark 1 composition: VictimHunter × Placement::Surround -------------
  // Custom-trial row (final values are needed for coalitionScore): how much
  // of the victim's radius-2 neighbourhood each adversary flips when the
  // victim is walled off behind a Byzantine moat.
  experimentHeader(
      "T7h — Remark 1: victim surrounded (B large enough to man the moat), coalition scored",
      "coalitionScore = fraction of honest nodes within distance 2 of the victim\n"
      "ending OFF the initial honest majority. Every sample leaving the walled-off\n"
      "ball crosses the Byzantine boundary; the hunter poisons exactly those with\n"
      "one coalition-locked bit (surgical: global agreement survives), while the\n"
      "adaptive answerer at the same budget degrades the whole network.");
  Table remark({"strategy", "agree (global)", "victim-area flipped", "coalition hits",
                "blame conc", "top offender"});
  enum : std::size_t { kScore, kHits, kAgree, kConc, kTopShare, kRemarkSlots };
  double hunterScore = 0;
  double hunterGlobalDisagree = 0;
  for (const auto& profile :
       {AgreementAttackProfile::adaptiveMinority(), AgreementAttackProfile::hunter(2)}) {
    ScenarioSpec spec;
    spec.name = std::string("t7h-") + profile.name;
    spec.graph = {GraphKind::Hnd, n, 8, 0.1};
    spec.placement.kind = Placement::Surround;
    // A radius-2 boundary in H(n,8) has up to d(d-1) = 56 vertices; 64 nodes
    // seal the moat (Remark 1 needs the boundary fully Byzantine).
    spec.placement.count = 64;
    spec.placement.victim = 3;
    spec.placement.moatRadius = 2;
    spec.trials = trials;
    spec.masterSeed = rowSeed(7, row++);
    const ExperimentSummary s = runScenario(runner, spec.name, trials, [&](std::uint32_t index) {
      MaterializedTrial trial = materializeTrial(spec, index);
      AgreementParams params = agreeParams;
      params.attack = profile;
      params.victim = spec.placement.victim;
      const AgreementOutcome out = runMajorityAgreement(
          trial.graph, trial.byz, std::log(static_cast<double>(n)), params, trial.runRng);
      TrialOutcome t;
      t.quality.honestCount = out.honestCount;
      t.quality.decidedCount = out.honestCount;
      t.quality.fracDecided = out.honestCount > 0 ? 1.0 : 0.0;
      t.totalRounds = out.totalRounds;
      t.totalMessages = out.meter.totalMessages();
      t.totalBits = out.meter.totalBits();
      t.resultFingerprint = fingerprint(out, trial.graph.numNodes());
      t.extra.assign(kRemarkSlots, 0.0);
      t.extra[kScore] = coalitionScore(trial.graph, trial.byz, spec.placement.victim, 2,
                                       out.finalValues, out.initialMajority);
      t.extra[kHits] = static_cast<double>(out.adversary.coalitionHits);
      t.extra[kAgree] = out.fracAgreeing;
      // Blame-graph projections (DESIGN.md §14): how concentrated the damage
      // is over individual moat members. The hunter should look diffuse (the
      // whole moat participates); a lone tamperer would approach 1.0.
      t.extra[kConc] = obs::blameConcentration(out.blame);
      t.extra[kTopShare] = obs::blameTopShare(out.blame);
      return t;
    });
    remark.addRow({profile.name, distPercentCell(s.extras[kAgree]),
                   distPercentCell(s.extras[kScore]), Table::num(s.extras[kHits].mean, 0),
                   Table::num(s.extras[kConc].mean, 3),
                   Table::percent(s.extras[kTopShare].mean)});
    if (profile.kind == WalkAttackKind::VictimHunter) {
      hunterScore = s.extras[kScore].mean;
      hunterGlobalDisagree = 1.0 - s.extras[kAgree].mean;
    }
  }
  remark.print(std::cout);
  shapeCheck("the hunter's damage concentrates on the victim area",
             hunterScore >= hunterGlobalDisagree);

  // --- T7i — budget-vs-damage frontier (ROADMAP open item) ------------------
  // Sweeps the Byzantine budget B for every walk-adversary strategy at fixed
  // n: how much damage (1 - agree) each marginal Byzantine node buys, per
  // strategy. Emits one JSON row per (strategy, B) cell for the nightly
  // trajectory diffs.
  experimentHeader(
      "T7i — budget-vs-damage frontier (n = " + std::to_string(n) +
          ", random placement, oracle ln n, B swept)",
      "'damage' is 1 - agree: the honest-agreement mass the strategy destroys at\n"
      "budget B. The adaptive answerer climbs fastest (every tainted sample lies\n"
      "consistently); droppers waste their budget (a lost sample only falls back\n"
      "to the node's own bit). The sqrt(n) threshold the paper's agreement\n"
      "discussion assumes sits inside this sweep's range.");

  Table frontier({"strategy", "B", "agree", "a-e (90%)", "damage", "compromised", "answered"});
  const std::size_t budgets[] = {4, 8, 16, 32, 64};
  const std::size_t maxB = budgets[std::size(budgets) - 1];
  double adaptiveDamage[2] = {0, 0};  // at the smallest and largest budgets
  double dropperDamageMax = 0;
  for (const AgreementAttackProfile& profile : profiles) {
    for (const std::size_t b : budgets) {
      ScenarioSpec spec;
      spec.name = std::string("t7i-") + profile.name + "-B" + std::to_string(b);
      spec.graph = {GraphKind::Hnd, n, 8, 0.1};
      spec.placement.kind = Placement::Random;
      spec.placement.count = b;
      spec.placement.victim = 3;
      spec.protocol = ProtocolKind::Agreement;
      spec.agreementParams = agreeParams;
      spec.agreementParams.attack = profile;
      spec.trials = trials;
      spec.masterSeed = rowSeed(7, row++);
      const ExperimentSummary s = runScenario(runner, spec);
      const double agree = s.extras[kAgreementFracAgreeing].mean;
      frontier.addRow({profile.name, Table::integer(static_cast<long long>(b)),
                       distPercentCell(s.extras[kAgreementFracAgreeing]),
                       Table::percent(aeTrialFraction(s)), Table::percent(1.0 - agree),
                       Table::num(s.extras[kAgreementCompromised].mean, 0),
                       Table::num(s.extras[kAgreementAnswered].mean, 0)});
      if (profile.kind == WalkAttackKind::AdaptiveMinority) {
        if (b == budgets[0]) adaptiveDamage[0] = 1.0 - agree;
        if (b == maxB) adaptiveDamage[1] = 1.0 - agree;
      }
      if (profile.kind == WalkAttackKind::TokenDropper && b == maxB) {
        dropperDamageMax = 1.0 - agree;
      }
    }
  }
  frontier.print(std::cout);
  shapeCheck("a 16x budget buys the adaptive answerer real damage",
             adaptiveDamage[1] > adaptiveDamage[0] + 0.05);
  shapeCheck("at the largest budget consistent lying beats starving (adaptive > dropper)",
             adaptiveDamage[1] > dropperDamageMax);
  return 0;
}
