// T1 — Theorem 1: the deterministic LOCAL algorithm.
//
// Claim: on any bounded-degree expander with constant vertex expansion, up to
// n^(1-gamma) adversarially placed Byzantine nodes, n - o(n) good nodes
// decide a (gamma/2 * log Delta)-factor approximation of log n within
// O(log n) rounds. The estimate of every Good node (far from Byzantine
// nodes) lies in [dist-to-Byz, diam(G)+1].
//
// Each row now aggregates R independent trials (graph, placement and
// adversary streams all forked per trial) on the ExperimentRunner; cells show
// mean [min,max] over trials. BZC_TRIALS / BZC_THREADS override the defaults.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "counting/local/protocol.hpp"
#include "graph/bfs.hpp"

namespace {

using namespace bzc;
using namespace bzc::bench;

struct Scenario {
  const char* attack;
  Placement placement;
  std::unique_ptr<LocalAdversary> (*make)();
};

std::unique_ptr<LocalAdversary> makeFakeWorldDefault() { return makeFakeWorldLocalAdversary({}); }

// Extra-metric slots of one trial.
enum : std::size_t {
  kFracGood,   // fraction of Good (dist>=2) nodes inside [dist-to-Byz, diam+1]
  kDiameter,
  kRoundsOk,   // 1.0 when totalRounds <= 4*diam + 16
  kMeanEst,
  kMaxEst,
  kIncDecisions,
  kMuteDecisions,
  kBallDecisions,
  kCutDecisions,
  kExtraSlots,
};

}  // namespace

int main() {
  experimentHeader(
      "T1 — Theorem 1: deterministic Byzantine counting in LOCAL",
      "Rows reproduce the Theorem 1 guarantee on H(n,8) with B = n^(1-gamma), gamma = 0.55,\n"
      "adversarial placements and the attack strategies the proofs discuss. 'good in\n"
      "[dist,diam+1]' is the fraction of honest nodes >= 2 hops from every Byzantine node\n"
      "whose decision lands in the Theorem 1 window. Cells aggregate R trials.");

  const std::uint32_t trials = trialCount(5);
  ExperimentRunner runner(threadCount());
  std::cout << "trials/row=" << trials << "  threads=" << runner.threadCount() << "\n\n";

  Table table({"n", "attack", "placement", "B", "diam", "rounds", "frac decided", "est mean",
               "est max", "good in [dist,diam+1]", "reasons (inc/mute/ball/cut)"});

  const Scenario scenarios[] = {
      {"honest", Placement::Random, &makeHonestLocalAdversary},
      {"silent", Placement::Random, [] { return makeSilentLocalAdversary(1); }},
      {"conflict", Placement::Random, &makeConflictLocalAdversary},
      {"degree-bomb", Placement::Spread, &makeDegreeBombLocalAdversary},
      {"fake-world", Placement::Surround, &makeFakeWorldDefault},
  };

  bool allRoundsLogarithmic = true;
  bool allGoodInWindow = true;
  for (NodeId n : {256u, 512u, 1024u}) {
    const std::size_t budget = byzantineBudget(n, 0.55);
    for (const auto& sc : scenarios) {
      ScenarioSpec spec;
      spec.name = std::string("t1-") + sc.attack;
      spec.graph = {GraphKind::Hnd, n, 8, 0.1};
      spec.placement.kind = sc.placement;
      spec.placement.count = budget;
      spec.placement.victim = 3;
      spec.placement.moatRadius = 1;
      spec.trials = trials;
      spec.masterSeed = 10 * n + 7;

      const auto summary = runScenario(runner, spec.name, trials, [&](std::uint32_t index) {
        MaterializedTrial trial = materializeTrial(spec, index);
        const std::uint32_t diam = exactDiameter(trial.graph);
        auto adversary = sc.make();
        const LocalParams params;
        const LocalOutcome out = runLocalCounting(trial.graph, trial.byz, *adversary, params,
                                                  trial.runRng, spec.placement.victim);
        const auto est = summarize(out.result, trial.byz, n);

        std::size_t good = 0;
        std::size_t goodInWindow = 0;
        for (NodeId u = 0; u < n; ++u) {
          if (trial.byz.contains(u) || out.stats.distToByz[u] < 2) continue;
          ++good;
          const auto& rec = out.result.decisions[u];
          if (rec.decided && rec.estimate >= out.stats.distToByz[u] &&
              rec.estimate <= diam + 1.0) {
            ++goodInWindow;
          }
        }

        TrialOutcome t;
        t.quality.fracDecided = est.fracDecided;
        t.totalRounds = out.result.totalRounds;
        t.hitRoundCap = out.result.hitRoundCap;
        t.totalMessages = out.result.meter.totalMessages();
        t.totalBits = out.result.meter.totalBits();
        t.resultFingerprint = fingerprint(out.result, n);
        t.extra.assign(kExtraSlots, 0.0);
        t.extra[kFracGood] = good > 0 ? static_cast<double>(goodInWindow) / good : 1.0;
        t.extra[kDiameter] = diam;
        t.extra[kRoundsOk] = out.result.totalRounds <= 4 * diam + 16 ? 1.0 : 0.0;
        t.extra[kMeanEst] = est.meanEst;
        t.extra[kMaxEst] = est.maxEst;
        t.extra[kIncDecisions] = static_cast<double>(out.stats.inconsistencyDecisions);
        t.extra[kMuteDecisions] = static_cast<double>(out.stats.muteDecisions);
        t.extra[kBallDecisions] = static_cast<double>(out.stats.ballGrowthDecisions);
        t.extra[kCutDecisions] = static_cast<double>(out.stats.sparseCutDecisions);
        return t;
      });

      allGoodInWindow = allGoodInWindow && summary.extras[kFracGood].mean > 0.99;
      allRoundsLogarithmic = allRoundsLogarithmic && summary.extras[kRoundsOk].min >= 1.0;

      const std::string reasons = Table::num(summary.extras[kIncDecisions].mean, 0) + "/" +
                                  Table::num(summary.extras[kMuteDecisions].mean, 0) + "/" +
                                  Table::num(summary.extras[kBallDecisions].mean, 0) + "/" +
                                  Table::num(summary.extras[kCutDecisions].mean, 0);
      table.addRow({Table::integer(n), sc.attack,
                    sc.placement == Placement::Random   ? "random"
                    : sc.placement == Placement::Spread ? "spread"
                                                        : "surround",
                    Table::integer(static_cast<long long>(budget)),
                    Table::num(summary.extras[kDiameter].mean, 1),
                    distCell(summary.totalRounds, 0), distPercentCell(summary.fracDecided),
                    Table::num(summary.extras[kMeanEst].mean, 2),
                    Table::num(summary.extras[kMaxEst].mean, 0),
                    distPercentCell(summary.extras[kFracGood]), reasons});
    }
  }
  table.print(std::cout);
  shapeCheck("every Good (dist>=2) node decides inside [dist-to-Byz, diam+1]", allGoodInWindow);
  shapeCheck("round complexity stays O(diam) = O(log n)", allRoundsLogarithmic);
  return 0;
}
